// graph_oracle — the introduction's motivating application: distance
// oracles for general graphs from distance labelings of spanning trees
// rooted at judiciously chosen vertices (cf. pruned landmark labeling).
//
// core::SpanningOracle packs, per node, the FGNW labels of that node in k
// BFS spanning trees; the estimate is the minimum tree distance, which
// upper-bounds (and with enough landmarks usually equals) the true graph
// distance. This example sweeps the landmark budget and reports per-node
// state size and the stretch distribution.
#include <algorithm>
#include <cstdio>
#include <random>

#include "core/spanning_oracle.hpp"
#include "tree/graph.hpp"

using namespace treelab;
using core::SpanningOracle;
using tree::Graph;
using tree::NodeId;

int main() {
  const NodeId n = 2000;
  const Graph g = Graph::random_connected(n, 2 * n, 17);
  std::printf("random connected graph: %d nodes, %zu edges\n\n", n,
              g.num_edges());

  std::printf("%-10s %-14s %-10s %-10s %-10s\n", "landmarks", "bits/node",
              "exact%", "avg_str", "max_str");
  std::mt19937_64 rng(4);
  std::uniform_int_distribution<NodeId> pick(0, n - 1);
  for (int landmarks : {1, 2, 3, 4, 6, 8, 12, 16}) {
    const SpanningOracle oracle(g, landmarks);

    double sum_stretch = 0, max_stretch = 0;
    int exact = 0, total = 0;
    for (int trial = 0; trial < 250; ++trial) {
      const NodeId u = pick(rng);
      const auto du = g.bfs_distances(u);
      for (int trial2 = 0; trial2 < 6; ++trial2) {
        const NodeId v = pick(rng);
        if (u == v) continue;
        const std::uint64_t est =
            SpanningOracle::query(oracle.state(u), oracle.state(v));
        const double truth = du[v];
        sum_stretch += static_cast<double>(est) / truth;
        max_stretch = std::max(max_stretch, static_cast<double>(est) / truth);
        exact += est == static_cast<std::uint64_t>(truth);
        ++total;
      }
    }
    std::printf("%-10d %-14zu %-10.1f %-10.3f %-10.3f\n", landmarks,
                oracle.stats().max_bits, 100.0 * exact / total,
                sum_stretch / total, max_stretch);
  }
  std::printf(
      "\nEach node's state is self-contained (its tree labels only); "
      "estimates never undershoot and converge toward exact as landmarks "
      "are added.\n");
  return 0;
}
