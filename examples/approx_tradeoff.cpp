// approx_tradeoff — the (1+eps) size/accuracy frontier (Theorem 1.4).
//
// Scenario: a content hierarchy (deep category tree) where a recommender
// needs fast "semantic distance" between items but only approximately.
// Sweep eps, measure label size with both encodings (this paper's Lemma 2.2
// codes vs the prior unary codes) and the worst observed error, printing
// the frontier a practitioner would choose from.
#include <algorithm>
#include <cstdio>
#include <random>

#include "core/approx_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "tree/generators.hpp"
#include "tree/nca_index.hpp"

using namespace treelab;
using core::ApproxScheme;

int main() {
  // A deep, skewed category tree: windowed random attachment.
  const tree::Tree t = tree::random_windowed_tree(1 << 15, 40, 99);
  const tree::NcaIndex oracle(t);
  std::printf("category tree: %d nodes\n\n", t.size());

  const core::FgnwScheme exact(t);
  std::printf("exact baseline: %zu bits/label (max)\n\n",
              exact.stats().max_bits);

  std::printf("%-10s %-12s %-12s %-12s %-12s\n", "eps", "mono_bits",
              "unary_bits", "saving", "worst_err");
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<tree::NodeId> pick(0, t.size() - 1);
  for (double eps : {1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125, 0.015625}) {
    const ApproxScheme mono(t, eps, ApproxScheme::Encoding::kMonotone);
    const ApproxScheme unary(t, eps, ApproxScheme::Encoding::kUnary);
    double worst = 0;
    for (int i = 0; i < 30000; ++i) {
      const tree::NodeId u = pick(rng), v = pick(rng);
      const auto d = oracle.distance(u, v);
      if (d == 0) continue;
      const auto est = ApproxScheme::query(eps, mono.label(u), mono.label(v));
      worst = std::max(
          worst, static_cast<double>(est) / static_cast<double>(d) - 1.0);
    }
    std::printf("%-10.5f %-12zu %-12zu %-11.1f%% %-12.4f\n", eps,
                mono.stats().max_bits, unary.stats().max_bits,
                100.0 * (1.0 - static_cast<double>(mono.stats().max_bits) /
                                   static_cast<double>(exact.stats().max_bits)),
                worst);
  }
  std::printf(
      "\nmono_bits grows ~log(1/eps): halving eps costs a constant number "
      "of bits, while the unary encoding doubles. Every observed error is "
      "within its eps budget.\n");
  return 0;
}
