// treelab_cli — command-line front end for the library, demonstrating the
// ship-labels-then-query-locally workflow end to end:
//
//   treelab_cli gen <shape> <n> <seed>          > tree.txt
//   treelab_cli label <scheme> tree.txt out.lbl   (scheme: fgnw|alstrup|
//                                                  peleg|kdist:<k>|
//                                                  approx:<1/eps>)
//   treelab_cli query out.lbl <u> <v>             (labels only; the tree
//                                                  file is NOT read)
//   treelab_cli stats out.lbl
//
// Example:
//   treelab_cli gen random 1000 7 > t.txt
//   treelab_cli label fgnw t.txt t.lbl
//   treelab_cli query t.lbl 12 900
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/alstrup_scheme.hpp"
#include "core/approx_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/kdistance_scheme.hpp"
#include "core/label_store.hpp"
#include "core/peleg_scheme.hpp"
#include "tree/generators.hpp"
#include "tree/io.hpp"

using namespace treelab;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  treelab_cli gen <shape> <n> <seed>\n"
               "  treelab_cli label <scheme> <tree.txt> <out.lbl>\n"
               "  treelab_cli query <labels.lbl> <u> <v>\n"
               "  treelab_cli stats <labels.lbl>\n"
               "shapes: path star caterpillar broom spider balanced-binary "
               "random random-binary\n"
               "schemes: fgnw alstrup peleg kdist:<k> approx:<inv_eps>\n");
  return 2;
}

int cmd_gen(int argc, char** argv) {
  if (argc != 5) return usage();
  const std::string shape = argv[2];
  const auto n = static_cast<tree::NodeId>(std::stol(argv[3]));
  const auto seed = static_cast<std::uint64_t>(std::stoull(argv[4]));
  for (const auto& s : tree::standard_shapes())
    if (s.name == shape) {
      tree::write_text(std::cout, s.make(n, seed));
      return 0;
    }
  std::fprintf(stderr, "unknown shape '%s'\n", shape.c_str());
  return 2;
}

int cmd_label(int argc, char** argv) {
  if (argc != 5) return usage();
  const std::string scheme = argv[2];
  std::ifstream in(argv[3]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[3]);
    return 1;
  }
  const tree::Tree t = tree::read_text(in);
  std::ofstream out(argv[4], std::ios::binary);

  if (scheme == "fgnw") {
    core::LabelStore::save(out, "fgnw", core::FgnwScheme(t).labels());
  } else if (scheme == "alstrup") {
    core::LabelStore::save(out, "alstrup", core::AlstrupScheme(t).labels());
  } else if (scheme == "peleg") {
    core::LabelStore::save(out, "peleg", core::PelegScheme(t).labels());
  } else if (scheme.rfind("kdist:", 0) == 0) {
    const std::uint64_t k = std::stoull(scheme.substr(6));
    core::LabelStore::save(out, "kdist", core::KDistanceScheme(t, k).labels(),
                           "k=" + std::to_string(k));
  } else if (scheme.rfind("approx:", 0) == 0) {
    const std::uint64_t inv = std::stoull(scheme.substr(7));
    core::LabelStore::save(
        out, "approx",
        core::ApproxScheme(t, 1.0 / static_cast<double>(inv)).labels(),
        "inv_eps=" + std::to_string(inv));
  } else {
    std::fprintf(stderr, "unknown scheme '%s'\n", scheme.c_str());
    return 2;
  }
  std::printf("labeled %d nodes with %s -> %s\n", t.size(), scheme.c_str(),
              argv[4]);
  return 0;
}

core::LabelStore::Loaded load_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(std::string("cannot open ") + path);
  return core::LabelStore::load(in);
}

int cmd_query(int argc, char** argv) {
  if (argc != 5) return usage();
  const auto store = load_file(argv[2]);
  const auto u = static_cast<std::size_t>(std::stoull(argv[3]));
  const auto v = static_cast<std::size_t>(std::stoull(argv[4]));
  if (u >= store.labels.size() || v >= store.labels.size()) {
    std::fprintf(stderr, "node out of range (have %zu labels)\n",
                 store.labels.size());
    return 1;
  }
  const auto& lu = store.labels[u];
  const auto& lv = store.labels[v];
  if (store.scheme == "fgnw") {
    std::printf("d = %llu\n",
                static_cast<unsigned long long>(core::FgnwScheme::query(lu, lv)));
  } else if (store.scheme == "alstrup") {
    std::printf("d = %llu\n", static_cast<unsigned long long>(
                                  core::AlstrupScheme::query(lu, lv)));
  } else if (store.scheme == "peleg") {
    std::printf("d = %llu\n", static_cast<unsigned long long>(
                                  core::PelegScheme::query(lu, lv)));
  } else if (store.scheme == "kdist") {
    const std::uint64_t k = std::stoull(store.params.substr(2));
    const auto r = core::KDistanceScheme::query(k, lu, lv);
    if (r.within)
      std::printf("d = %llu (<= k = %llu)\n",
                  static_cast<unsigned long long>(r.distance),
                  static_cast<unsigned long long>(k));
    else
      std::printf("d > k = %llu\n", static_cast<unsigned long long>(k));
  } else if (store.scheme == "approx") {
    const double eps = 1.0 / std::stod(store.params.substr(8));
    std::printf("d ~ %llu (within factor %.4f)\n",
                static_cast<unsigned long long>(
                    core::ApproxScheme::query(eps, lu, lv)),
                1 + eps);
  } else {
    std::fprintf(stderr, "unknown scheme tag '%s'\n", store.scheme.c_str());
    return 1;
  }
  return 0;
}

int cmd_stats(int argc, char** argv) {
  if (argc != 3) return usage();
  const auto store = load_file(argv[2]);
  core::LabelStats st;
  for (const auto& l : store.labels) st.add(l.size());
  std::printf("scheme=%s params='%s' labels=%zu max=%zu bits avg=%.1f bits\n",
              store.scheme.c_str(), store.params.c_str(), st.count,
              st.max_bits, st.avg_bits());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "gen") == 0) return cmd_gen(argc, argv);
    if (std::strcmp(argv[1], "label") == 0) return cmd_label(argc, argv);
    if (std::strcmp(argv[1], "query") == 0) return cmd_query(argc, argv);
    if (std::strcmp(argv[1], "stats") == 0) return cmd_stats(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
