// treelab_cli — command-line front end for the library, demonstrating the
// ship-labels-then-query-locally workflow end to end:
//
//   treelab_cli gen <shape> <n> <seed>          > tree.txt
//   treelab_cli label <scheme> tree.txt out.lbl   (scheme: fgnw|alstrup|
//                                                  peleg|kdist:<k>|
//                                                  approx:<1/eps>)
//   treelab_cli query out.lbl <u> <v>             (labels only; the tree
//                                                  file is NOT read)
//   treelab_cli stats out.lbl                     (label-size statistics)
//   treelab_cli stats <host>:<port> [--probe N]   (live metrics: send kStats
//                                                  to a running server and
//                                                  print its obs registry as
//                                                  `name value` lines; with
//                                                  --probe, send N small
//                                                  query batches first so
//                                                  the latency histograms
//                                                  are warm)
//   treelab_cli save <in.lbl> <out.lbl> [v1|mappable]
//                                                 (convert container
//                                                  versions; mappable files
//                                                  serve zero-copy)
//   treelab_cli load <labels.lbl>                 (open for serving, report
//                                                  mapped vs streamed)
//   treelab_cli serve-bench <labels.lbl...> [--shards S] [--threads T]
//                                           [--batch B] [--seed X]
//                                                 (ForestIndex batch QPS
//                                                  over the given forest)
//   treelab_cli update <tree.txt> <out.lbl> [--edits E] [--seed X]
//                                           [--tree-out grown.txt]
//                                                 (dynamic forests: build
//                                                  stable-weight alstrup
//                                                  labels, apply E random
//                                                  leaf inserts through the
//                                                  incremental relabeler,
//                                                  write the final labels;
//                                                  prints per-edit outcome
//                                                  counters and timing)
//   treelab_cli delta-save <tree.txt> <base.lbl> <out.delta>
//                          [--edits E] [--seed X] [--inserts-only]
//                          [--tree-out edited.txt]
//                                                 (write the base labels as
//                                                  a mappable file, drive E
//                                                  random edits — inserts,
//                                                  deletes, weight updates,
//                                                  subtree moves, compact —
//                                                  through the incremental
//                                                  relabeler, then ship
//                                                  only the dirty chunks as
//                                                  a v3 delta; prints delta
//                                                  bytes vs full-file
//                                                  bytes)
//   treelab_cli delta-apply <base.lbl> <in.delta> <out.lbl>
//                                                 (patch a base label file
//                                                  with a delta — what a
//                                                  serving node does via
//                                                  ForestIndex::apply_delta
//                                                  — and write the result)
//   treelab_cli journal info <base.lbl>           (open the crash-safe delta
//                                                  journal beside base.lbl,
//                                                  run recovery, report what
//                                                  it replayed/truncated)
//   treelab_cli journal append <base.lbl> <in.delta>
//                                                 (append a delta to the
//                                                  journal, rechaining it to
//                                                  the journal's epoch chain
//                                                  when needed)
//   treelab_cli journal checkpoint <base.lbl>     (fold the journal into the
//                                                  base file atomically)
//   treelab_cli serve <tree.txt> <base.lbl> [--port P] [--edits E]
//                     [--seed X] [--wait-subscribers N] [--port-file F]
//                                                 (replication leader: build
//                                                  incremental labels, start
//                                                  the batch-RPC server with
//                                                  the delta journal
//                                                  attached, churn E random
//                                                  leaf inserts through it,
//                                                  then either wait for N
//                                                  followers to fully catch
//                                                  up or serve until
//                                                  SIGINT/SIGTERM; on exit
//                                                  checkpoint the journal
//                                                  into base.lbl)
//   treelab_cli follow <host>:<port> <out.lbl>
//                      [--stats-port-file F] [--linger-ms M]
//                                                 (replication follower:
//                                                  tail the leader until its
//                                                  end-of-stream, then write
//                                                  the converged labels —
//                                                  bit-identical to the
//                                                  leader's checkpoint; with
//                                                  --stats-port-file, also
//                                                  run a query/stats server
//                                                  over the follower index
//                                                  and keep it up M ms after
//                                                  convergence so a peer can
//                                                  probe the follower's
//                                                  metrics)
//
// All label/delta outputs are written atomically (temp + fsync + rename):
// a crash mid-write never leaves a torn file behind. Exit codes separate
// failure kinds: 0 ok, 1 other error, 2 usage, 3 I/O error (path + errno
// on stderr), 4 corrupt/invalid input.
//
// Example:
//   treelab_cli gen random 1000 7 > t.txt
//   treelab_cli label fgnw t.txt t.lbl
//   treelab_cli query t.lbl 12 900
//   treelab_cli save t.lbl t.mlbl mappable
//   treelab_cli serve-bench t.mlbl --shards 4
//   treelab_cli update t.txt t2.lbl --edits 500 --tree-out t2.txt
//   treelab_cli delta-save t.txt base.lbl churn.delta --edits 200
//   treelab_cli delta-apply base.lbl churn.delta patched.lbl
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/alstrup_scheme.hpp"
#include "core/approx_scheme.hpp"
#include "core/delta_journal.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/incremental_relabeler.hpp"
#include "core/kdistance_scheme.hpp"
#include "core/label_store.hpp"
#include "core/peleg_scheme.hpp"
#include "net/client.hpp"
#include "net/replicator.hpp"
#include "net/server.hpp"
#include "serve/forest_index.hpp"
#include "util/fs.hpp"
#include "tree/generators.hpp"
#include "tree/io.hpp"
#include "util/io_error.hpp"

using namespace treelab;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  treelab_cli gen <shape> <n> <seed>\n"
               "  treelab_cli label <scheme> <tree.txt> <out.lbl>\n"
               "  treelab_cli query <labels.lbl> <u> <v>\n"
               "  treelab_cli stats <labels.lbl>\n"
               "  treelab_cli stats <host>:<port> [--probe N]\n"
               "  treelab_cli save <in.lbl> <out.lbl> [v1|mappable]\n"
               "  treelab_cli load <labels.lbl>\n"
               "  treelab_cli serve-bench <labels.lbl...> [--shards S] "
               "[--threads T] [--batch B] [--seed X]\n"
               "  treelab_cli update <tree.txt> <out.lbl> [--edits E] "
               "[--seed X] [--tree-out grown.txt]\n"
               "  treelab_cli delta-save <tree.txt> <base.lbl> <out.delta> "
               "[--edits E] [--seed X] [--inserts-only] [--tree-out f]\n"
               "  treelab_cli delta-apply <base.lbl> <in.delta> <out.lbl>\n"
               "  treelab_cli journal info <base.lbl>\n"
               "  treelab_cli journal append <base.lbl> <in.delta>\n"
               "  treelab_cli journal checkpoint <base.lbl>\n"
               "  treelab_cli serve <tree.txt> <base.lbl> [--port P] "
               "[--edits E] [--seed X] [--wait-subscribers N] "
               "[--port-file F]\n"
               "  treelab_cli follow <host>:<port> <out.lbl> "
               "[--stats-port-file F] [--linger-ms M]\n"
               "shapes: path star caterpillar broom spider balanced-binary "
               "random random-binary\n"
               "schemes: fgnw alstrup peleg kdist:<k> approx:<inv_eps>\n");
  return 2;
}

int cmd_gen(int argc, char** argv) {
  if (argc != 5) return usage();
  const std::string shape = argv[2];
  const auto n = static_cast<tree::NodeId>(std::stol(argv[3]));
  const auto seed = static_cast<std::uint64_t>(std::stoull(argv[4]));
  for (const auto& s : tree::standard_shapes())
    if (s.name == shape) {
      tree::write_text(std::cout, s.make(n, seed));
      return 0;
    }
  std::fprintf(stderr, "unknown shape '%s'\n", shape.c_str());
  return 2;
}

int cmd_label(int argc, char** argv) {
  if (argc != 5) return usage();
  const std::string scheme = argv[2];
  std::ifstream in(argv[3]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[3]);
    return 1;
  }
  const tree::Tree t = tree::read_text(in);
  std::ofstream out(argv[4], std::ios::binary);

  if (scheme == "fgnw") {
    core::LabelStore::save(out, "fgnw", core::FgnwScheme(t).labels());
  } else if (scheme == "alstrup") {
    core::LabelStore::save(out, "alstrup", core::AlstrupScheme(t).labels());
  } else if (scheme == "peleg") {
    core::LabelStore::save(out, "peleg", core::PelegScheme(t).labels());
  } else if (scheme.rfind("kdist:", 0) == 0) {
    const std::uint64_t k = std::stoull(scheme.substr(6));
    core::LabelStore::save(out, "kdist", core::KDistanceScheme(t, k).labels(),
                           "k=" + std::to_string(k));
  } else if (scheme.rfind("approx:", 0) == 0) {
    const std::uint64_t inv = std::stoull(scheme.substr(7));
    core::LabelStore::save(
        out, "approx",
        core::ApproxScheme(t, 1.0 / static_cast<double>(inv)).labels(),
        "inv_eps=" + std::to_string(inv));
  } else {
    std::fprintf(stderr, "unknown scheme '%s'\n", scheme.c_str());
    return 2;
  }
  std::printf("labeled %d nodes with %s -> %s\n", t.size(), scheme.c_str(),
              argv[4]);
  return 0;
}

core::LabelStore::Loaded load_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw util::IoError(path, "open labels for reading",
                        errno != 0 ? errno : ENOENT);
  return core::LabelStore::load(in);
}

int cmd_query(int argc, char** argv) {
  if (argc != 5) return usage();
  const auto store = load_file(argv[2]);
  const auto u = static_cast<std::size_t>(std::stoull(argv[3]));
  const auto v = static_cast<std::size_t>(std::stoull(argv[4]));
  if (u >= store.labels.size() || v >= store.labels.size()) {
    std::fprintf(stderr, "node out of range (have %zu labels)\n",
                 store.labels.size());
    return 1;
  }
  const auto& lu = store.labels[u];
  const auto& lv = store.labels[v];
  if (store.scheme == "fgnw") {
    std::printf("d = %llu\n",
                static_cast<unsigned long long>(core::FgnwScheme::query(lu, lv)));
  } else if (store.scheme == "alstrup") {
    std::printf("d = %llu\n", static_cast<unsigned long long>(
                                  core::AlstrupScheme::query(lu, lv)));
  } else if (store.scheme == "peleg") {
    std::printf("d = %llu\n", static_cast<unsigned long long>(
                                  core::PelegScheme::query(lu, lv)));
  } else if (store.scheme == "kdist") {
    const std::uint64_t k = std::stoull(store.params.substr(2));
    const auto r = core::KDistanceScheme::query(k, lu, lv);
    if (r.within)
      std::printf("d = %llu (<= k = %llu)\n",
                  static_cast<unsigned long long>(r.distance),
                  static_cast<unsigned long long>(k));
    else
      std::printf("d > k = %llu\n", static_cast<unsigned long long>(k));
  } else if (store.scheme == "approx") {
    const double eps = 1.0 / std::stod(store.params.substr(8));
    std::printf("d ~ %llu (within factor %.4f)\n",
                static_cast<unsigned long long>(
                    core::ApproxScheme::query(eps, lu, lv)),
                1 + eps);
  } else {
    std::fprintf(stderr, "unknown scheme tag '%s'\n", store.scheme.c_str());
    return 1;
  }
  return 0;
}

int cmd_save(int argc, char** argv) {
  if (argc != 4 && argc != 5) return usage();
  const std::string format = argc == 5 ? argv[4] : "mappable";
  if (format != "v1" && format != "mappable") return usage();
  std::ifstream in(argv[2], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[2]);
    return 1;
  }
  const auto loaded = core::LabelStore::load_arena(in);
  core::LabelStore::save_file(argv[3], loaded.scheme, loaded.labels,
                              loaded.params, format == "mappable");
  std::printf("rewrote %zu %s labels -> %s (%s container)\n",
              loaded.labels.size(), loaded.scheme.c_str(), argv[3],
              format.c_str());
  return 0;
}

int cmd_load(int argc, char** argv) {
  if (argc != 3) return usage();
  const auto opened = core::LabelStore::open_mapped(argv[2]);
  core::LabelStats st;
  for (std::size_t i = 0; i < opened.labels.size(); ++i)
    st.add(opened.labels.label_bits(i));
  std::printf(
      "scheme=%s params='%s' labels=%zu max=%zu bits avg=%.1f bits "
      "storage=%s\n",
      opened.scheme.c_str(), opened.params.c_str(), st.count, st.max_bits,
      st.avg_bits(),
      opened.labels.mapped() ? "mmap (zero-copy)" : "owned (streamed)");
  return 0;
}

int cmd_serve_bench(int argc, char** argv) {
  serve::ForestOptions opt;
  std::size_t batch = 4096;
  std::uint64_t seed = 1;
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      const std::string name = argv[i];
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name.c_str());
        return 2;
      }
      const char* val = argv[++i];
      char* end = nullptr;
      const long long v = std::strtoll(val, &end, 10);
      if (*val == '\0' || *end != '\0' || v < 0) {
        std::fprintf(stderr, "bad value '%s' for %s\n", val, name.c_str());
        return 2;
      }
      if (name == "--shards")
        opt.shards = static_cast<std::size_t>(v);
      else if (name == "--threads")
        opt.threads = static_cast<int>(v);
      else if (name == "--batch")
        batch = static_cast<std::size_t>(v);
      else if (name == "--seed")
        seed = static_cast<std::uint64_t>(v);
      else
        return usage();
      continue;
    }
    files.emplace_back(argv[i]);
  }
  if (files.empty() || batch == 0) return usage();

  serve::ForestIndex index(opt);
  for (const auto& f : files) {
    const serve::TreeId id = index.add_file(f);
    if (index.label_count(id) == 0) {
      std::fprintf(stderr, "%s holds no labels; nothing to query\n",
                   f.c_str());
      return 1;
    }
    std::printf("tree %u: %s, %zu labels, %s\n", id,
                index.scheme(id).name().c_str(), index.label_count(id),
                index.mapped(id) ? "mmap" : "owned");
  }

  std::mt19937_64 rng(seed);
  std::vector<serve::Request> reqs(batch);
  for (auto& r : reqs) {
    r.tree = static_cast<serve::TreeId>(rng() % index.tree_count());
    const auto n = static_cast<std::uint64_t>(index.label_count(r.tree));
    r.u = static_cast<tree::NodeId>(rng() % n);
    r.v = static_cast<tree::NodeId>(rng() % n);
  }

  using clock = std::chrono::steady_clock;
  (void)index.query_batch(reqs);  // warmup (and cache fill)
  const auto t0 = clock::now();
  std::size_t done = 0;
  double dt = 0;
  do {
    (void)index.query_batch(reqs);
    done += reqs.size();
    dt = std::chrono::duration<double>(clock::now() - t0).count();
  } while (dt < 0.5);
  const auto st = index.cache_stats();
  std::printf(
      "batch_qps=%.0f (shards=%zu threads=%d batch=%zu)\n"
      "cache: %zu entries, %zu bytes, %zu hits, %zu misses, %zu evictions\n",
      static_cast<double>(done) / dt, index.shard_count(),
      opt.threads, batch, st.entries, st.bytes, st.hits, st.misses,
      st.evictions);
  return 0;
}

int cmd_update(int argc, char** argv) {
  if (argc < 4) return usage();
  const char* tree_path = argv[2];
  const char* out_path = argv[3];
  std::size_t edits = 100;
  std::uint64_t seed = 1;
  const char* tree_out = nullptr;
  for (int i = 4; i < argc; ++i) {
    const std::string name = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", name.c_str());
      return 2;
    }
    const char* val = argv[++i];
    if (name == "--tree-out") {
      tree_out = val;
      continue;
    }
    char* end = nullptr;
    const long long v = std::strtoll(val, &end, 10);
    if (*val == '\0' || *end != '\0' || v < 0) {
      std::fprintf(stderr, "bad value '%s' for %s\n", val, name.c_str());
      return 2;
    }
    if (name == "--edits")
      edits = static_cast<std::size_t>(v);
    else if (name == "--seed")
      seed = static_cast<std::uint64_t>(v);
    else
      return usage();
  }

  std::ifstream in(tree_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", tree_path);
    return 1;
  }
  const tree::Tree t = tree::read_text(in);

  using clock = std::chrono::steady_clock;
  auto t0 = clock::now();
  core::IncrementalRelabeler relab(t);
  const double build_ms =
      std::chrono::duration<double, std::milli>(clock::now() - t0).count();

  std::mt19937_64 rng(seed);
  t0 = clock::now();
  for (std::size_t e = 0; e < edits; ++e)
    (void)relab.insert_leaf(
        static_cast<tree::NodeId>(rng() % relab.size()));
  const double edit_ms =
      std::chrono::duration<double, std::milli>(clock::now() - t0).count();

  const auto loaded = relab.to_loaded();
  core::LabelStore::save_file(out_path, loaded.scheme, loaded.labels,
                              loaded.params);
  if (tree_out != nullptr) {
    std::ofstream tout(tree_out);
    if (!tout) {
      std::fprintf(stderr, "cannot open %s for writing\n", tree_out);
      return 1;
    }
    tree::write_text(tout, relab.snapshot());
    tout.flush();
    if (!tout) {
      std::fprintf(stderr, "write to %s failed\n", tree_out);
      return 1;
    }
  }

  const auto& st = relab.stats();
  std::printf(
      "grew %d -> %zu nodes (%zu edits in %.1f ms, %.3f ms/edit; initial "
      "build %.1f ms)\n"
      "outcomes: %llu incremental, %llu restructured, %llu full (heavy "
      "flip), %llu full (dirty cone)\n"
      "labels: %llu re-emitted, %llu spliced -> %s (stable-weight alstrup, "
      "mappable container)\n",
      t.size(), relab.size(), edits, edit_ms,
      edits > 0 ? edit_ms / static_cast<double>(edits) : 0.0, build_ms,
      static_cast<unsigned long long>(st.incremental),
      static_cast<unsigned long long>(st.restructured),
      static_cast<unsigned long long>(st.full_heavy_flip),
      static_cast<unsigned long long>(st.full_dirty_cone),
      static_cast<unsigned long long>(st.labels_reemitted),
      static_cast<unsigned long long>(st.labels_spliced), out_path);
  return 0;
}

int cmd_delta_save(int argc, char** argv) {
  if (argc < 5) return usage();
  const char* tree_path = argv[2];
  const char* base_path = argv[3];
  const char* delta_path = argv[4];
  std::size_t edits = 100;
  std::uint64_t seed = 1;
  bool inserts_only = false;
  const char* tree_out = nullptr;
  for (int i = 5; i < argc; ++i) {
    const std::string name = argv[i];
    if (name == "--inserts-only") {
      inserts_only = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", name.c_str());
      return 2;
    }
    const char* val = argv[++i];
    if (name == "--tree-out") {
      tree_out = val;
      continue;
    }
    char* end = nullptr;
    const long long v = std::strtoll(val, &end, 10);
    if (*val == '\0' || *end != '\0' || v < 0) {
      std::fprintf(stderr, "bad value '%s' for %s\n", val, name.c_str());
      return 2;
    }
    if (name == "--edits")
      edits = static_cast<std::size_t>(v);
    else if (name == "--seed")
      seed = static_cast<std::uint64_t>(v);
    else
      return usage();
  }

  std::ifstream in(tree_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", tree_path);
    return 1;
  }
  const tree::Tree t = tree::read_text(in);
  core::IncrementalRelabeler relab(t);

  // The base epoch: what a serving node already holds.
  {
    const auto loaded = relab.to_loaded();
    core::LabelStore::save_file(base_path, loaded.scheme, loaded.labels,
                                loaded.params);
  }
  relab.rebase_delta();

  // Random churn across the whole edit model (or inserts only).
  std::mt19937_64 rng(seed);
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  std::size_t done = 0;
  while (done < edits) {
    const auto op = inserts_only ? 0u : rng() % 10;
    try {
      if (op < 5) {
        tree::NodeId p;
        do p = static_cast<tree::NodeId>(rng() % relab.size());
        while (!relab.alive(p));
        (void)relab.insert_leaf(p, static_cast<std::uint32_t>(1 + rng() % 3));
      } else if (op < 7) {
        relab.delete_leaf(static_cast<tree::NodeId>(rng() % relab.size()));
      } else if (op < 8) {
        relab.set_edge_weight(static_cast<tree::NodeId>(rng() % relab.size()),
                              static_cast<std::uint32_t>(rng() % 4));
      } else if (op < 9) {
        if (relab.detached_root() == tree::kNoNode) {
          relab.detach_subtree(
              static_cast<tree::NodeId>(rng() % relab.size()));
          continue;  // the attach below completes the move as one edit pair
        }
        tree::NodeId p;
        do p = static_cast<tree::NodeId>(rng() % relab.size());
        while (!relab.alive(p));
        relab.attach_subtree(p, 1);
      } else if (relab.detached_root() == tree::kNoNode) {
        (void)relab.compact();
      } else {
        continue;
      }
      ++done;
    } catch (const std::out_of_range&) {
    } catch (const std::invalid_argument&) {
    }
  }
  if (relab.detached_root() != tree::kNoNode) relab.attach_subtree(0, 1);
  const double edit_ms =
      std::chrono::duration<double, std::milli>(clock::now() - t0).count();

  const core::LabelDelta d = relab.make_delta();
  core::LabelStore::save_delta_file(delta_path, d);
  if (tree_out != nullptr) {
    std::ofstream tout(tree_out);
    if (!tout) {
      std::fprintf(stderr, "cannot open %s for writing\n", tree_out);
      return 1;
    }
    tree::write_text(tout, relab.snapshot());
  }

  std::size_t full_bytes = 0;
  {
    std::ostringstream full;
    const auto loaded = relab.to_loaded();
    core::LabelStore::save_mappable(full, loaded.scheme, loaded.labels,
                                    loaded.params);
    full_bytes = full.str().size();
  }
  std::ifstream delta_in(delta_path, std::ios::binary | std::ios::ate);
  const auto delta_bytes = static_cast<std::size_t>(delta_in.tellg());
  const auto& st = relab.stats();
  std::printf(
      "base %d nodes -> %zu ids (%zu live) after %zu edits in %.1f ms\n"
      "outcomes: %llu incremental, %llu restructured, %llu full rebuilds, "
      "%llu compactions\n"
      "delta: %zu dirty labels, %llu dropped ids, %zu edit records\n"
      "bytes: delta %zu vs full file %zu (%.1f%%) -> %s\n",
      t.size(), relab.size(), relab.live_size(), done, edit_ms,
      static_cast<unsigned long long>(st.incremental),
      static_cast<unsigned long long>(st.restructured),
      static_cast<unsigned long long>(st.full_heavy_flip +
                                      st.full_dirty_cone),
      static_cast<unsigned long long>(st.compactions), d.dirty.size(),
      static_cast<unsigned long long>(d.dropped_count()), d.edits.size(),
      delta_bytes, full_bytes,
      100.0 * static_cast<double>(delta_bytes) /
          static_cast<double>(full_bytes),
      delta_path);
  return 0;
}

int cmd_delta_apply(int argc, char** argv) {
  if (argc != 5) return usage();
  const auto base = core::LabelStore::open_mapped(argv[2]);
  std::ifstream din(argv[3], std::ios::binary);
  if (!din)
    throw util::IoError(argv[3], "open delta for reading",
                        errno != 0 ? errno : ENOENT);
  const core::LabelDelta d = core::LabelStore::load_delta(din);
  if (d.scheme != base.scheme || d.params != base.params) {
    std::fprintf(stderr, "delta is for scheme '%s' params '%s', base holds "
                 "'%s'/'%s'\n",
                 d.scheme.c_str(), d.params.c_str(), base.scheme.c_str(),
                 base.params.c_str());
    return 4;
  }
  const bits::LabelArena patched =
      core::LabelStore::apply_delta(base.labels, d);
  core::LabelStore::save_file(argv[4], d.scheme, patched, d.params);
  std::printf(
      "patched %zu -> %zu labels (%zu dirty, %llu dropped, %zu shape edits) "
      "-> %s\n",
      base.labels.size(), patched.size(), d.dirty.size(),
      static_cast<unsigned long long>(d.dropped_count()), d.edits.size(),
      argv[4]);
  return 0;
}

int cmd_journal(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string verb = argv[2];
  const std::string base_path = argv[3];
  core::DeltaJournal j = core::DeltaJournal::open(base_path);
  const auto& rec = j.recovery();
  std::printf(
      "journal %s: %zu records replayed, %llu bytes truncated%s%s\n"
      "state: %zu records (%llu bytes) pending, chain %016llx, %zu labels\n",
      core::DeltaJournal::journal_path(base_path).c_str(),
      static_cast<std::size_t>(rec.records_replayed),
      static_cast<unsigned long long>(rec.bytes_truncated),
      rec.journal_reset ? ", journal reset" : "",
      rec.created ? ", created" : "", static_cast<std::size_t>(j.record_count()),
      static_cast<unsigned long long>(j.journal_bytes()),
      static_cast<unsigned long long>(j.chain()), j.labels().size());

  if (verb == "info") {
    if (argc != 4) return usage();
    return 0;
  }
  if (verb == "append") {
    if (argc != 5) return usage();
    std::ifstream din(argv[4], std::ios::binary);
    if (!din)
      throw util::IoError(argv[4], "open delta for reading",
                          errno != 0 ? errno : ENOENT);
    core::LabelDelta d = core::LabelStore::load_delta(din);
    if (d.base_chain != j.chain()) {
      std::printf("rechaining delta %016llx -> journal chain %016llx\n",
                  static_cast<unsigned long long>(d.base_chain),
                  static_cast<unsigned long long>(j.chain()));
      core::LabelStore::rechain(d, j.chain());
    }
    j.append(d);
    std::printf("appended: %zu records (%llu bytes), chain %016llx, "
                "%zu labels\n",
                static_cast<std::size_t>(j.record_count()),
                static_cast<unsigned long long>(j.journal_bytes()),
                static_cast<unsigned long long>(j.chain()),
                j.labels().size());
    return 0;
  }
  if (verb == "checkpoint") {
    if (argc != 4) return usage();
    j.checkpoint();
    std::printf("checkpointed into %s (chain %016llx, %zu labels)\n",
                base_path.c_str(),
                static_cast<unsigned long long>(j.chain()),
                j.labels().size());
    return 0;
  }
  return usage();
}

// serve: SIGINT/SIGTERM ask the server for a graceful drain. The handler
// only touches async-signal-safe state (request_stop is one write() on the
// server's wake pipe, the flag is a lock-free atomic).
net::Server* g_signal_server = nullptr;
std::atomic<bool> g_signal_stop{false};
void serve_signal_handler(int) {
  g_signal_stop.store(true, std::memory_order_release);
  if (g_signal_server != nullptr) g_signal_server->request_stop();
}

int cmd_serve(int argc, char** argv) {
  if (argc < 4) return usage();
  const char* tree_path = argv[2];
  const char* base_path = argv[3];
  long long port = 0, edits = 0, wait_subscribers = 0;
  std::uint64_t seed = 1;
  const char* port_file = nullptr;
  for (int i = 4; i < argc; ++i) {
    const std::string name = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", name.c_str());
      return 2;
    }
    const char* val = argv[++i];
    if (name == "--port-file") {
      port_file = val;
      continue;
    }
    char* end = nullptr;
    const long long v = std::strtoll(val, &end, 10);
    if (*val == '\0' || *end != '\0' || v < 0) {
      std::fprintf(stderr, "bad value '%s' for %s\n", val, name.c_str());
      return 2;
    }
    if (name == "--port")
      port = v;
    else if (name == "--edits")
      edits = v;
    else if (name == "--seed")
      seed = static_cast<std::uint64_t>(v);
    else if (name == "--wait-subscribers")
      wait_subscribers = v;
    else
      return usage();
  }

  std::ifstream in(tree_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", tree_path);
    return 1;
  }
  const tree::Tree t = tree::read_text(in);
  core::IncrementalRelabeler relab(t);

  core::JournalOptions jopt;
  jopt.sync = false;  // the exit checkpoint is the durability point here
  jopt.checkpoint_records = 32;  // frequent folds: followers exercise the
                                 // snapshot catch-up path, not just deltas
  core::DeltaJournal journal =
      core::DeltaJournal::create(base_path, relab.to_loaded(), jopt);

  serve::ForestIndex index;
  const serve::TreeId tree0 = index.add(relab.to_loaded());

  net::ServerOptions sopt;
  sopt.port = static_cast<std::uint16_t>(port);
  net::Server server(index, sopt);
  server.attach_journal(&journal, tree0);
  server.start();
  g_signal_server = &server;
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  std::printf("serving %zu %s labels on 127.0.0.1:%u (journal %s)\n",
              relab.labels().size(), core::IncrementalRelabeler::scheme_tag(),
              server.port(),
              core::DeltaJournal::journal_path(base_path).c_str());
  std::fflush(stdout);
  if (port_file != nullptr)
    util::atomic_write_file(port_file, std::to_string(server.port()));

  // Churn: random leaf inserts shipped as journal deltas, which the server
  // streams live to every subscriber.
  std::mt19937_64 rng(seed);
  int pending = 0;
  for (long long e = 0; e < edits && !g_signal_stop.load(); ++e) {
    (void)relab.insert_leaf(
        static_cast<tree::NodeId>(rng() % relab.size()),
        static_cast<std::uint32_t>(1 + rng() % 8));
    ++pending;
    if (rng() % 4 == 0) {
      const core::LabelDelta d = relab.make_delta();
      server.replicate(d);
      relab.advance_delta(d);
      index.apply_delta(tree0, d);
      pending = 0;
    }
    if (e % 16 == 15)  // stretch the stream so followers interleave
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (pending > 0) {
    const core::LabelDelta d = relab.make_delta();
    server.replicate(d);
    relab.advance_delta(d);
    index.apply_delta(tree0, d);
  }
  if (edits > 0)
    std::printf("churned %lld edits (chain %016llx)\n", edits,
                static_cast<unsigned long long>(journal.chain()));

  if (wait_subscribers > 0) {
    server.announce_end();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    while (server.subscribers_finished() <
               static_cast<std::uint64_t>(wait_subscribers) &&
           !g_signal_stop.load()) {
      if (std::chrono::steady_clock::now() >= deadline) {
        std::fprintf(stderr, "timed out waiting for %lld subscriber(s)\n",
                     wait_subscribers);
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  } else {
    while (!g_signal_stop.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  server.stop();
  g_signal_server = nullptr;
  const net::Server::Stats st = server.stats();
  std::printf(
      "served: %llu conns, %llu batches (%llu queries), %llu deltas + "
      "%llu snapshots streamed, %llu bad frames, %llu shed\n",
      static_cast<unsigned long long>(st.accepted),
      static_cast<unsigned long long>(st.query_batches),
      static_cast<unsigned long long>(st.queries),
      static_cast<unsigned long long>(st.deltas_sent),
      static_cast<unsigned long long>(st.snapshots_sent),
      static_cast<unsigned long long>(st.bad_frames),
      static_cast<unsigned long long>(st.overloaded));
  journal.checkpoint();
  std::printf("checkpointed into %s (chain %016llx, %zu labels)\n",
              base_path, static_cast<unsigned long long>(journal.chain()),
              journal.labels().size());
  return 0;
}

int cmd_follow(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string target = argv[2];
  const char* out_path = argv[3];
  const char* stats_port_file = nullptr;
  long long linger_ms = 0;
  for (int i = 4; i < argc; ++i) {
    const std::string name = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", name.c_str());
      return 2;
    }
    const char* val = argv[++i];
    if (name == "--stats-port-file") {
      stats_port_file = val;
      continue;
    }
    char* end = nullptr;
    const long long v = std::strtoll(val, &end, 10);
    if (*val == '\0' || *end != '\0' || v < 0) {
      std::fprintf(stderr, "bad value '%s' for %s\n", val, name.c_str());
      return 2;
    }
    if (name == "--linger-ms")
      linger_ms = v;
    else
      return usage();
  }
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon + 1 >= target.size())
    return usage();
  const std::string host = target.substr(0, colon);
  const long long port = std::atoll(target.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return usage();

  // Any placeholder labeling works: its chain matches nothing the leader
  // ever had, so the first reply is a full snapshot.
  serve::ForestIndex index;
  const core::IncrementalRelabeler placeholder(tree::path(1));
  const serve::TreeId tree0 = index.add(placeholder.to_loaded());

  // The follower's own front end: while (and after) it converges, a peer
  // can query it and pull its metrics — replication-lag gauges included.
  std::optional<net::Server> stats_server;
  if (stats_port_file != nullptr) {
    stats_server.emplace(index);
    stats_server->start();
    util::atomic_write_file(stats_port_file,
                            std::to_string(stats_server->port()));
    std::printf("follower stats server on 127.0.0.1:%u\n",
                stats_server->port());
    std::fflush(stdout);
  }

  net::ReplicatorOptions ropt;
  ropt.host = host;
  ropt.port = static_cast<std::uint16_t>(port);
  ropt.tree = tree0;
  ropt.stop_on_end = true;
  ropt.max_attempts = 60;
  net::Replicator repl(index, ropt);
  std::printf("following %s:%lld ...\n", host.c_str(), port);
  std::fflush(stdout);
  const bool ended = repl.run();
  const net::Replicator::Stats rs = repl.stats();
  std::printf(
      "follower: %llu connects (%llu failed, %llu resubscribes), "
      "%llu snapshots + %llu deltas applied, %llu frame errors, "
      "%llu chain rejects\n",
      static_cast<unsigned long long>(rs.connects),
      static_cast<unsigned long long>(rs.connect_failures),
      static_cast<unsigned long long>(rs.reconnects),
      static_cast<unsigned long long>(rs.snapshots_applied),
      static_cast<unsigned long long>(rs.deltas_applied),
      static_cast<unsigned long long>(rs.frame_errors),
      static_cast<unsigned long long>(rs.chain_rejects));
  if (!ended) {
    std::fprintf(stderr, "gave up: leader made no progress for %d attempts\n",
                 ropt.max_attempts);
    return 1;
  }
  const core::LabelStore::LoadedArena snap = index.snapshot_labels(tree0);
  core::LabelStore::save_file(out_path, snap.scheme, snap.labels, snap.params,
                              /*mappable=*/true);
  std::printf("converged at chain %016llx: wrote %zu labels -> %s\n",
              static_cast<unsigned long long>(index.chain(tree0)),
              snap.labels.size(), out_path);
  std::fflush(stdout);
  if (stats_server.has_value()) {
    // Stay probe-able past convergence so a peer can read the final gauges
    // (net.replicator.behind should be 0 here).
    if (linger_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
    stats_server->stop();
  }
  return 0;
}

int cmd_stats_remote(int argc, char** argv) {
  const std::string target = argv[2];
  const std::size_t colon = target.rfind(':');
  const std::string host = target.substr(0, colon);
  const long long port = std::atoll(target.c_str() + colon + 1);
  if (colon == 0 || port <= 0 || port > 65535) return usage();
  long long probe = 0;
  for (int i = 3; i < argc; ++i) {
    const std::string name = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", name.c_str());
      return 2;
    }
    const char* val = argv[++i];
    char* end = nullptr;
    const long long v = std::strtoll(val, &end, 10);
    if (name != "--probe" || *val == '\0' || *end != '\0' || v < 0)
      return usage();
    probe = v;
  }

  net::QueryClient client(host, static_cast<std::uint16_t>(port));
  if (!client.connected()) {
    std::fprintf(stderr, "cannot connect to %s\n", target.c_str());
    return 1;
  }
  // Warm the server's query/latency metrics before the dump. Out-of-range
  // ids only degrade individual results (query_batch_checked), so blind
  // probes against a small tree are safe.
  std::mt19937_64 rng(1);
  for (long long b = 0; b < probe; ++b) {
    std::vector<serve::Request> reqs(64);
    for (auto& r : reqs) {
      r.tree = 0;
      r.u = static_cast<tree::NodeId>(rng() % 256);
      r.v = static_cast<tree::NodeId>(rng() % 256);
    }
    std::vector<serve::QueryResult> out;
    if (client.query_batch(reqs, out) == net::QueryClient::BatchStatus::kError) {
      std::fprintf(stderr, "probe batch failed against %s\n", target.c_str());
      return 1;
    }
  }
  std::vector<net::StatLine> lines;
  if (!client.stats(lines)) {
    std::fprintf(stderr, "stats request failed against %s\n", target.c_str());
    return 1;
  }
  for (const auto& l : lines)
    std::printf("%s %llu\n", l.name.c_str(),
                static_cast<unsigned long long>(l.value));
  return 0;
}

int cmd_stats(int argc, char** argv) {
  if (argc < 3) return usage();
  // Dual mode: `host:port` probes a live server's metrics registry over
  // the wire; a plain path reports label-size statistics from a file.
  if (std::strchr(argv[2], ':') != nullptr) return cmd_stats_remote(argc, argv);
  if (argc != 3) return usage();
  const auto store = load_file(argv[2]);
  core::LabelStats st;
  for (const auto& l : store.labels) st.add(l.size());
  std::printf("scheme=%s params='%s' labels=%zu max=%zu bits avg=%.1f bits\n",
              store.scheme.c_str(), store.params.c_str(), st.count,
              st.max_bits, st.avg_bits());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "gen") == 0) return cmd_gen(argc, argv);
    if (std::strcmp(argv[1], "label") == 0) return cmd_label(argc, argv);
    if (std::strcmp(argv[1], "query") == 0) return cmd_query(argc, argv);
    if (std::strcmp(argv[1], "stats") == 0) return cmd_stats(argc, argv);
    if (std::strcmp(argv[1], "save") == 0) return cmd_save(argc, argv);
    if (std::strcmp(argv[1], "load") == 0) return cmd_load(argc, argv);
    if (std::strcmp(argv[1], "serve-bench") == 0)
      return cmd_serve_bench(argc, argv);
    if (std::strcmp(argv[1], "update") == 0) return cmd_update(argc, argv);
    if (std::strcmp(argv[1], "delta-save") == 0)
      return cmd_delta_save(argc, argv);
    if (std::strcmp(argv[1], "delta-apply") == 0)
      return cmd_delta_apply(argc, argv);
    if (std::strcmp(argv[1], "journal") == 0) return cmd_journal(argc, argv);
    if (std::strcmp(argv[1], "serve") == 0) return cmd_serve(argc, argv);
    if (std::strcmp(argv[1], "follow") == 0) return cmd_follow(argc, argv);
  } catch (const util::IoError& e) {
    // I/O failures (missing files, ENOSPC, permissions): exit 3, with the
    // path and errno the error carries. Must precede the runtime_error
    // handler — IoError derives from it.
    std::fprintf(stderr, "io error: %s\n", e.what());
    return 3;
  } catch (const std::runtime_error& e) {
    // Corrupt or invalid inputs (bad containers, torn deltas, bad chains).
    std::fprintf(stderr, "error: %s\n", e.what());
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
