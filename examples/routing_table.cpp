// routing_table — k-distance labels as compact per-device state in a
// distributed network.
//
// Scenario: a spanning tree of a campus network (core switches, building
// aggregation, access switches, hosts). Each device stores only its own
// k-hop label. Any device can decide, from two labels alone, whether
// another device is within its k-hop maintenance zone — no routing tables,
// no shared state, no coordinator. This is the "distributed settings, nodes
// processed using only locally stored data" use the paper's introduction
// motivates.
#include <cinttypes>
#include <cstdio>
#include <random>
#include <vector>

#include "core/kdistance_scheme.hpp"
#include "tree/nca_index.hpp"
#include "tree/tree.hpp"

using namespace treelab;
using tree::NodeId;

namespace {

/// Campus spanning tree: 1 core, `agg` aggregation switches, each with
/// `acc` access switches, each with `hosts` hosts.
tree::Tree campus(int agg, int acc, int hosts) {
  std::vector<NodeId> parent{tree::kNoNode};
  for (int a = 0; a < agg; ++a) {
    const auto agg_id = static_cast<NodeId>(parent.size());
    parent.push_back(0);
    for (int s = 0; s < acc; ++s) {
      const auto acc_id = static_cast<NodeId>(parent.size());
      parent.push_back(agg_id);
      for (int h = 0; h < hosts; ++h) parent.push_back(acc_id);
    }
  }
  return tree::Tree(std::move(parent));
}

}  // namespace

int main() {
  const tree::Tree net = campus(16, 12, 24);
  std::printf("campus spanning tree: %d devices (1 core, 16 agg, 192 access, "
              "4608 hosts)\n\n",
              net.size());

  std::printf("%-6s %-12s %-12s %-14s\n", "k", "max_bits", "avg_bits",
              "bytes/device");
  for (std::uint64_t k : {1, 2, 4, 6}) {
    const core::KDistanceScheme s(net, k);
    std::printf("%-6" PRIu64 " %-12zu %-12.1f %-14.1f\n", k,
                s.stats().max_bits, s.stats().avg_bits(),
                s.stats().avg_bits() / 8);
  }

  // Simulate the maintenance-zone decision at k = 4 (host <-> host within
  // the same aggregation domain is 4 hops: host-access-agg-access-host).
  const std::uint64_t k = 4;
  const core::KDistanceScheme s(net, k);
  const tree::NcaIndex oracle(net);
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<NodeId> pick(0, net.size() - 1);
  int in_zone = 0, agree = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const NodeId a = pick(rng), b = pick(rng);
    const auto r = core::KDistanceScheme::query(k, s.label(a), s.label(b));
    const std::uint64_t truth = oracle.distance(a, b);
    in_zone += r.within;
    agree += r.within == (truth <= k) && (!r.within || r.distance == truth);
  }
  std::printf(
      "\nzone decisions at k=%" PRIu64 ": %d/%d sampled pairs in-zone, "
      "%d/%d label-only decisions agree with ground truth\n",
      k, in_zone, trials, agree, trials);
  std::printf(
      "each device carries ~%.0f bytes of immutable state and answers zone "
      "queries with no network round-trips.\n",
      s.stats().avg_bits() / 8);
  return 0;
}
