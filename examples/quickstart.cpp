// Quickstart: label a tree, then answer distance queries from labels alone.
//
//   $ ./quickstart
//
// Walks through every scheme in treelab on one small tree: exact distances
// (FGNW, the paper's 1/4 log^2 n scheme), bounded distances (k-distance),
// (1+eps)-approximate distances, and level-ancestor navigation.
#include <cinttypes>
#include <cstdio>

#include "core/approx_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/kdistance_scheme.hpp"
#include "core/level_ancestor_scheme.hpp"
#include "tree/generators.hpp"

using namespace treelab;

int main() {
  // A rooted tree given by its parent array: node 0 is the root with
  // children 1, 2, 3; node 1 has children 4 and 5; node 3 has child 6;
  // node 4 has child 7; node 6 has child 8 (so nodes 7 and 8 are 6 apart).
  const tree::Tree t(std::vector<tree::NodeId>{-1, 0, 0, 0, 1, 1, 3, 4, 6});
  std::printf("tree with %d nodes\n\n", t.size());

  // --- exact distances (Theorem 1.1) ---------------------------------
  const core::FgnwScheme exact(t);
  std::printf("exact labels: max %zu bits, avg %.1f bits\n",
              exact.stats().max_bits, exact.stats().avg_bits());
  for (auto [u, v] : {std::pair<int, int>{7, 8}, {4, 5}, {0, 7}, {2, 6}}) {
    // Note: the query sees only the two bit strings.
    const std::uint64_t d =
        core::FgnwScheme::query(exact.label(u), exact.label(v));
    std::printf("  d(%d, %d) = %" PRIu64 "\n", u, v, d);
  }

  // --- bounded distances (Theorem 1.3) -------------------------------
  const std::uint64_t k = 2;
  const core::KDistanceScheme bounded(t, k);
  std::printf("\nk-distance labels (k = %" PRIu64 "): max %zu bits\n", k,
              bounded.stats().max_bits);
  for (auto [u, v] : {std::pair<int, int>{4, 5}, {7, 8}}) {
    const auto r =
        core::KDistanceScheme::query(k, bounded.label(u), bounded.label(v));
    if (r.within)
      std::printf("  d(%d, %d) = %" PRIu64 " (within k)\n", u, v, r.distance);
    else
      std::printf("  d(%d, %d) > %" PRIu64 "\n", u, v, k);
  }

  // --- approximate distances (Theorem 1.4) ---------------------------
  const double eps = 0.5;
  const core::ApproxScheme approx(t, eps);
  std::printf("\n(1+%.2f)-approximate labels: max %zu bits\n", eps,
              approx.stats().max_bits);
  const std::uint64_t est =
      core::ApproxScheme::query(eps, approx.label(7), approx.label(8));
  std::printf("  d(7, 8) ~ %" PRIu64 " (true 6, guaranteed <= %.1f)\n", est,
              (1 + eps) * 6);

  // --- level ancestors (Section 3.6) ----------------------------------
  const core::LevelAncestorScheme la(t);
  auto anc = core::LevelAncestorScheme::level_ancestor(la.label(7), 2);
  std::printf("\nlevel-ancestor: the grandparent of node 7 has label depth "
              "%" PRIu64 " (node 1)\n",
              core::LevelAncestorScheme::depth_of_label(*anc));
  return 0;
}
