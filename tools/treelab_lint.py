#!/usr/bin/env python3
"""Project-invariant linter for treelab. Stdlib only — runs anywhere CI has
a Python 3, no pip.

These are repo-specific invariants that neither the compiler nor clang-tidy
can see:

  io-failpoint    every raw I/O call site in src/ (``::read``/``::write``/
                  ``::pread``/``::pwrite``/``::recv``/``::send``/``::open``
                  and direct ``std::[io]fstream`` construction) sits within
                  reach of a failpoint evaluation (``failpoint::check`` /
                  ``fp::check`` / ``TREELAB_FAILPOINT``) — the
                  fault-injection suite is only as honest as this coverage.
  msgtype-codec   every ``net::MsgType`` enum value has a codec branch in
                  src/net/frame.cpp and a case in tests/net_frame_test.cpp.
  metric-catalog  every metric name literal registered in src/ appears in
                  README.md's metric catalog (between the
                  ``<!-- metric-catalog:begin/end -->`` markers), and every
                  cataloged name still exists in src/.
  naked-new       no naked ``new`` / ``malloc`` in src/ — ownership goes
                  through make_unique/containers; a deliberate leak needs a
                  reason (see suppression below).
  nolint-reason   a NOLINT must name its check(s) and carry a reason:
                  ``// NOLINT(check-name): why this is fine``.

Suppression: ``// lint: allow(<rule>): <reason>`` on the flagged line or up
to 3 lines above it. The reason is mandatory.

Usage:
  tools/treelab_lint.py [--root DIR]      lint the repo rooted at DIR (.)
  tools/treelab_lint.py --self-test       run every fixture mini-repo under
                                          tests/lint/fixtures/ and check the
                                          expected rules (expect.txt) fire

Exit status: 0 clean, 1 findings (or self-test mismatch), 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

IO_CHECK_ABOVE = 40  # failpoint evaluation may sit this many lines before
IO_CHECK_BELOW = 10  # ... or after (check-then-recover idiom) the I/O call
ALLOW_ABOVE = 3      # allow(...) directive reach, in lines above the site

RULES = (
    "io-failpoint",
    "msgtype-codec",
    "metric-catalog",
    "naked-new",
    "nolint-reason",
)

ALLOW_RE = re.compile(r"//\s*lint:\s*allow\(([a-z-]+)\)\s*:\s*\S")
IO_CALL_RE = re.compile(
    r"(?<![\w:])::(?:read|write|pread|pwrite|recv|send|open)\s*\("
)
FSTREAM_RE = re.compile(r"\bstd::[io]?fstream\s+\w+\s*[({]")
FAILPOINT_RE = re.compile(r"failpoint::check|\bfp::check|TREELAB_FAILPOINT\b")
NAKED_RE = re.compile(r"\bnew\b|\bmalloc\s*\(")
NOLINT_OK_RE = re.compile(r"NOLINT(?:NEXTLINE|BEGIN|END)?\([^)]+\)\s*:\s*\S")
METRIC_REG_RE = re.compile(
    r"\b(?:counter|gauge|histogram|set_callback|expose|stat)\s*\(\s*"
    r'"([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+)"'
)
METRIC_LIT_RE = re.compile(r'"([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+)"')
CATALOG_NAME_RE = re.compile(r"`([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+)`")
CATALOG_BEGIN = "<!-- metric-catalog:begin -->"
CATALOG_END = "<!-- metric-catalog:end -->"


class Finding:
    def __init__(self, path: str, line: int, rule: str, msg: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.msg = msg

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.msg}"


def strip_code(text: str, keep_strings: bool) -> str:
    """Blank out comments (and, unless keep_strings, string/char literals)
    with spaces, preserving line structure so line numbers survive."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(c if keep_strings else " ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(c if keep_strings else " ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # str / chr
            quote = '"' if state == "str" else "'"
            if c == "\\" and nxt:
                out.append((c + nxt) if keep_strings else "  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c if keep_strings else " ")
            elif c == "\n":  # unterminated literal; resync rather than eat file
                state = "code"
                out.append(c)
            else:
                out.append(c if keep_strings else " ")
        i += 1
    return "".join(out)


def allow_map(raw_lines: list[str]) -> dict[int, set[str]]:
    """1-based line -> rules an allow(...) directive on that line names."""
    allows: dict[int, set[str]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        for m in ALLOW_RE.finditer(line):
            allows.setdefault(idx, set()).add(m.group(1))
    return allows


def is_allowed(allows: dict[int, set[str]], rule: str, line: int) -> bool:
    for at in range(max(1, line - ALLOW_ABOVE), line + 1):
        if rule in allows.get(at, set()):
            return True
    return False


def source_files(root: str, sub: str = "src") -> list[str]:
    base = os.path.join(root, sub)
    found = []
    for dirpath, _dirs, names in os.walk(base):
        for name in sorted(names):
            if name.endswith((".cpp", ".hpp", ".h", ".cc")):
                found.append(os.path.join(dirpath, name))
    return sorted(found)


def rel(root: str, path: str) -> str:
    return os.path.relpath(path, root)


def lint_file(root: str, path: str, findings: list[Finding]) -> None:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.splitlines()
    code_lines = strip_code(text, keep_strings=False).splitlines()
    allows = allow_map(raw_lines)
    rp = rel(root, path)

    # io-failpoint: raw I/O needs a failpoint evaluation within the window.
    for idx, line in enumerate(code_lines, start=1):
        hit = IO_CALL_RE.search(line) or FSTREAM_RE.search(line)
        if not hit:
            continue
        if is_allowed(allows, "io-failpoint", idx):
            continue
        lo = max(0, idx - 1 - IO_CHECK_ABOVE)
        hi = min(len(code_lines), idx + IO_CHECK_BELOW)
        window = "\n".join(code_lines[lo:hi])
        if not FAILPOINT_RE.search(window):
            findings.append(Finding(
                rp, idx, "io-failpoint",
                f"raw I/O `{hit.group(0).strip()}` with no failpoint "
                f"evaluation within {IO_CHECK_ABOVE} lines above / "
                f"{IO_CHECK_BELOW} below — fault injection cannot reach it",
            ))

    # naked-new: ownership must not start from a bare new/malloc.
    for idx, line in enumerate(code_lines, start=1):
        if line.lstrip().startswith("#"):
            continue  # preprocessor (e.g. `#include <new>`) is not a call
        m = NAKED_RE.search(line)
        if not m:
            continue
        if is_allowed(allows, "naked-new", idx):
            continue
        findings.append(Finding(
            rp, idx, "naked-new",
            f"naked `{m.group(0).strip()}` — use make_unique/containers, or "
            "justify a deliberate leak with a lint: allow directive",
        ))

    # nolint-reason: NOLINT must name checks and say why (raw lines — the
    # marker itself lives in a comment).
    for idx, line in enumerate(raw_lines, start=1):
        if "NOLINT" not in line:
            continue
        if is_allowed(allows, "nolint-reason", idx):
            continue
        if not NOLINT_OK_RE.search(line):
            findings.append(Finding(
                rp, idx, "nolint-reason",
                "NOLINT without named check(s) and a reason — write "
                "`// NOLINT(check-name): why`",
            ))


def lint_msgtype(root: str, findings: list[Finding]) -> None:
    hpp = os.path.join(root, "src", "net", "frame.hpp")
    cpp = os.path.join(root, "src", "net", "frame.cpp")
    test = os.path.join(root, "tests", "net_frame_test.cpp")
    if not os.path.exists(hpp):
        return  # repo (or fixture mini-root) has no wire protocol
    with open(hpp, encoding="utf-8", errors="replace") as f:
        hpp_text = strip_code(f.read(), keep_strings=True)
    m = re.search(r"enum\s+class\s+MsgType[^{]*\{(.*?)\};", hpp_text, re.S)
    if not m:
        findings.append(Finding(
            rel(root, hpp), 1, "msgtype-codec",
            "could not locate `enum class MsgType { ... };`",
        ))
        return
    enum_line = hpp_text[: m.start()].count("\n") + 1
    values = re.findall(r"\b(k[A-Z]\w*)\b", m.group(1))
    if not values:
        return
    for where, label in ((cpp, "codec branch in src/net/frame.cpp"),
                         (test, "case in tests/net_frame_test.cpp")):
        try:
            with open(where, encoding="utf-8", errors="replace") as f:
                body = strip_code(f.read(), keep_strings=True)
        except OSError:
            findings.append(Finding(
                rel(root, hpp), enum_line, "msgtype-codec",
                f"MsgType is defined but {os.path.relpath(where, root)} "
                "is missing",
            ))
            continue
        for v in values:
            if not re.search(rf"MsgType::{v}\b", body):
                findings.append(Finding(
                    rel(root, hpp), enum_line, "msgtype-codec",
                    f"MsgType::{v} has no {label}",
                ))


def lint_metrics(root: str, findings: list[Finding]) -> None:
    registered: dict[str, tuple[str, int]] = {}  # name -> first site
    all_literals: set[str] = set()
    for path in source_files(root):
        with open(path, encoding="utf-8", errors="replace") as f:
            body = strip_code(f.read(), keep_strings=True)
        for idx, line in enumerate(body.splitlines(), start=1):
            for m in METRIC_REG_RE.finditer(line):
                registered.setdefault(m.group(1), (rel(root, path), idx))
            for m in METRIC_LIT_RE.finditer(line):
                all_literals.add(m.group(1))
    readme = os.path.join(root, "README.md")
    if not registered and not os.path.exists(readme):
        return
    if not os.path.exists(readme):
        findings.append(Finding(
            "README.md", 1, "metric-catalog",
            "metrics are registered in src/ but README.md does not exist",
        ))
        return
    with open(readme, encoding="utf-8", errors="replace") as f:
        doc_lines = f.read().splitlines()
    begin = end = None
    for idx, line in enumerate(doc_lines, start=1):
        if CATALOG_BEGIN in line and begin is None:
            begin = idx
        if CATALOG_END in line and end is None:
            end = idx
    if begin is None or end is None or end <= begin:
        if registered:
            findings.append(Finding(
                "README.md", 1, "metric-catalog",
                f"missing `{CATALOG_BEGIN}` / `{CATALOG_END}` markers "
                "around the metric catalog",
            ))
        return
    documented: dict[str, int] = {}
    for idx in range(begin, end - 1):
        for m in CATALOG_NAME_RE.finditer(doc_lines[idx]):
            documented.setdefault(m.group(1), idx + 1)
    for name, (path, line) in sorted(registered.items()):
        if name not in documented:
            findings.append(Finding(
                path, line, "metric-catalog",
                f"metric `{name}` is registered here but absent from "
                "README.md's metric catalog",
            ))
    for name, line in sorted(documented.items()):
        if name not in all_literals:
            findings.append(Finding(
                "README.md", line, "metric-catalog",
                f"cataloged metric `{name}` no longer exists as a literal "
                "in src/",
            ))


def lint_root(root: str) -> list[Finding]:
    findings: list[Finding] = []
    for path in source_files(root):
        lint_file(root, path, findings)
    lint_msgtype(root, findings)
    lint_metrics(root, findings)
    return findings


def self_test(fixtures: str) -> int:
    if not os.path.isdir(fixtures):
        print(f"treelab_lint: fixtures directory not found: {fixtures}",
              file=sys.stderr)
        return 2
    failures = 0
    cases = sorted(
        d for d in os.listdir(fixtures)
        if os.path.isdir(os.path.join(fixtures, d))
    )
    if not cases:
        print("treelab_lint: no fixture cases found", file=sys.stderr)
        return 2
    for case in cases:
        case_dir = os.path.join(fixtures, case)
        expect_path = os.path.join(case_dir, "expect.txt")
        try:
            with open(expect_path, encoding="utf-8") as f:
                wanted = {
                    w for w in (line.strip() for line in f)
                    if w and not w.startswith("#") and w != "clean"
                }
        except OSError:
            print(f"FAIL {case}: missing expect.txt")
            failures += 1
            continue
        unknown = wanted - set(RULES)
        if unknown:
            print(f"FAIL {case}: expect.txt names unknown rules {sorted(unknown)}")
            failures += 1
            continue
        got_findings = lint_root(case_dir)
        got = {f.rule for f in got_findings}
        if got == wanted:
            label = ", ".join(sorted(wanted)) if wanted else "clean"
            print(f"ok   {case}: {label}")
        else:
            failures += 1
            print(f"FAIL {case}: expected {sorted(wanted) or 'clean'}, "
                  f"got {sorted(got) or 'clean'}")
            for f in got_findings:
                print(f"     {f}")
    if failures:
        print(f"treelab_lint self-test: {failures}/{len(cases)} cases failed")
        return 1
    print(f"treelab_lint self-test: {len(cases)} cases ok")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="treelab_lint.py",
        description="treelab project-invariant linter (see module docstring)",
    )
    parser.add_argument("--root", default=None,
                        help="repo root to lint (default: the checkout "
                             "containing this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture mini-repos instead of linting")
    parser.add_argument("--fixtures", default=None,
                        help="fixture directory for --self-test "
                             "(default: <root>/tests/lint/fixtures)")
    args = parser.parse_args(argv)

    script_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    root = os.path.abspath(args.root) if args.root else script_root
    if args.self_test:
        fixtures = os.path.abspath(args.fixtures) if args.fixtures else \
            os.path.join(root, "tests", "lint", "fixtures")
        return self_test(fixtures)

    if not os.path.isdir(os.path.join(root, "src")):
        print(f"treelab_lint: no src/ under {root}", file=sys.stderr)
        return 2
    findings = lint_root(root)
    for f in findings:
        print(f)
    if findings:
        print(f"treelab_lint: {len(findings)} finding(s)")
        return 1
    print("treelab_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
