// Shared helpers for the benchmark harness: aligned table printing and the
// theoretical curves the measured points are compared against.
#pragma once

#include <chrono>
#include <cmath>
#include <concepts>
#include <cstddef>
#include <cstdio>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

namespace treelab::bench {

/// Shared throughput harness: runs `f(batch)` repeatedly (after one warmup
/// call) until `min_seconds` elapsed; returns operations/sec assuming each
/// call performs `batch` operations.
template <typename F>
inline double measure_qps(F&& f, std::size_t batch = 4096,
                          double min_seconds = 0.2) {
  using clock = std::chrono::steady_clock;
  f(batch / 4 + 1);  // warmup
  const auto t0 = clock::now();
  std::size_t done = 0;
  double dt = 0;
  do {
    f(batch);
    done += batch;
    dt = std::chrono::duration<double>(clock::now() - t0).count();
  } while (dt < min_seconds);
  return static_cast<double>(done) / dt;
}

/// UTC wall-clock provenance stamp, e.g. "2026-08-08T12:34:56Z".
inline std::string timestamp_utc() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// The shared BENCH_*.json provenance header: when the run happened, how
/// many hardware threads the machine offered, and the fan-out the bench
/// planned to drive (0 = single-threaded / not applicable). Call inside an
/// open JSON object; emits trailing-comma'd fields.
inline void json_provenance(std::FILE* f, int planned_fanout) {
  std::fprintf(f, "  \"timestamp_utc\": \"%s\",\n", timestamp_utc().c_str());
  std::fprintf(f, "  \"threads_available\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"planned_fanout\": %d,\n", planned_fanout);
}

/// Prints a row of right-aligned cells (12 chars each, first cell 26).
inline void row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i)
    std::printf(i == 0 ? "%-26s" : "%12s", cells[i].c_str());
  std::printf("\n");
}

inline std::string num(double x, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, x);
  return buf;
}

template <typename T>
  requires std::integral<T>
inline std::string num(T x) {
  return std::to_string(x);
}

inline double log2d(double x) { return std::log2(x); }

/// 1/4 log^2 n and 1/2 log^2 n — the paper's headline curves.
inline double quarter_log2(double n) {
  const double l = log2d(n);
  return 0.25 * l * l;
}
inline double half_log2(double n) {
  const double l = log2d(n);
  return 0.5 * l * l;
}

}  // namespace treelab::bench
