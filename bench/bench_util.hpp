// Shared helpers for the benchmark harness: aligned table printing and the
// theoretical curves the measured points are compared against.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <concepts>
#include <cstddef>
#include <cstdio>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "bits/kernels.hpp"

namespace treelab::bench {

/// Shared throughput harness: runs `f(batch)` repeatedly (after one warmup
/// call) until `min_seconds` elapsed; returns operations/sec assuming each
/// call performs `batch` operations. `reps` takes the best of that many
/// independent measurement windows: on a shared host the noise is almost
/// entirely one-sided (a neighbor steals the core and a window reads slow,
/// nothing ever reads fast), so the max is the honest estimate of what the
/// code costs — single-window comparative rows once published an armed
/// failpoint *beating* the disarmed run on scheduling luck alone.
template <typename F>
inline double measure_qps(F&& f, std::size_t batch = 4096,
                          double min_seconds = 0.2, int reps = 1) {
  using clock = std::chrono::steady_clock;
  f(batch / 4 + 1);  // warmup
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    std::size_t done = 0;
    double dt = 0;
    do {
      f(batch);
      done += batch;
      dt = std::chrono::duration<double>(clock::now() - t0).count();
    } while (dt < min_seconds);
    best = std::max(best, static_cast<double>(done) / dt);
  }
  return best;
}

/// UTC wall-clock provenance stamp, e.g. "2026-08-08T12:34:56Z".
inline std::string timestamp_utc() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// The shared BENCH_*.json provenance header: when the run happened, how
/// many hardware threads the machine offered, the fan-out the bench
/// planned to drive (0 = single-threaded / not applicable), and the decode
/// kernel dispatch level the process resolved (scalar/popcnt/avx2 — a row
/// measured with forced-scalar kernels must not pass for a vectorized
/// one). Call inside an open JSON object; emits trailing-comma'd fields.
inline void json_provenance(std::FILE* f, int planned_fanout) {
  std::fprintf(f, "  \"timestamp_utc\": \"%s\",\n", timestamp_utc().c_str());
  std::fprintf(f, "  \"threads_available\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"planned_fanout\": %d,\n", planned_fanout);
  std::fprintf(f, "  \"kernels\": \"%s\",\n", bits::kernels::level_name());
}

/// Prints a row of right-aligned cells (12 chars each, first cell 26).
inline void row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i)
    std::printf(i == 0 ? "%-26s" : "%12s", cells[i].c_str());
  std::printf("\n");
}

inline std::string num(double x, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, x);
  return buf;
}

template <typename T>
  requires std::integral<T>
inline std::string num(T x) {
  return std::to_string(x);
}

inline double log2d(double x) { return std::log2(x); }

/// 1/4 log^2 n and 1/2 log^2 n — the paper's headline curves.
inline double quarter_log2(double n) {
  const double l = log2d(n);
  return 0.25 * l * l;
}
inline double half_log2(double n) {
  const double l = log2d(n);
  return 0.5 * l * l;
}

}  // namespace treelab::bench
