// Shared helpers for the benchmark harness: aligned table printing and the
// theoretical curves the measured points are compared against.
#pragma once

#include <cmath>
#include <concepts>
#include <cstdio>
#include <string>
#include <vector>

namespace treelab::bench {

/// Prints a row of right-aligned cells (12 chars each, first cell 26).
inline void row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i)
    std::printf(i == 0 ? "%-26s" : "%12s", cells[i].c_str());
  std::printf("\n");
}

inline std::string num(double x, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, x);
  return buf;
}

template <typename T>
  requires std::integral<T>
inline std::string num(T x) {
  return std::to_string(x);
}

inline double log2d(double x) { return std::log2(x); }

/// 1/4 log^2 n and 1/2 log^2 n — the paper's headline curves.
inline double quarter_log2(double n) {
  const double l = log2d(n);
  return 0.25 * l * l;
}
inline double half_log2(double n) {
  const double l = log2d(n);
  return 0.5 * l * l;
}

}  // namespace treelab::bench
