// BT — construction-side throughput: the "computed once centrally, then
// shipped" half of the labeling story. Measures, at a configurable n
// (default 2^18), every scheme's end-to-end build time three ways:
//
//   * own-scaffold serial — each scheme builds its whole pipeline itself
//     (what the Tree-taking constructors do; the pre-scaffold behaviour),
//   * shared-scaffold serial — one TreeScaffold feeds all five schemes
//     (binarize / HPD / collapsed / NCA computed once per tree),
//   * shared-scaffold parallel — same, with label emission fanned out.
//
// Plus a thread-scaling section for FgnwScheme and SpanningOracle, an
// n-sweep (up to 2^20) for FgnwScheme, and an edit-churn section: per
// single-leaf edit, a full AlstrupScheme rebuild (stable weights) vs
// IncrementalRelabeler's incremental relabel, with the fallback counters —
// the dynamic-forest acceptance number (edit_churn_speedup). Emits
// BENCH_build.json with the configuration (n, seed, thread counts,
// hardware concurrency) so runs on different machines are comparable; on a
// single-core container the parallel rows legitimately sit at ~1x.
//
// Usage: bench_build_time [--n N] [--seed S] [--sweep-max N] [--quick]
//   --quick shrinks the edit-churn section to CI-smoke size.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <random>

#include "bench_util.hpp"
#include "core/alstrup_scheme.hpp"
#include "core/approx_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/incremental_relabeler.hpp"
#include "core/kdistance_scheme.hpp"
#include "core/peleg_scheme.hpp"
#include "core/spanning_oracle.hpp"
#include "core/tree_scaffold.hpp"
#include "tree/generators.hpp"
#include "tree/graph.hpp"
#include "util/parallel.hpp"

using namespace treelab;

namespace {

using clock_type = std::chrono::steady_clock;

template <typename F>
double measure_ms(F&& f) {
  const auto t0 = clock_type::now();
  f();
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0)
      .count();
}

/// Best-of-`reps` for the comparative rows (serial vs parallel, thread
/// scaling): a single cold shot let allocator/page-cache state from the
/// previous row masquerade as a parallelism regression — the published
/// suite_shared_parallel once measured *slower* than serial on a 1-core
/// box on ordering noise alone. The minimum of two runs is the honest
/// "what this configuration costs" number.
template <typename F>
double measure_ms_best(F&& f, int reps = 2) {
  double best = measure_ms(f);
  for (int r = 1; r < reps; ++r) best = std::min(best, measure_ms(f));
  return best;
}

struct Row {
  std::string name;
  double ms = 0;
  int fanout = 0;  ///< thread fan-out the row actually ran (0 = serial row)
};

std::int64_t flag(int argc, char** argv, const char* name,
                  std::int64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  return fallback;
}

/// Builds all five schemes off `scaffold` (labels dropped immediately;
/// construction is the thing under test).
void build_suite(const core::TreeScaffold& scaffold) {
  { const core::FgnwScheme s(scaffold); }
  { const core::AlstrupScheme s(scaffold); }
  { const core::PelegScheme s(scaffold); }
  { const core::ApproxScheme s(scaffold, 0.125); }
  { const core::KDistanceScheme s(scaffold, 8); }
}

}  // namespace

int main(int argc, char** argv) {
  const auto n = static_cast<tree::NodeId>(flag(argc, argv, "--n", 1 << 18));
  const auto seed = static_cast<std::uint64_t>(flag(argc, argv, "--seed", 123));
  const auto sweep_max =
      static_cast<tree::NodeId>(flag(argc, argv, "--sweep-max", 1 << 20));
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  // Clamp the build fan-out by the hardware the same way serving's
  // planned_fanout does: a TREELAB_THREADS (or scaling-row request) above
  // hardware_concurrency would only time-slice one core and publish
  // oversubscription as a parallel regression. Every row records the
  // fan-out it actually ran, so a 1-core run shows `fanout: 1` instead of
  // masquerading as a scaling measurement.
  const auto clamp_threads = [hw](int threads) {
    return hw > 0 ? std::min(threads, hw) : threads;
  };
  const int par = clamp_threads(util::thread_count());

  const tree::Tree t = tree::random_tree(n, seed);
  std::vector<Row> rows;
  const auto add = [&](std::string name, double ms, int fanout = 0) {
    rows.push_back({std::move(name), ms, fanout});
    std::printf("  %-34s %10.1f ms\n", rows.back().name.c_str(), ms);
  };

  std::printf("build-time bench: n=%d seed=%llu threads=%d (hw=%d)\n",
              static_cast<int>(n), static_cast<unsigned long long>(seed), par,
              hw);

  // Per-scheme, own scaffold (the Tree-ctor path), serial.
  add("fgnw_own_serial", measure_ms([&] {
        const core::TreeScaffold sc(t, 1);
        const core::FgnwScheme s(sc);
      }));
  add("alstrup_own_serial", measure_ms([&] {
        const core::TreeScaffold sc(t, 1);
        const core::AlstrupScheme s(sc);
      }));
  add("peleg_own_serial", measure_ms([&] {
        const core::TreeScaffold sc(t, 1);
        const core::PelegScheme s(sc);
      }));
  add("approx_own_serial", measure_ms([&] {
        const core::TreeScaffold sc(t, 1);
        const core::ApproxScheme s(sc, 0.125);
      }));
  add("kdist_own_serial", measure_ms([&] {
        const core::TreeScaffold sc(t, 1);
        const core::KDistanceScheme s(sc, 8);
      }));

  // The five-scheme suite: per-scheme scaffolds vs one shared scaffold vs
  // shared scaffold with parallel emission.
  double suite_own = 0;
  for (const Row& r : rows) suite_own += r.ms;
  add("suite_own_serial", suite_own);
  const double suite_shared = measure_ms_best([&] {
    const core::TreeScaffold sc(t, 1);
    build_suite(sc);
  });
  add("suite_shared_serial", suite_shared, 1);
  const double suite_par = measure_ms_best([&] {
    const core::TreeScaffold sc(t, par);
    build_suite(sc);
  });
  add("suite_shared_parallel", suite_par, par);

  // Thread scaling, FGNW. Requested thread counts are clamped by the
  // hardware; on a 1-core box every row runs (and records) fanout 1.
  std::vector<Row> scaling;
  for (const int threads : {1, 2, 4}) {
    const int fanout = clamp_threads(threads);
    const double ms = measure_ms_best([&] {
      const core::TreeScaffold sc(t, fanout);
      const core::FgnwScheme s(sc);
    });
    scaling.push_back({"fgnw_t" + std::to_string(threads), ms, fanout});
    std::printf("  %-34s %10.1f ms (fanout %d)\n", scaling.back().name.c_str(),
                ms, fanout);
  }

  // Thread scaling, SpanningOracle (4 landmark trees; the oracle reads
  // TREELAB_THREADS for its whole budget). Smaller n: it builds 4 FGNWs.
  {
    const auto n_oracle = std::max<tree::NodeId>(1024, n / 4);
    const tree::Graph g =
        tree::Graph::random_connected(n_oracle, 2 * n_oracle, seed);
    for (const int threads : {1, 2, 4}) {
      const int fanout = clamp_threads(threads);
      setenv("TREELAB_THREADS", std::to_string(fanout).c_str(), 1);
      const double ms =
          measure_ms_best([&] { const core::SpanningOracle o(g, 4); });
      scaling.push_back({"oracle4_t" + std::to_string(threads), ms, fanout});
      std::printf("  %-34s %10.1f ms (n=%d, fanout %d)\n",
                  scaling.back().name.c_str(), ms, static_cast<int>(n_oracle),
                  fanout);
    }
    unsetenv("TREELAB_THREADS");
  }

  // n-sweep: FGNW end-to-end (shared-scaffold serial) as n grows.
  std::vector<Row> sweep;
  for (tree::NodeId sn = 1 << 16; sn <= sweep_max; sn *= 4) {
    const tree::Tree st = tree::random_tree(sn, seed);
    const double ms = measure_ms([&] {
      const core::TreeScaffold sc(st, 1);
      const core::FgnwScheme s(sc);
    });
    sweep.push_back({"fgnw_n" + std::to_string(sn), ms});
    std::printf("  %-34s %10.1f ms\n", sweep.back().name.c_str(), ms);
  }

  // Edit churn: the dynamic-forest path. Per single-leaf edit at churn_n,
  // a from-scratch AlstrupScheme rebuild (kStablePow2 — the same labeling
  // the incremental path maintains) vs IncrementalRelabeler::insert_leaf.
  // Fallback counters show how incremental the workload actually was.
  std::vector<Row> churn;
  double churn_full_ms = 0, churn_inc_ms = 0;
  core::RelabelStats churn_stats;
  const auto churn_n =
      quick ? std::min<tree::NodeId>(n, 1 << 14) : std::min<tree::NodeId>(n, 1 << 18);
  {
    const int full_edits = quick ? 3 : 8;
    const int inc_edits = quick ? 64 : 256;
    const core::AlstrupOptions stable{nca::CodeWeights::kStablePow2, 1};
    const tree::Tree base = tree::random_tree(churn_n, seed);

    // Full rebuild per edit: grow a parent array, rebuild from scratch.
    std::vector<tree::NodeId> parents(static_cast<std::size_t>(churn_n));
    for (tree::NodeId v = 0; v < churn_n; ++v) parents[v] = base.parent(v);
    std::mt19937_64 rng(seed + 1);
    churn_full_ms = measure_ms([&] {
      for (int e = 0; e < full_edits; ++e) {
        parents.push_back(static_cast<tree::NodeId>(rng() % parents.size()));
        const tree::Tree grown(parents);
        const core::AlstrupScheme s(grown, stable);
      }
    });
    churn_full_ms /= full_edits;

    // Incremental relabel per edit, same edit distribution.
    core::IncrementalRelabeler relab(base, {1, 0.5});
    std::mt19937_64 rng2(seed + 1);
    churn_inc_ms = measure_ms([&] {
      for (int e = 0; e < inc_edits; ++e)
        (void)relab.insert_leaf(
            static_cast<tree::NodeId>(rng2() % relab.size()));
    });
    churn_inc_ms /= inc_edits;
    churn_stats = relab.stats();

    churn.push_back({"full_rebuild_per_edit", churn_full_ms});
    churn.push_back({"incremental_per_edit", churn_inc_ms});
    std::printf("  %-34s %10.3f ms (n=%d)\n", "full_rebuild_per_edit",
                churn_full_ms, static_cast<int>(churn_n));
    std::printf("  %-34s %10.3f ms (n=%d)\n", "incremental_per_edit",
                churn_inc_ms, static_cast<int>(churn_n));
    std::printf(
        "  %-34s %10.1fx (incremental=%llu restructured=%llu "
        "flip=%llu cone=%llu)\n",
        "edit_churn_speedup", churn_full_ms / churn_inc_ms,
        static_cast<unsigned long long>(churn_stats.incremental),
        static_cast<unsigned long long>(churn_stats.restructured),
        static_cast<unsigned long long>(churn_stats.full_heavy_flip),
        static_cast<unsigned long long>(churn_stats.full_dirty_cone));
  }

  // Edit churn, deletes and subtree moves: the PR-5 halves of the edit
  // model. The full-rebuild side is one from-scratch stable-weight build of
  // the n-node tree per edit (what a delete or move costs without the
  // incremental path — tree size barely moves over the run, so one build is
  // the honest per-edit price); the incremental side drives the relabeler.
  // Plus the delta-shipping metric: bytes of a single-edit v3 delta vs the
  // full mappable file.
  double del_inc_ms = 0, mov_inc_ms = 0, churn_rebuild_ms = 0;
  std::size_t delta_bytes = 0, full_bytes = 0;
  core::RelabelStats del_stats, mov_stats;
  {
    const int full_edits = quick ? 2 : 6;
    const int del_edits = quick ? 48 : 192;
    const int mov_edits = quick ? 24 : 96;
    const core::AlstrupOptions stable{nca::CodeWeights::kStablePow2, 1};
    const tree::Tree base = tree::random_tree(churn_n, seed);

    churn_rebuild_ms = measure_ms([&] {
      for (int e = 0; e < full_edits; ++e) {
        const core::AlstrupScheme s(base, stable);
      }
    });
    churn_rebuild_ms /= full_edits;

    // Deletes: victims are pre-selected leaves of the base tree (deleting
    // one leaf never un-leafs another), so the timed region holds nothing
    // but the edits themselves.
    core::IncrementalRelabeler relab(base, {1, 0.5});
    std::mt19937_64 rng(seed + 3);
    std::vector<tree::NodeId> victims;
    for (tree::NodeId v = 0; v < base.size(); ++v)
      if (base.is_leaf(v) && base.parent(v) != tree::kNoNode)
        victims.push_back(v);
    std::shuffle(victims.begin(), victims.end(), rng);
    const int del_done =
        std::min<int>(del_edits, static_cast<int>(victims.size()));
    del_inc_ms = measure_ms([&] {
      for (int e = 0; e < del_done; ++e) relab.delete_leaf(victims[e]);
    });
    del_inc_ms /= del_done;
    del_stats = relab.stats();

    // Moves: detach pre-selected (typically small) subtrees, graft each on
    // a random live node. One move = one detach + one attach; alive() is an
    // O(1) flag check, so the graft-target probe costs nothing measurable.
    core::IncrementalRelabeler relab2(base, {1, 0.5});
    std::mt19937_64 rng2(seed + 4);
    std::vector<tree::NodeId> roots;
    for (tree::NodeId v = 1; v < base.size(); ++v) roots.push_back(v);
    std::shuffle(roots.begin(), roots.end(), rng2);
    const int mov_done =
        std::min<int>(mov_edits, static_cast<int>(roots.size()));
    mov_inc_ms = measure_ms([&] {
      for (int e = 0; e < mov_done; ++e) {
        relab2.detach_subtree(roots[static_cast<std::size_t>(e)]);
        tree::NodeId p;
        do p = static_cast<tree::NodeId>(rng2() % relab2.size());
        while (!relab2.alive(p));
        relab2.attach_subtree(p, 1);
      }
    });
    // One move = two edits (a detach and an attach); the per-edit number is
    // what compares against one full rebuild per edit.
    mov_inc_ms /= 2.0 * mov_done;
    mov_stats = relab2.stats();

    // Delta shipping: one leaf insert -> dirty chunks only.
    relab.rebase_delta();
    {
      tree::NodeId p;
      do p = static_cast<tree::NodeId>(rng() % relab.size());
      while (!relab.alive(p));
      (void)relab.insert_leaf(p);
    }
    {
      std::ostringstream d;
      relab.ship_delta(d);
      delta_bytes = d.str().size();
      std::ostringstream f2;
      const auto loaded = relab.to_loaded();
      core::LabelStore::save_mappable(f2, loaded.scheme, loaded.labels,
                                      loaded.params);
      full_bytes = f2.str().size();
    }

    churn.push_back({"full_rebuild_per_delete", churn_rebuild_ms});
    churn.push_back({"incremental_per_delete", del_inc_ms});
    churn.push_back({"full_rebuild_per_move", churn_rebuild_ms});
    churn.push_back({"incremental_per_move", mov_inc_ms});
    std::printf("  %-34s %10.3f ms (n=%d)\n", "incremental_per_delete",
                del_inc_ms, static_cast<int>(churn_n));
    std::printf(
        "  %-34s %10.1fx (incremental=%llu restructured=%llu full=%llu)\n",
        "edit_churn_delete_speedup", churn_rebuild_ms / del_inc_ms,
        static_cast<unsigned long long>(del_stats.incremental),
        static_cast<unsigned long long>(del_stats.restructured),
        static_cast<unsigned long long>(del_stats.full_heavy_flip +
                                        del_stats.full_dirty_cone));
    std::printf("  %-34s %10.3f ms (n=%d)\n", "incremental_per_move",
                mov_inc_ms, static_cast<int>(churn_n));
    std::printf(
        "  %-34s %10.1fx (incremental=%llu restructured=%llu full=%llu)\n",
        "edit_churn_move_speedup", churn_rebuild_ms / mov_inc_ms,
        static_cast<unsigned long long>(mov_stats.incremental),
        static_cast<unsigned long long>(mov_stats.restructured),
        static_cast<unsigned long long>(mov_stats.full_heavy_flip +
                                        mov_stats.full_dirty_cone));
    std::printf("  %-34s %10zu bytes (full file %zu, %.2f%%)\n",
                "delta_single_edit_bytes", delta_bytes, full_bytes,
                100.0 * static_cast<double>(delta_bytes) /
                    static_cast<double>(full_bytes));
  }

  const char* path = "BENCH_build.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  const auto dump = [&](const char* key, const std::vector<Row>& rs,
                        bool last) {
    std::fprintf(f, "  \"%s\": [\n", key);
    for (std::size_t i = 0; i < rs.size(); ++i) {
      if (rs[i].fanout > 0)
        std::fprintf(f,
                     "    {\"case\": \"%s\", \"ms\": %.1f, \"fanout\": %d}%s\n",
                     rs[i].name.c_str(), rs[i].ms, rs[i].fanout,
                     i + 1 < rs.size() ? "," : "");
      else
        std::fprintf(f, "    {\"case\": \"%s\", \"ms\": %.1f}%s\n",
                     rs[i].name.c_str(), rs[i].ms,
                     i + 1 < rs.size() ? "," : "");
    }
    std::fprintf(f, "  ]%s\n", last ? "" : ",");
  };
  std::fprintf(f, "{\n  \"bench\": \"build_time\",\n");
  std::fprintf(f, "  \"n\": %d,\n  \"seed\": %llu,\n",
               static_cast<int>(n), static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"tree\": \"random(seed=%llu)\",\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"threads\": %d,\n", par);
  bench::json_provenance(f, par);
  std::fprintf(f, "  \"suite_shared_vs_own_speedup\": %.2f,\n",
               suite_own / suite_shared);
  std::fprintf(f, "  \"suite_parallel_vs_own_speedup\": %.2f,\n",
               suite_own / suite_par);
  std::fprintf(f, "  \"edit_churn_n\": %d,\n", static_cast<int>(churn_n));
  std::fprintf(f, "  \"edit_churn_speedup\": %.1f,\n",
               churn_full_ms / churn_inc_ms);
  std::fprintf(f, "  \"edit_churn_delete_speedup\": %.1f,\n",
               churn_rebuild_ms / del_inc_ms);
  std::fprintf(f, "  \"edit_churn_move_speedup\": %.1f,\n",
               churn_rebuild_ms / mov_inc_ms);
  std::fprintf(f, "  \"delta_single_edit_bytes\": %zu,\n", delta_bytes);
  std::fprintf(f, "  \"full_file_bytes\": %zu,\n", full_bytes);
  std::fprintf(f, "  \"delta_bytes_fraction\": %.5f,\n",
               static_cast<double>(delta_bytes) /
                   static_cast<double>(full_bytes));
  std::fprintf(f,
               "  \"edit_churn_outcomes\": {\"incremental\": %llu, "
               "\"restructured\": %llu, \"full_heavy_flip\": %llu, "
               "\"full_dirty_cone\": %llu},\n",
               static_cast<unsigned long long>(churn_stats.incremental),
               static_cast<unsigned long long>(churn_stats.restructured),
               static_cast<unsigned long long>(churn_stats.full_heavy_flip),
               static_cast<unsigned long long>(churn_stats.full_dirty_cone));
  dump("results", rows, false);
  dump("scaling", scaling, false);
  dump("sweep", sweep, false);
  dump("edit_churn", churn, true);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s (shared/own speedup %.2fx, parallel/own %.2fx)\n",
              path, suite_own / suite_shared, suite_own / suite_par);
  return 0;
}
