// F4 — Fig. 4 (converting a parent labeling into a universal tree, Lemma
// 3.6): executes the constructive reduction over all rooted trees on <= n
// nodes using LevelAncestorScheme, and compares
//   |universal tree from labels|  vs  2^S(n)  vs  minimal universal tree
// (brute force for n <= 4) vs the Lemma 3.7 growth n^((lg n - 2 lg lg n)/2).
#include "bench_util.hpp"
#include "core/universal_tree.hpp"
#include "tree/generators.hpp"

using namespace treelab;
using bench::num;
using bench::row;

int main() {
  std::printf("== F4: parent labels -> universal tree (Lemma 3.6) ==\n");
  row({"family <= n", "trees", "labels", "universal", "S(n) bits", "2^S(n)",
       "minimal", "lemma3.7"});
  for (tree::NodeId n = 2; n <= 8; ++n) {
    const auto res = core::universal_tree_from_parent_labels(n);
    const double lg = bench::log2d(static_cast<double>(n));
    const double lemma37 =
        std::pow(static_cast<double>(n),
                 (lg - 2 * std::log2(std::max(2.0, lg))) / 2);
    const std::string minimal =
        n <= 4 ? std::to_string(core::minimal_universal_tree_size(n)) : "-";
    row({"n=" + std::to_string(n), num(res.trees_labeled),
         num(res.num_labels), num(res.universal_size),
         num(res.max_label_bits),
         res.max_label_bits < 40
             ? num(std::size_t{1} << res.max_label_bits)
             : ">2^40",
         minimal, num(lemma37, 1)});
  }
  std::printf(
      "\nshape check: universal <= 2^S(n)+1 (Lemma 3.6) and universal >= "
      "minimal; the label-derived tree is polynomially larger than minimal, "
      "as the n^(lg n/2) growth of Lemma 3.7 dictates asymptotically.\n");
  return 0;
}
