// F6 — Fig. 6 (nearest common significant ancestor anatomy): distribution of
// significant-ancestor chain lengths (the r <= min(k, lightdepth) stored per
// label), across workloads and k — the quantity that drives the k-distance
// label size — plus an end-to-end correctness sweep of the NCSA-based query
// on each workload.
#include "bench_util.hpp"
#include "core/kdistance_scheme.hpp"
#include "tree/generators.hpp"
#include "tree/hpd.hpp"
#include "tree/nca_index.hpp"

using namespace treelab;
using bench::num;
using bench::row;
using tree::NodeId;

int main() {
  std::printf("== F6: significant ancestors / NCSA query anatomy ==\n");
  row({"workload", "k", "avg_chain", "max_chain", "max_ld", "max_bits",
       "pairs_ok"});
  for (const auto& shape : tree::standard_shapes()) {
    const tree::Tree t = shape.make(1 << 12, 17);
    const tree::HeavyPathDecomposition hpd(t);
    const tree::NcaIndex oracle(t);
    for (std::uint64_t k : {2, 8, 64}) {
      const core::KDistanceScheme s(t, k);
      // Chain length r per node: walk significant ancestors within k.
      std::size_t total = 0, mx = 0;
      for (NodeId v = 0; v < t.size(); ++v) {
        std::size_t r = 0;
        NodeId cur = v;
        std::uint64_t d = 0;
        for (;;) {
          const NodeId head = hpd.head_of(cur);
          const NodeId up = t.parent(head);
          if (up == tree::kNoNode) break;
          d += static_cast<std::uint64_t>(t.depth(cur) - t.depth(head)) + 1;
          if (d > k) break;
          cur = up;
          ++r;
        }
        total += r;
        mx = std::max(mx, r);
      }
      // Sampled end-to-end check.
      std::size_t ok = 0, all = 0;
      for (NodeId u = 0; u < t.size(); u += 37)
        for (NodeId v = 0; v < t.size(); v += 41) {
          ++all;
          const auto got = core::KDistanceScheme::query(k, s.label(u), s.label(v));
          const auto want = oracle.distance(u, v);
          ok += (want <= k) ? (got.within && got.distance == want)
                            : !got.within;
        }
      row({shape.name, num(k),
           num(static_cast<double>(total) / static_cast<double>(t.size()), 2),
           num(mx), num(hpd.max_light_depth()), num(s.stats().max_bits),
           num(ok) + "/" + num(all)});
    }
  }
  std::printf(
      "\nshape check: chains are capped by min(k, lightdepth); every sampled "
      "query agrees with the oracle.\n");
  return 0;
}
