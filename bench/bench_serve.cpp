// SERVE — throughput of the serving layer itself: a ForestIndex holding a
// heterogeneous forest (all five schemes), labels shipped through mappable
// LabelStore files and mmap'ed back, batch queries fanned out over shards.
//
// Three sections:
//   * baseline — raw per-request queries (parse both labels every call),
//     the cost a node pays without any serving machinery,
//   * scaling — query_batch QPS as shards and threads grow together
//     (1, 2, 4, ...), the tentpole curve: per-shard caches mean no shared
//     state on the hot path, so batch throughput should track the fan-out
//     until the hardware runs out,
//   * threads-under-fixed-shards — the fan-out knob alone,
//   * failpoints — the cost of the fault-injection hooks on the serving
//     path: a disarmed failpoint::check() is one relaxed atomic load, and
//     arming an *unrelated* site must not dent batch QPS beyond noise
//     (CI asserts the armed/off ratio from the JSON).
//
// Emits BENCH_serve.json (same shape as BENCH_build/BENCH_query) with the
// configuration and the cache counters of the last run.
//
// Usage: bench_serve [--n N] [--trees T] [--batch B] [--seed S]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/alstrup_scheme.hpp"
#include "core/approx_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/kdistance_scheme.hpp"
#include "core/label_store.hpp"
#include "core/peleg_scheme.hpp"
#include "core/tree_scaffold.hpp"
#include "serve/forest_index.hpp"
#include "tree/generators.hpp"
#include "util/failpoint.hpp"
#include "util/parallel.hpp"

using namespace treelab;
using bench::num;
using bench::row;

namespace {

volatile std::uint64_t benchmark_sink = 0;  // defeats dead-code elimination

std::int64_t flag(int argc, char** argv, const char* name,
                  std::int64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  return fallback;
}

struct Row {
  std::string name;
  double qps = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto n = static_cast<tree::NodeId>(flag(argc, argv, "--n", 1 << 14));
  const auto n_trees =
      static_cast<std::size_t>(flag(argc, argv, "--trees", 10));
  const auto batch =
      static_cast<std::size_t>(flag(argc, argv, "--batch", 8192));
  const auto seed = static_cast<std::uint64_t>(flag(argc, argv, "--seed", 7));
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  std::printf("serve bench: n=%d trees=%zu batch=%zu seed=%llu (hw=%d)\n",
              static_cast<int>(n), n_trees, batch,
              static_cast<unsigned long long>(seed), hw);

  // Ship the forest: one mappable label file per tree, schemes cycling
  // through all five.
  const std::filesystem::path dir = "bench_serve_labels";
  std::filesystem::create_directories(dir);
  std::vector<std::string> files;
  for (std::size_t i = 0; i < n_trees; ++i) {
    const tree::Tree t = tree::random_tree(n, seed + i);
    const core::TreeScaffold sc(t, 0);
    const std::string path = (dir / ("tree" + std::to_string(i) + ".lbl"))
                                 .string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    switch (i % 5) {
      case 0:
        core::LabelStore::save_mappable(out, "fgnw",
                                        core::FgnwScheme(sc).labels());
        break;
      case 1:
        core::LabelStore::save_mappable(out, "alstrup",
                                        core::AlstrupScheme(sc).labels());
        break;
      case 2:
        core::LabelStore::save_mappable(out, "peleg",
                                        core::PelegScheme(sc).labels());
        break;
      case 3:
        core::LabelStore::save_mappable(
            out, "approx", core::ApproxScheme(sc, 0.125).labels(),
            "inv_eps=8");
        break;
      default:
        core::LabelStore::save_mappable(
            out, "kdist", core::KDistanceScheme(sc, 64).labels(), "k=64");
    }
    files.push_back(path);
  }
  std::printf("  shipped %zu label files to %s/\n", files.size(),
              dir.string().c_str());

  // One request pool shared by every configuration (identical work).
  std::mt19937_64 rng(seed);
  std::vector<serve::Request> pool(4 * batch);
  for (auto& r : pool) {
    r.tree = static_cast<serve::TreeId>(rng() % n_trees);
    r.u = static_cast<tree::NodeId>(rng() % static_cast<std::uint64_t>(n));
    r.v = static_cast<tree::NodeId>(rng() % static_cast<std::uint64_t>(n));
  }

  std::vector<Row> rows;
  serve::ForestIndex::CacheStats last_stats;
  const auto add = [&](std::string name, double qps) {
    rows.push_back({std::move(name), qps});
    std::printf("  %-30s %14.0f q/s\n", rows.back().name.c_str(), qps);
  };

  // Baseline: raw per-request queries (parse both labels every call) over
  // the same mmap'ed arenas — what a node without the serving layer pays.
  {
    std::vector<core::LabelStore::MappedLoaded> loaded;
    std::vector<serve::AnyScheme> schemes;
    for (const auto& f : files) {
      loaded.push_back(core::LabelStore::open_mapped(f));
      schemes.push_back(
          serve::AnyScheme::make(loaded.back().scheme, loaded.back().params));
    }
    std::size_t at = 0;
    const double qps = bench::measure_qps([&](std::size_t m) {
      std::uint64_t acc = 0;
      while (m--) {
        const serve::Request& r = pool[at++ % pool.size()];
        acc += schemes[r.tree]
                   .query(loaded[r.tree].labels.view(
                              static_cast<std::size_t>(r.u)),
                          loaded[r.tree].labels.view(
                              static_cast<std::size_t>(r.v)))
                   .value;
      }
      benchmark_sink = benchmark_sink + acc;
    });
    add("raw_per_request", qps);
  }

  // Scaling: shards and threads grow together. The *total* cache budget is
  // held constant across configurations (split evenly over shards), so the
  // curve measures fan-out, not aggregate cache capacity.
  constexpr std::size_t kTotalCacheBytes = std::size_t{64} << 20;
  const auto run_config = [&](std::size_t shards, int threads) {
    serve::ForestOptions opt;
    opt.shards = shards;
    opt.threads = threads;
    opt.cache_bytes_per_shard = kTotalCacheBytes / shards;
    serve::ForestIndex index(opt);
    for (const auto& f : files) (void)index.add_file(f);
    std::size_t at = 0;
    const double qps = bench::measure_qps(
        [&](std::size_t m) {
          const std::size_t lo = (at++ * batch) % (pool.size() - m + 1);
          const auto res = index.query_batch(
              std::span(pool).subspan(lo, m));
          benchmark_sink = benchmark_sink + res[0].value;
        },
        batch);
    last_stats = index.cache_stats();
    return qps;
  };
  for (std::size_t s = 1; s <= 8; s *= 2)
    add("batch_shards" + std::to_string(s) + "_t" + std::to_string(s),
        run_config(s, static_cast<int>(s)));
  for (const int t : {1, 2})
    add("batch_shards4_t" + std::to_string(t), run_config(4, t));

  // Failpoint overhead. First the microcost of one disarmed check (the
  // fast path every instrumented I/O call pays), then the macro pair: the
  // same serving config with no failpoint armed vs an unrelated site armed
  // (arming anything forces every check onto the registry-lookup slow
  // path — the worst case a production deployment with one armed knob
  // sees). The two QPS numbers must agree to within noise.
  {
    const double cps = bench::measure_qps(
        [&](std::size_t m) {
          std::uint64_t acc = 0;
          while (m--)
            acc += util::failpoint::check("bench.never").has_value() ? 1 : 0;
          benchmark_sink = benchmark_sink + acc;
        },
        1 << 16);
    add("failpoint_check_disarmed", cps);
    std::printf("  (%.2f ns per disarmed check)\n", 1e9 / cps);
  }
  add("failpoint_off_shards2_t2", run_config(2, 2));
  util::failpoint::arm("bench.unrelated.site", util::FailMode::kError);
  add("failpoint_armed_shards2_t2", run_config(2, 2));
  util::failpoint::disarm_all();

  const char* path = "BENCH_serve.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"serve\",\n");
  std::fprintf(f, "  \"n\": %d,\n  \"trees\": %zu,\n  \"batch\": %zu,\n",
               static_cast<int>(n), n_trees, batch);
  std::fprintf(f, "  \"seed\": %llu,\n  \"threads_available\": %d,\n",
               static_cast<unsigned long long>(seed), hw);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i)
    std::fprintf(f, "    {\"case\": \"%s\", \"qps\": %.0f}%s\n",
                 rows[i].name.c_str(), rows[i].qps,
                 i + 1 < rows.size() ? "," : "");
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"cache_last_run\": {\"hits\": %zu, \"misses\": %zu, "
               "\"evictions\": %zu, \"entries\": %zu, \"bytes\": %zu}\n",
               last_stats.hits, last_stats.misses, last_stats.evictions,
               last_stats.entries, last_stats.bytes);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
  return 0;
}
