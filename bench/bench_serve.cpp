// SERVE — throughput of the serving layer itself: a ForestIndex holding a
// heterogeneous forest (all five schemes), labels shipped through mappable
// LabelStore files and mmap'ed back, batch queries fanned out over shards.
//
// Sections:
//   * baseline — raw per-request queries (parse both labels every call),
//     the cost a node pays without any serving machinery,
//   * scaling — query_batch QPS as shards and threads grow together
//     (1, 2, 4, ...), the tentpole curve: per-shard caches mean no shared
//     state on the hot path, so batch throughput should track the fan-out
//     until the hardware runs out. Every batch row also records the thread
//     fan-out the index actually PLANNED for this batch size
//     (ForestIndex::planned_fanout) — on a small machine the plan clamps
//     to the hardware, which is the fix for the old 1-core regression
//     where 8 configured threads lost to 1,
//   * threads-under-fixed-shards — the fan-out knob alone,
//   * failpoints — the cost of the fault-injection hooks on the serving
//     path: a disarmed failpoint::check() is one relaxed atomic load, and
//     arming an *unrelated* site must not dent batch QPS beyond noise
//     (CI asserts the armed/off ratio from the JSON),
//   * loopback — the same batches through net::Server over 127.0.0.1
//     (frame encode + TCP + decode on both sides), and the overload path:
//     flooders that never read their replies fill the server's output
//     budget, and a probe measures how batches are shed with kOverloaded
//     while the server keeps answering once the pressure lifts.
//
// Emits BENCH_serve.json (same shape as BENCH_build/BENCH_query) with the
// configuration, per-row fan-out plans, the cache counters of the last
// run, and the overload-shedding observations.
//
// Usage: bench_serve [--n N] [--trees T] [--batch B] [--seed S]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "core/alstrup_scheme.hpp"
#include "core/approx_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/kdistance_scheme.hpp"
#include "core/label_store.hpp"
#include "core/peleg_scheme.hpp"
#include "core/tree_scaffold.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/net_io.hpp"
#include "net/server.hpp"
#include "serve/forest_index.hpp"
#include "tree/generators.hpp"
#include "util/failpoint.hpp"
#include "util/parallel.hpp"

using namespace treelab;
using bench::num;
using bench::row;

namespace {

volatile std::uint64_t benchmark_sink = 0;  // defeats dead-code elimination

std::int64_t flag(int argc, char** argv, const char* name,
                  std::int64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  return fallback;
}

struct Row {
  std::string name;
  double qps = 0;
  int fanout = 0;  ///< planned_fanout for batch rows; 0 = not applicable
};

}  // namespace

int main(int argc, char** argv) {
  const auto n = static_cast<tree::NodeId>(flag(argc, argv, "--n", 1 << 14));
  const auto n_trees =
      static_cast<std::size_t>(flag(argc, argv, "--trees", 10));
  const auto batch =
      static_cast<std::size_t>(flag(argc, argv, "--batch", 8192));
  const auto seed = static_cast<std::uint64_t>(flag(argc, argv, "--seed", 7));
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  std::printf("serve bench: n=%d trees=%zu batch=%zu seed=%llu (hw=%d)\n",
              static_cast<int>(n), n_trees, batch,
              static_cast<unsigned long long>(seed), hw);

  // Ship the forest: one mappable label file per tree, schemes cycling
  // through all five.
  const std::filesystem::path dir = "bench_serve_labels";
  std::filesystem::create_directories(dir);
  std::vector<std::string> files;
  for (std::size_t i = 0; i < n_trees; ++i) {
    const tree::Tree t = tree::random_tree(n, seed + i);
    const core::TreeScaffold sc(t, 0);
    const std::string path = (dir / ("tree" + std::to_string(i) + ".lbl"))
                                 .string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    switch (i % 5) {
      case 0:
        core::LabelStore::save_mappable(out, "fgnw",
                                        core::FgnwScheme(sc).labels());
        break;
      case 1:
        core::LabelStore::save_mappable(out, "alstrup",
                                        core::AlstrupScheme(sc).labels());
        break;
      case 2:
        core::LabelStore::save_mappable(out, "peleg",
                                        core::PelegScheme(sc).labels());
        break;
      case 3:
        core::LabelStore::save_mappable(
            out, "approx", core::ApproxScheme(sc, 0.125).labels(),
            "inv_eps=8");
        break;
      default:
        core::LabelStore::save_mappable(
            out, "kdist", core::KDistanceScheme(sc, 64).labels(), "k=64");
    }
    files.push_back(path);
  }
  std::printf("  shipped %zu label files to %s/\n", files.size(),
              dir.string().c_str());

  // One request pool shared by every configuration (identical work).
  std::mt19937_64 rng(seed);
  std::vector<serve::Request> pool(4 * batch);
  for (auto& r : pool) {
    r.tree = static_cast<serve::TreeId>(rng() % n_trees);
    r.u = static_cast<tree::NodeId>(rng() % static_cast<std::uint64_t>(n));
    r.v = static_cast<tree::NodeId>(rng() % static_cast<std::uint64_t>(n));
  }

  std::vector<Row> rows;
  serve::ForestIndex::CacheStats last_stats;
  int last_fanout = 0;
  const auto add = [&](std::string name, double qps, int fanout = 0) {
    rows.push_back({std::move(name), qps, fanout});
    if (fanout > 0)
      std::printf("  %-30s %14.0f q/s  (fanout %d)\n",
                  rows.back().name.c_str(), qps, fanout);
    else
      std::printf("  %-30s %14.0f q/s\n", rows.back().name.c_str(), qps);
  };

  // Baseline: raw per-request queries (parse both labels every call) over
  // the same mmap'ed arenas — what a node without the serving layer pays.
  {
    std::vector<core::LabelStore::MappedLoaded> loaded;
    std::vector<serve::AnyScheme> schemes;
    for (const auto& f : files) {
      loaded.push_back(core::LabelStore::open_mapped(f));
      schemes.push_back(
          serve::AnyScheme::make(loaded.back().scheme, loaded.back().params));
    }
    std::size_t at = 0;
    const double qps = bench::measure_qps([&](std::size_t m) {
      std::uint64_t acc = 0;
      while (m--) {
        const serve::Request& r = pool[at++ % pool.size()];
        acc += schemes[r.tree]
                   .query(loaded[r.tree].labels.view(
                              static_cast<std::size_t>(r.u)),
                          loaded[r.tree].labels.view(
                              static_cast<std::size_t>(r.v)))
                   .value;
      }
      benchmark_sink = benchmark_sink + acc;
    }, /*batch=*/4096, /*min_seconds=*/0.2, /*reps=*/3);
    add("raw_per_request", qps);
  }

  // Scaling: shards and threads grow together. The *total* cache budget is
  // held constant across configurations (split evenly over shards), so the
  // curve measures fan-out, not aggregate cache capacity. Every row builds
  // a FRESH index and runs the same fixed warm-up (two full passes over the
  // request pool) before measurement, so adjacent rows are comparable: no
  // row inherits another row's warmed caches, mapped pages, or branch
  // history, and none starts colder than its neighbor. (The published
  // armed-failpoint row once *beat* the disarmed one purely because it ran
  // second against a pre-warmed process.)
  constexpr std::size_t kTotalCacheBytes = std::size_t{64} << 20;
  const auto make_opt = [&](std::size_t shards, int threads, bool planner) {
    serve::ForestOptions opt;
    opt.shards = shards;
    opt.threads = threads;
    opt.cache_bytes_per_shard = kTotalCacheBytes / shards;
    opt.planner = planner;
    return opt;
  };
  // Loads the forest and runs the fixed warm-up (two full passes over the
  // request pool), so every measured index starts from the same warmed
  // caches / mapped pages / branch history regardless of row order.
  const auto prime = [&](serve::ForestIndex& index) {
    for (const auto& f : files) (void)index.add_file(f);
    for (int pass = 0; pass < 2; ++pass)
      for (std::size_t lo = 0; lo + batch <= pool.size(); lo += batch)
        benchmark_sink =
            benchmark_sink +
            index.query_batch(std::span(pool).subspan(lo, batch))[0].value;
  };
  // One measurement window over a primed index.
  const auto window_qps = [&](serve::ForestIndex& index) {
    std::size_t at = 0;
    return bench::measure_qps(
        [&](std::size_t m) {
          const std::size_t lo = (at++ * batch) % (pool.size() - m + 1);
          const auto res =
              index.query_batch(std::span(pool).subspan(lo, m));
          benchmark_sink = benchmark_sink + res[0].value;
        },
        batch);
  };
  // Window count per row / per pair side. This box's measured noise floor
  // is large (identical configs spread ~25-30% across back-to-back runs),
  // and the noise is one-sided slowdown: more best-of windows push both
  // sides of a comparison toward the true ceiling.
  constexpr int kReps = 5;
  const auto run_config = [&](std::size_t shards, int threads,
                              bool planner = true) {
    serve::ForestIndex index(make_opt(shards, threads, planner));
    prime(index);
    double best = 0;
    for (int r = 0; r < kReps; ++r) best = std::max(best, window_qps(index));
    last_stats = index.cache_stats();
    last_fanout = index.planned_fanout(batch);
    return best;
  };
  for (std::size_t s = 1; s <= 8; s *= 2) {
    const double qps = run_config(s, static_cast<int>(s));
    add("batch_shards" + std::to_string(s) + "_t" + std::to_string(s), qps,
        last_fanout);
  }
  for (const int t : {1, 2}) {
    const double qps = run_config(4, t);
    add("batch_shards4_t" + std::to_string(t), qps, last_fanout);
  }

  // Planner A/B: the identical config with the batch query planner on
  // (requests stable-sorted by tree within each shard, one entry lookup
  // and one contiguous label walk per group, prefetch ahead) vs off
  // (requests answered in arrival order within their shard). CI asserts
  // on >= off within noise. Both sides get their own fresh primed index,
  // and the measurement windows ALTERNATE between them: on a shared host
  // the background load drifts on minute timescales, so back-to-back
  // measurements hand whichever side runs second a different machine —
  // interleaving shows both sides the same minutes.
  {
    serve::ForestIndex on_index(make_opt(4, 4, /*planner=*/true));
    serve::ForestIndex off_index(make_opt(4, 4, /*planner=*/false));
    prime(on_index);
    prime(off_index);
    double on = 0, off = 0;
    for (int r = 0; r < kReps; ++r) {
      // Alternate which side goes first: the second window of a pair runs
      // against a slightly warmer process, and a fixed order hands that
      // edge to the same side every rep.
      if (r % 2 == 0) {
        on = std::max(on, window_qps(on_index));
        off = std::max(off, window_qps(off_index));
      } else {
        off = std::max(off, window_qps(off_index));
        on = std::max(on, window_qps(on_index));
      }
    }
    add("planner_on_shards4_t4", on, on_index.planned_fanout(batch));
    add("planner_off_shards4_t4", off, off_index.planned_fanout(batch));
  }

  // Failpoint overhead. First the microcost of one disarmed check (the
  // fast path every instrumented I/O call pays), then the macro pair: the
  // same serving config with no failpoint armed vs an unrelated site armed
  // (arming anything forces every check onto the registry-lookup slow
  // path — the worst case a production deployment with one armed knob
  // sees). The two QPS numbers must agree to within noise.
  {
    const double cps = bench::measure_qps(
        [&](std::size_t m) {
          std::uint64_t acc = 0;
          while (m--)
            acc += util::failpoint::check("bench.never").has_value() ? 1 : 0;
          benchmark_sink = benchmark_sink + acc;
        },
        1 << 16);
    add("failpoint_check_disarmed", cps);
    std::printf("  (%.2f ns per disarmed check)\n", 1e9 / cps);
  }
  // The off/armed pair shares ONE primed index (arming a failpoint is the
  // only difference between the sides, so identical cache state is exactly
  // right) and alternates disarmed/armed measurement windows, same
  // reasoning as the planner A/B above. The published numbers once showed
  // the armed row *beating* the disarmed one — pure measurement-order
  // bias: the armed row ran second against a warmer, luckier process.
  {
    serve::ForestIndex index(make_opt(2, 2, /*planner=*/true));
    prime(index);
    double off = 0, armed = 0;
    for (int r = 0; r < kReps; ++r) {
      // Alternate sides per rep, same reasoning as the planner A/B.
      for (const bool measure_armed : {r % 2 != 0, r % 2 == 0}) {
        if (measure_armed) {
          util::failpoint::arm("bench.unrelated.site", util::FailMode::kError);
          armed = std::max(armed, window_qps(index));
        } else {
          util::failpoint::disarm_all();
          off = std::max(off, window_qps(index));
        }
      }
    }
    util::failpoint::disarm_all();
    add("failpoint_off_shards2_t2", off, index.planned_fanout(batch));
    add("failpoint_armed_shards2_t2", armed, index.planned_fanout(batch));
    last_stats = index.cache_stats();
  }

  // Loopback: the identical batches through the batch-RPC front end —
  // what a remote client pays on top of the in-process numbers above.
  std::size_t overload_probes = 0, overload_shed = 0, overload_ok = 0;
  std::uint64_t server_overloaded = 0, server_read_paused = 0;
  {
    serve::ForestOptions opt;
    opt.shards = 4;
    opt.threads = 4;
    opt.cache_bytes_per_shard = kTotalCacheBytes / 4;
    serve::ForestIndex index(opt);
    for (const auto& fpath : files) (void)index.add_file(fpath);

    net::ServerOptions sopt;
    net::Server server(index, sopt);
    server.start();
    {
      net::QueryClient client("127.0.0.1", server.port());
      if (!client.connected()) {
        std::fprintf(stderr, "loopback connect failed\n");
        return 1;
      }
      std::vector<serve::QueryResult> out;
      std::size_t at = 0;
      const double qps = bench::measure_qps(
          [&](std::size_t m) {
            const std::size_t lo = (at++ * batch) % (pool.size() - m + 1);
            if (client.query_batch(std::span(pool).subspan(lo, m), out) !=
                net::QueryClient::BatchStatus::kOk)
              std::abort();  // no faults armed: a non-kOk reply is a bug
            benchmark_sink = benchmark_sink + out[0].dist.value;
          },
          batch);
      add("loopback_batch_shards4_t4", qps, index.planned_fanout(batch));
    }
    server.stop();

    // Overload shedding: a deliberately small output budget, two flooder
    // connections that write batches but never read replies. Backpressure
    // stops the server reading from them; their queued replies hold the
    // global budget over the line, so a well-behaved probe sees explicit
    // kOverloaded sheds instead of unbounded queue growth.
    net::ServerOptions tight;
    tight.write_buffer_limit = 64 << 10;
    tight.max_buffered_bytes = 128 << 10;
    net::Server shedder(index, tight);
    shedder.start();
    std::atomic<bool> flood_stop{false};
    std::string flood_frame = net::encode_frame(
        net::MsgType::kQueryBatch,
        net::encode_query_batch(std::span(pool).subspan(0, batch)));
    const auto flooder = [&] {
      const int fd =
          net::connect_with_timeout("127.0.0.1", shedder.port(), 2'000);
      if (fd < 0) return;
      fcntl(fd, F_SETFL, fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
      std::size_t off = 0;  // partial sends must resume, not restart
      while (!flood_stop.load(std::memory_order_acquire)) {
        const ssize_t r = ::send(fd, flood_frame.data() + off,
                                 flood_frame.size() - off, MSG_NOSIGNAL);
        if (r > 0) {
          off += static_cast<std::size_t>(r);
          if (off == flood_frame.size()) off = 0;
        } else if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          // Kernel buffer full: the server stopped reading (backpressure).
          pollfd p{fd, POLLOUT, 0};
          (void)::poll(&p, 1, 20);
        } else {
          break;
        }
      }
      ::close(fd);
    };
    std::thread f1(flooder), f2(flooder);
    // Let the flooders actually pressurize the server before probing: wait
    // until backpressure has engaged (or give up after a few seconds).
    for (int waited = 0;
         shedder.stats().read_paused == 0 && waited < 3'000; waited += 10)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
      net::QueryClient probe("127.0.0.1", shedder.port());
      std::vector<serve::QueryResult> out;
      for (int i = 0; i < 200 && probe.connected(); ++i) {
        switch (probe.query_batch(std::span(pool).subspan(0, 64), out)) {
          case net::QueryClient::BatchStatus::kOk:
            ++overload_ok;
            break;
          case net::QueryClient::BatchStatus::kOverloaded:
            ++overload_shed;
            break;
          case net::QueryClient::BatchStatus::kError:
            break;
        }
        ++overload_probes;
      }
    }
    flood_stop.store(true, std::memory_order_release);
    f1.join();
    f2.join();
    const net::Server::Stats st = shedder.stats();
    server_overloaded = st.overloaded;
    server_read_paused = st.read_paused;
    shedder.stop();
    std::printf(
        "  overload probe: %zu batches -> %zu ok, %zu shed "
        "(server overloaded=%llu read_paused=%llu)\n",
        overload_probes, overload_ok, overload_shed,
        static_cast<unsigned long long>(server_overloaded),
        static_cast<unsigned long long>(server_read_paused));
  }

  const char* path = "BENCH_serve.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"serve\",\n");
  std::fprintf(f, "  \"n\": %d,\n  \"trees\": %zu,\n  \"batch\": %zu,\n",
               static_cast<int>(n), n_trees, batch);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  int planned_fanout = 0;
  for (const auto& r : rows) planned_fanout = std::max(planned_fanout, r.fanout);
  bench::json_provenance(f, planned_fanout);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i)
    std::fprintf(f, "    {\"case\": \"%s\", \"qps\": %.0f, \"fanout\": %d}%s\n",
                 rows[i].name.c_str(), rows[i].qps, rows[i].fanout,
                 i + 1 < rows.size() ? "," : "");
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"overload\": {\"probe_batches\": %zu, \"ok\": %zu, "
               "\"shed\": %zu, \"server_overloaded\": %llu, "
               "\"server_read_paused\": %llu},\n",
               overload_probes, overload_ok, overload_shed,
               static_cast<unsigned long long>(server_overloaded),
               static_cast<unsigned long long>(server_read_paused));
  std::fprintf(f,
               "  \"cache_last_run\": {\"hits\": %zu, \"misses\": %zu, "
               "\"evictions\": %zu, \"entries\": %zu, \"bytes\": %zu},\n",
               last_stats.hits, last_stats.misses, last_stats.evictions,
               last_stats.entries, last_stats.bytes);
  // Latency-histogram summaries from the obs registry, accumulated across
  // everything this process ran. All zeros under -DTREELAB_OBS=OFF.
  {
    const char* hist_names[] = {"serve.query.latency_ns",
                                "serve.batch.latency_ns",
                                "net.server.request_ns"};
    std::fprintf(f, "  \"metrics\": {\n");
    for (std::size_t i = 0; i < std::size(hist_names); ++i) {
      const obs::Histogram::Snapshot s =
          obs::Registry::global().histogram(hist_names[i]).snapshot();
      std::fprintf(f,
                   "    \"%s\": {\"count\": %llu, \"p50\": %llu, "
                   "\"p90\": %llu, \"p99\": %llu, \"max\": %llu}%s\n",
                   hist_names[i],
                   static_cast<unsigned long long>(s.count()),
                   static_cast<unsigned long long>(s.percentile(0.50)),
                   static_cast<unsigned long long>(s.percentile(0.90)),
                   static_cast<unsigned long long>(s.percentile(0.99)),
                   static_cast<unsigned long long>(s.max),
                   i + 1 < std::size(hist_names) ? "," : "");
    }
    std::fprintf(f, "  }\n");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
  return 0;
}
