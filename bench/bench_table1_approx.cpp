// T1-approx — the "Approximate" row of the summary table:
// Theta(log(1/eps) * log n) with the Lemma 2.2 encoding, vs the
// Theta(1/eps * log n) unary encoding of [ICALP'16] (the paper's explicit
// improvement in Section 5.2). Also verifies measured approximation quality.
#include <algorithm>
#include <vector>

#include "bench_util.hpp"
#include "core/approx_scheme.hpp"
#include "tree/generators.hpp"
#include "tree/nca_index.hpp"

using namespace treelab;
using bench::num;
using bench::row;
using core::ApproxScheme;

int main() {
  std::printf("== T1-approx: (1+eps)-approximate labels (bits) ==\n");
  row({"workload", "eps^-1", "mono_max", "unary_max", "ratio",
       "lg(1/e)lgn", "(1/e)lgn", "worst_err"});
  for (int lg : {12, 15}) {
    const tree::NodeId n = tree::NodeId{1} << lg;
    const tree::Tree t = tree::random_tree(n, 7);
    const tree::NcaIndex oracle(t);
    for (int inv_eps : {1, 4, 16, 64, 256, 1024}) {
      const double eps = 1.0 / inv_eps;
      const ApproxScheme mono(t, eps, ApproxScheme::Encoding::kMonotone);
      const ApproxScheme unary(t, eps, ApproxScheme::Encoding::kUnary);
      // Measured worst-case relative error over a sample of pairs.
      double worst = 0;
      for (tree::NodeId u = 0; u < t.size(); u += 97)
        for (tree::NodeId v = 1; v < t.size(); v += 89) {
          const auto d = oracle.distance(u, v);
          if (d == 0) continue;
          const auto got = ApproxScheme::query(eps, mono.label(u), mono.label(v));
          worst = std::max(worst, static_cast<double>(got) /
                                      static_cast<double>(d) - 1.0);
        }
      const double lgn = bench::log2d(static_cast<double>(n));
      row({"random/n=2^" + std::to_string(lg), num(inv_eps),
           num(mono.stats().max_bits), num(unary.stats().max_bits),
           num(static_cast<double>(unary.stats().max_bits) /
                   static_cast<double>(mono.stats().max_bits),
               2),
           num(std::log2(1.0 + inv_eps) * lgn, 0),
           num(inv_eps * lgn, 0), num(worst, 4)});
    }
  }
  // Section 5.1 lower-bound instance: on the eps-stretched subdivision of
  // an (h,M)-tree, leaf distances are spread so that (1+eps)-approximate
  // answers determine the exact (h,M)-tree distance — we verify that the
  // scheme's answers, snapped to the nearest realizable distance, are exact.
  std::printf("\n-- S5.1 stretched instances: approximate answers recover "
              "exact distances --\n");
  row({"instance", "n_stretched", "leaf_dists", "recovered"});
  for (const auto& [h, m, eps] :
       std::vector<std::tuple<int, std::uint32_t, double>>{
           {2, 3, 0.5}, {3, 3, 0.5}, {3, 4, 0.25}}) {
    // Explicit split weights in [1, M) so no weight-0 edge contracts a leaf.
    std::vector<std::uint32_t> xs((std::size_t{1} << h) - 1);
    for (std::size_t i = 0; i < xs.size(); ++i)
      xs[i] = 1 + static_cast<std::uint32_t>(i % (m - 1));
    const tree::Tree base = tree::hm_tree_explicit(h, m, xs);
    const tree::Tree s = tree::stretch(base, eps);
    const tree::NcaIndex oracle(s);
    std::vector<tree::NodeId> leaves;
    for (tree::NodeId v = 0; v < s.size(); ++v)
      if (s.is_leaf(v)) leaves.push_back(v);
    std::vector<std::uint64_t> dists;  // realizable leaf distances
    for (auto a : leaves)
      for (auto b : leaves)
        if (a != b) dists.push_back(oracle.distance(a, b));
    std::sort(dists.begin(), dists.end());
    dists.erase(std::unique(dists.begin(), dists.end()), dists.end());
    const ApproxScheme scheme(s, eps);
    std::size_t ok = 0, total = 0;
    for (auto a : leaves)
      for (auto b : leaves) {
        if (a == b) continue;
        const auto est = ApproxScheme::query(eps, scheme.label(a), scheme.label(b));
        // Snap: the unique realizable d with d <= est <= (1+eps) d.
        std::uint64_t snapped = 0;
        for (auto d : dists)
          if (d <= est &&
              static_cast<double>(est) <= (1 + eps) * static_cast<double>(d))
            snapped = d;
        ok += snapped == oracle.distance(a, b);
        ++total;
      }
    row({"(h=" + std::to_string(h) + ",M=" + std::to_string(m) +
             ",e=" + num(eps, 2) + ")",
         num(static_cast<std::size_t>(s.size())), num(dists.size()),
         num(ok) + "/" + num(total)});
  }
  std::printf(
      "\nshape check: mono_max grows ~log(1/eps) while unary_max grows "
      "~1/eps; worst_err <= eps everywhere; on stretched instances every "
      "approximate answer snaps back to the exact distance (the Section 5.1 "
      "reduction).\n");
  return 0;
}
