// F3 — Fig. 3 (heavy path with hanging subtrees T_1..T_{m+1}): empirical
// Slack/Thin lemma accounting inside FgnwScheme. For each workload: how many
// light edges were fat vs thin vs exceptional, how many bits were kept in
// the owners' labels vs pushed into accumulators, and the largest
// accumulator any label carries.
#include "bench_util.hpp"
#include "core/fgnw_scheme.hpp"
#include "tree/generators.hpp"

using namespace treelab;
using bench::num;
using bench::row;

namespace {

void report(const std::string& name, const tree::Tree& t) {
  const core::FgnwScheme f(t);
  const auto& bi = f.build_info();
  row({name, num(bi.binarized_size), num(bi.fat_edges), num(bi.thin_edges),
       num(bi.exceptional_edges), num(bi.total_kept_bits),
       num(bi.total_pushed_bits), num(bi.max_accumulator_bits),
       num(bi.max_light_depth), num(bi.fragment_levels)});
}

}  // namespace

int main() {
  std::printf("== F3: Slack/Thin lemma accounting (FGNW internals) ==\n");
  row({"workload", "n_bin", "fat", "thin", "excep", "kept_bits",
       "pushed_bits", "max_acc", "max_ld", "frags"});
  for (const auto& shape : tree::standard_shapes())
    report(shape.name, shape.make(1 << 14, 5));
  for (int h : {5, 6, 7, 8})
    report("hm-subdiv h=" + std::to_string(h),
           tree::subdivide(tree::hm_tree(h, 64, 3)));
  std::printf(
      "\nshape check: pushing concentrates on the (h,M)-family (deep heavy "
      "paths with near-half splits); elementary shapes are mostly thin or "
      "need no pushing.\n");
  return 0;
}
