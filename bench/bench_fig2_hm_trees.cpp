// F2 — Fig. 2 ((h,M)-trees, the Gavoille et al. lower-bound family):
// measured leaf-label sizes of every exact scheme on (h,M)-trees against the
// h/2 * log M lower bound (Lemma 2.3). The schemes must sit above the bound
// (they are universal algorithms) and FGNW must track it most closely in
// payload terms.
#include "bench_util.hpp"
#include "core/alstrup_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/peleg_scheme.hpp"
#include "tree/generators.hpp"

using namespace treelab;
using bench::num;
using bench::row;

namespace {

template <typename Scheme>
std::size_t max_leaf_label(const tree::Tree& t, const Scheme& s) {
  std::size_t mx = 0;
  for (tree::NodeId v = 0; v < t.size(); ++v)
    if (t.is_leaf(v)) mx = std::max(mx, s.label(v).size());
  return mx;
}

}  // namespace

int main() {
  std::printf("== F2: (h,M)-tree lower-bound instances ==\n");
  row({"instance", "n", "LB h/2*lgM", "fgnw_leaf", "fgnw_pay", "alst_leaf",
       "peleg_leaf"});
  for (int h : {2, 4, 6, 8}) {
    for (std::uint32_t m : {4u, 16u, 64u}) {
      const tree::Tree t = tree::hm_tree(h, m, 11);
      const core::FgnwScheme f(t);
      const core::AlstrupScheme a(t);
      const core::PelegScheme p(t);
      row({"(h=" + std::to_string(h) + ",M=" + std::to_string(m) + ")",
           num(static_cast<std::size_t>(t.size())),
           num(h / 2.0 * bench::log2d(m), 1), num(max_leaf_label(t, f)),
           num(f.distance_payload_stats().max_bits),
           num(max_leaf_label(t, a)), num(max_leaf_label(t, p))});
    }
  }
  std::printf(
      "\nshape check: every measured label exceeds the h/2*lgM lower bound; "
      "the gap narrows for FGNW payload as h*lgM grows.\n");
  return 0;
}
