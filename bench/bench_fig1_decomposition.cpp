// F1 — Fig. 1 (heavy path decomposition and the collapsed tree C(T)):
// decomposition statistics at scale for both HPD variants: number of heavy
// paths, max light depth (must be <= log2 n), C(T) height, exceptional-edge
// count. Also emits a DOT rendering of a small example, mirroring Fig. 1.
#include <fstream>

#include "bench_util.hpp"
#include "tree/binarize.hpp"
#include "tree/collapsed.hpp"
#include "tree/generators.hpp"
#include "tree/io.hpp"

using namespace treelab;
using bench::num;
using bench::row;

int main() {
  std::printf("== F1: heavy path decomposition / collapsed tree ==\n");
  row({"workload", "variant", "n_bin", "paths", "max_ld", "ct_height",
       "exceptional", "lg n"});
  for (const auto& shape : tree::standard_shapes()) {
    const tree::Tree t = shape.make(1 << 15, 3);
    const auto bt = tree::binarize(t);
    for (auto variant : {tree::HeavyPathDecomposition::Variant::kPaperHalf,
                         tree::HeavyPathDecomposition::Variant::kClassic}) {
      const tree::HeavyPathDecomposition hpd(bt.tree, variant);
      const tree::CollapsedTree ct(hpd);
      std::size_t exceptional = 0;
      for (std::int32_t c = 0; c < ct.size(); ++c)
        exceptional += ct.is_exceptional(c);
      row({shape.name,
           variant == tree::HeavyPathDecomposition::Variant::kPaperHalf
               ? "paper"
               : "classic",
           num(static_cast<std::size_t>(bt.tree.size())),
           num(static_cast<std::size_t>(hpd.num_paths())),
           num(hpd.max_light_depth()), num(ct.height()), num(exceptional),
           num(bench::log2d(static_cast<double>(bt.tree.size())), 1)});
    }
  }
  // Small illustrative DOT file (the Fig. 1 analogue).
  {
    const tree::Tree t = tree::random_binary_tree(24, 1);
    const tree::HeavyPathDecomposition hpd(t);
    std::ofstream out("fig1_example.dot");
    tree::write_dot(out, t, &hpd);
    std::printf("\nwrote fig1_example.dot (render with: dot -Tpng)\n");
  }
  std::printf(
      "shape check: max_ld and ct_height stay <= lg n for both variants on "
      "every shape.\n");
  return 0;
}
