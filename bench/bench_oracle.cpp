// APP — the introduction's application at scale: SpanningOracle (FGNW
// labels over landmark BFS trees) on random graphs of growing size and
// density. Reports per-node state, exactness rate and stretch, showing the
// practical trade-off a downstream user of the library faces; plus the
// serving regime: batch throughput of a node answering a query stream from
// its attached cache (query_many) vs re-decoding raw states per call.
#include <algorithm>
#include <chrono>
#include <random>

#include "bench_util.hpp"
#include "core/spanning_oracle.hpp"
#include "tree/graph.hpp"

using namespace treelab;
using bench::num;
using bench::row;
using core::SpanningOracle;
using tree::Graph;
using tree::NodeId;

namespace {
volatile std::uint64_t benchmark_sink = 0;  // defeats dead-code elimination
}

int main() {
  std::printf("== APP: spanning-tree distance oracle on general graphs ==\n");
  row({"graph", "landmarks", "bits/node", "exact%", "avg_stretch"});
  for (const auto& [n, extra] : std::vector<std::pair<NodeId, NodeId>>{
           {1000, 1000}, {4000, 4000}, {4000, 16000}}) {
    const Graph g = Graph::random_connected(n, extra, 23);
    std::mt19937_64 rng(5);
    std::uniform_int_distribution<NodeId> pick(0, n - 1);
    for (int landmarks : {1, 4, 16}) {
      const SpanningOracle o(g, landmarks);
      double sum_stretch = 0;
      int exact = 0, total = 0;
      for (int i = 0; i < 120; ++i) {
        const NodeId u = pick(rng);
        const auto du = g.bfs_distances(u);
        for (int j = 0; j < 4; ++j) {
          const NodeId v = pick(rng);
          if (u == v) continue;
          const auto est = SpanningOracle::query(o.state(u), o.state(v));
          sum_stretch +=
              static_cast<double>(est) / static_cast<double>(du[v]);
          exact += est == static_cast<std::uint64_t>(du[v]);
          ++total;
        }
      }
      row({"n=" + std::to_string(n) + ",m~" + std::to_string(n + extra),
           num(landmarks), num(o.stats().max_bits),
           num(100.0 * exact / total, 1), num(sum_stretch / total, 3)});
    }
  }
  std::printf(
      "\nshape check: stretch decreases monotonically in the landmark "
      "budget; state grows linearly in it (one tree label per landmark).\n");

  std::printf("\n== APP: batch serving throughput (attach-once cache) ==\n");
  row({"graph", "landmarks", "raw_q/s", "batch_q/s", "speedup"});
  {
    const NodeId n = 8000;
    const Graph g = Graph::random_connected(n, n, 23);
    std::mt19937_64 rng(5);
    std::uniform_int_distribution<NodeId> pick(0, n - 1);
    for (int landmarks : {1, 4}) {
      const SpanningOracle o(g, landmarks);
      const auto att = o.attach_all();
      // Pre-generate the query stream so both sides pay identical
      // index-generation overhead (cf. make_pairs in bench_query_time).
      std::vector<std::pair<NodeId, NodeId>> pairs(4096);
      for (auto& p : pairs) p = {pick(rng), pick(rng)};
      const auto measure = [](auto&& f) {
        return bench::measure_qps(f, /*batch=*/2048);
      };
      std::size_t i = 0;
      const double raw = measure([&](std::size_t m) {
        std::uint64_t acc = 0;
        while (m--) {
          const auto& [u, v] = pairs[i++ & 4095];
          acc += SpanningOracle::query(o.state(u), o.state(v));
        }
        benchmark_sink = benchmark_sink + acc;
      });
      i = 0;
      const double batch = measure([&](std::size_t m) {
        const auto& [u, v] = pairs[i++ & 4095];
        const std::size_t lo =
            (static_cast<std::size_t>(u) + static_cast<std::size_t>(v)) %
            (att.size() - m);
        const auto res = SpanningOracle::query_many(
            att[u], std::span(att).subspan(lo, m));
        benchmark_sink = benchmark_sink + res[0];
      });
      row({"n=" + std::to_string(n) + ",m~" + std::to_string(2 * n),
           num(landmarks), num(raw, 0), num(batch, 0), num(batch / raw, 2)});
    }
  }
  return 0;
}
