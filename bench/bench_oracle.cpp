// APP — the introduction's application at scale: SpanningOracle (FGNW
// labels over landmark BFS trees) on random graphs of growing size and
// density. Reports per-node state, exactness rate and stretch, showing the
// practical trade-off a downstream user of the library faces; plus the
// serving regime: batch throughput of a node answering a query stream from
// its attached cache (query_many) vs re-decoding raw states per call.
// Emits BENCH_oracle.json (same shape as BENCH_build/BENCH_serve).
//
// Usage: bench_oracle [--quick]   (--quick: CI-sized configs)
#include <algorithm>
#include <chrono>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/spanning_oracle.hpp"
#include "tree/graph.hpp"

using namespace treelab;
using bench::num;
using bench::row;
using core::SpanningOracle;
using tree::Graph;
using tree::NodeId;

namespace {
volatile std::uint64_t benchmark_sink = 0;  // defeats dead-code elimination

struct AccuracyRow {
  std::string name;
  int landmarks = 0;
  std::size_t bits_per_node = 0;
  double exact_pct = 0;
  double avg_stretch = 0;
};

struct ThroughputRow {
  std::string name;
  int landmarks = 0;
  double raw_qps = 0;
  double batch_qps = 0;
};
}  // namespace

int main(int argc, char** argv) {
  const bool quick =
      argc > 1 && std::any_of(argv + 1, argv + argc, [](const char* a) {
        return std::strcmp(a, "--quick") == 0;
      });

  std::vector<AccuracyRow> accuracy;
  std::vector<ThroughputRow> throughput;

  std::printf("== APP: spanning-tree distance oracle on general graphs ==\n");
  row({"graph", "landmarks", "bits/node", "exact%", "avg_stretch"});
  const std::vector<std::pair<NodeId, NodeId>> configs =
      quick ? std::vector<std::pair<NodeId, NodeId>>{{500, 500}}
            : std::vector<std::pair<NodeId, NodeId>>{
                  {1000, 1000}, {4000, 4000}, {4000, 16000}};
  const int samples = quick ? 30 : 120;
  for (const auto& [n, extra] : configs) {
    const Graph g = Graph::random_connected(n, extra, 23);
    std::mt19937_64 rng(5);
    std::uniform_int_distribution<NodeId> pick(0, n - 1);
    for (int landmarks : {1, 4, 16}) {
      const SpanningOracle o(g, landmarks);
      double sum_stretch = 0;
      int exact = 0, total = 0;
      for (int i = 0; i < samples; ++i) {
        const NodeId u = pick(rng);
        const auto du = g.bfs_distances(u);
        for (int j = 0; j < 4; ++j) {
          const NodeId v = pick(rng);
          if (u == v) continue;
          const auto est = SpanningOracle::query(o.state(u), o.state(v));
          sum_stretch +=
              static_cast<double>(est) / static_cast<double>(du[v]);
          exact += est == static_cast<std::uint64_t>(du[v]);
          ++total;
        }
      }
      const std::string name =
          "n=" + std::to_string(n) + ",m~" + std::to_string(n + extra);
      accuracy.push_back({name + ",l=" + std::to_string(landmarks), landmarks,
                          o.stats().max_bits, 100.0 * exact / total,
                          sum_stretch / total});
      row({name, num(landmarks), num(o.stats().max_bits),
           num(100.0 * exact / total, 1), num(sum_stretch / total, 3)});
    }
  }
  std::printf(
      "\nshape check: stretch decreases monotonically in the landmark "
      "budget; state grows linearly in it (one tree label per landmark).\n");

  std::printf("\n== APP: batch serving throughput (attach-once cache) ==\n");
  row({"graph", "landmarks", "raw_q/s", "batch_q/s", "speedup"});
  {
    // n must stay above the 2048-query batch the query_many side slices out
    // of the attached-state array.
    const NodeId n = quick ? 4096 : 8000;
    const Graph g = Graph::random_connected(n, n, 23);
    std::mt19937_64 rng(5);
    std::uniform_int_distribution<NodeId> pick(0, n - 1);
    for (int landmarks : {1, 4}) {
      const SpanningOracle o(g, landmarks);
      const auto att = o.attach_all();
      // Pre-generate the query stream so both sides pay identical
      // index-generation overhead (cf. make_pairs in bench_query_time).
      std::vector<std::pair<NodeId, NodeId>> pairs(4096);
      for (auto& p : pairs) p = {pick(rng), pick(rng)};
      const auto measure = [&](auto&& f) {
        return bench::measure_qps(f, /*batch=*/2048,
                                  /*min_seconds=*/quick ? 0.05 : 0.2);
      };
      std::size_t i = 0;
      const double raw = measure([&](std::size_t m) {
        std::uint64_t acc = 0;
        while (m--) {
          const auto& [u, v] = pairs[i++ & 4095];
          acc += SpanningOracle::query(o.state(u), o.state(v));
        }
        benchmark_sink = benchmark_sink + acc;
      });
      i = 0;
      const double batch = measure([&](std::size_t m) {
        const auto& [u, v] = pairs[i++ & 4095];
        const std::size_t lo =
            (static_cast<std::size_t>(u) + static_cast<std::size_t>(v)) %
            (att.size() - m);
        const auto res = SpanningOracle::query_many(
            att[u], std::span(att).subspan(lo, m));
        benchmark_sink = benchmark_sink + res[0];
      });
      const std::string name = "n=" + std::to_string(n) + ",m~" +
                               std::to_string(2 * n) + ",l=" +
                               std::to_string(landmarks);
      throughput.push_back({name, landmarks, raw, batch});
      row({"n=" + std::to_string(n) + ",m~" + std::to_string(2 * n),
           num(landmarks), num(raw, 0), num(batch, 0), num(batch / raw, 2)});
    }
  }

  const char* path = "BENCH_oracle.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"oracle\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  bench::json_provenance(f, 0);
  std::fprintf(f, "  \"accuracy\": [\n");
  for (std::size_t i = 0; i < accuracy.size(); ++i)
    std::fprintf(
        f,
        "    {\"case\": \"%s\", \"landmarks\": %d, \"bits_per_node\": %zu, "
        "\"exact_pct\": %.1f, \"avg_stretch\": %.3f}%s\n",
        accuracy[i].name.c_str(), accuracy[i].landmarks,
        accuracy[i].bits_per_node, accuracy[i].exact_pct,
        accuracy[i].avg_stretch, i + 1 < accuracy.size() ? "," : "");
  std::fprintf(f, "  ],\n  \"serving\": [\n");
  for (std::size_t i = 0; i < throughput.size(); ++i)
    std::fprintf(f,
                 "    {\"case\": \"%s\", \"landmarks\": %d, \"raw_qps\": "
                 "%.0f, \"batch_qps\": %.0f, \"speedup\": %.2f}%s\n",
                 throughput[i].name.c_str(), throughput[i].landmarks,
                 throughput[i].raw_qps, throughput[i].batch_qps,
                 throughput[i].batch_qps / throughput[i].raw_qps,
                 i + 1 < throughput.size() ? "," : "");
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
  return 0;
}
