// APP — the introduction's application at scale: SpanningOracle (FGNW
// labels over landmark BFS trees) on random graphs of growing size and
// density. Reports per-node state, exactness rate and stretch, showing the
// practical trade-off a downstream user of the library faces.
#include <algorithm>
#include <random>

#include "bench_util.hpp"
#include "core/spanning_oracle.hpp"
#include "tree/graph.hpp"

using namespace treelab;
using bench::num;
using bench::row;
using core::SpanningOracle;
using tree::Graph;
using tree::NodeId;

int main() {
  std::printf("== APP: spanning-tree distance oracle on general graphs ==\n");
  row({"graph", "landmarks", "bits/node", "exact%", "avg_stretch"});
  for (const auto& [n, extra] : std::vector<std::pair<NodeId, NodeId>>{
           {1000, 1000}, {4000, 4000}, {4000, 16000}}) {
    const Graph g = Graph::random_connected(n, extra, 23);
    std::mt19937_64 rng(5);
    std::uniform_int_distribution<NodeId> pick(0, n - 1);
    for (int landmarks : {1, 4, 16}) {
      const SpanningOracle o(g, landmarks);
      double sum_stretch = 0;
      int exact = 0, total = 0;
      for (int i = 0; i < 120; ++i) {
        const NodeId u = pick(rng);
        const auto du = g.bfs_distances(u);
        for (int j = 0; j < 4; ++j) {
          const NodeId v = pick(rng);
          if (u == v) continue;
          const auto est = SpanningOracle::query(o.state(u), o.state(v));
          sum_stretch +=
              static_cast<double>(est) / static_cast<double>(du[v]);
          exact += est == static_cast<std::uint64_t>(du[v]);
          ++total;
        }
      }
      row({"n=" + std::to_string(n) + ",m~" + std::to_string(n + extra),
           num(landmarks), num(o.stats().max_bits),
           num(100.0 * exact / total, 1), num(sum_stretch / total, 3)});
    }
  }
  std::printf(
      "\nshape check: stretch decreases monotonically in the landmark "
      "budget; state grows linearly in it (one tree label per landmark).\n");
  return 0;
}
