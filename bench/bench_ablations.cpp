// ABL — design-choice ablations called out in DESIGN.md:
//   * fragment parameter B (Section 3.3 uses sqrt(log n)),
//   * Thin-lemma threshold 2^8 (Section 3.2),
//   * the paper's >= |T|/2 HPD variant vs the classic largest-child variant
//     (which disables bit-pushing; see fgnw_scheme.cpp for why).
// Reported on the quadratic-term family and a random workload.
#include "bench_util.hpp"
#include "core/fgnw_scheme.hpp"
#include "tree/generators.hpp"

using namespace treelab;
using bench::num;
using bench::row;

namespace {

void report(const std::string& cfg, const tree::Tree& t,
            core::FgnwOptions opt) {
  const core::FgnwScheme f(t, opt);
  row({cfg, num(f.stats().max_bits), num(f.stats().avg_bits()),
       num(f.distance_payload_stats().max_bits),
       num(f.build_info().total_pushed_bits),
       num(f.build_info().max_accumulator_bits),
       num(f.build_info().fragment_levels)});
}

}  // namespace

int main() {
  std::printf("== ABL: FGNW design-choice ablations ==\n");
  const tree::Tree hm = tree::subdivide(tree::hm_tree(7, 64, 3));
  const tree::Tree rnd = tree::random_tree(1 << 14, 21);

  for (const auto& [name, t] :
       std::vector<std::pair<std::string, const tree::Tree*>>{
           {"hm-subdiv(7,64)", &hm}, {"random 2^14", &rnd}}) {
    std::printf("\n-- workload: %s --\n", name.c_str());
    row({"config", "max_bits", "avg_bits", "payload", "pushed", "max_acc",
         "frags"});
    report("B=auto thin=8 paper", *t, {0, 8, false});
    for (int b : {1, 2, 4, 8}) {
      core::FgnwOptions o;
      o.fragment_exponent = b;
      report("B=" + std::to_string(b), *t, o);
    }
    for (int th : {2, 4, 12}) {
      core::FgnwOptions o;
      o.thin_exponent = th;
      report("thin=2^" + std::to_string(th), *t, o);
    }
    core::FgnwOptions classic;
    classic.use_classic_hpd = true;
    report("classic HPD (no push)", *t, classic);
  }
  std::printf(
      "\nshape check: B=sqrt(lg n) and thin=2^8 sit at/near the best label "
      "sizes; the classic-HPD variant cannot push bits and pays for it on "
      "the quadratic family.\n");
  return 0;
}
