// QT — the "constant query time" claims of Theorems 1.1/1.3 (word-RAM):
// wall-clock query latency per scheme as n grows, for both the raw-BitVec
// path (decode per call) and the attached parse-once/query-many fast path.
// Latency should stay flat (up to cache effects) — queries decode two
// O(polylog)-bit labels and do word operations; nothing scales with n.
//
// Besides the google-benchmark cases, the main() emits a machine-readable
// BENCH_query.json with raw-vs-attached queries/sec at n = 2^16 (plus the
// SpanningOracle batch case), so successive PRs can track the trajectory.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/alstrup_scheme.hpp"
#include "core/approx_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/kdistance_scheme.hpp"
#include "core/peleg_scheme.hpp"
#include "core/spanning_oracle.hpp"
#include "tree/generators.hpp"
#include "tree/graph.hpp"

using namespace treelab;

namespace {

/// Tree seed for every case; --seed overrides (the JSON records it).
std::uint64_t g_seed = 123;

tree::Tree make_tree(std::int64_t n) {
  return tree::random_tree(static_cast<tree::NodeId>(n), g_seed);
}

/// A fixed cycle of random query pairs, shared by raw and attached loops so
/// both pay identical index-generation overhead.
std::vector<std::pair<tree::NodeId, tree::NodeId>> make_pairs(
    tree::NodeId n, std::size_t count = 4096) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<tree::NodeId> pick(0, n - 1);
  std::vector<std::pair<tree::NodeId, tree::NodeId>> out(count);
  for (auto& p : out) p = {pick(rng), pick(rng)};
  return out;
}

template <typename Scheme>
void bench_exact(benchmark::State& state) {
  const tree::Tree t = make_tree(state.range(0));
  const Scheme s(t);
  const auto pairs = make_pairs(t.size());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = pairs[i++ & 4095];
    benchmark::DoNotOptimize(Scheme::query(s.label(u), s.label(v)));
  }
}

template <typename Scheme>
void bench_exact_attached(benchmark::State& state) {
  const tree::Tree t = make_tree(state.range(0));
  const Scheme s(t);
  std::vector<typename Scheme::Attached> att;
  att.reserve(static_cast<std::size_t>(t.size()));
  for (tree::NodeId v = 0; v < t.size(); ++v)
    att.push_back(Scheme::attach(s.label(v)));
  const auto pairs = make_pairs(t.size());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = pairs[i++ & 4095];
    benchmark::DoNotOptimize(Scheme::query(att[u], att[v]));
  }
}

void bench_kdist(benchmark::State& state) {
  const tree::Tree t = make_tree(state.range(0));
  const std::uint64_t k = static_cast<std::uint64_t>(state.range(1));
  const core::KDistanceScheme s(t, k);
  const auto pairs = make_pairs(t.size());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = pairs[i++ & 4095];
    benchmark::DoNotOptimize(
        core::KDistanceScheme::query(k, s.label(u), s.label(v)));
  }
}

void bench_kdist_attached(benchmark::State& state) {
  const tree::Tree t = make_tree(state.range(0));
  const std::uint64_t k = static_cast<std::uint64_t>(state.range(1));
  const core::KDistanceScheme s(t, k);
  std::vector<core::KDistanceAttachedLabel> att;
  att.reserve(static_cast<std::size_t>(t.size()));
  for (tree::NodeId v = 0; v < t.size(); ++v)
    att.push_back(core::KDistanceScheme::attach(k, s.label(v)));
  const auto pairs = make_pairs(t.size());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = pairs[i++ & 4095];
    benchmark::DoNotOptimize(core::KDistanceScheme::query(k, att[u], att[v]));
  }
}

void bench_approx(benchmark::State& state) {
  const tree::Tree t = make_tree(state.range(0));
  const double eps = 1.0 / static_cast<double>(state.range(1));
  const core::ApproxScheme s(t, eps);
  const auto pairs = make_pairs(t.size());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = pairs[i++ & 4095];
    benchmark::DoNotOptimize(
        core::ApproxScheme::query(eps, s.label(u), s.label(v)));
  }
}

void bench_approx_attached(benchmark::State& state) {
  const tree::Tree t = make_tree(state.range(0));
  const double eps = 1.0 / static_cast<double>(state.range(1));
  const core::ApproxScheme s(t, eps);
  std::vector<core::ApproxAttachedLabel> att;
  att.reserve(static_cast<std::size_t>(t.size()));
  for (tree::NodeId v = 0; v < t.size(); ++v)
    att.push_back(core::ApproxScheme::attach(s.label(v)));
  const auto pairs = make_pairs(t.size());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = pairs[i++ & 4095];
    benchmark::DoNotOptimize(core::ApproxScheme::query(eps, att[u], att[v]));
  }
}

void bench_oracle_raw(benchmark::State& state) {
  const tree::Graph g = tree::Graph::random_connected(
      static_cast<tree::NodeId>(state.range(0)),
      static_cast<tree::NodeId>(state.range(0)), 23);
  const core::SpanningOracle o(g, static_cast<int>(state.range(1)));
  const auto pairs = make_pairs(g.size());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = pairs[i++ & 4095];
    benchmark::DoNotOptimize(core::SpanningOracle::query(o.state(u),
                                                         o.state(v)));
  }
}

void bench_oracle_attached(benchmark::State& state) {
  const tree::Graph g = tree::Graph::random_connected(
      static_cast<tree::NodeId>(state.range(0)),
      static_cast<tree::NodeId>(state.range(0)), 23);
  const core::SpanningOracle o(g, static_cast<int>(state.range(1)));
  const auto att = o.attach_all();
  const auto pairs = make_pairs(g.size());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = pairs[i++ & 4095];
    benchmark::DoNotOptimize(core::SpanningOracle::query(att[u], att[v]));
  }
}

void bench_build_fgnw(benchmark::State& state) {
  const tree::Tree t = make_tree(state.range(0));
  for (auto _ : state) {
    const core::FgnwScheme s(t);
    benchmark::DoNotOptimize(s.stats().max_bits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// ---------------------------------------------------------------------------
// BENCH_query.json: raw vs attached queries/sec at n = 2^16
// ---------------------------------------------------------------------------

struct JsonCase {
  std::string name;
  double raw_qps = 0;
  double attached_qps = 0;
};

/// Measures one raw-vs-attached pair; `raw` and `att` answer a single
/// (u, v) query each, cycling through the shared pair array.
template <typename Pairs, typename RawFn, typename AttFn>
JsonCase json_case(std::string name, const Pairs& pairs, RawFn&& raw,
                   AttFn&& att) {
  const auto loop = [&pairs](auto query) {
    return [&pairs, query, i = std::size_t{0}](std::size_t m) mutable {
      std::uint64_t acc = 0;
      while (m--) {
        const auto& [u, v] = pairs[i++ & 4095];
        acc += query(u, v);
      }
      benchmark::DoNotOptimize(acc);
    };
  };
  JsonCase c{std::move(name), 0, 0};
  c.raw_qps = bench::measure_qps(loop(raw));
  c.attached_qps = bench::measure_qps(loop(att));
  return c;
}

template <typename Scheme>
JsonCase json_case_exact(const char* name, const tree::Tree& t,
                         const auto& pairs) {
  const Scheme s(t);
  std::vector<typename Scheme::Attached> att;
  att.reserve(static_cast<std::size_t>(t.size()));
  for (tree::NodeId v = 0; v < t.size(); ++v)
    att.push_back(Scheme::attach(s.label(v)));
  return json_case(
      name, pairs,
      [&](tree::NodeId u, tree::NodeId v) {
        return Scheme::query(s.label(u), s.label(v));
      },
      [&](tree::NodeId u, tree::NodeId v) {
        return Scheme::query(att[u], att[v]);
      });
}

void write_json_summary(const char* path, tree::NodeId kN) {
  const tree::Tree t = make_tree(kN);
  const auto pairs = make_pairs(kN);
  std::vector<JsonCase> cases;

  cases.push_back(json_case_exact<core::FgnwScheme>("fgnw", t, pairs));
  cases.push_back(json_case_exact<core::AlstrupScheme>("alstrup", t, pairs));
  cases.push_back(json_case_exact<core::PelegScheme>("peleg", t, pairs));

  {  // approx, eps = 1/8
    const double eps = 0.125;
    const core::ApproxScheme s(t, eps);
    std::vector<core::ApproxAttachedLabel> att;
    att.reserve(kN);
    for (tree::NodeId v = 0; v < kN; ++v)
      att.push_back(core::ApproxScheme::attach(s.label(v)));
    cases.push_back(json_case(
        "approx_eps8", pairs,
        [&](tree::NodeId u, tree::NodeId v) {
          return core::ApproxScheme::query(eps, s.label(u), s.label(v));
        },
        [&](tree::NodeId u, tree::NodeId v) {
          return core::ApproxScheme::query(eps, att[u], att[v]);
        }));
  }

  {  // k-distance, k = 4 (small-k machinery)
    const std::uint64_t k = 4;
    const core::KDistanceScheme s(t, k);
    std::vector<core::KDistanceAttachedLabel> att;
    att.reserve(kN);
    for (tree::NodeId v = 0; v < kN; ++v)
      att.push_back(core::KDistanceScheme::attach(k, s.label(v)));
    cases.push_back(json_case(
        "kdist_k4", pairs,
        [&](tree::NodeId u, tree::NodeId v) {
          return core::KDistanceScheme::query(k, s.label(u), s.label(v))
              .distance;
        },
        [&](tree::NodeId u, tree::NodeId v) {
          return core::KDistanceScheme::query(k, att[u], att[v]).distance;
        }));
  }

  {  // SpanningOracle batch case: a node answering a stream from its cache.
    // The graph is the n = 2^16 random tree itself (oracle exact regime).
    tree::Graph g(t.size());
    for (tree::NodeId v = 0; v < t.size(); ++v)
      if (t.parent(v) != tree::kNoNode) g.add_edge(v, t.parent(v));
    const core::SpanningOracle o(g, 2);
    const auto att = o.attach_all();
    JsonCase c{"oracle_batch", 0, 0};
    std::size_t i = 0;
    c.raw_qps = bench::measure_qps([&](std::size_t m) {
      std::uint64_t acc = 0;
      while (m--) {
        const auto& [u, v] = pairs[i++ & 4095];
        acc += core::SpanningOracle::query(o.state(u), o.state(v));
      }
      benchmark::DoNotOptimize(acc);
    });
    i = 0;
    c.attached_qps = bench::measure_qps([&](std::size_t m) {
      // query_many over a window of targets, cycling sources.
      const auto& [u, v] = pairs[i++ & 4095];
      (void)v;
      const std::size_t lo =
          (static_cast<std::size_t>(u) * 131) % (att.size() - m);
      const auto res = core::SpanningOracle::query_many(
          att[u], std::span(att).subspan(lo, m));
      benchmark::DoNotOptimize(res.data());
    });
    cases.push_back(c);
  }

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"query_time\",\n  \"n\": %d,\n",
               static_cast<int>(kN));
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(g_seed));
  bench::json_provenance(f, 0);
  std::fprintf(f, "  \"tree\": \"random(seed=%llu)\",\n  \"results\": [\n",
               static_cast<unsigned long long>(g_seed));
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const JsonCase& c = cases[i];
    std::fprintf(f,
                 "    {\"case\": \"%s\", \"raw_qps\": %.0f, "
                 "\"attached_qps\": %.0f, \"speedup\": %.2f}%s\n",
                 c.name.c_str(), c.raw_qps, c.attached_qps,
                 c.attached_qps / c.raw_qps, i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s:\n", path);
  for (const JsonCase& c : cases)
    std::printf("  %-14s raw %12.0f q/s   attached %12.0f q/s   %5.2fx\n",
                c.name.c_str(), c.raw_qps, c.attached_qps,
                c.attached_qps / c.raw_qps);
}

}  // namespace

BENCHMARK(bench_exact<core::FgnwScheme>)
    ->Name("query/fgnw")
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18);
BENCHMARK(bench_exact<core::AlstrupScheme>)
    ->Name("query/alstrup")
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18);
BENCHMARK(bench_exact<core::PelegScheme>)
    ->Name("query/peleg")
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18);
BENCHMARK(bench_exact_attached<core::FgnwScheme>)
    ->Name("query/fgnw-attached")
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18);
BENCHMARK(bench_exact_attached<core::AlstrupScheme>)
    ->Name("query/alstrup-attached")
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18);
BENCHMARK(bench_exact_attached<core::PelegScheme>)
    ->Name("query/peleg-attached")
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18);
BENCHMARK(bench_kdist)
    ->Name("query/kdist")
    ->Args({1 << 14, 4})
    ->Args({1 << 14, 1 << 12})
    ->Args({1 << 18, 4});
BENCHMARK(bench_kdist_attached)
    ->Name("query/kdist-attached")
    ->Args({1 << 14, 4})
    ->Args({1 << 14, 1 << 12})
    ->Args({1 << 18, 4});
BENCHMARK(bench_approx)
    ->Name("query/approx")
    ->Args({1 << 14, 8})
    ->Args({1 << 18, 8});
BENCHMARK(bench_approx_attached)
    ->Name("query/approx-attached")
    ->Args({1 << 14, 8})
    ->Args({1 << 18, 8});
BENCHMARK(bench_oracle_raw)
    ->Name("query/oracle")
    ->Args({1 << 12, 4});
BENCHMARK(bench_oracle_attached)
    ->Name("query/oracle-attached")
    ->Args({1 << 12, 4});
BENCHMARK(bench_build_fgnw)
    ->Name("build/fgnw")
    ->Arg(1 << 12)
    ->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  // Our own flags (--n, --seed for the JSON sweep) are stripped before
  // google-benchmark sees the argument vector.
  tree::NodeId json_n = 1 << 16;
  std::vector<char*> args{argv[0]};
  bool filtered = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      json_n = static_cast<tree::NodeId>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      g_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      filtered |= std::strncmp(argv[i], "--benchmark_filter", 18) == 0;
      args.push_back(argv[i]);
    }
  }
  // The JSON trajectory sweep builds every scheme at n (default 2^16); skip
  // it when the user filtered down to specific micro-benchmarks.
  int args_n = static_cast<int>(args.size());
  benchmark::Initialize(&args_n, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!filtered) write_json_summary("BENCH_query.json", json_n);
  return 0;
}
