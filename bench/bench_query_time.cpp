// QT — the "constant query time" claims of Theorems 1.1/1.3 (word-RAM):
// wall-clock query latency per scheme as n grows. Latency should stay flat
// (up to cache effects) — queries decode two O(polylog)-bit labels and do
// word operations; nothing scales with n.
#include <benchmark/benchmark.h>

#include <random>

#include "core/alstrup_scheme.hpp"
#include "core/approx_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/kdistance_scheme.hpp"
#include "core/peleg_scheme.hpp"
#include "tree/generators.hpp"

using namespace treelab;

namespace {

tree::Tree make_tree(std::int64_t n) {
  return tree::random_tree(static_cast<tree::NodeId>(n), 123);
}

template <typename Scheme>
void bench_exact(benchmark::State& state) {
  const tree::Tree t = make_tree(state.range(0));
  const Scheme s(t);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<tree::NodeId> pick(0, t.size() - 1);
  for (auto _ : state) {
    const auto d = Scheme::query(s.label(pick(rng)), s.label(pick(rng)));
    benchmark::DoNotOptimize(d);
  }
}

void bench_kdist(benchmark::State& state) {
  const tree::Tree t = make_tree(state.range(0));
  const std::uint64_t k = static_cast<std::uint64_t>(state.range(1));
  const core::KDistanceScheme s(t, k);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<tree::NodeId> pick(0, t.size() - 1);
  for (auto _ : state) {
    const auto d =
        core::KDistanceScheme::query(k, s.label(pick(rng)), s.label(pick(rng)));
    benchmark::DoNotOptimize(d);
  }
}

void bench_approx(benchmark::State& state) {
  const tree::Tree t = make_tree(state.range(0));
  const double eps = 1.0 / static_cast<double>(state.range(1));
  const core::ApproxScheme s(t, eps);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<tree::NodeId> pick(0, t.size() - 1);
  for (auto _ : state) {
    const auto d =
        core::ApproxScheme::query(eps, s.label(pick(rng)), s.label(pick(rng)));
    benchmark::DoNotOptimize(d);
  }
}

void bench_fgnw_attached(benchmark::State& state) {
  const tree::Tree t = make_tree(state.range(0));
  const core::FgnwScheme s(t);
  std::vector<core::FgnwAttachedLabel> attached;
  attached.reserve(static_cast<std::size_t>(t.size()));
  for (tree::NodeId v = 0; v < t.size(); ++v)
    attached.push_back(core::FgnwScheme::attach(s.label(v)));
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<tree::NodeId> pick(0, t.size() - 1);
  for (auto _ : state) {
    const auto d =
        core::FgnwScheme::query(attached[pick(rng)], attached[pick(rng)]);
    benchmark::DoNotOptimize(d);
  }
}

void bench_build_fgnw(benchmark::State& state) {
  const tree::Tree t = make_tree(state.range(0));
  for (auto _ : state) {
    const core::FgnwScheme s(t);
    benchmark::DoNotOptimize(s.stats().max_bits);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

}  // namespace

BENCHMARK(bench_exact<core::FgnwScheme>)
    ->Name("query/fgnw")
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18);
BENCHMARK(bench_exact<core::AlstrupScheme>)
    ->Name("query/alstrup")
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18);
BENCHMARK(bench_exact<core::PelegScheme>)
    ->Name("query/peleg")
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18);
BENCHMARK(bench_fgnw_attached)
    ->Name("query/fgnw-attached")
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 18);
BENCHMARK(bench_kdist)
    ->Name("query/kdist")
    ->Args({1 << 14, 4})
    ->Args({1 << 14, 1 << 12})
    ->Args({1 << 18, 4});
BENCHMARK(bench_approx)
    ->Name("query/approx")
    ->Args({1 << 14, 8})
    ->Args({1 << 18, 8});
BENCHMARK(bench_build_fgnw)
    ->Name("build/fgnw")
    ->Arg(1 << 12)
    ->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
