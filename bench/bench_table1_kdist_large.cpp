// T1-klarge — the "k >= log n" row of the summary table:
// label size O(log n * log(k / log n)). Reported against that curve as k
// sweeps from log n to n.
#include "bench_util.hpp"
#include "core/kdistance_scheme.hpp"
#include "tree/generators.hpp"

using namespace treelab;
using bench::num;
using bench::row;

int main() {
  std::printf("== T1-klarge: k-distance labels, k >= log n ==\n");
  row({"workload", "k", "max_bits", "avg_bits", "lgn*lg(k/lgn)", "lg^2 n"});
  for (int lg : {12, 16}) {
    const tree::NodeId n = tree::NodeId{1} << lg;
    const tree::Tree t = tree::random_tree(n, 9);
    const double lgn = bench::log2d(static_cast<double>(n));
    for (std::uint64_t k = static_cast<std::uint64_t>(lgn);
         k <= static_cast<std::uint64_t>(n); k *= 4) {
      const core::KDistanceScheme s(t, k);
      row({"random/n=2^" + std::to_string(lg), num(k),
           num(s.stats().max_bits), num(s.stats().avg_bits()),
           num(lgn * std::log2(std::max(2.0, static_cast<double>(k) / lgn)), 1),
           num(lgn * lgn, 0)});
    }
  }
  std::printf(
      "\nshape check: max_bits tracks lgn*lg(k/lgn) and approaches the "
      "unbounded-distance lg^2 n regime as k -> n.\n");
  return 0;
}
