// T1-exact — the "Exact" row of the paper's Section 1 summary table:
//   upper bound 1/4 log^2 n + o(log^2 n)   (FGNW, Theorem 1.1)
//   vs the 1/2 log^2 n universal-tree-class scheme (Alstrup et al.)
//   vs the O(log^2 n) historical baseline (Peleg).
//
// For each workload and n we report the max/avg measured label size of each
// scheme, the distance-array *payload* (the quantity the theorems bound,
// where the ~2x separation shows), and the theoretical curves. The
// quadratic term dominates on the subdivided (h,M)-family; on random trees
// the o(log^2 n) terms dominate at laptop-scale n — both are reported.
#include <cinttypes>

#include "bench_util.hpp"
#include "core/alstrup_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/peleg_scheme.hpp"
#include "tree/binarize.hpp"
#include "tree/generators.hpp"

using namespace treelab;
using bench::num;
using bench::row;

namespace {

void report(const std::string& name, const tree::Tree& t) {
  const core::FgnwScheme f(t);
  const core::AlstrupScheme a(tree::binarize(t).tree);  // same substrate
  const core::PelegScheme p(t);
  const double n = static_cast<double>(t.size());
  row({name + "/n=" + std::to_string(t.size()),
       num(f.stats().max_bits), num(f.stats().avg_bits()),
       num(f.distance_payload_stats().max_bits),
       num(a.stats().max_bits),
       num(a.distance_payload_stats().max_bits),
       num(p.stats().max_bits),
       num(bench::quarter_log2(n), 0), num(bench::half_log2(n), 0)});
}

}  // namespace

int main() {
  std::printf("== T1-exact: exact distance labels (bits) ==\n");
  row({"workload", "fgnw_max", "fgnw_avg", "fgnw_pay", "alst_max",
       "alst_pay", "peleg_max", ".25lg^2", ".5lg^2"});
  for (int lg = 8; lg <= 17; lg += 3) {
    const tree::NodeId n = tree::NodeId{1} << lg;
    report("random", tree::random_tree(n, 42));
    report("random-binary", tree::random_binary_tree(n, 42));
    report("caterpillar", tree::caterpillar(n / 4, 3));
    report("broom", tree::broom(n / 2, n / 2));
  }
  std::printf(
      "\n-- quadratic-term family: subdivided (h,M)-trees "
      "(payload columns carry the theorem's separation) --\n");
  for (const auto& [h, m] : std::vector<std::pair<int, std::uint32_t>>{
           {5, 16}, {6, 32}, {7, 64}, {8, 64}}) {
    report("hm-subdiv h=" + std::to_string(h) + ",M=" + std::to_string(m),
           tree::subdivide(tree::hm_tree(h, m, 3)));
  }
  std::printf(
      "\nshape check: fgnw_pay ~ 0.5 * alst_pay on the (h,M) family, and "
      "both stay below their respective log^2 curves.\n");
  return 0;
}
