// T1-ksmall — the "k < log n" row of the summary table:
// label size log n + O(k log(log n / k)). We report max label bits minus
// log n (the additive overhead the theorem bounds) against the k log(log
// n/k) curve, across k and n, on the shapes that stress significant-ancestor
// chains.
#include "bench_util.hpp"
#include "core/kdistance_scheme.hpp"
#include "tree/generators.hpp"

using namespace treelab;
using bench::num;
using bench::row;

int main() {
  std::printf("== T1-ksmall: k-distance labels, k < log n ==\n");
  row({"workload", "k", "max_bits", "avg_bits", "max-lgn",
       "k*lg(lgn/k)", "lgn"});
  for (int lg : {12, 16}) {
    const tree::NodeId n = tree::NodeId{1} << lg;
    for (const char* kind : {"random", "spider", "caterpillar"}) {
      tree::Tree t = std::string(kind) == "random"
                         ? tree::random_tree(n, 5)
                         : (std::string(kind) == "spider"
                                ? tree::spider(1 << (lg / 2), 1 << (lg / 2))
                                : tree::caterpillar(n / 4, 3));
      const double lgn = bench::log2d(static_cast<double>(t.size()));
      for (std::uint64_t k : {1, 2, 4, 8}) {
        if (static_cast<double>(k) >= lgn) continue;
        const core::KDistanceScheme s(t, k);
        const double kd = static_cast<double>(k);
        row({std::string(kind) + "/n=2^" + std::to_string(lg), num(k),
             num(s.stats().max_bits), num(s.stats().avg_bits()),
             num(static_cast<double>(s.stats().max_bits) - lgn, 1),
             num(kd * std::log2(std::max(2.0, lgn / kd)), 1), num(lgn, 1)});
      }
    }
  }
  std::printf(
      "\nshape check: (max-lgn) grows roughly linearly in k with a "
      "log(log n/k) factor, far below k*lgn.\n");
  return 0;
}
