// F5 — Fig. 5 ((x,h,d)-regular trees, the Section 4.1 lower-bound family):
// builds every member of the family for small (h, d, k), labels its leaves
// for 2k-distance queries, and measures (a) per-member label sizes and (b)
// how many distinct labels the whole family needs — the quantity Lemma 4.1
// lower-bounds via the common(x,y) counting argument.
#include <set>
#include <string>

#include "bench_util.hpp"
#include "core/kdistance_scheme.hpp"
#include "tree/generators.hpp"

using namespace treelab;
using bench::num;
using bench::row;

int main() {
  std::printf("== F5: (x,h,d)-regular trees, k-distance lower-bound family ==\n");
  row({"family (h,d,k)", "members", "leaves/mem", "max_bits", "distinct",
       "leaves_tot", "lgN+k*lgh"});
  for (const auto& [h, d, k] : std::vector<std::tuple<int, int, int>>{
           {2, 2, 1}, {2, 2, 2}, {3, 2, 2}, {2, 3, 2}}) {
    // Enumerate all x vectors in [1,h]^k.
    std::vector<std::vector<int>> xs_list;
    std::vector<int> cur(static_cast<std::size_t>(k), 1);
    for (;;) {
      xs_list.push_back(cur);
      int i = k - 1;
      while (i >= 0 && cur[static_cast<std::size_t>(i)] == h) {
        cur[static_cast<std::size_t>(i)] = 1;
        --i;
      }
      if (i < 0) break;
      ++cur[static_cast<std::size_t>(i)];
    }
    std::set<std::string> distinct;
    std::size_t max_bits = 0, leaves_total = 0, leaves_per = 0;
    for (const auto& xs : xs_list) {
      const tree::Tree t = tree::regular_tree(xs, h, d);
      const core::KDistanceScheme s(t, 2 * static_cast<std::uint64_t>(k));
      leaves_per = 0;
      for (tree::NodeId v = 0; v < t.size(); ++v) {
        if (!t.is_leaf(v)) continue;
        ++leaves_per;
        ++leaves_total;
        distinct.insert(s.label(v).to_string());
        max_bits = std::max(max_bits, s.label(v).size());
      }
    }
    const double lgN = bench::log2d(static_cast<double>(leaves_per));
    // Built with += rather than operator+ chains: GCC 12's -Wrestrict
    // misfires on `const char* + std::string&&` at -O2 (upstream 105329).
    std::string cfg = "(";
    cfg += std::to_string(h);
    cfg += ',';
    cfg += std::to_string(d);
    cfg += ',';
    cfg += std::to_string(k);
    cfg += ')';
    row({cfg,
         num(xs_list.size()), num(leaves_per), num(max_bits),
         num(distinct.size()), num(leaves_total),
         num(lgN + k * std::log2(static_cast<double>(h)), 1)});
  }
  std::printf(
      "\nshape check: the family needs close to leaves_tot distinct labels "
      "(members cannot share labels freely), matching the Lemma 4.1 counting "
      "argument that forces the +Omega(k log(log n / (k log k))) addend.\n");
  return 0;
}
