// LabelArena — pooled label storage: one contiguous word buffer plus a
// per-label (offset, length) directory, replacing n individually allocated
// BitVecs. Every label starts on a 64-bit boundary (padded with zero bits),
// so label i is served as a BitSpan that behaves exactly like a standalone
// BitVec for every read operation, and bulk I/O (LabelStore) can stream a
// label's bytes straight out of the word buffer.
//
// build() is the one way labels get in: it runs an emitter over [0, n) on a
// deterministic chunked schedule and concatenates the per-chunk buffers in
// chunk order. Because each label is emitted independently and padded to a
// word boundary, the arena contents are bit-identical for every thread
// count — the property the serial-vs-parallel parity tests assert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "bits/bitio.hpp"
#include "bits/bitvec.hpp"
#include "util/parallel.hpp"

namespace treelab::bits {

class LabelArena {
 public:
  LabelArena() = default;

  /// Number of labels.
  [[nodiscard]] std::size_t size() const noexcept { return len_.size(); }
  [[nodiscard]] bool empty() const noexcept { return len_.empty(); }

  /// Label i as a word-aligned view. Valid while the arena lives.
  [[nodiscard]] BitSpan view(std::size_t i) const noexcept {
    return {words_.data() + start_word_[i], len_[i]};
  }
  [[nodiscard]] BitSpan operator[](std::size_t i) const noexcept {
    return view(i);
  }

  /// Exact bit length of label i (padding not included).
  [[nodiscard]] std::size_t label_bits(std::size_t i) const noexcept {
    return len_[i];
  }

  /// Sum of exact label lengths (padding not included).
  [[nodiscard]] std::size_t total_label_bits() const noexcept;

  /// The word storage of label i (for bulk serialization).
  [[nodiscard]] const std::uint64_t* label_words(std::size_t i) const noexcept {
    return words_.data() + start_word_[i];
  }

  /// Owning per-label copies (compatibility helper; O(total bits)).
  [[nodiscard]] std::vector<BitVec> to_vectors() const;

  /// Builds an arena of `n` labels by running `emit(i, writer)` for every
  /// i in [0, n), on up to `threads` threads (0 = TREELAB_THREADS / hardware
  /// default; the result is bit-identical for every thread count). Each
  /// worker chunk operates on its own *copy* of `emit`, so the emitter may
  /// keep mutable scratch state. With threads == 1 the indices are emitted
  /// strictly in order 0, 1, ..., n-1 (LabelStore's stream loader relies on
  /// this).
  template <typename Emit>
  [[nodiscard]] static LabelArena build(std::size_t n, int threads,
                                        const Emit& emit) {
    threads = util::resolve_threads(threads);
    const auto chunks = static_cast<std::size_t>(threads);

    struct Chunk {
      BitVec bits;
      std::vector<std::size_t> lens;
    };
    std::vector<Chunk> parts(std::min(chunks, std::max<std::size_t>(n, 1)));

    util::parallel_for_chunks(
        n, parts.size(), threads,
        [&](std::size_t c, std::size_t begin, std::size_t end) {
          Emit local(emit);
          BitWriter w;
          Chunk& ch = parts[c];
          ch.lens.reserve(end - begin);
          for (std::size_t i = begin; i < end; ++i) {
            const std::size_t before = w.bit_count();
            local(i, w);
            ch.lens.push_back(w.bit_count() - before);
            w.align_to_word();
          }
          ch.bits = w.take();
        });

    LabelArena out;
    out.len_.reserve(n);
    out.start_word_.reserve(n + 1);
    std::size_t word = 0;
    for (const Chunk& ch : parts)
      for (const std::size_t len : ch.lens) {
        out.start_word_.push_back(word);
        out.len_.push_back(len);
        word += (len + 63) / 64;
      }
    out.start_word_.push_back(word);
    out.words_.resize(word);
    std::size_t base = 0;
    for (const Chunk& ch : parts) {
      const std::size_t nw = ch.bits.words().size();
      if (nw != 0)
        std::memcpy(out.words_.data() + base, ch.bits.words().data(),
                    nw * sizeof(std::uint64_t));
      base += nw;
    }
    return out;
  }

  /// Builds an arena of `n` labels by splicing `old`: label i with
  /// dirty[i] == 0 keeps its exact bits from `old` (copied as whole-word
  /// runs — clean stretches move at memcpy speed), label i with
  /// dirty[i] != 0 is re-emitted via `emit(i, writer)`. Labels at index >=
  /// old.size() must be dirty (`n` may exceed old.size(): appends). Because
  /// every label is word-aligned and independently emitted, the result is
  /// bit-identical to build(n, ..., emit_all) whenever the clean labels'
  /// bits are unchanged — the contract IncrementalRelabeler's parity tests
  /// assert. Dirty emission is serial, in index order.
  template <typename Emit>
  [[nodiscard]] static LabelArena patched(const LabelArena& old, std::size_t n,
                                          const std::vector<std::uint8_t>& dirty,
                                          const Emit& emit) {
    BitWriter w;
    std::vector<std::size_t> fresh_len;
    for (std::size_t i = 0; i < n; ++i) {
      if (!dirty[i]) continue;
      const std::size_t before = w.bit_count();
      emit(i, w);
      fresh_len.push_back(w.bit_count() - before);
      w.align_to_word();
    }
    const BitVec fresh = w.take();

    LabelArena out;
    out.len_.reserve(n);
    out.start_word_.reserve(n + 1);
    std::size_t word = 0, df = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t len = dirty[i] ? fresh_len[df++] : old.len_[i];
      out.start_word_.push_back(word);
      out.len_.push_back(len);
      word += (len + 63) / 64;
    }
    out.start_word_.push_back(word);
    out.words_.resize(word);

    std::size_t fresh_word = 0;
    for (std::size_t i = 0; i < n;) {
      if (dirty[i]) {
        const std::size_t nw = (out.len_[i] + 63) / 64;
        if (nw != 0)
          std::memcpy(out.words_.data() + out.start_word_[i],
                      fresh.words().data() + fresh_word,
                      nw * sizeof(std::uint64_t));
        fresh_word += nw;
        ++i;
        continue;
      }
      std::size_t j = i;  // maximal clean run [i, j): contiguous in both
      while (j < n && !dirty[j]) ++j;
      const std::size_t nw = old.start_word_[j] - old.start_word_[i];
      if (nw != 0)
        std::memcpy(out.words_.data() + out.start_word_[i],
                    old.words_.data() + old.start_word_[i],
                    nw * sizeof(std::uint64_t));
      i = j;
    }
    return out;
  }

  /// A borrowed label: `bits` bits in `ceil(bits/64)` words whose bit 0 is
  /// the label's first bit (any word-aligned label — an arena view, a
  /// MappedArena view, a standalone BitVec). The source type of composed().
  struct LabelRef {
    const std::uint64_t* words = nullptr;
    std::size_t bits = 0;
  };

  /// Builds an arena of `n` labels by *copying*: `src(i)` names where label
  /// i's words live (LabelRef). Every label is word-aligned on both sides,
  /// so this is one directory pass plus per-label memcpys — the delta
  /// application / compaction primitive (LabelStore::apply_delta splices a
  /// base arena and a delta payload through it, IncrementalRelabeler's
  /// compact() drops tombstoned slots with it).
  template <typename Src>
  [[nodiscard]] static LabelArena composed(std::size_t n, const Src& src) {
    LabelArena out;
    out.len_.reserve(n);
    out.start_word_.reserve(n + 1);
    std::size_t word = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t bits = src(i).bits;
      out.start_word_.push_back(word);
      out.len_.push_back(bits);
      word += (bits + 63) / 64;
    }
    out.start_word_.push_back(word);
    out.words_.resize(word);
    for (std::size_t i = 0; i < n; ++i) {
      const LabelRef r = src(i);
      const std::size_t nw = (r.bits + 63) / 64;
      if (nw != 0)
        std::memcpy(out.words_.data() + out.start_word_[i], r.words,
                    nw * sizeof(std::uint64_t));
    }
    return out;
  }

  /// An arena holding old's labels at `ids`, in order: out[i] = old[ids[i]].
  /// Order-preserving id compaction is gathered(old, live_ids).
  [[nodiscard]] static LabelArena gathered(const LabelArena& old,
                                           const std::vector<std::size_t>& ids) {
    return composed(ids.size(), [&](std::size_t i) {
      return LabelRef{old.label_words(ids[i]), old.len_[ids[i]]};
    });
  }

 private:
  std::vector<std::uint64_t> words_;
  std::vector<std::size_t> start_word_;  // size() + 1 entries
  std::vector<std::size_t> len_;         // exact bit lengths
};

}  // namespace treelab::bits
