// bits::kernels — runtime-dispatched decode kernels for the bit-level hot
// paths (unary-run scanning, in-word select, bulk popcount).
//
// The serving stack spends most of a warm query decoding labels: word-wise
// unary runs (BitReader::get_unary), rank/select over unary high vectors
// (RankSelect / MonotoneSeq), and monotone-sequence element reads. Those
// inner loops compile against this facade instead of raw word ops; at
// process start the facade resolves ONE dispatch table for the best level
// the host supports and every call goes through it from then on:
//
//   * kScalar — portable C++ (std::popcount, ctz word loops, the
//     popcount-guided binary-halving select). This is the exact code path
//     the repo always had; every other level is locked bit-identical to it
//     by tests/bits_kernels_test.cpp before any bench row may move.
//   * kPopcnt — x86-64 POPCNT + BMI2: hardware popcount loops and the
//     branch-free PDEP/TZCNT in-word select (one deposit + one count
//     instead of a six-step halving cascade).
//   * kAvx2  — adds 256-bit zero-run skipping to the unary scanner (VPTESTZ
//     over 4 words per step — long runs cost a quarter of the branches) and
//     the PSHUFB nibble-LUT bulk popcount.
//
// Dispatch is overridable with TREELAB_KERNELS=scalar|popcnt|avx2|auto
// (read once, first use): forcing `scalar` is how benches measure the
// kernels' own win and how a miscompiled vector path would be ruled out in
// the field. Requesting a level the host cannot run falls back to the best
// supported one with a one-time stderr warning; the resolved level is
// exposed as the `bits.kernels.level` gauge and stamped into every
// BENCH_*.json provenance header.
//
// Per-level entry points (the `Level`-taking overloads) exist for the
// differential tests ONLY — production code calls the dispatched form.
#pragma once

#include <cstddef>
#include <cstdint>

namespace treelab::bits::kernels {

/// Dispatch levels, ordered: a higher level strictly extends the one below.
enum class Level : std::uint8_t {
  kScalar = 0,
  kPopcnt = 1,  ///< x86-64 POPCNT + BMI2 (PDEP select)
  kAvx2 = 2,    ///< + AVX2 zero-run skip and PSHUFB bulk popcount
};

/// True when this host can execute `l` (kScalar is always true).
[[nodiscard]] bool supported(Level l) noexcept;

/// The level the facade resolved for this process (TREELAB_KERNELS
/// override applied, clamped to what the host supports).
[[nodiscard]] Level level() noexcept;

/// "scalar" / "popcnt" / "avx2".
[[nodiscard]] const char* level_name(Level l) noexcept;
[[nodiscard]] const char* level_name() noexcept;

/// "Not found" sentinel of find_first_one.
inline constexpr std::size_t kNpos = ~std::size_t{0};

/// The resolved dispatch table. References stay valid for the process
/// lifetime; hot loops grab `const Ops& k = ops();` once and call through
/// it (one indirect call per operation, no re-dispatch).
struct Ops {
  /// Position of the first set bit at or after `from` within the first
  /// `nbits` bits of `words`, or kNpos if the rest is all zeros. Bits of
  /// the final word past `nbits` are ignored (BitSpan guarantees them
  /// zero, but a corrupt mapping must not fake a terminator).
  std::size_t (*find_first_one)(const std::uint64_t* words, std::size_t nbits,
                                std::size_t from) noexcept;
  /// Position (0-based) of the k-th set bit of w. Precondition:
  /// k < popcount(w).
  int (*select_in_word)(std::uint64_t w, int k) noexcept;
  /// Total set bits in words[0..nwords).
  std::uint64_t (*popcount_words)(const std::uint64_t* words,
                                  std::size_t nwords) noexcept;
};
[[nodiscard]] const Ops& ops() noexcept;

/// Per-level entry points for the differential tests. Precondition:
/// supported(l). Semantics identical to the Ops members.
[[nodiscard]] std::size_t find_first_one(Level l, const std::uint64_t* words,
                                         std::size_t nbits,
                                         std::size_t from) noexcept;
[[nodiscard]] int select_in_word(Level l, std::uint64_t w, int k) noexcept;
[[nodiscard]] std::uint64_t popcount_words(Level l,
                                           const std::uint64_t* words,
                                           std::size_t nwords) noexcept;

/// Read-intent prefetch of the cache line holding `p` (no-op where the
/// compiler has no builtin). The serving batch planner uses this to pull
/// mapped label words a few queries ahead of the decode cursor.
inline void prefetch(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace treelab::bits::kernels
