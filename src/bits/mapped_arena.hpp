// MappedArena — the serving-side counterpart of LabelArena: a read-only
// pooled label set whose word buffer lives in an mmap'ed file instead of an
// owned vector. LabelStore's mappable container (version 2) writes every
// label word-aligned and zero-padded — the exact in-memory layout
// LabelArena::build produces — so view(i) can hand out BitSpans straight
// into the page cache: opening a multi-gigabyte labeling costs one mmap and
// an O(n) directory scan, not a copy of the payload.
//
// A MappedArena can also *adopt* an in-memory LabelArena, so callers that
// fall back to streamed loading (version-1 files, pipes, big-endian hosts,
// platforms without mmap) serve through the same type; mapped() tells the
// two apart. Instances are movable, not copyable; the mapping is released
// on destruction. Views are valid while the arena lives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "bits/bitvec.hpp"
#include "bits/label_arena.hpp"

namespace treelab::bits {

class MappedArena {
 public:
  MappedArena() = default;
  MappedArena(const MappedArena&) = delete;
  MappedArena& operator=(const MappedArena&) = delete;
  MappedArena(MappedArena&& other) noexcept { swap(other); }
  MappedArena& operator=(MappedArena&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  ~MappedArena() { release(); }

  /// Maps `path` read-only and serves labels from the word buffer that
  /// starts `words_offset` bytes into the file (8-byte aligned; label i
  /// occupies ceil(lens[i]/64) little-endian words, zero-padded past its
  /// last bit). Returns nullopt when zero-copy is impossible — no mmap on
  /// this platform, a big-endian host, a misaligned offset, a file too
  /// small for the directory, or directory allocation failure — so the
  /// caller can fall back to streamed loading (and report *its* errors,
  /// which see the same truncation).
  [[nodiscard]] static std::optional<MappedArena> map(
      const char* path, std::size_t words_offset,
      std::vector<std::size_t> lens);

  /// Wraps an in-memory arena (the streamed-loading fallback) behind the
  /// same interface.
  [[nodiscard]] static MappedArena adopt(LabelArena&& owned);

  /// True when views point into an mmap'ed file rather than owned memory.
  [[nodiscard]] bool mapped() const noexcept { return base_ != nullptr; }

  [[nodiscard]] std::size_t size() const noexcept {
    return mapped() ? len_.size() : owned_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Label i as a word-aligned view. Valid while the arena lives.
  [[nodiscard]] BitSpan view(std::size_t i) const noexcept {
    return mapped() ? BitSpan{words_ + start_word_[i], len_[i]}
                    : owned_.view(i);
  }
  [[nodiscard]] BitSpan operator[](std::size_t i) const noexcept {
    return view(i);
  }

  /// Exact bit length of label i (padding not included).
  [[nodiscard]] std::size_t label_bits(std::size_t i) const noexcept {
    return mapped() ? len_[i] : owned_.label_bits(i);
  }

  /// The word storage of label i (for bulk copies — delta application
  /// gathers clean base labels straight out of the page cache).
  [[nodiscard]] const std::uint64_t* label_words(std::size_t i) const noexcept {
    return mapped() ? words_ + start_word_[i] : owned_.label_words(i);
  }

  /// Sum of exact label lengths (padding not included).
  [[nodiscard]] std::size_t total_label_bits() const noexcept;

 private:
  void release() noexcept;
  void swap(MappedArena& other) noexcept;

  // Mapped state (base_ != nullptr): the whole file is mapped; words_
  // points words_offset bytes in.
  void* base_ = nullptr;
  std::size_t map_len_ = 0;
  const std::uint64_t* words_ = nullptr;
  std::vector<std::size_t> start_word_;  // per-label first word
  std::vector<std::size_t> len_;         // exact bit lengths

  // Fallback state (base_ == nullptr): an owned in-memory arena.
  LabelArena owned_;
};

}  // namespace treelab::bits
