#include "bits/label_arena.hpp"

namespace treelab::bits {

std::size_t LabelArena::total_label_bits() const noexcept {
  std::size_t total = 0;
  for (const std::size_t l : len_) total += l;
  return total;
}

std::vector<BitVec> LabelArena::to_vectors() const {
  std::vector<BitVec> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.emplace_back(view(i));
  return out;
}

}  // namespace treelab::bits
