#include "bits/alphabetic.hpp"

#include <stdexcept>

#include "bits/wordops.hpp"

namespace treelab::bits {

std::vector<Codeword> alphabetic_code(std::span<const std::uint64_t> weights) {
  if (weights.empty())
    throw std::invalid_argument("alphabetic_code: no symbols");
  std::uint64_t total = 0;
  for (std::uint64_t w : weights) {
    if (w == 0) throw std::invalid_argument("alphabetic_code: zero weight");
    total += w;
  }

  std::vector<Codeword> out;
  out.reserve(weights.size());
  std::uint64_t cum = 0;
  for (std::uint64_t w : weights) {
    // Midpoint of the symbol's interval: (cum + w/2) / total, kept exactly
    // as the fraction num / (2 * total).
    const unsigned __int128 num = 2 * static_cast<unsigned __int128>(cum) + w;
    const unsigned __int128 den = 2 * static_cast<unsigned __int128>(total);
    // len = ceil(log2(total / w)) + 1
    const int len = ceil_log2((total + w - 1) / w) + 1;
    const std::uint64_t code =
        static_cast<std::uint64_t>((num << len) / den);
    out.push_back(Codeword{code, len});
    cum += w;
  }
  return out;
}

}  // namespace treelab::bits
