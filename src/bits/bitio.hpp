// BitWriter / BitReader: streaming construction and decoding of labels.
//
// Every labeling scheme encodes its label as a sequence of self-delimiting
// fields (Elias codes, unary runs, fixed-width words); these two classes are
// the only way label bits are produced and consumed, which keeps encode and
// decode symmetric by construction.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "bits/bitvec.hpp"

namespace treelab::bits {

class BitWriter {
 public:
  BitWriter() = default;

  void put_bit(bool b) { out_.push_back(b); }

  /// Append the `width` lowest bits of `value`, LSB first.
  void put_bits(std::uint64_t value, int width) { out_.append_bits(value, width); }

  /// Unary code for x >= 0: x zeros followed by a one.
  void put_unary(std::uint64_t x) {
    for (std::uint64_t i = 0; i < x; ++i) out_.push_back(false);
    out_.push_back(true);
  }

  /// Elias gamma code for x >= 1: unary(len-1) then the low len-1 bits of x.
  void put_gamma(std::uint64_t x);

  /// Elias gamma shifted to accept x >= 0 (encodes x+1).
  void put_gamma0(std::uint64_t x) { put_gamma(x + 1); }

  /// Elias delta code for x >= 1: gamma(len) then the low len-1 bits of x.
  void put_delta(std::uint64_t x);

  /// Elias delta shifted to accept x >= 0 (encodes x+1).
  void put_delta0(std::uint64_t x) { put_delta(x + 1); }

  void append(BitSpan v) { out_.append(v); }

  /// Pad with zero bits to the next 64-bit boundary. LabelArena uses this
  /// between labels so every label starts word-aligned.
  void align_to_word() {
    const int pad = static_cast<int>((64 - (out_.size() & 63)) & 63);
    if (pad != 0) out_.append_bits(0, pad);
  }

  [[nodiscard]] std::size_t bit_count() const noexcept { return out_.size(); }

  /// Finish and take the encoded bits.
  [[nodiscard]] BitVec take() { return std::move(out_); }

  [[nodiscard]] const BitVec& bits() const noexcept { return out_; }

 private:
  BitVec out_;
};

/// Thrown when a label does not decode (truncated / corrupt input). Queries
/// must fail loudly on malformed labels rather than reading out of bounds.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const char* what) : std::runtime_error(what) {}
};

class BitReader {
 public:
  /// Reads from `v` (a BitVec or a LabelArena view); the underlying storage
  /// must outlive the reader.
  explicit BitReader(BitSpan v) noexcept : v_(v) {}

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return v_.size() - pos_;
  }

  void seek(std::size_t pos) {
    if (pos > v_.size()) throw DecodeError("BitReader::seek past end");
    pos_ = pos;
  }

  [[nodiscard]] bool get_bit() {
    require(1);
    return v_.get(pos_++);
  }

  [[nodiscard]] std::uint64_t get_bits(int width) {
    require(static_cast<std::size_t>(width));
    const std::uint64_t x = v_.read_bits(pos_, width);
    pos_ += static_cast<std::size_t>(width);
    return x;
  }

  /// Unchecked variants for pre-validated decodes: a caller that has already
  /// bounded the section it is about to read (attach()-style re-parses of a
  /// buffer it validated once) skips the per-read bounds check. Precondition:
  /// the read stays within the underlying BitVec.
  [[nodiscard]] bool get_bit_unchecked() noexcept { return v_.get(pos_++); }

  [[nodiscard]] std::uint64_t get_bits_unchecked(int width) noexcept {
    const std::uint64_t x = v_.read_bits(pos_, width);
    pos_ += static_cast<std::size_t>(width);
    return x;
  }

  /// Unchecked Elias decodes for the same pre-validated regime: used when
  /// re-attaching to a buffer whose codes were already walked once (e.g.
  /// MonotoneSeq::attach over its own validated encoding).
  [[nodiscard]] std::uint64_t get_unary_unchecked() noexcept;
  [[nodiscard]] std::uint64_t get_gamma_unchecked() noexcept;
  [[nodiscard]] std::uint64_t get_delta_unchecked() noexcept;
  [[nodiscard]] std::uint64_t get_delta0_unchecked() noexcept {
    return get_delta_unchecked() - 1;
  }

  /// Word-wise unary decode: scans for the terminating one 64 bits at a
  /// time with a ctz instead of bit-by-bit probing.
  [[nodiscard]] std::uint64_t get_unary();
  [[nodiscard]] std::uint64_t get_gamma();
  [[nodiscard]] std::uint64_t get_gamma0() { return get_gamma() - 1; }
  [[nodiscard]] std::uint64_t get_delta();
  [[nodiscard]] std::uint64_t get_delta0() { return get_delta() - 1; }

  /// Extract `len` bits starting at the cursor as a BitVec and advance.
  [[nodiscard]] BitVec get_vec(std::size_t len) {
    require(len);
    BitVec out = v_.slice(pos_, len);
    pos_ += len;
    return out;
  }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > v_.size()) throw DecodeError("BitReader: truncated input");
  }

  static constexpr std::size_t kNoPos = ~std::size_t{0};

  /// Position of the next set bit at or after the cursor (word-wise scan),
  /// or kNoPos if the rest of the vector is all zeros.
  [[nodiscard]] std::size_t find_one() const noexcept;

  BitSpan v_;
  std::size_t pos_ = 0;
};

}  // namespace treelab::bits
