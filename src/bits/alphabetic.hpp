// Order-preserving prefix-free codes (Gilbert–Moore alphabetic codes).
//
// Given positive weights w_1..w_m with total W, symbol j receives a codeword
// of length ceil(log2(W / w_j)) + 1 bits, no codeword is a prefix of another,
// and codewords compare lexicographically in symbol order. This is the
// standard tool behind O(log n)-bit heavy-path labels (Lemma 2.1): encoding
// the branch at a path position with ~log(parent size / child size) bits
// telescopes to O(log n) over a root-to-leaf sequence of light edges.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bits/bitio.hpp"

namespace treelab::bits {

struct Codeword {
  std::uint64_t bits = 0;  // MSB-aligned within `len`: bit (len-1-i) is the
                           // i-th bit of the codeword
  int len = 0;

  /// Appends MSB-first (so that bitwise comparison of concatenated labels
  /// equals lexicographic comparison of codeword sequences). Emitted as one
  /// bit-reversed word append rather than len push_backs.
  void write_to(BitWriter& w) const {
    std::uint64_t rev = 0;
    for (int i = 0; i < len; ++i) rev |= ((bits >> i) & 1u) << (len - 1 - i);
    w.put_bits(rev, len);
  }
};

/// Builds the Gilbert–Moore code for `weights` (each >= 1).
/// Throws std::invalid_argument on empty input or zero weights.
[[nodiscard]] std::vector<Codeword> alphabetic_code(
    std::span<const std::uint64_t> weights);

}  // namespace treelab::bits
