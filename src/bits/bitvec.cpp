#include "bits/bitvec.hpp"

#include <bit>
#include <cassert>

#include "bits/kernels.hpp"

namespace treelab::bits {

void BitVec::append_bits(std::uint64_t value, int width) {
  assert(width >= 0 && width <= 64);
  if (width < 64) value &= low_mask(width);
  int done = 0;
  while (done < width) {
    const int off = static_cast<int>(size_ & 63);
    if (off == 0) words_.push_back(0);
    const int take = std::min(64 - off, width - done);
    words_[size_ >> 6] |= (value >> done) << off;
    size_ += static_cast<std::size_t>(take);
    done += take;
  }
}

void BitVec::append(BitSpan other) {
  std::size_t pos = 0;
  const std::size_t n = other.size();
  while (pos < n) {
    const int take = static_cast<int>(std::min<std::size_t>(64, n - pos));
    append_bits(other.read_bits(pos, take), take);
    pos += static_cast<std::size_t>(take);
  }
}

BitVec BitSpan::slice(std::size_t pos, std::size_t len) const {
  assert(pos + len <= size_);
  BitVec out;
  std::size_t done = 0;
  while (done < len) {
    const int take = static_cast<int>(std::min<std::size_t>(64, len - done));
    out.append_bits(read_bits(pos + done, take), take);
    done += static_cast<std::size_t>(take);
  }
  return out;
}

BitVec BitVec::slice(std::size_t pos, std::size_t len) const {
  return BitSpan(*this).slice(pos, len);
}

std::size_t BitVec::popcount() const noexcept {
  if (words_.empty()) return 0;
  // Bulk-count the full words through the dispatched kernel; the last word
  // is masked to the live bits and counted separately.
  std::size_t c = static_cast<std::size_t>(
      kernels::ops().popcount_words(words_.data(), words_.size() - 1));
  std::uint64_t last = words_.back();
  const int rem = static_cast<int>(size_ & 63);
  if (rem != 0) last &= low_mask(rem);
  c += static_cast<std::size_t>(std::popcount(last));
  return c;
}

bool operator==(BitSpan a, BitSpan b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); i += 64) {
    const int take = static_cast<int>(std::min<std::size_t>(64, a.size() - i));
    if (a.read_bits(i, take) != b.read_bits(i, take)) return false;
  }
  return true;
}

}  // namespace treelab::bits
