#include "bits/bitvec.hpp"

#include <bit>
#include <cassert>

namespace treelab::bits {

void BitVec::append_bits(std::uint64_t value, int width) {
  assert(width >= 0 && width <= 64);
  if (width < 64) value &= low_mask(width);
  int done = 0;
  while (done < width) {
    const int off = static_cast<int>(size_ & 63);
    if (off == 0) words_.push_back(0);
    const int take = std::min(64 - off, width - done);
    words_[size_ >> 6] |= (value >> done) << off;
    size_ += static_cast<std::size_t>(take);
    done += take;
  }
}

void BitVec::append(const BitVec& other) {
  std::size_t pos = 0;
  while (pos < other.size_) {
    const int take = static_cast<int>(std::min<std::size_t>(64, other.size_ - pos));
    append_bits(other.read_bits(pos, take), take);
    pos += static_cast<std::size_t>(take);
  }
}

std::uint64_t BitVec::read_bits(std::size_t pos, int width) const {
  assert(width >= 0 && width <= 64);
  assert(pos + static_cast<std::size_t>(width) <= size_);
  if (width == 0) return 0;
  const std::size_t w = pos >> 6;
  const int off = static_cast<int>(pos & 63);
  std::uint64_t out = words_[w] >> off;
  const int have = 64 - off;
  if (have < width) out |= words_[w + 1] << have;
  if (width < 64) out &= low_mask(width);
  return out;
}

BitVec BitVec::slice(std::size_t pos, std::size_t len) const {
  assert(pos + len <= size_);
  BitVec out;
  std::size_t done = 0;
  while (done < len) {
    const int take = static_cast<int>(std::min<std::size_t>(64, len - done));
    out.append_bits(read_bits(pos + done, take), take);
    done += static_cast<std::size_t>(take);
  }
  return out;
}

std::size_t BitVec::popcount() const noexcept {
  std::size_t c = 0;
  for (std::size_t i = 0; i + 1 < words_.size(); ++i)
    c += static_cast<std::size_t>(std::popcount(words_[i]));
  if (!words_.empty()) {
    std::uint64_t last = words_.back();
    const int rem = static_cast<int>(size_ & 63);
    if (rem != 0) last &= low_mask(rem);
    c += static_cast<std::size_t>(std::popcount(last));
  }
  return c;
}

bool BitVec::operator==(const BitVec& other) const noexcept {
  if (size_ != other.size_) return false;
  for (std::size_t i = 0; i < size_; i += 64) {
    const int take = static_cast<int>(std::min<std::size_t>(64, size_ - i));
    if (read_bits(i, take) != other.read_bits(i, take)) return false;
  }
  return true;
}

std::string BitVec::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(get(i) ? '1' : '0');
  return s;
}

}  // namespace treelab::bits
