#include "bits/bitio.hpp"

#include <algorithm>
#include <cassert>

#include "bits/kernels.hpp"
#include "bits/wordops.hpp"

namespace treelab::bits {

void BitWriter::put_gamma(std::uint64_t x) {
  assert(x >= 1);
  const int len = bitwidth(x);  // >= 1
  put_unary(static_cast<std::uint64_t>(len - 1));
  if (len > 1) put_bits(x & low_mask(len - 1), len - 1);
}

void BitWriter::put_delta(std::uint64_t x) {
  assert(x >= 1);
  const int len = bitwidth(x);
  put_gamma(static_cast<std::uint64_t>(len));
  if (len > 1) put_bits(x & low_mask(len - 1), len - 1);
}

std::uint64_t BitReader::get_unary() {
  const std::size_t one = find_one();
  if (one == kNoPos) throw DecodeError("BitReader: truncated input");
  const std::uint64_t x = one - pos_;
  pos_ = one + 1;
  return x;
}

std::size_t BitReader::find_one() const noexcept {
  // Dispatched unary-run scan over the span's words (BitSpan guarantees
  // zero padding past the last bit, so whole-word reads are in bounds).
  static_assert(kNoPos == kernels::kNpos);
  return kernels::ops().find_first_one(v_.data(), v_.size(), pos_);
}

std::uint64_t BitReader::get_unary_unchecked() noexcept {
  const std::size_t one = find_one();
  if (one == kNoPos) {
    // Precondition violated (no terminating one in bounds): terminate with
    // a garbage value like any other unchecked read, never spin.
    assert(false && "get_unary_unchecked: no terminator");
    const std::uint64_t x = v_.size() - pos_;
    pos_ = v_.size();
    return x;
  }
  const std::uint64_t x = one - pos_;
  pos_ = one + 1;
  return x;
}

std::uint64_t BitReader::get_gamma_unchecked() noexcept {
  const int len = static_cast<int>(get_unary_unchecked()) + 1;
  std::uint64_t x = std::uint64_t{1} << (len - 1);
  if (len > 1) x |= get_bits_unchecked(len - 1);
  return x;
}

std::uint64_t BitReader::get_delta_unchecked() noexcept {
  const int len = static_cast<int>(get_gamma_unchecked());
  std::uint64_t x = std::uint64_t{1} << (len - 1);
  if (len > 1) x |= get_bits_unchecked(len - 1);
  return x;
}

std::uint64_t BitReader::get_gamma() {
  const std::uint64_t lm1 = get_unary();
  if (lm1 >= 64) throw DecodeError("gamma code too long");
  const int len = static_cast<int>(lm1) + 1;
  std::uint64_t x = std::uint64_t{1} << (len - 1);
  if (len > 1) x |= get_bits(len - 1);
  return x;
}

std::uint64_t BitReader::get_delta() {
  const std::uint64_t len64 = get_gamma();
  if (len64 == 0 || len64 > 64) throw DecodeError("delta code length invalid");
  const int len = static_cast<int>(len64);
  std::uint64_t x = std::uint64_t{1} << (len - 1);
  if (len > 1) x |= get_bits(len - 1);
  return x;
}

}  // namespace treelab::bits
