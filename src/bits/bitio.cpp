#include "bits/bitio.hpp"

#include <cassert>

#include "bits/wordops.hpp"

namespace treelab::bits {

void BitWriter::put_gamma(std::uint64_t x) {
  assert(x >= 1);
  const int len = bitwidth(x);  // >= 1
  put_unary(static_cast<std::uint64_t>(len - 1));
  if (len > 1) put_bits(x & low_mask(len - 1), len - 1);
}

void BitWriter::put_delta(std::uint64_t x) {
  assert(x >= 1);
  const int len = bitwidth(x);
  put_gamma(static_cast<std::uint64_t>(len));
  if (len > 1) put_bits(x & low_mask(len - 1), len - 1);
}

std::uint64_t BitReader::get_unary() {
  std::uint64_t x = 0;
  while (!get_bit()) ++x;
  return x;
}

std::uint64_t BitReader::get_gamma() {
  const std::uint64_t lm1 = get_unary();
  if (lm1 >= 64) throw DecodeError("gamma code too long");
  const int len = static_cast<int>(lm1) + 1;
  std::uint64_t x = std::uint64_t{1} << (len - 1);
  if (len > 1) x |= get_bits(len - 1);
  return x;
}

std::uint64_t BitReader::get_delta() {
  const std::uint64_t len64 = get_gamma();
  if (len64 == 0 || len64 > 64) throw DecodeError("delta code length invalid");
  const int len = static_cast<int>(len64);
  std::uint64_t x = std::uint64_t{1} << (len - 1);
  if (len > 1) x |= get_bits(len - 1);
  return x;
}

}  // namespace treelab::bits
