#include "bits/kernels.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bits/wordops.hpp"
#include "obs/metrics.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define TREELAB_KERNELS_X86 1
#include <immintrin.h>
#else
#define TREELAB_KERNELS_X86 0
#endif

namespace treelab::bits::kernels {
namespace {

using std::size_t;
using std::uint64_t;

// ---------------------------------------------------------------------------
// Scalar level — the reference semantics every other level is tested against.
// ---------------------------------------------------------------------------

// Word loop with a masked tail: bits of the last word past `nbits` never
// count, matching the old BitReader::find_one which read via read_bits and
// therefore only ever saw in-range bits.
size_t find_first_one_scalar(const uint64_t* words, size_t nbits,
                             size_t from) noexcept {
  if (from >= nbits) return kNpos;
  const size_t last = (nbits - 1) >> 6;
  size_t wi = from >> 6;
  uint64_t cur = words[wi] & (~uint64_t{0} << (from & 63));
  for (;;) {
    if (wi == last) {
      const unsigned tail = static_cast<unsigned>(nbits - (wi << 6));
      if (tail < 64) cur &= low_mask(tail);
      if (cur == 0) return kNpos;
      return (wi << 6) + static_cast<size_t>(lsb(cur));
    }
    if (cur != 0) return (wi << 6) + static_cast<size_t>(lsb(cur));
    cur = words[++wi];
  }
}

int select_in_word_scalar(uint64_t w, int k) noexcept {
  return bits::select_in_word(w, k);  // popcount binary halving (wordops.hpp)
}

uint64_t popcount_words_scalar(const uint64_t* words, size_t nwords) noexcept {
  uint64_t total = 0;
  for (size_t i = 0; i < nwords; ++i) {
    total += static_cast<uint64_t>(std::popcount(words[i]));
  }
  return total;
}

#if TREELAB_KERNELS_X86

// ---------------------------------------------------------------------------
// Popcnt level — hardware POPCNT loops and the branch-free PDEP select.
// ---------------------------------------------------------------------------

// PDEP deposits the k-th set bit of a one-hot mask into the position of w's
// k-th set bit; TZCNT reads the position back. One dependent pair of 3-cycle
// ops instead of the 6-step halving cascade.
__attribute__((target("bmi,bmi2,popcnt"))) int select_in_word_bmi2(
    uint64_t w, int k) noexcept {
  return static_cast<int>(
      _tzcnt_u64(_pdep_u64(uint64_t{1} << static_cast<unsigned>(k), w)));
}

__attribute__((target("popcnt"))) uint64_t popcount_words_popcnt(
    const uint64_t* words, size_t nwords) noexcept {
  // Four independent accumulators to break the add dependency chain.
  uint64_t a = 0, b = 0, c = 0, d = 0;
  size_t i = 0;
  for (; i + 4 <= nwords; i += 4) {
    a += static_cast<uint64_t>(_mm_popcnt_u64(words[i]));
    b += static_cast<uint64_t>(_mm_popcnt_u64(words[i + 1]));
    c += static_cast<uint64_t>(_mm_popcnt_u64(words[i + 2]));
    d += static_cast<uint64_t>(_mm_popcnt_u64(words[i + 3]));
  }
  for (; i < nwords; ++i) {
    a += static_cast<uint64_t>(_mm_popcnt_u64(words[i]));
  }
  return a + b + c + d;
}

// ---------------------------------------------------------------------------
// AVX2 level — 256-bit zero-run skipping and the PSHUFB nibble popcount.
// ---------------------------------------------------------------------------

// Unary runs in FGNW headers can span many words of zeros; VPTESTZ rejects
// four words per branch, and the first non-zero block falls back to the
// scalar tail which re-applies the exact boundary masking.
__attribute__((target("avx2"))) size_t find_first_one_avx2(
    const uint64_t* words, size_t nbits, size_t from) noexcept {
  if (from >= nbits) return kNpos;
  const size_t last = (nbits - 1) >> 6;
  size_t wi = from >> 6;
  // First (possibly partial) word stays scalar.
  {
    uint64_t cur = words[wi] & (~uint64_t{0} << (from & 63));
    if (wi == last) {
      const unsigned tail = static_cast<unsigned>(nbits - (wi << 6));
      if (tail < 64) cur &= low_mask(tail);
      if (cur == 0) return kNpos;
      return (wi << 6) + static_cast<size_t>(lsb(cur));
    }
    if (cur != 0) return (wi << 6) + static_cast<size_t>(lsb(cur));
    ++wi;
  }
  // Skip zero runs four words at a time (full words only — `last` is
  // handled by the scalar tail so nothing past nbits is ever inspected
  // for a hit).
  while (wi + 4 <= last) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + wi));
    if (!_mm256_testz_si256(v, v)) break;
    wi += 4;
  }
  for (;; ++wi) {
    uint64_t cur = words[wi];
    if (wi == last) {
      const unsigned tail = static_cast<unsigned>(nbits - (wi << 6));
      if (tail < 64) cur &= low_mask(tail);
      if (cur == 0) return kNpos;
      return (wi << 6) + static_cast<size_t>(lsb(cur));
    }
    if (cur != 0) return (wi << 6) + static_cast<size_t>(lsb(cur));
  }
}

// Mula's PSHUFB nibble-LUT popcount: 32 bytes/iteration, SAD-accumulated
// into four 64-bit lanes so the loop carries no scalar dependency.
__attribute__((target("avx2"))) uint64_t popcount_words_avx2(
    const uint64_t* words, size_t nwords) noexcept {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i nib = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= nwords; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    const __m256i lo = _mm256_shuffle_epi8(lut, _mm256_and_si256(v, nib));
    const __m256i hi = _mm256_shuffle_epi8(
        lut, _mm256_and_si256(_mm256_srli_epi16(v, 4), nib));
    acc = _mm256_add_epi64(
        acc, _mm256_sad_epu8(_mm256_add_epi8(lo, hi), _mm256_setzero_si256()));
  }
  uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < nwords; ++i) {
    total += static_cast<uint64_t>(std::popcount(words[i]));
  }
  return total;
}

#endif  // TREELAB_KERNELS_X86

constexpr Ops kScalarOps{&find_first_one_scalar, &select_in_word_scalar,
                         &popcount_words_scalar};
#if TREELAB_KERNELS_X86
// find_first_one gains nothing from POPCNT alone; the popcnt level reuses
// the scalar scanner and upgrades select + bulk popcount.
constexpr Ops kPopcntOps{&find_first_one_scalar, &select_in_word_bmi2,
                         &popcount_words_popcnt};
constexpr Ops kAvx2Ops{&find_first_one_avx2, &select_in_word_bmi2,
                       &popcount_words_avx2};
#endif

const Ops& ops_for(Level l) noexcept {
#if TREELAB_KERNELS_X86
  switch (l) {
    case Level::kPopcnt:
      return kPopcntOps;
    case Level::kAvx2:
      return kAvx2Ops;
    case Level::kScalar:
      break;
  }
#else
  (void)l;
#endif
  return kScalarOps;
}

Level best_supported() noexcept {
  if (supported(Level::kAvx2)) return Level::kAvx2;
  if (supported(Level::kPopcnt)) return Level::kPopcnt;
  return Level::kScalar;
}

// TREELAB_KERNELS=scalar|popcnt|avx2|auto. Unknown names and unsupported
// requests warn once on stderr and fall back (unknown -> auto; unsupported
// -> best supported) so a stale env var can never take serving down.
Level resolve_level() noexcept {
  Level pick = best_supported();
  if (const char* env = std::getenv("TREELAB_KERNELS");
      env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    Level want = pick;
    bool known = true;
    if (std::strcmp(env, "scalar") == 0) {
      want = Level::kScalar;
    } else if (std::strcmp(env, "popcnt") == 0) {
      want = Level::kPopcnt;
    } else if (std::strcmp(env, "avx2") == 0) {
      want = Level::kAvx2;
    } else {
      known = false;
      std::fprintf(stderr,
                   "treelab: TREELAB_KERNELS=%s not recognized "
                   "(scalar|popcnt|avx2|auto); using %s\n",
                   env, level_name(pick));
    }
    if (known) {
      if (supported(want)) {
        pick = want;
      } else {
        std::fprintf(stderr,
                     "treelab: TREELAB_KERNELS=%s unsupported on this host; "
                     "using %s\n",
                     env, level_name(pick));
      }
    }
  }
  if constexpr (obs::kEnabled) {
    obs::Registry::global()
        .gauge("bits.kernels.level")
        .set(static_cast<std::uint64_t>(pick));
  }
  return pick;
}

}  // namespace

bool supported(Level l) noexcept {
  switch (l) {
    case Level::kScalar:
      return true;
#if TREELAB_KERNELS_X86
    case Level::kPopcnt:
      return __builtin_cpu_supports("popcnt") != 0 &&
             __builtin_cpu_supports("bmi") != 0 &&
             __builtin_cpu_supports("bmi2") != 0;
    case Level::kAvx2:
      return supported(Level::kPopcnt) && __builtin_cpu_supports("avx2") != 0;
#else
    case Level::kPopcnt:
    case Level::kAvx2:
      return false;
#endif
  }
  return false;
}

Level level() noexcept {
  static const Level resolved = resolve_level();
  return resolved;
}

const char* level_name(Level l) noexcept {
  switch (l) {
    case Level::kScalar:
      return "scalar";
    case Level::kPopcnt:
      return "popcnt";
    case Level::kAvx2:
      return "avx2";
  }
  return "scalar";
}

const char* level_name() noexcept { return level_name(level()); }

const Ops& ops() noexcept { return ops_for(level()); }

std::size_t find_first_one(Level l, const std::uint64_t* words,
                           std::size_t nbits, std::size_t from) noexcept {
  return ops_for(l).find_first_one(words, nbits, from);
}

int select_in_word(Level l, std::uint64_t w, int k) noexcept {
  return ops_for(l).select_in_word(w, k);
}

std::uint64_t popcount_words(Level l, const std::uint64_t* words,
                             std::size_t nwords) noexcept {
  return ops_for(l).popcount_words(words, nwords);
}

}  // namespace treelab::bits::kernels
