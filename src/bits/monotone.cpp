#include "bits/monotone.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "bits/wordops.hpp"

namespace treelab::bits {

std::size_t MonotoneSeq::encode_to(BitWriter& w,
                                   std::span<const std::uint64_t> xs,
                                   std::uint64_t universe) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] > universe)
      throw std::invalid_argument("MonotoneSeq: element exceeds universe");
    if (i > 0 && xs[i] < xs[i - 1])
      throw std::invalid_argument("MonotoneSeq: sequence not monotone");
  }

  const std::size_t before = w.bit_count();
  const std::size_t s = xs.size();
  const std::uint64_t b =
      s == 0 ? 1 : std::max<std::uint64_t>(1, (universe + s) / s);  // ceil(M/s), >=1

  w.put_delta0(static_cast<std::uint64_t>(s));
  w.put_delta0(universe);
  w.put_delta0(b);
  const int low_width = b > 1 ? ceil_log2(b) : 0;
  for (std::uint64_t x : xs) w.put_bits(x % b, low_width);
  std::uint64_t prev_hi = 0;
  for (std::uint64_t x : xs) {
    const std::uint64_t hi = x / b;
    w.put_unary(hi - prev_hi);
    prev_hi = hi;
  }
  return w.bit_count() - before;
}

MonotoneSeq MonotoneSeq::encode(std::span<const std::uint64_t> xs,
                                std::uint64_t universe) {
  BitWriter w;
  (void)encode_to(w, xs, universe);
  MonotoneSeq out;
  out.enc_ = w.take();
  out.attach();
  return out;
}

MonotoneSeq MonotoneSeq::read_from(BitReader& r) {
  // Decode the header to learn the total length, then slice it out.
  const std::size_t start = r.pos();
  const std::uint64_t s = r.get_delta0();
  const std::uint64_t m = r.get_delta0();
  const std::uint64_t b = r.get_delta0();
  if (b == 0) throw DecodeError("MonotoneSeq: zero block length");
  const int low_width = b > 1 ? ceil_log2(b) : 0;
  std::size_t pos = r.pos() + static_cast<std::size_t>(s) * low_width;
  // Skip s unary codes in the high vector.
  std::uint64_t hi_total = 0;
  r.seek(pos);
  for (std::uint64_t i = 0; i < s; ++i) hi_total += r.get_unary();
  if (hi_total > m / b + 1) throw DecodeError("MonotoneSeq: high parts overflow");
  const std::size_t end = r.pos();

  MonotoneSeq out;
  r.seek(start);
  out.enc_ = r.get_vec(end - start);
  out.attach();
  return out;
}

void MonotoneSeq::attach() {
  // enc_ is our own buffer, validated by encode()/read_from(); the header
  // re-decode skips per-read bounds checks.
  BitReader r(enc_);
  s_ = static_cast<std::size_t>(r.get_delta0_unchecked());
  m_ = r.get_delta0_unchecked();
  b_ = r.get_delta0_unchecked();
  low_width_ = b_ > 1 ? ceil_log2(b_) : 0;
  lows_off_ = r.pos();
  highs_off_ = lows_off_ + s_ * static_cast<std::size_t>(low_width_);
  highs_ = RankSelect(enc_.slice(highs_off_, enc_.size() - highs_off_));
}

std::uint64_t MonotoneSeq::get(std::size_t i) const {
  if (i >= s_) throw std::out_of_range("MonotoneSeq::get");
  const std::uint64_t low =
      low_width_ == 0
          ? 0
          : enc_.read_bits(lows_off_ + i * static_cast<std::size_t>(low_width_),
                           low_width_);
  // y_i = (position of i-th one in the unary vector) - i
  const std::uint64_t hi =
      static_cast<std::uint64_t>(highs_.select1(i)) - i;
  return hi * b_ + low;
}

std::size_t MonotoneSeq::successor(std::uint64_t x) const {
  // Binary search over positions; get() is O(1), so this is O(log s). When
  // s = O(log n) the paper replaces this with a Patrascu–Thorup predecessor
  // structure; the asymptotic label size is unchanged.
  std::size_t lo = 0, hi = s_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (get(mid) >= x)
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

std::size_t MonotoneSeq::predecessor(std::uint64_t x) const {
  const std::size_t succ_gt = [&] {
    std::size_t lo = 0, hi = s_;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (get(mid) > x)
        hi = mid;
      else
        lo = mid + 1;
    }
    return lo;
  }();
  return succ_gt == 0 ? s_ : succ_gt - 1;
}

std::size_t MonotoneSeq::lcs_of_prefixes(const MonotoneSeq& a, std::size_t pa,
                                         const MonotoneSeq& b,
                                         std::size_t pb) {
  assert(pa <= a.size() && pb <= b.size());
  std::size_t t = 0;
  const std::size_t lim = std::min(pa, pb);
  while (t < lim && a.get(pa - 1 - t) == b.get(pb - 1 - t)) ++t;
  return t;
}

}  // namespace treelab::bits
