#include "bits/mapped_arena.hpp"

#include <bit>
#include <utility>

#include "util/failpoint.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TREELAB_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define TREELAB_HAVE_MMAP 0
#endif

namespace treelab::bits {

std::optional<MappedArena> MappedArena::map(const char* path,
                                            std::size_t words_offset,
                                            std::vector<std::size_t> lens) {
  // Any hit means "mmap unavailable here": callers must take the same
  // streamed-fallback path they would on a platform without mmap, which
  // is exactly what the fallback-parity tests force and verify.
  if (util::failpoint::check("mapped_arena.map")) return std::nullopt;
#if TREELAB_HAVE_MMAP
  // The file stores words as little-endian bytes; reinterpreting them as
  // uint64_t is only the identity on a little-endian host.
  if constexpr (std::endian::native != std::endian::little) return std::nullopt;
  if (words_offset % sizeof(std::uint64_t) != 0) return std::nullopt;

  std::vector<std::size_t> start;
  try {
    start.resize(lens.size());
  } catch (const std::bad_alloc&) {
    return std::nullopt;  // let the caller fall back to streamed loading
  }
  // The running word count must not wrap: an adversarial length directory
  // (lens[i] near SIZE_MAX, or many huge entries) could otherwise overflow
  // `word` to a small value, pass the file_len check below, and hand out
  // BitSpan views far past the mapping. Compute each label's word count
  // without the `+ 63` (which itself can wrap) and refuse on overflow.
  std::size_t word = 0;
  for (std::size_t i = 0; i < lens.size(); ++i) {
    start[i] = word;
    const std::size_t nw = lens[i] / 64 + (lens[i] % 64 != 0 ? 1 : 0);
    if (word > SIZE_MAX - nw) return std::nullopt;
    word += nw;
  }

  const int fd = ::open(path, O_RDONLY);
  if (fd < 0) return std::nullopt;
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return std::nullopt;
  }
  const auto file_len = static_cast<std::size_t>(st.st_size);
  if (file_len < words_offset ||
      (file_len - words_offset) / sizeof(std::uint64_t) < word) {
    ::close(fd);
    return std::nullopt;
  }
  void* base = file_len == 0
                   ? nullptr
                   : ::mmap(nullptr, file_len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (file_len != 0 && base == MAP_FAILED) return std::nullopt;

  MappedArena out;
  if (file_len == 0) {
    if (!lens.empty()) return std::nullopt;
    // An empty labeling maps to an empty arena; mark it mapped with a
    // non-null sentinel-free representation by adopting an empty arena.
    return adopt(LabelArena{});
  }
  out.base_ = base;
  out.map_len_ = file_len;
  out.words_ = reinterpret_cast<const std::uint64_t*>(
      static_cast<const char*>(base) + words_offset);
  out.start_word_ = std::move(start);
  out.len_ = std::move(lens);
  return out;
#else
  (void)path;
  (void)words_offset;
  (void)lens;
  return std::nullopt;
#endif
}

MappedArena MappedArena::adopt(LabelArena&& owned) {
  MappedArena out;
  out.owned_ = std::move(owned);
  return out;
}

std::size_t MappedArena::total_label_bits() const noexcept {
  if (!mapped()) return owned_.total_label_bits();
  std::size_t total = 0;
  for (const std::size_t l : len_) total += l;
  return total;
}

void MappedArena::release() noexcept {
#if TREELAB_HAVE_MMAP
  if (base_ != nullptr) ::munmap(base_, map_len_);
#endif
  base_ = nullptr;
  map_len_ = 0;
  words_ = nullptr;
  start_word_.clear();
  len_.clear();
  owned_ = LabelArena{};
}

void MappedArena::swap(MappedArena& other) noexcept {
  std::swap(base_, other.base_);
  std::swap(map_len_, other.map_len_);
  std::swap(words_, other.words_);
  start_word_.swap(other.start_word_);
  len_.swap(other.len_);
  std::swap(owned_, other.owned_);
}

}  // namespace treelab::bits
