// Word-RAM primitives used throughout treelab.
//
// The paper's query-time analysis assumes a word-RAM with word size
// Omega(log n); these helpers are the constant-time operations it relies on
// (most-significant bit, longest common prefix of binary expansions,
// powers-of-two rounding for the 2-approximations of Section 4.3).
#pragma once

#include <bit>
#include <cstdint>

namespace treelab::bits {

/// Number of bits needed to write `x` in binary; bitwidth(0) == 0.
[[nodiscard]] constexpr int bitwidth(std::uint64_t x) noexcept {
  return std::bit_width(x);
}

/// Index of the most significant set bit (0-based); msb(1) == 0.
/// Precondition: x != 0.
[[nodiscard]] constexpr int msb(std::uint64_t x) noexcept {
  return 63 - std::countl_zero(x);
}

/// Index of the least significant set bit (0-based). Precondition: x != 0.
[[nodiscard]] constexpr int lsb(std::uint64_t x) noexcept {
  return std::countr_zero(x);
}

/// floor(log2(x)). Precondition: x != 0.
[[nodiscard]] constexpr int floor_log2(std::uint64_t x) noexcept {
  return msb(x);
}

/// ceil(log2(x)). Precondition: x != 0. ceil_log2(1) == 0.
[[nodiscard]] constexpr int ceil_log2(std::uint64_t x) noexcept {
  return x <= 1 ? 0 : msb(x - 1) + 1;
}

/// The paper's 2-approximation ⌊x⌋₂ = 2^⌊log x⌋: the largest power of two
/// not exceeding x (Section 4.3). Precondition: x != 0.
[[nodiscard]] constexpr std::uint64_t pow2_floor(std::uint64_t x) noexcept {
  return std::uint64_t{1} << msb(x);
}

/// Length of the longest common prefix of the w-bit binary expansions of a
/// and b, i.e. the number of leading bits that agree. Used by the Section 4.4
/// constant-time query: MSB(pre(u) XOR pre(v)) locates the trie branching.
[[nodiscard]] constexpr int common_prefix_len(std::uint64_t a, std::uint64_t b,
                                              int w) noexcept {
  const std::uint64_t x = a ^ b;
  if (x == 0) return w;
  const int first_diff = msb(x);  // highest differing bit position
  return first_diff >= w ? 0 : w - 1 - first_diff;
}

/// Mask with the `k` lowest bits set (k in [0,64]).
[[nodiscard]] constexpr std::uint64_t low_mask(int k) noexcept {
  return k >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << k) - 1;
}

/// Position (0-based) of the k-th set bit of `w` by popcount-guided binary
/// halving — a constant number of popcounts/shifts, no data-dependent loop.
/// Precondition: k < popcount(w).
[[nodiscard]] constexpr int select_in_word(std::uint64_t w, int k) noexcept {
  int pos = 0;
  for (int width = 32; width >= 1; width >>= 1) {
    const int c = std::popcount(w & low_mask(width));
    if (k >= c) {
      k -= c;
      w >>= width;
      pos += width;
    }
  }
  return pos;
}

}  // namespace treelab::bits
