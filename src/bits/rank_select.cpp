#include "bits/rank_select.hpp"

#include <bit>
#include <cassert>

#include "bits/wordops.hpp"

namespace treelab::bits {
namespace {

/// Position (0-based) of the k-th set bit of word w; k < popcount(w).
int select_in_word(std::uint64_t w, int k) noexcept {
  for (int i = 0; i < k; ++i) w &= w - 1;  // clear k lowest ones
  return lsb(w);
}

}  // namespace

RankSelect::RankSelect(BitVec v) : bits_(std::move(v)) {
  const std::size_t n = bits_.size();
  const std::size_t n_super = n / kSuper + 1;
  super_rank_.assign(n_super + 1, 0);

  std::size_t ones = 0;
  for (std::size_t s = 0; s < n_super; ++s) {
    super_rank_[s] = ones;
    const std::size_t lo = s * kSuper;
    const std::size_t hi = std::min(n, lo + kSuper);
    for (std::size_t p = lo; p < hi; p += 64) {
      const int take = static_cast<int>(std::min<std::size_t>(64, hi - p));
      ones += static_cast<std::size_t>(
          std::popcount(bits_.read_bits(p, take)));
    }
    if ((s + 1) * kSuper <= n) {
      // hints: record the superblock containing every kSuper-th one/zero
      const std::size_t zeros = (s + 1) * kSuper - ones;
      while (sel1_hint_.size() * kSuper < ones)
        sel1_hint_.push_back(static_cast<std::uint32_t>(s));
      while (sel0_hint_.size() * kSuper < zeros)
        sel0_hint_.push_back(static_cast<std::uint32_t>(s));
    }
  }
  super_rank_[n_super] = ones;
  ones_ = ones;
}

std::size_t RankSelect::rank1(std::size_t i) const noexcept {
  assert(i <= bits_.size());
  const std::size_t s = i / kSuper;
  std::size_t r = super_rank_[s];
  std::size_t p = s * kSuper;
  while (p + 64 <= i) {
    r += static_cast<std::size_t>(std::popcount(bits_.read_bits(p, 64)));
    p += 64;
  }
  if (p < i)
    r += static_cast<std::size_t>(
        std::popcount(bits_.read_bits(p, static_cast<int>(i - p))));
  return r;
}

std::size_t RankSelect::select1(std::size_t k) const noexcept {
  assert(k < ones_);
  // Start from the hinted superblock, then walk superblocks.
  std::size_t s = 0;
  const std::size_t h = k / kSuper;
  if (h < sel1_hint_.size()) s = sel1_hint_[h];
  while (super_rank_[s + 1] <= k) ++s;
  std::size_t remaining = k - super_rank_[s];
  std::size_t p = s * kSuper;
  const std::size_t n = bits_.size();
  for (;;) {
    const int take = static_cast<int>(std::min<std::size_t>(64, n - p));
    const std::uint64_t w = bits_.read_bits(p, take);
    const std::size_t c = static_cast<std::size_t>(std::popcount(w));
    if (remaining < c)
      return p + static_cast<std::size_t>(
                     select_in_word(w, static_cast<int>(remaining)));
    remaining -= c;
    p += 64;
  }
}

std::size_t RankSelect::select0(std::size_t k) const noexcept {
  assert(k < bits_.size() - ones_);
  std::size_t s = 0;
  const std::size_t h = k / kSuper;
  if (h < sel0_hint_.size()) s = sel0_hint_[h];
  while ((s + 1) * kSuper - super_rank_[s + 1] <= k &&
         (s + 1) * kSuper <= bits_.size())
    ++s;
  std::size_t remaining = k - (s * kSuper - super_rank_[s]);
  std::size_t p = s * kSuper;
  const std::size_t n = bits_.size();
  for (;;) {
    const int take = static_cast<int>(std::min<std::size_t>(64, n - p));
    const std::uint64_t w = ~bits_.read_bits(p, take) & low_mask(take);
    const std::size_t c = static_cast<std::size_t>(std::popcount(w));
    if (remaining < c)
      return p + static_cast<std::size_t>(
                     select_in_word(w, static_cast<int>(remaining)));
    remaining -= c;
    p += 64;
  }
}

}  // namespace treelab::bits
