#include "bits/rank_select.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "bits/kernels.hpp"
#include "bits/wordops.hpp"

namespace treelab::bits {

RankSelect::RankSelect(BitVec v) : bits_(std::move(v)) {
  const std::size_t n = bits_.size();
  const std::size_t n_words = (n + 63) / 64;
  const std::size_t n_super = n / kSuper + 1;
  super_rank_.assign(n_super + 1, 0);
  block_rank_.assign(n_super * kWordsPerSuper, 0);

  const auto words = bits_.words();
  std::size_t ones = 0;
  std::size_t zeros = 0;
  for (std::size_t s = 0; s < n_super; ++s) {
    super_rank_[s] = ones;
    std::uint16_t in_super = 0;
    for (std::size_t j = 0; j < kWordsPerSuper; ++j) {
      const std::size_t wi = s * kWordsPerSuper + j;
      block_rank_[wi] = in_super;
      if (wi >= n_words) continue;
      const std::size_t base = wi * 64;
      const int take = static_cast<int>(std::min<std::size_t>(64, n - base));
      std::uint64_t w = words[wi];
      if (take < 64) w &= low_mask(take);
      const int pc = std::popcount(w);
      const int zc = take - pc;
      // Record the exact position of every kSelSample-th one/zero as it is
      // crossed (the next sample index is the vector's current size).
      while (sel1_pos_.size() * kSelSample <
             ones + static_cast<std::size_t>(pc)) {
        const auto rem = static_cast<int>(sel1_pos_.size() * kSelSample - ones);
        sel1_pos_.push_back(base +
                            static_cast<std::size_t>(select_in_word(w, rem)));
      }
      const std::uint64_t z = ~w & low_mask(take);
      while (sel0_pos_.size() * kSelSample <
             zeros + static_cast<std::size_t>(zc)) {
        const auto rem =
            static_cast<int>(sel0_pos_.size() * kSelSample - zeros);
        sel0_pos_.push_back(base +
                            static_cast<std::size_t>(select_in_word(z, rem)));
      }
      ones += static_cast<std::size_t>(pc);
      zeros += static_cast<std::size_t>(zc);
      in_super = static_cast<std::uint16_t>(in_super + pc);
    }
  }
  super_rank_[n_super] = ones;
  ones_ = ones;
}

std::size_t RankSelect::rank1(std::size_t i) const noexcept {
  assert(i <= bits_.size());
  std::size_t r = super_rank_[i / kSuper];
  const std::size_t wi = i / 64;
  if (wi < block_rank_.size()) r += block_rank_[wi];
  const int off = static_cast<int>(i & 63);
  if (off != 0)
    r += static_cast<std::size_t>(
        std::popcount(bits_.words()[wi] & low_mask(off)));
  return r;
}

std::size_t RankSelect::select1(std::size_t k) const noexcept {
  assert(k < ones_);
  // The sample bounds the search from below; densities here (the unary high
  // vectors of Lemma 2.2) keep the superblock walk to O(1) steps.
  std::size_t s = sel1_pos_[k / kSelSample] / kSuper;
  while (super_rank_[s + 1] <= k) ++s;
  std::size_t rem = k - super_rank_[s];
  const std::size_t base = s * kWordsPerSuper;
  std::size_t j = 0;
  while (j + 1 < kWordsPerSuper &&
         static_cast<std::size_t>(block_rank_[base + j + 1]) <= rem)
    ++j;
  rem -= block_rank_[base + j];
  const std::size_t wi = base + j;
  return wi * 64 + static_cast<std::size_t>(kernels::ops().select_in_word(
                       bits_.words()[wi], static_cast<int>(rem)));
}

std::size_t RankSelect::select0(std::size_t k) const noexcept {
  const std::size_t n = bits_.size();
  assert(k < n - ones_);
  std::size_t s = sel0_pos_[k / kSelSample] / kSuper;
  while ((s + 1) * kSuper <= n && (s + 1) * kSuper - super_rank_[s + 1] <= k)
    ++s;
  std::size_t rem = k - (s * kSuper - super_rank_[s]);
  const std::size_t base = s * kWordsPerSuper;
  std::size_t j = 0;
  while (j + 1 < kWordsPerSuper &&
         (j + 1) * 64 - static_cast<std::size_t>(block_rank_[base + j + 1]) <=
             rem)
    ++j;
  rem -= j * 64 - static_cast<std::size_t>(block_rank_[base + j]);
  const std::size_t wi = base + j;
  const std::size_t word_base = wi * 64;
  const int take = static_cast<int>(std::min<std::size_t>(64, n - word_base));
  const std::uint64_t z = ~bits_.words()[wi] & low_mask(take);
  return word_base + static_cast<std::size_t>(kernels::ops().select_in_word(
                         z, static_cast<int>(rem)));
}

}  // namespace treelab::bits
