// Succinct rank/select directories over a BitVec.
//
// Lemma 2.2 of the paper augments its unary high-part vector with the select
// structure of Clark and the rank structure of Jacobson (o(n) extra bits,
// constant-time queries in the word-RAM). We implement a two-level rank
// directory (superblocks of 512 bits + per-word counts within each
// superblock) and a sampled select: every 512-th one/zero stores its exact
// position, so a query jumps straight to the right superblock, picks the
// word from the block counts, and finishes with one in-word select — no
// block scanning on the query path.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/bitvec.hpp"

namespace treelab::bits {

class RankSelect {
 public:
  RankSelect() = default;

  /// Builds directories for `v`. Taken by value and moved into place, so
  /// callers can hand over label storage without a deep copy (BitVec is
  /// move-enabled); pass a copy explicitly if the original is still needed.
  explicit RankSelect(BitVec v);

  [[nodiscard]] std::size_t size() const noexcept { return bits_.size(); }
  [[nodiscard]] const BitVec& bits() const noexcept { return bits_; }
  [[nodiscard]] bool get(std::size_t i) const noexcept { return bits_.get(i); }

  /// Number of set bits in [0, i). rank1(size()) == total ones. O(1).
  [[nodiscard]] std::size_t rank1(std::size_t i) const noexcept;

  /// Number of zero bits in [0, i).
  [[nodiscard]] std::size_t rank0(std::size_t i) const noexcept {
    return i - rank1(i);
  }

  [[nodiscard]] std::size_t ones() const noexcept { return ones_; }

  /// Position of the k-th set bit, k in [0, ones()).
  [[nodiscard]] std::size_t select1(std::size_t k) const noexcept;

  /// Position of the k-th zero bit, k in [0, size() - ones()).
  [[nodiscard]] std::size_t select0(std::size_t k) const noexcept;

 private:
  static constexpr std::size_t kSuper = 512;  // bits per superblock
  static constexpr std::size_t kWordsPerSuper = kSuper / 64;
  static constexpr std::size_t kSelSample = 512;  // ones/zeros per sample

  BitVec bits_;
  std::vector<std::uint64_t> super_rank_;  // ones before each superblock
  std::vector<std::uint16_t> block_rank_;  // ones before each word, within
                                           // its superblock (< 512)
  std::vector<std::uint64_t> sel1_pos_;    // exact position of every
                                           // kSelSample-th one
  std::vector<std::uint64_t> sel0_pos_;    // ... and zero
  std::size_t ones_ = 0;
};

}  // namespace treelab::bits
