// Succinct rank/select directories over a BitVec.
//
// Lemma 2.2 of the paper augments its unary high-part vector with the select
// structure of Clark and the rank structure of Jacobson (o(n) extra bits,
// constant-time queries in the word-RAM). We implement the classic two-level
// rank directory (superblocks of 512 bits + 64-bit blocks) and a sampled
// select with block scanning: rank is O(1); select is O(1) amortized for the
// label sizes that occur here (the scan is over at most one superblock).
#pragma once

#include <cstdint>
#include <vector>

#include "bits/bitvec.hpp"

namespace treelab::bits {

class RankSelect {
 public:
  RankSelect() = default;

  /// Builds directories for `v`. The BitVec is copied so the structure is
  /// self-contained (labels are small; copying keeps lifetimes simple).
  explicit RankSelect(BitVec v);

  [[nodiscard]] std::size_t size() const noexcept { return bits_.size(); }
  [[nodiscard]] const BitVec& bits() const noexcept { return bits_; }
  [[nodiscard]] bool get(std::size_t i) const noexcept { return bits_.get(i); }

  /// Number of set bits in [0, i). rank1(size()) == total ones.
  [[nodiscard]] std::size_t rank1(std::size_t i) const noexcept;

  /// Number of zero bits in [0, i).
  [[nodiscard]] std::size_t rank0(std::size_t i) const noexcept {
    return i - rank1(i);
  }

  [[nodiscard]] std::size_t ones() const noexcept { return ones_; }

  /// Position of the k-th set bit, k in [0, ones()).
  [[nodiscard]] std::size_t select1(std::size_t k) const noexcept;

  /// Position of the k-th zero bit, k in [0, size() - ones()).
  [[nodiscard]] std::size_t select0(std::size_t k) const noexcept;

 private:
  static constexpr std::size_t kSuper = 512;  // bits per superblock

  BitVec bits_;
  std::vector<std::uint64_t> super_rank_;  // ones before each superblock
  std::vector<std::uint32_t> sel1_hint_;   // superblock of every 512th one
  std::vector<std::uint32_t> sel0_hint_;   // superblock of every 512th zero
  std::size_t ones_ = 0;
};

}  // namespace treelab::bits
