// BitVec: a growable, packed bit string. Labels produced by every scheme in
// treelab are BitVecs or views into a pooled LabelArena; all size accounting
// in the benches is in bits.
//
// BitSpan is the non-owning read-only counterpart: a word-aligned window
// over someone else's bit storage (a BitVec, or one label inside a
// LabelArena). Queries and attach() take BitSpan so that label storage can
// be pooled without copying; a BitVec converts to a BitSpan implicitly (a
// view) and a BitSpan converts to a BitVec implicitly (a copy).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bits/wordops.hpp"

namespace treelab::bits {

class BitVec;

/// A read-only view of `size` bits starting at bit 0 of a word array (views
/// are always word-aligned: LabelArena pads every label to a 64-bit
/// boundary, which is what makes a view indistinguishable from a standalone
/// BitVec for all read operations). The underlying words must outlive the
/// span and must be zero beyond the last bit (BitWriter/LabelArena maintain
/// this), so whole-word reads near the end are well-defined.
class BitSpan {
 public:
  constexpr BitSpan() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): implicit view of a BitVec
  BitSpan(const BitVec& v) noexcept;
  constexpr BitSpan(const std::uint64_t* words, std::size_t nbits) noexcept
      : words_(words), size_(nbits) {}

  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] constexpr const std::uint64_t* data() const noexcept {
    return words_;
  }
  [[nodiscard]] constexpr std::size_t word_count() const noexcept {
    return (size_ + 63) / 64;
  }

  /// Bit at position i. Precondition: i < size().
  [[nodiscard]] bool get(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Bounds-checked bit access; throws std::out_of_range.
  [[nodiscard]] bool at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("BitSpan::at: index out of range");
    return get(i);
  }

  /// Read `width` (<= 64) bits starting at `pos`, LSB-first. Precondition:
  /// pos + width <= size().
  [[nodiscard]] std::uint64_t read_bits(std::size_t pos, int width) const {
    assert(width >= 0 && width <= 64);
    assert(pos + static_cast<std::size_t>(width) <= size_);
    if (width == 0) return 0;
    const std::size_t w = pos >> 6;
    const int off = static_cast<int>(pos & 63);
    std::uint64_t out = words_[w] >> off;
    const int have = 64 - off;
    if (have < width) out |= words_[w + 1] << have;
    if (width < 64) out &= low_mask(width);
    return out;
  }

  /// The contiguous sub-vector [pos, pos+len) as an owning copy.
  [[nodiscard]] BitVec slice(std::size_t pos, std::size_t len) const;

  /// "0101..." debug rendering (first bit leftmost).
  [[nodiscard]] std::string to_string() const {
    std::string s;
    s.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) s.push_back(get(i) ? '1' : '0');
    return s;
  }

 private:
  const std::uint64_t* words_ = nullptr;
  std::size_t size_ = 0;
};

class BitVec {
 public:
  BitVec() = default;

  /// A bit vector of `n` zero bits.
  explicit BitVec(std::size_t n) : size_(n), words_((n + 63) / 64, 0) {}

  /// An owning copy of a view.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit, symmetric with
  // the BitVec -> BitSpan view conversion above
  BitVec(BitSpan s)
      : size_(s.size()), words_(s.data(), s.data() + s.word_count()) {}

  BitVec(const BitVec&) = default;
  BitVec& operator=(const BitVec&) = default;
  // Moves leave the source empty (a defaulted move would strand size_ != 0
  // over a gutted word array); attach()-style sinks rely on this to take
  // label storage without deep-copying it.
  BitVec(BitVec&& other) noexcept
      : size_(std::exchange(other.size_, 0)), words_(std::move(other.words_)) {
    other.words_.clear();
  }
  BitVec& operator=(BitVec&& other) noexcept {
    if (this != &other) {  // self-move (e.g. std::swap(x, x)) must be a no-op
      size_ = std::exchange(other.size_, 0);
      words_ = std::move(other.words_);
      other.words_.clear();
    }
    return *this;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Bit at position i (0 = first appended). Precondition: i < size().
  [[nodiscard]] bool get(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Bounds-checked bit access; throws std::out_of_range.
  [[nodiscard]] bool at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("BitVec::at: index out of range");
    return get(i);
  }

  void set(std::size_t i, bool v) noexcept {
    const std::uint64_t m = std::uint64_t{1} << (i & 63);
    if (v)
      words_[i >> 6] |= m;
    else
      words_[i >> 6] &= ~m;
  }

  void push_back(bool v) {
    if ((size_ & 63) == 0) words_.push_back(0);
    if (v) words_[size_ >> 6] |= std::uint64_t{1} << (size_ & 63);
    ++size_;
  }

  /// Append the `width` lowest bits of `value`, least significant bit first.
  /// width in [0, 64].
  void append_bits(std::uint64_t value, int width);

  /// Append all bits of another bit string.
  void append(BitSpan other);

  /// Read `width` (<= 64) bits starting at position `pos`, LSB-first, i.e.
  /// the inverse of append_bits. Precondition: pos + width <= size().
  [[nodiscard]] std::uint64_t read_bits(std::size_t pos, int width) const {
    return BitSpan(*this).read_bits(pos, width);
  }

  /// The contiguous sub-vector [pos, pos+len).
  [[nodiscard]] BitVec slice(std::size_t pos, std::size_t len) const;

  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const noexcept;

  /// "0101..." debug rendering (first bit leftmost).
  [[nodiscard]] std::string to_string() const {
    return BitSpan(*this).to_string();
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

inline BitSpan::BitSpan(const BitVec& v) noexcept
    : words_(v.words().data()), size_(v.size()) {}

/// Bit-wise equality. Defined over BitSpan so that any mix of BitVec and
/// BitSpan operands compares (both convert).
[[nodiscard]] bool operator==(BitSpan a, BitSpan b) noexcept;

}  // namespace treelab::bits
