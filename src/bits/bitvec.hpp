// BitVec: a growable, packed bit string. Labels produced by every scheme in
// treelab are BitVecs; all size accounting in the benches is in BitVec bits.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bits/wordops.hpp"

namespace treelab::bits {

class BitVec {
 public:
  BitVec() = default;

  /// A bit vector of `n` zero bits.
  explicit BitVec(std::size_t n) : size_(n), words_((n + 63) / 64, 0) {}

  BitVec(const BitVec&) = default;
  BitVec& operator=(const BitVec&) = default;
  // Moves leave the source empty (a defaulted move would strand size_ != 0
  // over a gutted word array); attach()-style sinks rely on this to take
  // label storage without deep-copying it.
  BitVec(BitVec&& other) noexcept
      : size_(std::exchange(other.size_, 0)), words_(std::move(other.words_)) {
    other.words_.clear();
  }
  BitVec& operator=(BitVec&& other) noexcept {
    if (this != &other) {  // self-move (e.g. std::swap(x, x)) must be a no-op
      size_ = std::exchange(other.size_, 0);
      words_ = std::move(other.words_);
      other.words_.clear();
    }
    return *this;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Bit at position i (0 = first appended). Precondition: i < size().
  [[nodiscard]] bool get(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Bounds-checked bit access; throws std::out_of_range.
  [[nodiscard]] bool at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("BitVec::at: index out of range");
    return get(i);
  }

  void set(std::size_t i, bool v) noexcept {
    const std::uint64_t m = std::uint64_t{1} << (i & 63);
    if (v)
      words_[i >> 6] |= m;
    else
      words_[i >> 6] &= ~m;
  }

  void push_back(bool v) {
    if ((size_ & 63) == 0) words_.push_back(0);
    if (v) words_[size_ >> 6] |= std::uint64_t{1} << (size_ & 63);
    ++size_;
  }

  /// Append the `width` lowest bits of `value`, least significant bit first.
  /// width in [0, 64].
  void append_bits(std::uint64_t value, int width);

  /// Append all bits of another bit vector.
  void append(const BitVec& other);

  /// Read `width` (<= 64) bits starting at position `pos`, LSB-first, i.e.
  /// the inverse of append_bits. Precondition: pos + width <= size().
  [[nodiscard]] std::uint64_t read_bits(std::size_t pos, int width) const;

  /// The contiguous sub-vector [pos, pos+len).
  [[nodiscard]] BitVec slice(std::size_t pos, std::size_t len) const;

  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const noexcept;

  bool operator==(const BitVec& other) const noexcept;

  /// "0101..." debug rendering (first bit leftmost).
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace treelab::bits
