// MonotoneSeq — the encoding of Lemma 2.2.
//
// A monotone sequence 0 <= x_1 <= ... <= x_s <= M is stored in
// O(s · max(1, log(M/s))) bits as:
//   * header: s, M, and the block length b = max(1, ceil(M/s))   (Elias δ)
//   * low parts  x_i mod b, fixed width ceil(log2 b) each
//   * high parts y_i = x_i div b as the unary difference vector
//     0^{y_1} 1 0^{y_2-y_1} 1 ... (at most s + M/b + 1 bits), exactly as in
//     the paper's proof.
// Supported queries (Lemma 2.2):
//   (1) get(i): the i-th element,
//   (2) successor(x): position of the first element >= x,
//   (3) lcs_of_prefixes: longest common suffix of two specified prefixes.
// The paper obtains O(1) time for (2)/(3) when s, M = O(log n) because the
// whole encoding fits in O(1) machine words; we implement (1) via the select
// directory as in the proof and (2)/(3) by block-wise word operations, which
// matches the model's constant-time claim up to the word-size assumption.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bits/bitio.hpp"
#include "bits/bitvec.hpp"
#include "bits/rank_select.hpp"

namespace treelab::bits {

class MonotoneSeq {
 public:
  MonotoneSeq() = default;

  /// Encodes `xs` (must be non-decreasing, values <= universe).
  /// Throws std::invalid_argument on violations.
  static MonotoneSeq encode(std::span<const std::uint64_t> xs,
                            std::uint64_t universe);

  /// Writes the same self-delimiting encoding as encode().write_to(w)
  /// directly into `w`, without building the query directories or an
  /// intermediate buffer — the label-construction fast path. Returns the
  /// number of bits written.
  static std::size_t encode_to(BitWriter& w,
                               std::span<const std::uint64_t> xs,
                               std::uint64_t universe);

  /// Writes the encoding into `w` (self-delimiting).
  void write_to(BitWriter& w) const { w.append(enc_); }

  /// Attaches to an encoding produced by write_to/encode, consuming it from
  /// the reader. Throws DecodeError on malformed input.
  static MonotoneSeq read_from(BitReader& r);

  [[nodiscard]] std::size_t size() const noexcept { return s_; }
  [[nodiscard]] std::uint64_t universe() const noexcept { return m_; }
  [[nodiscard]] std::size_t bit_size() const noexcept { return enc_.size(); }
  [[nodiscard]] const BitVec& bits() const noexcept { return enc_; }

  /// Operation (1): the i-th element, i in [0, size()).
  [[nodiscard]] std::uint64_t get(std::size_t i) const;

  /// Operation (2): smallest i with get(i) >= x, or size() if none.
  [[nodiscard]] std::size_t successor(std::uint64_t x) const;

  /// Largest i with get(i) <= x, or size() (as "none") if get(0) > x.
  [[nodiscard]] std::size_t predecessor(std::uint64_t x) const;

  /// Operation (3): the longest t such that
  ///   a[pa-t .. pa-1] == b[pb-t .. pb-1]  (element-wise).
  /// pa <= a.size(), pb <= b.size().
  [[nodiscard]] static std::size_t lcs_of_prefixes(const MonotoneSeq& a,
                                                   std::size_t pa,
                                                   const MonotoneSeq& b,
                                                   std::size_t pb);

 private:
  void attach();  // rebuild query directories from enc_

  BitVec enc_;          // the canonical bit encoding (this is what is counted)
  std::size_t s_ = 0;   // number of elements
  std::uint64_t m_ = 0; // universe bound M
  std::uint64_t b_ = 1; // block length
  int low_width_ = 0;   // bits per low part
  std::size_t lows_off_ = 0;   // offset of low parts within enc_
  std::size_t highs_off_ = 0;  // offset of unary high vector within enc_
  RankSelect highs_;           // select directory over the unary vector
};

}  // namespace treelab::bits
