#include "net/net_io.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "util/failpoint.hpp"

namespace treelab::net {

namespace fp = util::failpoint;

IoResult read_some(int fd, char* buf, std::size_t cap) {
  std::size_t want = cap;
  if (auto hit = fp::check("net.read")) {
    switch (hit->mode) {
      case util::FailMode::kShortRead:
        // Deliver at most `arg` bytes this round; TCP delivers short reads
        // naturally, so robust code must already cope — this just forces
        // the boundary to land anywhere, including inside a frame header.
        want = std::min<std::size_t>(
            cap, std::max<std::uint64_t>(hit->arg, 1));
        break;
      case util::FailMode::kError:
      case util::FailMode::kThrow:
      case util::FailMode::kAllocFail:
      case util::FailMode::kShortWrite:
      case util::FailMode::kTornWrite:
      case util::FailMode::kCorrupt:
        // A read-side fault is a reset: whatever the peer had in flight is
        // gone and the connection is unusable.
        return {IoStatus::kError, 0};
    }
  }
  for (;;) {
    const ssize_t r = ::recv(fd, buf, want, 0);
    if (r > 0) return {IoStatus::kOk, static_cast<std::size_t>(r)};
    if (r == 0) return {IoStatus::kClosed, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return {IoStatus::kWouldBlock, 0};
    return {IoStatus::kError, 0};
  }
}

IoResult write_some(int fd, const char* buf, std::size_t n) {
  std::size_t want = n;
  bool tear_after = false;
  if (auto hit = fp::check("net.write")) {
    switch (hit->mode) {
      case util::FailMode::kShortWrite:
        want = std::min<std::size_t>(n, hit->arg);
        if (want == 0) return {IoStatus::kWouldBlock, 0};
        break;
      case util::FailMode::kTornWrite:
        want = std::min<std::size_t>(n, hit->arg);
        tear_after = true;
        break;
      case util::FailMode::kError:
      case util::FailMode::kThrow:
      case util::FailMode::kAllocFail:
      case util::FailMode::kShortRead:
      case util::FailMode::kCorrupt:
        return {IoStatus::kError, 0};
    }
  }
  std::size_t sent = 0;
  while (sent < want) {
    const ssize_t w = ::send(fd, buf + sent, want - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return {IoStatus::kError, 0};
  }
  if (tear_after) {
    // The bytes above are on the wire; cutting the stream here leaves the
    // peer holding a frame prefix — exactly what a mid-send crash does.
    ::shutdown(fd, SHUT_RDWR);
    return {IoStatus::kError, sent};
  }
  if (sent == 0 && want > 0) return {IoStatus::kWouldBlock, 0};
  return {IoStatus::kOk, sent};
}

void maybe_corrupt_frame(std::string& frame, std::size_t from) {
  if (frame.size() <= from) return;
  if (auto hit = fp::check("net.frame.corrupt")) {
    const std::size_t range = frame.size() - from;
    const std::size_t at = from + static_cast<std::size_t>(hit->arg % range);
    frame[at] = static_cast<char>(frame[at] ^ 0x20);
  }
}

int connect_with_timeout(const std::string& host, std::uint16_t port,
                         int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking for the follower's loop
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool wait_readable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

}  // namespace treelab::net
