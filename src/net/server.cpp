#include "net/server.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "net/frame.hpp"
#include "net/net_io.hpp"
#include "obs/metrics.hpp"
#include "util/failpoint.hpp"
#include "util/io_error.hpp"
#include "util/thread_annotations.hpp"

namespace treelab::net {

namespace fp = util::failpoint;

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(to - from)
      .count();
}

}  // namespace

struct Server::Impl {
  serve::ForestIndex& index;
  ServerOptions opt;
  core::DeltaJournal* journal = nullptr;
  serve::TreeId journal_tree = 0;

  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_r = -1;
  int wake_w = -1;
  std::thread loop;
  bool running = false;

  /// The loop thread's confinement capability: held (via ThreadRoleGuard)
  /// for the whole of run_loop() and required by every loop-only method,
  /// so touching the connection table or drain state from another thread
  /// is a compile error under Clang, not a latent race. The journal needs
  /// no lock here — DeltaJournal serializes replicate() appends against
  /// the loop's snapshot builds internally, and delta streaming reads the
  /// journal file lock-free (Tail).
  util::ThreadRole loop_role;
  std::atomic<bool> stop_requested{false};
  std::atomic<bool> ended{false};
  std::atomic<std::uint64_t> finished_subs{0};

  struct Counters {
    std::atomic<std::uint64_t> accepted{0}, closed{0}, frames_in{0},
        bad_frames{0}, query_batches{0}, queries{0}, overloaded{0},
        subscribes{0}, stats_requests{0}, snapshots_sent{0}, deltas_sent{0},
        ends_sent{0}, caught_up_sent{0}, reaped_idle{0}, reaped_stalled{0},
        accept_faults{0}, read_paused{0};
  };
  Counters ctr;

  // Registry exposition: the request-latency histogram and the replication
  // gauges are owned (written from the loop thread, read from anywhere);
  // the per-message-type counters above are exposed through callbacks so
  // Server::Stats keeps its per-instance semantics (latest live server
  // wins the registry name).
  obs::Histogram& request_ns =
      obs::Registry::global().histogram("net.server.request_ns");
  obs::Gauge& lag_gauge =
      obs::Registry::global().gauge("net.server.subscriber_lag_records");
  obs::Gauge& subs_gauge =
      obs::Registry::global().gauge("net.server.subscribers");
  std::vector<obs::CallbackGuard> obs_guards;

  struct Conn {
    int fd = -1;
    FrameReader reader;
    std::string out;
    std::size_t out_pos = 0;
    bool subscriber = false;
    bool close_after_flush = false;
    bool paused = false;  ///< reading suspended by backpressure
    std::uint32_t epoll_events = 0;
    Clock::time_point last_activity;
    std::optional<Clock::time_point> stall_since;
    // Subscriber state: the epoch the follower sits at and the cursor
    // streaming records past it.
    std::uint64_t chain = 0;
    bool need_snapshot = false;
    bool sent_end = false;
    /// One kCaughtUp per catch-up transition: re-armed whenever a new
    /// delta or snapshot is queued at this subscriber.
    bool sent_caught_up = false;
    std::optional<core::DeltaJournal::Tail> tail;

    explicit Conn(int f, std::uint64_t max_payload, Clock::time_point now)
        : fd(f), reader(max_payload), last_activity(now) {}
  };
  std::map<int, Conn> conns TREELAB_GUARDED_BY(loop_role);
  /// Queued output across all connections. Mutated only by the loop
  /// thread, but atomic so the registry's buffered-bytes callback can read
  /// it from a stats snapshot on any thread.
  std::atomic<std::size_t> total_out{0};

  bool draining TREELAB_GUARDED_BY(loop_role) = false;
  Clock::time_point drain_deadline TREELAB_GUARDED_BY(loop_role);

  Impl(serve::ForestIndex& idx, ServerOptions o)
      : index(idx), opt(std::move(o)) {
    register_metrics();
  }

  /// Exposes the per-message-type counters and the buffered-output gauge
  /// on the process registry. Callbacks read relaxed atomics only, so they
  /// are safe from any snapshotting thread; the guards unregister them
  /// before this Impl dies.
  void register_metrics() {
    if constexpr (!obs::kEnabled) return;
    obs::Registry& reg = obs::Registry::global();
    const auto expose = [&](const char* name,
                            const std::atomic<std::uint64_t>& a) {
      obs_guards.push_back(reg.set_callback(
          name, [&a] { return a.load(std::memory_order_relaxed); }));
    };
    expose("net.server.accepted", ctr.accepted);
    expose("net.server.closed", ctr.closed);
    expose("net.server.frames_in", ctr.frames_in);
    expose("net.server.bad_frames", ctr.bad_frames);
    expose("net.server.query_batches", ctr.query_batches);
    expose("net.server.queries", ctr.queries);
    expose("net.server.overloaded", ctr.overloaded);
    expose("net.server.subscribes", ctr.subscribes);
    expose("net.server.stats_requests", ctr.stats_requests);
    expose("net.server.snapshots_sent", ctr.snapshots_sent);
    expose("net.server.deltas_sent", ctr.deltas_sent);
    expose("net.server.ends_sent", ctr.ends_sent);
    expose("net.server.caught_up_sent", ctr.caught_up_sent);
    expose("net.server.read_paused", ctr.read_paused);
    obs_guards.push_back(reg.set_callback("net.server.buffered_bytes", [this] {
      return static_cast<std::uint64_t>(
          total_out.load(std::memory_order_relaxed));
    }));
  }

  [[nodiscard]] static std::size_t pending(const Conn& c) noexcept {
    return c.out.size() - c.out_pos;
  }

  void wake() noexcept {
    const char b = 'w';
    // A full pipe already guarantees a pending wake; errors are moot.
    // lint: allow(io-failpoint): self-pipe poke, async-signal-safe by
    // lint: allow(io-failpoint): contract — a failpoint here could throw
    [[maybe_unused]] const ssize_t r = ::write(wake_w, &b, 1);
  }

  void queue_frame(Conn& c, MsgType type, std::string_view payload)
      TREELAB_REQUIRES(loop_role) {
    const std::size_t before = c.out.size();
    append_frame(c.out, type, payload);
    // One byte of this frame may be flipped by the net.frame.corrupt
    // failpoint — the peer's checksum has to catch it.
    maybe_corrupt_frame(c.out, before);
    total_out += c.out.size() - before;
  }

  void send_error(Conn& c, std::string_view reason)
      TREELAB_REQUIRES(loop_role) {
    queue_frame(c, MsgType::kError, reason);
    c.close_after_flush = true;
  }

  void close_conn(int fd) TREELAB_REQUIRES(loop_role) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    total_out -= pending(it->second);
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns.erase(it);
    ctr.closed.fetch_add(1, std::memory_order_relaxed);
  }

  void do_accept(Clock::time_point now) TREELAB_REQUIRES(loop_role) {
    for (;;) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN, or a transient accept error: try again next event
      }
      if (auto hit = fp::check("net.accept")) {
        (void)hit;
        ::close(fd);
        ctr.accept_faults.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (draining || conns.size() >= opt.max_connections) {
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto [it, inserted] =
          conns.emplace(fd, Conn(fd, opt.max_frame_payload, now));
      (void)inserted;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      it->second.epoll_events = EPOLLIN;
      ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
      ctr.accepted.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void handle_query_batch(Conn& c, const std::string& payload)
      TREELAB_REQUIRES(loop_role) {
    std::vector<serve::Request> reqs;
    if (!decode_query_batch(payload, reqs)) {
      ctr.bad_frames.fetch_add(1, std::memory_order_relaxed);
      send_error(c, "malformed query batch");
      return;
    }
    if (total_out > opt.max_buffered_bytes) {
      // Shed: an explicit tiny refusal instead of executing work whose
      // reply would only deepen the queue. Shed batches do no work, so
      // they do not pollute the request-latency histogram.
      ctr.overloaded.fetch_add(1, std::memory_order_relaxed);
      queue_frame(c, MsgType::kOverloaded, {});
      return;
    }
    const std::uint64_t t0 = obs::now_ns();
    const std::vector<serve::QueryResult> results =
        index.query_batch_checked(reqs);
    ctr.query_batches.fetch_add(1, std::memory_order_relaxed);
    ctr.queries.fetch_add(reqs.size(), std::memory_order_relaxed);
    queue_frame(c, MsgType::kQueryReply, encode_query_reply(results));
    if constexpr (obs::kEnabled) request_ns.record(obs::now_ns() - t0);
  }

  /// kStats: dump the whole process registry at the peer as one
  /// kStatsReply. The request carries no payload — anything else is a
  /// framing violation, same as an unknown type.
  void handle_stats(Conn& c, const std::string& payload)
      TREELAB_REQUIRES(loop_role) {
    if (!payload.empty()) {
      ctr.bad_frames.fetch_add(1, std::memory_order_relaxed);
      send_error(c, "malformed stats request");
      return;
    }
    ctr.stats_requests.fetch_add(1, std::memory_order_relaxed);
    update_lag_gauges();  // the dump should carry fresh lag, not last tick's
    const std::vector<obs::Sample> samples = obs::Registry::global().snapshot();
    std::vector<StatLine> lines;
    lines.reserve(samples.size());
    for (const obs::Sample& s : samples) lines.push_back({s.name, s.value});
    queue_frame(c, MsgType::kStatsReply, encode_stats_reply(lines));
  }

  void handle_subscribe(Conn& c, const std::string& payload)
      TREELAB_REQUIRES(loop_role) {
    Subscribe s;
    if (!decode_subscribe(payload, s)) {
      ctr.bad_frames.fetch_add(1, std::memory_order_relaxed);
      send_error(c, "malformed subscribe");
      return;
    }
    if (journal == nullptr) {
      send_error(c, "no journal attached");
      return;
    }
    ctr.subscribes.fetch_add(1, std::memory_order_relaxed);
    c.subscriber = true;
    c.chain = s.chain;
    c.need_snapshot = s.force_snapshot;
    c.sent_end = false;
    c.sent_caught_up = false;
    c.tail.reset();
    pump_subscriber(c);
  }

  /// Streams snapshot/delta frames at a subscriber until its write buffer
  /// is at the backpressure limit or it is caught up. Re-planned (cursor
  /// re-created, or full snapshot) whenever the journal was folded under
  /// the cursor.
  void pump_subscriber(Conn& c) TREELAB_REQUIRES(loop_role) {
    if (c.close_after_flush) return;
    // A checkpoint can race each re-plan; bound the retries per pump and
    // let the next loop tick continue.
    int replans = 8;
    while (pending(c) < opt.write_buffer_limit) {
      if (c.need_snapshot) {
        // One lock hold inside the journal: the copy and its chain are
        // consistent. The cursor is planned after; if a fold lands in
        // between, tail_from reports nullopt and the next iteration
        // simply re-plans (same recovery as a kLost cursor).
        const core::DeltaJournal::SnapshotPlan plan = journal->snapshot_plan();
        c.chain = plan.chain;
        queue_frame(c, MsgType::kSnapshot,
                    encode_snapshot(plan.chain, plan.loaded));
        c.tail = journal->tail_from(c.chain);
        ctr.snapshots_sent.fetch_add(1, std::memory_order_relaxed);
        c.need_snapshot = false;
        c.sent_caught_up = false;
        continue;
      }
      if (!c.tail.has_value()) {
        c.tail = journal->tail_from(c.chain);
        if (!c.tail.has_value()) {
          // The follower's epoch predates the journal (folded away, or
          // from another life): full snapshot catch-up.
          c.need_snapshot = true;
          continue;
        }
      }
      core::LabelDelta d;
      const auto st = c.tail->next(d);
      if (st == core::DeltaJournal::TailStatus::kRecord) {
        std::ostringstream os(std::ios::binary);
        core::LabelStore::save_delta(os, d);
        queue_frame(c, MsgType::kDelta, os.str());
        ctr.deltas_sent.fetch_add(1, std::memory_order_relaxed);
        c.chain = c.tail->chain();
        c.sent_caught_up = false;
        continue;
      }
      if (st == core::DeltaJournal::TailStatus::kCaughtUp) {
        if (!c.sent_caught_up) {
          // Tell the follower its lag hit zero — once per transition, so
          // a quiet caught-up subscriber is not spammed every tick.
          queue_frame(c, MsgType::kCaughtUp, encode_caught_up(c.chain));
          c.sent_caught_up = true;
          ctr.caught_up_sent.fetch_add(1, std::memory_order_relaxed);
        }
        if (ended.load(std::memory_order_acquire) && !c.sent_end) {
          queue_frame(c, MsgType::kEnd, {});
          c.sent_end = true;
          ctr.ends_sent.fetch_add(1, std::memory_order_relaxed);
          finished_subs.fetch_add(1, std::memory_order_relaxed);
        }
        return;
      }
      // kLost: the journal was folded under the cursor; re-plan from the
      // epoch the follower actually has.
      c.tail.reset();
      if (--replans <= 0) return;
    }
  }

  /// Refreshes net.server.subscribers and net.server.subscriber_lag_records
  /// (worst records-behind across subscribers). A subscriber awaiting a
  /// snapshot, or without a planned cursor yet, conservatively counts as
  /// the whole journal behind.
  void update_lag_gauges() TREELAB_REQUIRES(loop_role) {
    if constexpr (!obs::kEnabled) return;
    std::uint64_t subs = 0;
    std::uint64_t worst = 0;
    std::uint64_t records = 0;
    if (journal != nullptr) records = journal->record_count();
    for (const auto& [fd, c] : conns) {
      if (!c.subscriber) continue;
      ++subs;
      std::uint64_t lag = records;
      if (!c.need_snapshot && c.tail.has_value()) {
        const std::uint64_t read = c.tail->records_read();
        lag = read < records ? records - read : 0;
      }
      worst = std::max(worst, lag);
    }
    subs_gauge.set(subs);
    lag_gauge.set(worst);
  }

  void process_frames(Conn& c) TREELAB_REQUIRES(loop_role) {
    Frame f;
    for (;;) {
      if (c.close_after_flush) return;
      const FrameReader::Status st = c.reader.next(f);
      if (st == FrameReader::Status::kNeedMore) return;
      if (st == FrameReader::Status::kBad) {
        ctr.bad_frames.fetch_add(1, std::memory_order_relaxed);
        send_error(c, "bad frame");
        return;
      }
      ctr.frames_in.fetch_add(1, std::memory_order_relaxed);
      switch (f.type) {
        case MsgType::kQueryBatch:
          handle_query_batch(c, f.payload);
          break;
        case MsgType::kSubscribe:
          handle_subscribe(c, f.payload);
          break;
        case MsgType::kStats:
          handle_stats(c, f.payload);
          break;
        default:
          send_error(c, "unexpected message type");
          return;
      }
    }
  }

  /// Reads what is available; returns false when the connection died.
  bool handle_readable(Conn& c, Clock::time_point now)
      TREELAB_REQUIRES(loop_role) {
    char buf[64 * 1024];
    const IoResult r = read_some(c.fd, buf, sizeof(buf));
    switch (r.status) {
      case IoStatus::kOk:
        c.last_activity = now;
        c.reader.feed(buf, r.n);
        process_frames(c);
        return true;
      case IoStatus::kWouldBlock:
        return true;
      case IoStatus::kClosed:
      case IoStatus::kError:
        return false;
    }
    return false;
  }

  /// Flushes queued output; returns false when the connection died.
  bool flush(Conn& c, Clock::time_point now) TREELAB_REQUIRES(loop_role) {
    while (c.out_pos < c.out.size()) {
      const IoResult r =
          write_some(c.fd, c.out.data() + c.out_pos, pending(c));
      c.out_pos += r.n;
      total_out -= r.n;
      if (r.status == IoStatus::kOk && r.n > 0) {
        c.stall_since.reset();
        c.last_activity = now;
        continue;
      }
      if (r.status == IoStatus::kWouldBlock) {
        if (!c.stall_since.has_value()) c.stall_since = now;
        return true;
      }
      return false;  // kError / kClosed (incl. injected torn writes)
    }
    c.out.clear();
    c.out_pos = 0;
    c.stall_since.reset();
    return true;
  }

  /// Per-tick pass over every connection: flush, apply backpressure,
  /// update epoll interest, close what finished or died, reap deadbeats.
  void finalize_conns(Clock::time_point now) TREELAB_REQUIRES(loop_role) {
    std::vector<int> doomed;
    for (auto& [fd, c] : conns) {
      if (!flush(c, now)) {
        doomed.push_back(fd);
        continue;
      }
      if (c.close_after_flush && pending(c) == 0) {
        doomed.push_back(fd);
        continue;
      }
      // Reaper: quiet non-subscribers and write-stalled peers go. A
      // caught-up subscriber is legitimately idle; a stalled one is a
      // dead peer pinning buffer memory — it goes too.
      if (!c.subscriber && opt.idle_timeout_ms > 0 &&
          ms_between(c.last_activity, now) > opt.idle_timeout_ms) {
        ctr.reaped_idle.fetch_add(1, std::memory_order_relaxed);
        doomed.push_back(fd);
        continue;
      }
      if (pending(c) > 0 && c.stall_since.has_value() &&
          opt.write_stall_timeout_ms > 0 &&
          ms_between(*c.stall_since, now) > opt.write_stall_timeout_ms) {
        ctr.reaped_stalled.fetch_add(1, std::memory_order_relaxed);
        doomed.push_back(fd);
        continue;
      }
      const bool pause = pending(c) > opt.write_buffer_limit;
      if (pause && !c.paused)
        ctr.read_paused.fetch_add(1, std::memory_order_relaxed);
      c.paused = pause;
      std::uint32_t want = 0;
      if (!c.paused && !c.close_after_flush && !draining) want |= EPOLLIN;
      if (pending(c) > 0) want |= EPOLLOUT;
      if (want != c.epoll_events) {
        epoll_event ev{};
        ev.events = want;
        ev.data.fd = fd;
        ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, fd, &ev);
        c.epoll_events = want;
      }
    }
    for (const int fd : doomed) close_conn(fd);
  }

  void run_loop() {
    // This thread IS the loop: assert the confinement capability for the
    // whole run. Nothing else may construct a guard on loop_role.
    const util::ThreadRoleGuard on_loop_thread(loop_role);
    std::vector<epoll_event> evs(64);
    for (;;) {
      const int n = ::epoll_wait(epoll_fd, evs.data(),
                                 static_cast<int>(evs.size()), 200);
      const Clock::time_point now = Clock::now();
      for (int i = 0; i < n; ++i) {
        const int fd = evs[i].data.fd;
        if (fd == wake_r) {
          char sink[256];
          // lint: allow(io-failpoint): draining our own wake pipe — not a
          // lint: allow(io-failpoint): fault-injectable I/O boundary
          while (::read(wake_r, sink, sizeof(sink)) > 0) {
          }
          continue;
        }
        if (fd == listen_fd) {
          do_accept(now);
          continue;
        }
        auto it = conns.find(fd);
        if (it == conns.end()) continue;  // closed earlier this batch
        Conn& c = it->second;
        if ((evs[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          close_conn(fd);
          continue;
        }
        if ((evs[i].events & EPOLLIN) != 0 && !handle_readable(c, now)) {
          close_conn(fd);
          continue;
        }
        // Writability is consumed by the finalize pass's flush.
      }
      if (stop_requested.load(std::memory_order_acquire) && !draining) {
        // Graceful drain: no new connections, no new requests; flush what
        // is queued, bounded by the drain deadline.
        draining = true;
        drain_deadline =
            now + std::chrono::milliseconds(opt.drain_timeout_ms);
        if (listen_fd >= 0) {
          ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
          ::close(listen_fd);
          listen_fd = -1;
        }
      }
      if (journal != nullptr)
        for (auto& [fd, c] : conns)
          if (c.subscriber) pump_subscriber(c);
      update_lag_gauges();
      finalize_conns(now);
      if (draining && (total_out == 0 || now >= drain_deadline)) break;
    }
    std::vector<int> fds;
    fds.reserve(conns.size());
    for (const auto& [fd, c] : conns) fds.push_back(fd);
    for (const int fd : fds) close_conn(fd);
  }
};

Server::Server(serve::ForestIndex& index, ServerOptions opt)
    : impl_(std::make_unique<Impl>(index, std::move(opt))) {}

Server::~Server() { stop(); }

void Server::attach_journal(core::DeltaJournal* journal, serve::TreeId tree) {
  impl_->journal = journal;
  impl_->journal_tree = tree;
}

void Server::start() {
  Impl& im = *impl_;
  im.listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (im.listen_fd < 0)
    throw util::IoError(im.opt.bind_addr, "socket", errno);
  const int one = 1;
  ::setsockopt(im.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(im.opt.port);
  if (::inet_pton(AF_INET, im.opt.bind_addr.c_str(), &addr.sin_addr) != 1)
    throw util::IoError(im.opt.bind_addr, "inet_pton", EINVAL);
  if (::bind(im.listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw util::IoError(im.opt.bind_addr, "bind", errno);
  if (::listen(im.listen_fd, 128) != 0)
    throw util::IoError(im.opt.bind_addr, "listen", errno);
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(im.listen_fd, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);

  int pipefd[2];
  if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0)
    throw util::IoError(im.opt.bind_addr, "pipe2", errno);
  im.wake_r = pipefd[0];
  im.wake_w = pipefd[1];
  im.epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (im.epoll_fd < 0)
    throw util::IoError(im.opt.bind_addr, "epoll_create1", errno);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = im.listen_fd;
  ::epoll_ctl(im.epoll_fd, EPOLL_CTL_ADD, im.listen_fd, &ev);
  ev.data.fd = im.wake_r;
  ::epoll_ctl(im.epoll_fd, EPOLL_CTL_ADD, im.wake_r, &ev);

  im.stop_requested.store(false, std::memory_order_release);
  im.loop = std::thread([this] { impl_->run_loop(); });
  im.running = true;
}

void Server::stop() {
  Impl& im = *impl_;
  if (!im.running) return;
  request_stop();
  im.loop.join();
  im.running = false;
  if (im.listen_fd >= 0) ::close(im.listen_fd);
  im.listen_fd = -1;
  if (im.epoll_fd >= 0) ::close(im.epoll_fd);
  im.epoll_fd = -1;
  if (im.wake_r >= 0) ::close(im.wake_r);
  im.wake_r = -1;
  if (im.wake_w >= 0) ::close(im.wake_w);
  im.wake_w = -1;
}

void Server::request_stop() noexcept {
  impl_->stop_requested.store(true, std::memory_order_release);
  impl_->wake();
}

void Server::replicate(const core::LabelDelta& d) {
  Impl& im = *impl_;
  if (im.journal == nullptr)
    throw std::logic_error("net::Server: no journal attached");
  // The journal's internal mutex serializes this append against the
  // loop's snapshot builds; no server-side lock needed.
  im.journal->append(d);
  im.wake();
}

void Server::announce_end() {
  impl_->ended.store(true, std::memory_order_release);
  impl_->wake();
}

Server::Stats Server::stats() const {
  const Impl::Counters& c = impl_->ctr;
  Stats s;
  s.accepted = c.accepted.load(std::memory_order_relaxed);
  s.closed = c.closed.load(std::memory_order_relaxed);
  s.frames_in = c.frames_in.load(std::memory_order_relaxed);
  s.bad_frames = c.bad_frames.load(std::memory_order_relaxed);
  s.query_batches = c.query_batches.load(std::memory_order_relaxed);
  s.queries = c.queries.load(std::memory_order_relaxed);
  s.overloaded = c.overloaded.load(std::memory_order_relaxed);
  s.subscribes = c.subscribes.load(std::memory_order_relaxed);
  s.stats_requests = c.stats_requests.load(std::memory_order_relaxed);
  s.snapshots_sent = c.snapshots_sent.load(std::memory_order_relaxed);
  s.deltas_sent = c.deltas_sent.load(std::memory_order_relaxed);
  s.ends_sent = c.ends_sent.load(std::memory_order_relaxed);
  s.caught_up_sent = c.caught_up_sent.load(std::memory_order_relaxed);
  s.reaped_idle = c.reaped_idle.load(std::memory_order_relaxed);
  s.reaped_stalled = c.reaped_stalled.load(std::memory_order_relaxed);
  s.accept_faults = c.accept_faults.load(std::memory_order_relaxed);
  s.read_paused = c.read_paused.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t Server::subscribers_finished() const noexcept {
  return impl_->finished_subs.load(std::memory_order_acquire);
}

}  // namespace treelab::net
