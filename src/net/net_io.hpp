// net/net_io — the socket primitives the server and the follower share,
// with the net.* failpoints threaded through every operation so the fault
// fuzzer can exercise the wire exactly like the crash fuzzer exercises the
// filesystem:
//
//   net.accept        a freshly accepted connection is dropped on the floor
//   net.read          error  -> the read reports a connection reset
//                     short-read -> only `arg` bytes of this read arrive
//   net.write         error  -> the write reports a broken pipe
//                     short-write -> only `arg` bytes of this chunk go out
//                     torn-write -> `arg` bytes go out, then the fd is shut
//                                   down — a frame torn mid-flight
//   net.frame.corrupt corrupt -> one byte of the outgoing frame is flipped
//                     (arg picks the offset) — the peer's checksum must
//                     catch it
//
// All functions work on nonblocking OR blocking fds and report outcomes as
// values, not exceptions: a socket error from a peer is an expected input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace treelab::net {

/// Outcome of one read/write attempt.
enum class IoStatus : std::uint8_t {
  kOk = 0,        ///< `n` bytes transferred (n may be 0 for writes)
  kWouldBlock = 1,///< nonblocking fd has nothing/no room right now
  kClosed = 2,    ///< peer closed (read side: clean EOF)
  kError = 3,     ///< errno-level failure (or injected fault)
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t n = 0;
};

/// One recv() with the net.read failpoint applied.
[[nodiscard]] IoResult read_some(int fd, char* buf, std::size_t cap);

/// One send() (MSG_NOSIGNAL) with the net.write failpoint applied. A
/// torn-write hit transfers `arg` bytes and returns kError after shutting
/// the socket down — the peer sees a frame cut mid-flight.
[[nodiscard]] IoResult write_some(int fd, const char* buf, std::size_t n);

/// Applies the net.frame.corrupt failpoint to `frame[from..)`: if armed, one
/// byte is XOR-flipped (hit arg picks the offset, modulo the range). Call on
/// exactly the bytes of one outgoing frame.
void maybe_corrupt_frame(std::string& frame, std::size_t from = 0);

/// Blocking connect to host:port with a deadline. Returns the connected fd
/// (in blocking mode) or -1.
[[nodiscard]] int connect_with_timeout(const std::string& host,
                                       std::uint16_t port, int timeout_ms);

/// poll() for readability. True when readable; false on timeout/error.
[[nodiscard]] bool wait_readable(int fd, int timeout_ms);

}  // namespace treelab::net
