#include "net/frame.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "util/hash.hpp"

namespace treelab::net {

using util::fnv1a;

namespace {

constexpr char kFrameMagic[4] = {'T', 'L', 'N', 'F'};

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

/// Bounded sequential reader over a payload: false once anything ran past
/// the end, so decoders can check once at the end instead of per-field.
struct Cursor {
  const char* p;
  std::size_t left;
  bool ok = true;

  explicit Cursor(std::string_view s) : p(s.data()), left(s.size()) {}

  std::uint16_t u16() {
    if (left < 2) {
      ok = false;
      return 0;
    }
    const auto v = static_cast<std::uint16_t>(
        static_cast<unsigned char>(p[0]) |
        (static_cast<unsigned char>(p[1]) << 8));
    p += 2;
    left -= 2;
    return v;
  }
  std::uint32_t u32() {
    if (left < 4) {
      ok = false;
      return 0;
    }
    const std::uint32_t v = get_u32(p);
    p += 4;
    left -= 4;
    return v;
  }
  std::uint64_t u64() {
    if (left < 8) {
      ok = false;
      return 0;
    }
    const std::uint64_t v = get_u64(p);
    p += 8;
    left -= 8;
    return v;
  }
  std::uint8_t u8() {
    if (left < 1) {
      ok = false;
      return 0;
    }
    const auto v = static_cast<std::uint8_t>(static_cast<unsigned char>(*p));
    ++p;
    --left;
    return v;
  }
  [[nodiscard]] bool done() const noexcept { return ok && left == 0; }
};

}  // namespace

void append_frame(std::string& out, MsgType type, std::string_view payload) {
  out.reserve(out.size() + kFrameHeaderBytes + payload.size());
  out.append(kFrameMagic, 4);
  put_u32(out, static_cast<std::uint32_t>(type));
  put_u64(out, payload.size());
  put_u64(out, fnv1a(payload.data(), payload.size()));
  out.append(payload);
}

FrameReader::Status FrameReader::next(Frame& out) {
  if (bad_) return Status::kBad;
  if (buf_.size() - pos_ < kFrameHeaderBytes) {
    // Reclaim consumed prefix while idle; keeps the buffer from growing
    // with the connection's lifetime.
    if (pos_ > 0) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
    return Status::kNeedMore;
  }
  const char* hdr = buf_.data() + pos_;
  if (std::memcmp(hdr, kFrameMagic, 4) != 0) {
    bad_ = true;
    return Status::kBad;
  }
  const std::uint32_t type = get_u32(hdr + 4);
  const std::uint64_t len = get_u64(hdr + 8);
  const std::uint64_t sum = get_u64(hdr + 16);
  if (type < static_cast<std::uint32_t>(MsgType::kQueryBatch) ||
      type > static_cast<std::uint32_t>(kMaxMsgType) ||
      len > kMaxFramePayload || len > max_payload_) {
    bad_ = true;
    return Status::kBad;
  }
  if (buf_.size() - pos_ - kFrameHeaderBytes < len) return Status::kNeedMore;
  const char* payload = hdr + kFrameHeaderBytes;
  if (fnv1a(payload, static_cast<std::size_t>(len)) != sum) {
    bad_ = true;
    return Status::kBad;
  }
  out.type = static_cast<MsgType>(type);
  out.payload.assign(payload, static_cast<std::size_t>(len));
  pos_ += kFrameHeaderBytes + static_cast<std::size_t>(len);
  return Status::kFrame;
}

std::string encode_query_batch(std::span<const serve::Request> reqs) {
  std::string out;
  out.reserve(4 + reqs.size() * 12);
  put_u32(out, static_cast<std::uint32_t>(reqs.size()));
  for (const serve::Request& r : reqs) {
    put_u32(out, r.tree);
    put_u32(out, static_cast<std::uint32_t>(r.u));
    put_u32(out, static_cast<std::uint32_t>(r.v));
  }
  return out;
}

bool decode_query_batch(std::string_view payload,
                        std::vector<serve::Request>& out) {
  Cursor c(payload);
  const std::uint32_t n = c.u32();
  // Each request is 12 bytes: a count the payload cannot hold is a lie —
  // refuse before the count-sized allocation, same rule as the journal.
  if (!c.ok || c.left != static_cast<std::size_t>(n) * 12) return false;
  out.clear();
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    serve::Request r;
    r.tree = c.u32();
    r.u = static_cast<tree::NodeId>(c.u32());
    r.v = static_cast<tree::NodeId>(c.u32());
    out.push_back(r);
  }
  return c.done();
}

std::string encode_query_reply(std::span<const serve::QueryResult> results) {
  std::string out;
  out.reserve(4 + results.size() * 10);
  put_u32(out, static_cast<std::uint32_t>(results.size()));
  for (const serve::QueryResult& r : results) {
    out.push_back(static_cast<char>(r.status));
    out.push_back(static_cast<char>(r.dist.within ? 1 : 0));
    put_u64(out, r.dist.value);
  }
  return out;
}

bool decode_query_reply(std::string_view payload,
                        std::vector<serve::QueryResult>& out) {
  Cursor c(payload);
  const std::uint32_t n = c.u32();
  if (!c.ok || c.left != static_cast<std::size_t>(n) * 10) return false;
  out.clear();
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    serve::QueryResult r;
    const std::uint8_t status = c.u8();
    if (status > static_cast<std::uint8_t>(serve::QueryStatus::kQuarantined))
      return false;
    r.status = static_cast<serve::QueryStatus>(status);
    const std::uint8_t within = c.u8();
    if (within > 1) return false;
    r.dist.within = within != 0;
    r.dist.value = c.u64();
    out.push_back(r);
  }
  return c.done();
}

std::string encode_subscribe(const Subscribe& s) {
  std::string out;
  put_u64(out, s.chain);
  out.push_back(static_cast<char>(s.force_snapshot ? 1 : 0));
  return out;
}

bool decode_subscribe(std::string_view payload, Subscribe& out) {
  Cursor c(payload);
  out.chain = c.u64();
  const std::uint8_t flags = c.u8();
  if (flags > 1) return false;
  out.force_snapshot = (flags & 1) != 0;
  return c.done();
}

std::string encode_stats_reply(std::span<const StatLine> lines) {
  std::string out;
  std::size_t bytes = 4;
  for (const StatLine& l : lines) bytes += 2 + l.name.size() + 8;
  out.reserve(bytes);
  put_u32(out, static_cast<std::uint32_t>(lines.size()));
  for (const StatLine& l : lines) {
    // Metric names are short by construction; a name past u16 range would
    // be a bug on the encoding side, so truncate defensively.
    const std::size_t n = std::min<std::size_t>(l.name.size(), 0xffff);
    put_u16(out, static_cast<std::uint16_t>(n));
    out.append(l.name.data(), n);
    put_u64(out, l.value);
  }
  return out;
}

bool decode_stats_reply(std::string_view payload, std::vector<StatLine>& out) {
  Cursor c(payload);
  const std::uint32_t n = c.u32();
  // Minimum 10 bytes per line (empty name): a count the payload cannot
  // hold is a lie — refuse before the count-sized allocation.
  if (!c.ok || static_cast<std::size_t>(n) > c.left / 10) return false;
  out.clear();
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint16_t name_len = c.u16();
    if (!c.ok || c.left < static_cast<std::size_t>(name_len) + 8) return false;
    StatLine l;
    l.name.assign(c.p, name_len);
    c.p += name_len;
    c.left -= name_len;
    l.value = c.u64();
    out.push_back(std::move(l));
  }
  return c.done();
}

std::string encode_caught_up(std::uint64_t chain) {
  std::string out;
  put_u64(out, chain);
  return out;
}

bool decode_caught_up(std::string_view payload, std::uint64_t& chain) {
  Cursor c(payload);
  chain = c.u64();
  return c.done();
}

std::string encode_snapshot(std::uint64_t chain,
                            const core::LabelStore::LoadedArena& loaded) {
  std::ostringstream os(std::ios::binary);
  core::LabelStore::save_mappable(os, loaded.scheme, loaded.labels,
                                  loaded.params);
  std::string out;
  put_u64(out, chain);
  out += os.str();
  return out;
}

bool decode_snapshot_header(std::string_view payload, std::uint64_t& chain,
                            std::string_view& container) {
  if (payload.size() < 8) return false;
  chain = get_u64(payload.data());
  container = payload.substr(8);
  return true;
}

const char* msg_type_name(MsgType t) noexcept {
  // Full switch, no default: a new MsgType that reaches the wire without
  // a codec branch here fails the build (-Werror=switch) and the
  // msgtype-codec lint rule.
  switch (t) {
    case MsgType::kQueryBatch:
      return "kQueryBatch";
    case MsgType::kQueryReply:
      return "kQueryReply";
    case MsgType::kError:
      return "kError";
    case MsgType::kOverloaded:
      return "kOverloaded";
    case MsgType::kSubscribe:
      return "kSubscribe";
    case MsgType::kSnapshot:
      return "kSnapshot";
    case MsgType::kDelta:
      return "kDelta";
    case MsgType::kEnd:
      return "kEnd";
    case MsgType::kStats:
      return "kStats";
    case MsgType::kStatsReply:
      return "kStatsReply";
    case MsgType::kCaughtUp:
      return "kCaughtUp";
  }
  return "kUnknown";  // out-of-enum value from a cast, not a real frame
}

}  // namespace treelab::net
