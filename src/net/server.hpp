// net/Server — the single-threaded epoll front end of the serving layer.
//
// One event loop owns every socket. Query traffic is batch-RPC: a client
// sends kQueryBatch frames, the server answers each with one kQueryReply
// from ForestIndex::query_batch_checked — the non-throwing API, so one bad
// tree or node id degrades one result, never the connection, and never the
// process. Replication traffic rides the same loop: a follower sends
// kSubscribe and the server streams the attached DeltaJournal's committed
// records (kDelta frames) at it, falling back to a full kSnapshot when the
// follower's epoch predates the journal (see net/replicator.hpp for the
// other side). A subscriber that drains the committed records gets one
// kCaughtUp frame (re-armed by every later delta/snapshot), and any peer
// may send kStats to receive the process's full metrics registry as a
// kStatsReply — the wire half of the obs/ layer; the loop also keeps the
// `net.server.subscriber_lag_records` / `net.server.subscribers` gauges
// fresh from the journal tail positions.
//
// Robustness posture — a misbehaving peer must never take the server down:
//   * framing violations (bad magic, bad checksum, oversized length) get
//     one kError frame and the connection is closed; the decoder never
//     resynchronizes a corrupted stream,
//   * bounded output: each connection's write buffer is capped — past
//     write_buffer_limit the server stops READING from that connection
//     (backpressure), so a slow consumer throttles itself, not the server,
//   * global shed: past max_buffered_bytes of total queued output, new
//     batches are answered kOverloaded without being executed — explicit
//     load shedding beats silent queue growth,
//   * deadlines: an idle reaper closes connections quiet past
//     idle_timeout_ms (subscribers exempt — caught-up is their idle) and
//     connections whose writes have stalled past write_stall_timeout_ms,
//   * graceful drain: stop()/request_stop() (async-signal-safe, for a
//     SIGTERM handler) close the listener, flush what is queued within
//     drain_timeout_ms, then exit the loop,
//   * failpoints: every socket op routes through net/net_io, so the
//     net.accept / net.read / net.write / net.frame.corrupt sites inject
//     faults on a live server (tests/net_fault_fuzz_test drives them).
//
// Threading: start() spawns the loop thread. replicate(), announce_end(),
// stop(), request_stop() and stats() may be called from any thread; the
// journal serializes replicate() appends against the loop's snapshot
// builds with its own internal mutex (DeltaJournal locks itself), while
// delta streaming reads the journal file lock-free through the Tail
// cursor protocol. Everything else — the connection table, drain state,
// epoll bookkeeping — is confined to the loop thread, an invariant the
// Impl encodes as a util::ThreadRole capability so Clang's thread-safety
// analysis rejects off-thread access at compile time.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/delta_journal.hpp"
#include "serve/forest_index.hpp"

namespace treelab::net {

struct ServerOptions {
  std::string bind_addr = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with port() after start().
  std::uint16_t port = 0;
  /// Accepted connections beyond this are closed immediately.
  std::size_t max_connections = 256;
  /// Largest frame payload a peer may make the server buffer.
  std::uint64_t max_frame_payload = std::uint64_t{64} << 20;
  /// Per-connection queued-output cap: past it the connection is no longer
  /// read from until the peer drains (backpressure).
  std::size_t write_buffer_limit = std::size_t{4} << 20;
  /// Total queued output across all connections past which new query
  /// batches are shed with kOverloaded instead of executed.
  std::size_t max_buffered_bytes = std::size_t{64} << 20;
  /// Non-subscriber connections with no traffic for this long are reaped.
  int idle_timeout_ms = 30'000;
  /// Connections whose queued output has not moved for this long are dead
  /// peers holding buffer memory: reaped.
  int write_stall_timeout_ms = 10'000;
  /// stop(): how long to keep flushing queued output before closing.
  int drain_timeout_ms = 2'000;
};

class Server {
 public:
  explicit Server(serve::ForestIndex& index, ServerOptions opt = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Leader mode: serve `journal`'s committed records to subscribers, as
  /// tree `tree` of the follower's index. Call before start(); the journal
  /// must outlive the server. All replicate() appends must go through this
  /// server from then on (they are serialized against snapshot builds).
  void attach_journal(core::DeltaJournal* journal, serve::TreeId tree = 0);

  /// Binds, listens, and spawns the event loop. Throws util::IoError when
  /// the socket cannot be bound.
  void start();

  /// Graceful drain and join. Idempotent.
  void stop();

  /// Requests a graceful drain without blocking; async-signal-safe (one
  /// write() on the wake pipe) — call it from a SIGTERM/SIGINT handler.
  void request_stop() noexcept;

  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Leader: appends `d` to the attached journal (same contract as
  /// DeltaJournal::append) and wakes the loop to stream it. Thread-safe.
  void replicate(const core::LabelDelta& d);

  /// Leader: no more deltas will come — each subscriber gets one kEnd
  /// frame when it is fully caught up (tests and drains key off it).
  void announce_end();

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t bad_frames = 0;     ///< framing violations from peers
    std::uint64_t query_batches = 0;  ///< batches executed
    std::uint64_t queries = 0;        ///< individual requests answered
    std::uint64_t overloaded = 0;     ///< batches shed past the budget
    std::uint64_t subscribes = 0;     ///< kSubscribe frames accepted
    std::uint64_t stats_requests = 0;  ///< kStats frames answered
    std::uint64_t snapshots_sent = 0;
    std::uint64_t deltas_sent = 0;
    std::uint64_t ends_sent = 0;      ///< subscribers that finished
    std::uint64_t caught_up_sent = 0;  ///< kCaughtUp notifications sent
    std::uint64_t reaped_idle = 0;
    std::uint64_t reaped_stalled = 0;
    std::uint64_t accept_faults = 0;  ///< net.accept failpoint trips
    std::uint64_t read_paused = 0;    ///< backpressure engagements
  };
  [[nodiscard]] Stats stats() const;

  /// Subscribers that have received kEnd (caught up after announce_end()).
  [[nodiscard]] std::uint64_t subscribers_finished() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint16_t port_ = 0;
};

}  // namespace treelab::net
