#include "net/replicator.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <exception>
#include <sstream>
#include <stdexcept>

#include "net/frame.hpp"
#include "net/net_io.hpp"

namespace treelab::net {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

Replicator::Replicator(serve::ForestIndex& index, ReplicatorOptions opt)
    : index_(index),
      opt_(std::move(opt)),
      rng_(opt_.backoff_seed | 1),
      force_snapshot_(opt_.force_snapshot) {
  if (opt_.tree >= index_.tree_count())
    throw std::invalid_argument(
        "net::Replicator: target tree does not exist in the index");
  register_metrics();
}

void Replicator::register_metrics() {
  if constexpr (!obs::kEnabled) return;
  obs::Registry& reg = obs::Registry::global();
  const auto expose = [&](const char* name,
                          const std::atomic<std::uint64_t>& a) {
    obs_guards_.push_back(reg.set_callback(
        name, [&a] { return a.load(std::memory_order_relaxed); }));
  };
  expose("net.replicator.connects", ctr_.connects);
  expose("net.replicator.connect_failures", ctr_.connect_failures);
  expose("net.replicator.reconnects", ctr_.reconnects);
  expose("net.replicator.snapshots_applied", ctr_.snapshots_applied);
  expose("net.replicator.deltas_applied", ctr_.deltas_applied);
  expose("net.replicator.chain_rejects", ctr_.chain_rejects);
  expose("net.replicator.frame_errors", ctr_.frame_errors);
  expose("net.replicator.ends_seen", ctr_.ends_seen);
  expose("net.replicator.caught_ups_seen", ctr_.caught_ups_seen);
}

Replicator::~Replicator() { stop(); }

std::uint64_t Replicator::next_rand() noexcept {
  std::uint64_t x = rng_;  // xorshift64 — cheap, deterministic per seed
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  rng_ = x;
  return x;
}

void Replicator::backoff(int consecutive_failures) {
  if (consecutive_failures <= 0) return;
  const int exp = std::min(consecutive_failures - 1, 10);
  const std::int64_t cap = std::max<std::int64_t>(opt_.backoff_max_ms, 1);
  const std::int64_t base = std::min<std::int64_t>(
      cap, std::max<std::int64_t>(opt_.backoff_min_ms, 1) << exp);
  // Jitter in [base/2, base]: simultaneous reconnects from many followers
  // must not re-arrive as one synchronized stampede.
  const std::int64_t half = std::max<std::int64_t>(base / 2, 1);
  std::int64_t ms = half + static_cast<std::int64_t>(
                               next_rand() % static_cast<std::uint64_t>(half + 1));
  // Sleep in slices so stop() stays prompt.
  while (ms > 0 && !stop_.load(std::memory_order_acquire)) {
    const std::int64_t slice = std::min<std::int64_t>(ms, 20);
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    ms -= slice;
  }
}

bool Replicator::apply_snapshot(const std::string& payload) {
  std::uint64_t chain = 0;
  std::string_view container;
  if (!decode_snapshot_header(payload, chain, container)) {
    ctr_.frame_errors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  try {
    std::istringstream is(std::string(container), std::ios::binary);
    core::LabelStore::LoadedArena loaded = core::LabelStore::load_arena(is);
    // Adopt the leader's chain verbatim — the journal preserves it across
    // checkpoint folds, so re-deriving it from the bytes would diverge.
    index_.update(opt_.tree, std::move(loaded), chain);
  } catch (const std::exception&) {
    // The container failed validation: this snapshot is garbage and the
    // local state is now untrusted only in the sense that it never
    // changed; insist on a fresh snapshot next session.
    ctr_.frame_errors.fetch_add(1, std::memory_order_relaxed);
    force_snapshot_ = true;
    return false;
  }
  force_snapshot_ = false;
  progressed_ = true;
  ctr_.snapshots_applied.fetch_add(1, std::memory_order_relaxed);
  chain_gauge_.set(chain);
  return true;
}

bool Replicator::apply_delta(const std::string& payload) {
  core::LabelDelta d;
  try {
    std::istringstream is(payload, std::ios::binary);
    d = core::LabelStore::load_delta(is);
  } catch (const std::exception&) {
    ctr_.frame_errors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // The container checksum says the bytes survived the wire; the chain
  // check says they are the *right* bytes — a record whose content does
  // not hash to its claimed new_chain must never advance the epoch.
  if (d.new_chain != core::LabelStore::chain_hash(d.base_chain, d)) {
    ctr_.chain_rejects.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  try {
    index_.apply_delta(opt_.tree, d);
  } catch (const std::exception&) {
    // Does not chain from our live epoch (leader restarted, or we raced
    // our own resubscribe): reconnect and resubscribe from where we are.
    ctr_.chain_rejects.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  progressed_ = true;
  ctr_.deltas_applied.fetch_add(1, std::memory_order_relaxed);
  chain_gauge_.set(d.new_chain);
  return true;
}

Replicator::SessionEnd Replicator::session(int fd) {
  // Pessimistic until the leader says otherwise: a fresh session is
  // behind until its first kCaughtUp (or kEnd) arrives.
  behind_gauge_.set(1);
  Subscribe sub;
  sub.force_snapshot = force_snapshot_;
  sub.chain = index_.chain(opt_.tree);
  std::string out = encode_frame(MsgType::kSubscribe, encode_subscribe(sub));
  maybe_corrupt_frame(out);
  std::size_t sent = 0;
  while (sent < out.size()) {
    const IoResult w = write_some(fd, out.data() + sent, out.size() - sent);
    if (w.status != IoStatus::kOk) return SessionEnd::kReconnect;
    sent += w.n;
  }

  FrameReader reader;
  Clock::time_point last_frame = Clock::now();
  Frame f;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return SessionEnd::kStopped;
    const FrameReader::Status st = reader.next(f);
    if (st == FrameReader::Status::kBad) {
      // Torn or corrupted stream: the chain state is intact (nothing
      // unverified was applied), so a plain resubscribe recovers.
      ctr_.frame_errors.fetch_add(1, std::memory_order_relaxed);
      return SessionEnd::kReconnect;
    }
    if (st == FrameReader::Status::kNeedMore) {
      if (!wait_readable(fd, 100)) {
        if (std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - last_frame)
                .count() > opt_.read_timeout_ms)
          return SessionEnd::kReconnect;
        continue;
      }
      char buf[64 * 1024];
      const IoResult r = read_some(fd, buf, sizeof(buf));
      if (r.status == IoStatus::kOk)
        reader.feed(buf, r.n);
      else if (r.status != IoStatus::kWouldBlock)
        return SessionEnd::kReconnect;
      continue;
    }
    last_frame = Clock::now();
    switch (f.type) {
      case MsgType::kSnapshot:
        behind_gauge_.set(1);  // more of the stream may follow
        if (!apply_snapshot(f.payload)) return SessionEnd::kReconnect;
        break;
      case MsgType::kDelta:
        behind_gauge_.set(1);
        if (!apply_delta(f.payload)) return SessionEnd::kReconnect;
        break;
      case MsgType::kCaughtUp: {
        std::uint64_t leader_chain = 0;
        if (!decode_caught_up(f.payload, leader_chain)) {
          ctr_.frame_errors.fetch_add(1, std::memory_order_relaxed);
          return SessionEnd::kReconnect;
        }
        ctr_.caught_ups_seen.fetch_add(1, std::memory_order_relaxed);
        behind_gauge_.set(0);
        break;
      }
      case MsgType::kEnd:
        ctr_.ends_seen.fetch_add(1, std::memory_order_relaxed);
        behind_gauge_.set(0);  // a drained leader has nothing we lack
        if (opt_.stop_on_end) return SessionEnd::kEnded;
        break;  // leader drained; keep the session for its successor
      default:
        // kError, or a message that has no business on this stream.
        ctr_.frame_errors.fetch_add(1, std::memory_order_relaxed);
        return SessionEnd::kReconnect;
    }
  }
}

bool Replicator::run() {
  // The calling thread (or the one start() spawned) IS the follow loop;
  // assert its confinement capability for the whole run.
  const util::ThreadRoleGuard on_follow_thread(follow_role_);
  int fails = 0;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return true;
    if (opt_.max_attempts >= 0 && fails >= opt_.max_attempts) return false;
    const int fd = connect_with_timeout(opt_.host, opt_.port,
                                        opt_.connect_timeout_ms);
    if (fd < 0) {
      ctr_.connect_failures.fetch_add(1, std::memory_order_relaxed);
      backoff(++fails);
      continue;
    }
    ctr_.connects.fetch_add(1, std::memory_order_relaxed);
    progressed_ = false;
    const SessionEnd end = session(fd);
    ::close(fd);
    if (end == SessionEnd::kEnded || end == SessionEnd::kStopped) return true;
    ctr_.reconnects.fetch_add(1, std::memory_order_relaxed);
    if (stop_.load(std::memory_order_acquire)) return true;
    // A session that applied anything made progress: the leader is alive
    // and the fault was transient — restart the backoff ladder.
    fails = progressed_ ? 1 : fails + 1;
    backoff(fails);
  }
}

void Replicator::start() {
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] {
    ended_cleanly_.store(run(), std::memory_order_release);
  });
  started_ = true;
}

void Replicator::stop() {
  stop_.store(true, std::memory_order_release);
  if (started_) {
    thread_.join();
    started_ = false;
  }
}

Replicator::Stats Replicator::stats() const {
  Stats s;
  s.connects = ctr_.connects.load(std::memory_order_relaxed);
  s.connect_failures =
      ctr_.connect_failures.load(std::memory_order_relaxed);
  s.reconnects = ctr_.reconnects.load(std::memory_order_relaxed);
  s.snapshots_applied =
      ctr_.snapshots_applied.load(std::memory_order_relaxed);
  s.deltas_applied = ctr_.deltas_applied.load(std::memory_order_relaxed);
  s.chain_rejects = ctr_.chain_rejects.load(std::memory_order_relaxed);
  s.frame_errors = ctr_.frame_errors.load(std::memory_order_relaxed);
  s.ends_seen = ctr_.ends_seen.load(std::memory_order_relaxed);
  s.caught_ups_seen = ctr_.caught_ups_seen.load(std::memory_order_relaxed);
  return s;
}

}  // namespace treelab::net
