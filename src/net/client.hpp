// net/QueryClient — a minimal blocking client for the batch-RPC protocol:
// one connection, one in-flight batch at a time. This is the reference
// consumer (treelab_cli, bench_serve's loopback rows, tests); a
// high-throughput client would pipeline batches, which the server already
// supports — replies come back in request order per connection.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "serve/forest_index.hpp"

namespace treelab::net {

class QueryClient {
 public:
  enum class BatchStatus : std::uint8_t {
    kOk = 0,          ///< `out` holds one result per request
    kOverloaded = 1,  ///< the server shed the batch; retry later
    kError = 2,       ///< connection/protocol failure (connection unusable)
  };

  /// Blocking connect. connected() reports the outcome.
  QueryClient(const std::string& host, std::uint16_t port,
              int timeout_ms = 2'000);
  ~QueryClient();
  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Sends one batch and waits for its reply (or kOverloaded).
  [[nodiscard]] BatchStatus query_batch(std::span<const serve::Request> reqs,
                                        std::vector<serve::QueryResult>& out,
                                        int timeout_ms = 5'000);

  /// Sends kStats and waits for the kStatsReply metrics dump — the wire
  /// view of the server process's obs registry, sorted by name. Returns
  /// false on connection/protocol failure (connection then unusable).
  [[nodiscard]] bool stats(std::vector<StatLine>& out, int timeout_ms = 5'000);

  void close() noexcept;

 private:
  int fd_ = -1;
};

}  // namespace treelab::net
