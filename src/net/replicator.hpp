// net/Replicator — the follower half of journal replication.
//
// A Replicator keeps one tree of a local ForestIndex converged onto a
// leader's DeltaJournal over the wire protocol (net/frame.hpp):
//
//   1. connect, send kSubscribe carrying the epoch-chain value the local
//      tree sits at (ForestIndex::chain) — or force_snapshot when the
//      local state is untrusted,
//   2. the leader tails its journal from exactly that epoch: kDelta frames
//      are verified (the delta's new_chain must equal
//      LabelStore::chain_hash(base_chain, delta) — a corrupted-but-
//      checksum-colliding record cannot slip in) and applied through
//      ForestIndex::apply_delta, which itself rejects any delta that does
//      not chain from the live epoch,
//   3. when the follower is too far behind (its epoch was folded out of
//      the leader's journal), the leader sends a full kSnapshot instead;
//      the follower installs it with ForestIndex::update(tree, loaded,
//      chain) — adopting the leader's chain verbatim, because the journal
//      preserves its chain across checkpoint folds,
//   3b. whenever the follower drains the leader's committed records the
//      leader sends one kCaughtUp; the follower flips its
//      `net.replicator.behind` gauge to 0 — the observable signal that the
//      local tree equals the leader's (it goes back to 1 on the next
//      delta/snapshot, and a fresh session always starts at 1),
//   4. any failure — connect refused, read timeout, torn or corrupt frame,
//      a delta that does not apply — drops the connection and reconnects
//      with jittered exponential backoff, resubscribing from whatever
//      epoch the local tree actually reached. Progress resets the backoff.
//
// Because every applied step is verified against the epoch chain, the
// follower's arena after catch-up is bit-identical to the leader's — the
// property tests/net_fault_fuzz_test asserts under injected faults.
//
// The target tree must already exist in the index (any placeholder
// labeling will do; the first snapshot replaces it wholesale).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/forest_index.hpp"
#include "util/thread_annotations.hpp"

namespace treelab::net {

struct ReplicatorOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  serve::TreeId tree = 0;   ///< tree to converge (must exist in the index)
  int connect_timeout_ms = 2'000;
  /// No frame for this long mid-session means a dead leader: reconnect.
  int read_timeout_ms = 5'000;
  int backoff_min_ms = 5;
  int backoff_max_ms = 1'000;
  std::uint64_t backoff_seed = 1;  ///< jitter PRNG seed (deterministic tests)
  /// run() returns after the leader's kEnd (drain protocols, tests);
  /// false keeps following across leader restarts until stop().
  bool stop_on_end = false;
  /// Consecutive no-progress connection attempts before run() gives up;
  /// -1 = never.
  int max_attempts = -1;
  /// Start from a full snapshot even if the local chain might match.
  bool force_snapshot = false;
};

class Replicator {
 public:
  Replicator(serve::ForestIndex& index, ReplicatorOptions opt);
  ~Replicator();
  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Blocking follow loop. Returns true when it ended deliberately (kEnd
  /// with stop_on_end, or stop()); false when max_attempts consecutive
  /// attempts made no progress.
  bool run();

  /// run() on a background thread.
  void start();
  /// Signals the loop to exit and joins the thread (if start()ed).
  void stop();

  /// start()'s eventual run() result; meaningful after stop().
  [[nodiscard]] bool ended_cleanly() const noexcept {
    return ended_cleanly_.load(std::memory_order_acquire);
  }

  struct Stats {
    std::uint64_t connects = 0;
    std::uint64_t connect_failures = 0;
    std::uint64_t reconnects = 0;        ///< sessions that died mid-stream
    std::uint64_t snapshots_applied = 0;
    std::uint64_t deltas_applied = 0;
    std::uint64_t chain_rejects = 0;     ///< deltas failing chain checks
    std::uint64_t frame_errors = 0;      ///< torn/corrupt/unparsable frames
    std::uint64_t ends_seen = 0;
    std::uint64_t caught_ups_seen = 0;   ///< leader said lag hit zero
  };
  [[nodiscard]] Stats stats() const;

 private:
  enum class SessionEnd : std::uint8_t { kReconnect, kEnded, kStopped };

  [[nodiscard]] SessionEnd session(int fd) TREELAB_REQUIRES(follow_role_);
  [[nodiscard]] bool apply_snapshot(const std::string& payload)
      TREELAB_REQUIRES(follow_role_);
  [[nodiscard]] bool apply_delta(const std::string& payload)
      TREELAB_REQUIRES(follow_role_);
  void backoff(int consecutive_failures) TREELAB_REQUIRES(follow_role_);
  [[nodiscard]] std::uint64_t next_rand() noexcept
      TREELAB_REQUIRES(follow_role_);
  void register_metrics();

  serve::ForestIndex& index_;
  ReplicatorOptions opt_;
  /// Confinement capability of the follow loop: exactly one thread runs
  /// run() at a time (the caller's, or the one start() spawns), and only
  /// run() asserts the role. The session state below is thread-local to
  /// that loop in all but storage — the annotation makes the compiler
  /// keep it that way.
  util::ThreadRole follow_role_;
  std::uint64_t rng_ TREELAB_GUARDED_BY(follow_role_);
  bool force_snapshot_ TREELAB_GUARDED_BY(follow_role_);
  /// Any apply succeeded this session.
  bool progressed_ TREELAB_GUARDED_BY(follow_role_) = false;
  std::thread thread_;
  bool started_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<bool> ended_cleanly_{false};

  struct Counters {
    std::atomic<std::uint64_t> connects{0}, connect_failures{0},
        reconnects{0}, snapshots_applied{0}, deltas_applied{0},
        chain_rejects{0}, frame_errors{0}, ends_seen{0}, caught_ups_seen{0};
  };
  Counters ctr_;

  // Registry exposition: `net.replicator.behind` is 1 from session start
  // until the leader's kCaughtUp/kEnd says the stream drained;
  // `net.replicator.chain` mirrors the epoch the local tree last reached.
  // Counters above ride callbacks (guards unregister them at destruction).
  obs::Gauge& behind_gauge_ =
      obs::Registry::global().gauge("net.replicator.behind");
  obs::Gauge& chain_gauge_ =
      obs::Registry::global().gauge("net.replicator.chain");
  std::vector<obs::CallbackGuard> obs_guards_;
};

}  // namespace treelab::net
