#include "net/client.hpp"

#include <unistd.h>

#include <chrono>

#include "net/frame.hpp"
#include "net/net_io.hpp"

namespace treelab::net {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

QueryClient::QueryClient(const std::string& host, std::uint16_t port,
                         int timeout_ms)
    : fd_(connect_with_timeout(host, port, timeout_ms)) {}

QueryClient::~QueryClient() { close(); }

void QueryClient::close() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

QueryClient::BatchStatus QueryClient::query_batch(
    std::span<const serve::Request> reqs,
    std::vector<serve::QueryResult>& out, int timeout_ms) {
  if (fd_ < 0) return BatchStatus::kError;
  std::string frame =
      encode_frame(MsgType::kQueryBatch, encode_query_batch(reqs));
  maybe_corrupt_frame(frame);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const IoResult w =
        write_some(fd_, frame.data() + sent, frame.size() - sent);
    if (w.status != IoStatus::kOk) {
      close();
      return BatchStatus::kError;
    }
    sent += w.n;
  }
  FrameReader reader;
  Frame f;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const FrameReader::Status st = reader.next(f);
    if (st == FrameReader::Status::kBad) {
      close();
      return BatchStatus::kError;
    }
    if (st == FrameReader::Status::kFrame) break;
    if (Clock::now() >= deadline) {
      close();
      return BatchStatus::kError;
    }
    if (!wait_readable(fd_, 100)) continue;
    char buf[64 * 1024];
    const IoResult r = read_some(fd_, buf, sizeof(buf));
    if (r.status == IoStatus::kOk)
      reader.feed(buf, r.n);
    else if (r.status != IoStatus::kWouldBlock) {
      close();
      return BatchStatus::kError;
    }
  }
  if (f.type == MsgType::kOverloaded) return BatchStatus::kOverloaded;
  if (f.type != MsgType::kQueryReply || !decode_query_reply(f.payload, out) ||
      out.size() != reqs.size()) {
    close();
    return BatchStatus::kError;
  }
  return BatchStatus::kOk;
}

bool QueryClient::stats(std::vector<StatLine>& out, int timeout_ms) {
  if (fd_ < 0) return false;
  std::string frame = encode_frame(MsgType::kStats, {});
  maybe_corrupt_frame(frame);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const IoResult w =
        write_some(fd_, frame.data() + sent, frame.size() - sent);
    if (w.status != IoStatus::kOk) {
      close();
      return false;
    }
    sent += w.n;
  }
  FrameReader reader;
  Frame f;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const FrameReader::Status st = reader.next(f);
    if (st == FrameReader::Status::kBad) {
      close();
      return false;
    }
    if (st == FrameReader::Status::kFrame) break;
    if (Clock::now() >= deadline) {
      close();
      return false;
    }
    if (!wait_readable(fd_, 100)) continue;
    char buf[64 * 1024];
    const IoResult r = read_some(fd_, buf, sizeof(buf));
    if (r.status == IoStatus::kOk)
      reader.feed(buf, r.n);
    else if (r.status != IoStatus::kWouldBlock) {
      close();
      return false;
    }
  }
  if (f.type != MsgType::kStatsReply || !decode_stats_reply(f.payload, out)) {
    close();
    return false;
  }
  return true;
}

}  // namespace treelab::net
