// net/frame — the wire protocol of treelab's serving layer.
//
// Every message is one length-prefixed, checksum-framed unit, reusing the
// delta journal's TLRC framing discipline byte for byte (24-byte header,
// little-endian integers, FNV-1a over the payload):
//
//   "TLNF" | u32 type | u64 payload_len | u64 payload_fnv | payload
//
// so a torn or corrupted frame is detected the same way on the wire as in
// the journal file: the checksum fails, the connection (like the journal
// tail) is declared out of sync and re-planned — never parsed into garbage.
//
// Message types and their payloads (all integers little-endian):
//
//   kQueryBatch  u32 count | count x (u32 tree | i32 u | i32 v)
//   kQueryReply  u32 count | count x (u8 status | u8 within | u64 value)
//   kError       utf-8 reason (diagnostic only; the connection closes)
//   kOverloaded  empty — the batch was shed, retry later
//   kSubscribe   u64 chain | u8 flags (bit 0: force full snapshot)
//   kSnapshot    u64 chain | LabelStore mappable container bytes
//   kDelta       LabelStore v3 delta container bytes
//   kEnd         empty — the leader drained; no more deltas will come
//   kStats       empty — dump the peer's metrics registry
//   kStatsReply  u32 count | count x (u16 name_len | name | u64 value)
//   kCaughtUp    u64 chain — the subscriber has replayed every committed
//                record; sent once per catch-up (re-armed by new deltas)
//
// FrameReader is the incremental decoder both peers run: bytes are fed in
// as they arrive, frames come out when complete. A frame that fails any
// check (magic, bound, checksum) is kBad — the stream has lost sync and
// the connection must be dropped; there is no resynchronization scan.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "serve/forest_index.hpp"

namespace treelab::net {

enum class MsgType : std::uint32_t {
  kQueryBatch = 1,
  kQueryReply = 2,
  kError = 3,
  kOverloaded = 4,
  kSubscribe = 5,
  kSnapshot = 6,
  kDelta = 7,
  kEnd = 8,
  kStats = 9,
  kStatsReply = 10,
  kCaughtUp = 11,
};

/// Highest value a frame header may carry; FrameReader rejects beyond it.
inline constexpr MsgType kMaxMsgType = MsgType::kCaughtUp;

/// Wire name of a message type ("kQueryBatch", ...); "kUnknown" outside
/// the enum. Deliberately a full switch with no default: adding a MsgType
/// without extending it breaks the build under -Werror=switch, and
/// tools/treelab_lint.py (msgtype-codec rule) additionally checks every
/// enum value appears here and in tests/net_frame_test.cpp.
[[nodiscard]] const char* msg_type_name(MsgType t) noexcept;

struct Frame {
  MsgType type = MsgType::kError;
  std::string payload;
};

inline constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 8 + 8;
/// A single message cannot meaningfully exceed this (the largest real
/// payload is a full snapshot); a bigger length field is a framing error.
inline constexpr std::uint64_t kMaxFramePayload = std::uint64_t{1} << 32;

/// Appends one encoded frame to `out`.
void append_frame(std::string& out, MsgType type, std::string_view payload);

[[nodiscard]] inline std::string encode_frame(MsgType type,
                                              std::string_view payload) {
  std::string out;
  append_frame(out, type, payload);
  return out;
}

/// Incremental frame decoder over a byte stream.
class FrameReader {
 public:
  enum class Status : std::uint8_t {
    kFrame = 0,     ///< one complete, validated frame in `out`
    kNeedMore = 1,  ///< no complete frame buffered yet
    kBad = 2,       ///< framing violation — drop the connection
  };

  /// `max_payload` bounds what a peer may make this side buffer (beyond
  /// the protocol-wide kMaxFramePayload); a length field above it is kBad.
  explicit FrameReader(std::uint64_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void feed(const char* data, std::size_t n) { buf_.append(data, n); }

  /// Extracts the next complete frame. Once kBad, stays kBad.
  [[nodiscard]] Status next(Frame& out);

  [[nodiscard]] std::size_t buffered() const noexcept {
    return buf_.size() - pos_;
  }

 private:
  std::uint64_t max_payload_;
  std::string buf_;
  std::size_t pos_ = 0;
  bool bad_ = false;
};

// --- payload codecs ---------------------------------------------------------
//
// Decoders return false on any structural violation (truncation, trailing
// bytes, implausible counts) without throwing — a malformed payload from a
// peer is an expected input, not an exceptional one.

[[nodiscard]] std::string encode_query_batch(
    std::span<const serve::Request> reqs);
[[nodiscard]] bool decode_query_batch(std::string_view payload,
                                      std::vector<serve::Request>& out);

[[nodiscard]] std::string encode_query_reply(
    std::span<const serve::QueryResult> results);
[[nodiscard]] bool decode_query_reply(std::string_view payload,
                                      std::vector<serve::QueryResult>& out);

struct Subscribe {
  std::uint64_t chain = 0;      ///< follower's current epoch-chain value
  bool force_snapshot = false;  ///< start from a full snapshot regardless
};
[[nodiscard]] std::string encode_subscribe(const Subscribe& s);
[[nodiscard]] bool decode_subscribe(std::string_view payload, Subscribe& out);

/// One line of a kStatsReply: a flattened metric from the peer's registry
/// (kept independent of obs/ so the codec layer stays self-contained).
struct StatLine {
  std::string name;
  std::uint64_t value = 0;
};
[[nodiscard]] std::string encode_stats_reply(std::span<const StatLine> lines);
[[nodiscard]] bool decode_stats_reply(std::string_view payload,
                                      std::vector<StatLine>& out);

/// kCaughtUp payload: the chain value the subscriber is caught up at.
[[nodiscard]] std::string encode_caught_up(std::uint64_t chain);
[[nodiscard]] bool decode_caught_up(std::string_view payload,
                                    std::uint64_t& chain);

/// Snapshot payload: the chain value the labeling sits at, then the
/// labeling as a LabelStore mappable container.
[[nodiscard]] std::string encode_snapshot(
    std::uint64_t chain, const core::LabelStore::LoadedArena& loaded);
/// Splits the payload; the container bytes are parsed by the caller via
/// LabelStore::load_arena (whose validation and errors apply).
[[nodiscard]] bool decode_snapshot_header(std::string_view payload,
                                          std::uint64_t& chain,
                                          std::string_view& container);

}  // namespace treelab::net
