// Process-wide observability: named lock-free counters, gauges, and
// fixed-bucket log-scale latency histograms, collected in a registry that
// can be snapshotted at any time into sorted `name value` lines
// (Prometheus-style text exposition) or shipped over the wire as a
// kStatsReply frame.
//
// Design constraints, in order:
//   * near-zero cost when unread — every mutation is a relaxed atomic op
//     on a pre-resolved reference (name lookup happens once, at
//     registration time, never on the hot path),
//   * safe from any thread — mutators never take a lock; only
//     registration and snapshot serialize on the registry mutex,
//   * compile-out — `-DTREELAB_OBS=OFF` defines TREELAB_NO_OBS and turns
//     every mutation into a no-op (and ScopedTimer stops reading the
//     clock), mirroring TREELAB_FAILPOINTS; CI asserts the *enabled*
//     build costs <= 2% batch QPS against this baseline.
//
// Instances of ForestIndex / net::Server / net::Replicator come and go
// (tests build dozens); their per-instance counters are exposed through
// *callback* metrics — a named closure evaluated only at snapshot time,
// removed via RAII CallbackGuard when the owner dies. When several live
// instances register the same name, the latest registrant wins.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace treelab::obs {

#if defined(TREELAB_NO_OBS)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Steady-clock nanoseconds; 0 (and no clock read) when compiled out.
inline std::uint64_t now_ns() {
  if constexpr (!kEnabled) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic u64 counter. `add` is one relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t d = 1) {
    if constexpr (kEnabled) v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-writer-wins u64 gauge (sizes, depths, lag).
class Gauge {
 public:
  void set(std::uint64_t v) {
    if constexpr (kEnabled) v_.store(v, std::memory_order_relaxed);
  }
  void add(std::uint64_t d = 1) {
    if constexpr (kEnabled) v_.fetch_add(d, std::memory_order_relaxed);
  }
  void sub(std::uint64_t d = 1) {
    if constexpr (kEnabled) v_.fetch_sub(d, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Fixed-bucket log-linear histogram for latencies (or any u64).
///
/// Layout: values 0..15 get exact buckets; every octave [2^k, 2^(k+1))
/// for k in [4, 43] is split into 4 equal sub-buckets (<= 25% relative
/// width); everything >= 2^44 (~4.9 hours in ns) lands in one overflow
/// bucket. 16 + 40*4 + 1 = 177 buckets, ~1.4 KiB of atomics per
/// histogram. record() is a handful of relaxed atomic ops and never
/// allocates or locks, so it is safe on the serving hot path.
class Histogram {
 public:
  static constexpr int kSubBits = 2;                 // 4 sub-buckets/octave
  static constexpr int kExactLimit = 16;             // 0..15 exact
  static constexpr int kMaxOctave = 44;              // >= 2^44 -> overflow
  static constexpr int kBucketCount =
      kExactLimit + (kMaxOctave - 4) * (1 << kSubBits) + 1;  // 177

  /// Bucket index for a value (total order, 0-based, dense).
  static int bucket_of(std::uint64_t v) {
    if (v < kExactLimit) return static_cast<int>(v);
    const int msb = 63 - std::countl_zero(v);
    if (msb >= kMaxOctave) return kBucketCount - 1;
    const int sub = static_cast<int>((v >> (msb - kSubBits)) & 3);
    return kExactLimit + (msb - 4) * (1 << kSubBits) + sub;
  }

  /// Smallest value that lands in bucket `b` (inverse of bucket_of).
  static std::uint64_t bucket_floor(int b) {
    if (b < kExactLimit) return static_cast<std::uint64_t>(b);
    if (b >= kBucketCount - 1) return std::uint64_t{1} << kMaxOctave;
    const int oct = 4 + (b - kExactLimit) / (1 << kSubBits);
    const int sub = (b - kExactLimit) % (1 << kSubBits);
    return (std::uint64_t{1} << oct) +
           static_cast<std::uint64_t>(sub) * (std::uint64_t{1} << (oct - 2));
  }

  void record(std::uint64_t v) {
    if constexpr (!kEnabled) {
      (void)v;
      return;
    }
    buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }

  /// A point-in-time copy. Under concurrent writers the fields are each
  /// individually consistent but not mutually (count may lag sum by a few
  /// in-flight records) — fine for monitoring, documented for tests.
  struct Snapshot {
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBucketCount> buckets{};

    std::uint64_t count() const {
      std::uint64_t c = 0;
      for (const std::uint64_t b : buckets) c += b;
      return c;
    }
    void merge(const Snapshot& o) {
      sum += o.sum;
      if (o.max > max) max = o.max;
      for (int i = 0; i < kBucketCount; ++i) buckets[i] += o.buckets[i];
    }
    /// Lower bound of the bucket holding the q-quantile (q in [0,1]);
    /// clamped to `max` so p99 of a single sample is that sample's bucket,
    /// never the overflow sentinel. 0 when empty.
    std::uint64_t percentile(double q) const;
  };
  Snapshot snapshot() const {
    Snapshot s;
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    for (int i = 0; i < kBucketCount; ++i)
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
};

/// Times a scope into a histogram (2 clock reads; none when compiled out).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) : h_(h), t0_(now_ns()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if constexpr (kEnabled) h_.record(now_ns() - t0_);
  }

 private:
  Histogram& h_;
  std::uint64_t t0_;
};

/// One flattened metric line: histograms expand into `<name>_count`,
/// `_sum`, `_max`, `_p50`, `_p90`, `_p99`.
struct Sample {
  std::string name;
  std::uint64_t value = 0;
};

class Registry;

/// RAII handle for a callback metric; removes it on destruction (only if
/// this registration is still the live one — a later registrant under the
/// same name is left alone).
class CallbackGuard {
 public:
  CallbackGuard() = default;
  CallbackGuard(CallbackGuard&& o) noexcept { *this = std::move(o); }
  CallbackGuard& operator=(CallbackGuard&& o) noexcept;
  CallbackGuard(const CallbackGuard&) = delete;
  CallbackGuard& operator=(const CallbackGuard&) = delete;
  ~CallbackGuard() { release(); }
  void release();

 private:
  friend class Registry;
  Registry* reg_ = nullptr;
  std::string name_;
  std::uint64_t id_ = 0;
};

/// Named metric owner. `global()` is the process-wide leaky singleton the
/// serving stack registers into; tests may build private instances.
/// counter()/gauge()/histogram() return stable references (the registry
/// never deletes an owned metric), so callers resolve names once and keep
/// the reference for the life of the process.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry. Pre-registers the util-layer callbacks
  /// (`util.thread_env_rejections`, `util.failpoint.trips`). Leaked on
  /// purpose: metric references must outlive every static destructor.
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Registers a callback metric evaluated at snapshot time. The guard
  /// removes it again; keep the guard alive as long as `fn`'s captures
  /// are. `fn` runs under the registry mutex: it must not call back into
  /// this registry (taking unrelated locks, e.g. ForestIndex shard
  /// mutexes, is fine).
  [[nodiscard]] CallbackGuard set_callback(std::string_view name,
                                           std::function<std::uint64_t()> fn);

  /// Every metric as flattened, name-sorted samples.
  std::vector<Sample> snapshot() const;

  /// Sorted `name value\n` lines (Prometheus-style text exposition).
  std::string render_text() const;

 private:
  friend class CallbackGuard;
  void remove_callback(std::string_view name, std::uint64_t id);

  struct CallbackEntry {
    std::uint64_t id = 0;
    std::function<std::uint64_t()> fn;
  };

  // mu_ serializes name resolution and callback (un)registration only; the
  // returned Counter/Gauge/Histogram objects are lock-free and accessed
  // outside it (which is why they live behind stable unique_ptrs).
  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      TREELAB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      TREELAB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      TREELAB_GUARDED_BY(mu_);
  std::map<std::string, std::vector<CallbackEntry>, std::less<>> callbacks_
      TREELAB_GUARDED_BY(mu_);
  std::uint64_t next_callback_id_ TREELAB_GUARDED_BY(mu_) = 1;
};

/// Renders samples as sorted `name value\n` lines (helper shared by
/// render_text and the CLI's remote-stats printer).
std::string render_samples(const std::vector<Sample>& samples);

}  // namespace treelab::obs
