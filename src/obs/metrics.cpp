#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/failpoint.hpp"
#include "util/parallel.hpp"

namespace treelab::obs {

std::uint64_t Histogram::Snapshot::percentile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cum += buckets[i];
    if (cum >= rank) {
      const std::uint64_t floor_v = bucket_floor(i);
      return floor_v < max ? floor_v : max;
    }
  }
  return max;  // unreachable: cum == total >= rank after the last bucket
}

CallbackGuard& CallbackGuard::operator=(CallbackGuard&& o) noexcept {
  if (this != &o) {
    release();
    reg_ = o.reg_;
    name_ = std::move(o.name_);
    id_ = o.id_;
    o.reg_ = nullptr;
    o.id_ = 0;
  }
  return *this;
}

void CallbackGuard::release() {
  if (reg_ != nullptr && id_ != 0) reg_->remove_callback(name_, id_);
  reg_ = nullptr;
  id_ = 0;
}

Registry& Registry::global() {
  // Leaked on purpose (never destroyed): hot-path metric references held
  // by long-lived objects must stay valid through static destruction. The
  // util-layer globals ride along as permanent callbacks — their guards
  // are leaked too.
  static Registry* g = [] {
    // lint: allow(naked-new): deliberate leak — must outlive static dtors
    auto* r = new Registry();
    // lint: allow(naked-new): guards leak with the registry they point at
    auto* guards = new std::vector<CallbackGuard>();
    guards->push_back(r->set_callback("util.thread_env_rejections",
                                      [] { return util::thread_env_rejections(); }));
    guards->push_back(r->set_callback("util.failpoint.trips",
                                      [] { return util::failpoint::total_trips(); }));
    return r;
  }();
  return *g;
}

Counter& Registry::counter(std::string_view name) {
  const util::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const util::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const util::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

CallbackGuard Registry::set_callback(std::string_view name,
                                     std::function<std::uint64_t()> fn) {
  CallbackGuard g;
  g.reg_ = this;
  g.name_ = std::string(name);
  {
    const util::MutexLock lock(mu_);
    g.id_ = next_callback_id_++;
    callbacks_[g.name_].push_back(CallbackEntry{g.id_, std::move(fn)});
  }
  return g;
}

void Registry::remove_callback(std::string_view name, std::uint64_t id) {
  const util::MutexLock lock(mu_);
  auto it = callbacks_.find(name);
  if (it == callbacks_.end()) return;
  auto& v = it->second;
  v.erase(std::remove_if(v.begin(), v.end(),
                         [id](const CallbackEntry& e) { return e.id == id; }),
          v.end());
  if (v.empty()) callbacks_.erase(it);
}

std::vector<Sample> Registry::snapshot() const {
  std::vector<Sample> out;
  const util::MutexLock lock(mu_);
  out.reserve(counters_.size() + gauges_.size() + callbacks_.size() +
              6 * histograms_.size());
  for (const auto& [name, c] : counters_) out.push_back({name, c->value()});
  for (const auto& [name, g] : gauges_) out.push_back({name, g->value()});
  // Latest registrant wins when several live instances share a name.
  for (const auto& [name, entries] : callbacks_)
    if (!entries.empty()) out.push_back({name, entries.back().fn()});
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    out.push_back({name + "_count", s.count()});
    out.push_back({name + "_sum", s.sum});
    out.push_back({name + "_max", s.max});
    out.push_back({name + "_p50", s.percentile(0.50)});
    out.push_back({name + "_p90", s.percentile(0.90)});
    out.push_back({name + "_p99", s.percentile(0.99)});
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

std::string Registry::render_text() const { return render_samples(snapshot()); }

std::string render_samples(const std::vector<Sample>& samples) {
  std::string out;
  for (const Sample& s : samples) {
    out += s.name;
    out += ' ';
    out += std::to_string(s.value);
    out += '\n';
  }
  return out;
}

}  // namespace treelab::obs
