// util/io_error — an I/O failure that names its file and errno.
//
// Error taxonomy across the durability layer: util::IoError means the
// environment failed (open/read/write/fsync/rename — possibly transient,
// the serving side retries it), while a plain std::runtime_error from the
// same code means the *bytes* are wrong (bad magic, checksum mismatch,
// broken epoch chain — retrying cannot help, the integrity/quarantine
// path handles it). Keep the distinction when adding failure sites.
#pragma once

#include <stdexcept>
#include <string>
#include <system_error>
#include <utility>

namespace treelab::util {

class IoError : public std::runtime_error {
 public:
  /// `op` reads like a verb phrase: "open for reading", "write", ...
  /// Message: "<op> <path>: <strerror> (errno <n>)".
  IoError(std::string path, const std::string& op, int err)
      : std::runtime_error(op + " " + path + ": " +
                           std::generic_category().message(err) + " (errno " +
                           std::to_string(err) + ")"),
        path_(std::move(path)),
        errno_(err) {}

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] int error_code() const noexcept { return errno_; }

 private:
  std::string path_;
  int errno_;
};

}  // namespace treelab::util
