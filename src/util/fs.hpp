// util/fs — the file primitives under the durability layer.
//
// Everything that touches disk in treelab's persistence paths goes
// through these helpers, for two reasons:
//
//  * crash discipline: atomic_write_file() is temp + fsync + rename, so a
//    crash at any instant leaves the target either untouched or fully
//    replaced; append_file() optionally fsyncs so an append is on disk
//    before the caller treats it as committed. The delta journal's
//    recovery rules are stated entirely in terms of these two guarantees.
//
//  * fault injection: each primitive checks named failpoints
//    ("fs.open_read", "fs.read", "fs.open_write", "fs.write", "fs.fsync",
//    "fs.rename", "fs.open_append", "fs.truncate") so tests and the
//    crash-recovery fuzzer can tear a write mid-frame or fail an fsync at
//    will. Short/torn writes persist a prefix of the bytes for real —
//    recovery code sees exactly what a crashed process would have left.
//
// Failures surface as util::IoError carrying the path and errno.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace treelab::util {

[[nodiscard]] bool file_exists(const std::string& path);

/// Size in bytes; IoError if the file cannot be stat'ed.
[[nodiscard]] std::uint64_t file_size(const std::string& path);

/// Whole file into memory. Failpoints: "fs.open_read", "fs.read"
/// (short-read keeps the first `arg` bytes).
[[nodiscard]] std::string read_file(const std::string& path);

/// Crash-safe full-file replace: write `path`.tmp, fsync it, rename over
/// `path`, fsync the directory (best-effort). A torn-write failpoint
/// tears the *temp* file and aborts — the target must survive intact;
/// that asymmetry is what the atomicity tests pin down. Failpoints:
/// "fs.open_write", "fs.write", "fs.fsync", "fs.rename".
void atomic_write_file(const std::string& path, std::string_view bytes);

/// Appends to an existing file, fsync'ing when `sync`. A torn-write
/// failpoint persists a prefix of `bytes` then aborts — the torn tail
/// stays in the file for recovery to truncate. Failpoints:
/// "fs.open_append", "fs.write", "fs.fsync". When `fsync_ns` is non-null
/// it receives the nanoseconds spent in the fsync alone (0 when !sync),
/// so the journal can split commit latency into write vs flush.
void append_file(const std::string& path, std::string_view bytes, bool sync,
                 std::uint64_t* fsync_ns = nullptr);

/// Truncates to `size` bytes (recovery dropping a torn journal tail).
/// Failpoint: "fs.truncate".
void truncate_file(const std::string& path, std::uint64_t size);

/// Removes `path`; missing is not an error.
void remove_file(const std::string& path);

}  // namespace treelab::util
