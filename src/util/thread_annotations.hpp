// util/thread_annotations — Clang thread-safety capability macros plus the
// annotated mutex types the rest of the codebase locks with.
//
// Clang's -Wthread-safety analysis proves lock discipline at compile time:
// a member declared TREELAB_GUARDED_BY(mu) cannot be read or written unless
// the compiler can see `mu` held on every path to the access. The macros
// below expand to the underlying attributes under Clang and to nothing
// everywhere else, so gcc builds are unaffected.
//
// libstdc++'s std::mutex carries no capability attributes, so locking it
// directly is invisible to the analysis. Code that wants checking uses:
//
//   util::Mutex mu;                    // a capability
//   int x TREELAB_GUARDED_BY(mu);      // data it protects
//   util::MutexLock lock(mu);          // RAII acquire, release on scope exit
//
// plus TREELAB_REQUIRES(mu) on helpers that assume the lock is already
// held, and TREELAB_EXCLUDES(mu) on entry points that will take it (and
// would self-deadlock if called with it held).
//
// util::ThreadRole is a *phantom* capability: it guards no mutex, only a
// thread-confinement invariant ("this state is touched only from the event
// loop thread"). The owning thread constructs one ThreadRoleGuard at the
// top of its loop; every function touching the confined state declares
// TREELAB_REQUIRES(role). Off-thread access then fails to compile instead
// of failing under TSan three releases later.
#pragma once

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define TREELAB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TREELAB_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define TREELAB_CAPABILITY(x) TREELAB_THREAD_ANNOTATION(capability(x))

#define TREELAB_SCOPED_CAPABILITY TREELAB_THREAD_ANNOTATION(scoped_lockable)

#define TREELAB_GUARDED_BY(x) TREELAB_THREAD_ANNOTATION(guarded_by(x))

#define TREELAB_PT_GUARDED_BY(x) TREELAB_THREAD_ANNOTATION(pt_guarded_by(x))

#define TREELAB_REQUIRES(...) \
  TREELAB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define TREELAB_ACQUIRE(...) \
  TREELAB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define TREELAB_RELEASE(...) \
  TREELAB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define TREELAB_TRY_ACQUIRE(...) \
  TREELAB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define TREELAB_EXCLUDES(...) \
  TREELAB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define TREELAB_RETURN_CAPABILITY(x) TREELAB_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch. Policy: at most two uses in src/, each carrying a comment
// explaining why the analysis cannot see the invariant (treelab_lint's
// review gate; see README "Static analysis").
#define TREELAB_NO_THREAD_SAFETY_ANALYSIS \
  TREELAB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace treelab::util {

/// std::mutex with capability attributes so -Wthread-safety can track it.
class TREELAB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TREELAB_ACQUIRE() { mu_.lock(); }
  void unlock() TREELAB_RELEASE() { mu_.unlock(); }
  bool try_lock() TREELAB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over util::Mutex; the analysis sees the capability held for
/// exactly the guard's scope (the std::lock_guard equivalent).
class TREELAB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TREELAB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() TREELAB_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Phantom capability naming a thread-confinement invariant rather than a
/// lock. Zero-size, zero-cost: acquiring it is a no-op at runtime; its only
/// job is to make the compiler reject confined-state access from functions
/// that never declared TREELAB_REQUIRES(role).
class TREELAB_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  // Only ThreadRoleGuard may assert the role.
  void acquire() TREELAB_ACQUIRE() {}
  void release() TREELAB_RELEASE() {}
};

/// Declares "this scope runs on the role's owning thread". Constructed once
/// at the top of the owning thread's entry function (e.g. the server's
/// run_loop), never from anywhere else — that discipline is the one thing
/// the analysis takes on faith.
class TREELAB_SCOPED_CAPABILITY ThreadRoleGuard {
 public:
  explicit ThreadRoleGuard(ThreadRole& role) TREELAB_ACQUIRE(role)
      : role_(role) {
    role_.acquire();
  }
  ~ThreadRoleGuard() TREELAB_RELEASE() { role_.release(); }
  ThreadRoleGuard(const ThreadRoleGuard&) = delete;
  ThreadRoleGuard& operator=(const ThreadRoleGuard&) = delete;

 private:
  ThreadRole& role_;
};

}  // namespace treelab::util
