// util/failpoint — named fault-injection points for the durability layer.
//
// A failpoint is a named site compiled into an I/O or swap path:
//
//   if (auto fp = util::failpoint::check("fs.write")) { /* inject */ }
//
// When nothing is armed — the production state — check() is one relaxed
// atomic load and a predicted-not-taken branch (measured against the
// serving hot path in bench_serve's failpoint section), and compiles to a
// literal no-op under -DTREELAB_NO_FAILPOINTS (CMake option
// TREELAB_FAILPOINTS=OFF). Sites are armed programmatically (tests, the
// crash-recovery fuzzer) or from the environment at process start:
//
//   TREELAB_FAILPOINTS="site=mode[:skip[:count[:arg]]][,site=...]"
//   e.g. TREELAB_FAILPOINTS="fs.write=torn-write:2:1:100"
//
// with modes error | short-read | short-write | torn-write | throw |
// alloc-fail | corrupt; `skip` hits pass through before the point fires, it fires
// `count` times (-1 = forever), and `arg` is mode-specific (bytes kept by
// a short/torn read or write).
//
// What firing *means* is the site's contract: "fs.read" returns only
// `arg` bytes on short-read; "fs.write" persists `arg` bytes and then
// reports an error (short-write) or raises FailpointAbort (torn-write —
// the simulated kill the crash-recovery fuzzer drives through the
// journal); "mapped_arena.map" treats any hit as "mmap unavailable" and
// falls back to streamed loading. Sites without a byte stream apply the
// scalar modes uniformly via raise().
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <string_view>

namespace treelab::util {

enum class FailMode : std::uint8_t {
  kError,       ///< the site reports an I/O error (util::IoError, fake EIO)
  kShortRead,   ///< a read yields only `arg` bytes, then clean EOF
  kShortWrite,  ///< a write persists only `arg` bytes, then reports an error
  kTornWrite,   ///< a write persists only `arg` bytes, then FailpointAbort
  kThrow,       ///< the site throws std::runtime_error
  kAllocFail,   ///< the site throws std::bad_alloc
  kCorrupt,     ///< the site flips a byte in its buffer (bit `arg` % width)
};

/// The simulated crash. Deliberately NOT a std::runtime_error: recovery
/// and retry code catches runtime_error (corruption) and IoError
/// (transient), and neither may swallow a kill — a torn write must
/// propagate to the top of the operation like SIGKILL would, leaving
/// whatever bytes already hit the file for recovery to deal with.
class FailpointAbort : public std::exception {
 public:
  explicit FailpointAbort(std::string_view site);
  [[nodiscard]] const char* what() const noexcept override {
    return what_.c_str();
  }
  [[nodiscard]] const std::string& site() const noexcept { return site_; }

 private:
  std::string site_;
  std::string what_;
};

/// What an armed site should do right now (one trip of the spec).
struct FailpointHit {
  FailMode mode = FailMode::kError;
  std::uint64_t arg = 0;
};

namespace failpoint {

namespace detail {
/// Count of currently armed sites; zero keeps check() on its fast path.
extern std::atomic<int> armed_sites;
[[nodiscard]] std::optional<FailpointHit> check_slow(std::string_view site);
}  // namespace detail

/// The hook compiled into every site: nullopt means "carry on", a hit
/// means "inject this". Cost with nothing armed is one relaxed load.
[[nodiscard]] inline std::optional<FailpointHit> check(
    std::string_view site) noexcept {
#if defined(TREELAB_NO_FAILPOINTS)
  (void)site;
  return std::nullopt;
#else
  if (detail::armed_sites.load(std::memory_order_relaxed) == 0)
    return std::nullopt;
  return detail::check_slow(site);
#endif
}

/// Arms `site`: after `skip` passes it fires `count` times (-1 = every
/// hit) with the given mode/arg. Re-arming a site replaces its spec and
/// resets its skip/count progress (cumulative trips() survive).
void arm(std::string_view site, FailMode mode, std::uint64_t skip = 0,
         std::int64_t count = -1, std::uint64_t arg = 0);

void disarm(std::string_view site);
void disarm_all();

/// How many times `site` has fired since process start (survives disarm).
[[nodiscard]] std::uint64_t trips(std::string_view site);

/// Total trips across every site since process start (survives disarm).
/// Exposed through the metrics registry as `util.failpoint.trips`.
[[nodiscard]] std::uint64_t total_trips();

/// Parses a TREELAB_FAILPOINTS-style spec and arms it. Returns false (and
/// arms nothing from the bad clause) on a malformed spec. nullptr/"" is
/// trivially true. Called once at startup with the environment variable.
bool parse_spec(const char* spec);

/// Applies a hit at a site with no byte stream to shorten: kError becomes
/// an IoError naming `path` (fake EIO), kThrow a runtime_error, kAllocFail
/// a bad_alloc; the torn/short byte modes degrade to FailpointAbort /
/// IoError respectively. Never returns.
[[noreturn]] void raise(const FailpointHit& hit, std::string_view site,
                        const std::string& path);

}  // namespace failpoint
}  // namespace treelab::util
