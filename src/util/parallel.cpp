#include "util/parallel.hpp"

#include <cerrno>
#include <cstdlib>

namespace treelab::util {

int parse_thread_count(const char* s, int hardware) noexcept {
  if (s == nullptr || *s == '\0') return hardware;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') return hardware;  // garbage / trailing junk
  if (errno == ERANGE || v < 1) return hardware;  // overflow / zero / negative
  if (v > hardware) return hardware;              // clamp
  return static_cast<int>(v);
}

int thread_count() noexcept {
  // Re-read on every call (it is consulted once per build, not per node) so
  // a process can re-point TREELAB_THREADS between builds.
  const unsigned hwc = std::thread::hardware_concurrency();
  const int hw = hwc >= 1 ? static_cast<int>(hwc) : 1;
  if (const char* env = std::getenv("TREELAB_THREADS"))
    return parse_thread_count(env, hw);
  return hw;
}

std::vector<std::size_t> split_ranges(std::size_t n, std::size_t chunks) {
  if (chunks < 1) chunks = 1;
  if (chunks > n) chunks = n == 0 ? 1 : n;
  std::vector<std::size_t> off(chunks + 1);
  for (std::size_t i = 0; i <= chunks; ++i) off[i] = n * i / chunks;
  return off;
}

}  // namespace treelab::util
