#include "util/parallel.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace treelab::util {

namespace {

std::atomic<std::uint64_t> rejections{0};

/// A rejected TREELAB_THREADS is operator input gone wrong; falling back
/// silently would let a typo masquerade as a deliberate setting. Warn once
/// per process (the value is re-read on every build, so per-call warnings
/// would spam). The counter is the machine-checkable side: it increments
/// on EVERY rejection, before and independently of the warn-once gate —
/// the registry exposes it as `util.thread_env_rejections`.
int reject(const char* s, int hardware) noexcept {
  rejections.fetch_add(1, std::memory_order_relaxed);
  static std::atomic_flag warned = ATOMIC_FLAG_INIT;
  if (!warned.test_and_set(std::memory_order_relaxed))
    std::fprintf(stderr,
                 "treelab: ignoring invalid TREELAB_THREADS='%s' "
                 "(want a whole number >= 1); using %d\n",
                 s, hardware);
  return hardware;
}

}  // namespace

std::uint64_t thread_env_rejections() noexcept {
  return rejections.load(std::memory_order_relaxed);
}

int parse_thread_count(const char* s, int hardware) noexcept {
  if (s == nullptr) return hardware;  // unset: the default, not a rejection
  if (*s == '\0') return reject(s, hardware);
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0')
    return reject(s, hardware);  // garbage / trailing junk
  if (errno == ERANGE || v < 1)
    return reject(s, hardware);  // overflow / zero / negative
  if (v > hardware) return hardware;  // clamp: valid ambition, no warning
  return static_cast<int>(v);
}

int thread_count() noexcept {
  // Re-read on every call (it is consulted once per build, not per node) so
  // a process can re-point TREELAB_THREADS between builds.
  const unsigned hwc = std::thread::hardware_concurrency();
  const int hw = hwc >= 1 ? static_cast<int>(hwc) : 1;
  if (const char* env = std::getenv("TREELAB_THREADS"))
    return parse_thread_count(env, hw);
  return hw;
}

std::vector<std::size_t> split_ranges(std::size_t n, std::size_t chunks) {
  if (chunks < 1) chunks = 1;
  if (chunks > n) chunks = n == 0 ? 1 : n;
  std::vector<std::size_t> off(chunks + 1);
  for (std::size_t i = 0; i <= chunks; ++i) off[i] = n * i / chunks;
  return off;
}

}  // namespace treelab::util
