#include "util/parallel.hpp"

#include <cstdlib>

namespace treelab::util {

int thread_count() noexcept {
  // Re-read on every call (it is consulted once per build, not per node) so
  // a process can re-point TREELAB_THREADS between builds.
  if (const char* env = std::getenv("TREELAB_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

std::vector<std::size_t> split_ranges(std::size_t n, std::size_t chunks) {
  if (chunks < 1) chunks = 1;
  if (chunks > n) chunks = n == 0 ? 1 : n;
  std::vector<std::size_t> off(chunks + 1);
  for (std::size_t i = 0; i <= chunks; ++i) off[i] = n * i / chunks;
  return off;
}

}  // namespace treelab::util
