// util/hash — the FNV-1a primitive shared by every checksummed byte format
// in treelab: the delta journal's TLJN/TLRC frames and the network layer's
// TLNF frames all use the same 64-bit FNV-1a so corruption detection is one
// discipline, not three.
#pragma once

#include <cstddef>
#include <cstdint>

namespace treelab::util {

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

[[nodiscard]] inline std::uint64_t fnv1a(const char* p, std::size_t n,
                                         std::uint64_t h = kFnvOffset) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(p[i]);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace treelab::util
