#include "util/failpoint.hpp"

#include <cerrno>
#include <cstdlib>
#include <map>
#include <new>
#include <stdexcept>

#include "util/io_error.hpp"
#include "util/thread_annotations.hpp"

namespace treelab::util {

FailpointAbort::FailpointAbort(std::string_view site)
    : site_(site), what_("failpoint: simulated crash at " + site_) {}

namespace failpoint {
namespace detail {

std::atomic<int> armed_sites{0};

namespace {

struct Spec {
  FailMode mode = FailMode::kError;
  std::uint64_t skip = 0;    // hits still to let pass
  std::int64_t count = -1;   // trips left; -1 = unlimited
  std::uint64_t arg = 0;
};

// One mutex guards both maps; armed_sites keeps the hot path off it.
// The maps live *inside* a registry struct (not as loose function-local
// statics) so the capability analysis can tie them to the mutex.
struct FpRegistry {
  util::Mutex mu;
  std::map<std::string, Spec, std::less<>> armed TREELAB_GUARDED_BY(mu);
  std::map<std::string, std::uint64_t, std::less<>> tripped
      TREELAB_GUARDED_BY(mu);

  static FpRegistry& get() {
    static FpRegistry r;  // function-local: safe before main()
    return r;
  }
};

bool parse_mode(std::string_view s, FailMode& out) {
  if (s == "error") out = FailMode::kError;
  else if (s == "short-read") out = FailMode::kShortRead;
  else if (s == "short-write") out = FailMode::kShortWrite;
  else if (s == "torn-write") out = FailMode::kTornWrite;
  else if (s == "throw") out = FailMode::kThrow;
  else if (s == "alloc-fail") out = FailMode::kAllocFail;
  else if (s == "corrupt") out = FailMode::kCorrupt;
  else return false;
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (~std::uint64_t{0} - static_cast<std::uint64_t>(c - '0')) / 10)
      return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

// Arms TREELAB_FAILPOINTS before main() so even static-init-time I/O
// (none today) would see the sites.
const bool env_armed = [] {
  return parse_spec(std::getenv("TREELAB_FAILPOINTS"));
}();

}  // namespace

std::optional<FailpointHit> check_slow(std::string_view site) {
  FpRegistry& reg = FpRegistry::get();
  const util::MutexLock lock(reg.mu);
  auto it = reg.armed.find(site);
  if (it == reg.armed.end()) return std::nullopt;
  Spec& s = it->second;
  if (s.skip > 0) {
    --s.skip;
    return std::nullopt;
  }
  if (s.count == 0) return std::nullopt;
  if (s.count > 0) --s.count;
  ++reg.tripped[it->first];
  return FailpointHit{s.mode, s.arg};
}

}  // namespace detail

void arm(std::string_view site, FailMode mode, std::uint64_t skip,
         std::int64_t count, std::uint64_t arg) {
  detail::FpRegistry& reg = detail::FpRegistry::get();
  const util::MutexLock lock(reg.mu);
  auto [it, inserted] = reg.armed.insert_or_assign(
      std::string(site), detail::Spec{mode, skip, count, arg});
  (void)it;
  if (inserted)
    detail::armed_sites.fetch_add(1, std::memory_order_relaxed);
}

void disarm(std::string_view site) {
  detail::FpRegistry& reg = detail::FpRegistry::get();
  const util::MutexLock lock(reg.mu);
  auto it = reg.armed.find(site);
  if (it == reg.armed.end()) return;
  reg.armed.erase(it);
  detail::armed_sites.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  detail::FpRegistry& reg = detail::FpRegistry::get();
  const util::MutexLock lock(reg.mu);
  reg.armed.clear();
  detail::armed_sites.store(0, std::memory_order_relaxed);
}

std::uint64_t trips(std::string_view site) {
  detail::FpRegistry& reg = detail::FpRegistry::get();
  const util::MutexLock lock(reg.mu);
  auto it = reg.tripped.find(site);
  return it == reg.tripped.end() ? 0 : it->second;
}

std::uint64_t total_trips() {
  detail::FpRegistry& reg = detail::FpRegistry::get();
  const util::MutexLock lock(reg.mu);
  std::uint64_t total = 0;
  for (const auto& [site, n] : reg.tripped) total += n;
  return total;
}

bool parse_spec(const char* spec) {
  if (spec == nullptr || *spec == '\0') return true;
  std::string_view rest(spec);
  bool ok = true;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view clause = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      ok = false;
      continue;
    }
    const std::string_view site = clause.substr(0, eq);
    std::string_view params = clause.substr(eq + 1);
    // mode[:skip[:count[:arg]]]
    std::string_view field[4];
    int nf = 0;
    while (nf < 4) {
      const std::size_t colon = params.find(':');
      field[nf++] = params.substr(0, colon);
      if (colon == std::string_view::npos) break;
      params = params.substr(colon + 1);
    }
    FailMode mode{};
    std::uint64_t skip = 0, arg = 0, count_u = 0;
    std::int64_t count = -1;
    bool good = nf >= 1 && detail::parse_mode(field[0], mode);
    if (good && nf >= 2) good = detail::parse_u64(field[1], skip);
    if (good && nf >= 3) {
      if (field[2] == "-1") {
        count = -1;
      } else if (detail::parse_u64(field[2], count_u) &&
                 count_u <= std::uint64_t{1} << 62) {
        count = static_cast<std::int64_t>(count_u);
      } else {
        good = false;
      }
    }
    if (good && nf >= 4) good = detail::parse_u64(field[3], arg);
    if (!good) {
      ok = false;
      continue;
    }
    arm(site, mode, skip, count, arg);
  }
  return ok;
}

void raise(const FailpointHit& hit, std::string_view site,
           const std::string& path) {
  switch (hit.mode) {
    case FailMode::kThrow:
      throw std::runtime_error("failpoint: injected fault at " +
                               std::string(site));
    case FailMode::kAllocFail:
      throw std::bad_alloc();
    case FailMode::kTornWrite:
      throw FailpointAbort(site);
    case FailMode::kError:
    case FailMode::kShortRead:
    case FailMode::kShortWrite:
    case FailMode::kCorrupt:  // nothing to corrupt here: degrade to EIO
      break;
  }
  throw IoError(path, "failpoint [" + std::string(site) + "]", EIO);
}

}  // namespace failpoint
}  // namespace treelab::util
