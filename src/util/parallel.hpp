// Deterministic fork/join parallelism for label construction.
//
// Construction in treelab is "computed once centrally, then shipped": the
// build side may use every core, but the labels it emits must be
// bit-identical whatever the thread count, so results can be diffed,
// content-addressed, and reproduced. parallel_for therefore only splits
// index ranges; all ordering-sensitive assembly (arena layout, stats
// merging) is done per-chunk and reduced in chunk order by the caller.
//
// The global default thread count comes from TREELAB_THREADS (clamped to
// >= 1), falling back to std::thread::hardware_concurrency().
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

namespace treelab::util {

/// Threads to use for construction: a valid TREELAB_THREADS if set, else
/// hardware concurrency (>= 1). Re-read on every call.
[[nodiscard]] int thread_count() noexcept;

/// Strict TREELAB_THREADS parsing: `s` must be a whole base-10 integer in
/// [1, hardware]. Zero, negative, empty, trailing-garbage ("4x") and
/// overflowing values are rejected (returning `hardware`, the default);
/// values above `hardware` are clamped to it — oversubscribing the fork/join
/// pools only adds scheduling noise, never throughput. A rejection is not
/// silent: it bumps thread_env_rejections() and, once per process, prints a
/// stderr warning — a typo'd env var must not masquerade as a deliberate
/// setting.
[[nodiscard]] int parse_thread_count(const char* s, int hardware) noexcept;

/// How many times parse_thread_count rejected a value this process (the
/// observable side of the one-time warning; clamping does not count).
[[nodiscard]] std::uint64_t thread_env_rejections() noexcept;

/// `threads` if positive, else thread_count().
[[nodiscard]] inline int resolve_threads(int threads) noexcept {
  return threads > 0 ? threads : thread_count();
}

/// Splits [0, n) into `chunks` near-equal contiguous ranges; returns the
/// chunk boundaries (size chunks + 1). Deterministic in (n, chunks).
[[nodiscard]] std::vector<std::size_t> split_ranges(std::size_t n,
                                                    std::size_t chunks);

/// Runs f(chunk, begin, end) over the `chunks` ranges of split_ranges(n),
/// on at most `threads` std::threads (the calling thread works too). Each
/// chunk index is handled exactly once; exceptions from any chunk are
/// captured and the first one (lowest chunk index) is rethrown after join.
template <typename F>
void parallel_for_chunks(std::size_t n, std::size_t chunks, int threads,
                         F&& f) {
  const std::vector<std::size_t> off = split_ranges(n, chunks);
  const std::size_t c = off.size() - 1;
  if (threads <= 1 || c <= 1) {
    for (std::size_t i = 0; i < c; ++i) f(i, off[i], off[i + 1]);
    return;
  }
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads), c);
  std::vector<std::exception_ptr> errors(c);
  // Chunk i is owned by worker i % workers: a static schedule, so no shared
  // counter and no dependence of anything on execution interleaving.
  const auto run = [&](std::size_t w) {
    for (std::size_t i = w; i < c; i += workers) {
      try {
        f(i, off[i], off[i + 1]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(run, w);
  run(0);
  for (auto& th : pool) th.join();
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

/// One chunk per thread over [0, n): f(chunk, begin, end).
template <typename F>
void parallel_for(std::size_t n, int threads, F&& f) {
  threads = resolve_threads(threads);
  parallel_for_chunks(n, static_cast<std::size_t>(threads), threads,
                      std::forward<F>(f));
}

}  // namespace treelab::util
