#include "util/fs.hpp"

#include <cerrno>

#include "obs/metrics.hpp"
#include "util/failpoint.hpp"
#include "util/io_error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TREELAB_HAVE_POSIX_FS 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <cstdio>
#include <filesystem>
#include <fstream>
#endif

#include <algorithm>

namespace treelab::util {
namespace {

#if TREELAB_HAVE_POSIX_FS

struct FdGuard {
  int fd = -1;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  explicit FdGuard(int f) : fd(f) {}
};

// Writes `bytes` to fd, honoring the "fs.write" failpoint: short-write
// persists a prefix then reports ENOSPC, torn-write persists a prefix
// then simulates a crash. The prefix really reaches the fd first, so the
// file holds exactly what a dying process would have left.
void write_all(int fd, const std::string& path, std::string_view bytes) {
  std::uint64_t limit = bytes.size();
  std::optional<FailMode> after;
  if (auto fp = failpoint::check("fs.write")) {
    switch (fp->mode) {
      case FailMode::kShortWrite:
      case FailMode::kTornWrite:
        limit = std::min<std::uint64_t>(fp->arg, bytes.size());
        after = fp->mode;
        break;
      default:
        failpoint::raise(*fp, "fs.write", path);
    }
  }
  std::size_t off = 0;
  while (off < limit) {
    const ::ssize_t w = ::write(fd, bytes.data() + off, limit - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw IoError(path, "write", errno);
    }
    off += static_cast<std::size_t>(w);
  }
  if (after == FailMode::kShortWrite) throw IoError(path, "write", ENOSPC);
  if (after == FailMode::kTornWrite) throw FailpointAbort("fs.write");
}

void fsync_fd(int fd, const std::string& path) {
  if (auto fp = failpoint::check("fs.fsync"))
    failpoint::raise(*fp, "fs.fsync", path);
  if (::fsync(fd) != 0) throw IoError(path, "fsync", errno);
}

// Durability of the rename itself: fsync the containing directory.
// Best-effort — some filesystems refuse O_RDONLY fsync on directories.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return;
  (void)::fsync(fd);
  ::close(fd);
}

#endif  // TREELAB_HAVE_POSIX_FS

}  // namespace

#if TREELAB_HAVE_POSIX_FS

bool file_exists(const std::string& path) {
  struct ::stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::uint64_t file_size(const std::string& path) {
  struct ::stat st{};
  if (::stat(path.c_str(), &st) != 0) throw IoError(path, "stat", errno);
  return static_cast<std::uint64_t>(st.st_size);
}

std::string read_file(const std::string& path) {
  if (auto fp = failpoint::check("fs.open_read"))
    failpoint::raise(*fp, "fs.open_read", path);
  FdGuard fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (fd.fd < 0) throw IoError(path, "open for reading", errno);
  std::uint64_t limit = ~std::uint64_t{0};
  if (auto fp = failpoint::check("fs.read")) {
    if (fp->mode == FailMode::kShortRead)
      limit = fp->arg;
    else
      failpoint::raise(*fp, "fs.read", path);
  }
  struct ::stat st{};
  if (::fstat(fd.fd, &st) != 0) throw IoError(path, "stat", errno);
  std::string out;
  out.reserve(static_cast<std::size_t>(st.st_size));
  char buf[1 << 16];
  while (out.size() < limit) {
    const std::size_t want =
        std::min<std::uint64_t>(sizeof buf, limit - out.size());
    const ::ssize_t r = ::read(fd.fd, buf, want);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw IoError(path, "read", errno);
    }
    if (r == 0) break;
    out.append(buf, static_cast<std::size_t>(r));
  }
  return out;
}

void atomic_write_file(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  {
    if (auto fp = failpoint::check("fs.open_write"))
      failpoint::raise(*fp, "fs.open_write", tmp);
    FdGuard fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                      0644));
    if (fd.fd < 0) throw IoError(tmp, "open for writing", errno);
    write_all(fd.fd, tmp, bytes);
    fsync_fd(fd.fd, tmp);
  }
  if (auto fp = failpoint::check("fs.rename"))
    failpoint::raise(*fp, "fs.rename", path);
  if (::rename(tmp.c_str(), path.c_str()) != 0)
    throw IoError(path, "rename into place", errno);
  fsync_parent_dir(path);
}

void append_file(const std::string& path, std::string_view bytes, bool sync,
                 std::uint64_t* fsync_ns) {
  if (fsync_ns != nullptr) *fsync_ns = 0;
  if (auto fp = failpoint::check("fs.open_append"))
    failpoint::raise(*fp, "fs.open_append", path);
  FdGuard fd(::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC));
  if (fd.fd < 0) throw IoError(path, "open for append", errno);
  write_all(fd.fd, path, bytes);
  if (sync) {
    const std::uint64_t t0 = obs::now_ns();
    fsync_fd(fd.fd, path);
    if (fsync_ns != nullptr) *fsync_ns = obs::now_ns() - t0;
  }
}

void truncate_file(const std::string& path, std::uint64_t size) {
  if (auto fp = failpoint::check("fs.truncate"))
    failpoint::raise(*fp, "fs.truncate", path);
  if (::truncate(path.c_str(), static_cast<::off_t>(size)) != 0)
    throw IoError(path, "truncate", errno);
}

void remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT)
    throw IoError(path, "remove", errno);
}

#else  // !TREELAB_HAVE_POSIX_FS — portable fallback, no fsync guarantees.

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

std::uint64_t file_size(const std::string& path) {
  std::error_code ec;
  const auto n = std::filesystem::file_size(path, ec);
  if (ec) throw IoError(path, "stat", ec.value());
  return static_cast<std::uint64_t>(n);
}

std::string read_file(const std::string& path) {
  if (auto fp = failpoint::check("fs.open_read"))
    failpoint::raise(*fp, "fs.open_read", path);
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError(path, "open for reading", errno);
  std::uint64_t limit = ~std::uint64_t{0};
  if (auto fp = failpoint::check("fs.read")) {
    if (fp->mode == FailMode::kShortRead)
      limit = fp->arg;
    else
      failpoint::raise(*fp, "fs.read", path);
  }
  std::string out;
  char buf[1 << 16];
  while (out.size() < limit && is) {
    is.read(buf, static_cast<std::streamsize>(
                     std::min<std::uint64_t>(sizeof buf, limit - out.size())));
    out.append(buf, static_cast<std::size_t>(is.gcount()));
  }
  if (is.bad()) throw IoError(path, "read", errno);
  return out;
}

namespace {
void write_stream(const std::string& path, std::string_view bytes,
                  std::ios::openmode mode) {
  std::ofstream os(path, std::ios::binary | mode);
  if (!os) throw IoError(path, "open for writing", errno);
  std::uint64_t limit = bytes.size();
  std::optional<FailMode> after;
  if (auto fp = failpoint::check("fs.write")) {
    switch (fp->mode) {
      case FailMode::kShortWrite:
      case FailMode::kTornWrite:
        limit = std::min<std::uint64_t>(fp->arg, bytes.size());
        after = fp->mode;
        break;
      default:
        failpoint::raise(*fp, "fs.write", path);
    }
  }
  os.write(bytes.data(), static_cast<std::streamsize>(limit));
  os.flush();
  if (!os) throw IoError(path, "write", errno);
  os.close();
  if (after == FailMode::kShortWrite) throw IoError(path, "write", ENOSPC);
  if (after == FailMode::kTornWrite) throw FailpointAbort("fs.write");
}
}  // namespace

void atomic_write_file(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  if (auto fp = failpoint::check("fs.open_write"))
    failpoint::raise(*fp, "fs.open_write", tmp);
  write_stream(tmp, bytes, std::ios::trunc);
  if (auto fp = failpoint::check("fs.fsync"))
    failpoint::raise(*fp, "fs.fsync", tmp);
  if (auto fp = failpoint::check("fs.rename"))
    failpoint::raise(*fp, "fs.rename", path);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) throw IoError(path, "rename into place", ec.value());
}

void append_file(const std::string& path, std::string_view bytes, bool sync,
                 std::uint64_t* fsync_ns) {
  if (fsync_ns != nullptr) *fsync_ns = 0;
  if (auto fp = failpoint::check("fs.open_append"))
    failpoint::raise(*fp, "fs.open_append", path);
  if (!file_exists(path)) throw IoError(path, "open for append", ENOENT);
  write_stream(path, bytes, std::ios::app);
  if (sync) {
    if (auto fp = failpoint::check("fs.fsync"))
      failpoint::raise(*fp, "fs.fsync", path);
  }
}

void truncate_file(const std::string& path, std::uint64_t size) {
  if (auto fp = failpoint::check("fs.truncate"))
    failpoint::raise(*fp, "fs.truncate", path);
  std::error_code ec;
  std::filesystem::resize_file(path, size, ec);
  if (ec) throw IoError(path, "truncate", ec.value());
}

void remove_file(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) throw IoError(path, "remove", ec.value());
}

#endif  // TREELAB_HAVE_POSIX_FS
}  // namespace treelab::util
