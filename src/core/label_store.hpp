// LabelStore — a versioned on-disk container for a labeling.
//
// Labels are meant to be *shipped*: computed once centrally, then handed to
// the nodes/devices/processes that will answer queries locally. LabelStore
// is the wire format for that hand-off: a magic/version header, the scheme
// name and its scheme-wide parameters (k, eps, ...) as strings, then
// length-prefixed label bit strings. Loading validates the header and every
// length field and throws std::runtime_error on any corruption.
//
// The format is independent of how the labels are stored in memory: the
// span<BitVec> and LabelArena save() overloads produce byte-identical
// files, and load()/load_arena() read the same files into either
// representation. Label payloads are streamed in bulk (word buffer <->
// byte buffer), not bit by bit.
//
// Two container versions coexist:
//   * version 1 — compact: each label is a length-prefixed byte string
//     (ceil(bits/8) bytes). The shipping format.
//   * version 2 — mappable: a directory of bit lengths up front, then one
//     8-byte-aligned word buffer holding every label word-aligned and
//     zero-padded, i.e. LabelArena's in-memory layout verbatim. ~1.5% larger
//     on average (word padding), but open_mapped() can mmap it and serve
//     BitSpan views straight out of the page cache (bits::MappedArena).
// load()/load_arena() accept both; open_mapped() falls back to streamed
// load_arena() whenever zero-copy is impossible.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bits/bitvec.hpp"
#include "bits/label_arena.hpp"
#include "bits/mapped_arena.hpp"

namespace treelab::core {

class LabelStore {
 public:
  struct Loaded {
    std::string scheme;               ///< e.g. "fgnw", "kdistance"
    std::string params;               ///< e.g. "k=4"; scheme-defined
    std::vector<bits::BitVec> labels; ///< indexed by node id
  };

  /// Like Loaded, with the labels pooled into one arena — the serving-side
  /// representation (views, no per-label allocations).
  struct LoadedArena {
    std::string scheme;
    std::string params;
    bits::LabelArena labels;
  };

  /// Writes all labels with the given scheme tag and parameter string.
  static void save(std::ostream& os, std::string_view scheme,
                   std::span<const bits::BitVec> labels,
                   std::string_view params = {});

  /// Same format, streamed straight out of a pooled arena.
  static void save(std::ostream& os, std::string_view scheme,
                   const bits::LabelArena& labels,
                   std::string_view params = {});

  /// Writes the version-2 mappable container: directory of bit lengths,
  /// then the arena's word buffer verbatim (8-byte-aligned in the file).
  static void save_mappable(std::ostream& os, std::string_view scheme,
                            const bits::LabelArena& labels,
                            std::string_view params = {});

  /// Parses a container written by save() or save_mappable(). Throws
  /// std::runtime_error on bad magic, unsupported version, or
  /// truncated/oversized fields.
  [[nodiscard]] static Loaded load(std::istream& is);

  /// Same validation, loading the labels into a pooled arena.
  [[nodiscard]] static LoadedArena load_arena(std::istream& is);

  /// Like LoadedArena, with the labels possibly served zero-copy from an
  /// mmap'ed file — the serving-side entry point.
  struct MappedLoaded {
    std::string scheme;
    std::string params;
    bits::MappedArena labels;
  };

  /// Opens a label file for serving: a version-2 container on a mappable
  /// platform is mmap'ed (labels.mapped() == true, no payload copy); any
  /// other file — version 1, or when mapping fails — is streamed through
  /// load_arena() into owned memory. Same validation and errors as
  /// load_arena() in the fallback; a mappable open validates the header and
  /// directory and bounds the word buffer against the file size.
  [[nodiscard]] static MappedLoaded open_mapped(const std::string& path);

 private:
  static constexpr char kMagic[4] = {'T', 'L', 'A', 'B'};
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::uint32_t kVersionMappable = 2;
};

}  // namespace treelab::core
