// LabelStore — a versioned on-disk container for a labeling.
//
// Labels are meant to be *shipped*: computed once centrally, then handed to
// the nodes/devices/processes that will answer queries locally. LabelStore
// is the wire format for that hand-off: a magic/version header, the scheme
// name and its scheme-wide parameters (k, eps, ...) as strings, then
// length-prefixed label bit strings. Loading validates the header and every
// length field and throws std::runtime_error on any corruption.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bits/bitvec.hpp"

namespace treelab::core {

class LabelStore {
 public:
  struct Loaded {
    std::string scheme;               ///< e.g. "fgnw", "kdistance"
    std::string params;               ///< e.g. "k=4"; scheme-defined
    std::vector<bits::BitVec> labels; ///< indexed by node id
  };

  /// Writes all labels with the given scheme tag and parameter string.
  static void save(std::ostream& os, std::string_view scheme,
                   std::span<const bits::BitVec> labels,
                   std::string_view params = {});

  /// Parses a container written by save(). Throws std::runtime_error on
  /// bad magic, unsupported version, or truncated/oversized fields.
  [[nodiscard]] static Loaded load(std::istream& is);

 private:
  static constexpr char kMagic[4] = {'T', 'L', 'A', 'B'};
  static constexpr std::uint32_t kVersion = 1;
};

}  // namespace treelab::core
