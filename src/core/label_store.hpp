// LabelStore — a versioned on-disk container for a labeling.
//
// Labels are meant to be *shipped*: computed once centrally, then handed to
// the nodes/devices/processes that will answer queries locally. LabelStore
// is the wire format for that hand-off: a magic/version header, the scheme
// name and its scheme-wide parameters (k, eps, ...) as strings, then
// length-prefixed label bit strings. Loading validates the header and every
// length field and throws std::runtime_error on any corruption.
//
// The format is independent of how the labels are stored in memory: the
// span<BitVec> and LabelArena save() overloads produce byte-identical
// files, and load()/load_arena() read the same files into either
// representation. Label payloads are streamed in bulk (word buffer <->
// byte buffer), not bit by bit.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bits/bitvec.hpp"
#include "bits/label_arena.hpp"

namespace treelab::core {

class LabelStore {
 public:
  struct Loaded {
    std::string scheme;               ///< e.g. "fgnw", "kdistance"
    std::string params;               ///< e.g. "k=4"; scheme-defined
    std::vector<bits::BitVec> labels; ///< indexed by node id
  };

  /// Like Loaded, with the labels pooled into one arena — the serving-side
  /// representation (views, no per-label allocations).
  struct LoadedArena {
    std::string scheme;
    std::string params;
    bits::LabelArena labels;
  };

  /// Writes all labels with the given scheme tag and parameter string.
  static void save(std::ostream& os, std::string_view scheme,
                   std::span<const bits::BitVec> labels,
                   std::string_view params = {});

  /// Same format, streamed straight out of a pooled arena.
  static void save(std::ostream& os, std::string_view scheme,
                   const bits::LabelArena& labels,
                   std::string_view params = {});

  /// Parses a container written by save(). Throws std::runtime_error on
  /// bad magic, unsupported version, or truncated/oversized fields.
  [[nodiscard]] static Loaded load(std::istream& is);

  /// Same validation, loading the labels into a pooled arena.
  [[nodiscard]] static LoadedArena load_arena(std::istream& is);

 private:
  static constexpr char kMagic[4] = {'T', 'L', 'A', 'B'};
  static constexpr std::uint32_t kVersion = 1;
};

}  // namespace treelab::core
