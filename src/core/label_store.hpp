// LabelStore — a versioned on-disk container for a labeling.
//
// Labels are meant to be *shipped*: computed once centrally, then handed to
// the nodes/devices/processes that will answer queries locally. LabelStore
// is the wire format for that hand-off: a magic/version header, the scheme
// name and its scheme-wide parameters (k, eps, ...) as strings, then
// length-prefixed label bit strings. Loading validates the header and every
// length field and throws std::runtime_error on any corruption.
//
// The format is independent of how the labels are stored in memory: the
// span<BitVec> and LabelArena save() overloads produce byte-identical
// files, and load()/load_arena() read the same files into either
// representation. Label payloads are streamed in bulk (word buffer <->
// byte buffer), not bit by bit.
//
// Two container versions coexist:
//   * version 1 — compact: each label is a length-prefixed byte string
//     (ceil(bits/8) bytes). The shipping format.
//   * version 2 — mappable: a directory of bit lengths up front, then one
//     8-byte-aligned word buffer holding every label word-aligned and
//     zero-padded, i.e. LabelArena's in-memory layout verbatim. ~1.5% larger
//     on average (word padding), but open_mapped() can mmap it and serve
//     BitSpan views straight out of the page cache (bits::MappedArena).
// load()/load_arena() accept both; open_mapped() falls back to streamed
// load_arena() whenever zero-copy is impossible.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bits/bitvec.hpp"
#include "bits/label_arena.hpp"
#include "bits/mapped_arena.hpp"

namespace treelab::core {

/// One tree-shape edit, as recorded in a delta's edit log. The log is the
/// shape half of a delta: label payloads say *what* changed, the log says
/// *why* — consumers that mirror the tree (replicas, replay tooling, the
/// edit fuzzer's repro files) apply it to their own shape copy.
struct LabelEdit {
  enum class Kind : std::uint8_t {
    kInsertLeaf = 0,  ///< a = parent id, b = edge weight (new id = count)
    kDeleteLeaf = 1,  ///< a = leaf id
    kDetach = 2,      ///< a = subtree root id
    kAttach = 3,      ///< a = new parent id, b = edge weight
    kSetWeight = 4,   ///< a = node id, b = new edge weight
    kCompact = 5,     ///< ids renumbered (the delta's dropped runs say how)
  };
  Kind kind = Kind::kInsertLeaf;
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  friend bool operator==(const LabelEdit&, const LabelEdit&) = default;
};

/// A maximal run of consecutive ids [first, first + count).
struct IdRun {
  std::uint64_t first = 0;
  std::uint64_t count = 0;

  friend bool operator==(const IdRun&, const IdRun&) = default;
};

/// Compresses a sorted, duplicate-free id list into maximal IdRuns.
[[nodiscard]] std::vector<IdRun> id_runs(
    const std::vector<std::uint64_t>& sorted_ids);

/// A label delta: everything needed to turn the base-epoch labeling (the
/// one whose length directory hashes to `base_lens_hash`) into the current
/// one. Applied in two steps: first the `dropped` base ids are removed and
/// the survivors renumbered densely (order-preserving — compact()'s remap),
/// then every id in `dirty` (new-id space) takes its payload label; ids not
/// dropped and not dirty keep their base bits at their shifted position.
/// Dropped ids stay run-compressed (a compaction can drop half the tree;
/// runs keep the delta, and every allocation parsing it, proportional to
/// the *change*); dirty ids are expanded (each one carries a payload, so
/// the list is payload-bounded anyway). Produced by
/// IncrementalRelabeler::make_delta(), shipped as the LabelStore version-3
/// container, applied by LabelStore::apply_delta /
/// serve::ForestIndex::apply_delta.
struct LabelDelta {
  std::string scheme;
  std::string params;
  std::uint64_t base_count = 0;     ///< labels in the base arena
  std::uint64_t new_count = 0;      ///< labels after application
  std::uint64_t base_lens_hash = 0; ///< LabelStore::lens_hash of the base
  /// Epoch chain: base_chain is the chain value of the epoch this delta
  /// applies to (lens_hash of the arena for a freshly hand-off'ed base;
  /// the previous delta's new_chain afterwards); new_chain =
  /// LabelStore::chain_hash(base_chain, *this). The chain is
  /// content-derived, so a skipped or reordered delta is rejected even
  /// when the labelings' length directories happen to collide.
  std::uint64_t base_chain = 0;
  std::uint64_t new_chain = 0;
  std::vector<IdRun> dropped;       ///< base-id runs, sorted, disjoint
  std::vector<std::uint64_t> dirty; ///< new-space ids, sorted ascending
  bits::LabelArena payload;         ///< payload[i] = label of dirty[i]
  std::vector<LabelEdit> edits;     ///< shape edits, in order

  /// Ids dropped (sum of run lengths).
  [[nodiscard]] std::uint64_t dropped_count() const noexcept {
    std::uint64_t n = 0;
    for (const IdRun& r : dropped) n += r.count;
    return n;
  }
};

class LabelStore {
 public:
  struct Loaded {
    std::string scheme;               ///< e.g. "fgnw", "kdistance"
    std::string params;               ///< e.g. "k=4"; scheme-defined
    std::vector<bits::BitVec> labels; ///< indexed by node id
  };

  /// Like Loaded, with the labels pooled into one arena — the serving-side
  /// representation (views, no per-label allocations).
  struct LoadedArena {
    std::string scheme;
    std::string params;
    bits::LabelArena labels;
  };

  /// Writes all labels with the given scheme tag and parameter string.
  static void save(std::ostream& os, std::string_view scheme,
                   std::span<const bits::BitVec> labels,
                   std::string_view params = {});

  /// Same format, streamed straight out of a pooled arena.
  static void save(std::ostream& os, std::string_view scheme,
                   const bits::LabelArena& labels,
                   std::string_view params = {});

  /// Writes the version-2 mappable container: directory of bit lengths,
  /// then the arena's word buffer verbatim (8-byte-aligned in the file).
  static void save_mappable(std::ostream& os, std::string_view scheme,
                            const bits::LabelArena& labels,
                            std::string_view params = {});

  /// Parses a container written by save() or save_mappable(). Throws
  /// std::runtime_error on bad magic, unsupported version, or
  /// truncated/oversized fields.
  [[nodiscard]] static Loaded load(std::istream& is);

  /// Same validation, loading the labels into a pooled arena.
  [[nodiscard]] static LoadedArena load_arena(std::istream& is);

  /// Like LoadedArena, with the labels possibly served zero-copy from an
  /// mmap'ed file — the serving-side entry point.
  struct MappedLoaded {
    std::string scheme;
    std::string params;
    bits::MappedArena labels;
  };

  /// Opens a label file for serving: a version-2 container on a mappable
  /// platform is mmap'ed (labels.mapped() == true, no payload copy); any
  /// other file — version 1, or when mapping fails — is streamed through
  /// load_arena() into owned memory. Same validation and errors as
  /// load_arena() in the fallback; a mappable open validates the header and
  /// directory and bounds the word buffer against the file size.
  [[nodiscard]] static MappedLoaded open_mapped(const std::string& path);

  // --- version-3 delta container --------------------------------------------

  /// Structural fingerprint of a labeling: FNV-1a over the label count and
  /// every label's exact bit length. O(n) with no payload reads (cheap even
  /// on an mmap'ed arena — the word buffer is never touched), so
  /// apply_delta can verify a delta targets the right base without paging
  /// the labels in. Identical for LabelArena and MappedArena views of the
  /// same labeling.
  [[nodiscard]] static std::uint64_t lens_hash(const bits::LabelArena& a);
  [[nodiscard]] static std::uint64_t lens_hash(const bits::MappedArena& a);

  /// The successor epoch-chain value of applying `d` to an epoch whose
  /// chain value is `base_chain`: FNV-1a over the chain value and the
  /// delta's content (counts, dropped runs, dirty ids, payload bits).
  /// Unlike lens_hash this folds the payload *contents*, so two deltas
  /// producing length-identical labelings still chain apart.
  [[nodiscard]] static std::uint64_t chain_hash(std::uint64_t base_chain,
                                                const LabelDelta& d);

  /// Writes `d` as a version-3 delta container (see README for the byte
  /// layout): header, dropped/dirty id runs, dirty label length directory,
  /// word-aligned payload, edit log, trailing FNV-1a checksum of the whole
  /// delta. Throws std::invalid_argument on a structurally invalid delta
  /// (unsorted runs, payload/dirty size mismatch).
  static void save_delta(std::ostream& os, const LabelDelta& d);

  /// Parses a version-3 container. Every field is validated — bad magic or
  /// version, unsorted/overlapping/out-of-range runs, implausible counts,
  /// truncation anywhere, and checksum mismatch all throw
  /// std::runtime_error; corrupt input never reads out of bounds or makes
  /// count-sized allocations.
  [[nodiscard]] static LabelDelta load_delta(std::istream& is);

  /// Applies `d` to `base` copy-on-write: returns a fresh owned arena, the
  /// base (possibly an mmap'ed file serving concurrent queries) is never
  /// written. Validates that the delta targets this base (count + lens
  /// hash) and that the delta is self-consistent (every id past the
  /// survivor range carries a payload); throws std::runtime_error
  /// otherwise.
  [[nodiscard]] static bits::LabelArena apply_delta(
      const bits::MappedArena& base, const LabelDelta& d);

  // --- crash-safe file writes -----------------------------------------------

  /// Serializes the labeling (save_mappable() when `mappable`, else the
  /// compact save()) and writes `path` crash-safely: the bytes go to a
  /// temp file that is fsync'd and atomically renamed over `path`, so a
  /// crash mid-save leaves either the old file or the new one, never a
  /// torn mix. I/O failures throw util::IoError (path + errno).
  static void save_file(const std::string& path, std::string_view scheme,
                        const bits::LabelArena& labels,
                        std::string_view params = {}, bool mappable = true);

  /// save_delta() with the same temp + fsync + rename discipline.
  static void save_delta_file(const std::string& path, const LabelDelta& d);

  /// Re-keys `d` to chain from `base_chain`: overwrites d.base_chain and
  /// recomputes d.new_chain with chain_hash(). Sound because the chain is
  /// content-derived — the delta's effect is untouched, only its position
  /// in an epoch chain moves. This is what a producer does when the
  /// consumer's chain was rebased under it (a journal reset after a
  /// crash, or a replica that reloaded a full file and restarted its
  /// chain at lens_hash).
  static void rechain(LabelDelta& d, std::uint64_t base_chain);

 private:
  static constexpr char kMagic[4] = {'T', 'L', 'A', 'B'};
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::uint32_t kVersionMappable = 2;
  static constexpr std::uint32_t kVersionDelta = 3;
};

}  // namespace treelab::core
