#include "core/universal_tree.hpp"

#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/level_ancestor_scheme.hpp"
#include "tree/generators.hpp"

namespace treelab::core {

using tree::NodeId;
using tree::Tree;

namespace {

/// Kuhn's bipartite matching: can every pattern child be matched to a
/// distinct host child, using the precomputed embed table?
bool match_children(const std::vector<std::vector<char>>& can,
                    std::span<const NodeId> hcs, std::span<const NodeId> pcs) {
  if (pcs.size() > hcs.size()) return false;
  std::vector<int> match(hcs.size(), -1);
  std::vector<char> used;
  // can[h][p] indexed by host node id / pattern node id.
  std::function<bool(std::size_t)> augment = [&](std::size_t pi) {
    for (std::size_t hi = 0; hi < hcs.size(); ++hi) {
      if (used[hi] || !can[static_cast<std::size_t>(hcs[hi])]
                          [static_cast<std::size_t>(pcs[pi])])
        continue;
      used[hi] = 1;
      if (match[hi] < 0 || augment(static_cast<std::size_t>(match[hi]))) {
        match[hi] = static_cast<int>(pi);
        return true;
      }
    }
    return false;
  };
  for (std::size_t pi = 0; pi < pcs.size(); ++pi) {
    used.assign(hcs.size(), 0);
    if (!augment(pi)) return false;
  }
  return true;
}

}  // namespace

bool embeds(const Tree& host, const Tree& pattern) {
  const auto hn = static_cast<std::size_t>(host.size());
  const auto pn = static_cast<std::size_t>(pattern.size());
  // can[h][p]: pattern subtree rooted at p embeds with root mapped to h.
  std::vector<std::vector<char>> can(hn, std::vector<char>(pn, 0));
  // Process both trees bottom-up (children before parents).
  const auto horder = host.preorder();
  const auto porder = pattern.preorder();
  for (auto hit = horder.rbegin(); hit != horder.rend(); ++hit) {
    for (auto pit = porder.rbegin(); pit != porder.rend(); ++pit) {
      const NodeId h = *hit, p = *pit;
      can[static_cast<std::size_t>(h)][static_cast<std::size_t>(p)] =
          match_children(can, host.children(h), pattern.children(p)) ? 1 : 0;
    }
  }
  for (NodeId h = 0; h < host.size(); ++h)
    if (can[static_cast<std::size_t>(h)][static_cast<std::size_t>(
            pattern.root())])
      return true;
  return false;
}

bool is_universal_for(const Tree& host, NodeId n) {
  for (const Tree& pat : tree::all_rooted_trees(n))
    if (!embeds(host, pat)) return false;
  return true;
}

NodeId minimal_universal_tree_size(NodeId n) {
  if (n < 1 || n > 4)
    throw std::invalid_argument(
        "minimal_universal_tree_size: feasible only for n <= 4");
  for (NodeId s = n; s <= 10; ++s)
    for (const Tree& host : tree::all_rooted_trees(s))
      if (is_universal_for(host, n)) return s;
  throw std::logic_error("minimal universal tree larger than search bound");
}

UniversalFromLabelsResult universal_tree_from_parent_labels(NodeId max_n) {
  UniversalFromLabelsResult out;
  // label bits -> parent label bits ("" for roots); keys are the vertices of
  // the Lemma 3.6 functional graph.
  std::map<std::string, std::string> edge;
  for (NodeId n = 1; n <= max_n; ++n) {
    for (const Tree& t : tree::all_rooted_trees(n)) {
      ++out.trees_labeled;
      const LevelAncestorScheme s(t);
      for (NodeId v = 0; v < t.size(); ++v) {
        const auto& l = s.label(v);
        out.max_label_bits = std::max(out.max_label_bits, l.size());
        const auto p = LevelAncestorScheme::parent(l);
        const std::string key = l.to_string();
        const std::string val = p ? p->to_string() : std::string();
        auto [it, inserted] = edge.emplace(key, val);
        if (!inserted && it->second != val)
          throw std::logic_error("parent labeling inconsistent");
      }
    }
  }
  out.num_labels = edge.size();
  // The graph is functional; detect cycles by walking each chain (they
  // cannot occur with LevelAncestorScheme because depth strictly decreases,
  // but the Lemma 3.6 construction handles them by duplication, so count).
  std::size_t extra = 0;
  for (const auto& [key, val] : edge) {
    std::string cur = key;
    std::size_t steps = 0;
    while (!cur.empty() && steps <= edge.size()) {
      const auto it = edge.find(cur);
      if (it == edge.end()) break;  // parent label outside the family: leaf
      cur = it->second;
      ++steps;
    }
    if (steps > edge.size()) {
      out.had_cycles = true;
      ++extra;  // duplication would double the component; approximate count
    }
  }
  out.universal_size = edge.size() + 1 + (out.had_cycles ? edge.size() : 0);
  (void)extra;
  return out;
}

}  // namespace treelab::core
