// DeltaJournal — crash-safe persistence for a delta-maintained labeling.
//
// The v3 delta stream with its epoch chain (IncrementalRelabeler ->
// LabelStore::save_delta -> apply_delta) is the replication log of the
// serving design; this class makes that log durable. On disk a journaled
// labeling is a *pair* of files:
//
//   <base>          full LabelStore container: the base epoch
//   <base>.journal  header + append-only framed v3 delta records
//
// Journal layout (all integers little-endian):
//   header:  "TLJN" | u32 version=1 | u64 base_chain | u64 base_lens_hash
//            | u64 fnv (over the 24 bytes before it)
//   record*: "TLRC" | u32 reserved=0 | u64 payload_len | u64 payload_fnv
//            | payload  (payload = one LabelStore v3 delta container)
//
// Durability discipline:
//  * append(d) writes the frame and fsyncs (JournalOptions::sync) before
//    the in-memory epoch advances; a failed append poisons the object
//    (the file may now end mid-frame) — reopen() is the only repair path.
//  * Full files (the base, the journal header) are only ever written via
//    util::atomic_write_file (temp + fsync + rename): a crash leaves the
//    old file or the new one, never a torn mix.
//  * checkpoint() folds the chain into a fresh base, then resets the
//    journal — two atomic renames. A crash between them leaves a new
//    base under the old journal; open() detects that by lens hash and
//    resets the journal, discarding exactly the records already folded
//    into the base.
//
// Recovery (open()) replays records in order; each must frame-check
// (magic, length bound, payload FNV), parse as a v3 delta, and chain from
// the running epoch. The first record failing any check is a torn tail:
// the file is truncated at the last good record boundary and replay
// stops. Recovery therefore always lands on the longest committed prefix
// — the "last committed epoch" the crash-recovery fuzzer asserts
// bit-identically against its from-scratch oracle.
//
// Epoch chain across folds: a fresh or reset journal starts its chain at
// lens_hash(base) (the same rebase rule as a full-file hand-off);
// checkpoint() *preserves* the running chain in the new header, so a
// producer shipping deltas never notices a clean fold. Only crash
// recovery rebases — a producer sees chain() != its epoch and re-keys
// its pending delta with LabelStore::rechain().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "bits/label_arena.hpp"
#include "core/label_store.hpp"
#include "util/thread_annotations.hpp"

namespace treelab::core {

struct JournalOptions {
  /// Fold the chain into a fresh base once the journal holds at least
  /// this many records (auto_checkpoint) — bounds replay work on open.
  std::uint64_t checkpoint_records = 64;
  /// ... or once the journal file exceeds this many bytes.
  std::uint64_t checkpoint_bytes = std::uint64_t{64} << 20;
  /// Checkpoint automatically inside append()/open() when due.
  bool auto_checkpoint = true;
  /// fsync every append before it counts as committed. Turning this off
  /// trades the append-durability guarantee for speed (bulk loads,
  /// tests); recovery correctness is unaffected.
  bool sync = true;
};

/// What open() found and did. A reset/truncation is not an error — it is
/// recovery working as designed — but callers (CLI, ops) want to see it.
struct JournalRecovery {
  std::uint64_t records_replayed = 0;
  std::uint64_t bytes_truncated = 0;  ///< torn tail dropped from the journal
  bool journal_reset = false;  ///< journal missing/stale -> fresh (chain rebased)
  bool created = false;        ///< create() wrote a brand-new pair
};

struct JournalStats {
  std::uint64_t appends = 0;
  std::uint64_t checkpoints = 0;  ///< explicit + automatic
};

// Thread-safety: the journal carries its own internal mutex (mu_). The
// mutating API (append/checkpoint) and the scalar accessors lock it; a
// Tail cursor never touches it — cursors read the journal *file* fenced
// by the lock-free committed/generation publication state, so a tailing
// replicator thread cannot block (or be blocked by) the appender. Moves
// are still allowed (the mutex lives behind a stable unique_ptr) but, as
// with any non-copyable resource owner, must not race other access.
class DeltaJournal {
 public:
  DeltaJournal(DeltaJournal&&) = default;
  DeltaJournal& operator=(DeltaJournal&&) = default;
  DeltaJournal(const DeltaJournal&) = delete;
  DeltaJournal& operator=(const DeltaJournal&) = delete;

  /// Starts a journaled labeling at `base_path`: writes the base file
  /// (atomic, mappable container) and a fresh journal, replacing any
  /// existing pair. Chain starts at lens_hash(initial.labels).
  [[nodiscard]] static DeltaJournal create(const std::string& base_path,
                                           const LabelStore::LoadedArena& initial,
                                           JournalOptions opt = {});

  /// Opens and recovers an existing pair (see the recovery rules above).
  /// Throws util::IoError if the base cannot be read, std::runtime_error
  /// if the base container or the journal *header* is corrupt (headers
  /// are atomically written, so a bad one is real corruption, not a
  /// crash artifact). Torn record tails are truncated, not errors.
  [[nodiscard]] static DeltaJournal open(const std::string& base_path,
                                         JournalOptions opt = {});

  /// The journal file path for a given base path ("<base>.journal").
  [[nodiscard]] static std::string journal_path(const std::string& base_path);

  /// Appends one delta: it must match the scheme/params and chain from
  /// chain(). The frame is on disk (fsync'd when opt.sync) before the
  /// in-memory labeling advances. Any I/O failure (or simulated crash)
  /// poisons the journal — healthy() turns false and further appends
  /// throw std::logic_error; reopen with open() to recover. Integrity
  /// failures (wrong chain/scheme/base) throw without writing anything
  /// and do NOT poison. May auto-checkpoint afterwards.
  void append(const LabelDelta& d) TREELAB_EXCLUDES(*mu_);

  /// Folds the journal into a fresh base file and resets the journal,
  /// preserving the epoch chain. Poisons on I/O failure like append().
  void checkpoint() TREELAB_EXCLUDES(*mu_);

  [[nodiscard]] bool checkpoint_due() const TREELAB_EXCLUDES(*mu_);

  [[nodiscard]] const std::string& base_path() const noexcept {
    return base_path_;
  }
  [[nodiscard]] const std::string& scheme() const noexcept { return scheme_; }
  [[nodiscard]] const std::string& params() const noexcept { return params_; }
  /// The labeling at the last committed epoch. Owner-thread only: the
  /// returned reference aliases state the next append()/checkpoint()
  /// mutates, so it must not be held across either — concurrent readers
  /// use to_loaded()/snapshot_plan() (which copy under the lock) instead.
  /// Justified analysis escape 1 of 2 (see README "Static analysis"): a
  /// by-reference accessor cannot hand back a lock with the data.
  [[nodiscard]] const bits::LabelArena& labels() const noexcept
      TREELAB_NO_THREAD_SAFETY_ANALYSIS {
    return labels_;
  }
  /// Current epoch-chain value (what the next delta's base_chain must be).
  [[nodiscard]] std::uint64_t chain() const TREELAB_EXCLUDES(*mu_);
  [[nodiscard]] std::uint64_t record_count() const TREELAB_EXCLUDES(*mu_);
  [[nodiscard]] std::uint64_t journal_bytes() const TREELAB_EXCLUDES(*mu_);
  [[nodiscard]] bool healthy() const TREELAB_EXCLUDES(*mu_);
  [[nodiscard]] const JournalRecovery& recovery() const noexcept {
    return recovery_;  // immutable after create()/open()
  }
  [[nodiscard]] JournalStats stats() const TREELAB_EXCLUDES(*mu_);

  /// Copy of the committed labeling in hand-off form (e.g. to seed a
  /// ForestIndex entry). Taken under the internal lock: always one
  /// committed epoch, never a mid-append mix.
  [[nodiscard]] LabelStore::LoadedArena to_loaded() const
      TREELAB_EXCLUDES(*mu_);

  /// A consistent (labeling copy, chain) pair taken under one lock hold —
  /// the leader side of snapshot catch-up. The caller then plans a Tail
  /// with tail_from(plan.chain): if a checkpoint folds the journal in
  /// between, tail_from reports nullopt and the caller simply re-plans.
  struct SnapshotPlan {
    LabelStore::LoadedArena loaded;
    std::uint64_t chain = 0;
  };
  [[nodiscard]] SnapshotPlan snapshot_plan() const TREELAB_EXCLUDES(*mu_);

  // --- tail cursors (the replication feed) ----------------------------------
  //
  // A Tail reads committed records out of the journal *file*, in epoch
  // order, from another thread while the owner keeps appending. The commit
  // boundary is published atomically after each successful append — a
  // record whose bytes are mid-write (or written but not yet committed) is
  // never surfaced, so a tailing replicator ships exactly the records a
  // crash-recovery open() would replay. checkpoint() (and crash-recovery
  // resets) replace the journal file; a cursor created before that returns
  // kLost from then on — the reader is "too far behind" and must re-plan
  // from a fresh snapshot of the labeling.

  /// What the shared publication state says about the cursor's position.
  enum class TailStatus : std::uint8_t {
    kRecord = 0,    ///< one committed record was read into `out`
    kCaughtUp = 1,  ///< no committed record past the cursor (yet)
    kLost = 2,      ///< the journal was reset/folded under the cursor
  };

  class Tail {
   public:
    /// Reads the next committed record. On kRecord, `out` holds the delta
    /// and chain() has advanced to its new_chain; on kCaughtUp/kLost, `out`
    /// is untouched. Never blocks, never throws on torn bytes (a frame
    /// that fails any check while inside the committed boundary means the
    /// file was replaced under the cursor: kLost).
    [[nodiscard]] TailStatus next(LabelDelta& out);
    /// Chain value the cursor sits at (base_chain of the next record).
    [[nodiscard]] std::uint64_t chain() const noexcept { return chain_; }
    [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }
    /// Committed records this cursor has consumed, including the ones
    /// tail_from() skipped to reach its starting epoch. Compared against
    /// the owner's record_count() this is the cursor's replication lag in
    /// records — the `net.server.subscriber_lag_records` gauge.
    [[nodiscard]] std::uint64_t records_read() const noexcept {
      return records_read_;
    }

   private:
    friend class DeltaJournal;
    struct Shared;
    std::string path_;
    std::shared_ptr<const Shared> shared_;
    std::uint64_t generation_ = 0;
    std::uint64_t offset_ = 0;
    std::uint64_t chain_ = 0;
    std::uint64_t records_read_ = 0;
  };

  /// A cursor positioned at the first committed record whose base_chain is
  /// `from_chain` (from_chain == chain() gives an empty cursor at the
  /// committed end). nullopt when that epoch is not in the journal — the
  /// reader is behind the last fold and must catch up from a full
  /// snapshot. Safe to call (and to use the cursor) concurrently with
  /// append() from the owning thread: the walk reads only the journal
  /// file and the lock-free publication state, never mu_-guarded members
  /// — hence EXCLUDES, the cursor plan can never deadlock the appender.
  [[nodiscard]] std::optional<Tail> tail_from(std::uint64_t from_chain) const
      TREELAB_EXCLUDES(*mu_);

 private:
  DeltaJournal() = default;

  /// checkpoint() body; split out so append()'s auto-checkpoint (and
  /// open()'s post-replay fold) run it under the already-held lock
  /// instead of self-deadlocking through the public wrapper.
  void checkpoint_locked() TREELAB_REQUIRES(*mu_);
  [[nodiscard]] bool checkpoint_due_locked() const TREELAB_REQUIRES(*mu_) {
    return record_count_ > 0 && (record_count_ >= opt_.checkpoint_records ||
                                 journal_bytes_ >= opt_.checkpoint_bytes);
  }

  /// Atomically writes a fresh journal holding only a header with
  /// base_chain = chain_ and base_lens_hash = lens_hash(labels_).
  void write_fresh_journal() TREELAB_REQUIRES(*mu_);
  /// labels_ <- apply_delta(labels_, d); validates count + lens hash.
  void apply_in_memory(const LabelDelta& d) TREELAB_REQUIRES(*mu_);

  /// Publishes the commit boundary to cursors (append: committed bytes
  /// grow; checkpoint/reset: generation bumps, boundary rewinds).
  void publish_committed() noexcept TREELAB_REQUIRES(*mu_);

  // Heap-held (not inline) so the defaulted moves keep working — tests
  // and the CLI move journals into std::optional slots. The pointer is
  // set once at construction and never reseated.
  std::unique_ptr<util::Mutex> mu_ = std::make_unique<util::Mutex>();
  std::string base_path_;
  std::string journal_path_;
  JournalOptions opt_;
  std::string scheme_;
  std::string params_;
  bits::LabelArena labels_ TREELAB_GUARDED_BY(*mu_);
  std::uint64_t chain_ TREELAB_GUARDED_BY(*mu_) = 0;
  std::uint64_t record_count_ TREELAB_GUARDED_BY(*mu_) = 0;
  std::uint64_t journal_bytes_ TREELAB_GUARDED_BY(*mu_) = 0;
  bool healthy_ TREELAB_GUARDED_BY(*mu_) = true;
  JournalRecovery recovery_;  ///< written before hand-off, then immutable
  JournalStats stats_ TREELAB_GUARDED_BY(*mu_);
  std::shared_ptr<Tail::Shared> tail_shared_;  ///< set once, pointee atomic
};

}  // namespace treelab::core
