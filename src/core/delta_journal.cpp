#include "core/delta_journal.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "bits/mapped_arena.hpp"
#include "obs/metrics.hpp"
#include "util/fs.hpp"
#include "util/hash.hpp"
#include "util/io_error.hpp"

namespace treelab::core {

using util::fnv1a;

namespace {

// Registry references resolved once (the registry never deletes owned
// metrics). Journal metrics are process-wide: every instance feeds the
// same histograms, and the size gauges track the most recently mutated
// journal — one journal per serving process in practice.
struct JournalMetrics {
  obs::Histogram& append_ns;
  obs::Histogram& fsync_ns;
  obs::Histogram& checkpoint_ns;
  obs::Counter& appends;
  obs::Counter& checkpoints;
  obs::Gauge& records;
  obs::Gauge& bytes;
  static JournalMetrics& get() {
    static JournalMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      return JournalMetrics{r.histogram("journal.append_ns"),
                            r.histogram("journal.fsync_ns"),
                            r.histogram("journal.checkpoint_ns"),
                            r.counter("journal.appends"),
                            r.counter("journal.checkpoints"),
                            r.gauge("journal.records"),
                            r.gauge("journal.bytes")};
    }();
    return m;
  }
};

constexpr char kJournalMagic[4] = {'T', 'L', 'J', 'N'};
constexpr char kRecordMagic[4] = {'T', 'L', 'R', 'C'};
constexpr std::uint32_t kJournalVersion = 1;
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8;
constexpr std::size_t kFrameBytes = 4 + 4 + 8 + 8;
// A single record cannot meaningfully exceed this; anything larger in a
// length field is a torn/garbage frame, not a real delta.
constexpr std::uint64_t kMaxPayload = std::uint64_t{1} << 40;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

}  // namespace

/// The cursor publication state: the commit boundary grows after each
/// successful append; a reset (checkpoint fold, recovery) bumps the
/// generation *before* the file is replaced and rewinds the boundary after,
/// so a reader can never mistake bytes of the new file for the old one —
/// any read straddling a reset sees a generation change and reports kLost.
struct DeltaJournal::Tail::Shared {
  std::atomic<std::uint64_t> committed{0};
  std::atomic<std::uint64_t> generation{0};
};

std::string DeltaJournal::journal_path(const std::string& base_path) {
  return base_path + ".journal";
}

void DeltaJournal::publish_committed() noexcept {
  if (tail_shared_ != nullptr)
    tail_shared_->committed.store(journal_bytes_, std::memory_order_release);
}

void DeltaJournal::write_fresh_journal() {
  if (tail_shared_ == nullptr)
    tail_shared_ = std::make_shared<Tail::Shared>();
  // Invalidate cursors before the file changes underneath them.
  tail_shared_->generation.fetch_add(1, std::memory_order_acq_rel);
  std::string hdr;
  hdr.reserve(kHeaderBytes);
  hdr.append(kJournalMagic, 4);
  put_u32(hdr, kJournalVersion);
  put_u64(hdr, chain_);
  put_u64(hdr, LabelStore::lens_hash(labels_));
  put_u64(hdr, fnv1a(hdr.data(), hdr.size()));
  util::atomic_write_file(journal_path_, hdr);
  record_count_ = 0;
  journal_bytes_ = hdr.size();
  publish_committed();
}

void DeltaJournal::apply_in_memory(const LabelDelta& d) {
  bits::LabelArena base = labels_;
  labels_ = LabelStore::apply_delta(bits::MappedArena::adopt(std::move(base)),
                                    d);
}

DeltaJournal DeltaJournal::create(const std::string& base_path,
                                  const LabelStore::LoadedArena& initial,
                                  JournalOptions opt) {
  DeltaJournal j;
  j.base_path_ = base_path;
  j.journal_path_ = journal_path(base_path);
  j.opt_ = opt;
  j.scheme_ = initial.scheme;
  j.params_ = initial.params;
  // Uncontended (j is local until returned) but held so the analysis sees
  // the guarded members initialized under their capability.
  const util::MutexLock lock(*j.mu_);
  j.labels_ = initial.labels;
  LabelStore::save_file(base_path, j.scheme_, j.labels_, j.params_);
  j.chain_ = LabelStore::lens_hash(j.labels_);
  j.write_fresh_journal();
  j.recovery_.created = true;
  return j;
}

DeltaJournal DeltaJournal::open(const std::string& base_path,
                                JournalOptions opt) {
  DeltaJournal j;
  j.base_path_ = base_path;
  j.journal_path_ = journal_path(base_path);
  j.opt_ = opt;
  const util::MutexLock lock(*j.mu_);  // see create()
  {
    const std::string base_bytes = util::read_file(base_path);
    std::istringstream is(base_bytes, std::ios::binary);
    LabelStore::LoadedArena la = LabelStore::load_arena(is);
    j.scheme_ = std::move(la.scheme);
    j.params_ = std::move(la.params);
    j.labels_ = std::move(la.labels);
  }
  const std::uint64_t base_hash = LabelStore::lens_hash(j.labels_);

  if (!util::file_exists(j.journal_path_)) {
    j.chain_ = base_hash;
    j.write_fresh_journal();
    j.recovery_.journal_reset = true;
    return j;
  }

  const std::string jb = util::read_file(j.journal_path_);
  if (jb.size() < kHeaderBytes ||
      std::memcmp(jb.data(), kJournalMagic, 4) != 0 ||
      get_u32(jb.data() + 4) != kJournalVersion ||
      get_u64(jb.data() + kHeaderBytes - 8) !=
          fnv1a(jb.data(), kHeaderBytes - 8))
    // Headers only ever land via atomic full-file writes, so a crash
    // cannot tear one: a bad header is real corruption.
    throw std::runtime_error("DeltaJournal: corrupt journal header in " +
                             j.journal_path_);
  const std::uint64_t hdr_chain = get_u64(jb.data() + 8);
  const std::uint64_t hdr_lens = get_u64(jb.data() + 16);

  if (hdr_lens != base_hash) {
    // The crash window inside checkpoint(): new base renamed in, journal
    // not yet reset. Every journal record is already folded into the
    // base, so the stale journal is simply replaced.
    j.chain_ = base_hash;
    j.write_fresh_journal();
    j.recovery_.journal_reset = true;
    return j;
  }

  j.chain_ = hdr_chain;
  std::size_t off = kHeaderBytes;
  std::size_t committed_end = off;
  while (off < jb.size()) {
    // Frame-check, parse, and chain-check; the first failure is the torn
    // tail — stop, truncate, done.
    if (jb.size() - off < kFrameBytes) break;
    if (std::memcmp(jb.data() + off, kRecordMagic, 4) != 0) break;
    const std::uint64_t len = get_u64(jb.data() + off + 8);
    if (len > kMaxPayload || len > jb.size() - off - kFrameBytes) break;
    const char* payload = jb.data() + off + kFrameBytes;
    if (get_u64(jb.data() + off + 16) !=
        fnv1a(payload, static_cast<std::size_t>(len)))
      break;
    LabelDelta d;
    try {
      std::istringstream ps(
          std::string(payload, static_cast<std::size_t>(len)),
          std::ios::binary);
      d = LabelStore::load_delta(ps);
    } catch (const std::runtime_error&) {
      break;
    }
    if (d.scheme != j.scheme_ || d.params != j.params_) break;
    if (d.base_chain != j.chain_) break;
    try {
      j.apply_in_memory(d);
    } catch (const std::runtime_error&) {
      break;
    }
    j.chain_ = d.new_chain;
    ++j.recovery_.records_replayed;
    off += kFrameBytes + static_cast<std::size_t>(len);
    committed_end = off;
  }
  if (committed_end < jb.size()) {
    j.recovery_.bytes_truncated = jb.size() - committed_end;
    util::truncate_file(j.journal_path_, committed_end);
  }
  j.record_count_ = j.recovery_.records_replayed;
  j.journal_bytes_ = committed_end;
  j.tail_shared_ = std::make_shared<Tail::Shared>();
  j.publish_committed();

  if (j.opt_.auto_checkpoint && j.checkpoint_due_locked())
    j.checkpoint_locked();
  return j;
}

void DeltaJournal::append(const LabelDelta& d) {
  const util::MutexLock lock(*mu_);
  if (!healthy_)
    throw std::logic_error(
        "DeltaJournal: poisoned by a failed append/checkpoint; reopen to "
        "recover");
  if (d.scheme != scheme_ || d.params != params_)
    throw std::invalid_argument("DeltaJournal: delta scheme/params mismatch");
  if (d.base_chain != chain_)
    throw std::runtime_error(
        "DeltaJournal: delta does not chain from the journal epoch (rebase "
        "with LabelStore::rechain)");
  if (d.new_chain != LabelStore::chain_hash(d.base_chain, d))
    throw std::runtime_error("DeltaJournal: delta new_chain is inconsistent");

  // Validate + materialize the successor epoch BEFORE any byte is
  // written: a bad delta must not reach the file.
  bits::LabelArena base = labels_;
  bits::LabelArena patched = LabelStore::apply_delta(
      bits::MappedArena::adopt(std::move(base)), d);

  std::ostringstream ps(std::ios::binary);
  LabelStore::save_delta(ps, d);
  const std::string payload = ps.str();
  std::string frame;
  frame.reserve(kFrameBytes + payload.size());
  frame.append(kRecordMagic, 4);
  put_u32(frame, 0);
  put_u64(frame, payload.size());
  put_u64(frame, fnv1a(payload.data(), payload.size()));
  frame += payload;

  JournalMetrics& m = JournalMetrics::get();
  const std::uint64_t t0 = obs::now_ns();
  std::uint64_t fsync_ns = 0;
  try {
    util::append_file(journal_path_, frame, opt_.sync, &fsync_ns);
  } catch (...) {
    // The file may now end mid-frame; leave it exactly as the crash
    // would have, for open() to truncate.
    healthy_ = false;
    throw;
  }
  m.append_ns.record(obs::now_ns() - t0);
  if (opt_.sync) m.fsync_ns.record(fsync_ns);
  m.appends.add();

  labels_ = std::move(patched);
  chain_ = d.new_chain;
  ++record_count_;
  journal_bytes_ += frame.size();
  ++stats_.appends;
  m.records.set(record_count_);
  m.bytes.set(journal_bytes_);
  publish_committed();

  if (opt_.auto_checkpoint && checkpoint_due_locked()) checkpoint_locked();
}

void DeltaJournal::checkpoint() {
  const util::MutexLock lock(*mu_);
  checkpoint_locked();
}

void DeltaJournal::checkpoint_locked() {
  if (!healthy_)
    throw std::logic_error(
        "DeltaJournal: poisoned by a failed append/checkpoint; reopen to "
        "recover");
  JournalMetrics& m = JournalMetrics::get();
  const std::uint64_t t0 = obs::now_ns();
  try {
    LabelStore::save_file(base_path_, scheme_, labels_, params_);
    // Chain intentionally preserved across the fold: producers keep
    // chaining as if nothing happened. Recovery from a crash between the
    // two writes rebases instead (see open()).
    write_fresh_journal();
  } catch (...) {
    healthy_ = false;
    throw;
  }
  m.checkpoint_ns.record(obs::now_ns() - t0);
  m.checkpoints.add();
  m.records.set(record_count_);
  m.bytes.set(journal_bytes_);
  ++stats_.checkpoints;
}

bool DeltaJournal::checkpoint_due() const {
  const util::MutexLock lock(*mu_);
  return checkpoint_due_locked();
}

std::uint64_t DeltaJournal::chain() const {
  const util::MutexLock lock(*mu_);
  return chain_;
}

std::uint64_t DeltaJournal::record_count() const {
  const util::MutexLock lock(*mu_);
  return record_count_;
}

std::uint64_t DeltaJournal::journal_bytes() const {
  const util::MutexLock lock(*mu_);
  return journal_bytes_;
}

bool DeltaJournal::healthy() const {
  const util::MutexLock lock(*mu_);
  return healthy_;
}

JournalStats DeltaJournal::stats() const {
  const util::MutexLock lock(*mu_);
  return stats_;
}

LabelStore::LoadedArena DeltaJournal::to_loaded() const {
  const util::MutexLock lock(*mu_);
  return {scheme_, params_, labels_};
}

DeltaJournal::SnapshotPlan DeltaJournal::snapshot_plan() const {
  const util::MutexLock lock(*mu_);
  return {LabelStore::LoadedArena{scheme_, params_, labels_}, chain_};
}

namespace {

/// Reads and validates one record frame at `off`, strictly inside the
/// committed boundary. Any failure (short read, bad magic, bad checksum,
/// unparsable payload) returns false — within a stable generation the
/// committed prefix always validates, so a failure means the file was
/// replaced under the reader.
bool read_committed_record(std::ifstream& in, std::uint64_t off,
                           std::uint64_t committed, LabelDelta& out,
                           std::uint64_t& next_off) {
  if (off + kFrameBytes > committed) return false;
  char hdr[kFrameBytes];
  in.clear();
  in.seekg(static_cast<std::streamoff>(off));
  if (!in.read(hdr, kFrameBytes)) return false;
  if (std::memcmp(hdr, kRecordMagic, 4) != 0) return false;
  const std::uint64_t len = get_u64(hdr + 8);
  const std::uint64_t sum = get_u64(hdr + 16);
  if (len > kMaxPayload || off + kFrameBytes + len > committed) return false;
  std::string payload(static_cast<std::size_t>(len), '\0');
  if (!in.read(payload.data(), static_cast<std::streamsize>(len)))
    return false;
  if (fnv1a(payload.data(), payload.size()) != sum) return false;
  try {
    std::istringstream ps(payload, std::ios::binary);
    out = LabelStore::load_delta(ps);
  } catch (const std::exception&) {
    return false;
  }
  next_off = off + kFrameBytes + len;
  return true;
}

}  // namespace

DeltaJournal::TailStatus DeltaJournal::Tail::next(LabelDelta& out) {
  if (shared_->generation.load(std::memory_order_acquire) != generation_)
    return TailStatus::kLost;
  const std::uint64_t committed =
      shared_->committed.load(std::memory_order_acquire);
  if (offset_ + kFrameBytes > committed) {
    // The boundary only rewinds across a reset; re-check the generation so
    // a racing fold reads as kLost, not as a quiet catch-up.
    if (shared_->generation.load(std::memory_order_acquire) != generation_)
      return TailStatus::kLost;
    return TailStatus::kCaughtUp;
  }
  // lint: allow(io-failpoint): lock-free committed-prefix read — torn or
  // lint: allow(io-failpoint): raced bytes surface as kLost by design
  std::ifstream in(path_, std::ios::binary);
  LabelDelta d;
  std::uint64_t next_off = 0;
  const bool ok =
      in.is_open() && read_committed_record(in, offset_, committed, d,
                                            next_off);
  // A fold may have swapped the file mid-read; the bytes are then garbage
  // regardless of whether they happened to frame-check.
  if (shared_->generation.load(std::memory_order_acquire) != generation_)
    return TailStatus::kLost;
  if (!ok || d.base_chain != chain_) return TailStatus::kLost;
  chain_ = d.new_chain;
  offset_ = next_off;
  ++records_read_;
  out = std::move(d);
  return TailStatus::kRecord;
}

std::optional<DeltaJournal::Tail> DeltaJournal::tail_from(
    std::uint64_t from_chain) const {
  Tail t;
  t.path_ = journal_path_;
  t.shared_ = tail_shared_;
  t.generation_ = tail_shared_->generation.load(std::memory_order_acquire);
  const std::uint64_t committed =
      tail_shared_->committed.load(std::memory_order_acquire);
  // lint: allow(io-failpoint): cursor planning reads the committed prefix
  // lint: allow(io-failpoint): lock-free; any failure degrades to nullopt
  std::ifstream in(journal_path_, std::ios::binary);
  char hdr[kHeaderBytes];
  if (!in.is_open() || !in.read(hdr, kHeaderBytes)) return std::nullopt;
  if (std::memcmp(hdr, kJournalMagic, 4) != 0 ||
      get_u32(hdr + 4) != kJournalVersion ||
      get_u64(hdr + kHeaderBytes - 8) != fnv1a(hdr, kHeaderBytes - 8))
    return std::nullopt;
  t.offset_ = kHeaderBytes;
  t.chain_ = get_u64(hdr + 8);
  // Walk the committed records until the running chain meets from_chain;
  // running off the committed end means that epoch predates this journal
  // (or was folded away): the reader needs a snapshot.
  while (t.chain_ != from_chain) {
    LabelDelta d;
    std::uint64_t next_off = 0;
    if (!read_committed_record(in, t.offset_, committed, d, next_off) ||
        d.base_chain != t.chain_)
      return std::nullopt;
    t.chain_ = d.new_chain;
    t.offset_ = next_off;
    ++t.records_read_;  // skipped records still count as consumed
  }
  if (tail_shared_->generation.load(std::memory_order_acquire) !=
      t.generation_)
    return std::nullopt;
  return t;
}

}  // namespace treelab::core
