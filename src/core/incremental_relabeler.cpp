#include "core/incremental_relabeler.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "bits/bitio.hpp"
#include "core/alstrup_scheme.hpp"
#include "nca/nca_labeling.hpp"
#include "tree/hpd.hpp"

namespace treelab::core {

using bits::BitWriter;
using bits::Codeword;
using nca::CodeWeights;
using tree::HeavyPathDecomposition;
using tree::kNoNode;
using tree::NodeId;
using tree::Tree;

namespace {

constexpr CodeWeights kPolicy = CodeWeights::kStablePow2;

/// Does bumping a subtree from `new_size - 1` to `new_size` nodes move its
/// pow2-quantized code weight? Only when the old size was a power of two.
[[nodiscard]] bool crossed_pow2(std::uint64_t new_size) noexcept {
  const std::uint64_t old = new_size - 1;
  return old != 0 && (old & (old - 1)) == 0;
}

}  // namespace

IncrementalRelabeler::IncrementalRelabeler(const Tree& initial,
                                           RelabelOptions opt)
    : opt_(opt) {
  const NodeId n = initial.size();
  parent_.resize(static_cast<std::size_t>(n));
  weight_.resize(static_cast<std::size_t>(n));
  children_.resize(static_cast<std::size_t>(n));
  subtree_size_.resize(static_cast<std::size_t>(n));
  root_dist_.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const auto i = static_cast<std::size_t>(v);
    parent_[i] = initial.parent(v);
    weight_[i] = parent_[i] == kNoNode ? 0 : initial.weight(v);
    const auto cs = initial.children(v);
    children_[i].assign(cs.begin(), cs.end());
    subtree_size_[i] = initial.subtree_size(v);
    root_dist_[i] = initial.root_distance(v);
  }
  full_rebuild();
}

void IncrementalRelabeler::full_rebuild() {
  const Tree t(parent_, weight_);
  const HeavyPathDecomposition hpd(t);
  const nca::HeavyPathCodes codes(hpd, kPolicy);
  const NodeId n = t.size();
  const std::int32_t m = hpd.num_paths();

  heavy_.resize(static_cast<std::size_t>(n));
  path_of_.resize(static_cast<std::size_t>(n));
  pos_in_path_.resize(static_cast<std::size_t>(n));
  light_depth_.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const auto i = static_cast<std::size_t>(v);
    heavy_[i] = hpd.heavy_child(v);
    path_of_[i] = hpd.path_of(v);
    pos_in_path_[i] = hpd.pos_in_path(v);
    light_depth_[i] = hpd.light_depth(v);
  }
  // The rebuild compacts the path table to exactly m fresh slots — ids a
  // prior restructure() recycled would now name live paths, so the free
  // list must not survive it.
  free_paths_.clear();
  path_nodes_.assign(static_cast<std::size_t>(m), {});
  head_.resize(static_cast<std::size_t>(m));
  pos_wts_.resize(static_cast<std::size_t>(m));
  pos_code_.assign(static_cast<std::size_t>(m), {});
  prefix_.assign(static_cast<std::size_t>(m), {});
  bounds_.assign(static_cast<std::size_t>(m), {});
  branch_rd_.assign(static_cast<std::size_t>(m), {});
  for (std::int32_t p = 0; p < m; ++p) {
    const auto i = static_cast<std::size_t>(p);
    const auto nodes = hpd.path_nodes(p);
    path_nodes_[i].assign(nodes.begin(), nodes.end());
    head_[i] = hpd.head(p);
    pos_wts_[i] = position_weights(p);
    const auto pc = codes.position_codes(p);
    pos_code_[i].assign(pc.begin(), pc.end());
    prefix_[i] = codes.prefix(p);
    bounds_[i] = codes.prefix_bounds(p);
  }
  // Branch root distances, parents before children (same recurrence as
  // AlstrupScheme::build).
  std::vector<std::int32_t> order(static_cast<std::size_t>(m));
  for (std::int32_t p = 0; p < m; ++p) order[static_cast<std::size_t>(p)] = p;
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    return light_depth_[static_cast<std::size_t>(head_[a])] <
           light_depth_[static_cast<std::size_t>(head_[b])];
  });
  for (std::int32_t p : order) {
    const NodeId b = parent_[static_cast<std::size_t>(head_[p])];
    if (b == kNoNode) continue;
    auto rs = branch_rd_[static_cast<std::size_t>(
        path_of_[static_cast<std::size_t>(b)])];
    rs.push_back(root_dist_[static_cast<std::size_t>(b)]);
    branch_rd_[static_cast<std::size_t>(p)] = std::move(rs);
  }

  labels_ = bits::LabelArena::build(
      static_cast<std::size_t>(n), opt_.threads,
      [this, scratch = std::vector<std::uint64_t>{}](
          std::size_t i, BitWriter& w) mutable { emit_label(i, w, scratch); });
}

std::vector<std::uint64_t> IncrementalRelabeler::position_weights(
    std::int32_t p) const {
  const auto& nodes = path_nodes_[static_cast<std::size_t>(p)];
  std::vector<std::uint64_t> wts;
  wts.reserve(nodes.size());
  for (const NodeId v : nodes) {
    const auto i = static_cast<std::size_t>(v);
    std::uint64_t mass = 1;
    for (const NodeId c : children_[i])
      if (c != heavy_[i])
        mass += static_cast<std::uint64_t>(
            subtree_size_[static_cast<std::size_t>(c)]);
    wts.push_back(nca::code_weight(mass, kPolicy));
  }
  return wts;
}

std::vector<Codeword> IncrementalRelabeler::light_codes_at(
    NodeId v, std::size_t* index_of, NodeId child) const {
  const auto i = static_cast<std::size_t>(v);
  std::vector<std::uint64_t> lw;
  std::size_t k = 0;
  for (const NodeId c : children_[i]) {
    if (c == heavy_[i]) continue;
    if (c == child && index_of != nullptr) *index_of = k;
    lw.push_back(nca::code_weight(
        static_cast<std::uint64_t>(subtree_size_[static_cast<std::size_t>(c)]),
        kPolicy));
    ++k;
  }
  return bits::alphabetic_code(lw);
}

void IncrementalRelabeler::rebuild_prefix(std::int32_t p) {
  const auto pi = static_cast<std::size_t>(p);
  const NodeId h = head_[pi];
  const NodeId b = parent_[static_cast<std::size_t>(h)];
  if (b == kNoNode) {  // root path: empty prefix
    prefix_[pi] = {};
    bounds_[pi].clear();
    return;
  }
  const auto bp = static_cast<std::size_t>(
      path_of_[static_cast<std::size_t>(b)]);
  std::size_t idx = 0;
  const std::vector<Codeword> lcodes = light_codes_at(b, &idx, h);
  const Codeword pos =
      pos_code_[bp][static_cast<std::size_t>(
          pos_in_path_[static_cast<std::size_t>(b)])];
  BitWriter w;
  w.append(prefix_[bp]);
  pos.write_to(w);
  std::vector<std::uint64_t> bs = bounds_[bp];
  bs.push_back(w.bit_count());
  lcodes[idx].write_to(w);
  bs.push_back(w.bit_count());
  prefix_[pi] = w.take();
  bounds_[pi] = std::move(bs);
}

void IncrementalRelabeler::emit_label(std::size_t i, BitWriter& w,
                                      std::vector<std::uint64_t>& scratch)
    const {
  const auto p = static_cast<std::size_t>(path_of_[i]);
  BitWriter nca_bits;
  nca::emit_nca_label(nca_bits, prefix_[p], bounds_[p],
                      pos_code_[p][static_cast<std::size_t>(pos_in_path_[i])],
                      scratch);
  (void)emit_alstrup_label(w, root_dist_[i], nca_bits.bits(), branch_rd_[p]);
}

void IncrementalRelabeler::append_node(NodeId parent, std::uint32_t weight) {
  const auto pi = static_cast<std::size_t>(parent);
  const auto x = static_cast<NodeId>(parent_.size());
  parent_.push_back(parent);
  weight_.push_back(weight);
  children_[pi].push_back(x);  // x is the max id: ascending order holds
  children_.emplace_back();
  subtree_size_.push_back(1);
  root_dist_.push_back(root_dist_[pi] + weight);
  for (NodeId v = parent; v != kNoNode; v = parent_[static_cast<std::size_t>(v)])
    ++subtree_size_[static_cast<std::size_t>(v)];
}

tree::NodeId IncrementalRelabeler::recheck_heavy(
    const std::vector<NodeId>& chain, NodeId leaf, bool* extends) const {
  *extends = false;
  const NodeId parent = chain.back();
  std::int32_t prev = -1;
  for (const NodeId a : chain) {
    const std::int32_t p = path_of_[static_cast<std::size_t>(a)];
    if (p == prev) continue;
    prev = p;
    const auto pi = static_cast<std::size_t>(p);
    const NodeId n_path = subtree_size_[static_cast<std::size_t>(head_[pi])];
    NodeId cur = head_[pi];
    for (;;) {
      const auto ci = static_cast<std::size_t>(cur);
      NodeId next = kNoNode;
      for (const NodeId c : children_[ci])
        if (2 * static_cast<std::int64_t>(
                    subtree_size_[static_cast<std::size_t>(c)]) >=
            n_path) {
          next = c;
          break;
        }
      if (next != heavy_[ci]) {
        // The one allowed divergence: the fresh leaf continuing its
        // parent's path as the new bottom (a growth, not a flip).
        if (cur == parent && heavy_[ci] == kNoNode && next == leaf) {
          *extends = true;
          break;
        }
        // A real flip. Everything it disturbs lives under this path's
        // head (deeper crossed paths included), so report the head and
        // stop — the caller re-decomposes that subtree.
        return head_[pi];
      }
      if (next == kNoNode) break;
      cur = next;
    }
  }
  return kNoNode;
}

std::int32_t IncrementalRelabeler::alloc_path() {
  if (!free_paths_.empty()) {
    const std::int32_t p = free_paths_.back();
    free_paths_.pop_back();
    return p;
  }
  const auto p = static_cast<std::int32_t>(path_nodes_.size());
  path_nodes_.emplace_back();
  head_.push_back(kNoNode);
  pos_wts_.emplace_back();
  pos_code_.emplace_back();
  prefix_.emplace_back();
  bounds_.emplace_back();
  branch_rd_.emplace_back();
  return p;
}

void IncrementalRelabeler::restructure(NodeId h) {
  // Recycle every old path under h. All paths touching subtree(h) are
  // contained in it (h is a path head, and heads hang by light edges), so
  // freeing the path of each node exactly when we stand on its old head
  // frees each id once. The new leaf carries a placeholder path id (-1).
  {
    std::vector<NodeId> stack{h};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      const auto vi = static_cast<std::size_t>(v);
      const std::int32_t p = path_of_[vi];
      if (p >= 0 && head_[static_cast<std::size_t>(p)] == v) {
        head_[static_cast<std::size_t>(p)] = kNoNode;
        free_paths_.push_back(p);
      }
      for (const NodeId c : children_[vi]) stack.push_back(c);
    }
  }

  // Re-run the paper-half decomposition over subtree(h) — the same loop as
  // HeavyPathDecomposition's, seeded at h with its (unchanged) light depth.
  // Parents-before-children order lets branch_rd_ fill by recurrence; the
  // prefixes are rebuilt later by the caller's dirty-head pass.
  struct PathStart {
    NodeId start;
    std::int32_t ld;
  };
  std::vector<PathStart> stack{
      {h, light_depth_[static_cast<std::size_t>(h)]}};
  while (!stack.empty()) {
    const auto [start, ld] = stack.back();
    stack.pop_back();
    const std::int32_t pid = alloc_path();
    const auto pi = static_cast<std::size_t>(pid);
    head_[pi] = start;
    path_nodes_[pi].clear();
    const NodeId n_path = subtree_size_[static_cast<std::size_t>(start)];

    NodeId cur = start;
    std::int32_t pos = 0;
    for (;;) {
      const auto ci = static_cast<std::size_t>(cur);
      path_of_[ci] = pid;
      light_depth_[ci] = ld;
      pos_in_path_[ci] = pos++;
      path_nodes_[pi].push_back(cur);

      NodeId next = kNoNode;
      for (const NodeId c : children_[ci])
        if (2 * static_cast<std::int64_t>(
                    subtree_size_[static_cast<std::size_t>(c)]) >=
            n_path) {
          next = c;
          break;
        }
      heavy_[ci] = next;
      for (const NodeId c : children_[ci])
        if (c != next) stack.push_back({c, ld + 1});
      if (next == kNoNode) break;
      cur = next;
    }

    pos_wts_[pi] = position_weights(pid);
    pos_code_[pi] = bits::alphabetic_code(pos_wts_[pi]);
    const NodeId b = parent_[static_cast<std::size_t>(start)];
    if (b == kNoNode) {
      branch_rd_[pi].clear();
    } else {
      branch_rd_[pi] = branch_rd_[static_cast<std::size_t>(
          path_of_[static_cast<std::size_t>(b)])];
      branch_rd_[pi].push_back(root_dist_[static_cast<std::size_t>(b)]);
    }
  }
}

NodeId IncrementalRelabeler::insert_leaf(NodeId parent, std::uint32_t weight) {
  if (parent < 0 || static_cast<std::size_t>(parent) >= size())
    throw std::out_of_range("IncrementalRelabeler: parent out of range");
  ++stats_.edits;
  const auto x = static_cast<NodeId>(size());

  // Root-to-parent chain (every node whose subtree grows).
  std::vector<NodeId> chain;
  for (NodeId v = parent; v != kNoNode;
       v = parent_[static_cast<std::size_t>(v)])
    chain.push_back(v);
  std::reverse(chain.begin(), chain.end());

  append_node(parent, weight);

  bool extends = false;
  const NodeId flip_head = recheck_heavy(chain, x, &extends);

  const std::size_t limit =
      opt_.max_dirty_fraction <= 0.0
          ? 0  // testing/ops escape hatch: rebuild on every edit
          : std::max<std::size_t>(
                256, static_cast<std::size_t>(opt_.max_dirty_fraction *
                                              static_cast<double>(size())));
  const auto fall_back = [&](bool flip) {
    full_rebuild();
    if (flip) {
      ++stats_.full_heavy_flip;
      last_outcome_ = RelabelOutcome::kFullHeavyFlip;
    } else {
      ++stats_.full_dirty_cone;
      last_outcome_ = RelabelOutcome::kFullDirtyCone;
    }
    last_dirty_ = size();
    return x;
  };
  if (flip_head != kNoNode &&
      static_cast<std::size_t>(
          subtree_size_[static_cast<std::size_t>(flip_head)]) > limit)
    return fall_back(true);  // restructure region too big: don't even start

  // Grow the decomposition state by the one new node, or re-decompose the
  // flip region (which assigns the new leaf's path as part of the sweep).
  // This must precede change detection: the tables of the parent's (or
  // flipped) path are compared against the *post-edit* structure.
  if (flip_head != kNoNode) {
    path_of_.push_back(-1);  // placeholders; restructure() fills them
    pos_in_path_.push_back(0);
    light_depth_.push_back(0);
    heavy_.push_back(kNoNode);
    restructure(flip_head);
  } else {
    const auto pp = static_cast<std::size_t>(
        path_of_[static_cast<std::size_t>(parent)]);
    if (extends) {
      path_nodes_[pp].push_back(x);
      path_of_.push_back(static_cast<std::int32_t>(pp));
      pos_in_path_.push_back(
          pos_in_path_[static_cast<std::size_t>(parent)] + 1);
      light_depth_.push_back(light_depth_[static_cast<std::size_t>(parent)]);
      heavy_[static_cast<std::size_t>(parent)] = x;
    } else {
      const std::int32_t px = alloc_path();
      const auto pxi = static_cast<std::size_t>(px);
      head_[pxi] = x;
      path_nodes_[pxi] = {x};
      path_of_.push_back(px);
      pos_in_path_.push_back(0);
      light_depth_.push_back(
          light_depth_[static_cast<std::size_t>(parent)] + 1);
      branch_rd_[pxi] = branch_rd_[pp];
      branch_rd_[pxi].push_back(root_dist_[static_cast<std::size_t>(parent)]);
      pos_wts_[pxi] = position_weights(px);
      pos_code_[pxi] = bits::alphabetic_code(pos_wts_[pxi]);
    }
    heavy_.push_back(kNoNode);
  }

  // Dirty roots: the new leaf always; a flip's whole restructure region;
  // then the table changes detected below.
  std::vector<NodeId> roots{x};
  if (flip_head != kNoNode) roots.push_back(flip_head);

  // Position-code tables whose quantized weights moved: only paths crossed
  // by the chain can change (all other paths see identical sizes). With a
  // flip, stop above the flip head — everything at or under it was just
  // re-decomposed with fresh tables.
  for (const NodeId a : chain) {
    if (a == flip_head) break;
    const std::int32_t p = path_of_[static_cast<std::size_t>(a)];
    const auto pi2 = static_cast<std::size_t>(p);
    if (a != head_[pi2]) continue;  // the chain enters each path at its head
    std::vector<std::uint64_t> wts = position_weights(p);
    if (wts != pos_wts_[pi2]) {
      pos_wts_[pi2] = std::move(wts);
      pos_code_[pi2] = bits::alphabetic_code(pos_wts_[pi2]);
      roots.push_back(head_[pi2]);
    }
  }

  // Light-choice tables: changed at a branch node when its light child on
  // the chain crossed a power of two, or (at `parent`) gained the new leaf.
  // A changed table re-codes every light sibling, so their subtrees dirty.
  // Sites at or under the flip head were rebuilt by restructure().
  const auto mark_light_site = [&](NodeId b) {
    const auto bi = static_cast<std::size_t>(b);
    for (const NodeId c : children_[bi])
      if (c != heavy_[bi]) roots.push_back(c);
  };
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const NodeId a = chain[i], c = chain[i + 1];
    if (a == flip_head) break;
    if (path_of_[static_cast<std::size_t>(a)] ==
        path_of_[static_cast<std::size_t>(c)])
      continue;  // heavy edge: no light table involved
    if (crossed_pow2(static_cast<std::uint64_t>(
            subtree_size_[static_cast<std::size_t>(c)])))
      mark_light_site(a);
    if (c == flip_head) break;
  }
  if (flip_head == kNoNode && !extends) mark_light_site(parent);

  // Mark the dirty cones.
  std::vector<std::uint8_t> dirty(size(), 0);
  std::size_t count = 0;
  std::vector<NodeId> stack;
  for (const NodeId r : roots) {
    if (dirty[static_cast<std::size_t>(r)]) continue;
    stack.push_back(r);
    dirty[static_cast<std::size_t>(r)] = 1;
    ++count;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId c : children_[static_cast<std::size_t>(v)])
        if (!dirty[static_cast<std::size_t>(c)]) {
          dirty[static_cast<std::size_t>(c)] = 1;
          ++count;
          stack.push_back(c);
        }
    }
  }
  if (count > limit) return fall_back(flip_head != kNoNode);

  // Rebuild the prefixes of every dirty path head, parents before children
  // (a head's parent path either kept its prefix or sits earlier in
  // light-depth order).
  std::vector<std::int32_t> dirty_paths;
  for (std::size_t p = 0; p < path_nodes_.size(); ++p)
    if (head_[p] != kNoNode && dirty[static_cast<std::size_t>(head_[p])])
      dirty_paths.push_back(static_cast<std::int32_t>(p));
  std::sort(dirty_paths.begin(), dirty_paths.end(),
            [&](std::int32_t a, std::int32_t b) {
              return light_depth_[static_cast<std::size_t>(head_[a])] <
                     light_depth_[static_cast<std::size_t>(head_[b])];
            });
  for (const std::int32_t p : dirty_paths) rebuild_prefix(p);

  // Splice: clean labels ride over as word runs, dirty labels re-emit.
  std::vector<std::uint64_t> scratch;
  labels_ = bits::LabelArena::patched(
      labels_, size(), dirty,
      [&](std::size_t i, BitWriter& w) { emit_label(i, w, scratch); });

  if (flip_head != kNoNode) {
    ++stats_.restructured;
    last_outcome_ = RelabelOutcome::kRestructured;
  } else {
    ++stats_.incremental;
    last_outcome_ = RelabelOutcome::kIncremental;
  }
  stats_.labels_reemitted += count;
  stats_.labels_spliced += size() - count;
  last_dirty_ = count;
  return x;
}

void IncrementalRelabeler::check_state() const {
  const Tree t(parent_, weight_);
  const HeavyPathDecomposition hpd(t);
  const nca::HeavyPathCodes codes(hpd, kPolicy);
  const auto fail = [](const char* what, NodeId v) {
    throw std::logic_error(std::string("IncrementalRelabeler state: ") +
                           what + " diverges at node " + std::to_string(v));
  };
  // Fresh branch-rd recurrence (same as full_rebuild's).
  std::vector<std::vector<std::uint64_t>> want_rd(
      static_cast<std::size_t>(hpd.num_paths()));
  {
    std::vector<std::int32_t> order(want_rd.size());
    for (std::size_t p = 0; p < want_rd.size(); ++p)
      order[p] = static_cast<std::int32_t>(p);
    std::sort(order.begin(), order.end(),
              [&](std::int32_t a, std::int32_t b) {
                return hpd.light_depth(hpd.head(a)) <
                       hpd.light_depth(hpd.head(b));
              });
    for (const std::int32_t p : order) {
      const NodeId b = t.parent(hpd.head(p));
      if (b == kNoNode) continue;
      auto rs = want_rd[static_cast<std::size_t>(hpd.path_of(b))];
      rs.push_back(t.root_distance(b));
      want_rd[static_cast<std::size_t>(p)] = std::move(rs);
    }
  }
  for (NodeId v = 0; v < t.size(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    if (heavy_[i] != hpd.heavy_child(v)) fail("heavy_child", v);
    if (light_depth_[i] != hpd.light_depth(v)) fail("light_depth", v);
    if (pos_in_path_[i] != hpd.pos_in_path(v)) fail("pos_in_path", v);
    if (subtree_size_[i] != t.subtree_size(v)) fail("subtree_size", v);
    if (root_dist_[i] != t.root_distance(v)) fail("root_distance", v);
    const auto p = static_cast<std::size_t>(path_of_[i]);
    const std::int32_t fp = hpd.path_of(v);
    if (head_[p] != hpd.head(fp)) fail("path head", v);
    const auto nodes = hpd.path_nodes(fp);
    if (path_nodes_[p] != std::vector<NodeId>(nodes.begin(), nodes.end()))
      fail("path_nodes", v);
    const auto want_pc = codes.position_codes(fp);
    if (pos_code_[p].size() != want_pc.size()) fail("pos_code size", v);
    for (std::size_t q = 0; q < want_pc.size(); ++q)
      if (pos_code_[p][q].bits != want_pc[q].bits ||
          pos_code_[p][q].len != want_pc[q].len)
        fail("pos_code", v);
    if (!(prefix_[p] == codes.prefix(fp))) fail("prefix", v);
    if (bounds_[p] != codes.prefix_bounds(fp)) fail("bounds", v);
    if (branch_rd_[p] != want_rd[static_cast<std::size_t>(fp)])
      fail("branch_rd", v);
  }
  for (const std::int32_t p : free_paths_)
    if (head_[static_cast<std::size_t>(p)] != kNoNode)
      fail("free list names a live path", head_[static_cast<std::size_t>(p)]);
}

LabelStore::LoadedArena IncrementalRelabeler::to_loaded() const {
  LabelStore::LoadedArena out;
  out.scheme = scheme_tag();
  out.labels = labels_;
  return out;
}

Tree IncrementalRelabeler::snapshot() const { return Tree(parent_, weight_); }

}  // namespace treelab::core
