#include "core/incremental_relabeler.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <string>

#include "bits/bitio.hpp"
#include "core/alstrup_scheme.hpp"
#include "nca/nca_labeling.hpp"
#include "tree/hpd.hpp"

namespace treelab::core {

using bits::BitWriter;
using bits::Codeword;
using nca::CodeWeights;
using tree::HeavyPathDecomposition;
using tree::kNoNode;
using tree::NodeId;
using tree::Tree;

namespace {

constexpr CodeWeights kPolicy = CodeWeights::kStablePow2;

}  // namespace

IncrementalRelabeler::IncrementalRelabeler(const Tree& initial,
                                           RelabelOptions opt)
    : opt_(opt) {
  const NodeId n = initial.size();
  parent_.resize(static_cast<std::size_t>(n));
  weight_.resize(static_cast<std::size_t>(n));
  children_.resize(static_cast<std::size_t>(n));
  subtree_size_.resize(static_cast<std::size_t>(n));
  root_dist_.resize(static_cast<std::size_t>(n));
  state_.assign(static_cast<std::size_t>(n), kLive);
  live_ = static_cast<std::size_t>(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto i = static_cast<std::size_t>(v);
    parent_[i] = initial.parent(v);
    weight_[i] = parent_[i] == kNoNode ? 0 : initial.weight(v);
    const auto cs = initial.children(v);
    children_[i].assign(cs.begin(), cs.end());
    subtree_size_[i] = initial.subtree_size(v);
    root_dist_[i] = initial.root_distance(v);
  }
  full_rebuild();
  rebase_delta();
}

Tree IncrementalRelabeler::live_tree(std::vector<NodeId>* old_of_out) const {
  std::vector<NodeId> old_of;
  old_of.reserve(live_);
  for (std::size_t i = 0; i < size(); ++i)
    if (state_[i] == kLive) old_of.push_back(static_cast<NodeId>(i));
  std::vector<NodeId> new_of(size(), kNoNode);
  for (std::size_t j = 0; j < old_of.size(); ++j)
    new_of[static_cast<std::size_t>(old_of[j])] = static_cast<NodeId>(j);
  std::vector<NodeId> cparent;
  std::vector<std::uint32_t> cweight;
  cparent.reserve(old_of.size());
  cweight.reserve(old_of.size());
  for (const NodeId o : old_of) {
    const NodeId p = parent_[static_cast<std::size_t>(o)];
    cparent.push_back(p == kNoNode ? kNoNode
                                   : new_of[static_cast<std::size_t>(p)]);
    cweight.push_back(weight_[static_cast<std::size_t>(o)]);
  }
  if (old_of_out != nullptr) *old_of_out = std::move(old_of);
  return Tree(std::move(cparent), std::move(cweight));
}

void IncrementalRelabeler::full_rebuild() {
  const std::size_t ids = size();
  // Compacted live tree + the dense → current id map. Until the first
  // deletion/detach the map is the identity and this is exactly the dense
  // rebuild PR 4 shipped.
  std::vector<NodeId> old_of;
  const Tree t = live_tree(&old_of);
  const HeavyPathDecomposition hpd(t);
  const nca::HeavyPathCodes codes(hpd, kPolicy);
  const std::int32_t m = hpd.num_paths();

  heavy_.assign(ids, kNoNode);
  path_of_.assign(ids, -1);
  pos_in_path_.assign(ids, 0);
  light_depth_.assign(ids, 0);
  for (NodeId nv = 0; nv < t.size(); ++nv) {
    const auto o = static_cast<std::size_t>(old_of[static_cast<std::size_t>(nv)]);
    const NodeId hc = hpd.heavy_child(nv);
    heavy_[o] = hc == kNoNode ? kNoNode : old_of[static_cast<std::size_t>(hc)];
    path_of_[o] = hpd.path_of(nv);
    pos_in_path_[o] = hpd.pos_in_path(nv);
    light_depth_[o] = hpd.light_depth(nv);
  }
  // The rebuild compacts the path table to exactly m fresh slots — ids a
  // prior restructure() recycled would now name live paths, so the free
  // list must not survive it.
  free_paths_.clear();
  path_nodes_.assign(static_cast<std::size_t>(m), {});
  head_.assign(static_cast<std::size_t>(m), kNoNode);
  pos_wts_.assign(static_cast<std::size_t>(m), {});
  pos_code_.assign(static_cast<std::size_t>(m), {});
  prefix_.assign(static_cast<std::size_t>(m), {});
  bounds_.assign(static_cast<std::size_t>(m), {});
  branch_rd_.assign(static_cast<std::size_t>(m), {});
  for (std::int32_t p = 0; p < m; ++p) {
    const auto i = static_cast<std::size_t>(p);
    const auto nodes = hpd.path_nodes(p);
    path_nodes_[i].reserve(nodes.size());
    for (const NodeId nv : nodes)
      path_nodes_[i].push_back(old_of[static_cast<std::size_t>(nv)]);
    head_[i] = old_of[static_cast<std::size_t>(hpd.head(p))];
    pos_wts_[i] = position_weights(p);
    const auto pc = codes.position_codes(p);
    pos_code_[i].assign(pc.begin(), pc.end());
    prefix_[i] = codes.prefix(p);
    bounds_[i] = codes.prefix_bounds(p);
  }
  // Branch root distances, parents before children (same recurrence as
  // AlstrupScheme::build), in the stable (old) id space.
  std::vector<std::int32_t> order(static_cast<std::size_t>(m));
  for (std::int32_t p = 0; p < m; ++p) order[static_cast<std::size_t>(p)] = p;
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    return light_depth_[static_cast<std::size_t>(head_[a])] <
           light_depth_[static_cast<std::size_t>(head_[b])];
  });
  for (std::int32_t p : order) {
    const NodeId b = parent_[static_cast<std::size_t>(head_[p])];
    if (b == kNoNode) continue;
    auto rs = branch_rd_[static_cast<std::size_t>(
        path_of_[static_cast<std::size_t>(b)])];
    rs.push_back(root_dist_[static_cast<std::size_t>(b)]);
    branch_rd_[static_cast<std::size_t>(p)] = std::move(rs);
  }

  labels_ = bits::LabelArena::build(
      ids, opt_.threads,
      [this, scratch = std::vector<std::uint64_t>{}](
          std::size_t i, BitWriter& w) mutable { emit_label(i, w, scratch); });
}

std::vector<std::uint64_t> IncrementalRelabeler::position_weights(
    std::int32_t p) const {
  const auto& nodes = path_nodes_[static_cast<std::size_t>(p)];
  std::vector<std::uint64_t> wts;
  wts.reserve(nodes.size());
  for (const NodeId v : nodes) {
    const auto i = static_cast<std::size_t>(v);
    std::uint64_t mass = 1;
    for (const NodeId c : children_[i])
      if (c != heavy_[i])
        mass += static_cast<std::uint64_t>(
            subtree_size_[static_cast<std::size_t>(c)]);
    wts.push_back(nca::code_weight(mass, kPolicy));
  }
  return wts;
}

std::vector<Codeword> IncrementalRelabeler::light_codes_at(
    NodeId v, std::size_t* index_of, NodeId child) const {
  const auto i = static_cast<std::size_t>(v);
  std::vector<std::uint64_t> lw;
  std::size_t k = 0;
  for (const NodeId c : children_[i]) {
    if (c == heavy_[i]) continue;
    if (c == child && index_of != nullptr) *index_of = k;
    lw.push_back(nca::code_weight(
        static_cast<std::uint64_t>(subtree_size_[static_cast<std::size_t>(c)]),
        kPolicy));
    ++k;
  }
  return bits::alphabetic_code(lw);
}

void IncrementalRelabeler::rebuild_prefix(std::int32_t p) {
  const auto pi = static_cast<std::size_t>(p);
  const NodeId h = head_[pi];
  const NodeId b = parent_[static_cast<std::size_t>(h)];
  if (b == kNoNode) {  // root path: empty prefix
    prefix_[pi] = {};
    bounds_[pi].clear();
    return;
  }
  const auto bp = static_cast<std::size_t>(
      path_of_[static_cast<std::size_t>(b)]);
  std::size_t idx = 0;
  const std::vector<Codeword> lcodes = light_codes_at(b, &idx, h);
  const Codeword pos =
      pos_code_[bp][static_cast<std::size_t>(
          pos_in_path_[static_cast<std::size_t>(b)])];
  BitWriter w;
  w.append(prefix_[bp]);
  pos.write_to(w);
  std::vector<std::uint64_t> bs = bounds_[bp];
  bs.push_back(w.bit_count());
  lcodes[idx].write_to(w);
  bs.push_back(w.bit_count());
  prefix_[pi] = w.take();
  bounds_[pi] = std::move(bs);
}

void IncrementalRelabeler::emit_label(std::size_t i, BitWriter& w,
                                      std::vector<std::uint64_t>& scratch)
    const {
  if (state_[i] != kLive) return;  // tombstone/detached: zero-length label
  const auto p = static_cast<std::size_t>(path_of_[i]);
  BitWriter nca_bits;
  nca::emit_nca_label(nca_bits, prefix_[p], bounds_[p],
                      pos_code_[p][static_cast<std::size_t>(pos_in_path_[i])],
                      scratch);
  (void)emit_alstrup_label(w, root_dist_[i], nca_bits.bits(), branch_rd_[p]);
}

void IncrementalRelabeler::append_node(NodeId parent, std::uint32_t weight) {
  const auto pi = static_cast<std::size_t>(parent);
  const auto x = static_cast<NodeId>(parent_.size());
  parent_.push_back(parent);
  weight_.push_back(weight);
  children_[pi].push_back(x);  // x is the max id: ascending order holds
  children_.emplace_back();
  subtree_size_.push_back(1);
  root_dist_.push_back(root_dist_[pi] + weight);
  state_.push_back(kLive);
  ++live_;
  base_of_cur_.push_back(kNoNode);  // no base label: always ships in a delta
  delta_dirty_.push_back(0);
  for (NodeId v = parent; v != kNoNode; v = parent_[static_cast<std::size_t>(v)])
    ++subtree_size_[static_cast<std::size_t>(v)];
}

std::vector<NodeId> IncrementalRelabeler::chain_to(NodeId v) const {
  std::vector<NodeId> chain;
  for (NodeId a = v; a != kNoNode; a = parent_[static_cast<std::size_t>(a)])
    chain.push_back(a);
  std::reverse(chain.begin(), chain.end());
  return chain;
}

void IncrementalRelabeler::add_sizes(const std::vector<NodeId>& chain,
                                     std::int64_t delta) {
  for (const NodeId a : chain)
    subtree_size_[static_cast<std::size_t>(a)] = static_cast<NodeId>(
        static_cast<std::int64_t>(subtree_size_[static_cast<std::size_t>(a)]) +
        delta);
}

NodeId IncrementalRelabeler::recheck_heavy(
    const std::vector<NodeId>& chain, NodeId leaf, bool* extends) const {
  *extends = false;
  const NodeId parent = chain.back();
  std::int32_t prev = -1;
  for (const NodeId a : chain) {
    const std::int32_t p = path_of_[static_cast<std::size_t>(a)];
    if (p == prev) continue;
    prev = p;
    const auto pi = static_cast<std::size_t>(p);
    const NodeId n_path = subtree_size_[static_cast<std::size_t>(head_[pi])];
    NodeId cur = head_[pi];
    for (;;) {
      const auto ci = static_cast<std::size_t>(cur);
      NodeId next = kNoNode;
      for (const NodeId c : children_[ci])
        if (2 * static_cast<std::int64_t>(
                    subtree_size_[static_cast<std::size_t>(c)]) >=
            n_path) {
          next = c;
          break;
        }
      if (next != heavy_[ci]) {
        // The one allowed divergence: the fresh leaf continuing its
        // parent's path as the new bottom (a growth, not a flip).
        if (cur == parent && heavy_[ci] == kNoNode && next == leaf) {
          *extends = true;
          break;
        }
        // A real flip. Everything it disturbs lives under this path's
        // head (deeper crossed paths included), so report the head and
        // stop — the caller re-decomposes that subtree.
        return head_[pi];
      }
      if (next == kNoNode) break;
      cur = next;
    }
  }
  return kNoNode;
}

NodeId IncrementalRelabeler::recheck_heavy_resized(
    const std::vector<NodeId>& chain) const {
  std::int32_t prev = -1;
  for (const NodeId a : chain) {
    const std::int32_t p = path_of_[static_cast<std::size_t>(a)];
    if (p == prev) continue;
    prev = p;
    const auto pi = static_cast<std::size_t>(p);
    const NodeId n_path = subtree_size_[static_cast<std::size_t>(head_[pi])];
    NodeId cur = head_[pi];
    for (;;) {
      const auto ci = static_cast<std::size_t>(cur);
      NodeId next = kNoNode;
      for (const NodeId c : children_[ci])
        if (2 * static_cast<std::int64_t>(
                    subtree_size_[static_cast<std::size_t>(c)]) >=
            n_path) {
          next = c;
          break;
        }
      if (next != heavy_[ci]) return head_[pi];
      if (next == kNoNode) break;
      cur = next;
    }
  }
  return kNoNode;
}

std::int32_t IncrementalRelabeler::alloc_path() {
  if (!free_paths_.empty()) {
    const std::int32_t p = free_paths_.back();
    free_paths_.pop_back();
    return p;
  }
  const auto p = static_cast<std::int32_t>(path_nodes_.size());
  path_nodes_.emplace_back();
  head_.push_back(kNoNode);
  pos_wts_.emplace_back();
  pos_code_.emplace_back();
  prefix_.emplace_back();
  bounds_.emplace_back();
  branch_rd_.emplace_back();
  return p;
}

void IncrementalRelabeler::free_subtree_paths(NodeId h) {
  // All paths touching subtree(h) except the one entering it from above are
  // contained in it (heads hang by light edges), so freeing the path of
  // each node exactly when we stand on its head frees each id once.
  // path_of_ is cleared to -1 over the whole subtree so a later sweep (a
  // restructure after a detach, say) cannot double-free a recycled id.
  std::vector<NodeId> stack{h};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    const auto vi = static_cast<std::size_t>(v);
    const std::int32_t p = path_of_[vi];
    if (p >= 0 && head_[static_cast<std::size_t>(p)] == v) {
      head_[static_cast<std::size_t>(p)] = kNoNode;
      path_nodes_[static_cast<std::size_t>(p)].clear();
      free_paths_.push_back(p);
    }
    path_of_[vi] = -1;
    for (const NodeId c : children_[vi]) stack.push_back(c);
  }
}

void IncrementalRelabeler::decompose_subtree(NodeId h, std::int32_t ld0) {
  // The paper-half decomposition over subtree(h) — the same loop as
  // HeavyPathDecomposition's, seeded at h with the given light depth.
  // Parents-before-children order lets branch_rd_ fill by recurrence; the
  // prefixes are rebuilt later by the caller's dirty-head pass.
  struct PathStart {
    NodeId start;
    std::int32_t ld;
  };
  std::vector<PathStart> stack{{h, ld0}};
  while (!stack.empty()) {
    const auto [start, ld] = stack.back();
    stack.pop_back();
    const std::int32_t pid = alloc_path();
    const auto pi = static_cast<std::size_t>(pid);
    head_[pi] = start;
    path_nodes_[pi].clear();
    const NodeId n_path = subtree_size_[static_cast<std::size_t>(start)];

    NodeId cur = start;
    std::int32_t pos = 0;
    for (;;) {
      const auto ci = static_cast<std::size_t>(cur);
      path_of_[ci] = pid;
      light_depth_[ci] = ld;
      pos_in_path_[ci] = pos++;
      path_nodes_[pi].push_back(cur);

      NodeId next = kNoNode;
      for (const NodeId c : children_[ci])
        if (2 * static_cast<std::int64_t>(
                    subtree_size_[static_cast<std::size_t>(c)]) >=
            n_path) {
          next = c;
          break;
        }
      heavy_[ci] = next;
      for (const NodeId c : children_[ci])
        if (c != next) stack.push_back({c, ld + 1});
      if (next == kNoNode) break;
      cur = next;
    }

    pos_wts_[pi] = position_weights(pid);
    pos_code_[pi] = bits::alphabetic_code(pos_wts_[pi]);
    const NodeId b = parent_[static_cast<std::size_t>(start)];
    if (b == kNoNode) {
      branch_rd_[pi].clear();
    } else {
      branch_rd_[pi] = branch_rd_[static_cast<std::size_t>(
          path_of_[static_cast<std::size_t>(b)])];
      branch_rd_[pi].push_back(root_dist_[static_cast<std::size_t>(b)]);
    }
  }
}

void IncrementalRelabeler::restructure(NodeId h) {
  const std::int32_t ld = light_depth_[static_cast<std::size_t>(h)];
  free_subtree_paths(h);
  decompose_subtree(h, ld);
}

std::size_t IncrementalRelabeler::dirty_limit() const {
  return opt_.max_dirty_fraction <= 0.0
             ? 0  // testing/ops escape hatch: rebuild on every edit
             : std::max<std::size_t>(
                   256, static_cast<std::size_t>(opt_.max_dirty_fraction *
                                                 static_cast<double>(size())));
}

void IncrementalRelabeler::fall_back(bool flip) {
  const bits::LabelArena old = std::move(labels_);
  full_rebuild();
  if (flip) {
    ++stats_.full_heavy_flip;
    last_outcome_ = RelabelOutcome::kFullHeavyFlip;
  } else {
    ++stats_.full_dirty_cone;
    last_outcome_ = RelabelOutcome::kFullDirtyCone;
  }
  last_dirty_ = size();
  // Delta tracking: the rebuild replaced the arena wholesale, but most
  // labels usually come out bit-identical — diff against the old arena
  // (word compares) so shipped deltas stay proportional to the real
  // change, not to the fallback's bluntness.
  if (delta_dirty_.size() < size()) delta_dirty_.resize(size(), 0);
  for (std::size_t i = 0; i < size(); ++i) {
    if (delta_dirty_[i] != 0) continue;
    if (i >= old.size() || old.label_bits(i) != labels_.label_bits(i) ||
        !(old.view(i) == labels_.view(i)))
      delta_dirty_[i] = 1;
  }
}

void IncrementalRelabeler::mark_light_site(NodeId b,
                                           std::vector<NodeId>& roots) const {
  const auto bi = static_cast<std::size_t>(b);
  for (const NodeId c : children_[bi])
    if (c != heavy_[bi]) roots.push_back(c);
}

void IncrementalRelabeler::detect_table_changes(
    const std::vector<NodeId>& chain, NodeId flip_head,
    std::int64_t size_delta, std::vector<NodeId>& roots) {
  // Position-code tables whose quantized weights moved: only paths crossed
  // by the chain can change (all other paths see identical sizes). With a
  // flip, stop above the flip head — everything at or under it was just
  // re-decomposed with fresh tables.
  for (const NodeId a : chain) {
    if (a == flip_head) break;
    const std::int32_t p = path_of_[static_cast<std::size_t>(a)];
    const auto pi = static_cast<std::size_t>(p);
    if (a != head_[pi]) continue;  // the chain enters each path at its head
    std::vector<std::uint64_t> wts = position_weights(p);
    if (wts != pos_wts_[pi]) {
      pos_wts_[pi] = std::move(wts);
      pos_code_[pi] = bits::alphabetic_code(pos_wts_[pi]);
      roots.push_back(head_[pi]);
    }
  }
  // Light-choice tables: changed at a branch node when its light child on
  // the chain crossed a quantized-weight boundary (every chain node's size
  // moved by size_delta). A changed table re-codes every light sibling, so
  // their subtrees dirty. Membership changes (a light child appearing or
  // disappearing at the edit site) are the caller's to mark.
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const NodeId a = chain[i], c = chain[i + 1];
    if (a == flip_head) break;
    if (path_of_[static_cast<std::size_t>(a)] ==
        path_of_[static_cast<std::size_t>(c)])
      continue;  // heavy edge: no light table involved
    const auto now = static_cast<std::int64_t>(
        subtree_size_[static_cast<std::size_t>(c)]);
    const auto before = static_cast<std::uint64_t>(now - size_delta);
    if (nca::code_weight(before, kPolicy) !=
        nca::code_weight(static_cast<std::uint64_t>(now), kPolicy))
      mark_light_site(a, roots);
    if (c == flip_head) break;
  }
}

void IncrementalRelabeler::mark_cone(NodeId r, std::vector<std::uint8_t>& dirty,
                                     std::size_t& count) const {
  if (dirty[static_cast<std::size_t>(r)]) return;
  std::vector<NodeId> stack{r};
  dirty[static_cast<std::size_t>(r)] = 1;
  ++count;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (const NodeId c : children_[static_cast<std::size_t>(v)])
      if (!dirty[static_cast<std::size_t>(c)]) {
        dirty[static_cast<std::size_t>(c)] = 1;
        ++count;
        stack.push_back(c);
      }
  }
}

void IncrementalRelabeler::splice_dirty(const std::vector<std::uint8_t>& dirty,
                                        std::size_t count, bool flipped) {
  // Rebuild the prefixes of every dirty path head, parents before children
  // (a head's parent path either kept its prefix or sits earlier in
  // light-depth order).
  std::vector<std::int32_t> dirty_paths;
  for (std::size_t p = 0; p < path_nodes_.size(); ++p)
    if (head_[p] != kNoNode && dirty[static_cast<std::size_t>(head_[p])])
      dirty_paths.push_back(static_cast<std::int32_t>(p));
  std::sort(dirty_paths.begin(), dirty_paths.end(),
            [&](std::int32_t a, std::int32_t b) {
              return light_depth_[static_cast<std::size_t>(head_[a])] <
                     light_depth_[static_cast<std::size_t>(head_[b])];
            });
  for (const std::int32_t p : dirty_paths) rebuild_prefix(p);

  // Splice: clean labels ride over as word runs, dirty labels re-emit
  // (tombstoned/detached dirty ids re-emit as zero-length).
  std::vector<std::uint64_t> scratch;
  const bits::LabelArena old = std::move(labels_);
  labels_ = bits::LabelArena::patched(
      old, size(), dirty,
      [&](std::size_t i, BitWriter& w) { emit_label(i, w, scratch); });

  if (flipped) {
    ++stats_.restructured;
    last_outcome_ = RelabelOutcome::kRestructured;
  } else {
    ++stats_.incremental;
    last_outcome_ = RelabelOutcome::kIncremental;
  }
  stats_.labels_reemitted += count;
  stats_.labels_spliced += size() - count;
  last_dirty_ = count;

  // Delta tracking: a dirty-cone member whose re-emitted bits came out
  // identical (a sibling at the quantization boundary, say) need not ship.
  for (std::size_t i = 0; i < size(); ++i) {
    if (!dirty[i] || delta_dirty_[i] != 0) continue;
    if (i >= old.size() || old.label_bits(i) != labels_.label_bits(i) ||
        !(old.view(i) == labels_.view(i)))
      delta_dirty_[i] = 1;
  }
}

void IncrementalRelabeler::log_edit(LabelEdit::Kind kind, std::uint64_t a,
                                    std::uint64_t b) {
  delta_edits_.push_back({kind, a, b});
}

NodeId IncrementalRelabeler::insert_leaf(NodeId parent, std::uint32_t weight) {
  if (!alive(parent))
    throw std::out_of_range("IncrementalRelabeler: parent out of range");
  ++stats_.edits;
  log_edit(LabelEdit::Kind::kInsertLeaf, static_cast<std::uint64_t>(parent),
           weight);
  const auto x = static_cast<NodeId>(size());

  // Root-to-parent chain (every node whose subtree grows).
  const std::vector<NodeId> chain = chain_to(parent);

  append_node(parent, weight);

  bool extends = false;
  const NodeId flip_head = recheck_heavy(chain, x, &extends);

  if (flip_head != kNoNode &&
      static_cast<std::size_t>(
          subtree_size_[static_cast<std::size_t>(flip_head)]) > dirty_limit()) {
    fall_back(true);  // restructure region too big: don't even start
    return x;
  }

  // Grow the decomposition state by the one new node, or re-decompose the
  // flip region (which assigns the new leaf's path as part of the sweep).
  // This must precede change detection: the tables of the parent's (or
  // flipped) path are compared against the *post-edit* structure.
  if (flip_head != kNoNode) {
    path_of_.push_back(-1);  // placeholders; restructure() fills them
    pos_in_path_.push_back(0);
    light_depth_.push_back(0);
    heavy_.push_back(kNoNode);
    restructure(flip_head);
  } else {
    const auto pp = static_cast<std::size_t>(
        path_of_[static_cast<std::size_t>(parent)]);
    if (extends) {
      path_nodes_[pp].push_back(x);
      path_of_.push_back(static_cast<std::int32_t>(pp));
      pos_in_path_.push_back(
          pos_in_path_[static_cast<std::size_t>(parent)] + 1);
      light_depth_.push_back(light_depth_[static_cast<std::size_t>(parent)]);
      heavy_[static_cast<std::size_t>(parent)] = x;
    } else {
      const std::int32_t px = alloc_path();
      const auto pxi = static_cast<std::size_t>(px);
      head_[pxi] = x;
      path_nodes_[pxi] = {x};
      path_of_.push_back(px);
      pos_in_path_.push_back(0);
      light_depth_.push_back(
          light_depth_[static_cast<std::size_t>(parent)] + 1);
      branch_rd_[pxi] = branch_rd_[pp];
      branch_rd_[pxi].push_back(root_dist_[static_cast<std::size_t>(parent)]);
      pos_wts_[pxi] = position_weights(px);
      pos_code_[pxi] = bits::alphabetic_code(pos_wts_[pxi]);
    }
    heavy_.push_back(kNoNode);
  }

  // Dirty roots: the new leaf always; a flip's whole restructure region;
  // then the table changes detected below.
  std::vector<NodeId> roots{x};
  if (flip_head != kNoNode) roots.push_back(flip_head);
  detect_table_changes(chain, flip_head, +1, roots);
  if (flip_head == kNoNode && !extends) mark_light_site(parent, roots);

  std::vector<std::uint8_t> dirty(size(), 0);
  std::size_t count = 0;
  for (const NodeId r : roots) mark_cone(r, dirty, count);
  if (count > dirty_limit()) {
    fall_back(flip_head != kNoNode);
    return x;
  }
  splice_dirty(dirty, count, flip_head != kNoNode);
  return x;
}

void IncrementalRelabeler::delete_leaf(NodeId v) {
  if (!alive(v))
    throw std::out_of_range("IncrementalRelabeler: delete_leaf id not live");
  const auto vi = static_cast<std::size_t>(v);
  if (parent_[vi] == kNoNode)
    throw std::invalid_argument("IncrementalRelabeler: cannot delete the root");
  if (!children_[vi].empty())
    throw std::invalid_argument("IncrementalRelabeler: target is not a leaf");
  ++stats_.edits;
  log_edit(LabelEdit::Kind::kDeleteLeaf, static_cast<std::uint64_t>(v), 0);
  const NodeId parent = parent_[vi];
  const std::vector<NodeId> chain = chain_to(parent);

  // Structural removal: the id stays (a tombstone with a zero-length label
  // until compact()), the node leaves every live structure.
  auto& pc = children_[static_cast<std::size_t>(parent)];
  pc.erase(std::find(pc.begin(), pc.end(), v));
  add_sizes(chain, -1);
  state_[vi] = kDead;
  --live_;

  // Path bookkeeping: pop v off its path. A leaf is either its path's
  // bottom (its parent's heavy child) or a singleton path of its own.
  const std::int32_t pv = path_of_[vi];
  const auto pvi = static_cast<std::size_t>(pv);
  const bool was_heavy = head_[pvi] != v;
  if (was_heavy) {
    path_nodes_[pvi].pop_back();
    heavy_[static_cast<std::size_t>(parent)] = kNoNode;
  } else {
    head_[pvi] = kNoNode;
    path_nodes_[pvi].clear();
    free_paths_.push_back(pv);
  }
  path_of_[vi] = -1;

  const NodeId flip_head = recheck_heavy_resized(chain);
  if (flip_head != kNoNode &&
      static_cast<std::size_t>(
          subtree_size_[static_cast<std::size_t>(flip_head)]) > dirty_limit())
    return fall_back(true);
  if (flip_head != kNoNode) restructure(flip_head);

  std::vector<NodeId> roots;
  if (flip_head != kNoNode) roots.push_back(flip_head);
  detect_table_changes(chain, flip_head, -1, roots);
  if (flip_head == kNoNode && !was_heavy) mark_light_site(parent, roots);

  std::vector<std::uint8_t> dirty(size(), 0);
  std::size_t count = 0;
  dirty[vi] = 1;  // the tombstone's label is re-emitted as zero-length
  ++count;
  for (const NodeId r : roots) mark_cone(r, dirty, count);
  if (count > dirty_limit()) return fall_back(flip_head != kNoNode);
  splice_dirty(dirty, count, flip_head != kNoNode);
}

void IncrementalRelabeler::detach_subtree(NodeId v) {
  if (!alive(v))
    throw std::out_of_range("IncrementalRelabeler: detach id not live");
  const auto vi = static_cast<std::size_t>(v);
  if (parent_[vi] == kNoNode)
    throw std::invalid_argument("IncrementalRelabeler: cannot detach the root");
  if (detached_root_ != kNoNode)
    throw std::logic_error("IncrementalRelabeler: a detach is already pending");
  ++stats_.edits;
  log_edit(LabelEdit::Kind::kDetach, static_cast<std::uint64_t>(v), 0);
  const NodeId parent = parent_[vi];
  const std::vector<NodeId> chain = chain_to(parent);
  const auto k = static_cast<std::int64_t>(subtree_size_[vi]);

  // Structural cut.
  auto& pc = children_[static_cast<std::size_t>(parent)];
  pc.erase(std::find(pc.begin(), pc.end(), v));
  add_sizes(chain, -k);
  const bool was_heavy = heavy_[static_cast<std::size_t>(parent)] == v;
  if (was_heavy) {
    // The path through v continues below parent only inside subtree(v):
    // truncate it at parent.
    const auto pp = static_cast<std::size_t>(
        path_of_[static_cast<std::size_t>(parent)]);
    path_nodes_[pp].resize(static_cast<std::size_t>(
        pos_in_path_[static_cast<std::size_t>(parent)] + 1));
    heavy_[static_cast<std::size_t>(parent)] = kNoNode;
  }
  free_subtree_paths(v);
  {
    std::vector<NodeId> stack{v};
    while (!stack.empty()) {
      const NodeId x = stack.back();
      stack.pop_back();
      state_[static_cast<std::size_t>(x)] = kDetached;
      --live_;
      for (const NodeId c : children_[static_cast<std::size_t>(x)])
        stack.push_back(c);
    }
  }
  detached_root_ = v;
  parent_[vi] = kNoNode;

  const NodeId flip_head = recheck_heavy_resized(chain);
  if (flip_head != kNoNode &&
      static_cast<std::size_t>(
          subtree_size_[static_cast<std::size_t>(flip_head)]) > dirty_limit())
    return fall_back(true);
  if (flip_head != kNoNode) restructure(flip_head);

  std::vector<NodeId> roots;
  if (flip_head != kNoNode) roots.push_back(flip_head);
  detect_table_changes(chain, flip_head, -k, roots);
  if (flip_head == kNoNode && !was_heavy) mark_light_site(parent, roots);

  std::vector<std::uint8_t> dirty(size(), 0);
  std::size_t count = 0;
  mark_cone(v, dirty, count);  // detached labels are re-emitted zero-length
  for (const NodeId r : roots) mark_cone(r, dirty, count);
  if (count > dirty_limit()) return fall_back(flip_head != kNoNode);
  splice_dirty(dirty, count, flip_head != kNoNode);
}

void IncrementalRelabeler::attach_subtree(NodeId parent, std::uint32_t weight) {
  if (detached_root_ == kNoNode)
    throw std::logic_error("IncrementalRelabeler: no detach is pending");
  if (!alive(parent))
    throw std::out_of_range("IncrementalRelabeler: attach parent not live");
  ++stats_.edits;
  log_edit(LabelEdit::Kind::kAttach, static_cast<std::uint64_t>(parent),
           weight);
  const NodeId v = detached_root_;
  const auto vi = static_cast<std::size_t>(v);
  const std::vector<NodeId> chain = chain_to(parent);
  const auto k = static_cast<std::int64_t>(subtree_size_[vi]);

  // Structural graft (children stay in ascending-id order).
  auto& pc = children_[static_cast<std::size_t>(parent)];
  pc.insert(std::lower_bound(pc.begin(), pc.end(), v), v);
  parent_[vi] = parent;
  weight_[vi] = weight;
  add_sizes(chain, +k);
  {
    // Revive the subtree and rebase its root distances under the new
    // parent (parent-before-child order: a node's distance is read after
    // its parent's was written).
    std::vector<NodeId> stack{v};
    while (!stack.empty()) {
      const NodeId x = stack.back();
      stack.pop_back();
      const auto xi = static_cast<std::size_t>(x);
      state_[xi] = kLive;
      ++live_;
      root_dist_[xi] =
          root_dist_[static_cast<std::size_t>(parent_[xi])] + weight_[xi];
      for (const NodeId c : children_[xi]) stack.push_back(c);
    }
  }
  detached_root_ = kNoNode;

  const NodeId flip_head = recheck_heavy_resized(chain);
  if (flip_head != kNoNode &&
      static_cast<std::size_t>(
          subtree_size_[static_cast<std::size_t>(flip_head)]) > dirty_limit())
    return fall_back(true);
  if (flip_head != kNoNode) {
    restructure(flip_head);  // re-decomposes the grafted subtree too
  } else {
    // v hangs by a light edge: decompose its subtree at the new depth.
    decompose_subtree(v, light_depth_[static_cast<std::size_t>(parent)] + 1);
  }

  std::vector<NodeId> roots;
  if (flip_head != kNoNode) roots.push_back(flip_head);
  detect_table_changes(chain, flip_head, +k, roots);
  if (flip_head == kNoNode) mark_light_site(parent, roots);

  std::vector<std::uint8_t> dirty(size(), 0);
  std::size_t count = 0;
  mark_cone(v, dirty, count);  // every grafted label is fresh
  for (const NodeId r : roots) mark_cone(r, dirty, count);
  if (count > dirty_limit()) return fall_back(flip_head != kNoNode);
  splice_dirty(dirty, count, flip_head != kNoNode);
}

void IncrementalRelabeler::set_edge_weight(NodeId v, std::uint32_t weight) {
  if (!alive(v))
    throw std::out_of_range("IncrementalRelabeler: weight id not live");
  const auto vi = static_cast<std::size_t>(v);
  if (parent_[vi] == kNoNode)
    throw std::invalid_argument(
        "IncrementalRelabeler: the root has no parent edge");
  ++stats_.edits;
  log_edit(LabelEdit::Kind::kSetWeight, static_cast<std::uint64_t>(v), weight);
  if (weight_[vi] == weight) {  // no-op edit: nothing dirties
    ++stats_.incremental;
    last_outcome_ = RelabelOutcome::kIncremental;
    last_dirty_ = 0;
    return;
  }
  weight_[vi] = weight;

  // Sizes are untouched, so the decomposition and every code table stay
  // put; only distances move. Rebase root distances over subtree(v), then
  // the branch-distance lists of every path headed inside it
  // (parents-before-children so the recurrence reads refreshed parents).
  std::vector<NodeId> order;
  {
    std::vector<NodeId> stack{v};
    while (!stack.empty()) {
      const NodeId x = stack.back();
      stack.pop_back();
      const auto xi = static_cast<std::size_t>(x);
      root_dist_[xi] =
          root_dist_[static_cast<std::size_t>(parent_[xi])] + weight_[xi];
      order.push_back(x);
      for (const NodeId c : children_[xi]) stack.push_back(c);
    }
  }
  std::vector<std::int32_t> paths;
  for (const NodeId x : order) {
    const std::int32_t p = path_of_[static_cast<std::size_t>(x)];
    if (head_[static_cast<std::size_t>(p)] == x) paths.push_back(p);
  }
  std::sort(paths.begin(), paths.end(), [&](std::int32_t a, std::int32_t b) {
    return light_depth_[static_cast<std::size_t>(head_[a])] <
           light_depth_[static_cast<std::size_t>(head_[b])];
  });
  for (const std::int32_t p : paths) {
    const auto pi = static_cast<std::size_t>(p);
    const NodeId b = parent_[static_cast<std::size_t>(head_[pi])];
    branch_rd_[pi] = branch_rd_[static_cast<std::size_t>(
        path_of_[static_cast<std::size_t>(b)])];
    branch_rd_[pi].push_back(root_dist_[static_cast<std::size_t>(b)]);
  }

  std::vector<std::uint8_t> dirty(size(), 0);
  std::size_t count = 0;
  mark_cone(v, dirty, count);  // every label in subtree(v) stores a distance
  if (count > dirty_limit()) return fall_back(false);
  splice_dirty(dirty, count, false);
}

std::vector<NodeId> IncrementalRelabeler::dense_map() const {
  std::vector<NodeId> map(size(), kNoNode);
  NodeId next = 0;
  for (std::size_t i = 0; i < size(); ++i)
    if (state_[i] == kLive) map[i] = next++;
  return map;
}

std::vector<NodeId> IncrementalRelabeler::compact() {
  if (detached_root_ != kNoNode)
    throw std::logic_error(
        "IncrementalRelabeler: compact with a detach pending");
  ++stats_.compactions;
  log_edit(LabelEdit::Kind::kCompact, 0, 0);
  const std::size_t n = size();
  std::vector<NodeId> map(n, kNoNode);
  std::vector<std::size_t> keep;
  keep.reserve(live_);
  for (std::size_t i = 0; i < n; ++i)
    if (state_[i] == kLive) {
      map[i] = static_cast<NodeId>(keep.size());
      keep.push_back(i);
    }
  if (keep.size() == n) return map;  // no tombstones: identity

  // Delta tracking: a dropped id that existed in the base epoch becomes a
  // dropped run in the next delta; ids born and killed since the base just
  // vanish.
  for (std::size_t i = 0; i < n; ++i)
    if (state_[i] != kLive && base_of_cur_[i] != kNoNode)
      delta_dropped_.push_back(
          static_cast<std::uint64_t>(base_of_cur_[i]));

  const auto m = keep.size();
  const auto take_id = [&](NodeId x) {
    return x == kNoNode ? kNoNode : map[static_cast<std::size_t>(x)];
  };
  const auto gather = [&](auto& vec) {
    std::remove_reference_t<decltype(vec)> out(m);
    for (std::size_t j = 0; j < m; ++j) out[j] = std::move(vec[keep[j]]);
    vec = std::move(out);
  };
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t o = keep[j];
    parent_[o] = take_id(parent_[o]);
    heavy_[o] = take_id(heavy_[o]);
    for (NodeId& c : children_[o]) c = take_id(c);  // monotone: order holds
  }
  gather(parent_);
  gather(weight_);
  gather(children_);
  gather(subtree_size_);
  gather(root_dist_);
  gather(heavy_);
  gather(path_of_);
  gather(pos_in_path_);
  gather(light_depth_);
  gather(base_of_cur_);
  gather(delta_dirty_);
  state_.assign(m, kLive);
  for (auto& pn : path_nodes_)
    for (NodeId& x : pn) x = take_id(x);
  for (NodeId& h : head_)
    if (h != kNoNode) h = take_id(h);
  labels_ = bits::LabelArena::gathered(labels_, keep);
  return map;
}

LabelDelta IncrementalRelabeler::make_delta() const {
  LabelDelta d;
  d.scheme = scheme_tag();
  d.base_count = delta_base_count_;
  d.new_count = size();
  d.base_lens_hash = delta_base_hash_;
  std::vector<std::uint64_t> dropped = delta_dropped_;
  std::sort(dropped.begin(), dropped.end());
  d.dropped = id_runs(dropped);
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < size(); ++i)
    if (delta_dirty_[i] != 0 || base_of_cur_[i] == kNoNode) ids.push_back(i);
  d.dirty.assign(ids.begin(), ids.end());
  d.payload = bits::LabelArena::gathered(labels_, ids);
  d.edits = delta_edits_;
  d.base_chain = delta_chain_;
  d.new_chain = LabelStore::chain_hash(delta_chain_, d);
  return d;
}

void IncrementalRelabeler::rebase_delta() {
  delta_base_count_ = size();
  delta_base_hash_ = LabelStore::lens_hash(labels_);
  // A fresh base: the serving side derives the same chain start from the
  // full arena it just loaded.
  delta_chain_ = delta_base_hash_;
  base_of_cur_.resize(size());
  for (std::size_t i = 0; i < size(); ++i)
    base_of_cur_[i] = static_cast<NodeId>(i);
  delta_dropped_.clear();
  delta_dirty_.assign(size(), 0);
  delta_edits_.clear();
}

void IncrementalRelabeler::advance_delta(const LabelDelta& d) {
  if (d.base_chain != delta_chain_)
    throw std::logic_error(
        "IncrementalRelabeler: delta does not chain from the current epoch");
  rebase_delta();
  delta_chain_ = d.new_chain;  // continue the chain, don't restart it
}

void IncrementalRelabeler::ship_delta(std::ostream& os) {
  const LabelDelta d = make_delta();
  LabelStore::save_delta(os, d);
  advance_delta(d);
}

void IncrementalRelabeler::check_state() const {
  // Fresh pipeline on the compacted live tree, compared through the
  // (order-preserving) dense map.
  std::vector<NodeId> old_of;
  const Tree t = live_tree(&old_of);
  const HeavyPathDecomposition hpd(t);
  const nca::HeavyPathCodes codes(hpd, kPolicy);
  const auto fail = [](const char* what, NodeId v) {
    throw std::logic_error(std::string("IncrementalRelabeler state: ") +
                           what + " diverges at node " + std::to_string(v));
  };
  if (static_cast<std::size_t>(t.size()) != live_) fail("live count", -1);
  // Fresh branch-rd recurrence (same as full_rebuild's), in fresh ids.
  std::vector<std::vector<std::uint64_t>> want_rd(
      static_cast<std::size_t>(hpd.num_paths()));
  {
    std::vector<std::int32_t> order(want_rd.size());
    for (std::size_t p = 0; p < want_rd.size(); ++p)
      order[p] = static_cast<std::int32_t>(p);
    std::sort(order.begin(), order.end(),
              [&](std::int32_t a, std::int32_t b) {
                return hpd.light_depth(hpd.head(a)) <
                       hpd.light_depth(hpd.head(b));
              });
    for (const std::int32_t p : order) {
      const NodeId b = t.parent(hpd.head(p));
      if (b == kNoNode) continue;
      auto rs = want_rd[static_cast<std::size_t>(hpd.path_of(b))];
      rs.push_back(t.root_distance(b));
      want_rd[static_cast<std::size_t>(p)] = std::move(rs);
    }
  }
  for (NodeId nv = 0; nv < t.size(); ++nv) {
    const NodeId v = old_of[static_cast<std::size_t>(nv)];
    const auto i = static_cast<std::size_t>(v);
    const NodeId want_heavy =
        hpd.heavy_child(nv) == kNoNode
            ? kNoNode
            : old_of[static_cast<std::size_t>(hpd.heavy_child(nv))];
    if (heavy_[i] != want_heavy) fail("heavy_child", v);
    if (light_depth_[i] != hpd.light_depth(nv)) fail("light_depth", v);
    if (pos_in_path_[i] != hpd.pos_in_path(nv)) fail("pos_in_path", v);
    if (subtree_size_[i] != t.subtree_size(nv)) fail("subtree_size", v);
    if (root_dist_[i] != t.root_distance(nv)) fail("root_distance", v);
    const auto p = static_cast<std::size_t>(path_of_[i]);
    const std::int32_t fp = hpd.path_of(nv);
    if (head_[p] != old_of[static_cast<std::size_t>(hpd.head(fp))])
      fail("path head", v);
    const auto nodes = hpd.path_nodes(fp);
    std::vector<NodeId> want_nodes;
    want_nodes.reserve(nodes.size());
    for (const NodeId x : nodes)
      want_nodes.push_back(old_of[static_cast<std::size_t>(x)]);
    if (path_nodes_[p] != want_nodes) fail("path_nodes", v);
    const auto want_pc = codes.position_codes(fp);
    if (pos_code_[p].size() != want_pc.size()) fail("pos_code size", v);
    for (std::size_t q = 0; q < want_pc.size(); ++q)
      if (pos_code_[p][q].bits != want_pc[q].bits ||
          pos_code_[p][q].len != want_pc[q].len)
        fail("pos_code", v);
    if (!(prefix_[p] == codes.prefix(fp))) fail("prefix", v);
    if (bounds_[p] != codes.prefix_bounds(fp)) fail("bounds", v);
    if (branch_rd_[p] != want_rd[static_cast<std::size_t>(fp)])
      fail("branch_rd", v);
  }
  for (std::size_t i = 0; i < size(); ++i)
    if (state_[i] != kLive && path_of_[i] != -1)
      fail("non-live node still names a path", static_cast<NodeId>(i));
  for (const std::int32_t p : free_paths_)
    if (head_[static_cast<std::size_t>(p)] != kNoNode)
      fail("free list names a live path", head_[static_cast<std::size_t>(p)]);
}

LabelStore::LoadedArena IncrementalRelabeler::to_loaded() const {
  LabelStore::LoadedArena out;
  out.scheme = scheme_tag();
  out.labels = labels_;
  return out;
}

Tree IncrementalRelabeler::snapshot() const { return live_tree(nullptr); }

}  // namespace treelab::core
