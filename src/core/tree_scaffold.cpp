#include "core/tree_scaffold.hpp"

namespace treelab::core {

const tree::HeavyPathDecomposition& TreeScaffold::hpd() const {
  if (!hpd_) {
    hpd_ = std::make_unique<tree::HeavyPathDecomposition>(*t_);
    ++components_built_;
  }
  return *hpd_;
}

const nca::NcaLabeling& TreeScaffold::nca() const {
  if (!nca_) {
    nca_ = std::make_unique<nca::NcaLabeling>(hpd(), threads_);
    ++components_built_;
  }
  return *nca_;
}

const tree::BinarizedTree& TreeScaffold::binarized() const {
  if (!binarized_) {
    binarized_ = std::make_unique<tree::BinarizedTree>(tree::binarize(*t_));
    ++components_built_;
  }
  return *binarized_;
}

const tree::HeavyPathDecomposition& TreeScaffold::binarized_hpd() const {
  if (!bin_hpd_) {
    bin_hpd_ =
        std::make_unique<tree::HeavyPathDecomposition>(binarized().tree);
    ++components_built_;
  }
  return *bin_hpd_;
}

const tree::CollapsedTree& TreeScaffold::collapsed() const {
  if (!collapsed_) {
    collapsed_ = std::make_unique<tree::CollapsedTree>(binarized_hpd());
    ++components_built_;
  }
  return *collapsed_;
}

const nca::NcaLabeling& TreeScaffold::binarized_nca() const {
  if (!bin_nca_) {
    bin_nca_ = std::make_unique<nca::NcaLabeling>(binarized_hpd(), threads_);
    ++components_built_;
  }
  return *bin_nca_;
}

}  // namespace treelab::core
