#include "core/kdistance_scheme.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "bits/bitio.hpp"
#include "bits/monotone.hpp"
#include "bits/wordops.hpp"
#include "tree/hpd.hpp"

namespace treelab::core {

using bits::BitReader;
using bits::BitSpan;
using bits::BitVec;
using bits::BitWriter;
using bits::LabelArena;
using bits::MonotoneSeq;
using tree::HeavyPathDecomposition;
using tree::kNoNode;
using tree::NodeId;
using tree::Tree;

namespace {

/// Height of the binary-trie NCA of the (inclusive) range [a, b].
int range_height(std::uint64_t a, std::uint64_t b) {
  return a == b ? 0 : bits::msb(a ^ b) + 1;
}

/// Integer range identifier: a canonical point inside the dyadic span of the
/// trie node at height h above pre (Section 4.4's "clear the h trailing bits
/// of pre and set the h-th bit").
std::uint64_t id_int(std::uint64_t pre, int h) {
  const std::uint64_t base = (pre >> h) << h;
  return h > 0 ? base | (std::uint64_t{1} << (h - 1)) : base;
}

/// Identifier equality from (member, height) pairs: the trie nodes coincide
/// iff the heights agree and the members share all bits above the height.
bool id_equal(std::uint64_t pre_a, int ha, std::uint64_t pre_b, int hb) {
  return ha == hb && (pre_a >> ha) == (pre_b >> hb);
}

std::vector<std::uint64_t> read_seq(BitReader& r) {
  const MonotoneSeq s = MonotoneSeq::read_from(r);
  std::vector<std::uint64_t> out(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) out[i] = s.get(i);
  return out;
}

}  // namespace

KDistanceAttachedLabel KDistanceScheme::attach(std::uint64_t k, BitSpan l) {
  BitReader r(l);
  KDistanceAttachedLabel p;
  p.pre_ = r.get_delta0();
  p.lightdepth_ = r.get_delta0();
  p.small_k_ = r.get_bit();
  p.hl_seq_ = MonotoneSeq::read_from(r);
  p.hl_.resize(p.hl_seq_.size());
  for (std::size_t i = 0; i < p.hl_.size(); ++i) p.hl_[i] = p.hl_seq_.get(i);
  p.hc_ = read_seq(r);
  p.dist_ = read_seq(r);
  if (p.hl_.empty() || p.hl_.size() != p.hc_.size() ||
      p.hl_.size() != p.dist_.size())
    throw bits::DecodeError("k-dist label: chain arrays inconsistent");
  // Range heights feed shift amounts in the identifier arithmetic; genuine
  // heights are <= msb(2n) + 1 < 64, so anything wider is corruption (and
  // would be undefined behaviour if let through to the shifts).
  for (std::size_t i = 0; i < p.hl_.size(); ++i)
    if (p.hl_[i] > 63 || p.hc_[i] > 63)
      throw bits::DecodeError("k-dist label: implausible range height");
  p.alpha_ = r.get_delta0();
  if (p.small_k_) {
    p.i_mod_ = r.get_delta0();
    if (p.i_mod_ > k) throw bits::DecodeError("k-dist label: bad i_mod");
    p.fwd_ = read_seq(r);
    p.bwd_ = read_seq(r);
  }
  return p;
}

/// Query machinery over attached labels, shared verbatim by the raw and the
/// attached entry points (the raw path simply attaches first).
struct KDistanceQueryImpl {
  using L = KDistanceAttachedLabel;

  static std::size_t r(const L& p) { return p.hl_.size() - 1; }

  /// The aligned index in `other`'s chain of the node at the same light
  /// depth as `mine`'s chain entry `s`, or negative if none.
  static std::int64_t aligned_index(const L& mine, std::size_t s,
                                    const L& other) {
    return static_cast<std::int64_t>(other.lightdepth_) -
           static_cast<std::int64_t>(mine.lightdepth_) +
           static_cast<std::int64_t>(s);
  }

  static BoundedDistance within(std::uint64_t k, std::uint64_t d) {
    return d <= k ? BoundedDistance{true, d} : BoundedDistance{false, 0};
  }

  static constexpr BoundedDistance kExceeds{false, 0};

  /// Both-top case: u1 at position i (mod K known), v1 at position j on the
  /// same heavy path; computes |j - i| via Lemma 4.5 or detects > k.
  static BoundedDistance path_distance_small(std::uint64_t k, const L& u,
                                             const L& v) {
    const std::uint64_t a_u = id_int(u.pre_, static_cast<int>(u.hl_.back()));
    const std::uint64_t a_v = id_int(v.pre_, static_cast<int>(v.hl_.back()));
    // Orient so that `lo` is the higher node (smaller identifier/position).
    const L& lo = a_u < a_v ? u : v;
    const L& hi = a_u < a_v ? v : u;
    const std::uint64_t a_i = std::min(a_u, a_v), a_j = std::max(a_u, a_v);
    const std::uint64_t K = k + 1;
    const std::uint64_t t = (hi.i_mod_ + K - lo.i_mod_ % K) % K;
    if (t == 0) return kExceeds;  // a_i != a_j, so j - i >= K > k
    if (t > lo.fwd_.size() || t > hi.bwd_.size()) return kExceeds;
    const auto e = static_cast<std::uint64_t>(bits::msb(a_j - a_i));
    if (lo.fwd_[t - 1] != e || hi.bwd_[t - 1] != e)
      return kExceeds;  // Lemma 4.4
    return within(k, t);
  }

  static std::int64_t find_match_scan(const L& u, const L& v);
  static std::int64_t find_match_fast(const L& u, const L& v);
  static BoundedDistance resolve(std::uint64_t k, const L& u, const L& v,
                                 std::int64_t match_s);
};

KDistanceScheme::KDistanceScheme(const Tree& t, std::uint64_t k)
    : KDistanceScheme(TreeScaffold(t), k) {}

KDistanceScheme::KDistanceScheme(const TreeScaffold& scaffold, std::uint64_t k)
    : k_(k) {
  if (k < 1) throw std::invalid_argument("KDistanceScheme: k < 1");
  const Tree& t = scaffold.tree();
  if (!t.is_unit_weighted())
    throw std::invalid_argument("KDistanceScheme: requires unit weights");
  const NodeId n = t.size();
  const HeavyPathDecomposition& hpd = scaffold.hpd();
  const bool small_k =
      k < static_cast<std::uint64_t>(bits::ceil_log2(
              static_cast<std::uint64_t>(std::max<NodeId>(2, n))));

  // Preorder with the heavy child rightmost, so that the light range of v is
  // the contiguous block [pre(v), pre(heavy(v))) (or all of T_v at a path
  // tail).
  std::vector<std::uint64_t> pre(static_cast<std::size_t>(n));
  {
    std::uint64_t c = 0;
    std::vector<NodeId> stack{t.root()};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      pre[static_cast<std::size_t>(v)] = c++;
      const NodeId hv = hpd.heavy_child(v);
      if (hv != kNoNode) stack.push_back(hv);  // popped last -> visited last
      const auto cs = t.children(v);
      for (std::size_t i = cs.size(); i-- > 0;)
        if (cs[i] != hv) stack.push_back(cs[i]);
    }
  }

  // Per node: height of its light range and of its path head's full range;
  // per path: the increasing identifier sequence a(q_1), ..., a(q_s).
  std::vector<int> hl(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const NodeId hv = hpd.heavy_child(v);
    const std::uint64_t lo = pre[static_cast<std::size_t>(v)];
    const std::uint64_t hi =
        hv == kNoNode
            ? lo + static_cast<std::uint64_t>(t.subtree_size(v)) - 1
            : pre[static_cast<std::size_t>(hv)] - 1;
    hl[static_cast<std::size_t>(v)] = range_height(lo, hi);
  }
  std::vector<int> hc(static_cast<std::size_t>(n));  // indexed by path head
  for (std::int32_t p = 0; p < hpd.num_paths(); ++p) {
    const NodeId h = hpd.head(p);
    const std::uint64_t lo = pre[static_cast<std::size_t>(h)];
    const std::uint64_t hi =
        lo + static_cast<std::uint64_t>(t.subtree_size(h)) - 1;
    hc[static_cast<std::size_t>(h)] = range_height(lo, hi);
  }
  std::vector<std::vector<std::uint64_t>> path_ids(
      static_cast<std::size_t>(hpd.num_paths()));
  for (std::int32_t p = 0; p < hpd.num_paths(); ++p) {
    auto& ids = path_ids[static_cast<std::size_t>(p)];
    for (NodeId q : hpd.path_nodes(p))
      ids.push_back(id_int(pre[static_cast<std::size_t>(q)],
                           hl[static_cast<std::size_t>(q)]));
  }

  // Per-worker scratch lives in the emitter (copied per chunk); everything
  // else is read-only shared state.
  struct Scratch {
    std::vector<NodeId> chain;
    std::vector<std::uint64_t> dist, seq, fwd, bwd;
  };
  labels_ = LabelArena::build(
      static_cast<std::size_t>(n), scaffold.threads(),
      [&t, &hpd, &pre, &hl, &hc, &path_ids, k, small_k,
       s = Scratch{}](std::size_t i, BitWriter& w) mutable {
        const auto v = static_cast<NodeId>(i);
        // Significant ancestor chain v = u_0, u_1, ... up to distance k.
        s.chain.assign(1, v);
        s.dist.assign(1, 0);
        for (;;) {
          const NodeId cur = s.chain.back();
          const NodeId head = hpd.head_of(cur);
          const NodeId up = t.parent(head);
          if (up == kNoNode) break;
          const std::uint64_t d =
              s.dist.back() +
              static_cast<std::uint64_t>(t.depth(cur) - t.depth(head)) + 1;
          if (d > k) break;
          s.chain.push_back(up);
          s.dist.push_back(d);
        }
        const NodeId top = s.chain.back();
        const std::int32_t top_path = hpd.path_of(top);
        const auto top_pos = static_cast<std::uint64_t>(hpd.pos_in_path(top));

        w.put_delta0(pre[static_cast<std::size_t>(v)]);
        w.put_delta0(static_cast<std::uint64_t>(hpd.light_depth(v)));
        w.put_bit(small_k);
        s.seq.clear();
        for (NodeId c : s.chain)
          s.seq.push_back(
              static_cast<std::uint64_t>(hl[static_cast<std::size_t>(c)]));
        (void)MonotoneSeq::encode_to(w, s.seq, 64);
        s.seq.clear();
        for (NodeId c : s.chain)
          s.seq.push_back(static_cast<std::uint64_t>(
              hc[static_cast<std::size_t>(hpd.head_of(c))]));
        (void)MonotoneSeq::encode_to(w, s.seq, 64);
        (void)MonotoneSeq::encode_to(w, s.dist, k);

        const std::uint64_t alpha =
            small_k ? std::min(top_pos, 2 * k + 1) : top_pos;
        w.put_delta0(alpha);
        if (small_k) {
          w.put_delta0(top_pos % (k + 1));
          const auto& ids = path_ids[static_cast<std::size_t>(top_path)];
          const std::uint64_t a_i = ids[top_pos];
          s.fwd.clear();
          s.bwd.clear();
          for (std::uint64_t tt = 1; tt <= k && top_pos + tt < ids.size(); ++tt)
            s.fwd.push_back(
                static_cast<std::uint64_t>(bits::msb(ids[top_pos + tt] - a_i)));
          for (std::uint64_t tt = 1; tt <= k && tt <= top_pos; ++tt)
            s.bwd.push_back(
                static_cast<std::uint64_t>(bits::msb(a_i - ids[top_pos - tt])));
          (void)MonotoneSeq::encode_to(w, s.fwd, 64);
          (void)MonotoneSeq::encode_to(w, s.bwd, 64);
        }
      });
}

/// Linear-scan NCSA locator (the reference): smallest aligned index s in
/// u's chain with matching (id, lightdepth), or -1 (Lemma 4.3 makes the
/// first match the NCSA).
std::int64_t KDistanceQueryImpl::find_match_scan(const L& u, const L& v) {
  std::int64_t s = std::max<std::int64_t>(
      0, static_cast<std::int64_t>(u.lightdepth_) -
             static_cast<std::int64_t>(v.lightdepth_));
  std::int64_t tt = aligned_index(u, static_cast<std::size_t>(s), v);
  for (; s <= static_cast<std::int64_t>(r(u)) &&
         tt <= static_cast<std::int64_t>(r(v));
       ++s, ++tt) {
    if (tt < 0) continue;
    if (id_equal(u.pre_, static_cast<int>(u.hl_[static_cast<std::size_t>(s)]),
                 v.pre_,
                 static_cast<int>(v.hl_[static_cast<std::size_t>(tt)])))
      return s;
  }
  return -1;
}

/// Section 4.4 NCSA locator: identical answers in O(1)-per-word time.
/// Matched levels form a suffix of the aligned window (node equality at a
/// level forces it above), so the longest common suffix of the two height
/// sequences bounds the candidates; within it, id(L) equality is exactly
/// "height >= l" for l = |common low bits of pre(u), pre(v)|, found with a
/// successor query on the monotone height sequence.
std::int64_t KDistanceQueryImpl::find_match_fast(const L& u, const L& v) {
  const std::int64_t delta = static_cast<std::int64_t>(u.lightdepth_) -
                             static_cast<std::int64_t>(v.lightdepth_);
  const std::int64_t lo_s = std::max<std::int64_t>(0, delta);
  const std::int64_t hi_s =
      std::min(static_cast<std::int64_t>(r(u)),
               static_cast<std::int64_t>(r(v)) + delta);
  if (hi_s < lo_s) return -1;
  const std::size_t lcs = MonotoneSeq::lcs_of_prefixes(
      u.hl_seq_, static_cast<std::size_t>(hi_s) + 1, v.hl_seq_,
      static_cast<std::size_t>(hi_s - delta) + 1);
  if (lcs == 0) return -1;
  const std::int64_t first_eq = hi_s + 1 - static_cast<std::int64_t>(lcs);
  // Identifiers can only coincide once the range height covers every bit in
  // which the two preorders differ.
  const int l = u.pre_ == v.pre_ ? 0 : bits::bitwidth(u.pre_ ^ v.pre_);
  const auto first_high = static_cast<std::int64_t>(
      u.hl_seq_.successor(static_cast<std::uint64_t>(l)));
  const std::int64_t s = std::max({first_eq, first_high, lo_s});
  return s <= hi_s ? s : -1;
}

BoundedDistance KDistanceQueryImpl::resolve(std::uint64_t k, const L& u,
                                            const L& v, std::int64_t match_s) {
  if (match_s >= 0) {
    const auto s = static_cast<std::size_t>(match_s);
    const auto tt = static_cast<std::size_t>(aligned_index(u, s, v));
    // Matched: w = u_s = v_tt is the NCSA.
    if (s == 0) return within(k, v.dist_[tt]);  // u is an ancestor of v
    if (tt == 0) return within(k, u.dist_[s]);  // v is an ancestor of u
    const std::uint64_t du = u.dist_[s] - u.dist_[s - 1];  // d(u1, w)
    const std::uint64_t dv = v.dist_[tt] - v.dist_[tt - 1];
    const bool same_path =
        id_equal(u.pre_, static_cast<int>(u.hc_[s - 1]), v.pre_,
                 static_cast<int>(v.hc_[tt - 1]));
    const std::uint64_t near = same_path ? std::min(du, dv) : 0;
    return within(k, u.dist_[s] + v.dist_[tt] - 2 * near);
  }

  // No stored common significant ancestor: the branch of at least one side
  // is at its top significant ancestor. Check both orientations.
  const auto try_top = [&](const L& a, const L& b) -> BoundedDistance {
    // a's branch is a_top; b's aligned chain entry shares a_top's level.
    const std::int64_t bi = aligned_index(a, r(a), b);
    if (bi < 0 || bi > static_cast<std::int64_t>(r(b))) return kExceeds;
    if (!id_equal(a.pre_, static_cast<int>(a.hc_[r(a)]), b.pre_,
                  static_cast<int>(b.hc_[bi])))
      return kExceeds;  // not on the same heavy path
    if (static_cast<std::size_t>(bi) == r(b)) {
      // Both tops on the shared path.
      BoundedDistance mid;
      if (a.small_k_) {
        mid = path_distance_small(k, a, b);
      } else {
        const std::uint64_t da = a.alpha_, db = b.alpha_;
        mid = within(k, da > db ? da - db : db - da);
      }
      if (!mid.within) return kExceeds;
      return within(k, a.dist_[r(a)] + mid.distance + b.dist_[r(b)]);
    }
    // a at top, b's branch strictly below its top: d(a1, w) = alpha_a + 1,
    // d(b1, w) = b.dist[bi+1] - b.dist[bi], both measured to the parent w of
    // the shared path's head.
    if (a.small_k_ && a.alpha_ >= 2 * k + 1) return kExceeds;
    const std::uint64_t da = a.alpha_ + 1;
    const std::uint64_t db = b.dist_[bi + 1] - b.dist_[bi];
    const std::uint64_t mid = da > db ? da - db : db - da;
    return within(k, a.dist_[r(a)] + mid + b.dist_[bi]);
  };

  const BoundedDistance via_u = try_top(u, v);
  if (via_u.within) return via_u;
  return try_top(v, u);
}

BoundedDistance KDistanceScheme::query(std::uint64_t k,
                                       const KDistanceAttachedLabel& lu,
                                       const KDistanceAttachedLabel& lv) {
  return KDistanceQueryImpl::resolve(
      k, lu, lv, KDistanceQueryImpl::find_match_fast(lu, lv));
}

BoundedDistance KDistanceScheme::query_linear(
    std::uint64_t k, const KDistanceAttachedLabel& lu,
    const KDistanceAttachedLabel& lv) {
  return KDistanceQueryImpl::resolve(
      k, lu, lv, KDistanceQueryImpl::find_match_scan(lu, lv));
}

BoundedDistance KDistanceScheme::query(std::uint64_t k, BitSpan lu,
                                       BitSpan lv) {
  return query(k, attach(k, lu), attach(k, lv));
}

BoundedDistance KDistanceScheme::query_linear(std::uint64_t k, BitSpan lu,
                                              BitSpan lv) {
  return query_linear(k, attach(k, lu), attach(k, lv));
}

}  // namespace treelab::core
