// AlstrupScheme — the 1/2 log^2 n + O(log n log log n) distance labeling of
// Alstrup, Gørtz, Halvorsen and Porat [ICALP'16], i.e. the distance-array
// framework of Section 3.1 with *unmodified* arrays.
//
// The label of u stores its root distance, its NCA label (Lemma 2.1), and
// the monotone sequence R_1 <= ... <= R_k where R_j is the root distance of
// the branch node of the j-th light edge on the root-to-u path (equivalent,
// up to reversible arithmetic, to the suffix sums of the distance array
// D(u); see Lemma 3.1). Gaps telescope to sum_i log d(l_i(u)) ~ 1/2 log^2 n
// bits. Queried via domination: if u dominates v then
// root_distance(NCA(u,v)) = R_{lightdepth(u,v)+1}(u).
//
// This is the scheme the paper proves is optimal *among universal-tree /
// level-ancestor style schemes* and then beats by a factor ~2 (FgnwScheme).
#pragma once

#include <cstdint>
#include <vector>

#include "core/labeling.hpp"
#include "tree/tree.hpp"

namespace treelab::core {

class AlstrupScheme {
 public:
  explicit AlstrupScheme(const tree::Tree& t);

  [[nodiscard]] const bits::BitVec& label(tree::NodeId v) const noexcept {
    return labels_[v];
  }
  [[nodiscard]] const std::vector<bits::BitVec>& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] LabelStats stats() const { return stats_of(labels_); }

  /// Size of the distance-array part alone (the encoded monotone sequence
  /// R_1..R_k) — the ~1/2 log^2 n dominant term the paper's comparison is
  /// about, without the shared O(log n) NCA/header overhead.
  [[nodiscard]] const LabelStats& distance_payload_stats() const noexcept {
    return payload_;
  }

  /// Exact weighted distance from labels alone.
  [[nodiscard]] static std::uint64_t query(const bits::BitVec& lu,
                                           const bits::BitVec& lv);

 private:
  std::vector<bits::BitVec> labels_;
  LabelStats payload_;
};

}  // namespace treelab::core
