// AlstrupScheme — the 1/2 log^2 n + O(log n log log n) distance labeling of
// Alstrup, Gørtz, Halvorsen and Porat [ICALP'16], i.e. the distance-array
// framework of Section 3.1 with *unmodified* arrays.
//
// The label of u stores its root distance, its NCA label (Lemma 2.1), and
// the monotone sequence R_1 <= ... <= R_k where R_j is the root distance of
// the branch node of the j-th light edge on the root-to-u path (equivalent,
// up to reversible arithmetic, to the suffix sums of the distance array
// D(u); see Lemma 3.1). Gaps telescope to sum_i log d(l_i(u)) ~ 1/2 log^2 n
// bits. Queried via domination: if u dominates v then
// root_distance(NCA(u,v)) = R_{lightdepth(u,v)+1}(u).
//
// This is the scheme the paper proves is optimal *among universal-tree /
// level-ancestor style schemes* and then beats by a factor ~2 (FgnwScheme).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bits/label_arena.hpp"
#include "bits/monotone.hpp"
#include "core/labeling.hpp"
#include "core/tree_scaffold.hpp"
#include "nca/nca_labeling.hpp"
#include "tree/tree.hpp"

namespace treelab::core {

/// A pre-parsed Alstrup label for repeated queries: root distance, attached
/// NCA label, and the decoded branch-distance sequence R_1..R_k. After the
/// one-time attach, each query is the NCA first-differing-bit scan plus one
/// O(1) MonotoneSeq lookup — no re-decoding of the raw bits.
/// Produced by AlstrupScheme::attach().
class AlstrupAttachedLabel {
 public:
  [[nodiscard]] std::uint64_t root_distance() const noexcept { return rd_; }

 private:
  friend class AlstrupScheme;
  std::uint64_t rd_ = 0;
  nca::AttachedNcaLabel nca_;
  bits::MonotoneSeq rs_;
};

/// Tuning knobs for AlstrupScheme. `weights` selects the Gilbert–Moore
/// weight policy of the embedded NCA labeling: kExact is the paper's
/// construction; kStablePow2 is the edit-stable variant consumed by
/// IncrementalRelabeler (labels a hair larger, identical query semantics —
/// the label bits are self-describing, so readers need no flag).
struct AlstrupOptions {
  nca::CodeWeights weights = nca::CodeWeights::kExact;
  int threads = 0;  ///< emission parallelism (0 = TREELAB_THREADS / hw)
};

class AlstrupScheme {
 public:
  using Attached = AlstrupAttachedLabel;
  using Options = AlstrupOptions;

  explicit AlstrupScheme(const tree::Tree& t);

  /// Policy-selecting construction (the Tree-only overload is kExact).
  AlstrupScheme(const tree::Tree& t, Options opt);

  /// Builds from a shared scaffold (HPD + NCA labeling computed once per
  /// tree); label emission fans out over scaffold.threads() workers.
  explicit AlstrupScheme(const TreeScaffold& scaffold);

  [[nodiscard]] bits::BitSpan label(tree::NodeId v) const noexcept {
    return labels_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const bits::LabelArena& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] LabelStats stats() const { return stats_of(labels_); }

  /// Size of the distance-array part alone (the encoded monotone sequence
  /// R_1..R_k) — the ~1/2 log^2 n dominant term the paper's comparison is
  /// about, without the shared O(log n) NCA/header overhead.
  [[nodiscard]] const LabelStats& distance_payload_stats() const noexcept {
    return payload_;
  }

  /// Exact weighted distance from labels alone.
  [[nodiscard]] static std::uint64_t query(bits::BitSpan lu, bits::BitSpan lv);

  /// One-time parse for repeated queries against the same label.
  [[nodiscard]] static AlstrupAttachedLabel attach(bits::BitSpan l);

  /// Same result as the raw overload, without re-parsing either label.
  [[nodiscard]] static std::uint64_t query(const AlstrupAttachedLabel& lu,
                                           const AlstrupAttachedLabel& lv);

 private:
  void build(const tree::Tree& t, const tree::HeavyPathDecomposition& hpd,
             const nca::NcaLabeling& nca, int threads);

  bits::LabelArena labels_;
  LabelStats payload_;
};

/// Emits one Alstrup label: delta-coded root distance, length-prefixed NCA
/// label, then the branch-distance MonotoneSeq. Returns the payload
/// (branch-sequence) bit count. Single definition of the label layout,
/// shared between AlstrupScheme's bulk build and IncrementalRelabeler's
/// dirty-label re-emission.
std::uint32_t emit_alstrup_label(bits::BitWriter& w, std::uint64_t root_dist,
                                 bits::BitSpan nca_label,
                                 std::span<const std::uint64_t> branch_rd);

}  // namespace treelab::core
