// LevelAncestorScheme — the effective level-ancestor labeling of Section
// 3.6: distinct ~1/2 log^2 n bit labels such that, from the label of u
// alone, the label of parent(u) (and hence of any k-th ancestor) can be
// produced.
//
// The label of u on heavy path P stores
//   * d(u, root(T)),
//   * d(u, head(P)),
//   * the path identifier pi(P): the alternating position/light-choice
//     codes of the light edges above P (the "h0.l1.h1..." part of the
//     paper's NCA labels), with component boundaries, and
//   * the monotone array R_i = d(root, head(P_i)) over the heavy paths on
//     the root-to-u chain (the suffix-sum form of the distance array D(u)).
//
// A parent step either decrements d(u, head(P)), or — at the head — jumps
// to the branch node: pi is truncated by one (position, light) component
// pair, the new d(·, head) is R_k - R_{k-1} - 1, and R loses its last entry.
// Everything is recomputed from the label alone, which is exactly what
// Theorem 1.2 proves forces ~1/2 log^2 n bits (Lemma 3.6: such a scheme
// yields a universal tree of size 2^|label|).
//
// Defined for unit-weight trees (a parent step is a unit of distance).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/labeling.hpp"
#include "tree/tree.hpp"

namespace treelab::core {

class LevelAncestorScheme {
 public:
  /// Throws std::invalid_argument if `t` is not unit-weighted.
  explicit LevelAncestorScheme(const tree::Tree& t);

  [[nodiscard]] const bits::BitVec& label(tree::NodeId v) const noexcept {
    return labels_[v];
  }
  [[nodiscard]] const std::vector<bits::BitVec>& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] LabelStats stats() const { return stats_of(labels_); }

  /// The label of the parent of the labeled node, or nullopt at the root.
  [[nodiscard]] static std::optional<bits::BitVec> parent(
      const bits::BitVec& l);

  /// The label of the k-th ancestor (k = 0 returns a copy), or nullopt if
  /// the node is fewer than k levels deep.
  [[nodiscard]] static std::optional<bits::BitVec> level_ancestor(
      const bits::BitVec& l, std::uint64_t k);

  /// Depth recorded in a label (= d(u, root)); handy for tests.
  [[nodiscard]] static std::uint64_t depth_of_label(const bits::BitVec& l);

 private:
  static std::optional<bits::BitVec> parent_impl(const bits::BitVec& l);

  std::vector<bits::BitVec> labels_;
};

}  // namespace treelab::core
