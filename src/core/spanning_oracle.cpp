#include "core/spanning_oracle.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <random>
#include <stdexcept>

#include "bits/bitio.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/tree_scaffold.hpp"
#include "util/parallel.hpp"

namespace treelab::core {

using bits::BitReader;
using bits::BitSpan;
using bits::BitVec;
using bits::BitWriter;
using bits::LabelArena;
using tree::Graph;
using tree::NodeId;

SpanningOracle::SpanningOracle(const Graph& g, int landmarks,
                               LandmarkPolicy policy, std::uint64_t seed,
                               int threads)
    : landmarks_(landmarks) {
  if (landmarks < 1 || landmarks > g.size())
    throw std::invalid_argument("SpanningOracle: bad landmark count");
  if (!g.connected())
    throw std::invalid_argument("SpanningOracle: graph must be connected");

  std::vector<NodeId> order(static_cast<std::size_t>(g.size()));
  std::iota(order.begin(), order.end(), 0);
  if (policy == LandmarkPolicy::kHighestDegree) {
    std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return g.neighbors(a).size() > g.neighbors(b).size();
    });
  } else {
    std::mt19937_64 rng(seed);
    std::shuffle(order.begin(), order.end(), rng);
  }

  // Per-landmark tree labelings are independent builds: fan them out over
  // the thread budget, giving each build the leftover threads for its own
  // label emission. Each landmark's scheme is deterministic, so the states
  // do not depend on how the budget is split.
  const int total_threads = util::resolve_threads(threads);
  const int outer = std::max(1, std::min(total_threads, landmarks));
  const int inner = std::max(1, total_threads / outer);
  std::vector<std::optional<FgnwScheme>> schemes(
      static_cast<std::size_t>(landmarks));
  util::parallel_for_chunks(
      static_cast<std::size_t>(landmarks), static_cast<std::size_t>(outer),
      outer, [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t l = begin; l < end; ++l) {
          const tree::Tree bfs = g.bfs_tree(order[l]);
          const TreeScaffold scaffold(bfs, inner);
          schemes[l].emplace(scaffold);
        }
      });

  // State of v: count, then length-prefixed per-tree labels.
  states_ = LabelArena::build(
      static_cast<std::size_t>(g.size()), total_threads,
      [&](std::size_t i, BitWriter& w) {
        const auto v = static_cast<NodeId>(i);
        w.put_delta0(static_cast<std::uint64_t>(landmarks_));
        for (const auto& s : schemes) {
          const BitSpan l = s->label(v);
          w.put_delta0(l.size());
          w.append(l);
        }
      });
}

OracleAttachedState SpanningOracle::attach(BitSpan state) {
  BitReader r(state);
  const std::uint64_t c = r.get_delta0();
  if (c == 0 || c > state.size())
    throw bits::DecodeError("SpanningOracle: implausible tree count");
  OracleAttachedState out;
  out.labels_.reserve(static_cast<std::size_t>(c));
  for (std::uint64_t i = 0; i < c; ++i) {
    const BitVec l = r.get_vec(static_cast<std::size_t>(r.get_delta0()));
    out.labels_.push_back(FgnwScheme::attach(l));
  }
  return out;
}

std::uint64_t SpanningOracle::query(const OracleAttachedState& su,
                                    const OracleAttachedState& sv) {
  if (su.labels_.size() != sv.labels_.size() || su.labels_.empty())
    throw bits::DecodeError("SpanningOracle: state mismatch");
  std::uint64_t best = ~std::uint64_t{0};
  for (std::size_t i = 0; i < su.labels_.size(); ++i)
    best = std::min(best, FgnwScheme::query(su.labels_[i], sv.labels_[i]));
  return best;
}

std::vector<std::uint64_t> SpanningOracle::query_many(
    const OracleAttachedState& su,
    std::span<const OracleAttachedState> targets) {
  std::vector<std::uint64_t> out;
  out.reserve(targets.size());
  for (const OracleAttachedState& sv : targets) out.push_back(query(su, sv));
  return out;
}

std::vector<OracleAttachedState> SpanningOracle::attach_all() const {
  std::vector<OracleAttachedState> out;
  out.reserve(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i)
    out.push_back(attach(states_[i]));
  return out;
}

std::uint64_t SpanningOracle::query(BitSpan su, BitSpan sv) {
  BitReader ru(su), rv(sv);
  const std::uint64_t cu = ru.get_delta0();
  const std::uint64_t cv = rv.get_delta0();
  if (cu != cv || cu == 0)
    throw bits::DecodeError("SpanningOracle: state mismatch");
  std::uint64_t best = ~std::uint64_t{0};
  for (std::uint64_t i = 0; i < cu; ++i) {
    const BitVec lu = ru.get_vec(static_cast<std::size_t>(ru.get_delta0()));
    const BitVec lv = rv.get_vec(static_cast<std::size_t>(rv.get_delta0()));
    best = std::min(best, FgnwScheme::query(lu, lv));
  }
  return best;
}

}  // namespace treelab::core
