// ApproxScheme — (1+eps)-approximate distance labeling (Section 5,
// Theorem 1.4): O(log(1/eps) * log n)-bit labels returning a value in
// [d(u,v), (1+eps) d(u,v)].
//
// Per Alstrup et al. [ICALP'16], the label of v stores d(v, root), an NCA
// label, and the rounded distances |~ d(v, v_i) ~|_{1+eps/2} to each
// significant ancestor v_i. For a query with NCA w, w is a significant
// ancestor of the dominating endpoint u, so
//     2 * |~ d(u,w) ~|  + d(v,root) - d(u,root)
// over-estimates d(u,v) by at most eps * d(u,v).
//
// The paper's improvement over [ICALP'16] is purely in the encoding of the
// rounding exponents e_i = ceil(log_{1+eps/2} d(v, v_i)): the original
// stores them in unary (Theta(1/eps * log n) bits); using Lemma 2.2 costs
// O(log(1/eps) * log n). Both encodings are implemented; the bench compares
// them (the T1-approx ablation).
#pragma once

#include <cstdint>
#include <vector>

#include "bits/label_arena.hpp"
#include "core/labeling.hpp"
#include "core/tree_scaffold.hpp"
#include "nca/nca_labeling.hpp"
#include "tree/tree.hpp"

namespace treelab::core {

/// A pre-parsed approximate-distance label for repeated queries: root
/// distance, attached NCA label, and the fully decoded rounding-exponent
/// chain (both the monotone and the unary encodings decode into the same
/// array). After the one-time attach, each query is the NCA comparison plus
/// one array lookup. Produced by ApproxScheme::attach().
class ApproxAttachedLabel {
 public:
  [[nodiscard]] std::uint64_t root_distance() const noexcept { return rd_; }

 private:
  friend class ApproxScheme;
  std::uint64_t rd_ = 0;
  nca::AttachedNcaLabel nca_;
  std::vector<std::uint32_t> exps_;
};

class ApproxScheme {
 public:
  using Attached = ApproxAttachedLabel;

  enum class Encoding : std::uint8_t {
    kMonotone,  // Lemma 2.2 (this paper): O(log(1/eps) log n)
    kUnary,     // [ICALP'16] baseline:    Theta(1/eps log n)
  };

  /// Builds (1+eps)-approximate labels; eps in (0, 1].
  ApproxScheme(const tree::Tree& t, double eps,
               Encoding enc = Encoding::kMonotone);

  /// Builds from a shared scaffold (HPD + NCA labeling computed once per
  /// tree); label emission fans out over scaffold.threads() workers.
  ApproxScheme(const TreeScaffold& scaffold, double eps,
               Encoding enc = Encoding::kMonotone);

  [[nodiscard]] double eps() const noexcept { return eps_; }
  [[nodiscard]] bits::BitSpan label(tree::NodeId v) const noexcept {
    return labels_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const bits::LabelArena& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] LabelStats stats() const { return stats_of(labels_); }

  /// A value in [d(u,v), (1+eps) d(u,v)], from labels alone (eps is the
  /// scheme-wide constant the labels were built with).
  [[nodiscard]] static std::uint64_t query(double eps, bits::BitSpan lu,
                                           bits::BitSpan lv);

  /// One-time parse for repeated queries against the same label.
  [[nodiscard]] static ApproxAttachedLabel attach(bits::BitSpan l);

  /// Same result as the raw overload, without re-parsing either label.
  [[nodiscard]] static std::uint64_t query(double eps,
                                           const ApproxAttachedLabel& lu,
                                           const ApproxAttachedLabel& lv);

 private:
  double eps_;
  bits::LabelArena labels_;
};

}  // namespace treelab::core
