#include "core/label_store.hpp"

#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace treelab::core {

namespace {

template <typename T>
void put(std::ostream& os, T x) {
  // Little-endian fixed-width integer.
  for (std::size_t i = 0; i < sizeof(T); ++i)
    os.put(static_cast<char>((x >> (8 * i)) & 0xff));
}

template <typename T>
T get(std::istream& is) {
  T x = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    const int c = is.get();
    if (c < 0) throw std::runtime_error("LabelStore: truncated input");
    x |= static_cast<T>(static_cast<unsigned char>(c)) << (8 * i);
  }
  return x;
}

void put_string(std::ostream& os, std::string_view s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& is, std::uint32_t max_len) {
  const auto len = get<std::uint32_t>(is);
  if (len > max_len) throw std::runtime_error("LabelStore: oversized string");
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  if (!is) throw std::runtime_error("LabelStore: truncated string");
  return s;
}

}  // namespace

void LabelStore::save(std::ostream& os, std::string_view scheme,
                      std::span<const bits::BitVec> labels,
                      std::string_view params) {
  os.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(os, kVersion);
  put_string(os, scheme);
  put_string(os, params);
  put<std::uint64_t>(os, labels.size());
  for (const auto& l : labels) {
    put<std::uint64_t>(os, l.size());
    for (std::size_t i = 0; i < l.size(); i += 8) {
      const int take = static_cast<int>(std::min<std::size_t>(8, l.size() - i));
      os.put(static_cast<char>(l.read_bits(i, take)));
    }
  }
}

LabelStore::Loaded LabelStore::load(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("LabelStore: bad magic");
  const auto version = get<std::uint32_t>(is);
  if (version != kVersion)
    throw std::runtime_error("LabelStore: unsupported version");

  Loaded out;
  out.scheme = get_string(is, 256);
  out.params = get_string(is, 4096);
  const auto count = get<std::uint64_t>(is);
  if (count > (std::uint64_t{1} << 32))
    throw std::runtime_error("LabelStore: implausible label count");
  out.labels.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto bitlen = get<std::uint64_t>(is);
    if (bitlen > (std::uint64_t{1} << 32))
      throw std::runtime_error("LabelStore: implausible label length");
    bits::BitVec l;
    for (std::uint64_t b = 0; b < bitlen; b += 8) {
      const int c = is.get();
      if (c < 0) throw std::runtime_error("LabelStore: truncated label");
      const int take = static_cast<int>(std::min<std::uint64_t>(8, bitlen - b));
      l.append_bits(static_cast<std::uint64_t>(static_cast<unsigned char>(c)),
                    take);
    }
    out.labels.push_back(std::move(l));
  }
  return out;
}

}  // namespace treelab::core
