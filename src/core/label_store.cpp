#include "core/label_store.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "bits/bitio.hpp"

namespace treelab::core {

namespace {

template <typename T>
void put(std::ostream& os, T x) {
  // Little-endian fixed-width integer.
  for (std::size_t i = 0; i < sizeof(T); ++i)
    os.put(static_cast<char>((x >> (8 * i)) & 0xff));
}

template <typename T>
T get(std::istream& is) {
  T x = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    const int c = is.get();
    if (c < 0) throw std::runtime_error("LabelStore: truncated input");
    x |= static_cast<T>(static_cast<unsigned char>(c)) << (8 * i);
  }
  return x;
}

void put_string(std::ostream& os, std::string_view s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& is, std::uint32_t max_len) {
  const auto len = get<std::uint32_t>(is);
  if (len > max_len) throw std::runtime_error("LabelStore: oversized string");
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  if (!is) throw std::runtime_error("LabelStore: truncated string");
  return s;
}

void write_header(std::ostream& os, std::string_view scheme,
                  std::string_view params, std::uint64_t count,
                  const char* magic, std::uint32_t version) {
  os.write(magic, 4);
  put<std::uint32_t>(os, version);
  put_string(os, scheme);
  put_string(os, params);
  put<std::uint64_t>(os, count);
}

/// One label payload: `bits` bits out of a word array whose bit 0 is the
/// label's first bit (true for standalone BitVecs and for arena views —
/// both are word-aligned, with zero bits beyond the end). Bytes are the
/// little-endian word bytes, truncated to ceil(bits/8).
void put_label(std::ostream& os, std::string& buf, const std::uint64_t* words,
               std::uint64_t bits) {
  put<std::uint64_t>(os, bits);
  const std::uint64_t nbytes = (bits + 7) / 8;
  buf.resize(static_cast<std::size_t>(nbytes));
  for (std::uint64_t j = 0; j < nbytes; ++j)
    buf[static_cast<std::size_t>(j)] =
        static_cast<char>((words[j >> 3] >> (8 * (j & 7))) & 0xff);
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

/// Reads one label's length-prefixed payload into `bytes` and returns the
/// bit length. Shared validation for both load paths.
std::uint64_t get_label_bytes(std::istream& is, std::string& bytes) {
  const auto bitlen = get<std::uint64_t>(is);
  if (bitlen > (std::uint64_t{1} << 32))
    throw std::runtime_error("LabelStore: implausible label length");
  bytes.resize(static_cast<std::size_t>((bitlen + 7) / 8));
  is.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!is) throw std::runtime_error("LabelStore: truncated label");
  return bitlen;
}

/// Appends `bitlen` bits decoded from little-endian `bytes` into a writer,
/// a word at a time.
void append_label_bits(bits::BitWriter& w, const std::string& bytes,
                       std::uint64_t bitlen) {
  std::uint64_t b = 0;
  for (; b + 64 <= bitlen; b += 64) {
    std::uint64_t word = 0;
    for (int j = 7; j >= 0; --j)
      word = (word << 8) |
             static_cast<unsigned char>(bytes[static_cast<std::size_t>(b / 8) +
                                              static_cast<std::size_t>(j)]);
    w.put_bits(word, 64);
  }
  for (; b < bitlen; b += 8) {
    const int take = static_cast<int>(std::min<std::uint64_t>(8, bitlen - b));
    w.put_bits(
        static_cast<unsigned char>(bytes[static_cast<std::size_t>(b / 8)]),
        take);
  }
}

std::uint64_t read_and_check_header(std::istream& is, std::string& scheme,
                                    std::string& params, const char* magic,
                                    std::uint32_t want_version) {
  char got[4];
  is.read(got, sizeof(got));
  if (!is || std::memcmp(got, magic, 4) != 0)
    throw std::runtime_error("LabelStore: bad magic");
  const auto version = get<std::uint32_t>(is);
  if (version != want_version)
    throw std::runtime_error("LabelStore: unsupported version");
  scheme = get_string(is, 256);
  params = get_string(is, 4096);
  const auto count = get<std::uint64_t>(is);
  if (count > (std::uint64_t{1} << 32))
    throw std::runtime_error("LabelStore: implausible label count");
  return count;
}

}  // namespace

void LabelStore::save(std::ostream& os, std::string_view scheme,
                      std::span<const bits::BitVec> labels,
                      std::string_view params) {
  write_header(os, scheme, params, labels.size(), kMagic, kVersion);
  std::string buf;
  for (const auto& l : labels) put_label(os, buf, l.words().data(), l.size());
}

void LabelStore::save(std::ostream& os, std::string_view scheme,
                      const bits::LabelArena& labels, std::string_view params) {
  write_header(os, scheme, params, labels.size(), kMagic, kVersion);
  std::string buf;
  for (std::size_t i = 0; i < labels.size(); ++i)
    put_label(os, buf, labels.label_words(i), labels.label_bits(i));
}

LabelStore::Loaded LabelStore::load(std::istream& is) {
  Loaded out;
  const std::uint64_t count =
      read_and_check_header(is, out.scheme, out.params, kMagic, kVersion);
  out.labels.reserve(static_cast<std::size_t>(count));
  std::string bytes;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t bitlen = get_label_bytes(is, bytes);
    bits::BitWriter w;
    append_label_bits(w, bytes, bitlen);
    out.labels.push_back(w.take());
  }
  return out;
}

LabelStore::LoadedArena LabelStore::load_arena(std::istream& is) {
  LoadedArena out;
  const std::uint64_t count =
      read_and_check_header(is, out.scheme, out.params, kMagic, kVersion);
  // Single-threaded build visits labels strictly in order, matching the
  // stream layout.
  std::string bytes;
  out.labels = bits::LabelArena::build(
      static_cast<std::size_t>(count), 1,
      [&](std::size_t, bits::BitWriter& w) {
        const std::uint64_t bitlen = get_label_bytes(is, bytes);
        append_label_bits(w, bytes, bitlen);
      });
  return out;
}

}  // namespace treelab::core
