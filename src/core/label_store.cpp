#include "core/label_store.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "bits/bitio.hpp"
#include "util/failpoint.hpp"
#include "util/fs.hpp"
#include "util/io_error.hpp"

namespace treelab::core {

namespace {

template <typename T>
void put(std::ostream& os, T x) {
  // Little-endian fixed-width integer.
  for (std::size_t i = 0; i < sizeof(T); ++i)
    os.put(static_cast<char>((x >> (8 * i)) & 0xff));
}

template <typename T>
T get(std::istream& is) {
  T x = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    const int c = is.get();
    if (c < 0) throw std::runtime_error("LabelStore: truncated input");
    x |= static_cast<T>(static_cast<unsigned char>(c)) << (8 * i);
  }
  return x;
}

void put_string(std::ostream& os, std::string_view s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& is, std::uint32_t max_len) {
  const auto len = get<std::uint32_t>(is);
  if (len > max_len) throw std::runtime_error("LabelStore: oversized string");
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  if (!is) throw std::runtime_error("LabelStore: truncated string");
  return s;
}

/// Serialized header size through the count field — writer and reader must
/// agree on it (the mappable container's word-buffer alignment hangs off
/// this number).
std::size_t header_bytes(std::string_view scheme, std::string_view params) {
  return 4 + 4 + 4 + scheme.size() + 4 + params.size() + 8;
}

void write_header(std::ostream& os, std::string_view scheme,
                  std::string_view params, std::uint64_t count,
                  const char* magic, std::uint32_t version) {
  os.write(magic, 4);
  put<std::uint32_t>(os, version);
  put_string(os, scheme);
  put_string(os, params);
  put<std::uint64_t>(os, count);
}

/// One label payload: `bits` bits out of a word array whose bit 0 is the
/// label's first bit (true for standalone BitVecs and for arena views —
/// both are word-aligned, with zero bits beyond the end). Bytes are the
/// little-endian word bytes, truncated to ceil(bits/8).
void put_label(std::ostream& os, std::string& buf, const std::uint64_t* words,
               std::uint64_t bits) {
  put<std::uint64_t>(os, bits);
  const std::uint64_t nbytes = (bits + 7) / 8;
  buf.resize(static_cast<std::size_t>(nbytes));
  for (std::uint64_t j = 0; j < nbytes; ++j)
    buf[static_cast<std::size_t>(j)] =
        static_cast<char>((words[j >> 3] >> (8 * (j & 7))) & 0xff);
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

/// Appends `bitlen` bits decoded from little-endian `bytes` into a writer,
/// a word at a time.
void append_label_bits(bits::BitWriter& w, const std::string& bytes,
                       std::uint64_t bitlen) {
  std::uint64_t b = 0;
  for (; b + 64 <= bitlen; b += 64) {
    std::uint64_t word = 0;
    for (int j = 7; j >= 0; --j)
      word = (word << 8) |
             static_cast<unsigned char>(bytes[static_cast<std::size_t>(b / 8) +
                                              static_cast<std::size_t>(j)]);
    w.put_bits(word, 64);
  }
  for (; b < bitlen; b += 8) {
    const int take = static_cast<int>(std::min<std::uint64_t>(8, bitlen - b));
    w.put_bits(
        static_cast<unsigned char>(bytes[static_cast<std::size_t>(b / 8)]),
        take);
  }
}

/// Streams one label's `nbytes`-byte payload (word-multiple chunks) into
/// `w`, appending exactly `bitlen` bits. Chunked so that a corrupt length
/// field costs at most one bounded buffer before the truncation is
/// detected — never a length-directory-sized allocation.
constexpr std::size_t kPayloadChunkBytes = std::size_t{1} << 20;

void read_label_payload(std::istream& is, bits::BitWriter& w,
                        std::uint64_t nbytes, std::uint64_t bitlen,
                        std::string& buf) {
  std::uint64_t bits_left = bitlen;
  while (nbytes > 0) {
    const auto take = static_cast<std::size_t>(
        std::min<std::uint64_t>(nbytes, kPayloadChunkBytes));
    buf.resize(take);
    is.read(buf.data(), static_cast<std::streamsize>(take));
    if (!is) throw std::runtime_error("LabelStore: truncated label");
    const std::uint64_t chunk_bits =
        std::min<std::uint64_t>(bits_left, std::uint64_t{take} * 8);
    append_label_bits(w, buf, chunk_bits);
    bits_left -= chunk_bits;
    nbytes -= take;
  }
}

/// Length field of a version-1 label, bounds-checked.
std::uint64_t get_label_bitlen(std::istream& is) {
  const auto bitlen = get<std::uint64_t>(is);
  if (bitlen > (std::uint64_t{1} << 32))
    throw std::runtime_error("LabelStore: implausible label length");
  return bitlen;
}

struct Header {
  std::string scheme;
  std::string params;
  std::uint64_t count = 0;
  std::uint32_t version = 0;
  std::size_t bytes = 0;  ///< serialized header size, through the count field
};

/// Bounds a label count against the stream's remaining bytes when the
/// stream is seekable (every label costs >= 8 bytes in either container
/// version: a length prefix in v1, a directory entry in v2). A corrupt
/// count field must fail loudly up front, not via count-sized allocations.
void check_count_plausible(std::istream& is, std::uint64_t count) {
  if (count == 0) return;
  const auto pos = is.tellg();
  if (pos < 0) return;  // non-seekable: streamed reads detect truncation
  is.seekg(0, std::ios::end);
  const auto end = is.tellg();
  is.clear();
  is.seekg(pos);
  if (end < 0) return;
  const std::uint64_t remaining =
      end >= pos ? static_cast<std::uint64_t>(end - pos) : 0;
  if (count > remaining / 8)
    throw std::runtime_error("LabelStore: label count exceeds stream size");
}

Header read_and_check_header(std::istream& is, const char* magic,
                             std::uint32_t max_version) {
  char got[4];
  is.read(got, sizeof(got));
  if (!is || std::memcmp(got, magic, 4) != 0)
    throw std::runtime_error("LabelStore: bad magic");
  Header h;
  h.version = get<std::uint32_t>(is);
  if (h.version < 1 || h.version > max_version)
    throw std::runtime_error("LabelStore: unsupported version");
  h.scheme = get_string(is, 256);
  h.params = get_string(is, 4096);
  h.count = get<std::uint64_t>(is);
  if (h.count > (std::uint64_t{1} << 32))
    throw std::runtime_error("LabelStore: implausible label count");
  h.bytes = header_bytes(h.scheme, h.params);
  return h;
}

// --- version-2 (mappable) payload ------------------------------------------

/// Directory entries of a version-2 container, with the per-label bound of
/// get_label_bytes applied — and, mirroring MappedArena::map's defence, a
/// guard on the *accumulated* word count: the per-entry bound alone still
/// lets an adversarial directory overflow a size_t accumulator downstream
/// (32-bit hosts; or future arithmetic on the total).
std::vector<std::size_t> read_lens(std::istream& is, std::uint64_t count) {
  std::vector<std::size_t> lens(static_cast<std::size_t>(count));
  std::uint64_t total_words = 0;
  for (auto& l : lens) {
    const auto bitlen = get<std::uint64_t>(is);
    if (bitlen > (std::uint64_t{1} << 32))
      throw std::runtime_error("LabelStore: implausible label length");
    const std::uint64_t nw = bitlen / 64 + (bitlen % 64 != 0 ? 1 : 0);
    if (total_words > std::numeric_limits<std::uint64_t>::max() - nw ||
        total_words + nw >
            std::numeric_limits<std::size_t>::max() / sizeof(std::uint64_t))
      throw std::runtime_error("LabelStore: length directory overflows");
    total_words += nw;
    l = static_cast<std::size_t>(bitlen);
  }
  return lens;
}

/// Bytes of zero padding between the directory and the word buffer, sized so
/// the buffer starts at an 8-byte-aligned file offset.
std::size_t pad_after_directory(std::size_t header_bytes, std::uint64_t count) {
  const std::size_t before =
      header_bytes + static_cast<std::size_t>(count) * 8;
  return (8 - before % 8) % 8;
}

void skip_padding(std::istream& is, std::size_t pad) {
  for (std::size_t i = 0; i < pad; ++i)
    if (is.get() < 0) throw std::runtime_error("LabelStore: truncated padding");
}

}  // namespace

void LabelStore::save(std::ostream& os, std::string_view scheme,
                      std::span<const bits::BitVec> labels,
                      std::string_view params) {
  write_header(os, scheme, params, labels.size(), kMagic, kVersion);
  std::string buf;
  for (const auto& l : labels) put_label(os, buf, l.words().data(), l.size());
}

void LabelStore::save(std::ostream& os, std::string_view scheme,
                      const bits::LabelArena& labels, std::string_view params) {
  write_header(os, scheme, params, labels.size(), kMagic, kVersion);
  std::string buf;
  for (std::size_t i = 0; i < labels.size(); ++i)
    put_label(os, buf, labels.label_words(i), labels.label_bits(i));
}

void LabelStore::save_mappable(std::ostream& os, std::string_view scheme,
                               const bits::LabelArena& labels,
                               std::string_view params) {
  write_header(os, scheme, params, labels.size(), kMagic, kVersionMappable);
  for (std::size_t i = 0; i < labels.size(); ++i)
    put<std::uint64_t>(os, labels.label_bits(i));
  const std::size_t pad =
      pad_after_directory(header_bytes(scheme, params), labels.size());
  for (std::size_t i = 0; i < pad; ++i) os.put('\0');
  std::string buf;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::uint64_t* words = labels.label_words(i);
    const std::size_t nw = (labels.label_bits(i) + 63) / 64;
    buf.resize(nw * 8);
    for (std::size_t j = 0; j < buf.size(); ++j)
      buf[j] = static_cast<char>((words[j >> 3] >> (8 * (j & 7))) & 0xff);
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }
}

LabelStore::Loaded LabelStore::load(std::istream& is) {
  const Header h = read_and_check_header(is, kMagic, kVersionMappable);
  check_count_plausible(is, h.count);
  Loaded out;
  out.scheme = h.scheme;
  out.params = h.params;
  out.labels.reserve(static_cast<std::size_t>(h.count));
  std::string bytes;
  if (h.version == kVersion) {
    for (std::uint64_t i = 0; i < h.count; ++i) {
      const std::uint64_t bitlen = get_label_bitlen(is);
      bits::BitWriter w;
      read_label_payload(is, w, (bitlen + 7) / 8, bitlen, bytes);
      out.labels.push_back(w.take());
    }
  } else {
    const std::vector<std::size_t> lens = read_lens(is, h.count);
    skip_padding(is, pad_after_directory(h.bytes, h.count));
    for (const std::size_t bitlen : lens) {
      bits::BitWriter w;
      read_label_payload(is, w, ((std::uint64_t{bitlen} + 63) / 64) * 8,
                         bitlen, bytes);
      out.labels.push_back(w.take());
    }
  }
  return out;
}

LabelStore::LoadedArena LabelStore::load_arena(std::istream& is) {
  const Header h = read_and_check_header(is, kMagic, kVersionMappable);
  check_count_plausible(is, h.count);
  LoadedArena out;
  out.scheme = h.scheme;
  out.params = h.params;
  // Single-threaded build visits labels strictly in order, matching the
  // stream layout.
  std::string bytes;
  if (h.version == kVersion) {
    out.labels = bits::LabelArena::build(
        static_cast<std::size_t>(h.count), 1,
        [&](std::size_t, bits::BitWriter& w) {
          const std::uint64_t bitlen = get_label_bitlen(is);
          read_label_payload(is, w, (bitlen + 7) / 8, bitlen, bytes);
        });
  } else {
    const std::vector<std::size_t> lens = read_lens(is, h.count);
    skip_padding(is, pad_after_directory(h.bytes, h.count));
    out.labels = bits::LabelArena::build(
        static_cast<std::size_t>(h.count), 1,
        [&](std::size_t i, bits::BitWriter& w) {
          read_label_payload(is, w, ((std::uint64_t{lens[i]} + 63) / 64) * 8,
                             lens[i], bytes);
        });
  }
  return out;
}

// --- version-3 (delta) container -------------------------------------------

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a_bytes(std::uint64_t h, const unsigned char* p,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t x) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(x >> (8 * i));
  return fnv1a_bytes(h, b, 8);
}

/// In-memory little-endian reader over a fully buffered delta, with
/// truncation-checked primitives. Buffering the whole container first keeps
/// the trailing-checksum check trivial and makes every allocation below
/// provably bounded by the buffer size.
struct DeltaCursor {
  const unsigned char* p;
  std::size_t n;
  std::size_t off = 0;

  [[nodiscard]] std::size_t remaining() const noexcept { return n - off; }
  void need(std::size_t k) const {
    if (k > remaining())
      throw std::runtime_error("LabelStore: truncated delta");
  }
  std::uint8_t get_u8() {
    need(1);
    return p[off++];
  }
  template <typename T>
  T get_le() {
    need(sizeof(T));
    T x = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      x |= static_cast<T>(p[off + i]) << (8 * i);
    off += sizeof(T);
    return x;
  }
  std::string get_string(std::uint32_t max_len) {
    const auto len = get_le<std::uint32_t>();
    if (len > max_len)
      throw std::runtime_error("LabelStore: oversized string");
    need(len);
    std::string s(reinterpret_cast<const char*>(p + off), len);
    off += len;
    return s;
  }
};

/// Structural validation shared by load_delta (wire) and apply_delta
/// (program-built deltas take the same scrutiny). Throws std::runtime_error
/// on any inconsistency; performs no allocation proportional to the counts.
void validate_delta(const LabelDelta& d) {
  const auto bad = [](const char* what) {
    throw std::runtime_error(std::string("LabelStore: invalid delta: ") +
                             what);
  };
  if (d.base_count > (std::uint64_t{1} << 32) ||
      d.new_count > (std::uint64_t{1} << 32))
    bad("implausible label count");
  std::uint64_t prev_end = 0;
  std::uint64_t total_dropped = 0;
  bool first_run = true;
  for (const IdRun& r : d.dropped) {
    if (r.count == 0) bad("empty dropped run");
    if (!first_run && r.first < prev_end)
      bad("unsorted or overlapping dropped runs");
    if (r.first > d.base_count || r.count > d.base_count - r.first)
      bad("dropped run out of range");
    prev_end = r.first + r.count;
    total_dropped += r.count;
    first_run = false;
  }
  const std::uint64_t survivors = d.base_count - total_dropped;
  if (survivors > d.new_count) bad("survivors exceed the new label count");
  std::uint64_t prev = 0;
  bool first_id = true;
  for (const std::uint64_t id : d.dirty) {
    if (!first_id && id <= prev) bad("unsorted dirty ids");
    if (id >= d.new_count) bad("dirty id out of range");
    prev = id;
    first_id = false;
  }
  if (d.payload.size() != d.dirty.size())
    bad("payload/dirty size mismatch");
  // Every id past the survivor range has no base source: it must carry a
  // payload.
  std::uint64_t expect = survivors;
  for (auto it = std::lower_bound(d.dirty.begin(), d.dirty.end(), survivors);
       it != d.dirty.end(); ++it, ++expect)
    if (*it != expect) bad("appended ids not covered by dirty payload");
  if (expect != d.new_count) bad("appended ids not covered by dirty payload");
}

}  // namespace

std::vector<IdRun> id_runs(const std::vector<std::uint64_t>& sorted_ids) {
  std::vector<IdRun> runs;
  for (const std::uint64_t id : sorted_ids) {
    if (!runs.empty() && runs.back().first + runs.back().count == id)
      ++runs.back().count;
    else
      runs.push_back({id, 1});
  }
  return runs;
}

std::uint64_t LabelStore::lens_hash(const bits::LabelArena& a) {
  std::uint64_t h = fnv1a_u64(kFnvOffset, a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    h = fnv1a_u64(h, a.label_bits(i));
  return h;
}

std::uint64_t LabelStore::lens_hash(const bits::MappedArena& a) {
  std::uint64_t h = fnv1a_u64(kFnvOffset, a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    h = fnv1a_u64(h, a.label_bits(i));
  return h;
}

std::uint64_t LabelStore::chain_hash(std::uint64_t base_chain,
                                     const LabelDelta& d) {
  std::uint64_t h = fnv1a_u64(kFnvOffset, base_chain);
  h = fnv1a_u64(h, d.base_count);
  h = fnv1a_u64(h, d.new_count);
  for (const IdRun& r : d.dropped) {
    h = fnv1a_u64(h, r.first);
    h = fnv1a_u64(h, r.count);
  }
  for (const std::uint64_t id : d.dirty) h = fnv1a_u64(h, id);
  for (std::size_t i = 0; i < d.payload.size(); ++i) {
    const std::size_t bits = d.payload.label_bits(i);
    h = fnv1a_u64(h, bits);
    const std::uint64_t* w = d.payload.label_words(i);
    for (std::size_t j = 0; j < (bits + 63) / 64; ++j) h = fnv1a_u64(h, w[j]);
  }
  return h;
}

void LabelStore::save_delta(std::ostream& os, const LabelDelta& d) {
  try {
    validate_delta(d);
  } catch (const std::runtime_error& e) {
    throw std::invalid_argument(e.what());  // caller bug, not wire corruption
  }
  // Mirror load_delta's string caps: a producer must not be able to write
  // a container its own loader refuses.
  if (d.scheme.size() > 256 || d.params.size() > 4096)
    throw std::invalid_argument(
        "LabelStore: scheme/params too long for the delta container");
  std::string out;
  const auto put8 = [&](std::uint8_t x) { out.push_back(static_cast<char>(x)); };
  const auto put32 = [&](std::uint32_t x) {
    for (int i = 0; i < 4; ++i) put8(static_cast<std::uint8_t>(x >> (8 * i)));
  };
  const auto put64 = [&](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) put8(static_cast<std::uint8_t>(x >> (8 * i)));
  };
  const auto puts = [&](std::string_view s) {
    put32(static_cast<std::uint32_t>(s.size()));
    out.append(s);
  };
  out.append(kMagic, 4);
  put32(kVersionDelta);
  puts(d.scheme);
  puts(d.params);
  put64(d.base_count);
  put64(d.new_count);
  put64(d.base_lens_hash);
  put64(d.base_chain);
  put64(d.new_chain);
  put64(d.dropped.size());
  for (const IdRun& r : d.dropped) {
    put64(r.first);
    put64(r.count);
  }
  const std::vector<IdRun> dirty_runs = id_runs(d.dirty);
  put64(dirty_runs.size());
  for (const IdRun& r : dirty_runs) {
    put64(r.first);
    put64(r.count);
  }
  for (std::size_t i = 0; i < d.payload.size(); ++i)
    put64(d.payload.label_bits(i));
  while (out.size() % 8 != 0) put8(0);  // payload starts 8-byte aligned
  for (std::size_t i = 0; i < d.payload.size(); ++i) {
    const std::uint64_t* words = d.payload.label_words(i);
    const std::size_t nw = (d.payload.label_bits(i) + 63) / 64;
    for (std::size_t w = 0; w < nw; ++w) put64(words[w]);
  }
  put64(d.edits.size());
  for (const LabelEdit& e : d.edits) {
    put8(static_cast<std::uint8_t>(e.kind));
    put64(e.a);
    put64(e.b);
  }
  const std::uint64_t sum = fnv1a_bytes(
      kFnvOffset, reinterpret_cast<const unsigned char*>(out.data()),
      out.size());
  put64(sum);
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

LabelDelta LabelStore::load_delta(std::istream& is) {
  // Buffer the whole container: the checksum covers everything before the
  // trailing hash, and every count below is then verifiably bounded by the
  // buffer size before anything is allocated.
  std::string buf;
  {
    char chunk[1 << 16];
    while (is.read(chunk, sizeof(chunk)) || is.gcount() > 0)
      buf.append(chunk, static_cast<std::size_t>(is.gcount()));
  }
  DeltaCursor c{reinterpret_cast<const unsigned char*>(buf.data()),
                buf.size()};
  c.need(4);
  if (std::memcmp(buf.data(), kMagic, 4) != 0)
    throw std::runtime_error("LabelStore: bad magic");
  c.off += 4;
  const auto version = c.get_le<std::uint32_t>();
  if (version != kVersionDelta)
    throw std::runtime_error("LabelStore: unsupported version");
  LabelDelta d;
  d.scheme = c.get_string(256);
  d.params = c.get_string(4096);
  d.base_count = c.get_le<std::uint64_t>();
  d.new_count = c.get_le<std::uint64_t>();
  if (d.base_count > (std::uint64_t{1} << 32) ||
      d.new_count > (std::uint64_t{1} << 32))
    throw std::runtime_error("LabelStore: implausible label count");
  d.base_lens_hash = c.get_le<std::uint64_t>();
  d.base_chain = c.get_le<std::uint64_t>();
  d.new_chain = c.get_le<std::uint64_t>();

  const auto n_drop = c.get_le<std::uint64_t>();
  if (n_drop > c.remaining() / 16)
    throw std::runtime_error("LabelStore: dropped runs exceed stream size");
  d.dropped.reserve(static_cast<std::size_t>(n_drop));
  for (std::uint64_t i = 0; i < n_drop; ++i) {
    IdRun r;
    r.first = c.get_le<std::uint64_t>();
    r.count = c.get_le<std::uint64_t>();
    d.dropped.push_back(r);
  }

  const auto n_dirty_runs = c.get_le<std::uint64_t>();
  if (n_dirty_runs > c.remaining() / 16)
    throw std::runtime_error("LabelStore: dirty runs exceed stream size");
  std::vector<IdRun> dirty_runs;
  dirty_runs.reserve(static_cast<std::size_t>(n_dirty_runs));
  std::uint64_t dirty_total = 0;
  for (std::uint64_t i = 0; i < n_dirty_runs; ++i) {
    IdRun r;
    r.first = c.get_le<std::uint64_t>();
    r.count = c.get_le<std::uint64_t>();
    if (r.count == 0)
      throw std::runtime_error("LabelStore: invalid delta: empty dirty run");
    if (dirty_total >
        std::numeric_limits<std::uint64_t>::max() - r.count)
      throw std::runtime_error("LabelStore: dirty run count overflows");
    dirty_total += r.count;
    dirty_runs.push_back(r);
  }
  // Every dirty id owns an 8-byte length entry still ahead in the stream —
  // the bound that keeps run expansion allocation-safe on corrupt counts.
  if (dirty_total > c.remaining() / 8)
    throw std::runtime_error("LabelStore: dirty ids exceed stream size");
  d.dirty.reserve(static_cast<std::size_t>(dirty_total));
  for (const IdRun& r : dirty_runs) {
    if (r.first > d.new_count || r.count > d.new_count - r.first)
      throw std::runtime_error(
          "LabelStore: invalid delta: dirty run out of range");
    for (std::uint64_t k = 0; k < r.count; ++k)
      d.dirty.push_back(r.first + k);
  }

  std::vector<std::size_t> lens(static_cast<std::size_t>(dirty_total));
  std::uint64_t total_words = 0;
  for (auto& l : lens) {
    const auto bitlen = c.get_le<std::uint64_t>();
    if (bitlen > (std::uint64_t{1} << 32))
      throw std::runtime_error("LabelStore: implausible label length");
    const std::uint64_t nw = bitlen / 64 + (bitlen % 64 != 0 ? 1 : 0);
    if (total_words > std::numeric_limits<std::uint64_t>::max() - nw ||
        total_words + nw >
            std::numeric_limits<std::size_t>::max() / sizeof(std::uint64_t))
      throw std::runtime_error("LabelStore: length directory overflows");
    total_words += nw;
    l = static_cast<std::size_t>(bitlen);
  }
  while (c.off % 8 != 0) {
    if (c.get_u8() != 0)
      throw std::runtime_error("LabelStore: invalid delta: nonzero padding");
  }
  if (total_words > c.remaining() / 8)
    throw std::runtime_error("LabelStore: truncated delta payload");
  d.payload = bits::LabelArena::build(
      lens.size(), 1, [&](std::size_t i, bits::BitWriter& w) {
        std::size_t left = lens[i];
        while (left > 0) {
          const auto word = c.get_le<std::uint64_t>();
          const int take = static_cast<int>(std::min<std::size_t>(64, left));
          w.put_bits(word, take);
          left -= static_cast<std::size_t>(take);
        }
      });

  const auto n_edits = c.get_le<std::uint64_t>();
  if (n_edits > c.remaining() / 17)
    throw std::runtime_error("LabelStore: edit log exceeds stream size");
  d.edits.reserve(static_cast<std::size_t>(n_edits));
  for (std::uint64_t i = 0; i < n_edits; ++i) {
    const std::uint8_t kind = c.get_u8();
    if (kind > static_cast<std::uint8_t>(LabelEdit::Kind::kCompact))
      throw std::runtime_error("LabelStore: invalid delta: unknown edit kind");
    LabelEdit e;
    e.kind = static_cast<LabelEdit::Kind>(kind);
    e.a = c.get_le<std::uint64_t>();
    e.b = c.get_le<std::uint64_t>();
    d.edits.push_back(e);
  }

  const std::size_t hashed = c.off;
  const auto want = c.get_le<std::uint64_t>();
  if (c.off != c.n)
    throw std::runtime_error("LabelStore: trailing bytes after delta");
  const std::uint64_t got = fnv1a_bytes(
      kFnvOffset, reinterpret_cast<const unsigned char*>(buf.data()), hashed);
  if (got != want)
    throw std::runtime_error("LabelStore: delta checksum mismatch");
  validate_delta(d);
  return d;
}

bits::LabelArena LabelStore::apply_delta(const bits::MappedArena& base,
                                         const LabelDelta& d) {
  validate_delta(d);
  if (base.size() != d.base_count)
    throw std::runtime_error("LabelStore: delta base count mismatch");
  if (lens_hash(base) != d.base_lens_hash)
    throw std::runtime_error("LabelStore: delta does not match base labeling");
  // Source of each new label: the delta payload for dirty ids, the
  // (drop-shifted) base label otherwise. Survivors occupy the first
  // base_count - dropped new ids in base order; validate_delta guarantees
  // everything past that range is dirty.
  const auto n = static_cast<std::size_t>(d.new_count);
  std::vector<std::int64_t> src(n);
  {
    std::size_t next_drop = 0;
    std::uint64_t new_id = 0;
    for (std::uint64_t b = 0; b < d.base_count && new_id < d.new_count; ++b) {
      while (next_drop < d.dropped.size() &&
             b >= d.dropped[next_drop].first + d.dropped[next_drop].count)
        ++next_drop;
      if (next_drop < d.dropped.size() &&
          b >= d.dropped[next_drop].first)
        continue;  // dropped base id
      src[static_cast<std::size_t>(new_id++)] = static_cast<std::int64_t>(b);
    }
    for (std::size_t t = 0; t < d.dirty.size(); ++t)
      src[static_cast<std::size_t>(d.dirty[t])] =
          ~static_cast<std::int64_t>(t);
  }
  return bits::LabelArena::composed(n, [&](std::size_t i) {
    const std::int64_t s = src[i];
    if (s >= 0) {
      const auto b = static_cast<std::size_t>(s);
      return bits::LabelArena::LabelRef{base.label_words(b),
                                        base.label_bits(b)};
    }
    const auto t = static_cast<std::size_t>(~s);
    return bits::LabelArena::LabelRef{d.payload.label_words(t),
                                      d.payload.label_bits(t)};
  });
}

LabelStore::MappedLoaded LabelStore::open_mapped(const std::string& path) {
  if (auto fp = util::failpoint::check("label_store.open_mapped"))
    util::failpoint::raise(*fp, "label_store.open_mapped", path);
  {
    std::ifstream is(path, std::ios::binary);
    if (!is)
      throw util::IoError(path, "open labels for reading", errno);
    const Header h = read_and_check_header(is, kMagic, kVersionMappable);
    check_count_plausible(is, h.count);
    if (h.version == kVersionMappable) {
      std::vector<std::size_t> lens = read_lens(is, h.count);
      const std::size_t words_offset = h.bytes +
                                       static_cast<std::size_t>(h.count) * 8 +
                                       pad_after_directory(h.bytes, h.count);
      if (auto mapped =
              bits::MappedArena::map(path.c_str(), words_offset,
                                     std::move(lens))) {
        MappedLoaded out;
        out.scheme = h.scheme;
        out.params = h.params;
        out.labels = std::move(*mapped);
        return out;
      }
    }
  }
  // Streamed fallback: version-1 files, and version-2 files that could not
  // be mapped (its validation also catches a word buffer shorter than the
  // directory promises, which map() refuses silently).
  std::ifstream is(path, std::ios::binary);
  if (!is) throw util::IoError(path, "open labels for reading", errno);
  LoadedArena la = load_arena(is);
  MappedLoaded out;
  out.scheme = std::move(la.scheme);
  out.params = std::move(la.params);
  out.labels = bits::MappedArena::adopt(std::move(la.labels));
  return out;
}

void LabelStore::save_file(const std::string& path, std::string_view scheme,
                           const bits::LabelArena& labels,
                           std::string_view params, bool mappable) {
  std::ostringstream os(std::ios::binary);
  if (mappable)
    save_mappable(os, scheme, labels, params);
  else
    save(os, scheme, labels, params);
  util::atomic_write_file(path, os.str());
}

void LabelStore::save_delta_file(const std::string& path,
                                 const LabelDelta& d) {
  std::ostringstream os(std::ios::binary);
  save_delta(os, d);
  util::atomic_write_file(path, os.str());
}

void LabelStore::rechain(LabelDelta& d, std::uint64_t base_chain) {
  d.base_chain = base_chain;
  d.new_chain = chain_hash(base_chain, d);
}

}  // namespace treelab::core
