#include "core/label_store.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "bits/bitio.hpp"

namespace treelab::core {

namespace {

template <typename T>
void put(std::ostream& os, T x) {
  // Little-endian fixed-width integer.
  for (std::size_t i = 0; i < sizeof(T); ++i)
    os.put(static_cast<char>((x >> (8 * i)) & 0xff));
}

template <typename T>
T get(std::istream& is) {
  T x = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    const int c = is.get();
    if (c < 0) throw std::runtime_error("LabelStore: truncated input");
    x |= static_cast<T>(static_cast<unsigned char>(c)) << (8 * i);
  }
  return x;
}

void put_string(std::ostream& os, std::string_view s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& is, std::uint32_t max_len) {
  const auto len = get<std::uint32_t>(is);
  if (len > max_len) throw std::runtime_error("LabelStore: oversized string");
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  if (!is) throw std::runtime_error("LabelStore: truncated string");
  return s;
}

/// Serialized header size through the count field — writer and reader must
/// agree on it (the mappable container's word-buffer alignment hangs off
/// this number).
std::size_t header_bytes(std::string_view scheme, std::string_view params) {
  return 4 + 4 + 4 + scheme.size() + 4 + params.size() + 8;
}

void write_header(std::ostream& os, std::string_view scheme,
                  std::string_view params, std::uint64_t count,
                  const char* magic, std::uint32_t version) {
  os.write(magic, 4);
  put<std::uint32_t>(os, version);
  put_string(os, scheme);
  put_string(os, params);
  put<std::uint64_t>(os, count);
}

/// One label payload: `bits` bits out of a word array whose bit 0 is the
/// label's first bit (true for standalone BitVecs and for arena views —
/// both are word-aligned, with zero bits beyond the end). Bytes are the
/// little-endian word bytes, truncated to ceil(bits/8).
void put_label(std::ostream& os, std::string& buf, const std::uint64_t* words,
               std::uint64_t bits) {
  put<std::uint64_t>(os, bits);
  const std::uint64_t nbytes = (bits + 7) / 8;
  buf.resize(static_cast<std::size_t>(nbytes));
  for (std::uint64_t j = 0; j < nbytes; ++j)
    buf[static_cast<std::size_t>(j)] =
        static_cast<char>((words[j >> 3] >> (8 * (j & 7))) & 0xff);
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

/// Appends `bitlen` bits decoded from little-endian `bytes` into a writer,
/// a word at a time.
void append_label_bits(bits::BitWriter& w, const std::string& bytes,
                       std::uint64_t bitlen) {
  std::uint64_t b = 0;
  for (; b + 64 <= bitlen; b += 64) {
    std::uint64_t word = 0;
    for (int j = 7; j >= 0; --j)
      word = (word << 8) |
             static_cast<unsigned char>(bytes[static_cast<std::size_t>(b / 8) +
                                              static_cast<std::size_t>(j)]);
    w.put_bits(word, 64);
  }
  for (; b < bitlen; b += 8) {
    const int take = static_cast<int>(std::min<std::uint64_t>(8, bitlen - b));
    w.put_bits(
        static_cast<unsigned char>(bytes[static_cast<std::size_t>(b / 8)]),
        take);
  }
}

/// Streams one label's `nbytes`-byte payload (word-multiple chunks) into
/// `w`, appending exactly `bitlen` bits. Chunked so that a corrupt length
/// field costs at most one bounded buffer before the truncation is
/// detected — never a length-directory-sized allocation.
constexpr std::size_t kPayloadChunkBytes = std::size_t{1} << 20;

void read_label_payload(std::istream& is, bits::BitWriter& w,
                        std::uint64_t nbytes, std::uint64_t bitlen,
                        std::string& buf) {
  std::uint64_t bits_left = bitlen;
  while (nbytes > 0) {
    const auto take = static_cast<std::size_t>(
        std::min<std::uint64_t>(nbytes, kPayloadChunkBytes));
    buf.resize(take);
    is.read(buf.data(), static_cast<std::streamsize>(take));
    if (!is) throw std::runtime_error("LabelStore: truncated label");
    const std::uint64_t chunk_bits =
        std::min<std::uint64_t>(bits_left, std::uint64_t{take} * 8);
    append_label_bits(w, buf, chunk_bits);
    bits_left -= chunk_bits;
    nbytes -= take;
  }
}

/// Length field of a version-1 label, bounds-checked.
std::uint64_t get_label_bitlen(std::istream& is) {
  const auto bitlen = get<std::uint64_t>(is);
  if (bitlen > (std::uint64_t{1} << 32))
    throw std::runtime_error("LabelStore: implausible label length");
  return bitlen;
}

struct Header {
  std::string scheme;
  std::string params;
  std::uint64_t count = 0;
  std::uint32_t version = 0;
  std::size_t bytes = 0;  ///< serialized header size, through the count field
};

/// Bounds a label count against the stream's remaining bytes when the
/// stream is seekable (every label costs >= 8 bytes in either container
/// version: a length prefix in v1, a directory entry in v2). A corrupt
/// count field must fail loudly up front, not via count-sized allocations.
void check_count_plausible(std::istream& is, std::uint64_t count) {
  if (count == 0) return;
  const auto pos = is.tellg();
  if (pos < 0) return;  // non-seekable: streamed reads detect truncation
  is.seekg(0, std::ios::end);
  const auto end = is.tellg();
  is.clear();
  is.seekg(pos);
  if (end < 0) return;
  const std::uint64_t remaining =
      end >= pos ? static_cast<std::uint64_t>(end - pos) : 0;
  if (count > remaining / 8)
    throw std::runtime_error("LabelStore: label count exceeds stream size");
}

Header read_and_check_header(std::istream& is, const char* magic,
                             std::uint32_t max_version) {
  char got[4];
  is.read(got, sizeof(got));
  if (!is || std::memcmp(got, magic, 4) != 0)
    throw std::runtime_error("LabelStore: bad magic");
  Header h;
  h.version = get<std::uint32_t>(is);
  if (h.version < 1 || h.version > max_version)
    throw std::runtime_error("LabelStore: unsupported version");
  h.scheme = get_string(is, 256);
  h.params = get_string(is, 4096);
  h.count = get<std::uint64_t>(is);
  if (h.count > (std::uint64_t{1} << 32))
    throw std::runtime_error("LabelStore: implausible label count");
  h.bytes = header_bytes(h.scheme, h.params);
  return h;
}

// --- version-2 (mappable) payload ------------------------------------------

/// Directory entries of a version-2 container, with the per-label bound of
/// get_label_bytes applied — and, mirroring MappedArena::map's defence, a
/// guard on the *accumulated* word count: the per-entry bound alone still
/// lets an adversarial directory overflow a size_t accumulator downstream
/// (32-bit hosts; or future arithmetic on the total).
std::vector<std::size_t> read_lens(std::istream& is, std::uint64_t count) {
  std::vector<std::size_t> lens(static_cast<std::size_t>(count));
  std::uint64_t total_words = 0;
  for (auto& l : lens) {
    const auto bitlen = get<std::uint64_t>(is);
    if (bitlen > (std::uint64_t{1} << 32))
      throw std::runtime_error("LabelStore: implausible label length");
    const std::uint64_t nw = bitlen / 64 + (bitlen % 64 != 0 ? 1 : 0);
    if (total_words > std::numeric_limits<std::uint64_t>::max() - nw ||
        total_words + nw >
            std::numeric_limits<std::size_t>::max() / sizeof(std::uint64_t))
      throw std::runtime_error("LabelStore: length directory overflows");
    total_words += nw;
    l = static_cast<std::size_t>(bitlen);
  }
  return lens;
}

/// Bytes of zero padding between the directory and the word buffer, sized so
/// the buffer starts at an 8-byte-aligned file offset.
std::size_t pad_after_directory(std::size_t header_bytes, std::uint64_t count) {
  const std::size_t before =
      header_bytes + static_cast<std::size_t>(count) * 8;
  return (8 - before % 8) % 8;
}

void skip_padding(std::istream& is, std::size_t pad) {
  for (std::size_t i = 0; i < pad; ++i)
    if (is.get() < 0) throw std::runtime_error("LabelStore: truncated padding");
}

}  // namespace

void LabelStore::save(std::ostream& os, std::string_view scheme,
                      std::span<const bits::BitVec> labels,
                      std::string_view params) {
  write_header(os, scheme, params, labels.size(), kMagic, kVersion);
  std::string buf;
  for (const auto& l : labels) put_label(os, buf, l.words().data(), l.size());
}

void LabelStore::save(std::ostream& os, std::string_view scheme,
                      const bits::LabelArena& labels, std::string_view params) {
  write_header(os, scheme, params, labels.size(), kMagic, kVersion);
  std::string buf;
  for (std::size_t i = 0; i < labels.size(); ++i)
    put_label(os, buf, labels.label_words(i), labels.label_bits(i));
}

void LabelStore::save_mappable(std::ostream& os, std::string_view scheme,
                               const bits::LabelArena& labels,
                               std::string_view params) {
  write_header(os, scheme, params, labels.size(), kMagic, kVersionMappable);
  for (std::size_t i = 0; i < labels.size(); ++i)
    put<std::uint64_t>(os, labels.label_bits(i));
  const std::size_t pad =
      pad_after_directory(header_bytes(scheme, params), labels.size());
  for (std::size_t i = 0; i < pad; ++i) os.put('\0');
  std::string buf;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::uint64_t* words = labels.label_words(i);
    const std::size_t nw = (labels.label_bits(i) + 63) / 64;
    buf.resize(nw * 8);
    for (std::size_t j = 0; j < buf.size(); ++j)
      buf[j] = static_cast<char>((words[j >> 3] >> (8 * (j & 7))) & 0xff);
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }
}

LabelStore::Loaded LabelStore::load(std::istream& is) {
  const Header h = read_and_check_header(is, kMagic, kVersionMappable);
  check_count_plausible(is, h.count);
  Loaded out;
  out.scheme = h.scheme;
  out.params = h.params;
  out.labels.reserve(static_cast<std::size_t>(h.count));
  std::string bytes;
  if (h.version == kVersion) {
    for (std::uint64_t i = 0; i < h.count; ++i) {
      const std::uint64_t bitlen = get_label_bitlen(is);
      bits::BitWriter w;
      read_label_payload(is, w, (bitlen + 7) / 8, bitlen, bytes);
      out.labels.push_back(w.take());
    }
  } else {
    const std::vector<std::size_t> lens = read_lens(is, h.count);
    skip_padding(is, pad_after_directory(h.bytes, h.count));
    for (const std::size_t bitlen : lens) {
      bits::BitWriter w;
      read_label_payload(is, w, ((std::uint64_t{bitlen} + 63) / 64) * 8,
                         bitlen, bytes);
      out.labels.push_back(w.take());
    }
  }
  return out;
}

LabelStore::LoadedArena LabelStore::load_arena(std::istream& is) {
  const Header h = read_and_check_header(is, kMagic, kVersionMappable);
  check_count_plausible(is, h.count);
  LoadedArena out;
  out.scheme = h.scheme;
  out.params = h.params;
  // Single-threaded build visits labels strictly in order, matching the
  // stream layout.
  std::string bytes;
  if (h.version == kVersion) {
    out.labels = bits::LabelArena::build(
        static_cast<std::size_t>(h.count), 1,
        [&](std::size_t, bits::BitWriter& w) {
          const std::uint64_t bitlen = get_label_bitlen(is);
          read_label_payload(is, w, (bitlen + 7) / 8, bitlen, bytes);
        });
  } else {
    const std::vector<std::size_t> lens = read_lens(is, h.count);
    skip_padding(is, pad_after_directory(h.bytes, h.count));
    out.labels = bits::LabelArena::build(
        static_cast<std::size_t>(h.count), 1,
        [&](std::size_t i, bits::BitWriter& w) {
          read_label_payload(is, w, ((std::uint64_t{lens[i]} + 63) / 64) * 8,
                             lens[i], bytes);
        });
  }
  return out;
}

LabelStore::MappedLoaded LabelStore::open_mapped(const std::string& path) {
  {
    std::ifstream is(path, std::ios::binary);
    if (!is)
      throw std::runtime_error("LabelStore: cannot open " + path);
    const Header h = read_and_check_header(is, kMagic, kVersionMappable);
    check_count_plausible(is, h.count);
    if (h.version == kVersionMappable) {
      std::vector<std::size_t> lens = read_lens(is, h.count);
      const std::size_t words_offset = h.bytes +
                                       static_cast<std::size_t>(h.count) * 8 +
                                       pad_after_directory(h.bytes, h.count);
      if (auto mapped =
              bits::MappedArena::map(path.c_str(), words_offset,
                                     std::move(lens))) {
        MappedLoaded out;
        out.scheme = h.scheme;
        out.params = h.params;
        out.labels = std::move(*mapped);
        return out;
      }
    }
  }
  // Streamed fallback: version-1 files, and version-2 files that could not
  // be mapped (its validation also catches a word buffer shorter than the
  // directory promises, which map() refuses silently).
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("LabelStore: cannot open " + path);
  LoadedArena la = load_arena(is);
  MappedLoaded out;
  out.scheme = std::move(la.scheme);
  out.params = std::move(la.params);
  out.labels = bits::MappedArena::adopt(std::move(la.labels));
  return out;
}

}  // namespace treelab::core
