// AdjacencyScheme — adjacency labeling for trees (the k = 1 member of the
// labeling family; cf. Alstrup–Dahlgaard–Knudsen [FOCS'15] for the optimal
// log n + O(1) bound).
//
// treelab's scheme stores (pre(v), pre(parent(v))): two nodes are adjacent
// iff one's preorder equals the other's parent-preorder. ~2 log n bits and
// constant-time queries — the simple classical scheme; the k-distance
// labels of Section 4 specialize to adjacency at k = 1 with the
// asymptotically optimal log n + O(log log n) size (see
// bench_table1_kdist_small), so this class exists as the trivially
// auditable baseline and for the examples.
#pragma once

#include <cstdint>
#include <vector>

#include "core/labeling.hpp"
#include "tree/tree.hpp"

namespace treelab::core {

class AdjacencyScheme {
 public:
  explicit AdjacencyScheme(const tree::Tree& t);

  [[nodiscard]] const bits::BitVec& label(tree::NodeId v) const noexcept {
    return labels_[v];
  }
  [[nodiscard]] const std::vector<bits::BitVec>& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] LabelStats stats() const { return stats_of(labels_); }

  /// True iff the two labeled nodes are joined by an edge.
  [[nodiscard]] static bool adjacent(const bits::BitVec& lu,
                                     const bits::BitVec& lv);

 private:
  std::vector<bits::BitVec> labels_;
};

}  // namespace treelab::core
