// Universal trees and the Lemma 3.6 reduction (Section 3.5, Fig. 4).
//
// Theorem 1.2's proof converts any parent-labeling scheme with S(n)-bit
// labels into a universal rooted tree with O(2^S(n)) nodes: take all labels
// as vertices and the label -> parent-label map as edges; cut cycles by
// duplication; add a global root. We execute that construction over the
// exhaustive family of rooted trees on <= n nodes using our
// LevelAncestorScheme, and compare the resulting universal tree against
// (a) the 2^S(n) bound and (b) the brute-force minimal universal tree
// (feasible for tiny n), reproducing the separation the paper proves:
// distance labels (1/4 log^2 n) beat anything universal-tree-derived
// (1/2 log^2 n - log n log log n, Lemma 3.7).
#pragma once

#include <cstdint>

#include "tree/tree.hpp"

namespace treelab::core {

/// Rooted-subtree embedding: does `pattern` appear in `host` as a subtree
/// (some host node's descendants contain an injective, child-to-child,
/// root-preserving copy of `pattern`)?
[[nodiscard]] bool embeds(const tree::Tree& host, const tree::Tree& pattern);

/// True if `host` contains every rooted tree on exactly n nodes.
[[nodiscard]] bool is_universal_for(const tree::Tree& host, tree::NodeId n);

/// Size of the smallest rooted tree containing all rooted trees on exactly
/// n nodes (brute force over enumerated candidates; n <= 4).
[[nodiscard]] tree::NodeId minimal_universal_tree_size(tree::NodeId n);

struct UniversalFromLabelsResult {
  std::size_t trees_labeled = 0;    ///< trees in the family (sizes 1..n)
  std::size_t num_labels = 0;       ///< distinct labels == |V| of the graph
  std::size_t universal_size = 0;   ///< |G'| after the Lemma 3.6 conversion
  std::size_t max_label_bits = 0;   ///< S(n)
  bool had_cycles = false;          ///< whether duplication was needed
};

/// Executes Lemma 3.6: labels every rooted tree on up to `max_n` nodes with
/// LevelAncestorScheme, forms the functional label -> parent-label graph,
/// and converts it to a universal rooted tree. (With our scheme the graph
/// is a forest — parent labels strictly decrease in depth — so no
/// duplication occurs and |G'| = #labels + 1.)
[[nodiscard]] UniversalFromLabelsResult universal_tree_from_parent_labels(
    tree::NodeId max_n);

}  // namespace treelab::core
