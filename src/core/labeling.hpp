// Common vocabulary for all labeling schemes.
//
// Every scheme in treelab assigns a BitVec label to each node of a tree and
// answers queries *from labels alone* (plus the scheme-wide constants that
// define the scheme: n, k, epsilon). LabelStats is the quantity the paper's
// theorems bound and the benches report.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/bitvec.hpp"
#include "bits/label_arena.hpp"
#include "tree/tree.hpp"

namespace treelab::core {

struct LabelStats {
  std::size_t count = 0;
  std::size_t max_bits = 0;
  std::size_t total_bits = 0;

  void add(std::size_t bits) {
    ++count;
    max_bits = std::max(max_bits, bits);
    total_bits += bits;
  }

  [[nodiscard]] double avg_bits() const {
    return count == 0 ? 0.0 : static_cast<double>(total_bits) /
                                  static_cast<double>(count);
  }
};

/// Stats over a set of labels.
[[nodiscard]] LabelStats stats_of(const std::vector<bits::BitVec>& labels);

/// Stats over pooled labels (exact bit lengths; arena padding not counted).
[[nodiscard]] LabelStats stats_of(const bits::LabelArena& labels);

/// Result of a bounded-distance (k-distance) query.
struct BoundedDistance {
  bool within = false;          ///< true iff d(u,v) <= k
  std::uint64_t distance = 0;   ///< valid iff within
};

}  // namespace treelab::core
