#include "core/fgnw_scheme.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>

#include "bits/bitio.hpp"
#include "bits/monotone.hpp"
#include "nca/nca_labeling.hpp"
#include "tree/binarize.hpp"
#include "tree/collapsed.hpp"
#include "tree/hpd.hpp"

namespace treelab::core {

using bits::BitReader;
using bits::BitSpan;
using bits::BitVec;
using bits::BitWriter;
using bits::LabelArena;
using bits::MonotoneSeq;
using nca::NcaLabeling;
using nca::NcaResult;
using tree::BinarizedTree;
using tree::CollapsedTree;
using tree::HeavyPathDecomposition;
using tree::kNoNode;
using tree::NodeId;
using tree::Tree;

namespace {

/// Per light edge (identified by the child heavy path it leads to): the
/// split value r(e) and the accumulator state at the moment the edge was
/// processed on its parent path.
struct EdgeRecord {
  bool exceptional = false;
  std::uint32_t frag = 0;       // fragment index g (0 = the root)
  int kept_count = 0;           // bits kept in the owner's label
  int pushed_count = 0;         // bits pushed to dominated accumulators
  std::uint64_t kept_bits = 0;  // the kept (most significant) bits of r
  BitVec acc;                   // accumulator contents when entering here
};

/// One decoded per-level record of a label.
struct LevelRecord {
  bool exceptional = false;
  std::uint32_t frag = 0;
  int pushed_count = 0;
  int kept_count = 0;
  std::uint64_t kept_bits = 0;
  std::size_t acc_off = 0;  // bit offset of accumulator within the label
  std::size_t acc_len = 0;
};

void write_level(BitWriter& w, const EdgeRecord& e) {
  w.put_bit(e.exceptional);
  if (!e.exceptional) {
    w.put_gamma0(e.frag);
    w.put_gamma0(static_cast<std::uint64_t>(e.pushed_count));
    w.put_gamma0(static_cast<std::uint64_t>(e.kept_count));
    w.put_bits(e.kept_bits, e.kept_count);
  }
  w.put_gamma0(e.acc.size());
  w.append(e.acc);
}

LevelRecord read_level(BitReader& r) {
  LevelRecord out;
  out.exceptional = r.get_bit();
  if (!out.exceptional) {
    out.frag = static_cast<std::uint32_t>(r.get_gamma0());
    out.pushed_count = static_cast<int>(r.get_gamma0());
    out.kept_count = static_cast<int>(r.get_gamma0());
    if (out.pushed_count > 64 || out.kept_count > 64)
      throw bits::DecodeError("FGNW label: oversized split counts");
    out.kept_bits = r.get_bits(out.kept_count);
  }
  out.acc_len = static_cast<std::size_t>(r.get_gamma0());
  out.acc_off = r.pos();
  r.seek(r.pos() + out.acc_len);
  return out;
}

}  // namespace

FgnwScheme::FgnwScheme(const Tree& t, Options opt)
    : FgnwScheme(TreeScaffold(t), opt) {}

FgnwScheme::FgnwScheme(const TreeScaffold& scaffold, Options opt) {
  const Tree& t = scaffold.tree();
  const BinarizedTree& bt = scaffold.binarized();
  const Tree& b = bt.tree;
  const NodeId n = b.size();
  info_.binarized_size = static_cast<std::size_t>(n);

  // The scaffold caches the paper-variant decomposition; the classic-HPD
  // ablation builds its own pieces locally.
  std::optional<HeavyPathDecomposition> own_hpd;
  std::optional<CollapsedTree> own_ct;
  std::optional<NcaLabeling> own_nca;
  if (opt.use_classic_hpd) {
    own_hpd.emplace(b, HeavyPathDecomposition::Variant::kClassic);
    own_ct.emplace(*own_hpd);
    own_nca.emplace(*own_hpd, scaffold.threads());
  }
  const HeavyPathDecomposition& hpd =
      opt.use_classic_hpd ? *own_hpd : scaffold.binarized_hpd();
  const CollapsedTree& ct = opt.use_classic_hpd ? *own_ct : scaffold.collapsed();
  const NcaLabeling& nca =
      opt.use_classic_hpd ? *own_nca : scaffold.binarized_nca();
  info_.max_light_depth = hpd.max_light_depth();

  const double log_n = std::log2(std::max<double>(2.0, n));
  const int frag_b = opt.fragment_exponent > 0
                         ? opt.fragment_exponent
                         : std::max(1, static_cast<int>(std::ceil(
                                           std::sqrt(log_n))));

  // Fragment level of a heavy path: phi = floor((log n - log sz) / B) where
  // sz is the size of the subtree rooted at the path's head. Non-decreasing
  // along any root-to-leaf chain of C(T).
  const std::int32_t m = hpd.num_paths();
  std::vector<std::int32_t> phi(static_cast<std::size_t>(m));
  for (std::int32_t p = 0; p < m; ++p) {
    const NodeId sz = b.subtree_size(hpd.head(p));
    phi[static_cast<std::size_t>(p)] =
        (bits::msb(static_cast<std::uint64_t>(n)) -
         bits::msb(static_cast<std::uint64_t>(sz))) /
        frag_b;
    info_.fragment_levels =
        std::max(info_.fragment_levels, phi[static_cast<std::size_t>(p)]);
  }

  // Per path: the fragment distance array F (F[i-1] = root distance of the
  // head of the first path on the chain with phi >= i), built top-down.
  std::vector<std::vector<std::uint64_t>> frag_rd(static_cast<std::size_t>(m));
  std::vector<std::int32_t> order(static_cast<std::size_t>(m));
  for (std::int32_t p = 0; p < m; ++p) order[static_cast<std::size_t>(p)] = p;
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t bb) {
    return hpd.light_depth(hpd.head(a)) < hpd.light_depth(hpd.head(bb));
  });
  for (std::int32_t p : order) {
    const NodeId h = hpd.head(p);
    const NodeId par = b.parent(h);
    std::vector<std::uint64_t> f;
    if (par != kNoNode) f = frag_rd[static_cast<std::size_t>(hpd.path_of(par))];
    while (static_cast<std::int32_t>(f.size()) < phi[static_cast<std::size_t>(p)])
      f.push_back(b.root_distance(h));
    frag_rd[static_cast<std::size_t>(p)] = std::move(f);
  }

  // Process every heavy path's light children in collapsed (domination)
  // order, computing the split of r(e) and the running accumulator.
  std::vector<EdgeRecord> edge(static_cast<std::size_t>(m));
  for (std::int32_t p = 0; p < m; ++p) {
    BitWriter acc;  // pushed bits of the fat edges seen so far on this path
    for (std::int32_t c : ct.cchildren(p)) {
      EdgeRecord& e = edge[static_cast<std::size_t>(c)];
      e.acc = acc.bits();
      info_.max_accumulator_bits =
          std::max(info_.max_accumulator_bits, e.acc.size());
      if (ct.is_exceptional(c)) {
        e.exceptional = true;
        ++info_.exceptional_edges;
        continue;
      }
      const NodeId head_c = hpd.head(c);
      const NodeId branch = b.parent(head_c);
      const std::int32_t g = phi[static_cast<std::size_t>(p)];
      const std::uint64_t base =
          g == 0 ? 0 : frag_rd[static_cast<std::size_t>(p)][g - 1];
      const std::uint64_t r = b.root_distance(branch) - base;
      const int len = bits::bitwidth(r);

      const auto n_c = static_cast<double>(b.subtree_size(head_c));
      const auto n_prime = static_cast<double>(b.subtree_size(branch));
      const bool thin =
          b.subtree_size(head_c) * (std::int64_t{1} << opt.thin_exponent) <=
          b.subtree_size(branch);
      int kept = len;
      // Bit-pushing is sound only with the paper's HPD variant: classic
      // heavy paths terminate in leaves, and a leaf lying *on* the shared
      // path would be dominated without carrying an accumulator for the
      // branch level. This is exactly why Section 2 uses the >= |T|/2
      // variant; the classic ablation therefore stores values in full.
      if (thin)
        ++info_.thin_edges;
      else
        ++info_.fat_edges;
      if (!thin && !opt.use_classic_hpd) {
        const double budget =
            0.5 * std::log2(n_prime / n_c) * std::log2(n_prime);
        kept = std::min(len, static_cast<int>(std::ceil(budget)) + 1);
      }
      e.frag = static_cast<std::uint32_t>(g);
      e.kept_count = kept;
      e.pushed_count = len - kept;
      e.kept_bits = r >> e.pushed_count;
      info_.total_kept_bits += static_cast<std::size_t>(kept);
      info_.total_pushed_bits += static_cast<std::size_t>(e.pushed_count);
      if (e.pushed_count > 0)
        acc.put_bits(r & bits::low_mask(e.pushed_count), e.pushed_count);
    }
  }

  // The chain of heavy paths above each path (for assembling per-node level
  // records): chain(p) = chain(parent path) + p.
  std::vector<std::vector<std::int32_t>> chain(static_cast<std::size_t>(m));
  for (std::int32_t p : order) {
    const NodeId h = hpd.head(p);
    const NodeId par = b.parent(h);
    if (par == kNoNode) continue;  // root path: empty chain
    auto ch = chain[static_cast<std::size_t>(hpd.path_of(par))];
    ch.push_back(p);
    chain[static_cast<std::size_t>(p)] = std::move(ch);
  }

  // Per-path payload (sum of kept bits over the chain), folded into stats
  // per node after the parallel emission.
  std::vector<std::size_t> path_payload(static_cast<std::size_t>(m), 0);
  for (std::int32_t p = 0; p < m; ++p)
    for (std::int32_t q : chain[static_cast<std::size_t>(p)]) {
      const EdgeRecord& e = edge[static_cast<std::size_t>(q)];
      if (!e.exceptional)
        path_payload[static_cast<std::size_t>(p)] +=
            static_cast<std::size_t>(e.kept_count);
    }

  // Assemble leaf labels; the public label of original node v is the label
  // of its proxy leaf.
  labels_ = LabelArena::build(
      static_cast<std::size_t>(t.size()), scaffold.threads(),
      [&](std::size_t i, BitWriter& w) {
        const NodeId x = bt.leaf_of[i];
        const std::int32_t p = hpd.path_of(x);
        w.put_delta0(b.root_distance(x));
        const BitSpan nl = nca.label(x);
        w.put_delta0(nl.size());
        w.append(nl);
        (void)MonotoneSeq::encode_to(w, frag_rd[static_cast<std::size_t>(p)],
                                     b.root_distance(x));
        for (std::int32_t q : chain[static_cast<std::size_t>(p)])
          write_level(w, edge[static_cast<std::size_t>(q)]);
      });
  for (NodeId v = 0; v < t.size(); ++v)
    payload_.add(path_payload[static_cast<std::size_t>(
        hpd.path_of(bt.leaf_of[static_cast<std::size_t>(v)]))]);
}

FgnwAttachedLabel FgnwScheme::attach(BitSpan l) {
  FgnwAttachedLabel out;
  out.raw_ = l;
  BitReader r(out.raw_);
  out.rd_ = r.get_delta0();
  const BitVec nl = r.get_vec(static_cast<std::size_t>(r.get_delta0()));
  out.nca_ = NcaLabeling::attach(nl);
  out.frag_ = MonotoneSeq::read_from(r);
  const std::int32_t levels = out.nca_.lightdepth();
  out.levels_.reserve(static_cast<std::size_t>(levels));
  for (std::int32_t i = 0; i < levels; ++i) {
    const LevelRecord rec = read_level(r);
    out.levels_.push_back(FgnwAttachedLabel::Level{
        rec.exceptional, rec.frag, rec.pushed_count, rec.kept_count,
        rec.kept_bits, rec.acc_off, rec.acc_len});
  }
  return out;
}

std::uint64_t FgnwScheme::query(const FgnwAttachedLabel& lu,
                                const FgnwAttachedLabel& lv) {
  const NcaResult res = NcaLabeling::query(lu.nca_, lv.nca_);
  switch (res.rel) {
    case NcaResult::Rel::kEqual:
      return 0;
    case NcaResult::Rel::kUAncestor:
      return lv.rd_ - lu.rd_;
    case NcaResult::Rel::kVAncestor:
      return lu.rd_ - lv.rd_;
    case NcaResult::Rel::kDiverge:
      break;
  }
  const auto j = static_cast<std::size_t>(res.lightdepth + 1);
  const FgnwAttachedLabel& dom_l = res.u_first ? lu : lv;
  const FgnwAttachedLabel& sub_l = res.u_first ? lv : lu;
  if (j > dom_l.levels_.size())
    throw bits::DecodeError("FGNW query: dominator chain too short");
  const FgnwAttachedLabel::Level& dom = dom_l.levels_[j - 1];
  if (dom.exceptional)
    throw bits::DecodeError("FGNW query: dominator on exceptional edge");

  std::uint64_t pushed_val = 0;
  if (j <= sub_l.levels_.size()) {
    const FgnwAttachedLabel::Level& sub = sub_l.levels_[j - 1];
    if (dom.pushed_count > 0) {
      if (sub.acc_len <
          dom.acc_len + static_cast<std::size_t>(dom.pushed_count))
        throw bits::DecodeError("FGNW query: accumulator underflow");
      pushed_val =
          sub_l.raw_.read_bits(sub.acc_off + dom.acc_len, dom.pushed_count);
    }
  } else if (dom.pushed_count > 0) {
    throw bits::DecodeError("FGNW query: pushed bits without accumulator");
  }
  const std::uint64_t r = (dom.kept_bits << dom.pushed_count) | pushed_val;
  const std::uint64_t base =
      dom.frag == 0 ? 0
                    : dom_l.frag_.get(static_cast<std::size_t>(dom.frag) - 1);
  return lu.rd_ + lv.rd_ - 2 * (base + r);
}

std::uint64_t FgnwScheme::query(BitSpan lu, BitSpan lv) {
  BitReader ru(lu), rv(lv);
  const std::uint64_t rd_u = ru.get_delta0();
  const std::uint64_t rd_v = rv.get_delta0();
  const BitVec nu = ru.get_vec(static_cast<std::size_t>(ru.get_delta0()));
  const BitVec nv = rv.get_vec(static_cast<std::size_t>(rv.get_delta0()));
  const NcaResult res = NcaLabeling::query(nu, nv);
  switch (res.rel) {
    case NcaResult::Rel::kEqual:
      return 0;
    case NcaResult::Rel::kUAncestor:
      return rd_v - rd_u;  // cannot occur between proxy leaves; kept for
                           // robustness on degenerate inputs
    case NcaResult::Rel::kVAncestor:
      return rd_u - rd_v;
    case NcaResult::Rel::kDiverge:
      break;
  }

  const std::int32_t j = res.lightdepth + 1;  // 1-based level of the branch
  BitReader& rdom = res.u_first ? ru : rv;
  BitReader& rsub = res.u_first ? rv : ru;

  // Dominator: fragment array + walk to its level-j record.
  const MonotoneSeq frag_dom = MonotoneSeq::read_from(rdom);
  LevelRecord dom{};
  for (std::int32_t lvl = 1; lvl <= j; ++lvl) dom = read_level(rdom);
  if (dom.exceptional)
    throw bits::DecodeError("FGNW query: dominator on exceptional edge");

  // Pushed bits of the dominator's edge live in the dominated accumulator.
  // Accumulators grow in domination order, so the dominator's accumulator is
  // a *prefix* of the dominated one and the dominator's own pushed bits sit
  // immediately after that prefix. A dominated node with fewer light levels
  // than j lies *on* the shared heavy path (possible only in the classic-HPD
  // ablation, where nothing is pushed) and has no record to read.
  const std::int32_t sub_levels =
      NcaLabeling::lightdepth_of_label(res.u_first ? nv : nu);
  std::uint64_t pushed_val = 0;
  if (sub_levels >= j) {
    (void)MonotoneSeq::read_from(rsub);
    LevelRecord sub{};
    for (std::int32_t lvl = 1; lvl <= j; ++lvl) sub = read_level(rsub);
    if (dom.pushed_count > 0) {
      if (sub.acc_len <
          dom.acc_len + static_cast<std::size_t>(dom.pushed_count))
        throw bits::DecodeError("FGNW query: accumulator underflow");
      const std::size_t off = sub.acc_off + dom.acc_len;
      const BitSpan raw = res.u_first ? lv : lu;
      pushed_val = raw.read_bits(off, dom.pushed_count);
    }
  } else if (dom.pushed_count > 0) {
    throw bits::DecodeError("FGNW query: pushed bits without accumulator");
  }
  const std::uint64_t r =
      (dom.kept_bits << dom.pushed_count) | pushed_val;
  const std::uint64_t base =
      dom.frag == 0 ? 0 : frag_dom.get(static_cast<std::size_t>(dom.frag) - 1);
  const std::uint64_t rd_nca = base + r;
  return rd_u + rd_v - 2 * rd_nca;
}

}  // namespace treelab::core
