#include "core/approx_scheme.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "bits/bitio.hpp"
#include "bits/monotone.hpp"
#include "nca/nca_labeling.hpp"
#include "tree/hpd.hpp"

namespace treelab::core {

using bits::BitReader;
using bits::BitSpan;
using bits::BitVec;
using bits::BitWriter;
using bits::LabelArena;
using bits::MonotoneSeq;
using nca::NcaLabeling;
using nca::NcaResult;
using tree::HeavyPathDecomposition;
using tree::kNoNode;
using tree::NodeId;
using tree::Tree;

namespace {

/// Smallest integer e with base^e >= x (x >= 2), by log estimate plus
/// guard loops against floating point drift on both sides.
std::uint32_t round_up_exp_slow(long double base, std::uint64_t x) {
  auto e = static_cast<std::int64_t>(
      std::ceil(std::log(static_cast<long double>(x)) / std::log(base)));
  while (e > 0 && std::pow(base, static_cast<long double>(e - 1)) >=
                      static_cast<long double>(x))
    --e;
  while (std::pow(base, static_cast<long double>(e)) <
         static_cast<long double>(x))
    ++e;
  return static_cast<std::uint32_t>(std::max<std::int64_t>(0, e));
}

/// Precomputed table of (1+eps)^e, e = 0, 1, ..., covering every value up
/// to `max_x`. round_up_exp(x) — the smallest e with (1+eps)^e >= x — then
/// becomes one lower_bound instead of log/pow calls per chain entry, which
/// dominated the whole build. The table entries are the exact std::pow
/// values the per-entry guard loops compare against, so the resulting
/// exponents (and therefore the label bits) are unchanged. The table is
/// capped (tiny eps would otherwise need ~log(max_x)/eps entries); values
/// past its coverage fall back to the O(1)-space slow path.
class RoundUpTable {
 public:
  static constexpr std::size_t kMaxEntries = std::size_t{1} << 20;

  RoundUpTable(double eps, std::uint64_t max_x)
      : base_(1.0L + static_cast<long double>(eps)) {
    powers_.push_back(1.0L);  // (1+eps)^0
    while (powers_.back() < static_cast<long double>(max_x) &&
           powers_.size() < kMaxEntries)
      powers_.push_back(
          std::pow(base_, static_cast<long double>(powers_.size())));
  }

  /// Smallest integer e with (1+eps)^e >= x.
  [[nodiscard]] std::uint32_t round_up_exp(std::uint64_t x) const {
    if (x <= 1) return 0;
    if (powers_.back() < static_cast<long double>(x))
      return round_up_exp_slow(base_, x);
    const auto it = std::lower_bound(powers_.begin(), powers_.end(),
                                     static_cast<long double>(x));
    return static_cast<std::uint32_t>(it - powers_.begin());
  }

 private:
  long double base_;
  std::vector<long double> powers_;
};

/// (1+eps)^e exactly as a real (a valid over-estimate, by a factor of at
/// most 1+eps, of any x whose rounding exponent is e). Kept real-valued:
/// rounding it up to an integer here would add +1 absolute error and break
/// the multiplicative guarantee on small distances.
long double exp_value(double eps, std::uint32_t e) {
  const long double base = 1.0L + static_cast<long double>(eps);
  return std::pow(base, static_cast<long double>(e));
}

}  // namespace

ApproxScheme::ApproxScheme(const Tree& t, double eps, Encoding enc)
    : ApproxScheme(TreeScaffold(t), eps, enc) {}

ApproxScheme::ApproxScheme(const TreeScaffold& scaffold, double eps,
                           Encoding enc)
    : eps_(eps) {
  if (!(eps > 0.0) || eps > 1.0)
    throw std::invalid_argument("ApproxScheme: eps must be in (0, 1]");
  const double half = eps / 2;  // the rounding uses eps/2 (see header)
  const Tree& t = scaffold.tree();
  const HeavyPathDecomposition& hpd = scaffold.hpd();
  const NcaLabeling& nca = scaffold.nca();
  // Every rounded value is a chain distance, bounded by the deepest root
  // distance; one table serves all nodes.
  std::uint64_t max_rd = 1;
  for (NodeId v = 0; v < t.size(); ++v)
    max_rd = std::max(max_rd, t.root_distance(v));
  const RoundUpTable table(half, max_rd);

  // Per path: rounding exponents of d(v, v_i) depend on v, so they are
  // computed per node by walking its significant ancestor chain.
  labels_ = LabelArena::build(
      static_cast<std::size_t>(t.size()), scaffold.threads(),
      [&t, &hpd, &nca, &table, enc,
       exps = std::vector<std::uint64_t>{}](std::size_t i,
                                            BitWriter& w) mutable {
        const auto v = static_cast<NodeId>(i);
        exps.clear();
        NodeId cur = v;
        std::uint64_t dist = 0;
        for (;;) {
          const NodeId head = hpd.head_of(cur);
          const NodeId up = t.parent(head);
          if (up == kNoNode) break;
          dist += t.root_distance(cur) - t.root_distance(head) + t.weight(head);
          exps.push_back(table.round_up_exp(std::max<std::uint64_t>(1, dist)));
          cur = up;
        }

        w.put_delta0(t.root_distance(v));
        const BitSpan nl = nca.label(v);
        w.put_delta0(nl.size());
        w.append(nl);
        w.put_bit(enc == Encoding::kUnary);
        if (enc == Encoding::kUnary) {
          // [ICALP'16]-style: first exponent, then unary deltas.
          w.put_delta0(exps.size());
          std::uint64_t prev = 0;
          for (std::uint64_t e : exps) {
            w.put_unary(e - prev);
            prev = e;
          }
        } else {
          (void)MonotoneSeq::encode_to(w, exps,
                                       exps.empty() ? 0 : exps.back());
        }
      });
}

ApproxAttachedLabel ApproxScheme::attach(BitSpan l) {
  ApproxAttachedLabel out;
  BitReader r(l);
  out.rd_ = r.get_delta0();
  const BitVec nl = r.get_vec(static_cast<std::size_t>(r.get_delta0()));
  out.nca_ = NcaLabeling::attach(nl);
  if (r.get_bit()) {  // unary encoding
    const std::uint64_t cnt = r.get_delta0();
    if (cnt > l.size())
      throw bits::DecodeError("approx label: implausible chain length");
    out.exps_.reserve(static_cast<std::size_t>(cnt));
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < cnt; ++i) {
      acc += r.get_unary();
      out.exps_.push_back(static_cast<std::uint32_t>(acc));
    }
  } else {
    const MonotoneSeq seq = MonotoneSeq::read_from(r);
    out.exps_.reserve(seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i)
      out.exps_.push_back(static_cast<std::uint32_t>(seq.get(i)));
  }
  return out;
}

std::uint64_t ApproxScheme::query(double eps, const ApproxAttachedLabel& lu,
                                  const ApproxAttachedLabel& lv) {
  const double half = eps / 2;
  const NcaResult res = NcaLabeling::query(lu.nca_, lv.nca_);
  switch (res.rel) {
    case NcaResult::Rel::kEqual:
      return 0;
    case NcaResult::Rel::kUAncestor:
      return lv.rd_ - lu.rd_;
    case NcaResult::Rel::kVAncestor:
      return lu.rd_ - lv.rd_;
    case NcaResult::Rel::kDiverge:
      break;
  }
  const ApproxAttachedLabel& dom = res.u_first ? lu : lv;
  const ApproxAttachedLabel& oth = res.u_first ? lv : lu;
  const std::size_t j =
      static_cast<std::size_t>(dom.nca_.lightdepth() - res.lightdepth);
  if (j == 0) throw bits::DecodeError("approx label: dominator at NCA");
  if (j > dom.exps_.size())
    throw bits::DecodeError("approx label: chain too short");
  const long double approx_dw = exp_value(half, dom.exps_[j - 1]);
  const long double estimate =
      2.0L * approx_dw + (static_cast<long double>(oth.rd_) -
                          static_cast<long double>(dom.rd_));
  return static_cast<std::uint64_t>(std::floor(estimate));
}

std::uint64_t ApproxScheme::query(double eps, BitSpan lu, BitSpan lv) {
  const double half = eps / 2;
  BitReader ru(lu), rv(lv);
  const std::uint64_t rd_u = ru.get_delta0();
  const std::uint64_t rd_v = rv.get_delta0();
  const BitVec nu = ru.get_vec(static_cast<std::size_t>(ru.get_delta0()));
  const BitVec nv = rv.get_vec(static_cast<std::size_t>(rv.get_delta0()));
  const NcaResult res = NcaLabeling::query(nu, nv);
  switch (res.rel) {
    case NcaResult::Rel::kEqual:
      return 0;
    case NcaResult::Rel::kUAncestor:
      return rd_v - rd_u;
    case NcaResult::Rel::kVAncestor:
      return rd_u - rd_v;
    case NcaResult::Rel::kDiverge:
      break;
  }
  // w = NCA is the j-th significant ancestor of the dominating node, where
  // j = lightdepth(dominator) - lightdepth(w).
  BitReader& rd = res.u_first ? ru : rv;
  const BitVec& nl = res.u_first ? nu : nv;
  const std::size_t j = static_cast<std::size_t>(
      NcaLabeling::lightdepth_of_label(nl) - res.lightdepth);
  if (j == 0) throw bits::DecodeError("approx label: dominator at NCA");
  std::uint32_t e = 0;
  if (rd.get_bit()) {  // unary encoding
    const std::uint64_t cnt = rd.get_delta0();
    if (j > cnt) throw bits::DecodeError("approx label: chain too short");
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < j; ++i) acc += rd.get_unary();
    e = static_cast<std::uint32_t>(acc);
  } else {
    const MonotoneSeq seq = MonotoneSeq::read_from(rd);
    if (j > seq.size()) throw bits::DecodeError("approx label: chain too short");
    e = static_cast<std::uint32_t>(seq.get(j - 1));
  }
  const long double approx_dw = exp_value(half, e);  // >= d(dominator, w)
  const auto rd_dom = static_cast<std::int64_t>(res.u_first ? rd_u : rd_v);
  const auto rd_oth = static_cast<std::int64_t>(res.u_first ? rd_v : rd_u);
  // d(u,v) = 2 d(dom,w) + rd_oth - rd_dom; the rounding only inflates the
  // first term, by a factor <= 1 + eps/2 <= 1 + eps/(2 d(dom,w)/d), hence
  // the floored result stays in [d, (1+eps) d].
  const long double estimate =
      2.0L * approx_dw + static_cast<long double>(rd_oth - rd_dom);
  return static_cast<std::uint64_t>(std::floor(estimate));
}

}  // namespace treelab::core
