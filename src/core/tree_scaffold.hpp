// TreeScaffold — the shared construction substrate for every labeling
// scheme of one tree.
//
// All five distance schemes (and SpanningOracle's per-tree builds) start
// from the same preprocessing pipeline of Section 2: heavy path
// decomposition of the input tree, the Lemma 2.1 NCA labeling over it, and
// — for the binarized reduction FGNW runs on — binarize → HPD → collapsed
// tree → NCA labeling of the binarized tree. Before the scaffold existed,
// each scheme constructor recomputed its slice of that pipeline; building
// the full suite on one tree paid for the HPD five times and the NCA
// labeling three times. A TreeScaffold computes each component exactly once,
// on first use, and hands out references; scheme constructors taking a
// scaffold share them, and the original Tree-taking constructors delegate
// through a private scaffold so the public API is unchanged.
//
// Thread-safety: component construction is lazy and unsynchronized — create
// the scaffold and build schemes from it on one thread (the schemes
// themselves fan label emission out over `threads()` worker threads
// internally). Distinct scaffolds are fully independent, which is how
// SpanningOracle parallelizes across landmark trees.
#pragma once

#include <memory>

#include "nca/nca_labeling.hpp"
#include "tree/binarize.hpp"
#include "tree/collapsed.hpp"
#include "tree/hpd.hpp"
#include "tree/tree.hpp"

namespace treelab::core {

class TreeScaffold {
 public:
  /// `t` must outlive the scaffold. `threads` is the construction
  /// parallelism handed to the schemes built from this scaffold (0 =
  /// TREELAB_THREADS / hardware default, 1 = serial); it never affects the
  /// label bits, only how fast they are emitted.
  explicit TreeScaffold(const tree::Tree& t, int threads = 0)
      : t_(&t), threads_(threads) {}

  TreeScaffold(const TreeScaffold&) = delete;
  TreeScaffold& operator=(const TreeScaffold&) = delete;

  [[nodiscard]] const tree::Tree& tree() const noexcept { return *t_; }
  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Heavy path decomposition of the original tree (paper >= |T|/2 variant).
  [[nodiscard]] const tree::HeavyPathDecomposition& hpd() const;

  /// NCA labeling over hpd().
  [[nodiscard]] const nca::NcaLabeling& nca() const;

  /// The Section 2 binarized reduction of the tree.
  [[nodiscard]] const tree::BinarizedTree& binarized() const;

  /// Heavy path decomposition of the binarized tree (paper variant).
  [[nodiscard]] const tree::HeavyPathDecomposition& binarized_hpd() const;

  /// Collapsed tree of binarized_hpd().
  [[nodiscard]] const tree::CollapsedTree& collapsed() const;

  /// NCA labeling over binarized_hpd().
  [[nodiscard]] const nca::NcaLabeling& binarized_nca() const;

  /// How many of the six lazy components have been constructed so far —
  /// observability for the computed-once contract (a scaffold that has fed
  /// the full five-scheme suite reports exactly 6, never more).
  [[nodiscard]] int components_built() const noexcept {
    return components_built_;
  }

 private:
  const tree::Tree* t_;
  int threads_;
  mutable int components_built_ = 0;
  mutable std::unique_ptr<tree::HeavyPathDecomposition> hpd_;
  mutable std::unique_ptr<nca::NcaLabeling> nca_;
  mutable std::unique_ptr<tree::BinarizedTree> binarized_;
  mutable std::unique_ptr<tree::HeavyPathDecomposition> bin_hpd_;
  mutable std::unique_ptr<tree::CollapsedTree> collapsed_;
  mutable std::unique_ptr<nca::NcaLabeling> bin_nca_;
};

}  // namespace treelab::core
