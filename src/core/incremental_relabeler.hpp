// IncrementalRelabeler — the build-side half of the dynamic-forest story.
//
// The deployment model is "compute labels once centrally, ship them, answer
// locally" — but real forests change. A from-scratch relabel of an n-node
// tree costs the full pipeline (HPD, code tables, O(n log n) bits of
// emission) for every edit; this class maintains an Alstrup distance
// labeling under the full edit model —
//   * insert_leaf    — append a new leaf (PR 4's original edit),
//   * delete_leaf    — remove a leaf; its id becomes a tombstone (zero-length
//                      label) until an explicit compact(),
//   * detach_subtree / attach_subtree — cut a whole subtree out of the tree
//                      and graft it back elsewhere (a subtree move is a
//                      detach followed by an attach),
//   * set_edge_weight — change one parent-edge weight (the weighted-scheme
//                      scaffold: distances shift, structure does not),
//   * compact()      — drop tombstoned ids, renumber the survivors densely
//                      (order-preserving) and return the old-id → new-id
//                      remap so serving layers can translate
// — and re-emits only the labels an edit actually dirties, splicing the rest
// into the deterministic bits::LabelArena layout (LabelArena::patched). The
// result is *bit-identical* to AlstrupScheme(snapshot(), {kStablePow2})
// built from scratch on the edited (compacted) tree — asserted across
// randomized edit-sequence interleavings in tests/edit_fuzz_test and
// tests/incremental_relabel_test the same way parallel_build_test asserts
// thread-count parity.
//
// Why the stable weight policy: with the paper's exact Gilbert–Moore weights
// a single leaf insert bumps a subtree size on *every* heavy path up the
// root path, every cumulative weight sum shifts, and every label in the tree
// changes — there is nothing incremental to save. Under
// nca::CodeWeights::kStablePow2 (weights rounded up to powers of two,
// light children in node-id order) a code table changes only when a mass
// crosses a power of two or a path gains/loses a member, so a typical edit
// dirties one small cone instead of the world. The dirty set of an edit at
// node x is:
//   * x itself (the new leaf, the tombstone, or the moved subtree root),
//   * subtree(head(P)) for every heavy path P whose position-code table
//     changed (a crossed power of two at a branch node, or a path that
//     gained/lost a member),
//   * the light subtrees of every branch node whose light-choice table
//     changed (a light child added/removed, or a light child's quantized
//     size crossing),
//   * for weight edits: all of subtree(x) (every label in it stores a
//     root distance).
//
// Fallbacks: an edit that flips a heavy-child choice anywhere restructures
// the decomposition; small flips are handled by in-place re-decomposition of
// the flipped path head's subtree, big ones fall back to a full rebuild, as
// does any edit whose dirty cone covers most of the tree. Both fallbacks are
// separately counted and exposed via stats() so operators can see how
// incremental their workload actually is. Fallbacks produce the same bits
// (the whole point), only slower.
//
// Delta shipping: the relabeler knows exactly which labels every edit
// changed, so it can hand the serving layer a *delta* instead of a whole
// file. make_delta()/ship_delta() package everything since the last
// rebase_delta() — dropped ids (from compact), dirty label payloads, and the
// tree-shape edit log — into core::LabelDelta / the LabelStore v3 container,
// which serve::ForestIndex::apply_delta() applies copy-on-write.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "bits/alphabetic.hpp"
#include "bits/label_arena.hpp"
#include "core/label_store.hpp"
#include "nca/heavy_path_codes.hpp"
#include "tree/tree.hpp"

namespace treelab::core {

struct RelabelOptions {
  /// Emission parallelism for full rebuilds (0 = TREELAB_THREADS / hw).
  /// Incremental re-emission is serial — dirty sets are small by design.
  int threads = 0;
  /// Fall back to a full rebuild when an edit dirties more than this
  /// fraction of the labels (past that point splicing saves nothing).
  /// Small trees always go incremental (the cutoff is floored at 256 dirty
  /// labels) so the incremental machinery stays exercised; <= 0 forces a
  /// full rebuild on every edit (testing/ops escape hatch).
  double max_dirty_fraction = 0.5;
};

/// How the last edit was applied.
enum class RelabelOutcome : std::uint8_t {
  kIncremental,    ///< dirty labels re-emitted, rest spliced
  kRestructured,   ///< a heavy-child flip, contained: the flipped path
                   ///< head's subtree was re-decomposed, then spliced
  kFullHeavyFlip,  ///< a flip whose subtree exceeded the limit: full rebuild
  kFullDirtyCone,  ///< dirty cone above max_dirty_fraction: full rebuild
};

struct RelabelStats {
  std::uint64_t edits = 0;         ///< inserts + deletes + detaches +
                                   ///< attaches + weight updates
  std::uint64_t incremental = 0;   ///< spliced, decomposition untouched
  std::uint64_t restructured = 0;  ///< spliced after a local re-decomposition
  std::uint64_t full_heavy_flip = 0;
  std::uint64_t full_dirty_cone = 0;
  std::uint64_t labels_reemitted = 0;  ///< over incremental + restructured
  std::uint64_t labels_spliced = 0;    ///< clean labels carried over
  std::uint64_t compactions = 0;       ///< compact() calls (not edits)
};

class IncrementalRelabeler {
 public:
  explicit IncrementalRelabeler(const tree::Tree& initial,
                                RelabelOptions opt = {});

  IncrementalRelabeler(const IncrementalRelabeler&) = delete;
  IncrementalRelabeler& operator=(const IncrementalRelabeler&) = delete;

  /// Appends a new leaf under `parent` (edge weight `weight`) and brings the
  /// labeling up to date. Returns the new node's id (the current size()).
  /// Throws std::out_of_range on a bad or non-live parent.
  tree::NodeId insert_leaf(tree::NodeId parent, std::uint32_t weight = 1);

  /// Removes leaf `v` (a live node with no attached children). Its id
  /// becomes a tombstone: the slot stays in the id space with a zero-length
  /// label until compact() drops it. Throws std::out_of_range on a bad or
  /// non-live id, std::invalid_argument if v is the root or not a leaf.
  void delete_leaf(tree::NodeId v);

  /// Cuts subtree(v) out of the tree. The subtree's nodes keep their ids
  /// but leave the labeling (zero-length labels) until attach_subtree()
  /// grafts the subtree back. At most one subtree may be detached at a
  /// time. Throws std::out_of_range on a bad or non-live id,
  /// std::invalid_argument if v is the root, std::logic_error if a detach
  /// is already pending.
  void detach_subtree(tree::NodeId v);

  /// Grafts the pending detached subtree back under `parent` with edge
  /// weight `weight` and relabels its cone. Throws std::logic_error if no
  /// detach is pending, std::out_of_range on a bad or non-live parent.
  void attach_subtree(tree::NodeId parent, std::uint32_t weight = 1);

  /// Changes the weight of the edge (v, parent(v)) — dirties exactly
  /// subtree(v) (every label in it stores a root distance; the
  /// decomposition and code tables are size-based and unaffected). Throws
  /// std::out_of_range on a bad or non-live id, std::invalid_argument at
  /// the root.
  void set_edge_weight(tree::NodeId v, std::uint32_t weight);

  /// Drops every tombstoned id, renumbering the survivors densely in the
  /// same relative order (label bits are invariant under this: codes are
  /// size- and order-based, not id-based). Returns the old-id → new-id
  /// remap, kNoNode for dropped ids — serve::ForestIndex threads this
  /// through update() so stale external ids fail deterministically instead
  /// of answering for the wrong node. Not an edit (no labels change).
  /// Throws std::logic_error while a detach is pending.
  std::vector<tree::NodeId> compact();

  /// Id-space size (live nodes + tombstones + detached); the labels()
  /// arena has exactly this many entries.
  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }
  /// Nodes currently in the tree (excludes tombstones and the detached
  /// subtree).
  [[nodiscard]] std::size_t live_size() const noexcept { return live_; }
  /// True when id v currently names a node of the tree.
  [[nodiscard]] bool alive(tree::NodeId v) const noexcept {
    return v >= 0 && static_cast<std::size_t>(v) < size() &&
           state_[static_cast<std::size_t>(v)] == kLive;
  }
  /// Root of the pending detached subtree, or kNoNode.
  [[nodiscard]] tree::NodeId detached_root() const noexcept {
    return detached_root_;
  }

  /// The current labeling: label i is bit-identical to
  /// AlstrupScheme(snapshot(), {kStablePow2}).labels()[dense_map()[i]] for
  /// live i, and zero-length for tombstoned/detached i.
  [[nodiscard]] const bits::LabelArena& labels() const noexcept {
    return labels_;
  }

  /// The scheme tag / params the labels carry on the wire (LabelStore).
  [[nodiscard]] static const char* scheme_tag() noexcept { return "alstrup"; }

  /// A LoadedArena copy of the current labeling, ready for
  /// serve::ForestIndex::add / update — the hot-swap hand-off.
  [[nodiscard]] LabelStore::LoadedArena to_loaded() const;

  /// An immutable Tree snapshot of the current live tree, ids compacted by
  /// dense_map() — the from-scratch reference the parity tests rebuild
  /// schemes on. Identity-mapped until the first deletion/detach.
  [[nodiscard]] tree::Tree snapshot() const;

  /// Current-id → dense-id map (what compact() would return), kNoNode for
  /// tombstoned/detached ids.
  [[nodiscard]] std::vector<tree::NodeId> dense_map() const;

  // --- delta shipping -------------------------------------------------------

  /// Packages every label change since the last rebase_delta() (or
  /// construction) as a core::LabelDelta: dropped base ids (compactions),
  /// dirty label payloads, the tree-shape edit log, and the epoch-chain
  /// values (base_chain / new_chain) that let a serving node reject a
  /// skipped or reordered delta. Apply it to the base-epoch labeling with
  /// LabelStore::apply_delta / serve::ForestIndex::apply_delta.
  [[nodiscard]] LabelDelta make_delta() const;

  /// Restarts delta tracking from the current labeling as a *fresh base* —
  /// the serving side is assumed to (re)load the full arena, so the epoch
  /// chain restarts at lens_hash(labels()).
  void rebase_delta();

  /// Continues delta tracking after `d` (a make_delta() result) was
  /// successfully shipped: the chain advances to d.new_chain and tracking
  /// restarts from the current labeling. Throws std::logic_error if d does
  /// not chain from the current epoch.
  void advance_delta(const LabelDelta& d);

  /// make_delta() → LabelStore::save_delta(os) → advance_delta().
  void ship_delta(std::ostream& os);

  /// Debug/test hook: recomputes the decomposition and code state from
  /// scratch on the current live tree and throws std::logic_error naming
  /// the first divergence (path numbering aside, which is internal). O(n) —
  /// meant for tests, not production edits.
  void check_state() const;

  [[nodiscard]] const RelabelStats& stats() const noexcept { return stats_; }
  [[nodiscard]] RelabelOutcome last_outcome() const noexcept {
    return last_outcome_;
  }
  /// Labels re-emitted by the last edit (size() on a fallback).
  [[nodiscard]] std::size_t last_dirty_count() const noexcept {
    return last_dirty_;
  }

 private:
  using NodeId = tree::NodeId;

  enum NodeState : std::uint8_t { kLive = 0, kDead = 1, kDetached = 2 };

  void full_rebuild();
  /// The compacted live tree (what snapshot() returns); when `old_of_out`
  /// is given it receives the dense-id → current-id map (the inverse of
  /// dense_map() over live ids). One definition of the live/dense mapping,
  /// shared by full_rebuild, check_state and snapshot.
  [[nodiscard]] tree::Tree live_tree(std::vector<NodeId>* old_of_out) const;
  void append_node(NodeId parent, std::uint32_t weight);
  /// Root-to-v chain (inclusive).
  [[nodiscard]] std::vector<NodeId> chain_to(NodeId v) const;
  /// Re-runs the paper-half heavy descent over every path crossed by the
  /// root-to-parent chain with the post-edit sizes. Returns the head of the
  /// topmost path with a heavy-child flip (kNoNode if none — flips are
  /// confined to that head's subtree, every deeper crossed path lies inside
  /// it); sets `extends` when the new leaf (already appended) continues its
  /// parent's path as the heavy child.
  [[nodiscard]] NodeId recheck_heavy(const std::vector<NodeId>& chain,
                                     NodeId leaf, bool* extends) const;
  /// recheck_heavy without the new-leaf special case: the stored
  /// decomposition must already be structurally consistent (deleted nodes
  /// popped from their paths, an attached subtree not yet chosen heavy) —
  /// any divergence from the fresh descent is a real flip.
  [[nodiscard]] NodeId recheck_heavy_resized(
      const std::vector<NodeId>& chain) const;
  /// Frees every path headed inside subtree(h) and clears path_of_ over it.
  void free_subtree_paths(NodeId h);
  /// Decomposes subtree(h) from scratch (heavy paths, position tables,
  /// branch distances) at light depth `ld`, allocating fresh/recycled path
  /// ids. The decomposition above h must be current. Prefixes of the new
  /// paths are NOT built here — the caller's dirty-head pass does that
  /// (every node of subtree(h) is dirty by then).
  void decompose_subtree(NodeId h, std::int32_t ld);
  /// free_subtree_paths + decompose_subtree at h's current light depth —
  /// the heavy-child-flip repair. h must be a path head.
  void restructure(NodeId h);
  [[nodiscard]] std::int32_t alloc_path();
  [[nodiscard]] std::vector<std::uint64_t> position_weights(
      std::int32_t p) const;
  [[nodiscard]] std::vector<bits::Codeword> light_codes_at(
      NodeId v, std::size_t* index_of, NodeId child) const;
  void rebuild_prefix(std::int32_t p);
  void emit_label(std::size_t i, bits::BitWriter& w,
                  std::vector<std::uint64_t>& scratch) const;

  /// Dirty-label count past which the edit falls back to a full rebuild.
  [[nodiscard]] std::size_t dirty_limit() const;
  /// Full rebuild + fallback bookkeeping (outcome, stats, delta tracking).
  void fall_back(bool flip);
  /// Adds `delta` to subtree_size_ along the chain.
  void add_sizes(const std::vector<NodeId>& chain, std::int64_t delta);
  /// Light subtrees of b (a changed light-choice table re-codes them all).
  void mark_light_site(NodeId b, std::vector<NodeId>& roots) const;
  /// Dirty roots from table changes along the chain after sizes moved by
  /// `size_delta`: position-code tables whose quantized weights changed,
  /// and light-choice sites where a chain child's quantized weight crossed.
  /// Stops above `flip_head` (that subtree was just re-decomposed).
  void detect_table_changes(const std::vector<NodeId>& chain,
                            NodeId flip_head, std::int64_t size_delta,
                            std::vector<NodeId>& roots);
  /// DFS-marks subtree(r) dirty.
  void mark_cone(NodeId r, std::vector<std::uint8_t>& dirty,
                 std::size_t& count) const;
  /// Shared edit tail: rebuild dirty-head prefixes, splice the arena,
  /// update stats/outcome/delta tracking. `count` = popcount of `dirty`.
  void splice_dirty(const std::vector<std::uint8_t>& dirty, std::size_t count,
                    bool flipped);
  void log_edit(LabelEdit::Kind kind, std::uint64_t a, std::uint64_t b);

  RelabelOptions opt_;
  RelabelStats stats_;
  RelabelOutcome last_outcome_ = RelabelOutcome::kIncremental;
  std::size_t last_dirty_ = 0;

  // Dynamic tree state (children kept in ascending-id order — Tree's
  // ordering, which the stable policy's light-child order is defined by).
  // Ids are stable across edits; deletions tombstone, compact() renumbers.
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> weight_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<NodeId> subtree_size_;
  std::vector<std::uint64_t> root_dist_;
  std::vector<std::uint8_t> state_;  // NodeState
  std::size_t live_ = 0;
  NodeId detached_root_ = tree::kNoNode;

  // Heavy path decomposition state (paper >= |T|/2 variant). Path ids are
  // internal bookkeeping — label bits never depend on the numbering, so
  // incremental numbering may differ from a fresh HPD's without breaking
  // parity. Tombstoned/detached nodes carry path_of_ == -1.
  std::vector<NodeId> heavy_;
  std::vector<std::int32_t> path_of_;
  std::vector<std::int32_t> pos_in_path_;
  std::vector<std::int32_t> light_depth_;
  std::vector<std::vector<NodeId>> path_nodes_;  // per path, top to bottom
  std::vector<NodeId> head_;  // per path; kNoNode = recycled slot
  std::vector<std::int32_t> free_paths_;  // recycled ids (restructure)

  // Stable-policy code state, per path.
  std::vector<std::vector<std::uint64_t>> pos_wts_;  // quantized weights
  std::vector<std::vector<bits::Codeword>> pos_code_;
  std::vector<bits::BitVec> prefix_;
  std::vector<std::vector<std::uint64_t>> bounds_;
  std::vector<std::vector<std::uint64_t>> branch_rd_;

  bits::LabelArena labels_;

  // Delta tracking since the last rebase_delta()/advance_delta().
  std::uint64_t delta_base_count_ = 0;
  std::uint64_t delta_base_hash_ = 0;
  std::uint64_t delta_chain_ = 0;
  std::vector<NodeId> base_of_cur_;           // cur id -> base id / kNoNode
  std::vector<std::uint64_t> delta_dropped_;  // base ids compacted away
  std::vector<std::uint8_t> delta_dirty_;     // cur-id space
  std::vector<LabelEdit> delta_edits_;
};

}  // namespace treelab::core
