// IncrementalRelabeler — the build-side half of the dynamic-forest story.
//
// The deployment model is "compute labels once centrally, ship them, answer
// locally" — but real forests grow. A from-scratch relabel of an n-node tree
// costs the full pipeline (HPD, code tables, O(n log n) bits of emission)
// for every edit; this class maintains an Alstrup distance labeling under
// leaf inserts/appends and re-emits only the labels an edit actually dirties,
// splicing them into the deterministic bits::LabelArena layout
// (LabelArena::patched). The result is *bit-identical* to
// AlstrupScheme(tree, {kStablePow2}) built from scratch on the edited tree —
// asserted across randomized edit sequences in tests/incremental_relabel_test
// the same way parallel_build_test asserts thread-count parity.
//
// Why the stable weight policy: with the paper's exact Gilbert–Moore weights
// a single leaf insert bumps a subtree size on *every* heavy path up the
// root path, every cumulative weight sum shifts, and every label in the tree
// changes — there is nothing incremental to save. Under
// nca::CodeWeights::kStablePow2 (weights rounded up to powers of two,
// light children in node-id order) a code table changes only when a mass
// crosses a power of two or a path gains a member, so a typical edit dirties
// one small cone instead of the world. The dirty set is:
//   * the new leaf itself,
//   * subtree(head(P)) for every heavy path P whose position-code table
//     changed (a crossed power of two at a branch node, or a path extended
//     by the new leaf),
//   * the light subtrees of every branch node whose light-choice table
//     changed (a new light child, or a light child's quantized size
//     crossing).
//
// Fallbacks: an edit that flips a heavy-child choice anywhere restructures
// the decomposition, and an edit whose dirty cone covers most of the tree is
// cheaper to rebuild outright; both fall back to a full rebuild, separately
// counted and exposed via stats() so operators can see how incremental their
// workload actually is. Fallbacks produce the same bits (the whole point),
// only slower.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/alphabetic.hpp"
#include "bits/label_arena.hpp"
#include "core/label_store.hpp"
#include "nca/heavy_path_codes.hpp"
#include "tree/tree.hpp"

namespace treelab::core {

struct RelabelOptions {
  /// Emission parallelism for full rebuilds (0 = TREELAB_THREADS / hw).
  /// Incremental re-emission is serial — dirty sets are small by design.
  int threads = 0;
  /// Fall back to a full rebuild when an edit dirties more than this
  /// fraction of the labels (past that point splicing saves nothing).
  /// Small trees always go incremental (the cutoff is floored at 256 dirty
  /// labels) so the incremental machinery stays exercised; <= 0 forces a
  /// full rebuild on every edit (testing/ops escape hatch).
  double max_dirty_fraction = 0.5;
};

/// How the last edit was applied.
enum class RelabelOutcome : std::uint8_t {
  kIncremental,    ///< dirty labels re-emitted, rest spliced
  kRestructured,   ///< a heavy-child flip, contained: the flipped path
                   ///< head's subtree was re-decomposed, then spliced
  kFullHeavyFlip,  ///< a flip whose subtree exceeded the limit: full rebuild
  kFullDirtyCone,  ///< dirty cone above max_dirty_fraction: full rebuild
};

struct RelabelStats {
  std::uint64_t edits = 0;
  std::uint64_t incremental = 0;   ///< spliced, decomposition untouched
  std::uint64_t restructured = 0;  ///< spliced after a local re-decomposition
  std::uint64_t full_heavy_flip = 0;
  std::uint64_t full_dirty_cone = 0;
  std::uint64_t labels_reemitted = 0;  ///< over incremental + restructured
  std::uint64_t labels_spliced = 0;    ///< clean labels carried over
};

class IncrementalRelabeler {
 public:
  explicit IncrementalRelabeler(const tree::Tree& initial,
                                RelabelOptions opt = {});

  IncrementalRelabeler(const IncrementalRelabeler&) = delete;
  IncrementalRelabeler& operator=(const IncrementalRelabeler&) = delete;

  /// Appends a new leaf under `parent` (edge weight `weight`) and brings the
  /// labeling up to date. Returns the new node's id (ids are dense; the new
  /// leaf gets the current size()). Throws std::out_of_range on a bad
  /// parent.
  tree::NodeId insert_leaf(tree::NodeId parent, std::uint32_t weight = 1);

  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

  /// The current labeling: bit-identical to
  /// AlstrupScheme(snapshot(), {nca::CodeWeights::kStablePow2}).labels().
  [[nodiscard]] const bits::LabelArena& labels() const noexcept {
    return labels_;
  }

  /// The scheme tag / params the labels carry on the wire (LabelStore).
  [[nodiscard]] static const char* scheme_tag() noexcept { return "alstrup"; }

  /// A LoadedArena copy of the current labeling, ready for
  /// serve::ForestIndex::add / update — the hot-swap hand-off.
  [[nodiscard]] LabelStore::LoadedArena to_loaded() const;

  /// An immutable Tree snapshot of the current (edited) tree — the
  /// from-scratch reference the parity tests rebuild schemes on.
  [[nodiscard]] tree::Tree snapshot() const;

  /// Debug/test hook: recomputes the decomposition and code state from
  /// scratch on the current tree and throws std::logic_error naming the
  /// first divergence (path numbering aside, which is internal). O(n) —
  /// meant for tests, not production edits.
  void check_state() const;

  [[nodiscard]] const RelabelStats& stats() const noexcept { return stats_; }
  [[nodiscard]] RelabelOutcome last_outcome() const noexcept {
    return last_outcome_;
  }
  /// Labels re-emitted by the last edit (size() on a fallback).
  [[nodiscard]] std::size_t last_dirty_count() const noexcept {
    return last_dirty_;
  }

 private:
  using NodeId = tree::NodeId;

  void full_rebuild();
  void append_node(NodeId parent, std::uint32_t weight);
  /// Re-runs the paper-half heavy descent over every path crossed by the
  /// root-to-parent chain with the post-edit sizes. Returns the head of the
  /// topmost path with a heavy-child flip (kNoNode if none — flips are
  /// confined to that head's subtree, every deeper crossed path lies inside
  /// it); sets `extends` when the new leaf (already appended) continues its
  /// parent's path as the heavy child.
  [[nodiscard]] NodeId recheck_heavy(const std::vector<NodeId>& chain,
                                     NodeId leaf, bool* extends) const;
  /// Re-decomposes subtree(h) from scratch (heavy paths, position tables,
  /// branch distances), recycling the path ids it replaces. h must be a
  /// path head, and the decomposition above h must be current. Prefixes of
  /// the new paths are NOT built here — the caller's dirty-head pass does
  /// that (every node of subtree(h) is dirty by then).
  void restructure(NodeId h);
  [[nodiscard]] std::int32_t alloc_path();
  [[nodiscard]] std::vector<std::uint64_t> position_weights(
      std::int32_t p) const;
  [[nodiscard]] std::vector<bits::Codeword> light_codes_at(
      NodeId v, std::size_t* index_of, NodeId child) const;
  void rebuild_prefix(std::int32_t p);
  void emit_label(std::size_t i, bits::BitWriter& w,
                  std::vector<std::uint64_t>& scratch) const;

  RelabelOptions opt_;
  RelabelStats stats_;
  RelabelOutcome last_outcome_ = RelabelOutcome::kIncremental;
  std::size_t last_dirty_ = 0;

  // Dynamic tree state (ids dense, children kept in ascending-id order —
  // new leaves take the max id, so push_back preserves Tree's ordering).
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> weight_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<NodeId> subtree_size_;
  std::vector<std::uint64_t> root_dist_;

  // Heavy path decomposition state (paper >= |T|/2 variant). Path ids are
  // internal bookkeeping — label bits never depend on the numbering, so
  // incremental numbering may differ from a fresh HPD's without breaking
  // parity.
  std::vector<NodeId> heavy_;
  std::vector<std::int32_t> path_of_;
  std::vector<std::int32_t> pos_in_path_;
  std::vector<std::int32_t> light_depth_;
  std::vector<std::vector<NodeId>> path_nodes_;  // per path, top to bottom
  std::vector<NodeId> head_;  // per path; kNoNode = recycled slot
  std::vector<std::int32_t> free_paths_;  // recycled ids (restructure)

  // Stable-policy code state, per path.
  std::vector<std::vector<std::uint64_t>> pos_wts_;  // quantized weights
  std::vector<std::vector<bits::Codeword>> pos_code_;
  std::vector<bits::BitVec> prefix_;
  std::vector<std::vector<std::uint64_t>> bounds_;
  std::vector<std::vector<std::uint64_t>> branch_rd_;

  bits::LabelArena labels_;
};

}  // namespace treelab::core
