// AncestryScheme — ancestry labeling for rooted trees.
//
// The paper's introduction places distance labeling in a family of tree
// labeling problems whose optimal bounds were settled earlier: adjacency
// [FOCS'15], NCA [SODA'14], and ancestry [SICOMP'06, Abiteboul et al.].
// treelab ships simple, correct schemes for those companions so that the
// library covers the whole family; for ancestry this is the classic
// interval scheme: label(v) = (pre(v), pre(v) + |T_v|), and u is an
// ancestor of v iff pre(v) lies in u's interval. 2 log n bits (the optimal
// scheme sharpens this to log n + O(log log n); the interval form is the
// textbook variant this library needs for its examples and tests).
#pragma once

#include <cstdint>
#include <vector>

#include "core/labeling.hpp"
#include "tree/tree.hpp"

namespace treelab::core {

class AncestryScheme {
 public:
  explicit AncestryScheme(const tree::Tree& t);

  [[nodiscard]] const bits::BitVec& label(tree::NodeId v) const noexcept {
    return labels_[v];
  }
  [[nodiscard]] const std::vector<bits::BitVec>& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] LabelStats stats() const { return stats_of(labels_); }

  /// True iff the node labeled `lu` is an ancestor of (or equal to) the
  /// node labeled `lv`.
  [[nodiscard]] static bool is_ancestor(const bits::BitVec& lu,
                                        const bits::BitVec& lv);

  /// Strict descendant test and equality, from labels alone.
  [[nodiscard]] static bool same_node(const bits::BitVec& lu,
                                      const bits::BitVec& lv);

 private:
  std::vector<bits::BitVec> labels_;
};

}  // namespace treelab::core
