// KDistanceScheme — bounded-distance labeling (Section 4, Theorem 1.3).
//
// Given the labels of u and v, decide whether d(u, v) <= k and if so return
// it exactly. Label sizes: log n + O(k log(log n / k)) for k < log n, and
// O(log n * log(k / log n)) for k >= log n.
//
// Machinery (Sections 4.3-4.4):
//  * Light ranges L_u (preorder taken with the heavy child rightmost) and
//    significant ancestors u = u_0, u_1, ..., truncated at the top
//    significant ancestor u_r (the last one within distance k).
//  * Range identifiers id(L) — the binary-trie ancestor of the range — are
//    *not stored*: each is recomputed from pre(u) and the stored height
//    (Observation 4.2.1), so a single log n field (pre) plus a monotone
//    height sequence (Lemma 2.2) identifies the whole chain.
//  * The nearest common significant ancestor is found by aligning the two
//    chains on light depth and matching (id, lightdepth) pairs (Lemma 4.3).
//  * If the branch of one side sits at its top significant ancestor, the
//    distance along the shared heavy path is recovered either from the
//    capped head-distance alpha (<= 2k+1) or — when both sides are at their
//    top — via positions mod (k+1) and the monotone sequences of
//    2-approximations |_ a_{i+t} - a_i _|_2 of range-identifier differences
//    (Lemmas 4.4-4.5).
//  * For k >= log n the 2-approximation machinery is unnecessary: alpha is
//    stored uncapped (the "simple O(log k log n) scheme" of Section 4.3).
//
// Defined for unit-weight trees.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/label_arena.hpp"
#include "bits/monotone.hpp"
#include "core/labeling.hpp"
#include "core/tree_scaffold.hpp"
#include "tree/tree.hpp"

namespace treelab::core {

/// A pre-parsed k-distance label for repeated queries: the significant
/// ancestor chain arrays, capped head distance and (small-k) identifier
/// 2-approximation sequences, decoded once. After the one-time attach, a
/// query is the Section 4.4 NCSA location over decoded words plus O(1)
/// arithmetic. Produced by KDistanceScheme::attach().
class KDistanceAttachedLabel {
 public:
  [[nodiscard]] std::uint64_t lightdepth() const noexcept {
    return lightdepth_;
  }

 private:
  friend class KDistanceScheme;
  friend struct KDistanceQueryImpl;
  std::uint64_t pre_ = 0;
  std::uint64_t lightdepth_ = 0;
  bool small_k_ = false;
  bits::MonotoneSeq hl_seq_;               // encoded form of hl (Section 4.4)
  std::vector<std::uint64_t> hl_;          // heights of L_{u_i}, i = 0..r
  std::vector<std::uint64_t> hc_;          // heights of T_{head(P(u_i))}
  std::vector<std::uint64_t> dist_;        // d(u, u_i), i = 0..r
  std::uint64_t alpha_ = 0;  // d(u_r, head(P(u_r))), capped if small
  std::uint64_t i_mod_ = 0;  // pos(u_r) mod (k+1)            (small only)
  std::vector<std::uint64_t> fwd_;  // msb(a_{i+t} - a_i), t = 1.. (small)
  std::vector<std::uint64_t> bwd_;  // msb(a_i - a_{i-t}), t = 1.. (small)
};

class KDistanceScheme {
 public:
  using Attached = KDistanceAttachedLabel;

  /// Builds k-distance labels for every node of the unit-weighted tree `t`.
  /// Throws std::invalid_argument for k < 1 or weighted input.
  KDistanceScheme(const tree::Tree& t, std::uint64_t k);

  /// Builds from a shared scaffold (HPD computed once per tree); label
  /// emission fans out over scaffold.threads() workers.
  KDistanceScheme(const TreeScaffold& scaffold, std::uint64_t k);

  [[nodiscard]] std::uint64_t k() const noexcept { return k_; }
  [[nodiscard]] bits::BitSpan label(tree::NodeId v) const noexcept {
    return labels_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const bits::LabelArena& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] LabelStats stats() const { return stats_of(labels_); }

  /// Decides d(u,v) <= k and returns the exact distance if so. `k` must be
  /// the value the labels were built with (a scheme-wide constant).
  /// Locates the NCSA with the Section 4.4 constant-time method: longest
  /// common suffix of the two height sequences (Lemma 2.2 op. 3), then the
  /// MSB of pre(u) XOR pre(v) and a successor query pick the first level
  /// whose range identifier can coincide.
  [[nodiscard]] static BoundedDistance query(std::uint64_t k, bits::BitSpan lu,
                                             bits::BitSpan lv);

  /// Reference implementation that finds the NCSA by linearly scanning the
  /// aligned chains. Same answers as query() by construction; kept public
  /// so the test suite can differentially test the Section 4.4 machinery.
  [[nodiscard]] static BoundedDistance query_linear(std::uint64_t k,
                                                    bits::BitSpan lu,
                                                    bits::BitSpan lv);

  /// One-time parse for repeated queries against the same label. `k` must be
  /// the value the labels were built with.
  [[nodiscard]] static KDistanceAttachedLabel attach(std::uint64_t k,
                                                     bits::BitSpan l);

  /// Same result as the raw overload, without re-parsing either label.
  [[nodiscard]] static BoundedDistance query(std::uint64_t k,
                                             const KDistanceAttachedLabel& lu,
                                             const KDistanceAttachedLabel& lv);

  /// Linear-scan reference on attached labels (differential testing).
  [[nodiscard]] static BoundedDistance query_linear(
      std::uint64_t k, const KDistanceAttachedLabel& lu,
      const KDistanceAttachedLabel& lv);

 private:
  std::uint64_t k_;
  bits::LabelArena labels_;
};

}  // namespace treelab::core
