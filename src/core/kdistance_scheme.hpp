// KDistanceScheme — bounded-distance labeling (Section 4, Theorem 1.3).
//
// Given the labels of u and v, decide whether d(u, v) <= k and if so return
// it exactly. Label sizes: log n + O(k log(log n / k)) for k < log n, and
// O(log n * log(k / log n)) for k >= log n.
//
// Machinery (Sections 4.3-4.4):
//  * Light ranges L_u (preorder taken with the heavy child rightmost) and
//    significant ancestors u = u_0, u_1, ..., truncated at the top
//    significant ancestor u_r (the last one within distance k).
//  * Range identifiers id(L) — the binary-trie ancestor of the range — are
//    *not stored*: each is recomputed from pre(u) and the stored height
//    (Observation 4.2.1), so a single log n field (pre) plus a monotone
//    height sequence (Lemma 2.2) identifies the whole chain.
//  * The nearest common significant ancestor is found by aligning the two
//    chains on light depth and matching (id, lightdepth) pairs (Lemma 4.3).
//  * If the branch of one side sits at its top significant ancestor, the
//    distance along the shared heavy path is recovered either from the
//    capped head-distance alpha (<= 2k+1) or — when both sides are at their
//    top — via positions mod (k+1) and the monotone sequences of
//    2-approximations |_ a_{i+t} - a_i _|_2 of range-identifier differences
//    (Lemmas 4.4-4.5).
//  * For k >= log n the 2-approximation machinery is unnecessary: alpha is
//    stored uncapped (the "simple O(log k log n) scheme" of Section 4.3).
//
// Defined for unit-weight trees.
#pragma once

#include <cstdint>
#include <vector>

#include "core/labeling.hpp"
#include "tree/tree.hpp"

namespace treelab::core {

class KDistanceScheme {
 public:
  /// Builds k-distance labels for every node of the unit-weighted tree `t`.
  /// Throws std::invalid_argument for k < 1 or weighted input.
  KDistanceScheme(const tree::Tree& t, std::uint64_t k);

  [[nodiscard]] std::uint64_t k() const noexcept { return k_; }
  [[nodiscard]] const bits::BitVec& label(tree::NodeId v) const noexcept {
    return labels_[v];
  }
  [[nodiscard]] const std::vector<bits::BitVec>& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] LabelStats stats() const { return stats_of(labels_); }

  /// Decides d(u,v) <= k and returns the exact distance if so. `k` must be
  /// the value the labels were built with (a scheme-wide constant).
  /// Locates the NCSA with the Section 4.4 constant-time method: longest
  /// common suffix of the two height sequences (Lemma 2.2 op. 3), then the
  /// MSB of pre(u) XOR pre(v) and a successor query pick the first level
  /// whose range identifier can coincide.
  [[nodiscard]] static BoundedDistance query(std::uint64_t k,
                                             const bits::BitVec& lu,
                                             const bits::BitVec& lv);

  /// Reference implementation that finds the NCSA by linearly scanning the
  /// aligned chains. Same answers as query() by construction; kept public
  /// so the test suite can differentially test the Section 4.4 machinery.
  [[nodiscard]] static BoundedDistance query_linear(std::uint64_t k,
                                                    const bits::BitVec& lu,
                                                    const bits::BitVec& lv);

 private:
  std::uint64_t k_;
  std::vector<bits::BitVec> labels_;
};

}  // namespace treelab::core
