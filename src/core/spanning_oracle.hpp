// SpanningOracle — a distance oracle for general graphs assembled from
// exact tree-distance labelings of spanning trees (the application the
// paper's introduction motivates, in the spirit of landmark / pruned
// landmark labeling).
//
// Build: choose `landmarks` roots (highest-degree-first by default), take a
// BFS spanning tree from each, label each tree with FgnwScheme, and pack
// every node's per-tree labels into one self-contained state bit string.
// Query: from two states alone, the minimum over trees of the exact tree
// distance — an upper bound on the graph distance that is tight whenever
// some shortest path is preserved by one of the trees (and always tight on
// graphs that are trees).
#pragma once

#include <cstdint>
#include <vector>

#include "core/labeling.hpp"
#include "tree/graph.hpp"

namespace treelab::core {

class SpanningOracle {
 public:
  enum class LandmarkPolicy : std::uint8_t {
    kHighestDegree,  // default: hub roots preserve many shortest paths
    kRandom,
  };

  /// Builds per-node states from `landmarks` BFS spanning trees of `g`.
  /// Requires a connected graph and 1 <= landmarks <= n.
  SpanningOracle(const tree::Graph& g, int landmarks,
                 LandmarkPolicy policy = LandmarkPolicy::kHighestDegree,
                 std::uint64_t seed = 0);

  /// The self-contained oracle state of node v (all its tree labels).
  [[nodiscard]] const bits::BitVec& state(tree::NodeId v) const noexcept {
    return states_[v];
  }
  [[nodiscard]] const std::vector<bits::BitVec>& states() const noexcept {
    return states_;
  }
  [[nodiscard]] LabelStats stats() const { return stats_of(states_); }
  [[nodiscard]] int landmarks() const noexcept { return landmarks_; }

  /// Upper bound on d_G(u, v) from the two states alone; exact when some
  /// spanning tree preserves a shortest u-v path.
  [[nodiscard]] static std::uint64_t query(const bits::BitVec& su,
                                           const bits::BitVec& sv);

 private:
  int landmarks_;
  std::vector<bits::BitVec> states_;
};

}  // namespace treelab::core
