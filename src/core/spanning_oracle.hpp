// SpanningOracle — a distance oracle for general graphs assembled from
// exact tree-distance labelings of spanning trees (the application the
// paper's introduction motivates, in the spirit of landmark / pruned
// landmark labeling).
//
// Build: choose `landmarks` roots (highest-degree-first by default), take a
// BFS spanning tree from each, label each tree with FgnwScheme, and pack
// every node's per-tree labels into one self-contained state bit string.
// Query: from two states alone, the minimum over trees of the exact tree
// distance — an upper bound on the graph distance that is tight whenever
// some shortest path is preserved by one of the trees (and always tight on
// graphs that are trees).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bits/label_arena.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/labeling.hpp"
#include "tree/graph.hpp"

namespace treelab::core {

/// A node's oracle state split once into its per-tree FGNW labels, each
/// pre-attached. A serving node keeps this cached per peer-set and answers
/// arbitrarily many queries against it with zero re-decoding — the
/// parse-once/query-many regime of the landmark-labeling application.
/// Produced by SpanningOracle::attach().
class OracleAttachedState {
 public:
  [[nodiscard]] std::size_t trees() const noexcept { return labels_.size(); }

 private:
  friend class SpanningOracle;
  std::vector<FgnwAttachedLabel> labels_;
};

class SpanningOracle {
 public:
  using Attached = OracleAttachedState;

  enum class LandmarkPolicy : std::uint8_t {
    kHighestDegree,  // default: hub roots preserve many shortest paths
    kRandom,
  };

  /// Builds per-node states from `landmarks` BFS spanning trees of `g`.
  /// Requires a connected graph and 1 <= landmarks <= n. Tree labelings are
  /// built in parallel across landmarks (and label emission within each tree
  /// fans out over the remaining threads); the states are bit-identical for
  /// every thread count. `threads` is the whole budget (0 =
  /// TREELAB_THREADS / hardware default; an explicit count is taken as-is,
  /// unclamped — the parity tests use that to exercise multi-chunk
  /// assembly on any machine).
  SpanningOracle(const tree::Graph& g, int landmarks,
                 LandmarkPolicy policy = LandmarkPolicy::kHighestDegree,
                 std::uint64_t seed = 0, int threads = 0);

  /// The self-contained oracle state of node v (all its tree labels).
  [[nodiscard]] bits::BitSpan state(tree::NodeId v) const noexcept {
    return states_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const bits::LabelArena& states() const noexcept {
    return states_;
  }
  [[nodiscard]] LabelStats stats() const { return stats_of(states_); }
  [[nodiscard]] int landmarks() const noexcept { return landmarks_; }

  /// Upper bound on d_G(u, v) from the two states alone; exact when some
  /// spanning tree preserves a shortest u-v path.
  [[nodiscard]] static std::uint64_t query(bits::BitSpan su, bits::BitSpan sv);

  /// One-time split-and-attach of a packed state for repeated queries.
  [[nodiscard]] static OracleAttachedState attach(bits::BitSpan state);

  /// Same result as the BitVec overload, without re-decoding either state.
  [[nodiscard]] static std::uint64_t query(const OracleAttachedState& su,
                                           const OracleAttachedState& sv);

  /// Batch API: answers a stream of queries against `su`'s cached state,
  /// one result per target.
  [[nodiscard]] static std::vector<std::uint64_t> query_many(
      const OracleAttachedState& su,
      std::span<const OracleAttachedState> targets);

  /// Attaches every node's state — the serving configuration of a node that
  /// answers traffic for the whole graph.
  [[nodiscard]] std::vector<OracleAttachedState> attach_all() const;

 private:
  int landmarks_;
  bits::LabelArena states_;
};

}  // namespace treelab::core
