#include "core/peleg_scheme.hpp"

#include <algorithm>

#include "bits/bitio.hpp"

namespace treelab::core {

using bits::BitReader;
using bits::BitSpan;
using bits::BitVec;
using bits::BitWriter;
using bits::LabelArena;
using tree::HeavyPathDecomposition;
using tree::kNoNode;
using tree::NodeId;
using tree::Tree;

namespace {

// Build-time entry triple (mirrors PelegAttachedLabel::Entry).
struct Entry {
  std::uint64_t head_pre;  // identifier of the heavy path
  std::uint64_t b_depth;   // depth of the branch node
  std::uint64_t b_rd;      // root distance of the branch node
};

}  // namespace

PelegAttachedLabel PelegScheme::attach(BitSpan l) {
  BitReader r(l);
  PelegAttachedLabel p;
  p.rd_ = r.get_delta0();
  p.depth_ = r.get_delta0();
  const std::uint64_t k = r.get_delta0();
  // Each entry needs at least three code bits; a corrupt length field must
  // not drive a huge allocation.
  if (k > l.size())
    throw bits::DecodeError("Peleg label: implausible entry count");
  p.entries_.resize(static_cast<std::size_t>(k));
  for (auto& e : p.entries_) {
    e.head_pre = r.get_delta0();
    e.b_depth = r.get_delta0();
    e.b_rd = r.get_delta0();
  }
  return p;
}

PelegScheme::PelegScheme(const Tree& t) : PelegScheme(TreeScaffold(t)) {}

PelegScheme::PelegScheme(const TreeScaffold& scaffold) {
  const Tree& t = scaffold.tree();
  const HeavyPathDecomposition& hpd = scaffold.hpd();
  // Preorder numbers for path-head identifiers.
  std::vector<std::uint32_t> pre(static_cast<std::size_t>(t.size()));
  {
    std::uint32_t c = 0;
    for (NodeId v : t.preorder()) pre[static_cast<std::size_t>(v)] = c++;
  }

  // Per heavy path, the entry list of its head (shared by all its nodes).
  const std::int32_t m = hpd.num_paths();
  std::vector<std::vector<Entry>> path_entries(static_cast<std::size_t>(m));
  std::vector<std::int32_t> order(static_cast<std::size_t>(m));
  for (std::int32_t p = 0; p < m; ++p) order[static_cast<std::size_t>(p)] = p;
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    return hpd.light_depth(hpd.head(a)) < hpd.light_depth(hpd.head(b));
  });
  for (std::int32_t p : order) {
    const NodeId h = hpd.head(p);
    const NodeId b = t.parent(h);
    if (b == kNoNode) continue;  // root path
    auto es = path_entries[static_cast<std::size_t>(hpd.path_of(b))];
    es.push_back(Entry{pre[static_cast<std::size_t>(h)],
                       static_cast<std::uint64_t>(t.depth(b)),
                       t.root_distance(b)});
    path_entries[static_cast<std::size_t>(p)] = std::move(es);
  }

  labels_ = LabelArena::build(
      static_cast<std::size_t>(t.size()), scaffold.threads(),
      [&](std::size_t i, BitWriter& w) {
        const auto v = static_cast<NodeId>(i);
        const auto& es = path_entries[static_cast<std::size_t>(hpd.path_of(v))];
        w.put_delta0(t.root_distance(v));
        w.put_delta0(static_cast<std::uint64_t>(t.depth(v)));
        w.put_delta0(es.size());
        for (const Entry& e : es) {
          w.put_delta0(e.head_pre);
          w.put_delta0(e.b_depth);
          w.put_delta0(e.b_rd);
        }
      });
}

std::uint64_t PelegScheme::query(const PelegAttachedLabel& u,
                                 const PelegAttachedLabel& v) {
  // Longest shared prefix of heavy-path identifier sequences.
  std::size_t j = 0;
  while (j < u.entries_.size() && j < v.entries_.size() &&
         u.entries_[j].head_pre == v.entries_[j].head_pre)
    ++j;
  // Branch candidates on the deepest shared path.
  const std::uint64_t du =
      j < u.entries_.size() ? u.entries_[j].b_depth : u.depth_;
  const std::uint64_t ru = j < u.entries_.size() ? u.entries_[j].b_rd : u.rd_;
  const std::uint64_t dv =
      j < v.entries_.size() ? v.entries_[j].b_depth : v.depth_;
  const std::uint64_t rv = j < v.entries_.size() ? v.entries_[j].b_rd : v.rd_;
  const std::uint64_t rd_nca = du <= dv ? ru : rv;
  return u.rd_ + v.rd_ - 2 * rd_nca;
}

std::uint64_t PelegScheme::query(BitSpan lu, BitSpan lv) {
  return query(attach(lu), attach(lv));
}

}  // namespace treelab::core
