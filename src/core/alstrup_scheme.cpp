#include "core/alstrup_scheme.hpp"

#include <algorithm>

#include "bits/bitio.hpp"
#include "bits/monotone.hpp"
#include "nca/nca_labeling.hpp"
#include "tree/hpd.hpp"

namespace treelab::core {

using bits::BitReader;
using bits::BitSpan;
using bits::BitVec;
using bits::BitWriter;
using bits::LabelArena;
using bits::MonotoneSeq;
using nca::NcaLabeling;
using nca::NcaResult;
using tree::HeavyPathDecomposition;
using tree::kNoNode;
using tree::NodeId;
using tree::Tree;

std::uint32_t emit_alstrup_label(bits::BitWriter& w, std::uint64_t root_dist,
                                 bits::BitSpan nca_label,
                                 std::span<const std::uint64_t> branch_rd) {
  w.put_delta0(root_dist);
  w.put_delta0(nca_label.size());
  w.append(nca_label);
  return static_cast<std::uint32_t>(
      MonotoneSeq::encode_to(w, branch_rd, root_dist));
}

AlstrupScheme::AlstrupScheme(const Tree& t) : AlstrupScheme(TreeScaffold(t)) {}

AlstrupScheme::AlstrupScheme(const Tree& t, Options opt) {
  if (opt.weights == nca::CodeWeights::kExact) {
    const TreeScaffold scaffold(t, opt.threads);
    build(t, scaffold.hpd(), scaffold.nca(), opt.threads);
    return;
  }
  // The stable-weight variant builds its own NCA labeling: the scaffold
  // caches only the exact-policy one.
  const HeavyPathDecomposition hpd(t);
  const NcaLabeling nca(hpd, opt.threads, opt.weights);
  build(t, hpd, nca, opt.threads);
}

AlstrupScheme::AlstrupScheme(const TreeScaffold& scaffold) {
  build(scaffold.tree(), scaffold.hpd(), scaffold.nca(), scaffold.threads());
}

void AlstrupScheme::build(const Tree& t, const HeavyPathDecomposition& hpd,
                          const NcaLabeling& nca, int threads) {
  // Per heavy path: root distances of the branch nodes above it.
  const std::int32_t m = hpd.num_paths();
  std::vector<std::vector<std::uint64_t>> branch_rd(
      static_cast<std::size_t>(m));
  std::vector<std::int32_t> order(static_cast<std::size_t>(m));
  for (std::int32_t p = 0; p < m; ++p) order[static_cast<std::size_t>(p)] = p;
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    return hpd.light_depth(hpd.head(a)) < hpd.light_depth(hpd.head(b));
  });
  for (std::int32_t p : order) {
    const NodeId h = hpd.head(p);
    const NodeId b = t.parent(h);
    if (b == kNoNode) continue;
    auto rs = branch_rd[static_cast<std::size_t>(hpd.path_of(b))];
    rs.push_back(t.root_distance(b));
    branch_rd[static_cast<std::size_t>(p)] = std::move(rs);
  }

  // Per-node payload sizes land in a side array (each index written once by
  // its owning chunk) and fold into the stats after the parallel build.
  std::vector<std::uint32_t> payload_bits(static_cast<std::size_t>(t.size()));
  labels_ = LabelArena::build(
      static_cast<std::size_t>(t.size()), threads,
      [&](std::size_t i, BitWriter& w) {
        const auto v = static_cast<NodeId>(i);
        const auto& rs = branch_rd[static_cast<std::size_t>(hpd.path_of(v))];
        payload_bits[i] =
            emit_alstrup_label(w, t.root_distance(v), nca.label(v), rs);
      });
  for (const std::uint32_t b : payload_bits) payload_.add(b);
}

AlstrupAttachedLabel AlstrupScheme::attach(BitSpan l) {
  AlstrupAttachedLabel out;
  BitReader r(l);
  out.rd_ = r.get_delta0();
  const BitVec nl = r.get_vec(static_cast<std::size_t>(r.get_delta0()));
  out.nca_ = NcaLabeling::attach(nl);
  out.rs_ = MonotoneSeq::read_from(r);
  return out;
}

std::uint64_t AlstrupScheme::query(const AlstrupAttachedLabel& lu,
                                   const AlstrupAttachedLabel& lv) {
  const NcaResult res = NcaLabeling::query(lu.nca_, lv.nca_);
  switch (res.rel) {
    case NcaResult::Rel::kEqual:
      return 0;
    case NcaResult::Rel::kUAncestor:
      return lv.rd_ - lu.rd_;
    case NcaResult::Rel::kVAncestor:
      return lu.rd_ - lv.rd_;
    case NcaResult::Rel::kDiverge:
      break;
  }
  const AlstrupAttachedLabel& dom = res.u_first ? lu : lv;
  if (static_cast<std::size_t>(res.lightdepth) >= dom.rs_.size())
    throw bits::DecodeError("Alstrup query: branch sequence too short");
  const std::uint64_t rd_nca =
      dom.rs_.get(static_cast<std::size_t>(res.lightdepth));
  return lu.rd_ + lv.rd_ - 2 * rd_nca;
}

std::uint64_t AlstrupScheme::query(BitSpan lu, BitSpan lv) {
  BitReader ru(lu), rv(lv);
  const std::uint64_t rd_u = ru.get_delta0();
  const std::uint64_t rd_v = rv.get_delta0();
  const BitVec nu = ru.get_vec(static_cast<std::size_t>(ru.get_delta0()));
  const BitVec nv = rv.get_vec(static_cast<std::size_t>(rv.get_delta0()));
  const NcaResult res = NcaLabeling::query(nu, nv);
  switch (res.rel) {
    case NcaResult::Rel::kEqual:
      return 0;
    case NcaResult::Rel::kUAncestor:
      return rd_v - rd_u;
    case NcaResult::Rel::kVAncestor:
      return rd_u - rd_v;
    case NcaResult::Rel::kDiverge:
      break;
  }
  // The dominating node's branch at level lightdepth+1 is the NCA.
  BitReader& rd_reader = res.u_first ? ru : rv;
  const MonotoneSeq rs = MonotoneSeq::read_from(rd_reader);
  if (static_cast<std::size_t>(res.lightdepth) >= rs.size())
    throw bits::DecodeError("Alstrup query: branch sequence too short");
  const std::uint64_t rd_nca =
      rs.get(static_cast<std::size_t>(res.lightdepth));
  return rd_u + rd_v - 2 * rd_nca;
}

}  // namespace treelab::core
