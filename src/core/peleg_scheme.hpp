// PelegScheme — the historical O(log^2 n) distance labeling baseline
// (Peleg, J. Graph Theory 2000), phrased over a heavy path decomposition.
//
// The label of u records, for every heavy path P_1, ..., P_k met on the
// root-to-u path (below the root path P_0), the triple
//     ( pre(head(P_i)), depth(b_i), root_distance(b_i) )
// where b_i = parent(head(P_i)) is the branch node, plus u's own depth and
// root distance. Two labels are matched on the pre(head) identifiers to find
// the deepest shared heavy path; the NCA is the shallower of the two branch
// candidates on it. ~3 log^2 n bits; the simple comparator the paper's
// Section 1 history starts from.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/label_arena.hpp"
#include "core/labeling.hpp"
#include "core/tree_scaffold.hpp"
#include "tree/hpd.hpp"

namespace treelab::core {

/// A pre-parsed Peleg label for repeated queries: the root distance, depth
/// and the fully decoded per-heavy-path entry triples. After the one-time
/// attach, a query is the identifier-prefix match over decoded words — no
/// Elias decoding. Produced by PelegScheme::attach().
class PelegAttachedLabel {
 public:
  [[nodiscard]] std::uint64_t root_distance() const noexcept { return rd_; }

 private:
  friend class PelegScheme;
  struct Entry {
    std::uint64_t head_pre = 0;  // identifier of the heavy path
    std::uint64_t b_depth = 0;   // depth of the branch node
    std::uint64_t b_rd = 0;      // root distance of the branch node
  };
  std::uint64_t rd_ = 0;
  std::uint64_t depth_ = 0;
  std::vector<Entry> entries_;
};

class PelegScheme {
 public:
  using Attached = PelegAttachedLabel;

  /// Labels every node of `t`.
  explicit PelegScheme(const tree::Tree& t);

  /// Builds from a shared scaffold (HPD computed once per tree); label
  /// emission fans out over scaffold.threads() workers.
  explicit PelegScheme(const TreeScaffold& scaffold);

  [[nodiscard]] bits::BitSpan label(tree::NodeId v) const noexcept {
    return labels_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const bits::LabelArena& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] LabelStats stats() const { return stats_of(labels_); }

  /// Exact weighted distance from labels alone.
  [[nodiscard]] static std::uint64_t query(bits::BitSpan lu, bits::BitSpan lv);

  /// One-time parse for repeated queries against the same label.
  [[nodiscard]] static PelegAttachedLabel attach(bits::BitSpan l);

  /// Same result as the raw overload, without re-parsing either label.
  [[nodiscard]] static std::uint64_t query(const PelegAttachedLabel& lu,
                                           const PelegAttachedLabel& lv);

 private:
  bits::LabelArena labels_;
};

}  // namespace treelab::core
