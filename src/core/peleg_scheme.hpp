// PelegScheme — the historical O(log^2 n) distance labeling baseline
// (Peleg, J. Graph Theory 2000), phrased over a heavy path decomposition.
//
// The label of u records, for every heavy path P_1, ..., P_k met on the
// root-to-u path (below the root path P_0), the triple
//     ( pre(head(P_i)), depth(b_i), root_distance(b_i) )
// where b_i = parent(head(P_i)) is the branch node, plus u's own depth and
// root distance. Two labels are matched on the pre(head) identifiers to find
// the deepest shared heavy path; the NCA is the shallower of the two branch
// candidates on it. ~3 log^2 n bits; the simple comparator the paper's
// Section 1 history starts from.
#pragma once

#include <cstdint>
#include <vector>

#include "core/labeling.hpp"
#include "tree/hpd.hpp"

namespace treelab::core {

class PelegScheme {
 public:
  /// Labels every node of `t`.
  explicit PelegScheme(const tree::Tree& t);

  [[nodiscard]] const bits::BitVec& label(tree::NodeId v) const noexcept {
    return labels_[v];
  }
  [[nodiscard]] const std::vector<bits::BitVec>& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] LabelStats stats() const { return stats_of(labels_); }

  /// Exact weighted distance from labels alone.
  [[nodiscard]] static std::uint64_t query(const bits::BitVec& lu,
                                           const bits::BitVec& lv);

 private:
  std::vector<bits::BitVec> labels_;
};

}  // namespace treelab::core
