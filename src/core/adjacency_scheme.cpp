#include "core/adjacency_scheme.hpp"

#include "bits/bitio.hpp"

namespace treelab::core {

using bits::BitReader;
using bits::BitVec;
using bits::BitWriter;
using tree::kNoNode;
using tree::NodeId;
using tree::Tree;

namespace {

struct Rec {
  std::uint64_t pre = 0;
  bool has_parent = false;
  std::uint64_t parent_pre = 0;
};

Rec parse(const BitVec& l) {
  BitReader r(l);
  Rec rec;
  rec.pre = r.get_delta0();
  rec.has_parent = r.get_bit();
  if (rec.has_parent) rec.parent_pre = r.get_delta0();
  return rec;
}

}  // namespace

AdjacencyScheme::AdjacencyScheme(const Tree& t) {
  std::vector<std::uint64_t> pre(static_cast<std::size_t>(t.size()));
  std::uint64_t c = 0;
  for (NodeId v : t.preorder()) pre[static_cast<std::size_t>(v)] = c++;

  labels_.resize(static_cast<std::size_t>(t.size()));
  for (NodeId v = 0; v < t.size(); ++v) {
    BitWriter w;
    w.put_delta0(pre[static_cast<std::size_t>(v)]);
    const NodeId p = t.parent(v);
    w.put_bit(p != kNoNode);
    if (p != kNoNode) w.put_delta0(pre[static_cast<std::size_t>(p)]);
    labels_[static_cast<std::size_t>(v)] = w.take();
  }
}

bool AdjacencyScheme::adjacent(const BitVec& lu, const BitVec& lv) {
  const Rec u = parse(lu);
  const Rec v = parse(lv);
  return (u.has_parent && u.parent_pre == v.pre) ||
         (v.has_parent && v.parent_pre == u.pre);
}

}  // namespace treelab::core
