#include "core/labeling.hpp"

namespace treelab::core {

LabelStats stats_of(const std::vector<bits::BitVec>& labels) {
  LabelStats s;
  for (const auto& l : labels) s.add(l.size());
  return s;
}

}  // namespace treelab::core
