#include "core/labeling.hpp"

namespace treelab::core {

LabelStats stats_of(const std::vector<bits::BitVec>& labels) {
  LabelStats s;
  for (const auto& l : labels) s.add(l.size());
  return s;
}

LabelStats stats_of(const bits::LabelArena& labels) {
  LabelStats s;
  for (std::size_t i = 0; i < labels.size(); ++i) s.add(labels.label_bits(i));
  return s;
}

}  // namespace treelab::core
