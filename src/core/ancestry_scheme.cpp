#include "core/ancestry_scheme.hpp"

#include "bits/bitio.hpp"

namespace treelab::core {

using bits::BitReader;
using bits::BitVec;
using bits::BitWriter;
using tree::NodeId;
using tree::Tree;

namespace {

struct Interval {
  std::uint64_t lo = 0;
  std::uint64_t len = 0;  // subtree size; interval is [lo, lo + len)
};

Interval parse(const BitVec& l) {
  BitReader r(l);
  Interval iv;
  iv.lo = r.get_delta0();
  iv.len = r.get_delta0();
  return iv;
}

}  // namespace

AncestryScheme::AncestryScheme(const Tree& t) {
  std::vector<std::uint64_t> pre(static_cast<std::size_t>(t.size()));
  std::uint64_t c = 0;
  for (NodeId v : t.preorder()) pre[static_cast<std::size_t>(v)] = c++;

  labels_.resize(static_cast<std::size_t>(t.size()));
  for (NodeId v = 0; v < t.size(); ++v) {
    BitWriter w;
    w.put_delta0(pre[static_cast<std::size_t>(v)]);
    w.put_delta0(static_cast<std::uint64_t>(t.subtree_size(v)));
    labels_[static_cast<std::size_t>(v)] = w.take();
  }
}

bool AncestryScheme::is_ancestor(const BitVec& lu, const BitVec& lv) {
  const Interval u = parse(lu);
  const Interval v = parse(lv);
  return u.lo <= v.lo && v.lo < u.lo + u.len;
}

bool AncestryScheme::same_node(const BitVec& lu, const BitVec& lv) {
  const Interval u = parse(lu);
  const Interval v = parse(lv);
  return u.lo == v.lo && u.len == v.len;
}

}  // namespace treelab::core
