// FgnwScheme — the paper's main contribution (Theorem 1.1): exact distance
// labels of 1/4 log^2 n + o(log^2 n) bits.
//
// Construction (Sections 3.2-3.3), implemented on the binarized tree of
// Section 2 (every original node is represented by a leaf; distances are
// preserved by weight-0 proxy edges):
//
//  * Heavy path decomposition (>= |T|/2 variant) and the collapsed tree.
//  * For each light edge e of the collapsed tree, the value
//        r(e) = d(head(f_g), branch(e))
//    is measured relative to the deepest *fragment head* f_g above the
//    branch (Section 3.3); each label carries the explicit fragment distance
//    array F so that root_distance(branch(e)) = F[g] + r(e).
//  * The bits of r(e) are split per the Slack/Thin lemmas: a fat subtree's
//    label keeps only the ~(1/2)log(n'/n)log(n') most significant bits
//    ("truncated distance"); the remaining low bits are *pushed* into the
//    accumulators of every dominated subtree hanging lower on the same heavy
//    path. Thin subtrees (n <= n'/2^8) store r(e) in full. Exceptional
//    edges store nothing (Property 3.2 never needs them).
//  * A query locates the dominating label via the NCA labeling (Lemma 2.1),
//    reconstructs r at level lightdepth+1 by combining the dominator's kept
//    bits with the pushed bits found in the dominated label's accumulator.
//    Accumulators grow in domination order, so the dominator's accumulator
//    is a prefix of the dominated one (the paper phrases the same invariant
//    with the opposite concatenation direction, as a suffix) and the pushed
//    bits sit right after that prefix. The query finishes with
//    root_distance arithmetic via the fragment array.
//
// A single label is NOT sufficient to recover the distances to all ancestors
// — this is exactly the paper's separation from level-ancestor schemes and
// universal trees (Theorem 1.2).
#pragma once

#include <cstdint>
#include <vector>

#include "bits/label_arena.hpp"
#include "bits/monotone.hpp"
#include "core/labeling.hpp"
#include "core/tree_scaffold.hpp"
#include "nca/nca_labeling.hpp"
#include "tree/tree.hpp"

namespace treelab::core {

/// A pre-parsed FGNW label for repeated queries: the boundary directories,
/// fragment array, and per-level records are attached once, after which
/// each query performs O(1) lookups plus the first-differing-bit scan of
/// the NCA comparison — the word-RAM constant-time regime of Theorem 1.1.
/// Produced by FgnwScheme::attach().
class FgnwAttachedLabel {
 public:
  [[nodiscard]] const bits::BitVec& bits() const noexcept { return raw_; }

 private:
  friend class FgnwScheme;
  struct Level {
    bool exceptional = false;
    std::uint32_t frag = 0;
    int pushed_count = 0;
    int kept_count = 0;
    std::uint64_t kept_bits = 0;
    std::size_t acc_off = 0;
    std::size_t acc_len = 0;
  };
  bits::BitVec raw_;
  std::uint64_t rd_ = 0;
  nca::AttachedNcaLabel nca_;
  bits::MonotoneSeq frag_;
  std::vector<Level> levels_;
};

/// Tuning knobs for FgnwScheme: the Section 3.3 fragment parameter B
/// (0 = sqrt(log2 n)) and the Thin-lemma threshold exponent (paper: 8,
/// i.e. thin iff n <= n'/2^8). Exposed for the ablation bench.
struct FgnwOptions {
  int fragment_exponent = 0;    ///< B; 0 = ceil(sqrt(log2 n))
  int thin_exponent = 8;        ///< subtree is thin iff n * 2^thin <= n'
  bool use_classic_hpd = false; ///< ablation: classic HPD variant
};

class FgnwScheme {
 public:
  using Options = FgnwOptions;
  using Attached = FgnwAttachedLabel;

  explicit FgnwScheme(const tree::Tree& t, Options opt = Options());

  /// Builds from a shared scaffold (binarize → HPD → collapsed tree → NCA
  /// labeling computed once per tree); label emission fans out over
  /// scaffold.threads() workers. The classic-HPD ablation builds its own
  /// decomposition pieces (the scaffold caches only the paper variant).
  explicit FgnwScheme(const TreeScaffold& scaffold, Options opt = Options());

  /// Label of *original* node v (internally: the label of its proxy leaf in
  /// the binarized tree).
  [[nodiscard]] bits::BitSpan label(tree::NodeId v) const noexcept {
    return labels_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const bits::LabelArena& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] LabelStats stats() const { return stats_of(labels_); }

  /// Size of the truncated-distance payload alone: per label, the sum of
  /// kept bits over its chain of light edges. This is the ~1/4 log^2 n
  /// dominant term of Theorem 1.1; comparing it against
  /// AlstrupScheme::distance_payload_stats() exhibits the paper's ~2x
  /// separation at feasible n, where total label sizes are still dominated
  /// by shared O(log n)-per-level bookkeeping.
  [[nodiscard]] const LabelStats& distance_payload_stats() const noexcept {
    return payload_;
  }

  /// Exact weighted distance from labels alone.
  [[nodiscard]] static std::uint64_t query(bits::BitSpan lu, bits::BitSpan lv);

  /// One-time parse for repeated queries against the same label.
  [[nodiscard]] static FgnwAttachedLabel attach(bits::BitSpan l);

  /// Same result as the BitVec overload, without re-parsing either label.
  [[nodiscard]] static std::uint64_t query(const FgnwAttachedLabel& lu,
                                           const FgnwAttachedLabel& lv);

  /// Fig. 3 instrumentation: how the Slack/Thin accounting played out.
  struct BuildInfo {
    std::size_t fat_edges = 0;
    std::size_t thin_edges = 0;
    std::size_t exceptional_edges = 0;
    std::size_t total_kept_bits = 0;    // over distinct light edges
    std::size_t total_pushed_bits = 0;  // over distinct light edges
    std::size_t max_accumulator_bits = 0;
    std::int32_t max_light_depth = 0;
    std::int32_t fragment_levels = 0;   // max fragment index used
    std::size_t binarized_size = 0;
  };
  [[nodiscard]] const BuildInfo& build_info() const noexcept { return info_; }

 private:
  bits::LabelArena labels_;
  LabelStats payload_;
  BuildInfo info_;
};

}  // namespace treelab::core
