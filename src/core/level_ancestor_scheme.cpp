#include "core/level_ancestor_scheme.hpp"

#include <algorithm>
#include <stdexcept>

#include "bits/bitio.hpp"
#include "bits/monotone.hpp"
#include "nca/heavy_path_codes.hpp"
#include "tree/hpd.hpp"

namespace treelab::core {

using bits::BitReader;
using bits::BitVec;
using bits::BitWriter;
using bits::MonotoneSeq;
using nca::HeavyPathCodes;
using tree::HeavyPathDecomposition;
using tree::kNoNode;
using tree::NodeId;
using tree::Tree;

namespace {

struct Parsed {
  std::uint64_t rd = 0;        // d(u, root)
  std::uint64_t to_head = 0;   // d(u, head(P))
  std::vector<std::uint64_t> pi_bounds;  // component ends of pi(P)
  BitVec pi;                   // path identifier bits
  std::vector<std::uint64_t> heads_rd;   // R_i = d(root, head(P_i)), i=1..k
};

BitVec pack(const Parsed& p) {
  BitWriter w;
  w.put_delta0(p.rd);
  w.put_delta0(p.to_head);
  MonotoneSeq::encode(p.pi_bounds, p.pi.size()).write_to(w);
  w.append(p.pi);
  MonotoneSeq::encode(p.heads_rd, p.rd).write_to(w);
  return w.take();
}

Parsed parse(const BitVec& l) {
  BitReader r(l);
  Parsed p;
  p.rd = r.get_delta0();
  p.to_head = r.get_delta0();
  const MonotoneSeq bs = MonotoneSeq::read_from(r);
  for (std::size_t i = 0; i < bs.size(); ++i) p.pi_bounds.push_back(bs.get(i));
  const std::size_t pi_len =
      p.pi_bounds.empty() ? 0 : static_cast<std::size_t>(p.pi_bounds.back());
  p.pi = r.get_vec(pi_len);
  const MonotoneSeq hs = MonotoneSeq::read_from(r);
  for (std::size_t i = 0; i < hs.size(); ++i) p.heads_rd.push_back(hs.get(i));
  if (p.pi_bounds.size() != 2 * p.heads_rd.size())
    throw bits::DecodeError("LA label: component/array mismatch");
  // Bit flips can decode to locally non-monotone sequences (the monotone
  // codec's low parts are unchecked); reject them here so that later
  // truncation never slices past the identifier bits.
  for (std::size_t i = 0; i < p.pi_bounds.size(); ++i) {
    if (p.pi_bounds[i] > p.pi.size() ||
        (i > 0 && p.pi_bounds[i] < p.pi_bounds[i - 1]))
      throw bits::DecodeError("LA label: bounds not monotone");
  }
  for (std::size_t i = 1; i < p.heads_rd.size(); ++i)
    if (p.heads_rd[i] < p.heads_rd[i - 1])
      throw bits::DecodeError("LA label: head distances not monotone");
  return p;
}

}  // namespace

LevelAncestorScheme::LevelAncestorScheme(const Tree& t) {
  if (!t.is_unit_weighted())
    throw std::invalid_argument(
        "LevelAncestorScheme: requires a unit-weighted tree");
  const HeavyPathDecomposition hpd(t);
  const HeavyPathCodes codes(hpd);

  // Per path: root distances of the heads on the chain above (and incl.) it.
  const std::int32_t m = hpd.num_paths();
  std::vector<std::vector<std::uint64_t>> heads_rd(
      static_cast<std::size_t>(m));
  std::vector<std::int32_t> order(static_cast<std::size_t>(m));
  for (std::int32_t p = 0; p < m; ++p) order[static_cast<std::size_t>(p)] = p;
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    return hpd.light_depth(hpd.head(a)) < hpd.light_depth(hpd.head(b));
  });
  for (std::int32_t p : order) {
    const NodeId h = hpd.head(p);
    if (t.parent(h) == kNoNode) continue;  // root path: empty list
    auto hs = heads_rd[static_cast<std::size_t>(hpd.path_of(t.parent(h)))];
    hs.push_back(t.root_distance(h));
    heads_rd[static_cast<std::size_t>(p)] = std::move(hs);
  }

  labels_.resize(static_cast<std::size_t>(t.size()));
  for (NodeId v = 0; v < t.size(); ++v) {
    const std::int32_t p = hpd.path_of(v);
    Parsed pr;
    pr.rd = t.root_distance(v);
    pr.to_head = t.root_distance(v) - t.root_distance(hpd.head_of(v));
    pr.pi = codes.prefix(p);
    pr.pi_bounds = codes.prefix_bounds(p);
    pr.heads_rd = heads_rd[static_cast<std::size_t>(p)];
    labels_[static_cast<std::size_t>(v)] = pack(pr);
  }
}

std::optional<BitVec> LevelAncestorScheme::parent(const BitVec& l) {
  // Corrupt labels can decode to structurally invalid fields (non-monotone
  // arrays, bounds past the identifier); re-encoding then fails with
  // std::invalid_argument, which we surface as a decode failure.
  try {
    return parent_impl(l);
  } catch (const std::invalid_argument& e) {
    throw bits::DecodeError("LA label: invalid structure");
  }
}

std::optional<BitVec> LevelAncestorScheme::parent_impl(const BitVec& l) {
  Parsed p = parse(l);
  if (p.rd == 0) return std::nullopt;  // root
  if (p.to_head > 0) {
    // Parent lies on the same heavy path.
    --p.rd;
    --p.to_head;
    return pack(p);
  }
  // u == head(P): the parent is the branch node on the previous path.
  if (p.heads_rd.empty())
    throw bits::DecodeError("LA label: head of root path with rd > 0");
  const std::uint64_t head_rd = p.heads_rd.back();    // == p.rd
  const std::uint64_t prev_head_rd =
      p.heads_rd.size() >= 2 ? p.heads_rd[p.heads_rd.size() - 2] : 0;
  if (head_rd != p.rd) throw bits::DecodeError("LA label: head mismatch");
  p.heads_rd.pop_back();
  p.pi_bounds.pop_back();  // drop light-choice component
  p.pi_bounds.pop_back();  // drop position component
  const std::size_t new_len =
      p.pi_bounds.empty() ? 0 : static_cast<std::size_t>(p.pi_bounds.back());
  p.pi = p.pi.slice(0, new_len);
  --p.rd;
  p.to_head = p.rd - prev_head_rd;
  return pack(p);
}

std::optional<BitVec> LevelAncestorScheme::level_ancestor(const BitVec& l,
                                                          std::uint64_t k) {
  BitVec cur = l;
  for (std::uint64_t i = 0; i < k; ++i) {
    auto next = parent(cur);
    if (!next) return std::nullopt;
    cur = std::move(*next);
  }
  return cur;
}

std::uint64_t LevelAncestorScheme::depth_of_label(const BitVec& l) {
  BitReader r(l);
  return r.get_delta0();
}

}  // namespace treelab::core
