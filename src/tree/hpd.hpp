// Heavy path decomposition (Section 2).
//
// The paper's variant: starting at the root of each (sub)tree of size N,
// repeatedly descend to the (unique) child whose subtree has size >= N/2,
// for as long as such a child exists. N is fixed per path (the size at the
// path's start), which is what the Slack/Thin lemma accounting of Section
// 3.2 relies on. Every subtree hanging off a path by a light edge is
// decomposed recursively; light depth is at most log2 n.
//
// The classic variant (descend to the largest child until reaching a leaf)
// is provided for the ablation bench.
#pragma once

#include <span>
#include <vector>

#include "tree/tree.hpp"

namespace treelab::tree {

class HeavyPathDecomposition {
 public:
  enum class Variant {
    kPaperHalf,  // descend while a child has size >= (path-start size)/2
    kClassic,    // descend to the largest child until a leaf
  };

  explicit HeavyPathDecomposition(const Tree& t,
                                  Variant variant = Variant::kPaperHalf);

  [[nodiscard]] const Tree& tree() const noexcept { return *t_; }
  [[nodiscard]] Variant variant() const noexcept { return variant_; }

  /// The heavy child of v, or kNoNode.
  [[nodiscard]] NodeId heavy_child(NodeId v) const noexcept {
    return heavy_child_[v];
  }

  /// True if the edge (v, parent(v)) is heavy. False at the root.
  [[nodiscard]] bool is_heavy_edge(NodeId v) const noexcept {
    const NodeId p = t_->parent(v);
    return p != kNoNode && heavy_child_[p] == v;
  }

  /// Index of the heavy path containing v (paths are numbered in the order
  /// their heads appear in a preorder of T; path 0 contains the root).
  [[nodiscard]] std::int32_t path_of(NodeId v) const noexcept {
    return path_of_[v];
  }

  [[nodiscard]] std::int32_t num_paths() const noexcept {
    return static_cast<std::int32_t>(path_head_.size());
  }

  /// Topmost node of path p.
  [[nodiscard]] NodeId head(std::int32_t p) const noexcept {
    return path_head_[p];
  }

  /// Head of the path containing v.
  [[nodiscard]] NodeId head_of(NodeId v) const noexcept {
    return path_head_[path_of_[v]];
  }

  /// Nodes of path p, top to bottom.
  [[nodiscard]] std::span<const NodeId> path_nodes(std::int32_t p) const noexcept {
    return {path_nodes_.data() + path_off_[p],
            static_cast<std::size_t>(path_off_[p + 1] - path_off_[p])};
  }

  /// Number of light edges on the root-to-v path; <= log2(n).
  [[nodiscard]] std::int32_t light_depth(NodeId v) const noexcept {
    return light_depth_[v];
  }

  /// Position of v within its path (0 = head).
  [[nodiscard]] std::int32_t pos_in_path(NodeId v) const noexcept {
    return pos_in_path_[v];
  }

  /// Maximum light depth over all nodes (cached at construction).
  [[nodiscard]] std::int32_t max_light_depth() const noexcept {
    return max_light_depth_;
  }

 private:
  const Tree* t_;
  Variant variant_;
  std::int32_t max_light_depth_ = 0;
  std::vector<NodeId> heavy_child_;
  std::vector<std::int32_t> path_of_;
  std::vector<NodeId> path_head_;
  std::vector<std::int32_t> path_off_;  // CSR offsets into path_nodes_
  std::vector<NodeId> path_nodes_;
  std::vector<std::int32_t> light_depth_;
  std::vector<std::int32_t> pos_in_path_;
};

}  // namespace treelab::tree
