#include "tree/collapsed.hpp"

#include <algorithm>
#include <cassert>

namespace treelab::tree {

CollapsedTree::CollapsedTree(const HeavyPathDecomposition& hpd) : hpd_(&hpd) {
  const Tree& t = hpd.tree();
  const std::int32_t m = hpd.num_paths();
  cparent_.assign(static_cast<std::size_t>(m), -1);
  exceptional_.assign(static_cast<std::size_t>(m), 0);
  cchild_off_.assign(static_cast<std::size_t>(m) + 1, 0);

  // Collect the children of every C(T) node in order: walk each heavy path
  // top to bottom; at each path node gather the light children (subtree
  // heads). Several light children at one node are ordered by ascending
  // subtree size so the largest lands rightmost; if the node also has a
  // heavy child there is no tie to break (a light child at a non-terminal
  // node is alone for binary T). An exceptional edge exists only where two
  // or more light edges leave the terminal node of a path.
  std::vector<std::vector<std::int32_t>> kids(static_cast<std::size_t>(m));
  for (std::int32_t p = 0; p < m; ++p) {
    for (NodeId w : hpd.path_nodes(p)) {
      std::vector<NodeId> light;
      for (NodeId c : t.children(w))
        if (c != hpd.heavy_child(w)) light.push_back(c);
      std::stable_sort(light.begin(), light.end(),
                       [&](NodeId a, NodeId b) {
                         return t.subtree_size(a) < t.subtree_size(b);
                       });
      const bool at_tail = hpd.heavy_child(w) == kNoNode;
      for (std::size_t i = 0; i < light.size(); ++i) {
        const std::int32_t cp = hpd.path_of(light[i]);
        cparent_[cp] = p;
        kids[static_cast<std::size_t>(p)].push_back(cp);
        if (at_tail && light.size() >= 2 && i + 1 == light.size())
          exceptional_[cp] = 1;
      }
    }
  }

  for (std::int32_t p = 0; p < m; ++p)
    cchild_off_[static_cast<std::size_t>(p) + 1] =
        cchild_off_[p] + static_cast<std::int32_t>(kids[p].size());
  cchild_.reserve(static_cast<std::size_t>(m) - 1);
  for (std::int32_t p = 0; p < m; ++p)
    for (std::int32_t c : kids[static_cast<std::size_t>(p)])
      cchild_.push_back(c);

  // Domination numbering: children-before-parent, children left-to-right.
  // Iterative post-order from the root path (path containing t.root()).
  order_.assign(static_cast<std::size_t>(m), -1);
  const std::int32_t croot = hpd.path_of(t.root());
  std::int32_t counter = 0;
  height_ = 0;
  struct Frame {
    std::int32_t c;
    std::size_t next_child;
    std::int32_t depth;
  };
  std::vector<Frame> stack{{croot, 0, 0}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto cs = cchildren(f.c);
    if (f.next_child < cs.size()) {
      const std::int32_t child = cs[f.next_child++];
      stack.push_back({child, 0, f.depth + 1});
    } else {
      order_[f.c] = counter++;
      height_ = std::max(height_, f.depth);
      stack.pop_back();
    }
  }
  assert(counter == m);
}

}  // namespace treelab::tree
