// Minimal undirected graph support for the distance-oracle application
// (Section 1: "distance oracles for general graphs use distance labelings
// for spanning trees rooted at judiciously chosen vertices").
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "tree/tree.hpp"

namespace treelab::tree {

class Graph {
 public:
  /// n isolated vertices.
  explicit Graph(NodeId n);

  /// Builds from an edge list (self-loops rejected, multi-edges kept).
  static Graph from_edges(NodeId n,
                          std::span<const std::pair<NodeId, NodeId>> edges);

  /// Uniform random connected graph: a random spanning tree plus
  /// `extra_edges` uniform chords.
  static Graph random_connected(NodeId n, NodeId extra_edges,
                                std::uint64_t seed);

  void add_edge(NodeId a, NodeId b);

  [[nodiscard]] NodeId size() const noexcept {
    return static_cast<NodeId>(adj_.size());
  }
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return adj_[v];
  }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_; }
  [[nodiscard]] bool connected() const;

  /// Hop distances from src to every vertex (-1 if unreachable). O(n + m).
  [[nodiscard]] std::vector<std::int32_t> bfs_distances(NodeId src) const;

  /// BFS spanning tree rooted at src. Requires a connected graph.
  [[nodiscard]] Tree bfs_tree(NodeId src) const;

 private:
  std::vector<std::vector<NodeId>> adj_;
  std::size_t edges_ = 0;
};

}  // namespace treelab::tree
