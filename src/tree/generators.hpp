// Tree generators: benchmark/test workloads and the paper's lower-bound
// instance families.
//
//  * Elementary shapes (paths, stars, caterpillars, brooms, spiders,
//    balanced d-ary) exercise the extremes of heavy-path structure.
//  * Random trees via Prüfer sequences and random binary trees are the
//    "typical" workloads of the benches.
//  * (h,M)-trees (Section 2, Fig. 2) are the Gavoille et al. lower-bound
//    family for exact distances and the Section 4.2 / 5.1 reductions.
//  * (x,h,d)-regular trees (Section 4.1, Fig. 5) are the lower-bound family
//    for k-distance labeling.
//  * stretched subdivision (Section 5.1) turns an (h,M)-tree into the
//    (1+eps)-approximate lower-bound instance.
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "tree/tree.hpp"

namespace treelab::tree {

/// A path with n nodes rooted at one end: one heavy path, no light edges.
[[nodiscard]] Tree path(NodeId n);

/// A star: root with n-1 leaf children — maximal branching, depth 1.
[[nodiscard]] Tree star(NodeId n);

/// Spine of `spine` nodes, each with `legs` leaf children.
[[nodiscard]] Tree caterpillar(NodeId spine, NodeId legs);

/// A path of `handle` nodes whose far end carries `bristles` leaves.
[[nodiscard]] Tree broom(NodeId handle, NodeId bristles);

/// Root with `legs` paths of length `leg_len` hanging off it.
[[nodiscard]] Tree spider(NodeId legs, NodeId leg_len);

/// Complete d-ary tree of the given height (height 0 = single node).
[[nodiscard]] Tree balanced(NodeId arity, NodeId height);

/// Uniformly random labeled tree on n nodes (Prüfer decode), rooted at 0.
[[nodiscard]] Tree random_tree(NodeId n, std::uint64_t seed);

/// Random binary tree built by uniform attachment to nodes of degree < 2.
[[nodiscard]] Tree random_binary_tree(NodeId n, std::uint64_t seed);

/// Random caterpillar-ish "degenerate" tree: each node's parent is chosen
/// among the last `window` nodes — produces long-path-heavy shapes.
[[nodiscard]] Tree random_windowed_tree(NodeId n, NodeId window,
                                        std::uint64_t seed);

/// Preferential attachment ("rich get richer"): each new node picks its
/// parent with probability proportional to degree+1 — shallow, hub-heavy
/// trees resembling web/citation hierarchies.
[[nodiscard]] Tree preferential_tree(NodeId n, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Lower-bound families
// ---------------------------------------------------------------------------

/// Weighted (h,M)-tree (Section 2, Fig. 2) with per-level parameters x drawn
/// uniformly from [0, M). For h = 0 this is a single node; otherwise the
/// root has one child via an edge of weight M - x, and that child carries two
/// recursively built (h-1,M)-trees attached with weight-x edges.
/// Node count: 3 * 2^h - 2.
[[nodiscard]] Tree hm_tree(int h, std::uint32_t M, std::uint64_t seed);

/// Deterministic variant with explicit x parameters, one per "split" node in
/// BFS order (2^h - 1 values required, each < M).
[[nodiscard]] Tree hm_tree_explicit(int h, std::uint32_t M,
                                    std::span<const std::uint32_t> xs);

/// Replaces every weight-w edge by w unit edges (w >= 1) and contracts
/// weight-0 edges, yielding a unit-weighted tree that preserves all
/// distances. This is the "subdividing edges" step of Sections 4.2 / 5.1.
/// If `image` is non-null it receives, per original node, the node of the
/// result representing it (d(u,v) == d(image[u], image[v])).
[[nodiscard]] Tree subdivide(const Tree& t,
                             std::vector<NodeId>* image = nullptr);

/// Section 5.1 stretched instance: subdivide() the (weighted) tree, then
/// replace each unit edge at depth d (0-based from the root) with
/// floor((1+eps)^(D-d)) unit edges, where D is the height of the subdivided
/// tree. Exact distances in the source become recoverable from
/// (1+eps)-approximate distances in the result.
[[nodiscard]] Tree stretch(const Tree& t, double eps);

/// (x,h,d)-regular tree of Section 4.1 (Fig. 5): a y-regular tree with
/// y = (d^{x_1}, d^{h-x_1}, ..., d^{x_k}, d^{h-x_k}); x_i in [1, h].
/// Leaf count d^{k*h}; keep parameters tiny.
[[nodiscard]] Tree regular_tree(std::span<const int> xs, int h, int d);

// ---------------------------------------------------------------------------
// Exhaustive enumeration (oracle tests, Fig. 4 universal-tree experiments)
// ---------------------------------------------------------------------------

/// All rooted trees on exactly n nodes, up to isomorphism (canonical AHU
/// dedup). Feasible for n <= 10 (719 trees at n = 10).
[[nodiscard]] std::vector<Tree> all_rooted_trees(NodeId n);

/// Number of rooted trees on n nodes (OEIS A000081): 1, 1, 2, 4, 9, 20, ...
[[nodiscard]] std::size_t count_rooted_trees(NodeId n);

// ---------------------------------------------------------------------------
// Named shape registry for parameterized tests and benches
// ---------------------------------------------------------------------------

struct ShapeSpec {
  std::string name;
  std::function<Tree(NodeId n, std::uint64_t seed)> make;
};

/// The standard workload mix used across benches/tests: path, star,
/// caterpillar, broom, spider, balanced-binary, random, random-binary.
[[nodiscard]] const std::vector<ShapeSpec>& standard_shapes();

}  // namespace treelab::tree
