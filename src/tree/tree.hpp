// Tree: the rooted, edge-weighted tree type every treelab component works on.
//
// Nodes are dense integers [0, n). Each non-root node stores the weight of
// the edge to its parent (the paper's preprocessing, Section 2, produces
// binary trees with {0,1} edge weights; generators for lower-bound families
// produce larger weights). The constructor computes children lists, subtree
// sizes, depths and weighted root distances once, in O(n).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace treelab::tree {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

class Tree {
 public:
  /// Builds from a parent array; parent[root] == kNoNode, exactly one root.
  /// `weights[v]` is the weight of the edge (v, parent[v]); ignored at the
  /// root. An empty weight vector means all edges have weight 1.
  /// Throws std::invalid_argument unless `parent` describes a rooted tree.
  explicit Tree(std::vector<NodeId> parent,
                std::vector<std::uint32_t> weights = {});

  /// Builds from an undirected edge list, rooted at `root`.
  static Tree from_edges(NodeId n,
                         std::span<const std::pair<NodeId, NodeId>> edges,
                         NodeId root = 0);

  [[nodiscard]] NodeId size() const noexcept {
    return static_cast<NodeId>(parent_.size());
  }
  [[nodiscard]] NodeId root() const noexcept { return root_; }
  [[nodiscard]] NodeId parent(NodeId v) const noexcept { return parent_[v]; }

  /// Weight of the edge (v, parent(v)); 0 for the root.
  [[nodiscard]] std::uint32_t weight(NodeId v) const noexcept {
    return weights_[v];
  }

  [[nodiscard]] std::span<const NodeId> children(NodeId v) const noexcept {
    return {children_.data() + child_off_[v],
            static_cast<std::size_t>(child_off_[v + 1] - child_off_[v])};
  }

  [[nodiscard]] NodeId subtree_size(NodeId v) const noexcept {
    return subtree_size_[v];
  }

  /// Number of edges on the root-to-v path.
  [[nodiscard]] NodeId depth(NodeId v) const noexcept { return depth_[v]; }

  /// Weighted distance from the root to v.
  [[nodiscard]] std::uint64_t root_distance(NodeId v) const noexcept {
    return root_dist_[v];
  }

  [[nodiscard]] bool is_leaf(NodeId v) const noexcept {
    return children(v).empty();
  }

  /// Nodes in a preorder consistent with the children() ordering.
  [[nodiscard]] std::vector<NodeId> preorder() const;

  /// True if every edge weight is 1.
  [[nodiscard]] bool is_unit_weighted() const noexcept;

  /// Sum of all edge weights (the weighted diameter upper bound used by
  /// generators when choosing integer widths).
  [[nodiscard]] std::uint64_t total_weight() const noexcept;

 private:
  Tree() = default;
  void finish_init();  // fills children/subtree/depth/root_dist; validates

  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> weights_;
  NodeId root_ = kNoNode;

  // Children in CSR layout: children of v are children_[child_off_[v] ..
  // child_off_[v+1]). Order: ascending node id (generators control ids).
  std::vector<NodeId> children_;
  std::vector<std::int32_t> child_off_;

  std::vector<NodeId> subtree_size_;
  std::vector<NodeId> depth_;
  std::vector<std::uint64_t> root_dist_;
};

}  // namespace treelab::tree
