#include "tree/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace treelab::tree {

Tree path(NodeId n) {
  if (n <= 0) throw std::invalid_argument("path: n <= 0");
  std::vector<NodeId> parent(static_cast<std::size_t>(n));
  parent[0] = kNoNode;
  for (NodeId i = 1; i < n; ++i) parent[i] = i - 1;
  return Tree(std::move(parent));
}

Tree star(NodeId n) {
  if (n <= 0) throw std::invalid_argument("star: n <= 0");
  std::vector<NodeId> parent(static_cast<std::size_t>(n), 0);
  parent[0] = kNoNode;
  return Tree(std::move(parent));
}

Tree caterpillar(NodeId spine, NodeId legs) {
  if (spine <= 0 || legs < 0) throw std::invalid_argument("caterpillar: bad args");
  const NodeId n = spine * (1 + legs);
  std::vector<NodeId> parent(static_cast<std::size_t>(n));
  parent[0] = kNoNode;
  for (NodeId i = 1; i < spine; ++i) parent[i] = i - 1;
  NodeId next = spine;
  for (NodeId s = 0; s < spine; ++s)
    for (NodeId l = 0; l < legs; ++l) parent[next++] = s;
  return Tree(std::move(parent));
}

Tree broom(NodeId handle, NodeId bristles) {
  if (handle <= 0 || bristles < 0) throw std::invalid_argument("broom: bad args");
  const NodeId n = handle + bristles;
  std::vector<NodeId> parent(static_cast<std::size_t>(n));
  parent[0] = kNoNode;
  for (NodeId i = 1; i < handle; ++i) parent[i] = i - 1;
  for (NodeId i = handle; i < n; ++i) parent[i] = handle - 1;
  return Tree(std::move(parent));
}

Tree spider(NodeId legs, NodeId leg_len) {
  if (legs < 0 || leg_len < 0) throw std::invalid_argument("spider: bad args");
  const NodeId n = 1 + legs * leg_len;
  std::vector<NodeId> parent(static_cast<std::size_t>(n));
  parent[0] = kNoNode;
  NodeId next = 1;
  for (NodeId l = 0; l < legs; ++l) {
    NodeId prev = 0;
    for (NodeId i = 0; i < leg_len; ++i) {
      parent[next] = prev;
      prev = next++;
    }
  }
  return Tree(std::move(parent));
}

Tree balanced(NodeId arity, NodeId height) {
  if (arity <= 0 || height < 0) throw std::invalid_argument("balanced: bad args");
  std::vector<NodeId> parent{kNoNode};
  NodeId level_begin = 0, level_end = 1;
  for (NodeId h = 0; h < height; ++h) {
    for (NodeId v = level_begin; v < level_end; ++v)
      for (NodeId c = 0; c < arity; ++c)
        parent.push_back(v);
    level_begin = level_end;
    level_end = static_cast<NodeId>(parent.size());
  }
  return Tree(std::move(parent));
}

Tree random_tree(NodeId n, std::uint64_t seed) {
  if (n <= 0) throw std::invalid_argument("random_tree: n <= 0");
  if (n == 1) return path(1);
  if (n == 2) return path(2);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<NodeId> pick(0, n - 1);
  std::vector<NodeId> prufer(static_cast<std::size_t>(n - 2));
  for (auto& x : prufer) x = pick(rng);

  // Textbook linear-time Prüfer decode with a moving pointer.
  std::vector<NodeId> deg(static_cast<std::size_t>(n), 1);
  for (NodeId x : prufer) ++deg[static_cast<std::size_t>(x)];
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(n - 1));
  NodeId ptr = 0;
  while (deg[static_cast<std::size_t>(ptr)] != 1) ++ptr;
  NodeId leaf = ptr;
  for (NodeId x : prufer) {
    edges.emplace_back(leaf, x);
    deg[static_cast<std::size_t>(leaf)] = 0;
    if (--deg[static_cast<std::size_t>(x)] == 1 && x < ptr) {
      leaf = x;
    } else {
      ++ptr;
      while (deg[static_cast<std::size_t>(ptr)] != 1) ++ptr;
      leaf = ptr;
    }
  }
  edges.emplace_back(leaf, n - 1);
  return Tree::from_edges(n, edges, 0);
}

Tree random_binary_tree(NodeId n, std::uint64_t seed) {
  if (n <= 0) throw std::invalid_argument("random_binary_tree: n <= 0");
  std::mt19937_64 rng(seed);
  std::vector<NodeId> parent(static_cast<std::size_t>(n));
  parent[0] = kNoNode;
  // Nodes with < 2 children, stored with multiplicity of free slots.
  std::vector<NodeId> slots{0, 0};
  for (NodeId v = 1; v < n; ++v) {
    std::uniform_int_distribution<std::size_t> pick(0, slots.size() - 1);
    const std::size_t i = pick(rng);
    parent[v] = slots[i];
    slots[i] = slots.back();
    slots.pop_back();
    slots.push_back(v);
    slots.push_back(v);
  }
  return Tree(std::move(parent));
}

Tree random_windowed_tree(NodeId n, NodeId window, std::uint64_t seed) {
  if (n <= 0 || window <= 0)
    throw std::invalid_argument("random_windowed_tree: bad args");
  std::mt19937_64 rng(seed);
  std::vector<NodeId> parent(static_cast<std::size_t>(n));
  parent[0] = kNoNode;
  for (NodeId v = 1; v < n; ++v) {
    const NodeId lo = std::max<NodeId>(0, v - window);
    std::uniform_int_distribution<NodeId> pick(lo, v - 1);
    parent[v] = pick(rng);
  }
  return Tree(std::move(parent));
}

Tree preferential_tree(NodeId n, std::uint64_t seed) {
  if (n <= 0) throw std::invalid_argument("preferential_tree: n <= 0");
  std::mt19937_64 rng(seed);
  std::vector<NodeId> parent(static_cast<std::size_t>(n));
  parent[0] = kNoNode;
  // Attachment urn: node v appears deg(v)+1 times.
  std::vector<NodeId> urn{0};
  for (NodeId v = 1; v < n; ++v) {
    const NodeId p = urn[rng() % urn.size()];
    parent[v] = p;
    urn.push_back(p);
    urn.push_back(v);
  }
  return Tree(std::move(parent));
}

namespace {

// Recursive (h,M)-tree construction; split node at heap position `heap`
// (1-based) uses xs[heap-1].
void build_hm(int h, std::uint32_t M, std::span<const std::uint32_t> xs,
              std::size_t heap, NodeId attach_to, std::uint32_t attach_weight,
              std::vector<NodeId>& parent, std::vector<std::uint32_t>& weight) {
  const NodeId top = static_cast<NodeId>(parent.size());
  parent.push_back(attach_to);
  weight.push_back(attach_weight);
  if (h == 0) return;
  const std::uint32_t x = xs[heap - 1];
  assert(x < M);
  const NodeId mid = static_cast<NodeId>(parent.size());
  parent.push_back(top);
  weight.push_back(M - x);
  build_hm(h - 1, M, xs, 2 * heap, mid, x, parent, weight);
  build_hm(h - 1, M, xs, 2 * heap + 1, mid, x, parent, weight);
}

}  // namespace

Tree hm_tree_explicit(int h, std::uint32_t M,
                      std::span<const std::uint32_t> xs) {
  if (h < 0 || M < 1) throw std::invalid_argument("hm_tree: bad args");
  const std::size_t splits = (std::size_t{1} << h) - 1;
  if (xs.size() != splits)
    throw std::invalid_argument("hm_tree_explicit: need 2^h - 1 x-values");
  for (std::uint32_t x : xs)
    if (x >= M) throw std::invalid_argument("hm_tree_explicit: x >= M");
  std::vector<NodeId> parent;
  std::vector<std::uint32_t> weight;
  parent.reserve(3 * (std::size_t{1} << h));
  build_hm(h, M, xs, 1, kNoNode, 0, parent, weight);
  return Tree(std::move(parent), std::move(weight));
}

Tree hm_tree(int h, std::uint32_t M, std::uint64_t seed) {
  if (h < 0 || M < 1) throw std::invalid_argument("hm_tree: bad args");
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> pick(0, M - 1);
  std::vector<std::uint32_t> xs((std::size_t{1} << h) - 1);
  for (auto& x : xs) x = pick(rng);
  return hm_tree_explicit(h, M, xs);
}

Tree subdivide(const Tree& t, std::vector<NodeId>* image) {
  // newid[v]: id of the node representing v in the output (after contracting
  // weight-0 edges and inserting subdivision nodes).
  std::vector<NodeId> newid(static_cast<std::size_t>(t.size()), kNoNode);
  std::vector<NodeId> parent;
  parent.push_back(kNoNode);
  newid[t.root()] = 0;
  for (NodeId v : t.preorder()) {
    if (v == t.root()) continue;
    const NodeId p = newid[t.parent(v)];
    const std::uint32_t w = t.weight(v);
    if (w == 0) {
      newid[v] = p;  // contract
      continue;
    }
    NodeId prev = p;
    for (std::uint32_t i = 1; i < w; ++i) {
      parent.push_back(prev);
      prev = static_cast<NodeId>(parent.size() - 1);
    }
    parent.push_back(prev);
    newid[v] = static_cast<NodeId>(parent.size() - 1);
  }
  if (image) *image = newid;
  return Tree(std::move(parent));
}

Tree stretch(const Tree& t, double eps) {
  if (eps <= 0) throw std::invalid_argument("stretch: eps <= 0");
  const Tree unit = subdivide(t);
  NodeId height = 0;
  for (NodeId v = 0; v < unit.size(); ++v)
    height = std::max(height, unit.depth(v));

  std::vector<NodeId> newid(static_cast<std::size_t>(unit.size()), kNoNode);
  std::vector<NodeId> parent;
  parent.push_back(kNoNode);
  newid[unit.root()] = 0;
  for (NodeId v : unit.preorder()) {
    if (v == unit.root()) continue;
    const NodeId d = unit.depth(unit.parent(v));  // depth of the edge
    const auto copies = static_cast<std::uint64_t>(
        std::floor(std::pow(1.0 + eps, static_cast<double>(height - d))));
    assert(copies >= 1);
    NodeId prev = newid[unit.parent(v)];
    for (std::uint64_t i = 1; i < copies; ++i) {
      parent.push_back(prev);
      prev = static_cast<NodeId>(parent.size() - 1);
    }
    parent.push_back(prev);
    newid[v] = static_cast<NodeId>(parent.size() - 1);
  }
  return Tree(std::move(parent));
}

Tree regular_tree(std::span<const int> xs, int h, int d) {
  if (h < 1 || d < 1) throw std::invalid_argument("regular_tree: bad args");
  const auto ipow = [](std::uint64_t base, int e) {
    std::uint64_t r = 1;
    while (e-- > 0) r *= base;
    return r;
  };
  std::vector<std::uint64_t> degs;
  for (int x : xs) {
    if (x < 1 || x > h) throw std::invalid_argument("regular_tree: x out of [1,h]");
    degs.push_back(ipow(static_cast<std::uint64_t>(d), x));
    degs.push_back(ipow(static_cast<std::uint64_t>(d), h - x));
  }
  // Size guard: total nodes = 1 + sum of products of degree prefixes.
  std::uint64_t total = 1, layer = 1;
  for (std::uint64_t deg : degs) {
    layer *= deg;
    total += layer;
    if (total > 4'000'000)
      throw std::invalid_argument("regular_tree: instance too large");
  }
  std::vector<NodeId> parent{kNoNode};
  NodeId level_begin = 0, level_end = 1;
  for (std::uint64_t deg : degs) {
    for (NodeId v = level_begin; v < level_end; ++v)
      for (std::uint64_t c = 0; c < deg; ++c)
        parent.push_back(v);
    level_begin = level_end;
    level_end = static_cast<NodeId>(parent.size());
  }
  return Tree(std::move(parent));
}

namespace {

// AHU canonical encoding of the subtree of v: "(" + sorted child codes + ")".
std::string ahu(const Tree& t, NodeId v) {
  std::vector<std::string> cs;
  for (NodeId c : t.children(v)) cs.push_back(ahu(t, c));
  std::sort(cs.begin(), cs.end());
  std::string out = "(";
  for (const auto& s : cs) out += s;
  out += ")";
  return out;
}

}  // namespace

std::vector<Tree> all_rooted_trees(NodeId n) {
  if (n <= 0) throw std::invalid_argument("all_rooted_trees: n <= 0");
  if (n > 10) throw std::invalid_argument("all_rooted_trees: n > 10 infeasible");
  std::vector<Tree> out;
  std::unordered_set<std::string> seen;
  std::vector<NodeId> parent(static_cast<std::size_t>(n), 0);
  parent[0] = kNoNode;
  // Odometer over parent[i] in [0, i-1]; (n-1)! combinations.
  for (;;) {
    Tree t(parent);
    std::string code = ahu(t, t.root());
    if (seen.insert(std::move(code)).second) out.push_back(std::move(t));
    // increment
    NodeId i = n - 1;
    while (i >= 1) {
      if (parent[static_cast<std::size_t>(i)] + 1 < i) {
        ++parent[static_cast<std::size_t>(i)];
        break;
      }
      parent[static_cast<std::size_t>(i)] = 0;
      --i;
    }
    if (i < 1) break;
  }
  return out;
}

std::size_t count_rooted_trees(NodeId n) {
  // OEIS A000081 (rooted trees on n unlabeled nodes).
  static constexpr std::size_t table[] = {0, 1, 1, 2, 4, 9, 20, 48, 115, 286, 719};
  if (n < 1 || n > 10)
    throw std::invalid_argument("count_rooted_trees: n out of [1,10]");
  return table[n];
}

const std::vector<ShapeSpec>& standard_shapes() {
  static const std::vector<ShapeSpec> shapes = {
      {"path", [](NodeId n, std::uint64_t) { return path(n); }},
      {"star", [](NodeId n, std::uint64_t) { return star(n); }},
      {"caterpillar",
       [](NodeId n, std::uint64_t) {
         return caterpillar(std::max<NodeId>(1, n / 4), 3);
       }},
      {"broom",
       [](NodeId n, std::uint64_t) {
         return broom(std::max<NodeId>(1, n / 2), n - std::max<NodeId>(1, n / 2));
       }},
      {"spider",
       [](NodeId n, std::uint64_t) {
         const NodeId legs = std::max<NodeId>(
             1, static_cast<NodeId>(std::sqrt(static_cast<double>(n))));
         return spider(legs, std::max<NodeId>(1, (n - 1) / legs));
       }},
      {"balanced-binary",
       [](NodeId n, std::uint64_t) {
         NodeId h = 0;
         while (((NodeId{2} << (h + 1)) - 1) <= n) ++h;
         return balanced(2, h);
       }},
      {"random", [](NodeId n, std::uint64_t s) { return random_tree(n, s); }},
      {"random-binary",
       [](NodeId n, std::uint64_t s) { return random_binary_tree(n, s); }},
      {"preferential",
       [](NodeId n, std::uint64_t s) { return preferential_tree(n, s); }},
  };
  return shapes;
}

}  // namespace treelab::tree
