#include "tree/hpd.hpp"

#include <algorithm>
#include <cassert>

namespace treelab::tree {

HeavyPathDecomposition::HeavyPathDecomposition(const Tree& t, Variant variant)
    : t_(&t), variant_(variant) {
  const NodeId n = t.size();
  heavy_child_.assign(static_cast<std::size_t>(n), kNoNode);
  path_of_.assign(static_cast<std::size_t>(n), -1);
  light_depth_.assign(static_cast<std::size_t>(n), 0);
  pos_in_path_.assign(static_cast<std::size_t>(n), 0);
  path_off_.push_back(0);

  // Each stack entry starts a new heavy path at `start` with light depth ld.
  struct PathStart {
    NodeId start;
    std::int32_t ld;
  };
  std::vector<PathStart> stack{{t.root(), 0}};
  while (!stack.empty()) {
    const auto [start, ld] = stack.back();
    stack.pop_back();
    const std::int32_t pid = static_cast<std::int32_t>(path_head_.size());
    path_head_.push_back(start);
    max_light_depth_ = std::max(max_light_depth_, ld);
    const NodeId path_start_size = t.subtree_size(start);

    NodeId cur = start;
    std::int32_t pos = 0;
    for (;;) {
      path_of_[cur] = pid;
      light_depth_[cur] = ld;
      pos_in_path_[cur] = pos++;
      path_nodes_.push_back(cur);

      NodeId next = kNoNode;
      if (variant_ == Variant::kPaperHalf) {
        for (NodeId c : t.children(cur))
          if (2 * static_cast<std::int64_t>(t.subtree_size(c)) >=
              path_start_size) {
            next = c;
            break;
          }
      } else {
        NodeId best = 0;
        for (NodeId c : t.children(cur))
          if (t.subtree_size(c) > best) {
            best = t.subtree_size(c);
            next = c;
          }
      }
      heavy_child_[cur] = next;
      // Every non-heavy child starts its own path one light level deeper.
      for (NodeId c : t.children(cur))
        if (c != next) stack.push_back({c, ld + 1});
      if (next == kNoNode) break;
      cur = next;
    }
    path_off_.push_back(static_cast<std::int32_t>(path_nodes_.size()));
  }
  assert(static_cast<NodeId>(path_nodes_.size()) == n);
}

}  // namespace treelab::tree
