#include "tree/tree.hpp"

#include <numeric>
#include <stdexcept>

namespace treelab::tree {

Tree::Tree(std::vector<NodeId> parent, std::vector<std::uint32_t> weights)
    : parent_(std::move(parent)), weights_(std::move(weights)) {
  const NodeId n = static_cast<NodeId>(parent_.size());
  if (n == 0) throw std::invalid_argument("Tree: empty parent array");
  if (weights_.empty()) weights_.assign(static_cast<std::size_t>(n), 1);
  if (static_cast<NodeId>(weights_.size()) != n)
    throw std::invalid_argument("Tree: weights size mismatch");
  finish_init();
}

Tree Tree::from_edges(NodeId n,
                      std::span<const std::pair<NodeId, NodeId>> edges,
                      NodeId root) {
  if (n <= 0) throw std::invalid_argument("Tree::from_edges: n <= 0");
  if (static_cast<NodeId>(edges.size()) != n - 1)
    throw std::invalid_argument("Tree::from_edges: need exactly n-1 edges");
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(n));
  for (auto [a, b] : edges) {
    if (a < 0 || a >= n || b < 0 || b >= n || a == b)
      throw std::invalid_argument("Tree::from_edges: bad edge");
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  }
  std::vector<NodeId> parent(static_cast<std::size_t>(n), kNoNode);
  std::vector<NodeId> stack{root};
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  seen[static_cast<std::size_t>(root)] = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NodeId w : adj[static_cast<std::size_t>(v)]) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = 1;
        parent[static_cast<std::size_t>(w)] = v;
        stack.push_back(w);
      }
    }
  }
  for (char s : seen)
    if (!s) throw std::invalid_argument("Tree::from_edges: not connected");
  return Tree(std::move(parent));
}

void Tree::finish_init() {
  const NodeId n = size();
  root_ = kNoNode;
  std::vector<std::int32_t> deg(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId p = parent_[v];
    if (p == kNoNode) {
      if (root_ != kNoNode)
        throw std::invalid_argument("Tree: multiple roots");
      root_ = v;
      weights_[v] = 0;
    } else if (p < 0 || p >= n || p == v) {
      throw std::invalid_argument("Tree: bad parent id");
    } else {
      ++deg[static_cast<std::size_t>(p)];
    }
  }
  if (root_ == kNoNode) throw std::invalid_argument("Tree: no root");

  child_off_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v)
    child_off_[static_cast<std::size_t>(v) + 1] =
        child_off_[v] + deg[static_cast<std::size_t>(v)];
  children_.resize(static_cast<std::size_t>(n) - 1);
  std::vector<std::int32_t> fill(child_off_.begin(), child_off_.end() - 1);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId p = parent_[v];
    if (p != kNoNode) children_[fill[static_cast<std::size_t>(p)]++] = v;
  }

  // Topological order (parents before children) via BFS from the root; this
  // also detects cycles (unreached nodes).
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  order.push_back(root_);
  depth_.assign(static_cast<std::size_t>(n), 0);
  root_dist_.assign(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const NodeId v = order[i];
    for (NodeId c : children(v)) {
      depth_[c] = depth_[v] + 1;
      root_dist_[c] = root_dist_[v] + weights_[c];
      order.push_back(c);
    }
  }
  if (static_cast<NodeId>(order.size()) != n)
    throw std::invalid_argument("Tree: parent array contains a cycle");

  subtree_size_.assign(static_cast<std::size_t>(n), 1);
  for (std::size_t i = order.size(); i-- > 1;) {
    const NodeId v = order[i];
    subtree_size_[parent_[v]] += subtree_size_[v];
  }
}

std::vector<NodeId> Tree::preorder() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(size()));
  std::vector<NodeId> stack{root_};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    out.push_back(v);
    const auto cs = children(v);
    for (std::size_t i = cs.size(); i-- > 0;) stack.push_back(cs[i]);
  }
  return out;
}

bool Tree::is_unit_weighted() const noexcept {
  for (NodeId v = 0; v < size(); ++v)
    if (v != root_ && weights_[v] != 1) return false;
  return true;
}

std::uint64_t Tree::total_weight() const noexcept {
  std::uint64_t s = 0;
  for (NodeId v = 0; v < size(); ++v)
    if (v != root_) s += weights_[v];
  return s;
}

}  // namespace treelab::tree
