#include "tree/io.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace treelab::tree {

void write_dot(std::ostream& os, const Tree& t,
               const HeavyPathDecomposition* hpd) {
  os << "digraph T {\n  rankdir=TB;\n  node [shape=circle];\n";
  for (NodeId v = 0; v < t.size(); ++v) {
    os << "  n" << v << " [label=\"" << v;
    if (hpd) os << "\\nP" << hpd->path_of(v);
    os << "\"];\n";
  }
  for (NodeId v = 0; v < t.size(); ++v) {
    const NodeId p = t.parent(v);
    if (p == kNoNode) continue;
    os << "  n" << p << " -> n" << v;
    const bool heavy = hpd && hpd->is_heavy_edge(v);
    os << " [label=\"" << t.weight(v) << '"';
    if (heavy) os << ", penwidth=2.5";
    if (hpd && !heavy) os << ", style=dashed";
    os << "];\n";
  }
  os << "}\n";
}

void write_text(std::ostream& os, const Tree& t) {
  os << t.size() << '\n';
  for (NodeId v = 0; v < t.size(); ++v)
    os << t.parent(v) << ' ' << t.weight(v) << '\n';
}

Tree read_text(std::istream& is) {
  std::int64_t n = 0;
  if (!(is >> n) || n <= 0)
    throw std::invalid_argument("read_text: bad node count");
  std::vector<NodeId> parent(static_cast<std::size_t>(n));
  std::vector<std::uint32_t> weight(static_cast<std::size_t>(n));
  for (std::int64_t v = 0; v < n; ++v) {
    std::int64_t p = 0;
    std::uint32_t w = 0;
    if (!(is >> p >> w)) throw std::invalid_argument("read_text: truncated");
    parent[static_cast<std::size_t>(v)] = static_cast<NodeId>(p);
    weight[static_cast<std::size_t>(v)] = w;
  }
  return Tree(std::move(parent), std::move(weight));
}

}  // namespace treelab::tree
