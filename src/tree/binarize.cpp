#include "tree/binarize.hpp"

#include <cassert>

namespace treelab::tree {

BinarizedTree binarize(const Tree& t) {
  const NodeId n = t.size();
  std::vector<NodeId> parent;
  std::vector<std::uint32_t> weight;
  std::vector<NodeId> origin;
  std::vector<NodeId> leaf_of(static_cast<std::size_t>(n), kNoNode);
  parent.reserve(static_cast<std::size_t>(3) * n);
  weight.reserve(static_cast<std::size_t>(3) * n);
  origin.reserve(static_cast<std::size_t>(3) * n);

  const auto add_node = [&](NodeId par, std::uint32_t w, NodeId orig) {
    parent.push_back(par);
    weight.push_back(w);
    origin.push_back(orig);
    return static_cast<NodeId>(parent.size() - 1);
  };

  // Work items: original node to emit, its attach point in the output, and
  // the weight of the connecting edge.
  struct Item {
    NodeId orig;
    NodeId attach;
    std::uint32_t w;
  };
  std::vector<Item> stack{{t.root(), kNoNode, 0}};
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    const NodeId img = add_node(it.attach, it.w, it.orig);
    const auto cs = t.children(it.orig);
    if (cs.empty()) {
      leaf_of[it.orig] = img;
      continue;
    }
    // Internal node: items to hang are the proxy leaf plus each child.
    // Attach them along a chain of weight-0 intermediates so that every
    // output node has at most two children. The proxy goes first; children
    // follow in their original order.
    NodeId hook = img;
    int free_slots = 2;
    const auto ensure_slot = [&](std::size_t remaining_after) {
      // If the current hook has one slot left but more than one item still
      // needs attaching, spend the slot on a new intermediate hook.
      if (free_slots == 1 && remaining_after > 0) {
        hook = add_node(hook, 0, kNoNode);
        free_slots = 2;
      }
    };
    std::size_t remaining = cs.size();  // children still to attach
    ensure_slot(remaining);
    leaf_of[it.orig] = add_node(hook, 0, kNoNode);  // proxy leaf u+
    --free_slots;
    for (std::size_t i = 0; i < cs.size(); ++i) {
      --remaining;
      ensure_slot(remaining);
      stack.push_back({cs[i], hook, t.weight(cs[i])});
      --free_slots;
    }
  }

  BinarizedTree out{Tree(std::move(parent), std::move(weight)),
                    std::move(leaf_of), std::move(origin)};
#ifndef NDEBUG
  for (NodeId v = 0; v < out.tree.size(); ++v)
    assert(out.tree.children(v).size() <= 2);
#endif
  return out;
}

}  // namespace treelab::tree
