// Small I/O helpers: Graphviz export (optionally colored by heavy path) and
// a line-based parent-array text format for examples.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "tree/hpd.hpp"
#include "tree/tree.hpp"

namespace treelab::tree {

/// Writes DOT. If an HPD is given, heavy edges are drawn bold and nodes are
/// annotated with their heavy path id (matches Fig. 1's styling).
void write_dot(std::ostream& os, const Tree& t,
               const HeavyPathDecomposition* hpd = nullptr);

/// Text format: first line n, then n lines "parent weight" (root: -1 0).
void write_text(std::ostream& os, const Tree& t);

/// Parses the write_text format. Throws std::invalid_argument on bad input.
[[nodiscard]] Tree read_text(std::istream& is);

}  // namespace treelab::tree
