#include "tree/nca_index.hpp"

#include <algorithm>

namespace treelab::tree {

NcaIndex::NcaIndex(const Tree& t) : t_(&t) {
  const NodeId n = t.size();
  first_.assign(static_cast<std::size_t>(n), -1);
  euler_.reserve(2 * static_cast<std::size_t>(n));

  // Iterative Euler tour.
  struct Frame {
    NodeId v;
    std::size_t next_child;
  };
  std::vector<Frame> stack{{t.root(), 0}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_child == 0) {
      first_[f.v] = static_cast<std::int32_t>(euler_.size());
      euler_.push_back(f.v);
    }
    const auto cs = t.children(f.v);
    if (f.next_child < cs.size()) {
      const NodeId c = cs[f.next_child++];
      stack.push_back({c, 0});
    } else {
      stack.pop_back();
      if (!stack.empty()) euler_.push_back(stack.back().v);
    }
  }

  const std::size_t m = euler_.size();
  log2_.assign(m + 1, 0);
  for (std::size_t i = 2; i <= m; ++i) log2_[i] = log2_[i / 2] + 1;

  const int levels = log2_[m] + 1;
  table_.assign(static_cast<std::size_t>(levels), {});
  table_[0].resize(m);
  for (std::size_t i = 0; i < m; ++i)
    table_[0][i] = static_cast<std::int32_t>(i);
  const auto depth_at = [&](std::int32_t pos) {
    return t_->depth(euler_[static_cast<std::size_t>(pos)]);
  };
  for (int k = 1; k < levels; ++k) {
    const std::size_t len = std::size_t{1} << k;
    table_[k].resize(m - len + 1);
    for (std::size_t i = 0; i + len <= m; ++i) {
      const std::int32_t a = table_[k - 1][i];
      const std::int32_t b = table_[k - 1][i + len / 2];
      table_[k][i] = depth_at(a) <= depth_at(b) ? a : b;
    }
  }
}

NodeId NcaIndex::nca(NodeId u, NodeId v) const noexcept {
  std::int32_t lo = first_[u], hi = first_[v];
  if (lo > hi) std::swap(lo, hi);
  const int k = log2_[static_cast<std::size_t>(hi - lo + 1)];
  const std::int32_t a = table_[k][static_cast<std::size_t>(lo)];
  const std::int32_t b =
      table_[k][static_cast<std::size_t>(hi) - (std::size_t{1} << k) + 1];
  const NodeId na = euler_[static_cast<std::size_t>(a)];
  const NodeId nb = euler_[static_cast<std::size_t>(b)];
  return t_->depth(na) <= t_->depth(nb) ? na : nb;
}

}  // namespace treelab::tree
