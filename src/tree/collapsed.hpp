// The collapsed tree C(T) of a heavy path decomposition (Section 2, Fig. 1).
//
// Nodes of C(T) are heavy paths of T. Children of a C(T) node are the paths
// hanging off it by light edges, ordered top-to-bottom by branching depth;
// when several light edges leave the same path node (for binary T this can
// only happen at the last node of the path) the largest subtree is placed
// rightmost and its light edge is *exceptional*.
//
// Domination (Section 2): u dominates v iff u's associated C(T) node comes
// before v's in the traversal order in which a parent follows all of its
// children (children left-to-right, parent last). This realizes the paper's
// two observations for leaf-to-leaf queries:
//   (1) a light-start path dominates a heavy-start path, and
//   (2) of two light-start paths from the same node, the exceptional one is
//       dominated.
#pragma once

#include <span>
#include <vector>

#include "tree/hpd.hpp"
#include "tree/tree.hpp"

namespace treelab::tree {

class CollapsedTree {
 public:
  explicit CollapsedTree(const HeavyPathDecomposition& hpd);

  [[nodiscard]] const HeavyPathDecomposition& hpd() const noexcept {
    return *hpd_;
  }

  /// Number of C(T) nodes == number of heavy paths.
  [[nodiscard]] std::int32_t size() const noexcept {
    return static_cast<std::int32_t>(order_.size());
  }

  /// C(T) node (== heavy path id) associated with tree node v.
  [[nodiscard]] std::int32_t cnode_of(NodeId v) const noexcept {
    return hpd_->path_of(v);
  }

  /// Parent C(T) node of c, or -1 at the root.
  [[nodiscard]] std::int32_t cparent(std::int32_t c) const noexcept {
    return cparent_[c];
  }

  /// Children of c, left-to-right (branching depth, exceptional last).
  [[nodiscard]] std::span<const std::int32_t> cchildren(std::int32_t c) const noexcept {
    return {cchild_.data() + cchild_off_[c],
            static_cast<std::size_t>(cchild_off_[c + 1] - cchild_off_[c])};
  }

  /// head(P) of the heavy path identified by C(T) node c.
  [[nodiscard]] NodeId head(std::int32_t c) const noexcept {
    return hpd_->head(c);
  }

  /// True if the light edge connecting c to its parent is exceptional.
  [[nodiscard]] bool is_exceptional(std::int32_t c) const noexcept {
    return exceptional_[c];
  }

  /// The domination number of C(T) node c (children-before-parent order;
  /// smaller dominates).
  [[nodiscard]] std::int32_t dom_number(std::int32_t c) const noexcept {
    return order_[c];
  }

  /// Domination between *tree* nodes: true if u dominates v.
  [[nodiscard]] bool dominates(NodeId u, NodeId v) const noexcept {
    return order_[cnode_of(u)] < order_[cnode_of(v)];
  }

  /// Height of C(T) (edges); at most log2 n.
  [[nodiscard]] std::int32_t height() const noexcept { return height_; }

 private:
  const HeavyPathDecomposition* hpd_;
  std::vector<std::int32_t> cparent_;
  std::vector<std::int32_t> cchild_off_;
  std::vector<std::int32_t> cchild_;
  std::vector<char> exceptional_;
  std::vector<std::int32_t> order_;  // domination numbering
  std::int32_t height_ = 0;
};

}  // namespace treelab::tree
