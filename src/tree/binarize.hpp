// Section 2 preprocessing: reduce distance labeling on an arbitrary
// unit-weighted tree to labeling the *leaves* of a *binary* tree with edge
// weights in {0,1}.
//
//  * Every internal node u gets a proxy leaf u+ attached by a weight-0 edge,
//    so every original node is represented by a leaf.
//  * Nodes with more than two children are binarized by inserting chains of
//    intermediate nodes attached with weight-0 edges.
//
// Distances are preserved: d_T(u, v) == d_B(leaf_of[u], leaf_of[v]).
#pragma once

#include <vector>

#include "tree/tree.hpp"

namespace treelab::tree {

struct BinarizedTree {
  Tree tree;                    ///< binary; weights {0, original weights}
  std::vector<NodeId> leaf_of;  ///< original node -> representative leaf
  std::vector<NodeId> origin;   ///< new node -> original node, or kNoNode
                                ///< for inserted intermediates/proxies
};

/// Applies the Section 2 reduction. Works for weighted inputs too (original
/// edge weights are kept; inserted edges have weight 0).
[[nodiscard]] BinarizedTree binarize(const Tree& t);

}  // namespace treelab::tree
