#include "tree/graph.hpp"

#include <queue>
#include <random>
#include <stdexcept>

namespace treelab::tree {

Graph::Graph(NodeId n) {
  if (n <= 0) throw std::invalid_argument("Graph: n <= 0");
  adj_.resize(static_cast<std::size_t>(n));
}

Graph Graph::from_edges(NodeId n,
                        std::span<const std::pair<NodeId, NodeId>> edges) {
  Graph g(n);
  for (auto [a, b] : edges) g.add_edge(a, b);
  return g;
}

Graph Graph::random_connected(NodeId n, NodeId extra_edges,
                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Graph g(n);
  for (NodeId v = 1; v < n; ++v)
    g.add_edge(v, static_cast<NodeId>(rng() % static_cast<std::uint64_t>(v)));
  std::uniform_int_distribution<NodeId> pick(0, n - 1);
  for (NodeId e = 0; e < extra_edges; ++e) {
    const NodeId a = pick(rng), b = pick(rng);
    if (a != b) g.add_edge(a, b);
  }
  return g;
}

void Graph::add_edge(NodeId a, NodeId b) {
  if (a < 0 || b < 0 || a >= size() || b >= size() || a == b)
    throw std::invalid_argument("Graph::add_edge: bad endpoints");
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  ++edges_;
}

bool Graph::connected() const {
  const auto d = bfs_distances(0);
  for (std::int32_t x : d)
    if (x < 0) return false;
  return true;
}

std::vector<std::int32_t> Graph::bfs_distances(NodeId src) const {
  std::vector<std::int32_t> d(static_cast<std::size_t>(size()), -1);
  std::queue<NodeId> q;
  d[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (NodeId w : adj_[v])
      if (d[w] < 0) {
        d[w] = d[v] + 1;
        q.push(w);
      }
  }
  return d;
}

Tree Graph::bfs_tree(NodeId src) const {
  std::vector<NodeId> parent(static_cast<std::size_t>(size()), kNoNode);
  std::vector<char> seen(static_cast<std::size_t>(size()), 0);
  std::queue<NodeId> q;
  seen[src] = 1;
  q.push(src);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (NodeId w : adj_[v])
      if (!seen[w]) {
        seen[w] = 1;
        parent[w] = v;
        q.push(w);
      }
  }
  for (char s : seen)
    if (!s) throw std::invalid_argument("Graph::bfs_tree: graph disconnected");
  return Tree(std::move(parent));
}

}  // namespace treelab::tree
