// Ground-truth nearest-common-ancestor / distance index (Euler tour +
// sparse table). This is *not* a labeling scheme — it sees the whole tree —
// and is used as the oracle that every labeling scheme is tested against,
// and internally by label builders that need d(u, v) during construction.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/tree.hpp"

namespace treelab::tree {

class NcaIndex {
 public:
  explicit NcaIndex(const Tree& t);

  [[nodiscard]] const Tree& tree() const noexcept { return *t_; }

  /// Nearest common ancestor of u and v. O(1).
  [[nodiscard]] NodeId nca(NodeId u, NodeId v) const noexcept;

  /// Weighted distance between u and v. O(1).
  [[nodiscard]] std::uint64_t distance(NodeId u, NodeId v) const noexcept {
    const NodeId w = nca(u, v);
    return t_->root_distance(u) + t_->root_distance(v) -
           2 * t_->root_distance(w);
  }

  /// Unweighted (hop) distance between u and v. O(1).
  [[nodiscard]] std::int64_t hop_distance(NodeId u, NodeId v) const noexcept {
    const NodeId w = nca(u, v);
    return static_cast<std::int64_t>(t_->depth(u)) + t_->depth(v) -
           2 * static_cast<std::int64_t>(t_->depth(w));
  }

  /// True if a is an ancestor of (or equal to) d.
  [[nodiscard]] bool is_ancestor(NodeId a, NodeId d) const noexcept {
    return nca(a, d) == a;
  }

 private:
  const Tree* t_;
  std::vector<std::int32_t> first_;   // first Euler occurrence of each node
  std::vector<NodeId> euler_;         // Euler tour nodes
  std::vector<std::int32_t> log2_;    // floor(log2(i)) table
  std::vector<std::vector<std::int32_t>> table_;  // sparse table over tour
                                                  // positions (min depth)
};

}  // namespace treelab::tree
