// ForestIndex — the local serving half of the paper's deployment story.
// Labels are computed once centrally and shipped (LabelStore); a node that
// received label files for many trees answers distance queries from labels
// alone. ForestIndex is that node's machinery:
//
//   * many labeled trees behind one API, heterogeneous schemes (AnyScheme
//     dispatches on the scheme tag in each LabelStore header),
//   * zero-copy label storage where possible (LabelStore::open_mapped /
//     bits::MappedArena — a mappable file costs one mmap, not a copy),
//   * trees sharded by id across S shards, each shard owning a
//     byte-bounded LRU cache of attached (pre-parsed) labels, so hot
//     labels are parsed once and queried many times,
//   * a batch front end: query_batch() partitions requests by shard and
//     fans the shards out across threads (util/parallel), filling one
//     result slot per request — deterministic for any thread count. Both
//     tree and node ids are validated in a serial pre-pass, so a bad
//     request always reports in request order, before any parallel work,
//   * hot swap: update() replaces one tree's labeling in place — an
//     epoch-bumping shared_ptr swap of the immutable TreeEntry plus
//     invalidation of that tree's attached-label cache keys — safe under
//     concurrent query()/query_batch(). This is how a serving node takes an
//     IncrementalRelabeler's refreshed labels without downtime.
//   * delta shipping: apply_delta() patches one tree's labeling from a
//     LabelStore v3 delta instead of a whole file — the new entry is built
//     copy-on-write next to the live one (the mmap'ed base is never
//     written), swapped under the same epoch'd slot machinery, and only the
//     cached attachments whose labels actually changed are invalidated
//     (LruCache::erase_if over the dirty/dropped id set); clean hot labels
//     stay attached across the swap.
//   * stable external ids: node ids in requests are *external* ids — the
//     ids clients learned when the tree was last fully loaded. A delta that
//     carries a compaction (or an update() given compact()'s remap) shifts
//     the internal label indices; ForestIndex composes the remap into a
//     per-tree external→internal map so surviving nodes keep answering
//     under their original ids and deleted/compacted-away ids fail
//     deterministically (std::out_of_range "NotFound") instead of silently
//     answering for whatever node now occupies the slot.
//
//   * graceful degradation: every tree carries a health state (live /
//     stale / quarantined). Transient I/O failures (util::IoError) in the
//     file-fed update paths are retried with exponential backoff; if they
//     persist the tree is marked *stale* — it keeps serving its last good
//     labeling. Integrity failures (corrupt files, deltas that do not
//     chain) are never retried; after ForestOptions::quarantine_after
//     consecutive ones the tree is *quarantined*: its queries fail with a
//     typed error (QuarantinedError from the throwing API, kQuarantined
//     from query_batch_checked()) while every other tree keeps serving.
//     A subsequent clean update()/apply_delta() is the repair path — it
//     restores the tree to live. cache_stats() exposes the retry /
//     failure / health counters.
//
// Thread-safety: query(), query_batch(), update(), apply_delta(),
// cache_stats() and the per-tree accessors may all run concurrently.
// add_file()/add() grow the tree table and must not race with anything —
// build the initial index first, then serve (updates of *existing* trees
// are the supported mutation on a live index).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "bits/mapped_arena.hpp"
#include "core/label_store.hpp"
#include "obs/metrics.hpp"
#include "serve/any_scheme.hpp"
#include "serve/lru_cache.hpp"
#include "tree/tree.hpp"
#include "util/thread_annotations.hpp"

namespace treelab::serve {

using TreeId = std::uint32_t;

/// One distance query against tree `tree` of the forest.
struct Request {
  TreeId tree = 0;
  tree::NodeId u = 0;
  tree::NodeId v = 0;
};

/// Per-tree serving health. Stale and quarantined trees differ in what
/// they still answer: a stale tree serves its last good labeling (only
/// its *refresh* is failing); a quarantined tree refuses queries with a
/// typed error until repaired by a clean update/delta.
enum class TreeHealth : std::uint8_t {
  kLive = 0,
  kStale = 1,
  kQuarantined = 2,
};

/// Typed per-query outcome for the non-throwing batch API.
enum class QueryStatus : std::uint8_t {
  kOk = 0,
  kBadTree = 1,      ///< tree id out of range
  kBadNode = 2,      ///< node id out of range / deleted / compacted away
  kQuarantined = 3,  ///< tree is quarantined (rest of the forest serves)
};

struct QueryResult {
  Dist dist;  ///< valid only when status == kOk
  QueryStatus status = QueryStatus::kOk;
};

/// Thrown by the throwing query API for a quarantined tree.
class QuarantinedError : public std::runtime_error {
 public:
  explicit QuarantinedError(TreeId tree)
      : std::runtime_error("ForestIndex: tree " + std::to_string(tree) +
                           " is quarantined"),
        tree_(tree) {}
  [[nodiscard]] TreeId tree() const noexcept { return tree_; }

 private:
  TreeId tree_;
};

struct ForestOptions {
  /// Shard count (trees are assigned round-robin by id). 0 = one shard per
  /// hardware thread.
  std::size_t shards = 0;
  /// Attached-label cache budget per shard, in (estimated) bytes.
  std::size_t cache_bytes_per_shard = std::size_t{8} << 20;
  /// Threads for query_batch fan-out: at most one per shard is useful.
  /// 0 = TREELAB_THREADS / hardware default.
  int threads = 0;
  /// Transient (util::IoError) failures in update_file()/apply_delta_file()
  /// are retried this many times beyond the first attempt...
  int retries = 2;
  /// ...sleeping this long before the first retry, doubling each time.
  int retry_backoff_ms = 1;
  /// Consecutive integrity failures (corrupt file/delta, broken epoch
  /// chain) on one tree before it is quarantined. <= 0 quarantines on the
  /// first integrity failure.
  int quarantine_after = 3;
  /// Batch query planner: stable-sort each shard's requests by tree before
  /// fan-out (one entry lookup and one contiguous attachment/label walk per
  /// tree group) and software-prefetch mapped label words a few queries
  /// ahead. Off = requests keep arrival order within their shard (the
  /// pre-planner behavior) — the A/B lever the bench rows and the CI
  /// planner-on >= planner-off assert use. Answers and error reporting are
  /// identical either way (pinned by tests).
  bool planner = true;
};

class ForestIndex {
 public:
  explicit ForestIndex(ForestOptions opt = {});

  /// Registers the labeling stored at `path` (any LabelStore version;
  /// mappable containers are mmap'ed). Returns the new tree's id — ids are
  /// dense, assigned in add order. Throws what LabelStore::open_mapped and
  /// AnyScheme::make throw on malformed files or unknown schemes.
  TreeId add_file(const std::string& path);

  /// Registers an in-memory labeling (e.g. freshly built, or from a
  /// non-file stream via LabelStore::load_arena).
  TreeId add(core::LabelStore::LoadedArena loaded);

  /// Replaces tree `tree`'s labeling with `loaded` (same or different
  /// scheme; typically a grown tree's refreshed labels). The swap is atomic
  /// — concurrent queries see either the old or the new labeling, never a
  /// mix — and the tree's attached-label cache entries are invalidated, so
  /// no stale attachment outlives the update. Resets the tree's external
  /// id space to the new labeling's (dense) ids. Bumps the tree's epoch and
  /// returns it. Throws std::out_of_range on a bad id, and what
  /// AnyScheme::make throws on a bad header.
  std::uint64_t update(TreeId tree, core::LabelStore::LoadedArena loaded);

  /// update() that *preserves* the tree's external id space across an id
  /// compaction: `remap` is IncrementalRelabeler::compact()'s old-id →
  /// new-id map (kNoNode = dropped), sized to the tree's current internal
  /// label count. External ids keep answering for the nodes they always
  /// named; remapped-away ids fail queries with std::out_of_range from then
  /// on (deterministic NotFound, never the wrong node's answer). Labels the
  /// remap does not reach (appended after the compaction) get fresh
  /// external ids at the top of the id space. Throws std::invalid_argument
  /// if remap's size does not match the current labeling.
  std::uint64_t update(TreeId tree, core::LabelStore::LoadedArena loaded,
                       std::span<const tree::NodeId> remap);

  /// update() that pins the entry's epoch-chain value instead of seeding it
  /// from the arena's lens_hash. This is the snapshot hand-off of the
  /// replication protocol: a leader's journal *preserves* its chain across
  /// checkpoint folds, so a follower installing a full snapshot must adopt
  /// the leader's chain verbatim — re-deriving it from the bytes would
  /// diverge after the first fold and reject every subsequent delta.
  std::uint64_t update(TreeId tree, core::LabelStore::LoadedArena loaded,
                       std::uint64_t chain);

  /// update() from a label file (mappable containers are mmap'ed).
  std::uint64_t update_file(TreeId tree, const std::string& path);

  /// Patches tree `tree`'s labeling with a v3 delta (typically shipped by
  /// IncrementalRelabeler::ship_delta): validates that the delta targets
  /// the live labeling (count + length-directory hash), materializes the
  /// patched arena copy-on-write, composes the delta's dropped runs into
  /// the tree's external-id map, and hot-swaps the entry under the epoch'd
  /// slot machinery. Only the cached attachments whose labels changed —
  /// dirty ids and dropped/shifted ids — are invalidated; clean cached
  /// attachments survive. The delta's scheme/params must match the tree's.
  /// Returns the new epoch. Throws std::out_of_range on a bad id,
  /// std::invalid_argument on a scheme mismatch, std::runtime_error when
  /// the delta does not match the live labeling or is corrupt.
  std::uint64_t apply_delta(TreeId tree, const core::LabelDelta& delta);

  /// apply_delta() from a v3 delta file.
  std::uint64_t apply_delta_file(TreeId tree, const std::string& path);

  [[nodiscard]] std::size_t tree_count() const noexcept {
    return trees_.size();
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  /// The tree's current scheme handle (a cheap shared handle — safe to keep
  /// across a concurrent update; it dispatches for the labeling it came
  /// from).
  [[nodiscard]] AnyScheme scheme(TreeId tree) const;
  [[nodiscard]] std::size_t label_count(TreeId tree) const;
  /// Upper bound of the tree's external node-id space. Equal to
  /// label_count() until a compaction flows through update(remap) /
  /// apply_delta(); after that it only grows — dropped external ids stay
  /// reserved (and fail deterministically) rather than being reused.
  [[nodiscard]] std::size_t id_bound(TreeId tree) const;
  /// True when the tree's labels are served zero-copy from an mmap'ed file.
  [[nodiscard]] bool mapped(TreeId tree) const;
  /// How many times update() replaced this tree's labeling (0 = original).
  [[nodiscard]] std::uint64_t update_epoch(TreeId tree) const;

  /// Epoch-chain value the tree's live labeling sits at (what the next
  /// delta's base_chain must be — and what a follower reports to a leader
  /// when subscribing). Throws std::out_of_range on a bad id.
  [[nodiscard]] std::uint64_t chain(TreeId tree) const;

  /// Owned copy of the tree's live labeling in hand-off form. This is the
  /// leader side of snapshot catch-up (and the convergence probe of the
  /// replication tests): the copy is taken from one atomic entry load, so
  /// it is internally consistent under concurrent updates. O(total bits).
  [[nodiscard]] core::LabelStore::LoadedArena snapshot_labels(
      TreeId tree) const;

  /// The thread fan-out query_batch()/query_batch_checked() will use for a
  /// batch of `batch` requests: the configured thread count clamped to the
  /// hardware, the shard count, and the batch size (one thread per
  /// kFanoutBatchPerThread requests, floor 1). A fan-out of 1 runs the
  /// whole batch serially inline — no pool, no synchronization.
  [[nodiscard]] int planned_fanout(std::size_t batch) const noexcept;

  /// Below this many requests per thread, fan-out overhead beats the win.
  static constexpr std::size_t kFanoutBatchPerThread = 256;

  /// The planner prefetches the mapped label words of the request this many
  /// slots ahead inside each tree group — far enough to cover a memory
  /// fetch, near enough to stay inside the group's working set.
  static constexpr std::size_t kPrefetchAhead = 4;

  /// The batch path records every this-many-th per-query latency into
  /// `serve.query.latency_ns` (sampling keeps the clock off the per-query
  /// hot path; the single-query API still records exactly).
  static constexpr std::size_t kLatencySampleEvery = 64;

  /// The tree's current health. Throws std::out_of_range on a bad id.
  [[nodiscard]] TreeHealth health(TreeId tree) const;

  /// One query through the shard's attached-label cache. Throws
  /// std::out_of_range on a bad tree or node id, QuarantinedError on a
  /// quarantined tree.
  [[nodiscard]] Dist query(const Request& r) const;

  /// Answers every request, one result per request in request order.
  /// Requests are grouped by shard (hence by tree), each group attaches its
  /// hot labels once via the shard cache, and shards are fanned out across
  /// `opt.threads`. Tree AND node ids are validated in a serial pre-pass:
  /// a bad request throws std::out_of_range deterministically — the first
  /// offender in request order — before any parallel work starts. The
  /// batch then answers from the entries it validated (one labeling per
  /// tree for the whole batch), so an update() landing mid-batch can never
  /// fail requests the pre-pass accepted — those answers come from the
  /// pre-update labeling, uncached.
  [[nodiscard]] std::vector<Dist> query_batch(
      std::span<const Request> reqs) const;

  /// Non-throwing query_batch: every request gets a typed QueryStatus in
  /// request order instead of the first offender aborting the batch. Bad
  /// tree ids, bad/tombstoned node ids and quarantined trees are reported
  /// per-request; everything else is answered exactly like query_batch()
  /// (same snapshotting, sharding and caching rules). This is the front
  /// end a network server should call — one poisoned tree (or one bad
  /// client id) must not take down a batch that also touches healthy
  /// trees.
  [[nodiscard]] std::vector<QueryResult> query_batch_checked(
      std::span<const Request> reqs) const;

  struct CacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
    std::size_t invalidated = 0;  ///< attached labels dropped by update()
    // Degradation counters (process-lifetime totals unless noted).
    std::size_t retries = 0;             ///< transient-failure retries taken
    std::size_t transient_failures = 0;  ///< IoError/alloc failures observed
    std::size_t integrity_failures = 0;  ///< corrupt files/deltas, bad chains
    std::size_t quarantine_events = 0;   ///< live/stale -> quarantined edges
    std::size_t stale = 0;               ///< trees currently stale
    std::size_t quarantined = 0;         ///< trees currently quarantined
  };
  /// Aggregated over all shards. This struct is now a *view* of the same
  /// counters the metrics registry exposes: the registry's `serve.cache.*`
  /// / `serve.trees.*` / `serve.degradation.*` callbacks evaluate this
  /// very aggregation at snapshot time (per instance, latest-registered
  /// index wins), so nothing is double-counted and the struct API keeps
  /// its per-instance semantics for tests.
  [[nodiscard]] CacheStats cache_stats() const;

 private:
  struct TreeEntry {
    AnyScheme scheme;
    std::string scheme_name;  ///< LabelStore header tag (delta validation)
    std::string params;
    bits::MappedArena labels;
    std::uint64_t epoch = 0;
    /// Epoch-chain value this entry sits at: lens_hash of the arena for a
    /// fully loaded base, the applied delta's new_chain afterwards. A delta
    /// must present this as its base_chain — which rejects skipped or
    /// reordered deltas even when label lengths happen to collide.
    std::uint64_t chain = 0;
    /// External-id → internal label index; empty = identity. kNoNode marks
    /// an id whose node was deleted/compacted away (deterministic NotFound).
    std::vector<tree::NodeId> ext_to_int;

    [[nodiscard]] std::size_t ext_size() const noexcept {
      return ext_to_int.empty() ? labels.size() : ext_to_int.size();
    }
  };
  using EntryPtr = std::shared_ptr<const TreeEntry>;
  /// One tree: the epoch'd entry slot plus its health word. Health lives
  /// beside the slot (not inside TreeEntry) so quarantining or repairing a
  /// tree does not republish its labeling.
  struct Slot {
    explicit Slot(EntryPtr e) : entry(std::move(e)) {}
    std::atomic<EntryPtr> entry;
    std::atomic<std::uint8_t> health{
        static_cast<std::uint8_t>(TreeHealth::kLive)};
    /// Consecutive integrity failures; reset by any clean swap.
    std::atomic<std::uint32_t> integrity_fails{0};
  };
  struct Shard {
    explicit Shard(std::size_t capacity_bytes) : cache(capacity_bytes) {}
    mutable util::Mutex mu;
    LruCache<std::uint64_t, AnyScheme::AttachedPtr> cache
        TREELAB_GUARDED_BY(mu);
    std::size_t invalidated TREELAB_GUARDED_BY(mu) = 0;
  };

  /// The tree's current entry (one atomic load). Throws std::out_of_range
  /// on a bad id.
  [[nodiscard]] EntryPtr entry(TreeId tree) const;
  [[nodiscard]] std::size_t shard_of(TreeId tree) const noexcept {
    return tree % shards_.size();
  }
  TreeId add_entry(std::string_view scheme, std::string_view params,
                   bits::MappedArena labels);
  /// Builds a fresh (still mutable) entry; the chain starts at the arena's
  /// lens_hash — apply_delta overrides it with the delta's new_chain.
  [[nodiscard]] static std::shared_ptr<TreeEntry> make_entry(
      std::string_view scheme, std::string_view params,
      bits::MappedArena labels, std::uint64_t epoch,
      std::vector<tree::NodeId> ext_map);
  /// External → internal id, validating range, tombstones (zero-length
  /// labels) and compacted-away ids. Throws std::out_of_range.
  [[nodiscard]] static tree::NodeId resolve(const TreeEntry& e,
                                            tree::NodeId ext);
  /// The next entry's ext_to_int after replacing `old`'s labeling with one
  /// of `new_int_count` labels under `remap` (old-internal → new-internal,
  /// kNoNode = dropped). New internal ids the remap does not reach get
  /// fresh external ids appended in internal order. When `dead_or_dirty`
  /// is given, collects the external ids whose cached attachments must go:
  /// ids that died plus ids whose new internal index is flagged in
  /// `dirty_int`.
  [[nodiscard]] static std::vector<tree::NodeId> compose_ext_map(
      const TreeEntry& old, std::span<const tree::NodeId> remap,
      std::size_t new_int_count, const std::vector<std::uint8_t>* dirty_int,
      std::vector<tree::NodeId>* dead_or_dirty);
  /// Shared body of update()/update_file(): swap the slot and invalidate
  /// the tree's cached attachments, both under the shard lock. `remap`
  /// non-null composes the external-id map (see update(remap)); null
  /// resets it. `chain` non-null pins the entry's chain (snapshot
  /// hand-off); null seeds it from the arena's lens_hash.
  std::uint64_t swap_entry(TreeId tree, std::string_view scheme,
                           std::string_view params, bits::MappedArena labels,
                           const std::vector<tree::NodeId>* remap,
                           const std::uint64_t* chain = nullptr);
  /// The batch planner's output: accepted request indices grouped
  /// contiguously by (shard, tree) — sorted by tree within each shard when
  /// opt_.planner is on, arrival order otherwise — with node ids resolved
  /// to internal label indices exactly once. `snap` owns one entry
  /// snapshot per referenced tree (the "one labeling per tree per batch"
  /// guarantee); groups point into it.
  struct BatchPlan {
    struct Group {
      std::uint32_t begin = 0;  ///< [begin, end) into `order`
      std::uint32_t end = 0;
      TreeId tree = 0;
      const TreeEntry* entry = nullptr;  ///< owned by `snap`
    };
    std::vector<std::uint32_t> order;  ///< accepted request indices
    std::vector<tree::NodeId> iu, iv;  ///< resolved ids, indexed by request
    std::vector<Group> groups;
    std::vector<std::uint32_t> shard_groups;  ///< per-shard range in groups
    std::vector<EntryPtr> snap;               ///< keeps group entries alive
  };
  /// Shared planning pass of query_batch()/query_batch_checked(): validate
  /// every request, group by (shard, tree), load one entry snapshot per
  /// tree, resolve node ids once. `results` null = throwing mode: the
  /// plan throws the FIRST offender in request order (exact pinned
  /// exceptions), before any query work. `results` non-null = checked
  /// mode: offenders get their typed status and drop out of the plan.
  [[nodiscard]] BatchPlan plan_batch(std::span<const Request> reqs,
                                     QueryResult* results) const;
  /// Fans a plan out across shards (one lock per shard, groups walked
  /// contiguously, prefetch ahead) and hands each answer to
  /// `sink(request_index, dist)` — results land in request order because
  /// the sink writes out[i].
  template <typename Sink>
  void execute_plan(const BatchPlan& plan, std::span<const Request> reqs,
                    Sink&& sink) const;
  /// query_entry_locked for ids already resolved by the planner.
  [[nodiscard]] Dist query_resolved_locked(Shard& sh, TreeId tree,
                                           const Request& r, tree::NodeId iu,
                                           tree::NodeId iv, const TreeEntry& e)
      const TREELAB_REQUIRES(sh.mu);
  [[nodiscard]] Dist query_resolved_uncached(tree::NodeId iu, tree::NodeId iv,
                                             const TreeEntry& e) const;

  [[nodiscard]] Dist query_entry_locked(Shard& sh, const Request& r,
                                        const TreeEntry& e) const
      TREELAB_REQUIRES(sh.mu);
  /// One query against the *current* entry of r.tree (re-loaded under the
  /// shard lock, so cached attachments always match the live labeling).
  [[nodiscard]] Dist query_locked(Shard& sh, const Request& r) const
      TREELAB_REQUIRES(sh.mu);

  [[nodiscard]] Slot& slot(TreeId tree) const;
  [[nodiscard]] static TreeHealth health_of(const Slot& s) noexcept {
    return static_cast<TreeHealth>(s.health.load(std::memory_order_acquire));
  }
  /// A clean swap landed: the tree is (back to) live, streaks reset.
  void note_success(Slot& s) const noexcept;
  /// Corrupt input / broken chain: bump the streak, maybe quarantine.
  void note_integrity_failure(Slot& s) noexcept;
  /// Persistent transient failure: live -> stale (a quarantined tree
  /// stays quarantined — stale would understate it).
  void note_stale(Slot& s) noexcept;
  /// open_mapped with the transient-retry policy (see ForestOptions).
  [[nodiscard]] core::LabelStore::MappedLoaded open_with_retries(
      Slot& s, const std::string& path);
  /// apply_delta() minus the health accounting (the optimistic
  /// validate-patch-swap loop).
  std::uint64_t apply_delta_impl(TreeId tree, const core::LabelDelta& d);

  /// Registers this instance's `serve.*` callback metrics (cache, tree
  /// health, degradation counters) with the global registry.
  void register_metrics();

  ForestOptions opt_;
  // One slot per tree: queries load slot.entry, update() stores it. The
  // vector itself only grows in the (serialized) build phase.
  std::vector<std::unique_ptr<Slot>> trees_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // RAII registrations; removed (and the `this` captures dropped) on
  // destruction, so short-lived indexes in tests never leave stale
  // callbacks behind.
  std::vector<obs::CallbackGuard> obs_guards_;
  // Degradation counters (see CacheStats).
  mutable std::atomic<std::size_t> retries_{0};
  mutable std::atomic<std::size_t> transient_failures_{0};
  mutable std::atomic<std::size_t> integrity_failures_{0};
  mutable std::atomic<std::size_t> quarantine_events_{0};
};

}  // namespace treelab::serve
