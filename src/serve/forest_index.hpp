// ForestIndex — the local serving half of the paper's deployment story.
// Labels are computed once centrally and shipped (LabelStore); a node that
// received label files for many trees answers distance queries from labels
// alone. ForestIndex is that node's machinery:
//
//   * many labeled trees behind one API, heterogeneous schemes (AnyScheme
//     dispatches on the scheme tag in each LabelStore header),
//   * zero-copy label storage where possible (LabelStore::open_mapped /
//     bits::MappedArena — a mappable file costs one mmap, not a copy),
//   * trees sharded by id across S shards, each shard owning a
//     byte-bounded LRU cache of attached (pre-parsed) labels, so hot
//     labels are parsed once and queried many times,
//   * a batch front end: query_batch() partitions requests by shard and
//     fans the shards out across threads (util/parallel), filling one
//     result slot per request — deterministic for any thread count.
//
// add_file()/add() are not thread-safe; build the index first, then serve.
// query()/query_batch() are thread-safe (per-shard locking) and may run
// concurrently with each other.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "bits/mapped_arena.hpp"
#include "core/label_store.hpp"
#include "serve/any_scheme.hpp"
#include "serve/lru_cache.hpp"
#include "tree/tree.hpp"

namespace treelab::serve {

using TreeId = std::uint32_t;

/// One distance query against tree `tree` of the forest.
struct Request {
  TreeId tree = 0;
  tree::NodeId u = 0;
  tree::NodeId v = 0;
};

struct ForestOptions {
  /// Shard count (trees are assigned round-robin by id). 0 = one shard per
  /// hardware thread.
  std::size_t shards = 0;
  /// Attached-label cache budget per shard, in (estimated) bytes.
  std::size_t cache_bytes_per_shard = std::size_t{8} << 20;
  /// Threads for query_batch fan-out: at most one per shard is useful.
  /// 0 = TREELAB_THREADS / hardware default.
  int threads = 0;
};

class ForestIndex {
 public:
  explicit ForestIndex(ForestOptions opt = {});

  /// Registers the labeling stored at `path` (any LabelStore version;
  /// mappable containers are mmap'ed). Returns the new tree's id — ids are
  /// dense, assigned in add order. Throws what LabelStore::open_mapped and
  /// AnyScheme::make throw on malformed files or unknown schemes.
  TreeId add_file(const std::string& path);

  /// Registers an in-memory labeling (e.g. freshly built, or from a
  /// non-file stream via LabelStore::load_arena).
  TreeId add(core::LabelStore::LoadedArena loaded);

  [[nodiscard]] std::size_t tree_count() const noexcept {
    return trees_.size();
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const AnyScheme& scheme(TreeId tree) const {
    return entry(tree).scheme;
  }
  [[nodiscard]] std::size_t label_count(TreeId tree) const {
    return entry(tree).labels.size();
  }
  /// True when the tree's labels are served zero-copy from an mmap'ed file.
  [[nodiscard]] bool mapped(TreeId tree) const {
    return entry(tree).labels.mapped();
  }

  /// One query through the shard's attached-label cache. Throws
  /// std::out_of_range on a bad tree or node id.
  [[nodiscard]] Dist query(const Request& r) const;

  /// Answers every request, one result per request in request order.
  /// Requests are grouped by shard (hence by tree), each group attaches its
  /// hot labels once via the shard cache, and shards are fanned out across
  /// `opt.threads`. Throws std::out_of_range on a bad tree or node id.
  [[nodiscard]] std::vector<Dist> query_batch(
      std::span<const Request> reqs) const;

  struct CacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };
  /// Aggregated over all shards.
  [[nodiscard]] CacheStats cache_stats() const;

 private:
  struct TreeEntry {
    AnyScheme scheme;
    bits::MappedArena labels;
  };
  struct Shard {
    explicit Shard(std::size_t capacity_bytes) : cache(capacity_bytes) {}
    mutable std::mutex mu;
    LruCache<std::uint64_t, AnyScheme::AttachedPtr> cache;
  };

  [[nodiscard]] const TreeEntry& entry(TreeId tree) const;
  [[nodiscard]] std::size_t shard_of(TreeId tree) const noexcept {
    return tree % shards_.size();
  }
  TreeId add_entry(std::string_view scheme, std::string_view params,
                   bits::MappedArena labels);
  /// Cache lookup-or-attach; the shard's mutex must be held.
  [[nodiscard]] AnyScheme::AttachedPtr attached_locked(Shard& sh, TreeId tree,
                                                       tree::NodeId u,
                                                       const TreeEntry& e)
      const;
  [[nodiscard]] Dist query_locked(Shard& sh, const Request& r) const;

  ForestOptions opt_;
  std::vector<std::unique_ptr<const TreeEntry>> trees_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace treelab::serve
