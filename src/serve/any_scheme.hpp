// AnyScheme — type-erased dispatch over the five distance labeling schemes,
// keyed by the scheme tag a LabelStore header carries. The serving layer
// (ForestIndex) holds a heterogeneous forest: one tree's labels may be FGNW,
// the next tree's k-distance; AnyScheme lets it store one handle per tree
// and route raw and attached queries without knowing the concrete scheme.
//
// Scheme-wide constants (k, eps) are parsed out of the LabelStore params
// string once, at make() time, and baked into the handle — exactly the
// "labels plus scheme-wide constants" query model every scheme defines.
// Attached labels are produced and consumed through the same handle; mixing
// attached labels across scheme *kinds* throws (mixing across two handles of
// the same kind but different trees is undetectable and yields garbage, as
// with the concrete schemes themselves).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "bits/bitvec.hpp"

namespace treelab::serve {

/// A scheme-agnostic query answer. Exact and approximate schemes always
/// report a value (`within` true); the k-distance scheme reports
/// within == false when d(u,v) > k, in which case `value` is meaningless.
struct Dist {
  bool within = true;
  std::uint64_t value = 0;

  friend bool operator==(const Dist&, const Dist&) = default;
};

class AnyScheme {
 public:
  /// A type-erased attached (pre-parsed) label, produced by attach().
  class Attached {
   public:
    virtual ~Attached() = default;
    /// Estimated resident bytes, for byte-bounded cache accounting: the
    /// holder's own footprint plus a fixed expansion factor over the raw
    /// label bytes (attached forms decode length-proportional arrays).
    [[nodiscard]] virtual std::size_t cost_bytes() const noexcept = 0;
    /// Opaque identity of the scheme kind that produced this attached
    /// form. query() compares it against its own kind to reject
    /// cross-scheme mixing — one pointer compare where a dynamic_cast per
    /// label used to sit on the serving hot path.
    [[nodiscard]] const void* scheme_key() const noexcept { return key_; }

   protected:
    explicit Attached(const void* scheme_key) noexcept : key_(scheme_key) {}

   private:
    const void* key_;
  };
  using AttachedPtr = std::shared_ptr<const Attached>;

  class Impl;

  AnyScheme() = default;

  /// Builds a dispatcher from a LabelStore header. Tags: "fgnw", "alstrup",
  /// "peleg", "kdist"/"kdistance" (params must carry "k=<n>"), "approx"
  /// (params must carry "inv_eps=<n>" or "eps=<x>", 0 < eps <= 1). Throws
  /// std::invalid_argument on an unknown tag or missing/bad params.
  [[nodiscard]] static AnyScheme make(std::string_view scheme,
                                      std::string_view params);

  /// The scheme tag this dispatcher was built from. Throws std::logic_error
  /// on an empty (default-constructed or moved-from) handle, as do the
  /// query/attach entry points below.
  [[nodiscard]] const std::string& name() const;

  [[nodiscard]] explicit operator bool() const noexcept {
    return impl_ != nullptr;
  }

  /// Query from raw labels (parses both labels each call).
  [[nodiscard]] Dist query(bits::BitSpan lu, bits::BitSpan lv) const;

  /// One-time parse for repeated queries against the same label.
  [[nodiscard]] AttachedPtr attach(bits::BitSpan l) const;

  /// Same result as the raw overload, without re-parsing either label.
  /// Throws std::invalid_argument if either label was attached by a
  /// different scheme kind.
  [[nodiscard]] Dist query(const Attached& lu, const Attached& lv) const;

 private:
  explicit AnyScheme(std::shared_ptr<const Impl> impl)
      : impl_(std::move(impl)) {}

  [[nodiscard]] const Impl& impl() const;

  std::shared_ptr<const Impl> impl_;
};

}  // namespace treelab::serve
