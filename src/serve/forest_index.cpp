#include "serve/forest_index.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/parallel.hpp"

namespace treelab::serve {

namespace {

std::uint64_t cache_key(TreeId tree, tree::NodeId u) noexcept {
  return (static_cast<std::uint64_t>(tree) << 32) |
         static_cast<std::uint32_t>(u);
}

}  // namespace

ForestIndex::ForestIndex(ForestOptions opt) : opt_(opt) {
  const std::size_t shards =
      opt_.shards > 0 ? opt_.shards
                      : static_cast<std::size_t>(util::thread_count());
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s)
    shards_.push_back(std::make_unique<Shard>(opt_.cache_bytes_per_shard));
}

const ForestIndex::TreeEntry& ForestIndex::entry(TreeId tree) const {
  if (tree >= trees_.size())
    throw std::out_of_range("ForestIndex: tree id out of range");
  return *trees_[tree];
}

TreeId ForestIndex::add_entry(std::string_view scheme, std::string_view params,
                              bits::MappedArena labels) {
  auto e = std::make_unique<TreeEntry>();
  e->scheme = AnyScheme::make(scheme, params);
  e->labels = std::move(labels);
  trees_.push_back(std::move(e));
  return static_cast<TreeId>(trees_.size() - 1);
}

TreeId ForestIndex::add_file(const std::string& path) {
  auto loaded = core::LabelStore::open_mapped(path);
  return add_entry(loaded.scheme, loaded.params, std::move(loaded.labels));
}

TreeId ForestIndex::add(core::LabelStore::LoadedArena loaded) {
  return add_entry(loaded.scheme, loaded.params,
                   bits::MappedArena::adopt(std::move(loaded.labels)));
}

AnyScheme::AttachedPtr ForestIndex::attached_locked(Shard& sh, TreeId tree,
                                                    tree::NodeId u,
                                                    const TreeEntry& e) const {
  const std::uint64_t key = cache_key(tree, u);
  if (AnyScheme::AttachedPtr* hit = sh.cache.get(key)) return *hit;
  AnyScheme::AttachedPtr att = e.scheme.attach(e.labels.view(
      static_cast<std::size_t>(u)));
  sh.cache.put(key, att, att->cost_bytes());
  return att;
}

Dist ForestIndex::query_locked(Shard& sh, const Request& r) const {
  const TreeEntry& e = *trees_[r.tree];
  const auto n = static_cast<std::size_t>(e.labels.size());
  if (r.u < 0 || r.v < 0 || static_cast<std::size_t>(r.u) >= n ||
      static_cast<std::size_t>(r.v) >= n)
    throw std::out_of_range("ForestIndex: node id out of range");
  const AnyScheme::AttachedPtr au = attached_locked(sh, r.tree, r.u, e);
  const AnyScheme::AttachedPtr av = attached_locked(sh, r.tree, r.v, e);
  return e.scheme.query(*au, *av);
}

Dist ForestIndex::query(const Request& r) const {
  (void)entry(r.tree);  // range check before taking the shard lock
  Shard& sh = *shards_[shard_of(r.tree)];
  const std::lock_guard<std::mutex> lock(sh.mu);
  return query_locked(sh, r);
}

std::vector<Dist> ForestIndex::query_batch(
    std::span<const Request> reqs) const {
  std::vector<Dist> out(reqs.size());
  // Partition request indices by shard; within a shard, sort by tree so one
  // tree's arena (and its cached attachments) is walked contiguously.
  std::vector<std::vector<std::uint32_t>> by_shard(shards_.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    (void)entry(reqs[i].tree);  // validate before the parallel section
    by_shard[shard_of(reqs[i].tree)].push_back(
        static_cast<std::uint32_t>(i));
  }
  util::parallel_for_chunks(
      shards_.size(), shards_.size(), util::resolve_threads(opt_.threads),
      [&](std::size_t s, std::size_t, std::size_t) {
        std::vector<std::uint32_t>& idxs = by_shard[s];
        if (idxs.empty()) return;
        std::stable_sort(idxs.begin(), idxs.end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                           return reqs[a].tree < reqs[b].tree;
                         });
        Shard& sh = *shards_[s];
        const std::lock_guard<std::mutex> lock(sh.mu);
        for (const std::uint32_t i : idxs) out[i] = query_locked(sh, reqs[i]);
      });
  return out;
}

ForestIndex::CacheStats ForestIndex::cache_stats() const {
  CacheStats st;
  for (const auto& sh : shards_) {
    const std::lock_guard<std::mutex> lock(sh->mu);
    st.hits += sh->cache.hits();
    st.misses += sh->cache.misses();
    st.evictions += sh->cache.evictions();
    st.entries += sh->cache.size();
    st.bytes += sh->cache.bytes();
  }
  return st;
}

}  // namespace treelab::serve
