#include "serve/forest_index.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "bits/kernels.hpp"
#include "util/failpoint.hpp"
#include "util/fs.hpp"
#include "util/io_error.hpp"
#include "util/parallel.hpp"

namespace treelab::serve {

namespace {

std::uint64_t cache_key(TreeId tree, tree::NodeId u) noexcept {
  return (static_cast<std::uint64_t>(tree) << 32) |
         static_cast<std::uint32_t>(u);
}

void backoff_sleep(int base_ms, int attempt) {
  // base * 2^attempt, floored at something non-zero so the retry actually
  // yields the failing resource a moment.
  const int ms = std::max(1, base_ms) * (1 << std::min(attempt, 10));
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// Latency/size metrics shared by every ForestIndex in the process;
// references resolved once so the batch hot path never touches the
// registry map. The single-query path times every query exactly; the
// batch path records two clock reads per batch plus a *sampled* per-query
// latency (every kLatencySampleEvery-th answered request) into the same
// `serve.query.latency_ns` histogram, so the latency metric sees batch
// traffic without paying two clock reads per query.
struct ServeMetrics {
  obs::Histogram& query_ns;
  obs::Histogram& batch_ns;
  obs::Histogram& batch_size;
  obs::Counter& planner_batches;
  obs::Counter& planner_groups;
  static ServeMetrics& get() {
    static ServeMetrics m = [] {
      obs::Registry& r = obs::Registry::global();
      return ServeMetrics{r.histogram("serve.query.latency_ns"),
                          r.histogram("serve.batch.latency_ns"),
                          r.histogram("serve.batch.size"),
                          r.counter("serve.planner.batches"),
                          r.counter("serve.planner.groups")};
    }();
    return m;
  }
};

}  // namespace

ForestIndex::ForestIndex(ForestOptions opt) : opt_(opt) {
  const std::size_t shards =
      opt_.shards > 0 ? opt_.shards
                      : static_cast<std::size_t>(util::thread_count());
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s)
    shards_.push_back(std::make_unique<Shard>(opt_.cache_bytes_per_shard));
  register_metrics();
}

void ForestIndex::register_metrics() {
  if constexpr (!obs::kEnabled) return;
  obs::Registry& reg = obs::Registry::global();
  // Callback metrics cost nothing until somebody snapshots the registry;
  // each one re-aggregates cache_stats() then (stats-path cost only).
  const auto stat = [&](const char* name, auto field) {
    obs_guards_.push_back(reg.set_callback(
        name, [this, field] { return static_cast<std::uint64_t>(
                                  cache_stats().*field); }));
  };
  stat("serve.cache.hits", &CacheStats::hits);
  stat("serve.cache.misses", &CacheStats::misses);
  stat("serve.cache.evictions", &CacheStats::evictions);
  stat("serve.cache.entries", &CacheStats::entries);
  stat("serve.cache.bytes", &CacheStats::bytes);
  stat("serve.cache.invalidated", &CacheStats::invalidated);
  stat("serve.degradation.retries", &CacheStats::retries);
  stat("serve.degradation.transient_failures",
       &CacheStats::transient_failures);
  stat("serve.degradation.integrity_failures",
       &CacheStats::integrity_failures);
  stat("serve.degradation.quarantine_events",
       &CacheStats::quarantine_events);
  stat("serve.trees.stale", &CacheStats::stale);
  stat("serve.trees.quarantined", &CacheStats::quarantined);
  obs_guards_.push_back(reg.set_callback("serve.trees.total", [this] {
    return static_cast<std::uint64_t>(trees_.size());
  }));
  obs_guards_.push_back(
      reg.set_callback("serve.cache.byte_budget", [this] {
        return static_cast<std::uint64_t>(opt_.cache_bytes_per_shard *
                                          shards_.size());
      }));
}

ForestIndex::Slot& ForestIndex::slot(TreeId tree) const {
  if (tree >= trees_.size())
    throw std::out_of_range("ForestIndex: tree id out of range");
  return *trees_[tree];
}

ForestIndex::EntryPtr ForestIndex::entry(TreeId tree) const {
  return slot(tree).entry.load(std::memory_order_acquire);
}

TreeHealth ForestIndex::health(TreeId tree) const {
  return health_of(slot(tree));
}

void ForestIndex::note_success(Slot& s) const noexcept {
  s.integrity_fails.store(0, std::memory_order_relaxed);
  s.health.store(static_cast<std::uint8_t>(TreeHealth::kLive),
                 std::memory_order_release);
}

void ForestIndex::note_integrity_failure(Slot& s) noexcept {
  integrity_failures_.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t streak =
      s.integrity_fails.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto threshold =
      static_cast<std::uint32_t>(std::max(opt_.quarantine_after, 1));
  if (streak >= threshold &&
      health_of(s) != TreeHealth::kQuarantined) {
    s.health.store(static_cast<std::uint8_t>(TreeHealth::kQuarantined),
                   std::memory_order_release);
    quarantine_events_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ForestIndex::note_stale(Slot& s) noexcept {
  std::uint8_t live = static_cast<std::uint8_t>(TreeHealth::kLive);
  // Only live -> stale; a quarantined tree must not look merely stale.
  s.health.compare_exchange_strong(
      live, static_cast<std::uint8_t>(TreeHealth::kStale),
      std::memory_order_acq_rel);
}

core::LabelStore::MappedLoaded ForestIndex::open_with_retries(
    Slot& s, const std::string& path) {
  for (int attempt = 0;; ++attempt) {
    try {
      return core::LabelStore::open_mapped(path);
    } catch (const util::IoError&) {
      transient_failures_.fetch_add(1, std::memory_order_relaxed);
      if (attempt >= opt_.retries) {
        // Persistent: the tree keeps serving its last good labeling,
        // flagged stale so operators can see the refresh is failing.
        note_stale(s);
        throw;
      }
      retries_.fetch_add(1, std::memory_order_relaxed);
      backoff_sleep(opt_.retry_backoff_ms, attempt);
    }
  }
}

tree::NodeId ForestIndex::resolve(const TreeEntry& e, tree::NodeId ext) {
  if (ext < 0 || static_cast<std::size_t>(ext) >= e.ext_size())
    throw std::out_of_range("ForestIndex: node id out of range");
  const tree::NodeId i =
      e.ext_to_int.empty() ? ext
                           : e.ext_to_int[static_cast<std::size_t>(ext)];
  // kNoNode: the id was compacted away. Zero-length label: the id is a
  // tombstone a delta shipped (deleted/detached node). Both must fail the
  // same deterministic way — never answer for whatever occupies the slot.
  if (i == tree::kNoNode ||
      e.labels.label_bits(static_cast<std::size_t>(i)) == 0)
    throw std::out_of_range("ForestIndex: node id is no longer in the tree");
  return i;
}

std::shared_ptr<ForestIndex::TreeEntry> ForestIndex::make_entry(
    std::string_view scheme, std::string_view params, bits::MappedArena labels,
    std::uint64_t epoch, std::vector<tree::NodeId> ext_map) {
  auto e = std::make_shared<TreeEntry>();
  e->scheme = AnyScheme::make(scheme, params);
  e->scheme_name = scheme;
  e->params = params;
  e->labels = std::move(labels);
  e->epoch = epoch;
  e->chain = core::LabelStore::lens_hash(e->labels);
  e->ext_to_int = std::move(ext_map);
  return e;
}

TreeId ForestIndex::add_entry(std::string_view scheme, std::string_view params,
                              bits::MappedArena labels) {
  trees_.push_back(std::make_unique<Slot>(
      make_entry(scheme, params, std::move(labels), 0, {})));
  return static_cast<TreeId>(trees_.size() - 1);
}

TreeId ForestIndex::add_file(const std::string& path) {
  auto loaded = core::LabelStore::open_mapped(path);
  return add_entry(loaded.scheme, loaded.params, std::move(loaded.labels));
}

TreeId ForestIndex::add(core::LabelStore::LoadedArena loaded) {
  return add_entry(loaded.scheme, loaded.params,
                   bits::MappedArena::adopt(std::move(loaded.labels)));
}

std::vector<tree::NodeId> ForestIndex::compose_ext_map(
    const TreeEntry& old, std::span<const tree::NodeId> remap,
    std::size_t new_int_count, const std::vector<std::uint8_t>* dirty_int,
    std::vector<tree::NodeId>* dead_or_dirty) {
  const std::size_t ext_size = old.ext_size();
  std::vector<tree::NodeId> out(ext_size, tree::kNoNode);
  std::vector<std::uint8_t> covered(new_int_count, 0);
  bool identity = true;
  for (std::size_t e = 0; e < ext_size; ++e) {
    const tree::NodeId old_int =
        old.ext_to_int.empty() ? static_cast<tree::NodeId>(e)
                               : old.ext_to_int[e];
    tree::NodeId ni = tree::kNoNode;
    if (old_int != tree::kNoNode)
      ni = remap[static_cast<std::size_t>(old_int)];
    out[e] = ni;
    if (ni == tree::kNoNode) {
      identity = false;
      if (old_int != tree::kNoNode && dead_or_dirty != nullptr)
        dead_or_dirty->push_back(static_cast<tree::NodeId>(e));
      continue;
    }
    covered[static_cast<std::size_t>(ni)] = 1;
    if (ni != static_cast<tree::NodeId>(e)) identity = false;
    if (dirty_int != nullptr &&
        (*dirty_int)[static_cast<std::size_t>(ni)] != 0 &&
        dead_or_dirty != nullptr)
      dead_or_dirty->push_back(static_cast<tree::NodeId>(e));
  }
  // Labels the remap does not reach were appended after the compaction:
  // give them fresh external ids at the top of the space, in internal
  // order. (They cannot have cached attachments yet.) An append-only delta
  // keeps ext == int throughout, so the identity fast path survives the
  // common grow-only workload.
  for (std::size_t ni = 0; ni < new_int_count; ++ni)
    if (covered[ni] == 0) {
      if (ni != out.size()) identity = false;
      out.push_back(static_cast<tree::NodeId>(ni));
    }
  if (identity && out.size() == new_int_count) return {};
  return out;
}

std::uint64_t ForestIndex::swap_entry(TreeId tree, std::string_view scheme,
                                      std::string_view params,
                                      bits::MappedArena labels,
                                      const std::vector<tree::NodeId>* remap,
                                      const std::uint64_t* chain) {
  Slot& sl = slot(tree);
  if (auto fp = util::failpoint::check("forest.swap"))
    util::failpoint::raise(*fp, "forest.swap", "tree " + std::to_string(tree));
  Shard& sh = *shards_[shard_of(tree)];
  for (;;) {
    // Entry construction (scheme parse, chain seed, ext-map composition —
    // O(n) work) runs OUTSIDE the shard lock against a snapshot; the lock
    // covers only the validate-and-swap plus the invalidation. Every query
    // runs its attach/cache section under the same lock, re-loading the
    // slot there — so any section ordered after ours sees the new entry,
    // and no stale attachment can be re-inserted once the erase has run.
    const EntryPtr old = sl.entry.load(std::memory_order_acquire);
    std::vector<tree::NodeId> ext_map;
    if (remap != nullptr) {
      if (remap->size() != old->labels.size())
        throw std::invalid_argument(
            "ForestIndex: remap does not match the current labeling");
      ext_map = compose_ext_map(*old, *remap, labels.size(), nullptr, nullptr);
    }
    std::shared_ptr<TreeEntry> fresh = make_entry(
        scheme, params, std::move(labels), old->epoch + 1, std::move(ext_map));
    if (chain != nullptr) fresh->chain = *chain;
    {
      const util::MutexLock lock(sh.mu);
      if (sl.entry.load(std::memory_order_acquire) == old) {
        sl.entry.store(EntryPtr(std::move(fresh)),
                       std::memory_order_release);
        sh.invalidated += sh.cache.erase_if([tree](std::uint64_t key) {
          return static_cast<TreeId>(key >> 32) == tree;
        });
        // A clean full swap is the repair path: live again, streaks reset.
        note_success(sl);
        return old->epoch + 1;
      }
    }
    // Raced another writer: take the labels back and retry against the new
    // entry (epochs stay monotonic).
    labels = std::move(fresh->labels);
  }
}

std::uint64_t ForestIndex::update(TreeId tree,
                                  core::LabelStore::LoadedArena loaded) {
  return swap_entry(tree, loaded.scheme, loaded.params,
                    bits::MappedArena::adopt(std::move(loaded.labels)),
                    nullptr);
}

std::uint64_t ForestIndex::update(TreeId tree,
                                  core::LabelStore::LoadedArena loaded,
                                  std::span<const tree::NodeId> remap) {
  const std::vector<tree::NodeId> r(remap.begin(), remap.end());
  return swap_entry(tree, loaded.scheme, loaded.params,
                    bits::MappedArena::adopt(std::move(loaded.labels)), &r);
}

std::uint64_t ForestIndex::update(TreeId tree,
                                  core::LabelStore::LoadedArena loaded,
                                  std::uint64_t chain) {
  return swap_entry(tree, loaded.scheme, loaded.params,
                    bits::MappedArena::adopt(std::move(loaded.labels)), nullptr,
                    &chain);
}

std::uint64_t ForestIndex::update_file(TreeId tree, const std::string& path) {
  Slot& sl = slot(tree);
  try {
    auto loaded = open_with_retries(sl, path);
    return swap_entry(tree, loaded.scheme, loaded.params,
                      std::move(loaded.labels), nullptr);
  } catch (const util::IoError&) {
    throw;  // counted (and the tree marked stale) in open_with_retries
  } catch (const util::FailpointAbort&) {
    throw;  // a simulated crash is not a health event
  } catch (const std::bad_alloc&) {
    transient_failures_.fetch_add(1, std::memory_order_relaxed);
    throw;
  } catch (const std::exception&) {
    // The file was readable but wrong (corrupt container, unknown scheme):
    // an integrity failure of the shipped artifact, not of the transport.
    note_integrity_failure(sl);
    throw;
  }
}

std::uint64_t ForestIndex::apply_delta(TreeId tree,
                                       const core::LabelDelta& d) {
  Slot& sl = slot(tree);
  try {
    if (auto fp = util::failpoint::check("forest.apply_delta"))
      util::failpoint::raise(*fp, "forest.apply_delta",
                             "tree " + std::to_string(tree));
    const std::uint64_t e = apply_delta_impl(tree, d);
    note_success(sl);
    return e;
  } catch (const util::FailpointAbort&) {
    throw;  // a simulated crash is not a health event
  } catch (const std::bad_alloc&) {
    transient_failures_.fetch_add(1, std::memory_order_relaxed);
    throw;
  } catch (const std::exception&) {
    // Scheme mismatch, broken epoch chain, corrupt payload: the delta is
    // wrong for this tree, and retrying the same bytes cannot fix it.
    note_integrity_failure(sl);
    throw;
  }
}

std::uint64_t ForestIndex::apply_delta_impl(TreeId tree,
                                            const core::LabelDelta& d) {
  Shard& sh = *shards_[shard_of(tree)];
  for (;;) {
    // All the O(n) work — validation, the copy-on-write patch, the ext-map
    // composition — happens OUTSIDE the shard lock, against a snapshot of
    // the entry, so concurrent queries on this shard never stall behind a
    // large patch. The lock is only taken for the swap+invalidate; if
    // another writer replaced the entry meanwhile, start over (the delta
    // is then re-validated against the new epoch and rejected cleanly).
    const EntryPtr old = trees_[tree]->entry.load(std::memory_order_acquire);
    if (d.scheme != old->scheme_name || d.params != old->params)
      throw std::invalid_argument("ForestIndex: delta scheme mismatch");
    // The epoch chain is the strong ordering check: lens_hash alone could
    // collide across epochs whose label lengths happen to match.
    if (d.base_chain != old->chain)
      throw std::runtime_error(
          "ForestIndex: delta does not chain from the live epoch");
    // Copy-on-write: the patched arena is materialized while the old entry
    // — possibly a zero-copy mmap — keeps serving. apply_delta validates
    // the delta against the base (count + length-directory hash) first.
    bits::LabelArena patched = core::LabelStore::apply_delta(old->labels, d);

    // Internal remap implied by the delta's dropped runs (old → new int).
    std::vector<tree::NodeId> remap(old->labels.size());
    {
      std::size_t next_drop = 0;
      std::uint64_t dropped_before = 0;
      for (std::size_t b = 0; b < remap.size(); ++b) {
        while (next_drop < d.dropped.size() &&
               b >= d.dropped[next_drop].first + d.dropped[next_drop].count) {
          dropped_before += d.dropped[next_drop].count;
          ++next_drop;
        }
        const bool dropped = next_drop < d.dropped.size() &&
                             b >= d.dropped[next_drop].first;
        remap[b] = dropped ? tree::kNoNode
                           : static_cast<tree::NodeId>(b - dropped_before);
      }
    }
    std::vector<std::uint8_t> dirty_int(patched.size(), 0);
    for (const std::uint64_t id : d.dirty)
      dirty_int[static_cast<std::size_t>(id)] = 1;
    std::vector<tree::NodeId> stale_ext;
    std::vector<tree::NodeId> ext_map = compose_ext_map(
        *old, remap, patched.size(), &dirty_int, &stale_ext);

    std::shared_ptr<TreeEntry> fresh =
        make_entry(old->scheme_name, old->params,
                   bits::MappedArena::adopt(std::move(patched)),
                   old->epoch + 1, std::move(ext_map));
    fresh->chain = d.new_chain;
    const std::unordered_set<tree::NodeId> stale(stale_ext.begin(),
                                                 stale_ext.end());

    const util::MutexLock lock(sh.mu);
    if (trees_[tree]->entry.load(std::memory_order_acquire) != old)
      continue;  // raced another writer: re-validate against its epoch
    trees_[tree]->entry.store(EntryPtr(std::move(fresh)),
                              std::memory_order_release);
    // Selective invalidation: only attachments whose labels changed (or
    // whose ids died) go; clean hot labels stay attached across the swap.
    sh.invalidated += sh.cache.erase_if([tree, &stale](std::uint64_t key) {
      return static_cast<TreeId>(key >> 32) == tree &&
             stale.count(static_cast<tree::NodeId>(
                 static_cast<std::uint32_t>(key))) != 0;
    });
    return old->epoch + 1;
  }
}

std::uint64_t ForestIndex::apply_delta_file(TreeId tree,
                                            const std::string& path) {
  Slot& sl = slot(tree);
  core::LabelDelta d;
  for (int attempt = 0;; ++attempt) {
    try {
      const std::string bytes = util::read_file(path);
      std::istringstream is(bytes, std::ios::binary);
      d = core::LabelStore::load_delta(is);
      break;
    } catch (const util::IoError&) {
      transient_failures_.fetch_add(1, std::memory_order_relaxed);
      if (attempt >= opt_.retries) {
        note_stale(sl);
        throw;
      }
      retries_.fetch_add(1, std::memory_order_relaxed);
      backoff_sleep(opt_.retry_backoff_ms, attempt);
    } catch (const std::runtime_error&) {
      // The bytes were read fine but are not a valid delta container.
      note_integrity_failure(sl);
      throw;
    }
  }
  return apply_delta(tree, d);
}

AnyScheme ForestIndex::scheme(TreeId tree) const { return entry(tree)->scheme; }

std::size_t ForestIndex::label_count(TreeId tree) const {
  return entry(tree)->labels.size();
}

std::size_t ForestIndex::id_bound(TreeId tree) const {
  return entry(tree)->ext_size();
}

bool ForestIndex::mapped(TreeId tree) const {
  return entry(tree)->labels.mapped();
}

std::uint64_t ForestIndex::update_epoch(TreeId tree) const {
  return entry(tree)->epoch;
}

std::uint64_t ForestIndex::chain(TreeId tree) const {
  return entry(tree)->chain;
}

core::LabelStore::LoadedArena ForestIndex::snapshot_labels(TreeId tree) const {
  const EntryPtr e = entry(tree);
  bits::LabelArena copy = bits::LabelArena::composed(
      e->labels.size(), [&](std::size_t i) {
        return bits::LabelArena::LabelRef{e->labels.label_words(i),
                                          e->labels.label_bits(i)};
      });
  return {e->scheme_name, e->params, std::move(copy)};
}

int ForestIndex::planned_fanout(std::size_t batch) const noexcept {
  // resolve_threads returns an explicitly configured positive count as-is —
  // which is how BENCH_serve grew rows where 8 "threads" time-sliced one
  // core and lost to the serial path. Clamp to what can actually run in
  // parallel, then to what the batch can feed: fewer than
  // kFanoutBatchPerThread requests per thread and the pool's startup +
  // synchronization costs more than the overlap buys.
  std::size_t t = static_cast<std::size_t>(util::resolve_threads(opt_.threads));
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw != 0) t = std::min(t, static_cast<std::size_t>(hw));
  t = std::min(t, shards_.size());
  t = std::min(t, std::max<std::size_t>(batch / kFanoutBatchPerThread, 1));
  return static_cast<int>(std::max<std::size_t>(t, 1));
}

Dist ForestIndex::query_entry_locked(Shard& sh, const Request& r,
                                     const TreeEntry& e) const {
  return query_resolved_locked(sh, r.tree, r, resolve(e, r.u),
                               resolve(e, r.v), e);
}

Dist ForestIndex::query_resolved_locked(Shard& sh, TreeId tree,
                                        const Request& r, tree::NodeId iu,
                                        tree::NodeId iv,
                                        const TreeEntry& e) const {
  // Cache lookup-or-attach for both labels, used in place on hits — no
  // shared_ptr refcount traffic on the all-hits fast path. The only
  // mutation between the u lookup and the query is the v-side put(), whose
  // eviction sweep may drop u's entry: pin u with a strong reference
  // before that one insert (the entry just inserted — v itself — is never
  // evicted by its own put).
  const std::uint64_t ku = cache_key(tree, r.u);
  const std::uint64_t kv = cache_key(tree, r.v);
  AnyScheme::AttachedPtr hold_u;
  AnyScheme::AttachedPtr hold_v;
  const AnyScheme::Attached* au = nullptr;
  AnyScheme::AttachedPtr* pu = sh.cache.get(ku);
  if (pu != nullptr) {
    au = pu->get();
  } else {
    hold_u = e.scheme.attach(e.labels.view(static_cast<std::size_t>(iu)));
    au = hold_u.get();
    sh.cache.put(ku, hold_u, hold_u->cost_bytes());
  }
  const AnyScheme::Attached* av = nullptr;
  if (AnyScheme::AttachedPtr* pv = sh.cache.get(kv); pv != nullptr) {
    av = pv->get();
  } else {
    hold_v = e.scheme.attach(e.labels.view(static_cast<std::size_t>(iv)));
    av = hold_v.get();
    if (pu != nullptr) hold_u = *pu;
    sh.cache.put(kv, hold_v, hold_v->cost_bytes());
  }
  return e.scheme.query(*au, *av);
}

Dist ForestIndex::query_resolved_uncached(tree::NodeId iu, tree::NodeId iv,
                                          const TreeEntry& e) const {
  return e.scheme.query(e.labels.view(static_cast<std::size_t>(iu)),
                        e.labels.view(static_cast<std::size_t>(iv)));
}

Dist ForestIndex::query_locked(Shard& sh, const Request& r) const {
  // Load the slot *under the shard lock*: anything this query inserts into
  // the cache belongs to the labeling a concurrent update() will (or did)
  // invalidate against — see swap_entry().
  const EntryPtr e = trees_[r.tree]->entry.load(std::memory_order_acquire);
  return query_entry_locked(sh, r, *e);
}

Dist ForestIndex::query(const Request& r) const {
  const obs::ScopedTimer timer(ServeMetrics::get().query_ns);
  const Slot& sl = slot(r.tree);
  if (health_of(sl) == TreeHealth::kQuarantined)
    throw QuarantinedError(r.tree);
  Shard& sh = *shards_[shard_of(r.tree)];
  const util::MutexLock lock(sh.mu);
  return query_locked(sh, r);
}

ForestIndex::BatchPlan ForestIndex::plan_batch(std::span<const Request> reqs,
                                               QueryResult* results) const {
  BatchPlan plan;
  // Throwing mode tracks the first offender in REQUEST order across both
  // passes: a bad node at request 1 (found while resolving groups) must
  // beat a bad tree at request 3 (found in the serial scan), exactly as
  // the old request-ordered pre-pass reported it.
  std::size_t first_err = reqs.size();
  std::exception_ptr err;

  // Pass 1 (request order): tree bound + quarantine, partition by shard.
  std::vector<std::vector<std::uint32_t>> by_shard(shards_.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Request& r = reqs[i];
    if (r.tree >= trees_.size()) {
      if (results != nullptr) {
        results[i].status = QueryStatus::kBadTree;
      } else if (i < first_err) {
        first_err = i;
        err = std::make_exception_ptr(
            std::out_of_range("ForestIndex: tree id out of range"));
      }
      continue;
    }
    if (health_of(*trees_[r.tree]) == TreeHealth::kQuarantined) {
      if (results != nullptr) {
        results[i].status = QueryStatus::kQuarantined;
      } else if (i < first_err) {
        first_err = i;
        err = std::make_exception_ptr(QuarantinedError(r.tree));
      }
      continue;
    }
    by_shard[shard_of(r.tree)].push_back(static_cast<std::uint32_t>(i));
  }

  // Pass 2 (grouped): sort each shard's requests by tree (the planner's
  // locality move — off, they keep arrival order, the pre-planner
  // behavior), then walk the tree runs loading ONE entry snapshot per
  // distinct tree and resolving every node id exactly once. The snapshot
  // is shared across a tree's runs, so a batch still sees one labeling
  // per tree even when the planner is off and a tree's requests are
  // scattered.
  plan.order.reserve(reqs.size());
  plan.iu.assign(reqs.size(), tree::kNoNode);
  plan.iv.assign(reqs.size(), tree::kNoNode);
  plan.shard_groups.assign(shards_.size() + 1, 0);
  std::unordered_map<TreeId, EntryPtr> snap;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    plan.shard_groups[s] = static_cast<std::uint32_t>(plan.groups.size());
    std::vector<std::uint32_t>& idxs = by_shard[s];
    if (opt_.planner) {
      std::stable_sort(idxs.begin(), idxs.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return reqs[a].tree < reqs[b].tree;
                       });
    }
    for (std::size_t k = 0; k < idxs.size();) {
      const TreeId tree = reqs[idxs[k]].tree;
      EntryPtr& e = snap[tree];  // load each referenced slot once per batch
      if (e == nullptr)
        e = trees_[tree]->entry.load(std::memory_order_acquire);
      BatchPlan::Group g;
      g.begin = static_cast<std::uint32_t>(plan.order.size());
      g.tree = tree;
      g.entry = e.get();
      for (; k < idxs.size() && reqs[idxs[k]].tree == tree; ++k) {
        const std::uint32_t i = idxs[k];
        try {
          plan.iu[i] = resolve(*e, reqs[i].u);
          plan.iv[i] = resolve(*e, reqs[i].v);
        } catch (const std::out_of_range&) {
          if (results != nullptr) {
            results[i].status = QueryStatus::kBadNode;
          } else if (i < first_err) {
            first_err = i;
            err = std::current_exception();
          }
          continue;
        }
        plan.order.push_back(i);
      }
      g.end = static_cast<std::uint32_t>(plan.order.size());
      if (g.end > g.begin) plan.groups.push_back(g);
    }
  }
  plan.shard_groups[shards_.size()] =
      static_cast<std::uint32_t>(plan.groups.size());
  if (results == nullptr && err != nullptr) std::rethrow_exception(err);
  plan.snap.reserve(snap.size());
  for (auto& [tree, e] : snap) plan.snap.push_back(std::move(e));
  return plan;
}

template <typename Sink>
void ForestIndex::execute_plan(const BatchPlan& plan,
                               std::span<const Request> reqs,
                               Sink&& sink) const {
  util::parallel_for_chunks(
      shards_.size(), shards_.size(), planned_fanout(reqs.size()),
      [&](std::size_t s, std::size_t, std::size_t) {
        const std::uint32_t gb = plan.shard_groups[s];
        const std::uint32_t ge = plan.shard_groups[s + 1];
        if (gb == ge) return;
        Shard& sh = *shards_[s];
        const util::MutexLock lock(sh.mu);
        // Answers come from the planned snapshot entries, so the batch
        // sees one labeling per tree. The shard cache may only be used
        // while the snapshot still IS the live entry (checked per group,
        // under the lock): if an update swapped the tree mid-batch,
        // finish this batch's requests from the snapshot without touching
        // the cache — caching attachments of a replaced labeling would
        // undo the update's invalidation.
        std::size_t answered = 0;
        for (std::uint32_t gi = gb; gi < ge; ++gi) {
          const BatchPlan::Group& g = plan.groups[gi];
          const TreeEntry& e = *g.entry;
          const bool cacheable =
              trees_[g.tree]->entry.load(std::memory_order_acquire).get() ==
              &e;
          for (std::uint32_t k = g.begin; k < g.end; ++k) {
            if (opt_.planner && k + kPrefetchAhead < g.end) {
              // Pull the label words and cache slots of the request a few
              // slots ahead — mapped pages especially benefit; by the time
              // the decode cursor arrives the lines are in flight or
              // resident.
              const std::uint32_t j = plan.order[k + kPrefetchAhead];
              bits::kernels::prefetch(e.labels.label_words(
                  static_cast<std::size_t>(plan.iu[j])));
              bits::kernels::prefetch(e.labels.label_words(
                  static_cast<std::size_t>(plan.iv[j])));
              sh.cache.prefetch(cache_key(g.tree, reqs[j].u));
              sh.cache.prefetch(cache_key(g.tree, reqs[j].v));
            }
            const std::uint32_t i = plan.order[k];
            const bool sampled =
                obs::kEnabled && (answered++ % kLatencySampleEvery) == 0;
            const std::uint64_t q0 = sampled ? obs::now_ns() : 0;
            const Dist d =
                cacheable
                    ? query_resolved_locked(sh, g.tree, reqs[i], plan.iu[i],
                                            plan.iv[i], e)
                    : query_resolved_uncached(plan.iu[i], plan.iv[i], e);
            if (sampled)
              ServeMetrics::get().query_ns.record(obs::now_ns() - q0);
            sink(i, d);
          }
        }
      });
}

std::vector<Dist> ForestIndex::query_batch(
    std::span<const Request> reqs) const {
  const std::uint64_t t0 = obs::now_ns();
  std::vector<Dist> out(reqs.size());
  // Plan serially (validation in request order — a bad request throws the
  // first offender deterministically, before any query work), then fan the
  // (shard, tree)-grouped plan out across shards.
  const BatchPlan plan = plan_batch(reqs, nullptr);
  execute_plan(plan, reqs, [&out](std::uint32_t i, Dist d) { out[i] = d; });
  if constexpr (obs::kEnabled) {
    ServeMetrics& m = ServeMetrics::get();
    m.batch_ns.record(obs::now_ns() - t0);
    m.batch_size.record(reqs.size());
    m.planner_batches.add(1);
    m.planner_groups.add(plan.groups.size());
  }
  return out;
}

std::vector<QueryResult> ForestIndex::query_batch_checked(
    std::span<const Request> reqs) const {
  const std::uint64_t t0 = obs::now_ns();
  std::vector<QueryResult> out(reqs.size());
  // Same plan as query_batch(), but a bad request is *recorded* (typed
  // status, request order) instead of aborting the batch: one quarantined
  // tree or one bad client id must not cost every other request its
  // answer.
  const BatchPlan plan = plan_batch(reqs, out.data());
  execute_plan(plan, reqs,
               [&out](std::uint32_t i, Dist d) { out[i].dist = d; });
  if constexpr (obs::kEnabled) {
    ServeMetrics& m = ServeMetrics::get();
    m.batch_ns.record(obs::now_ns() - t0);
    m.batch_size.record(reqs.size());
    m.planner_batches.add(1);
    m.planner_groups.add(plan.groups.size());
  }
  return out;
}

ForestIndex::CacheStats ForestIndex::cache_stats() const {
  CacheStats st;
  for (const auto& sh : shards_) {
    const util::MutexLock lock(sh->mu);
    st.hits += sh->cache.hits();
    st.misses += sh->cache.misses();
    st.evictions += sh->cache.evictions();
    st.entries += sh->cache.size();
    st.bytes += sh->cache.bytes();
    st.invalidated += sh->invalidated;
  }
  st.retries = retries_.load(std::memory_order_relaxed);
  st.transient_failures = transient_failures_.load(std::memory_order_relaxed);
  st.integrity_failures = integrity_failures_.load(std::memory_order_relaxed);
  st.quarantine_events = quarantine_events_.load(std::memory_order_relaxed);
  for (const auto& sl : trees_) {
    const TreeHealth h = health_of(*sl);
    if (h == TreeHealth::kStale) ++st.stale;
    if (h == TreeHealth::kQuarantined) ++st.quarantined;
  }
  return st;
}

}  // namespace treelab::serve
