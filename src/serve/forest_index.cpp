#include "serve/forest_index.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "util/parallel.hpp"

namespace treelab::serve {

namespace {

std::uint64_t cache_key(TreeId tree, tree::NodeId u) noexcept {
  return (static_cast<std::uint64_t>(tree) << 32) |
         static_cast<std::uint32_t>(u);
}

void check_nodes(const Request& r, std::size_t n) {
  if (r.u < 0 || r.v < 0 || static_cast<std::size_t>(r.u) >= n ||
      static_cast<std::size_t>(r.v) >= n)
    throw std::out_of_range("ForestIndex: node id out of range");
}

}  // namespace

ForestIndex::ForestIndex(ForestOptions opt) : opt_(opt) {
  const std::size_t shards =
      opt_.shards > 0 ? opt_.shards
                      : static_cast<std::size_t>(util::thread_count());
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s)
    shards_.push_back(std::make_unique<Shard>(opt_.cache_bytes_per_shard));
}

ForestIndex::EntryPtr ForestIndex::entry(TreeId tree) const {
  if (tree >= trees_.size())
    throw std::out_of_range("ForestIndex: tree id out of range");
  return trees_[tree]->load(std::memory_order_acquire);
}

ForestIndex::EntryPtr ForestIndex::make_entry(std::string_view scheme,
                                              std::string_view params,
                                              bits::MappedArena labels,
                                              std::uint64_t epoch) {
  auto e = std::make_shared<TreeEntry>();
  e->scheme = AnyScheme::make(scheme, params);
  e->labels = std::move(labels);
  e->epoch = epoch;
  return e;
}

TreeId ForestIndex::add_entry(std::string_view scheme, std::string_view params,
                              bits::MappedArena labels) {
  trees_.push_back(std::make_unique<std::atomic<EntryPtr>>(
      make_entry(scheme, params, std::move(labels), 0)));
  return static_cast<TreeId>(trees_.size() - 1);
}

TreeId ForestIndex::add_file(const std::string& path) {
  auto loaded = core::LabelStore::open_mapped(path);
  return add_entry(loaded.scheme, loaded.params, std::move(loaded.labels));
}

TreeId ForestIndex::add(core::LabelStore::LoadedArena loaded) {
  return add_entry(loaded.scheme, loaded.params,
                   bits::MappedArena::adopt(std::move(loaded.labels)));
}

std::uint64_t ForestIndex::swap_entry(TreeId tree, std::string_view scheme,
                                      std::string_view params,
                                      bits::MappedArena labels) {
  if (tree >= trees_.size())
    throw std::out_of_range("ForestIndex: tree id out of range");
  // Swap and invalidate under the shard lock: concurrent updates of the
  // same tree serialize (epochs stay monotonic), and every query runs its
  // attach/cache section under the same lock, re-loading the slot there —
  // so any section ordered after this one sees the new entry, and no stale
  // attachment can be re-inserted once the erase has run.
  Shard& sh = *shards_[shard_of(tree)];
  const std::lock_guard<std::mutex> lock(sh.mu);
  const EntryPtr old = trees_[tree]->load(std::memory_order_acquire);
  const EntryPtr fresh =
      make_entry(scheme, params, std::move(labels), old->epoch + 1);
  trees_[tree]->store(fresh, std::memory_order_release);
  sh.invalidated += sh.cache.erase_if([tree](std::uint64_t key) {
    return static_cast<TreeId>(key >> 32) == tree;
  });
  return fresh->epoch;
}

std::uint64_t ForestIndex::update(TreeId tree,
                                  core::LabelStore::LoadedArena loaded) {
  return swap_entry(tree, loaded.scheme, loaded.params,
                    bits::MappedArena::adopt(std::move(loaded.labels)));
}

std::uint64_t ForestIndex::update_file(TreeId tree, const std::string& path) {
  auto loaded = core::LabelStore::open_mapped(path);
  return swap_entry(tree, loaded.scheme, loaded.params,
                    std::move(loaded.labels));
}

AnyScheme ForestIndex::scheme(TreeId tree) const { return entry(tree)->scheme; }

std::size_t ForestIndex::label_count(TreeId tree) const {
  return entry(tree)->labels.size();
}

bool ForestIndex::mapped(TreeId tree) const {
  return entry(tree)->labels.mapped();
}

std::uint64_t ForestIndex::update_epoch(TreeId tree) const {
  return entry(tree)->epoch;
}

AnyScheme::AttachedPtr ForestIndex::attached_locked(Shard& sh, TreeId tree,
                                                    tree::NodeId u,
                                                    const TreeEntry& e) const {
  const std::uint64_t key = cache_key(tree, u);
  if (AnyScheme::AttachedPtr* hit = sh.cache.get(key)) return *hit;
  AnyScheme::AttachedPtr att = e.scheme.attach(e.labels.view(
      static_cast<std::size_t>(u)));
  sh.cache.put(key, att, att->cost_bytes());
  return att;
}

Dist ForestIndex::query_entry_locked(Shard& sh, const Request& r,
                                     const TreeEntry& e) const {
  check_nodes(r, e.labels.size());
  const AnyScheme::AttachedPtr au = attached_locked(sh, r.tree, r.u, e);
  const AnyScheme::AttachedPtr av = attached_locked(sh, r.tree, r.v, e);
  return e.scheme.query(*au, *av);
}

Dist ForestIndex::query_entry_uncached(const Request& r,
                                       const TreeEntry& e) const {
  // Raw-label query path for entries that are no longer live (a batch
  // snapshot overtaken by update()): correct against e, never cached.
  return e.scheme.query(e.labels.view(static_cast<std::size_t>(r.u)),
                        e.labels.view(static_cast<std::size_t>(r.v)));
}

Dist ForestIndex::query_locked(Shard& sh, const Request& r) const {
  // Load the slot *under the shard lock*: anything this query inserts into
  // the cache belongs to the labeling a concurrent update() will (or did)
  // invalidate against — see swap_entry().
  const EntryPtr e = trees_[r.tree]->load(std::memory_order_acquire);
  return query_entry_locked(sh, r, *e);
}

Dist ForestIndex::query(const Request& r) const {
  if (r.tree >= trees_.size())
    throw std::out_of_range("ForestIndex: tree id out of range");
  Shard& sh = *shards_[shard_of(r.tree)];
  const std::lock_guard<std::mutex> lock(sh.mu);
  return query_locked(sh, r);
}

std::vector<Dist> ForestIndex::query_batch(
    std::span<const Request> reqs) const {
  std::vector<Dist> out(reqs.size());
  // Serial pre-pass: validate tree AND node ids in request order (a bad
  // request must fail deterministically, not from whichever parallel chunk
  // reaches it first), while partitioning request indices by shard and
  // snapshotting one entry per distinct tree. Within a shard, requests are
  // then sorted by tree so one tree's arena (and its cached attachments)
  // is walked contiguously.
  std::unordered_map<TreeId, EntryPtr> snap;
  std::vector<std::vector<std::uint32_t>> by_shard(shards_.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Request& r = reqs[i];
    if (r.tree >= trees_.size())
      throw std::out_of_range("ForestIndex: tree id out of range");
    EntryPtr& e = snap[r.tree];  // load each referenced slot once per batch
    if (e == nullptr) e = trees_[r.tree]->load(std::memory_order_acquire);
    check_nodes(r, e->labels.size());
    by_shard[shard_of(r.tree)].push_back(static_cast<std::uint32_t>(i));
  }
  util::parallel_for_chunks(
      shards_.size(), shards_.size(), util::resolve_threads(opt_.threads),
      [&](std::size_t s, std::size_t, std::size_t) {
        std::vector<std::uint32_t>& idxs = by_shard[s];
        if (idxs.empty()) return;
        std::stable_sort(idxs.begin(), idxs.end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                           return reqs[a].tree < reqs[b].tree;
                         });
        Shard& sh = *shards_[s];
        const std::lock_guard<std::mutex> lock(sh.mu);
        // Answers come from the validated snapshot entries, so a batch
        // never throws past the pre-pass and sees one labeling per tree.
        // The shard cache may only be used while the snapshot still IS the
        // live entry (checked per tree run, under the lock): if an update
        // swapped the tree mid-batch, finish this batch's requests from
        // the snapshot without touching the cache — caching attachments
        // of a replaced labeling would undo the update's invalidation.
        TreeId cur = 0;
        const TreeEntry* e = nullptr;
        bool cacheable = false;
        for (const std::uint32_t i : idxs) {
          if (e == nullptr || reqs[i].tree != cur) {
            cur = reqs[i].tree;
            e = snap.find(cur)->second.get();
            cacheable =
                trees_[cur]->load(std::memory_order_acquire).get() == e;
          }
          out[i] = cacheable ? query_entry_locked(sh, reqs[i], *e)
                             : query_entry_uncached(reqs[i], *e);
        }
      });
  return out;
}

ForestIndex::CacheStats ForestIndex::cache_stats() const {
  CacheStats st;
  for (const auto& sh : shards_) {
    const std::lock_guard<std::mutex> lock(sh->mu);
    st.hits += sh->cache.hits();
    st.misses += sh->cache.misses();
    st.evictions += sh->cache.evictions();
    st.entries += sh->cache.size();
    st.bytes += sh->cache.bytes();
    st.invalidated += sh->invalidated;
  }
  return st;
}

}  // namespace treelab::serve
