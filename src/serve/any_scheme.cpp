#include "serve/any_scheme.hpp"

#include <charconv>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/alstrup_scheme.hpp"
#include "core/approx_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/kdistance_scheme.hpp"
#include "core/peleg_scheme.hpp"

namespace treelab::serve {

class AnyScheme::Impl {
 public:
  explicit Impl(std::string name) : name_(std::move(name)) {}
  virtual ~Impl() = default;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] virtual Dist query_raw(bits::BitSpan lu,
                                       bits::BitSpan lv) const = 0;
  [[nodiscard]] virtual AttachedPtr attach(bits::BitSpan l) const = 0;
  [[nodiscard]] virtual Dist query_attached(const Attached& lu,
                                            const Attached& lv) const = 0;

 private:
  std::string name_;
};

namespace {

/// Value of `key` inside a "k1=v1 k2=v2"-style params string (the exact
/// layout treelab writes is a single pair, but any separator works: the
/// match is on "key=" at a token start). Empty optional when absent.
std::optional<std::string_view> find_param(std::string_view params,
                                           std::string_view key) {
  std::size_t pos = 0;
  while (pos < params.size()) {
    const std::size_t eq = params.find('=', pos);
    if (eq == std::string_view::npos) break;
    const std::string_view k = params.substr(pos, eq - pos);
    std::size_t end = params.find_first_of(", ;", eq + 1);
    if (end == std::string_view::npos) end = params.size();
    if (k == key) return params.substr(eq + 1, end - eq - 1);
    pos = end + (end < params.size() ? 1 : 0);
  }
  return std::nullopt;
}

std::string_view param_value(std::string_view params, std::string_view key) {
  if (const auto v = find_param(params, key)) return *v;
  throw std::invalid_argument("AnyScheme: params missing '" +
                              std::string(key) + "=' (got '" +
                              std::string(params) + "')");
}

std::uint64_t parse_u64(std::string_view s, const char* what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    throw std::invalid_argument(std::string("AnyScheme: bad ") + what +
                                " value '" + std::string(s) + "'");
  return v;
}

double parse_double(std::string_view s, const char* what) {
  const std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty())
    throw std::invalid_argument(std::string("AnyScheme: bad ") + what +
                                " value '" + buf + "'");
  return v;
}

/// Cache-accounting estimate: attached forms hold the raw bits plus decoded
/// arrays roughly proportional to them; 4x raw bytes tracks the measured
/// footprint of the five schemes well enough for a byte budget.
constexpr std::size_t kAttachedExpansion = 4;

/// The per-scheme dispatchers. Each carries the scheme-wide constants and
/// maps the concrete query result onto Dist.
struct FgnwDispatch {
  using Scheme = core::FgnwScheme;
  static Dist to_dist(std::uint64_t d) { return {true, d}; }
  [[nodiscard]] Dist query(bits::BitSpan a, bits::BitSpan b) const {
    return to_dist(Scheme::query(a, b));
  }
  [[nodiscard]] Scheme::Attached attach(bits::BitSpan l) const {
    return Scheme::attach(l);
  }
  [[nodiscard]] Dist query(const Scheme::Attached& a,
                           const Scheme::Attached& b) const {
    return to_dist(Scheme::query(a, b));
  }
};

struct AlstrupDispatch {
  using Scheme = core::AlstrupScheme;
  [[nodiscard]] Dist query(bits::BitSpan a, bits::BitSpan b) const {
    return {true, Scheme::query(a, b)};
  }
  [[nodiscard]] Scheme::Attached attach(bits::BitSpan l) const {
    return Scheme::attach(l);
  }
  [[nodiscard]] Dist query(const Scheme::Attached& a,
                           const Scheme::Attached& b) const {
    return {true, Scheme::query(a, b)};
  }
};

struct PelegDispatch {
  using Scheme = core::PelegScheme;
  [[nodiscard]] Dist query(bits::BitSpan a, bits::BitSpan b) const {
    return {true, Scheme::query(a, b)};
  }
  [[nodiscard]] Scheme::Attached attach(bits::BitSpan l) const {
    return Scheme::attach(l);
  }
  [[nodiscard]] Dist query(const Scheme::Attached& a,
                           const Scheme::Attached& b) const {
    return {true, Scheme::query(a, b)};
  }
};

struct ApproxDispatch {
  using Scheme = core::ApproxScheme;
  double eps;
  [[nodiscard]] Dist query(bits::BitSpan a, bits::BitSpan b) const {
    return {true, Scheme::query(eps, a, b)};
  }
  [[nodiscard]] Scheme::Attached attach(bits::BitSpan l) const {
    return Scheme::attach(l);
  }
  [[nodiscard]] Dist query(const Scheme::Attached& a,
                           const Scheme::Attached& b) const {
    return {true, Scheme::query(eps, a, b)};
  }
};

struct KDistanceDispatch {
  using Scheme = core::KDistanceScheme;
  std::uint64_t k;
  static Dist to_dist(core::BoundedDistance r) {
    return {r.within, r.distance};
  }
  [[nodiscard]] Dist query(bits::BitSpan a, bits::BitSpan b) const {
    return to_dist(Scheme::query(k, a, b));
  }
  [[nodiscard]] Scheme::Attached attach(bits::BitSpan l) const {
    return Scheme::attach(k, l);
  }
  [[nodiscard]] Dist query(const Scheme::Attached& a,
                           const Scheme::Attached& b) const {
    return to_dist(Scheme::query(k, a, b));
  }
};

/// One address per scheme kind, the identity Attached::scheme_key()
/// carries. All handles of the same kind share it (mixing across same-kind
/// handles stays undetectable, as documented on AnyScheme).
template <typename D>
struct SchemeKeyTag {
  static constexpr char tag = 0;
};

template <typename D>
class SchemeImpl final : public AnyScheme::Impl {
 public:
  SchemeImpl(std::string name, D dispatch)
      : Impl(std::move(name)), d_(std::move(dispatch)) {}

  struct Holder final : AnyScheme::Attached {
    Holder(typename D::Scheme::Attached l, std::size_t c)
        : Attached(&SchemeKeyTag<D>::tag), label(std::move(l)), cost(c) {}
    typename D::Scheme::Attached label;
    std::size_t cost;
    [[nodiscard]] std::size_t cost_bytes() const noexcept override {
      return cost;
    }
  };

  [[nodiscard]] Dist query_raw(bits::BitSpan lu,
                               bits::BitSpan lv) const override {
    return d_.query(lu, lv);
  }

  [[nodiscard]] AnyScheme::AttachedPtr attach(bits::BitSpan l) const override {
    const std::size_t cost =
        sizeof(Holder) + kAttachedExpansion * ((l.size() + 7) / 8);
    return std::make_shared<const Holder>(d_.attach(l), cost);
  }

  [[nodiscard]] Dist query_attached(const AnyScheme::Attached& lu,
                                    const AnyScheme::Attached& lv)
      const override {
    if (lu.scheme_key() != &SchemeKeyTag<D>::tag ||
        lv.scheme_key() != &SchemeKeyTag<D>::tag)
      throw std::invalid_argument(
          "AnyScheme: attached label belongs to a different scheme");
    return d_.query(static_cast<const Holder&>(lu).label,
                    static_cast<const Holder&>(lv).label);
  }

 private:
  D d_;
};

template <typename D>
std::shared_ptr<const AnyScheme::Impl> make_impl(std::string_view name,
                                                 D dispatch) {
  return std::make_shared<const SchemeImpl<D>>(std::string(name),
                                               std::move(dispatch));
}

}  // namespace

AnyScheme AnyScheme::make(std::string_view scheme, std::string_view params) {
  if (scheme == "fgnw") return AnyScheme(make_impl(scheme, FgnwDispatch{}));
  if (scheme == "alstrup")
    return AnyScheme(make_impl(scheme, AlstrupDispatch{}));
  if (scheme == "peleg") return AnyScheme(make_impl(scheme, PelegDispatch{}));
  if (scheme == "kdist" || scheme == "kdistance") {
    const std::uint64_t k = parse_u64(param_value(params, "k"), "k");
    if (k < 1) throw std::invalid_argument("AnyScheme: k must be >= 1");
    return AnyScheme(make_impl(scheme, KDistanceDispatch{k}));
  }
  if (scheme == "approx") {
    double eps = 0;
    if (const auto inv_s = find_param(params, "inv_eps")) {
      const std::uint64_t inv = parse_u64(*inv_s, "inv_eps");
      if (inv < 1)
        throw std::invalid_argument("AnyScheme: inv_eps must be >= 1");
      eps = 1.0 / static_cast<double>(inv);
    } else {
      eps = parse_double(param_value(params, "eps"), "eps");
    }
    if (!(eps > 0.0 && eps <= 1.0))
      throw std::invalid_argument("AnyScheme: eps must be in (0, 1]");
    return AnyScheme(make_impl(scheme, ApproxDispatch{eps}));
  }
  throw std::invalid_argument("AnyScheme: unknown scheme tag '" +
                              std::string(scheme) + "'");
}

const AnyScheme::Impl& AnyScheme::impl() const {
  if (impl_ == nullptr) throw std::logic_error("AnyScheme: empty handle");
  return *impl_;
}

const std::string& AnyScheme::name() const { return impl().name(); }

Dist AnyScheme::query(bits::BitSpan lu, bits::BitSpan lv) const {
  return impl().query_raw(lu, lv);
}

AnyScheme::AttachedPtr AnyScheme::attach(bits::BitSpan l) const {
  return impl().attach(l);
}

Dist AnyScheme::query(const Attached& lu, const Attached& lv) const {
  return impl().query_attached(lu, lv);
}

}  // namespace treelab::serve
