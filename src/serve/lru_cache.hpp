// LruCache — a byte-budgeted least-recently-used map, the building block of
// ForestIndex's per-shard attached-label caches. Entries carry an explicit
// cost (bytes) charged against a fixed capacity; inserting past the budget
// evicts from the cold end. The entry just inserted is never evicted, so a
// single entry larger than the whole budget is held until the next insert
// pushes it out — the cache is bounded by max(capacity, largest entry), and
// a query for an oversized label still gets its attach-once benefit within
// the batch that touched it.
//
// Not thread-safe: ForestIndex serializes access per shard.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>

namespace treelab::serve {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// The value stored under `key`, refreshed to most-recently-used; nullptr
  /// on a miss. The pointer is valid until the next put().
  [[nodiscard]] V* get(const K& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second.pos);
    return &it->second.pos->second;
  }

  /// Inserts (or replaces) `key` at the hot end, charging `cost` bytes, then
  /// evicts least-recently-used entries while over capacity.
  void put(const K& key, V value, std::size_t cost) {
    const auto it = map_.find(key);
    if (it != map_.end()) {
      bytes_ -= it->second.cost;
      order_.erase(it->second.pos);
      map_.erase(it);
    }
    order_.emplace_front(key, std::move(value));
    map_.emplace(key, Slot{order_.begin(), cost});
    bytes_ += cost;
    while (bytes_ > capacity_ && order_.size() > 1) {
      const auto last = std::prev(order_.end());
      const auto victim = map_.find(last->first);
      bytes_ -= victim->second.cost;
      map_.erase(victim);
      order_.erase(last);
      ++evictions_;
    }
  }

  /// Removes every entry whose key satisfies `pred`, releasing its cost.
  /// Returns the number of entries removed. Not counted as evictions (the
  /// caller is invalidating, not budgeting) — ForestIndex uses this to drop
  /// a tree's attached labels when its labeling is hot-swapped.
  template <typename Pred>
  std::size_t erase_if(Pred&& pred) {
    std::size_t removed = 0;
    for (auto it = order_.begin(); it != order_.end();) {
      if (!pred(it->first)) {
        ++it;
        continue;
      }
      const auto victim = map_.find(it->first);
      bytes_ -= victim->second.cost;
      map_.erase(victim);
      it = order_.erase(it);
      ++removed;
    }
    return removed;
  }

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::size_t evictions() const noexcept { return evictions_; }

 private:
  struct Slot {
    typename std::list<std::pair<K, V>>::iterator pos;
    std::size_t cost;
  };

  std::size_t capacity_;
  std::size_t bytes_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
  std::list<std::pair<K, V>> order_;  // front = most recently used
  std::unordered_map<K, Slot, Hash> map_;
};

}  // namespace treelab::serve
