// LruCache — a byte-budgeted least-recently-used map, the building block of
// ForestIndex's per-shard attached-label caches. Entries carry an explicit
// cost (bytes) charged against a fixed capacity; inserting past the budget
// evicts from the cold end. The entry just inserted is never evicted, so a
// single entry larger than the whole budget is held until the next insert
// pushes it out — the cache is bounded by max(capacity, largest entry), and
// a query for an oversized label still gets its attach-once benefit within
// the batch that touched it.
//
// Internals are built for the serving hot path, where get() runs twice per
// query: an open-addressing table (power-of-two, linear probing, tombstone
// deletion) holding indices into a node slab, and an intrusive index-linked
// recency list — one probe sequence and no pointer-chasing node
// allocations, where the previous std::list + std::unordered_map layout
// paid a bucket chase plus a list splice per hit.
//
// Not thread-safe: ForestIndex serializes access per shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace treelab::serve {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// The value stored under `key`, refreshed to most-recently-used; nullptr
  /// on a miss. The pointer is valid until the next put().
  [[nodiscard]] V* get(const K& key) {
    const std::uint32_t i = find(key);
    if (i == kNil) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    move_to_front(i);
    return &nodes_[i].value;
  }

  /// Hints the table slot for `key` into cache ahead of a get() — the
  /// serving layer issues this a few requests ahead while decoding the
  /// current one.
  void prefetch(const K& key) const {
    if (!table_.empty())
      __builtin_prefetch(&table_[home(key)], 0, 1);
  }

  /// Inserts (or replaces) `key` at the hot end, charging `cost` bytes, then
  /// evicts least-recently-used entries while over capacity.
  void put(const K& key, V value, std::size_t cost) {
    maybe_rehash();
    std::uint32_t i = find(key);
    if (i != kNil) {
      bytes_ -= nodes_[i].cost;
      nodes_[i].value = std::move(value);
      nodes_[i].cost = cost;
      move_to_front(i);
    } else {
      i = alloc_node(key, std::move(value), cost);
      place(key, i);
      link_front(i);
      ++size_;
    }
    bytes_ += cost;
    while (bytes_ > capacity_ && size_ > 1) {
      const std::uint32_t victim = tail_;
      unplace(nodes_[victim].key);
      bytes_ -= nodes_[victim].cost;
      unlink(victim);
      free_node(victim);
      --size_;
      ++evictions_;
    }
  }

  /// Removes every entry whose key satisfies `pred`, releasing its cost.
  /// Returns the number of entries removed. Not counted as evictions (the
  /// caller is invalidating, not budgeting) — ForestIndex uses this to drop
  /// a tree's attached labels when its labeling is hot-swapped.
  template <typename Pred>
  std::size_t erase_if(Pred&& pred) {
    std::size_t removed = 0;
    for (std::uint32_t i = head_; i != kNil;) {
      const std::uint32_t next = nodes_[i].next;
      if (pred(nodes_[i].key)) {
        unplace(nodes_[i].key);
        bytes_ -= nodes_[i].cost;
        unlink(i);
        free_node(i);
        --size_;
        ++removed;
      }
      i = next;
    }
    return removed;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::size_t evictions() const noexcept { return evictions_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffff;   // empty table slot
  static constexpr std::uint32_t kTomb = 0xfffffffe;  // deleted table slot

  struct Node {
    K key;
    V value;
    std::size_t cost;
    std::uint32_t prev;
    std::uint32_t next;
  };

  /// Table index the probe sequence for `key` starts at. Finalizer-mixed:
  /// cache keys are often near-sequential (tree id | node id), and linear
  /// probing needs the high entropy spread across the low bits.
  [[nodiscard]] std::size_t home(const K& key) const {
    std::uint64_t x = Hash{}(key);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x) & (table_.size() - 1);
  }

  [[nodiscard]] std::uint32_t find(const K& key) const {
    if (table_.empty()) return kNil;
    const std::size_t mask = table_.size() - 1;
    for (std::size_t s = home(key);; s = (s + 1) & mask) {
      const std::uint32_t i = table_[s];
      if (i == kNil) return kNil;
      if (i != kTomb && nodes_[i].key == key) return i;
    }
  }

  /// Stores node `i` under `key`; the key must not be present.
  void place(const K& key, std::uint32_t i) {
    const std::size_t mask = table_.size() - 1;
    for (std::size_t s = home(key);; s = (s + 1) & mask) {
      if (table_[s] == kNil || table_[s] == kTomb) {
        if (table_[s] == kTomb) --tombstones_;
        table_[s] = i;
        return;
      }
    }
  }

  /// Tombstones the slot holding `key`; the key must be present.
  void unplace(const K& key) {
    const std::size_t mask = table_.size() - 1;
    for (std::size_t s = home(key);; s = (s + 1) & mask) {
      const std::uint32_t i = table_[s];
      if (i != kNil && i != kTomb && nodes_[i].key == key) {
        table_[s] = kTomb;
        ++tombstones_;
        return;
      }
    }
  }

  /// Grows (or rebuilds, clearing tombstones) when live + dead slots pass
  /// 3/4 of the table, keeping probe runs short.
  void maybe_rehash() {
    if (!table_.empty() && (size_ + tombstones_ + 1) * 4 < table_.size() * 3)
      return;
    std::size_t cap = table_.empty() ? 16 : table_.size();
    while ((size_ + 1) * 4 >= cap * 3) cap *= 2;
    table_.assign(cap, kNil);
    tombstones_ = 0;
    for (std::uint32_t i = head_; i != kNil; i = nodes_[i].next)
      place(nodes_[i].key, i);
  }

  std::uint32_t alloc_node(const K& key, V value, std::size_t cost) {
    if (free_ != kNil) {
      const std::uint32_t i = free_;
      free_ = nodes_[i].next;
      nodes_[i].key = key;
      nodes_[i].value = std::move(value);
      nodes_[i].cost = cost;
      return i;
    }
    nodes_.push_back(Node{key, std::move(value), cost, kNil, kNil});
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }

  void free_node(std::uint32_t i) {
    nodes_[i].value = V{};  // release the payload now, not at reuse time
    nodes_[i].next = free_;
    free_ = i;
  }

  void link_front(std::uint32_t i) {
    nodes_[i].prev = kNil;
    nodes_[i].next = head_;
    if (head_ != kNil) nodes_[head_].prev = i;
    head_ = i;
    if (tail_ == kNil) tail_ = i;
  }

  void unlink(std::uint32_t i) {
    if (nodes_[i].prev != kNil)
      nodes_[nodes_[i].prev].next = nodes_[i].next;
    else
      head_ = nodes_[i].next;
    if (nodes_[i].next != kNil)
      nodes_[nodes_[i].next].prev = nodes_[i].prev;
    else
      tail_ = nodes_[i].prev;
  }

  void move_to_front(std::uint32_t i) {
    if (head_ == i) return;
    unlink(i);
    link_front(i);
  }

  std::size_t capacity_;
  std::size_t bytes_ = 0;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
  std::uint32_t head_ = kNil;  // most recently used
  std::uint32_t tail_ = kNil;  // least recently used
  std::uint32_t free_ = kNil;  // node-slab free list, linked through next
  std::vector<std::uint32_t> table_;  // open-addressing: node index per slot
  std::vector<Node> nodes_;
};

}  // namespace treelab::serve
