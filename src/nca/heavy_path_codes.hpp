// HeavyPathCodes — the shared code machinery behind Lemma 2.1 labels and
// the Section 3.6 level-ancestor labels.
//
// For every heavy path it builds Gilbert–Moore position codes (weighted by
// the light mass at each path node) and per-node light-choice codes
// (weighted by subtree sizes, ordered exactly like CollapsedTree's
// domination order). For every path it exposes the concatenated *prefix*:
// the alternating (position, light-choice) codewords of the light edges
// leading to it from the root, together with the component end boundaries.
// A node's full NCA label is prefix(path) + terminal position code.
//
// Two weight policies coexist (CodeWeights):
//   * kExact — the paper's construction: weights are exact subtree sizes /
//     light masses, light children sorted by ascending subtree size (the
//     CollapsedTree domination order FGNW's accumulator invariant needs).
//     One inserted leaf perturbs every cumulative sum it appears under, so
//     labels are maximally tight but globally unstable under edits.
//   * kStablePow2 — the dynamic-forest construction: weights are rounded up
//     to the next power of two and light children keep node-id order. Codes
//     stay prefix-free and order-preserving (queries are unchanged), labels
//     grow by at most ~1 bit per component, and a size change only reaches
//     the codes when it crosses a power of two — which is what makes
//     IncrementalRelabeler's dirty cones small instead of the whole tree.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "bits/alphabetic.hpp"
#include "bits/bitvec.hpp"
#include "tree/hpd.hpp"

namespace treelab::nca {

/// Weight policy for the Gilbert–Moore code tables (see file comment).
enum class CodeWeights : std::uint8_t {
  kExact,       ///< exact subtree sizes, domination-ordered light children
  kStablePow2,  ///< pow2-rounded weights, id-ordered light children
};

/// The Gilbert–Moore weight charged for a mass of `size` under `policy`.
[[nodiscard]] inline std::uint64_t code_weight(std::uint64_t size,
                                               CodeWeights policy) noexcept {
  return policy == CodeWeights::kStablePow2 ? std::bit_ceil(size) : size;
}

class HeavyPathCodes {
 public:
  explicit HeavyPathCodes(const tree::HeavyPathDecomposition& hpd,
                          CodeWeights weights = CodeWeights::kExact);

  /// Concatenated branch codewords above path p (2 components per level).
  [[nodiscard]] const bits::BitVec& prefix(std::int32_t p) const noexcept {
    return prefix_[p];
  }

  /// End bit positions of each component of prefix(p).
  [[nodiscard]] const std::vector<std::uint64_t>& prefix_bounds(
      std::int32_t p) const noexcept {
    return bounds_[p];
  }

  /// Terminal position codeword of node v within its path.
  [[nodiscard]] bits::Codeword terminal(tree::NodeId v) const noexcept {
    const std::int32_t p = hpd_->path_of(v);
    return pos_code_[p][static_cast<std::size_t>(hpd_->pos_in_path(v))];
  }

  /// Position codewords of every node of path p, top to bottom.
  [[nodiscard]] std::span<const bits::Codeword> position_codes(
      std::int32_t p) const noexcept {
    return pos_code_[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] CodeWeights weights() const noexcept { return weights_; }

  [[nodiscard]] const tree::HeavyPathDecomposition& hpd() const noexcept {
    return *hpd_;
  }

 private:
  const tree::HeavyPathDecomposition* hpd_;
  CodeWeights weights_;
  std::vector<std::vector<bits::Codeword>> pos_code_;  // per path, per pos
  std::vector<bits::BitVec> prefix_;
  std::vector<std::vector<std::uint64_t>> bounds_;
};

}  // namespace treelab::nca
