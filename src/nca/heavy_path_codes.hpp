// HeavyPathCodes — the shared code machinery behind Lemma 2.1 labels and
// the Section 3.6 level-ancestor labels.
//
// For every heavy path it builds Gilbert–Moore position codes (weighted by
// the light mass at each path node) and per-node light-choice codes
// (weighted by subtree sizes, ordered exactly like CollapsedTree's
// domination order). For every path it exposes the concatenated *prefix*:
// the alternating (position, light-choice) codewords of the light edges
// leading to it from the root, together with the component end boundaries.
// A node's full NCA label is prefix(path) + terminal position code.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/alphabetic.hpp"
#include "bits/bitvec.hpp"
#include "tree/hpd.hpp"

namespace treelab::nca {

class HeavyPathCodes {
 public:
  explicit HeavyPathCodes(const tree::HeavyPathDecomposition& hpd);

  /// Concatenated branch codewords above path p (2 components per level).
  [[nodiscard]] const bits::BitVec& prefix(std::int32_t p) const noexcept {
    return prefix_[p];
  }

  /// End bit positions of each component of prefix(p).
  [[nodiscard]] const std::vector<std::uint64_t>& prefix_bounds(
      std::int32_t p) const noexcept {
    return bounds_[p];
  }

  /// Terminal position codeword of node v within its path.
  [[nodiscard]] bits::Codeword terminal(tree::NodeId v) const noexcept {
    const std::int32_t p = hpd_->path_of(v);
    return pos_code_[p][static_cast<std::size_t>(hpd_->pos_in_path(v))];
  }

  [[nodiscard]] const tree::HeavyPathDecomposition& hpd() const noexcept {
    return *hpd_;
  }

 private:
  const tree::HeavyPathDecomposition* hpd_;
  std::vector<std::vector<bits::Codeword>> pos_code_;  // per path, per pos
  std::vector<bits::BitVec> prefix_;
  std::vector<std::vector<std::uint64_t>> bounds_;
};

}  // namespace treelab::nca
