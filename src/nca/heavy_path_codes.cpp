#include "nca/heavy_path_codes.hpp"

#include <algorithm>

#include "bits/bitio.hpp"

namespace treelab::nca {

using bits::BitVec;
using bits::BitWriter;
using bits::Codeword;
using tree::HeavyPathDecomposition;
using tree::kNoNode;
using tree::NodeId;
using tree::Tree;

HeavyPathCodes::HeavyPathCodes(const HeavyPathDecomposition& hpd,
                               CodeWeights weights)
    : hpd_(&hpd), weights_(weights) {
  const Tree& t = hpd.tree();
  const std::int32_t m = hpd.num_paths();
  pos_code_.resize(static_cast<std::size_t>(m));

  struct Branch {
    Codeword pos;
    Codeword light;
  };
  std::vector<Branch> branch_of(static_cast<std::size_t>(m));

  for (std::int32_t p = 0; p < m; ++p) {
    const auto nodes = hpd.path_nodes(p);
    std::vector<std::uint64_t> wts;
    wts.reserve(nodes.size());
    for (NodeId w : nodes) {
      std::uint64_t mass = 1;
      for (NodeId c : t.children(w))
        if (c != hpd.heavy_child(w))
          mass += static_cast<std::uint64_t>(t.subtree_size(c));
      wts.push_back(code_weight(mass, weights_));
    }
    pos_code_[static_cast<std::size_t>(p)] = bits::alphabetic_code(wts);

    for (std::size_t q = 0; q < nodes.size(); ++q) {
      std::vector<NodeId> lights;
      for (NodeId c : t.children(nodes[q]))
        if (c != hpd.heavy_child(nodes[q])) lights.push_back(c);
      if (lights.empty()) continue;
      // kExact: same ordering as CollapsedTree (ascending subtree size,
      // stable), so light-choice code order == domination order.
      // kStablePow2: node-id order (children() order), which never moves
      // when subtrees grow — the stability the incremental path relies on.
      if (weights_ == CodeWeights::kExact)
        std::stable_sort(lights.begin(), lights.end(),
                         [&](NodeId a, NodeId b) {
                           return t.subtree_size(a) < t.subtree_size(b);
                         });
      std::vector<std::uint64_t> lw;
      for (NodeId c : lights)
        lw.push_back(code_weight(
            static_cast<std::uint64_t>(t.subtree_size(c)), weights_));
      const auto lcodes = bits::alphabetic_code(lw);
      for (std::size_t i = 0; i < lights.size(); ++i) {
        const std::int32_t cp = hpd.path_of(lights[i]);
        branch_of[static_cast<std::size_t>(cp)] =
            Branch{pos_code_[static_cast<std::size_t>(p)][q], lcodes[i]};
      }
    }
  }

  prefix_.resize(static_cast<std::size_t>(m));
  bounds_.resize(static_cast<std::size_t>(m));
  std::vector<std::int32_t> order(static_cast<std::size_t>(m));
  for (std::int32_t p = 0; p < m; ++p) order[static_cast<std::size_t>(p)] = p;
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    return hpd.light_depth(hpd.head(a)) < hpd.light_depth(hpd.head(b));
  });
  for (std::int32_t p : order) {
    const NodeId h = hpd.head(p);
    if (t.parent(h) == kNoNode) continue;  // root path: empty prefix
    const std::int32_t pp = hpd.path_of(t.parent(h));
    const Branch& br = branch_of[static_cast<std::size_t>(p)];
    BitWriter w;
    w.append(prefix_[static_cast<std::size_t>(pp)]);
    br.pos.write_to(w);
    std::vector<std::uint64_t> bs = bounds_[static_cast<std::size_t>(pp)];
    bs.push_back(w.bit_count());
    br.light.write_to(w);
    bs.push_back(w.bit_count());
    prefix_[static_cast<std::size_t>(p)] = w.take();
    bounds_[static_cast<std::size_t>(p)] = std::move(bs);
  }
}

}  // namespace treelab::nca
