// NCA labeling scheme (Lemma 2.1): O(log n)-bit labels from which, given the
// labels of u and v alone, one computes lightdepth(u, v) (the light depth of
// NCA(u, v)), the ancestor/descendant relationship, and the relative order
// of the two branches — everything the distance schemes of Sections 3-5
// consume.
//
// Construction (Alstrup et al. style, adapted to the paper's heavy path
// variant): a node's label is the concatenation, over the light levels of
// its root path, of
//     <position code> <light-choice code> ... <position code>,
// where the position code locates the branch (or the node itself, at the
// last level) on the current heavy path and the light-choice code selects
// the light child. Both codes are Gilbert–Moore alphabetic codes weighted by
// subtree sizes, so each level costs ~log(level size / next level size) + O(1)
// bits and the whole label telescopes to O(log n). Codes are prefix-free and
// order-preserving, so two labels can be compared by locating their first
// differing bit; a MonotoneSeq of component boundaries (Lemma 2.2) maps that
// bit position back to a light level in constant time.
//
// Labels live in a pooled LabelArena (one contiguous buffer, word-aligned
// views) and per-node emission can run on several threads; the emitted bits
// are identical for every thread count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bits/bitvec.hpp"
#include "bits/label_arena.hpp"
#include "bits/monotone.hpp"
#include "nca/heavy_path_codes.hpp"
#include "tree/hpd.hpp"
#include "tree/tree.hpp"

namespace treelab::nca {

/// Emits one Lemma 2.1 label from its path's code machinery: the MonotoneSeq
/// of component boundaries, the concatenated branch prefix, then the terminal
/// position codeword. This is the single definition of the NCA label layout —
/// NcaLabeling's bulk build and core::IncrementalRelabeler's dirty-label
/// re-emission both call it, which is what makes "incremental == from
/// scratch" a structural property rather than a hoped-for one.
/// `bounds_scratch` is caller-owned scratch (cleared and refilled).
void emit_nca_label(bits::BitWriter& w, bits::BitSpan prefix,
                    std::span<const std::uint64_t> prefix_bounds,
                    bits::Codeword terminal,
                    std::vector<std::uint64_t>& bounds_scratch);

struct NcaResult {
  enum class Rel : std::uint8_t {
    kEqual,      // identical labels: u == v
    kUAncestor,  // u is a proper ancestor of v
    kVAncestor,  // v is a proper ancestor of u
    kDiverge,    // NCA is a proper ancestor of both
  };
  Rel rel = Rel::kEqual;
  /// lightdepth(NCA(u, v)); for ancestor cases this is the ancestor's light
  /// depth.
  std::int32_t lightdepth = 0;
  /// In the kDiverge case: true if u's branch symbol sorts before v's
  /// (u branches strictly higher on the shared heavy path, or at the same
  /// node with an earlier light child).
  bool u_first = false;
  /// In the kDiverge case: true if both branch at the same path node (their
  /// first differing component is a light-choice code).
  bool same_branch_node = false;
};

/// A pre-parsed NCA label: component boundaries attached once so that each
/// subsequent query is a first-differing-bit scan plus O(1) boundary
/// lookups — the word-RAM constant-time regime of Lemma 2.1. Produced by
/// NcaLabeling::attach().
class AttachedNcaLabel {
 public:
  [[nodiscard]] const bits::BitVec& bits() const noexcept { return raw_; }
  [[nodiscard]] std::int32_t lightdepth() const noexcept;

 private:
  friend class NcaLabeling;
  bits::BitVec raw_;
  bits::MonotoneSeq bounds_;
  std::size_t code_off_ = 0;
  std::size_t code_len_ = 0;
};

class NcaLabeling {
 public:
  using Attached = AttachedNcaLabel;

  /// Builds labels for every node of `hpd.tree()` on up to `threads`
  /// threads (1 = serial, 0 = TREELAB_THREADS / hardware default); the
  /// label bits do not depend on the thread count. `weights` selects the
  /// Gilbert–Moore weight policy (see nca::CodeWeights); queries accept
  /// labels from either policy — the bits are self-describing.
  explicit NcaLabeling(const tree::HeavyPathDecomposition& hpd,
                       int threads = 1,
                       CodeWeights weights = CodeWeights::kExact);

  [[nodiscard]] bits::BitSpan label(tree::NodeId v) const noexcept {
    return labels_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] std::size_t num_labels() const noexcept {
    return labels_.size();
  }

  /// Decodes two labels. Throws bits::DecodeError on malformed input.
  [[nodiscard]] static NcaResult query(bits::BitSpan lu, bits::BitSpan lv);

  /// Light depth recorded in a single label (number of levels - 1).
  [[nodiscard]] static std::int32_t lightdepth_of_label(bits::BitSpan l);

  /// One-time parse of a label for repeated queries.
  [[nodiscard]] static AttachedNcaLabel attach(bits::BitSpan l);

  /// Same result as query(BitSpan, BitSpan) without re-parsing.
  [[nodiscard]] static NcaResult query(const AttachedNcaLabel& lu,
                                       const AttachedNcaLabel& lv);

 private:
  bits::LabelArena labels_;
};

}  // namespace treelab::nca
