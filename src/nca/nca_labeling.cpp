#include "nca/nca_labeling.hpp"

#include <algorithm>
#include <cassert>

#include "bits/bitio.hpp"
#include "nca/heavy_path_codes.hpp"

namespace treelab::nca {

using bits::BitReader;
using bits::BitSpan;
using bits::BitVec;
using bits::BitWriter;
using bits::LabelArena;
using bits::MonotoneSeq;
using tree::HeavyPathDecomposition;
using tree::NodeId;
using tree::Tree;

namespace {

/// A non-owning view of a parsed label (the attached or freshly parsed
/// boundary sequence plus the code area location).
struct View {
  const MonotoneSeq* bounds = nullptr;
  std::size_t code_off = 0;
  std::size_t code_len = 0;
  BitSpan raw;

  [[nodiscard]] bool code_bit(std::size_t i) const {
    return raw.get(code_off + i);
  }
};

/// Parses the boundary sequence out of `l` into `store` and returns a view.
View parse_into(BitSpan l, MonotoneSeq& store) {
  BitReader r(l);
  store = MonotoneSeq::read_from(r);
  if (store.size() == 0) throw bits::DecodeError("NCA label: no components");
  View v;
  v.bounds = &store;
  v.code_off = r.pos();
  v.code_len = store.get(store.size() - 1);
  if (v.code_off + v.code_len > l.size())
    throw bits::DecodeError("NCA label: truncated code area");
  v.raw = l;
  return v;
}

/// First bit position where the code areas differ, or min length if one is a
/// prefix of the other.
std::size_t first_diff(const View& a, const View& b) {
  const std::size_t lim = std::min(a.code_len, b.code_len);
  std::size_t i = 0;
  while (i + 64 <= lim) {
    const std::uint64_t wa = a.raw.read_bits(a.code_off + i, 64);
    const std::uint64_t wb = b.raw.read_bits(b.code_off + i, 64);
    if (wa != wb) return i + static_cast<std::size_t>(bits::lsb(wa ^ wb));
    i += 64;
  }
  if (i < lim) {
    const int rem = static_cast<int>(lim - i);
    const std::uint64_t wa = a.raw.read_bits(a.code_off + i, rem);
    const std::uint64_t wb = b.raw.read_bits(b.code_off + i, rem);
    if (wa != wb) return i + static_cast<std::size_t>(bits::lsb(wa ^ wb));
  }
  return lim;
}

NcaResult query_impl(const View& u, const View& v) {
  const std::size_t d = first_diff(u, v);

  NcaResult out;
  if (d == u.code_len && d == v.code_len) {
    out.rel = NcaResult::Rel::kEqual;
    out.lightdepth = static_cast<std::int32_t>((u.bounds->size() - 1) / 2);
    return out;
  }
  if (d == u.code_len || d == v.code_len) {
    // One code area is a strict prefix of the other. By prefix-freeness of
    // the per-level codes this means the shorter label's terminal position
    // code equals the longer one's position code at the same level, i.e. the
    // shorter label's node lies on the other's root path: proper ancestor.
    const bool u_shorter = u.code_len < v.code_len;
    out.rel =
        u_shorter ? NcaResult::Rel::kUAncestor : NcaResult::Rel::kVAncestor;
    const View& anc = u_shorter ? u : v;
    out.lightdepth = static_cast<std::int32_t>((anc.bounds->size() - 1) / 2);
    return out;
  }

  // Map the differing bit to a component index: the number of boundaries <= d
  // in either label (they agree on all boundaries before the divergence).
  const std::size_t comp = u.bounds->successor(d + 1);
  const std::int32_t level = static_cast<std::int32_t>(comp / 2);
  const bool in_pos_code = (comp % 2) == 0;
  const bool u_first = !u.code_bit(d);  // order-preserving codes: 0 sorts first

  // If the divergence is inside a position code and the smaller position is
  // a terminal component (last component of its label), that node lies on
  // the shared heavy path above the other's branch: proper ancestor.
  if (in_pos_code) {
    const bool u_terminal = u.bounds->size() == comp + 1;
    const bool v_terminal = v.bounds->size() == comp + 1;
    if (u_first && u_terminal) {
      out.rel = NcaResult::Rel::kUAncestor;
      out.lightdepth = level;
      return out;
    }
    if (!u_first && v_terminal) {
      out.rel = NcaResult::Rel::kVAncestor;
      out.lightdepth = level;
      return out;
    }
  }
  out.rel = NcaResult::Rel::kDiverge;
  out.lightdepth = level;
  out.u_first = u_first;
  out.same_branch_node = !in_pos_code;
  return out;
}

}  // namespace

std::int32_t AttachedNcaLabel::lightdepth() const noexcept {
  return static_cast<std::int32_t>((bounds_.size() - 1) / 2);
}

void emit_nca_label(bits::BitWriter& w, bits::BitSpan prefix,
                    std::span<const std::uint64_t> prefix_bounds,
                    bits::Codeword terminal,
                    std::vector<std::uint64_t>& bounds_scratch) {
  const std::size_t code_len =
      prefix.size() + static_cast<std::size_t>(terminal.len);
  bounds_scratch.assign(prefix_bounds.begin(), prefix_bounds.end());
  bounds_scratch.push_back(code_len);
  (void)MonotoneSeq::encode_to(w, bounds_scratch, code_len);
  w.append(prefix);
  terminal.write_to(w);
}

NcaLabeling::NcaLabeling(const HeavyPathDecomposition& hpd, int threads,
                         CodeWeights weights) {
  const Tree& t = hpd.tree();
  const HeavyPathCodes codes(hpd, weights);

  // Label layout: MonotoneSeq of component end positions (in code bits),
  // then the code bits themselves. Emission is per node and pure, so it
  // fans out over the arena's chunked schedule; `bs` is per-worker scratch
  // (the emitter is copied per chunk).
  labels_ = LabelArena::build(
      static_cast<std::size_t>(t.size()), threads,
      [&hpd, &codes, bs = std::vector<std::uint64_t>{}](
          std::size_t i, BitWriter& w) mutable {
        const auto v = static_cast<NodeId>(i);
        const std::int32_t p = hpd.path_of(v);
        emit_nca_label(w, codes.prefix(p), codes.prefix_bounds(p),
                       codes.terminal(v), bs);
      });
}

std::int32_t NcaLabeling::lightdepth_of_label(BitSpan l) {
  MonotoneSeq store;
  const View v = parse_into(l, store);
  return static_cast<std::int32_t>((v.bounds->size() - 1) / 2);
}

AttachedNcaLabel NcaLabeling::attach(BitSpan l) {
  AttachedNcaLabel out;
  out.raw_ = l;
  MonotoneSeq store;
  const View v = parse_into(out.raw_, store);
  out.bounds_ = std::move(store);
  out.code_off_ = v.code_off;
  out.code_len_ = v.code_len;
  return out;
}

NcaResult NcaLabeling::query(BitSpan lu, BitSpan lv) {
  MonotoneSeq su, sv;
  const View u = parse_into(lu, su);
  const View v = parse_into(lv, sv);
  return query_impl(u, v);
}

NcaResult NcaLabeling::query(const AttachedNcaLabel& lu,
                             const AttachedNcaLabel& lv) {
  View u{&lu.bounds_, lu.code_off_, lu.code_len_, lu.raw_};
  View v{&lv.bounds_, lv.code_off_, lv.code_len_, lv.raw_};
  return query_impl(u, v);
}

}  // namespace treelab::nca
