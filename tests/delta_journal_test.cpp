// DeltaJournal unit coverage: clean round-trips, every recovery rule
// (torn tail, stale journal after a checkpoint crash, missing journal),
// the checkpoint/compaction policy, chain discipline (refusal + rechain),
// and poisoning after a failed append. The randomized companion is
// crash_recovery_fuzz_test.
#include "core/delta_journal.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <string>

#include "core/incremental_relabeler.hpp"
#include "core/label_store.hpp"
#include "tree/generators.hpp"
#include "tree/tree.hpp"
#include "util/failpoint.hpp"
#include "util/fs.hpp"
#include "util/io_error.hpp"

namespace treelab {
namespace {

using core::DeltaJournal;
using core::IncrementalRelabeler;
using core::JournalOptions;
using core::LabelDelta;
using core::LabelStore;
using util::FailMode;
namespace failpoint = util::failpoint;

bool arena_equal(const bits::LabelArena& a, const bits::LabelArena& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a.view(i) == b.view(i))) return false;
  return true;
}

class DeltaJournalTest : public testing::Test {
 protected:
  void SetUp() override {
    base_path_ = testing::TempDir() + "treelab_journal_" +
                 testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name() +
                 ".lbl";
    cleanup();
  }
  void TearDown() override {
    failpoint::disarm_all();
    cleanup();
  }
  void cleanup() {
    util::remove_file(base_path_);
    util::remove_file(base_path_ + ".tmp");
    util::remove_file(DeltaJournal::journal_path(base_path_));
    util::remove_file(DeltaJournal::journal_path(base_path_) + ".tmp");
  }

  /// An edit batch shipped as one delta, appended (or not) by the caller.
  static LabelDelta grow(IncrementalRelabeler& r, int leaves) {
    for (int i = 0; i < leaves; ++i)
      r.insert_leaf(static_cast<tree::NodeId>(i % 3));
    LabelDelta d = r.make_delta();
    r.advance_delta(d);
    return d;
  }

  std::string base_path_;
};

TEST_F(DeltaJournalTest, CreateAppendReopenRoundTrip) {
  IncrementalRelabeler r(tree::random_tree(40, 7));
  JournalOptions opt;
  opt.checkpoint_records = 1000;  // no folding in this test
  DeltaJournal j = DeltaJournal::create(base_path_, r.to_loaded(), opt);
  EXPECT_TRUE(j.recovery().created);
  for (int batch = 0; batch < 3; ++batch) j.append(grow(r, 5));
  EXPECT_EQ(j.record_count(), 3u);
  EXPECT_TRUE(arena_equal(j.labels(), r.labels()));

  DeltaJournal j2 = DeltaJournal::open(base_path_, opt);
  EXPECT_EQ(j2.recovery().records_replayed, 3u);
  EXPECT_EQ(j2.recovery().bytes_truncated, 0u);
  EXPECT_FALSE(j2.recovery().journal_reset);
  EXPECT_TRUE(arena_equal(j2.labels(), r.labels()));
  EXPECT_EQ(j2.chain(), j.chain());
  EXPECT_EQ(j2.scheme(), r.scheme_tag());
  // The recovered journal keeps accepting the producer's chain.
  j2.append(grow(r, 4));
  EXPECT_TRUE(arena_equal(j2.labels(), r.labels()));
}

TEST_F(DeltaJournalTest, GarbageTailIsTruncated) {
  IncrementalRelabeler r(tree::random_tree(30, 3));
  JournalOptions opt;
  opt.checkpoint_records = 1000;
  DeltaJournal j = DeltaJournal::create(base_path_, r.to_loaded(), opt);
  j.append(grow(r, 4));
  j.append(grow(r, 4));
  const bits::LabelArena committed = j.labels();
  const std::string jpath = DeltaJournal::journal_path(base_path_);
  const std::uint64_t good_size = util::file_size(jpath);
  // A crash mid-frame: half a record magic and garbage.
  util::append_file(jpath, std::string("TLRC\x01garbage-tail", 17), true);

  DeltaJournal j2 = DeltaJournal::open(base_path_, opt);
  EXPECT_EQ(j2.recovery().records_replayed, 2u);
  EXPECT_EQ(j2.recovery().bytes_truncated, 17u);
  EXPECT_TRUE(arena_equal(j2.labels(), committed));
  EXPECT_EQ(util::file_size(jpath), good_size);  // tail really dropped
}

TEST_F(DeltaJournalTest, TornAppendRecoversToLastCommittedEpoch) {
  IncrementalRelabeler r(tree::random_tree(30, 4));
  JournalOptions opt;
  opt.checkpoint_records = 1000;
  DeltaJournal j = DeltaJournal::create(base_path_, r.to_loaded(), opt);
  j.append(grow(r, 4));
  const bits::LabelArena committed = j.labels();
  const std::uint64_t committed_chain = j.chain();

  // Tear the next append 10 bytes in: the journal object poisons, the
  // file ends mid-frame.
  failpoint::arm("fs.write", FailMode::kTornWrite, 0, 1, 10);
  const LabelDelta d = grow(r, 4);
  EXPECT_THROW(j.append(d), util::FailpointAbort);
  EXPECT_FALSE(j.healthy());
  EXPECT_THROW(j.append(d), std::logic_error);  // poisoned until reopen
  failpoint::disarm_all();

  DeltaJournal j2 = DeltaJournal::open(base_path_, opt);
  EXPECT_GT(j2.recovery().bytes_truncated, 0u);
  EXPECT_TRUE(arena_equal(j2.labels(), committed));
  EXPECT_EQ(j2.chain(), committed_chain);
  // The torn delta can be re-appended verbatim: its base epoch is exactly
  // where recovery landed.
  j2.append(d);
  EXPECT_TRUE(arena_equal(j2.labels(), r.labels()));
}

TEST_F(DeltaJournalTest, CheckpointFoldsAndPreservesChain) {
  IncrementalRelabeler r(tree::random_tree(30, 5));
  JournalOptions opt;
  opt.checkpoint_records = 2;  // auto-fold every second append
  DeltaJournal j = DeltaJournal::create(base_path_, r.to_loaded(), opt);
  j.append(grow(r, 3));
  EXPECT_EQ(j.record_count(), 1u);
  j.append(grow(r, 3));  // triggers the fold
  EXPECT_EQ(j.record_count(), 0u);
  EXPECT_GE(j.stats().checkpoints, 1u);
  // The fold preserved the chain: the producer keeps shipping as if
  // nothing happened.
  j.append(grow(r, 3));
  EXPECT_TRUE(arena_equal(j.labels(), r.labels()));
  // And the folded base alone reproduces the folded epoch on reopen.
  DeltaJournal j2 = DeltaJournal::open(base_path_, opt);
  EXPECT_TRUE(arena_equal(j2.labels(), r.labels()));
  EXPECT_EQ(j2.chain(), j.chain());
}

TEST_F(DeltaJournalTest, StaleJournalAfterCheckpointCrashIsReset) {
  IncrementalRelabeler r(tree::random_tree(30, 6));
  JournalOptions opt;
  opt.checkpoint_records = 1000;
  DeltaJournal j = DeltaJournal::create(base_path_, r.to_loaded(), opt);
  j.append(grow(r, 4));
  // Simulate the checkpoint crash window by hand: keep the OLD journal
  // bytes, let checkpoint() replace the base, then put the old journal
  // back — new base + stale journal is exactly what the window leaves.
  const std::string jpath = DeltaJournal::journal_path(base_path_);
  const std::string old_journal = util::read_file(jpath);
  j.checkpoint();
  const bits::LabelArena committed = j.labels();
  util::atomic_write_file(jpath, old_journal);

  DeltaJournal j2 = DeltaJournal::open(base_path_, opt);
  EXPECT_TRUE(j2.recovery().journal_reset);
  EXPECT_EQ(j2.recovery().records_replayed, 0u);
  EXPECT_TRUE(arena_equal(j2.labels(), committed));
  // The reset rebased the chain; a producer must rechain to follow.
  EXPECT_EQ(j2.chain(), LabelStore::lens_hash(committed));
  LabelDelta d = grow(r, 3);
  EXPECT_THROW(j2.append(d), std::runtime_error);
  LabelStore::rechain(d, j2.chain());
  j2.append(d);
  EXPECT_TRUE(arena_equal(j2.labels(), r.labels()));
}

TEST_F(DeltaJournalTest, MissingJournalIsRecreated) {
  IncrementalRelabeler r(tree::random_tree(25, 8));
  DeltaJournal j = DeltaJournal::create(base_path_, r.to_loaded());
  j.append(grow(r, 3));
  j.checkpoint();
  util::remove_file(DeltaJournal::journal_path(base_path_));
  DeltaJournal j2 = DeltaJournal::open(base_path_);
  EXPECT_TRUE(j2.recovery().journal_reset);
  EXPECT_TRUE(arena_equal(j2.labels(), j.labels()));
}

TEST_F(DeltaJournalTest, CorruptHeaderThrows) {
  IncrementalRelabeler r(tree::random_tree(25, 9));
  DeltaJournal j = DeltaJournal::create(base_path_, r.to_loaded());
  const std::string jpath = DeltaJournal::journal_path(base_path_);
  std::string bytes = util::read_file(jpath);
  bytes[9] ^= 0x40;  // flip a bit inside the atomically-written header
  util::atomic_write_file(jpath, bytes);
  EXPECT_THROW((void)DeltaJournal::open(base_path_), std::runtime_error);
}

TEST_F(DeltaJournalTest, MissingBaseIsIoErrorWithPath) {
  try {
    (void)DeltaJournal::open(base_path_);
    FAIL() << "expected IoError";
  } catch (const util::IoError& e) {
    EXPECT_EQ(e.path(), base_path_);
    EXPECT_EQ(e.error_code(), ENOENT);
  }
}

TEST_F(DeltaJournalTest, ChainAndSchemeMismatchRefusedWithoutPoisoning) {
  IncrementalRelabeler r(tree::random_tree(25, 10));
  DeltaJournal j = DeltaJournal::create(base_path_, r.to_loaded());
  LabelDelta d = grow(r, 3);
  LabelDelta skipped = grow(r, 3);  // chains from d, not from the journal
  EXPECT_THROW(j.append(skipped), std::runtime_error);
  LabelDelta wrong_scheme = d;
  wrong_scheme.scheme = "not-a-scheme";
  EXPECT_THROW(j.append(wrong_scheme), std::invalid_argument);
  EXPECT_TRUE(j.healthy());  // integrity refusals never poison
  j.append(d);
  j.append(skipped);
  EXPECT_TRUE(arena_equal(j.labels(), r.labels()));
}

TEST_F(DeltaJournalTest, UnsyncedAppendsStillRecover) {
  IncrementalRelabeler r(tree::random_tree(30, 11));
  JournalOptions opt;
  opt.sync = false;
  opt.checkpoint_records = 1000;
  DeltaJournal j = DeltaJournal::create(base_path_, r.to_loaded(), opt);
  for (int b = 0; b < 4; ++b) j.append(grow(r, 3));
  DeltaJournal j2 = DeltaJournal::open(base_path_, opt);
  EXPECT_EQ(j2.recovery().records_replayed, 4u);
  EXPECT_TRUE(arena_equal(j2.labels(), r.labels()));
}

}  // namespace
}  // namespace treelab
