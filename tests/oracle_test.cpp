// Graph substrate and SpanningOracle: BFS correctness, the oracle's
// upper-bound guarantee, exactness on trees, and improvement with landmarks.
#include <gtest/gtest.h>

#include <random>

#include "bits/bitio.hpp"
#include "core/spanning_oracle.hpp"
#include "tree/generators.hpp"
#include "tree/graph.hpp"
#include "tree/nca_index.hpp"

namespace {

using namespace treelab;
using core::SpanningOracle;
using tree::Graph;
using tree::NodeId;

TEST(Graph, BasicsAndValidation) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.size(), 4);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_FALSE(g.connected());
  g.add_edge(2, 3);
  EXPECT_TRUE(g.connected());
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 9), std::invalid_argument);
  EXPECT_THROW(Graph(0), std::invalid_argument);
}

TEST(Graph, BfsDistancesAgainstFloydWarshall) {
  const Graph g = Graph::random_connected(60, 50, 3);
  const int n = g.size();
  std::vector<std::vector<int>> d(static_cast<std::size_t>(n),
                                  std::vector<int>(static_cast<std::size_t>(n),
                                                   1 << 20));
  for (NodeId v = 0; v < n; ++v) {
    d[v][v] = 0;
    for (NodeId w : g.neighbors(v)) d[v][w] = 1;
  }
  for (int k = 0; k < n; ++k)
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
  for (NodeId src = 0; src < n; src += 7) {
    const auto got = g.bfs_distances(src);
    for (NodeId v = 0; v < n; ++v)
      EXPECT_EQ(got[v], d[src][v]) << src << "->" << v;
  }
}

TEST(Graph, BfsTreePreservesRootDistances) {
  const Graph g = Graph::random_connected(200, 300, 5);
  for (NodeId root : {0, 57, 199}) {
    const tree::Tree t = g.bfs_tree(root);
    const auto d = g.bfs_distances(root);
    // In the tree, node ids are preserved and the root's distances match.
    const tree::NcaIndex oracle(t);
    EXPECT_EQ(t.root(), root);
    for (NodeId v = 0; v < t.size(); ++v)
      EXPECT_EQ(oracle.distance(root, v), static_cast<std::uint64_t>(d[v]));
  }
}

TEST(SpanningOracleTest, NeverUndershootsAndImproves) {
  const Graph g = Graph::random_connected(300, 600, 11);
  std::vector<std::vector<std::int32_t>> truth;
  for (NodeId v = 0; v < g.size(); ++v) truth.push_back(g.bfs_distances(v));

  double prev_total = 1e18;
  for (int landmarks : {1, 3, 6}) {
    const SpanningOracle o(g, landmarks);
    double total = 0;
    for (NodeId u = 0; u < g.size(); u += 5)
      for (NodeId v = 0; v < g.size(); v += 7) {
        const auto est = SpanningOracle::query(o.state(u), o.state(v));
        ASSERT_GE(est, static_cast<std::uint64_t>(truth[u][v]))
            << u << " " << v;
        total += static_cast<double>(est);
      }
    EXPECT_LE(total, prev_total);  // more landmarks never hurt (same roots
                                   // prefix under the degree policy)
    prev_total = total;
  }
}

TEST(SpanningOracleTest, ExactOnTrees) {
  // If the graph is a tree, one landmark suffices for exactness.
  const tree::Tree t = tree::random_tree(150, 9);
  Graph g(t.size());
  for (NodeId v = 0; v < t.size(); ++v)
    if (t.parent(v) != tree::kNoNode) g.add_edge(v, t.parent(v));
  const SpanningOracle o(g, 1);
  const tree::NcaIndex oracle(t);
  for (NodeId u = 0; u < t.size(); ++u)
    for (NodeId v = 0; v < t.size(); v += 3)
      ASSERT_EQ(SpanningOracle::query(o.state(u), o.state(v)),
                oracle.distance(u, v));
}

TEST(SpanningOracleTest, PoliciesAndValidation) {
  const Graph g = Graph::random_connected(80, 100, 2);
  const SpanningOracle deg(g, 4, SpanningOracle::LandmarkPolicy::kHighestDegree);
  const SpanningOracle rnd(g, 4, SpanningOracle::LandmarkPolicy::kRandom, 7);
  for (NodeId u = 0; u < g.size(); u += 11)
    for (NodeId v = 0; v < g.size(); v += 13) {
      const auto truth = g.bfs_distances(u);
      EXPECT_GE(SpanningOracle::query(rnd.state(u), rnd.state(v)),
                static_cast<std::uint64_t>(truth[v]));
    }
  EXPECT_THROW(SpanningOracle(g, 0), std::invalid_argument);
  EXPECT_THROW(SpanningOracle(g, g.size() + 1), std::invalid_argument);
  Graph disconnected(3);
  EXPECT_THROW(SpanningOracle(disconnected, 1), std::invalid_argument);
  // Mismatched states (different landmark counts) must throw.
  const SpanningOracle other(g, 2);
  EXPECT_THROW(
      (void)SpanningOracle::query(deg.state(0), other.state(1)),
      bits::DecodeError);
}

}  // namespace
