// Zero-copy serving coverage: the mappable (version-2) LabelStore container
// must round-trip byte-identical with the streamed loaders through
// bits::MappedArena — mmap'ed views, the owned-arena fallback, and version-1
// files all serve the same bits — and every truncation/corruption of a
// mappable file must fail loudly through open_mapped().
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bits/mapped_arena.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/label_store.hpp"
#include "tree/generators.hpp"
#include "tree/nca_index.hpp"
#include "util/failpoint.hpp"

namespace {

using namespace treelab;
using tree::NodeId;
using tree::Tree;

constexpr NodeId kN = 260;

std::string temp_path(const char* name) {
  return testing::TempDir() + "treelab_mapped_" + name + ".lbl";
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string mappable_wire(const bits::LabelArena& labels, const char* scheme,
                          const char* params) {
  std::stringstream ss;
  core::LabelStore::save_mappable(ss, scheme, labels, params);
  return ss.str();
}

TEST(MappedArena, MappableFileServesZeroCopyAndBitIdentical) {
  const Tree t = tree::random_tree(kN, 51);
  const core::FgnwScheme s(t);
  const std::string path = temp_path("fgnw_v2");
  write_file(path, mappable_wire(s.labels(), "fgnw", "opt=none"));

  const auto opened = core::LabelStore::open_mapped(path);
  EXPECT_EQ(opened.scheme, "fgnw");
  EXPECT_EQ(opened.params, "opt=none");
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(opened.labels.mapped());
#endif
  ASSERT_EQ(opened.labels.size(), s.labels().size());
  for (std::size_t i = 0; i < s.labels().size(); ++i) {
    EXPECT_EQ(opened.labels.label_bits(i), s.labels().label_bits(i));
    EXPECT_TRUE(opened.labels.view(i) == s.labels().view(i)) << "label " << i;
  }
  EXPECT_EQ(opened.labels.total_label_bits(), s.labels().total_label_bits());

  // Byte-identical with the streamed arena loader over the same file.
  std::ifstream in(path, std::ios::binary);
  const auto streamed = core::LabelStore::load_arena(in);
  ASSERT_EQ(streamed.labels.size(), opened.labels.size());
  for (std::size_t i = 0; i < streamed.labels.size(); ++i)
    EXPECT_TRUE(streamed.labels.view(i) == opened.labels.view(i))
        << "label " << i;

  // And the mapped views answer queries exactly.
  const tree::NcaIndex oracle(t);
  for (NodeId u = 0; u < kN; u += 11)
    for (NodeId v = 0; v < kN; v += 17)
      ASSERT_EQ(core::FgnwScheme::query(opened.labels[u], opened.labels[v]),
                oracle.distance(u, v));
  std::remove(path.c_str());
}

TEST(MappedArena, MapFailureFallsBackToStreamedReadBitIdentical) {
  // When mmap is unavailable (here: forced off via the failpoint), a
  // mappable file must still open — streamed into an owned arena — and
  // serve the exact same bits as the zero-copy path.
  const Tree t = tree::random_tree(kN, 57);
  const core::FgnwScheme s(t);
  const std::string path = temp_path("fgnw_nofallocmap");
  write_file(path, mappable_wire(s.labels(), "fgnw", ""));

  util::failpoint::arm("mapped_arena.map", util::FailMode::kError);
  const auto fallback = core::LabelStore::open_mapped(path);
  util::failpoint::disarm_all();
  EXPECT_FALSE(fallback.labels.mapped());

  const auto mapped = core::LabelStore::open_mapped(path);
  ASSERT_EQ(fallback.labels.size(), mapped.labels.size());
  for (std::size_t i = 0; i < mapped.labels.size(); ++i) {
    EXPECT_EQ(fallback.labels.label_bits(i), mapped.labels.label_bits(i));
    EXPECT_TRUE(fallback.labels.view(i) == mapped.labels.view(i))
        << "label " << i;
  }
  EXPECT_EQ(fallback.labels.total_label_bits(),
            mapped.labels.total_label_bits());
  // The fallback arena answers queries exactly like the scheme.
  const tree::NcaIndex oracle(t);
  for (NodeId u = 0; u < kN; u += 13)
    for (NodeId v = 0; v < kN; v += 19)
      ASSERT_EQ(
          core::FgnwScheme::query(fallback.labels[u], fallback.labels[v]),
          oracle.distance(u, v));
  std::remove(path.c_str());
}

TEST(MappedArena, Version2StreamsThroughBothLoaders) {
  const Tree t = tree::random_tree(kN, 52);
  const core::FgnwScheme s(t);
  std::stringstream v1, v2;
  core::LabelStore::save(v1, "fgnw", s.labels());
  core::LabelStore::save_mappable(v2, "fgnw", s.labels());

  const auto l1 = core::LabelStore::load(v1);
  std::stringstream v2a(v2.str()), v2b(v2.str());
  const auto l2 = core::LabelStore::load(v2a);
  const auto a2 = core::LabelStore::load_arena(v2b);
  ASSERT_EQ(l1.labels.size(), l2.labels.size());
  ASSERT_EQ(l1.labels.size(), a2.labels.size());
  for (std::size_t i = 0; i < l1.labels.size(); ++i) {
    EXPECT_TRUE(l1.labels[i] == l2.labels[i]) << "label " << i;
    EXPECT_TRUE(l1.labels[i] == a2.labels.view(i)) << "label " << i;
  }
}

TEST(MappedArena, Version1FileFallsBackToOwnedArena) {
  const Tree t = tree::random_tree(120, 53);
  const core::FgnwScheme s(t);
  std::stringstream ss;
  core::LabelStore::save(ss, "fgnw", s.labels());
  const std::string path = temp_path("fgnw_v1");
  write_file(path, ss.str());

  const auto opened = core::LabelStore::open_mapped(path);
  EXPECT_FALSE(opened.labels.mapped());
  ASSERT_EQ(opened.labels.size(), s.labels().size());
  for (std::size_t i = 0; i < s.labels().size(); ++i)
    EXPECT_TRUE(opened.labels.view(i) == s.labels().view(i)) << "label " << i;
  std::remove(path.c_str());
}

TEST(MappedArena, AdoptedArenaServesIdentically) {
  const Tree t = tree::random_tree(90, 54);
  const core::FgnwScheme s(t);
  std::stringstream ss;
  core::LabelStore::save(ss, "fgnw", s.labels());
  auto loaded = core::LabelStore::load_arena(ss);
  const std::size_t n = loaded.labels.size();
  const bits::MappedArena adopted =
      bits::MappedArena::adopt(std::move(loaded.labels));
  EXPECT_FALSE(adopted.mapped());
  ASSERT_EQ(adopted.size(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_TRUE(adopted.view(i) == s.labels().view(i)) << "label " << i;
}

TEST(MappedArena, TruncatedMappableFileThrowsEverywhere) {
  const Tree t = tree::random_tree(60, 55);
  const core::FgnwScheme s(t);
  const std::string wire = mappable_wire(s.labels(), "fgnw", "p=1");
  const std::string path = temp_path("trunc");
  for (std::size_t len = 0; len < wire.size(); len += 1 + len / 9) {
    write_file(path, wire.substr(0, len));
    EXPECT_THROW((void)core::LabelStore::open_mapped(path),
                 std::runtime_error)
        << "prefix " << len;
    std::stringstream in(wire.substr(0, len));
    EXPECT_THROW((void)core::LabelStore::load_arena(in), std::runtime_error)
        << "stream prefix " << len;
  }
  std::remove(path.c_str());
}

TEST(MappedArena, CorruptDirectoryThrows) {
  const Tree t = tree::random_tree(40, 56);
  const core::FgnwScheme s(t);
  std::string wire = mappable_wire(s.labels(), "fgnw", "");
  // The first directory entry sits right after the header
  // (4+4+4+"fgnw"+4+""+8 bytes); poke its high byte to an implausible
  // length (> 2^32 bits).
  const std::size_t dir_off = 4 + 4 + 4 + 4 + 4 + 0 + 8;
  std::string bad = wire;
  bad[dir_off + 7] = '\x01';
  const std::string path = temp_path("corrupt_dir");
  write_file(path, bad);
  EXPECT_THROW((void)core::LabelStore::open_mapped(path), std::runtime_error);

  // A plausible but oversized length (file too small for the promised
  // words) must fail through the fallback loader, not serve garbage.
  bad = wire;
  bad[dir_off + 2] = '\x7f';  // +8M bits on label 0
  write_file(path, bad);
  EXPECT_THROW((void)core::LabelStore::open_mapped(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(MappedArena, AdversarialLengthDirectoryCannotWrapTheWordCount) {
  // A length directory whose running word count overflows size_t used to
  // wrap to a tiny total, pass the file-size check, and hand out BitSpans
  // pointing far outside the mapping. map() must refuse instead (nullopt →
  // the caller's streamed fallback reports the corruption).
  const std::string path = temp_path("overflow_dir");
  write_file(path, std::string(64, '\x5a'));

  // One entry near SIZE_MAX: the naive (len + 63) / 64 itself wraps.
  {
    std::vector<std::size_t> lens{SIZE_MAX - 10};
    EXPECT_FALSE(
        bits::MappedArena::map(path.c_str(), 0, std::move(lens)).has_value());
  }
  // Several huge entries whose word counts only overflow when summed.
  {
    const std::size_t big = SIZE_MAX / 2;
    std::vector<std::size_t> lens{big, big, big};
    EXPECT_FALSE(
        bits::MappedArena::map(path.c_str(), 0, std::move(lens)).has_value());
  }
  // Sane directories still map.
  {
    std::vector<std::size_t> lens{64, 130, 1};
    const auto arena =
        bits::MappedArena::map(path.c_str(), 0, std::move(lens));
#if defined(__unix__) || defined(__APPLE__)
    ASSERT_TRUE(arena.has_value());
    EXPECT_EQ(arena->size(), 3u);
    EXPECT_EQ(arena->label_bits(1), 130u);
#endif
  }
  std::remove(path.c_str());
}

TEST(MappedArena, OverflowingDirectoryInAV2FileFailsLoudly) {
  // The same defence through LabelStore: a version-2 file whose directory
  // promises astronomically long labels must throw from every loader, not
  // serve out-of-bounds views. Directory entries are also individually
  // bounded, so craft the largest per-entry value that passes the bound —
  // the file-size checks must still catch it.
  const Tree t = tree::random_tree(8, 57);
  const core::FgnwScheme s(t);
  std::string wire = mappable_wire(s.labels(), "fgnw", "");
  const std::size_t dir_off = 4 + 4 + 4 + 4 + 4 + 0 + 8;
  for (std::size_t e = 0; e < 8; ++e) {  // every entry 2^32 bits
    wire[dir_off + e * 8 + 0] = '\0';
    wire[dir_off + e * 8 + 1] = '\0';
    wire[dir_off + e * 8 + 2] = '\0';
    wire[dir_off + e * 8 + 3] = '\0';
    wire[dir_off + e * 8 + 4] = '\x01';
  }
  const std::string path = temp_path("overflow_v2");
  write_file(path, wire);
  EXPECT_THROW((void)core::LabelStore::open_mapped(path), std::runtime_error);
  std::stringstream in(wire);
  EXPECT_THROW((void)core::LabelStore::load_arena(in), std::runtime_error);
  std::remove(path.c_str());
}

TEST(MappedArena, EmptyLabelingRoundtrips) {
  const bits::LabelArena empty;
  const std::string path = temp_path("empty");
  write_file(path, mappable_wire(empty, "fgnw", ""));
  const auto opened = core::LabelStore::open_mapped(path);
  EXPECT_EQ(opened.scheme, "fgnw");
  EXPECT_EQ(opened.labels.size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
