// TREELAB_THREADS is operator input: the build side reads it on every
// construction, so rejecting nonsense (zero, garbage, overflow) and
// clamping ambition (more threads than cores) must be exact — a bad value
// silently becoming 0 workers or 2^31 std::threads would take the serving
// node down with it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "util/parallel.hpp"

namespace {

using treelab::util::parse_thread_count;
using treelab::util::thread_count;

TEST(ThreadConfig, AcceptsWholeNumbersInRange) {
  EXPECT_EQ(parse_thread_count("1", 8), 1);
  EXPECT_EQ(parse_thread_count("4", 8), 4);
  EXPECT_EQ(parse_thread_count("8", 8), 8);
  EXPECT_EQ(parse_thread_count(" 3", 8), 3);  // strtol-style leading blanks
}

TEST(ThreadConfig, RejectsZeroAndNegatives) {
  EXPECT_EQ(parse_thread_count("0", 8), 8);
  EXPECT_EQ(parse_thread_count("-1", 8), 8);
  EXPECT_EQ(parse_thread_count("-999", 8), 8);
}

TEST(ThreadConfig, RejectsGarbage) {
  EXPECT_EQ(parse_thread_count("", 8), 8);
  EXPECT_EQ(parse_thread_count("abc", 8), 8);
  EXPECT_EQ(parse_thread_count("4x", 8), 8);
  EXPECT_EQ(parse_thread_count("4 2", 8), 8);
  EXPECT_EQ(parse_thread_count("1.5", 8), 8);
  EXPECT_EQ(parse_thread_count("0x10", 8), 8);
  EXPECT_EQ(parse_thread_count(nullptr, 8), 8);
}

TEST(ThreadConfig, RejectsOverflowAndClampsToHardware) {
  EXPECT_EQ(parse_thread_count("99999999999999999999999999", 8), 8);
  EXPECT_EQ(parse_thread_count("2147483648", 4), 4);  // > INT_MAX on LP32
  EXPECT_EQ(parse_thread_count("64", 8), 8);          // clamp, not reject
  EXPECT_EQ(parse_thread_count("9", 8), 8);
}

TEST(ThreadConfig, RejectionsAreCountedNotSilent) {
  // A typo'd TREELAB_THREADS must not masquerade as a deliberate setting:
  // every rejection bumps the counter (and the first one prints a stderr
  // warning — the counter is the machine-checkable side of that). Clamping
  // a too-ambitious-but-valid value is not a rejection.
  using treelab::util::thread_env_rejections;
  const std::uint64_t before = thread_env_rejections();
  EXPECT_EQ(parse_thread_count("4", 8), 4);
  EXPECT_EQ(parse_thread_count("64", 8), 8);  // clamp: valid, no rejection
  EXPECT_EQ(parse_thread_count(nullptr, 8), 8);  // unset: the default
  EXPECT_EQ(thread_env_rejections(), before);
  EXPECT_EQ(parse_thread_count("4x", 8), 8);
  EXPECT_EQ(thread_env_rejections(), before + 1);
  EXPECT_EQ(parse_thread_count("0", 8), 8);
  EXPECT_EQ(parse_thread_count("", 8), 8);
  EXPECT_EQ(parse_thread_count("99999999999999999999999999", 8), 8);
  EXPECT_EQ(thread_env_rejections(), before + 4);
  // And through the env-reading entry point too.
  setenv("TREELAB_THREADS", "not-a-number", 1);
  (void)thread_count();
  EXPECT_EQ(thread_env_rejections(), before + 5);
  unsetenv("TREELAB_THREADS");
}

TEST(ThreadConfig, RejectionCounterIsOnTheMetricsRegistry) {
  // The rejection counter's second consumer: the global obs registry
  // exposes it as `util.thread_env_rejections` (e.g. in a Stats RPC dump),
  // and the exposed value is the live counter, not a stale copy.
  using treelab::util::thread_env_rejections;
  (void)parse_thread_count("definitely-not-a-number", 8);
  bool found = false;
  for (const auto& s : treelab::obs::Registry::global().snapshot())
    if (s.name == "util.thread_env_rejections") {
      found = true;
      EXPECT_EQ(s.value, thread_env_rejections());
      EXPECT_GE(s.value, 1u);
    }
  EXPECT_TRUE(found);
}

TEST(ThreadConfig, ThreadCountHonorsTheEnvironment) {
  const unsigned hwc = std::thread::hardware_concurrency();
  const int hw = hwc >= 1 ? static_cast<int>(hwc) : 1;

  setenv("TREELAB_THREADS", "1", 1);
  EXPECT_EQ(thread_count(), 1);
  setenv("TREELAB_THREADS", "garbage", 1);
  EXPECT_EQ(thread_count(), hw);
  setenv("TREELAB_THREADS", "0", 1);
  EXPECT_EQ(thread_count(), hw);
  setenv("TREELAB_THREADS", std::to_string(hw + 100).c_str(), 1);
  EXPECT_EQ(thread_count(), hw);  // clamped
  unsetenv("TREELAB_THREADS");
  EXPECT_EQ(thread_count(), hw);
}

}  // namespace
