// ApproxScheme (Section 5): every answer must lie in [d, (1+eps) d], for
// both encodings, across eps values, shapes and weighted trees.
#include <gtest/gtest.h>

#include "core/approx_scheme.hpp"
#include "tree/generators.hpp"
#include "tree/nca_index.hpp"

namespace {

using namespace treelab;
using core::ApproxScheme;

void expect_approx(const tree::Tree& t, double eps,
                   ApproxScheme::Encoding enc) {
  const ApproxScheme s(t, eps, enc);
  const tree::NcaIndex oracle(t);
  for (tree::NodeId u = 0; u < t.size(); ++u)
    for (tree::NodeId v = 0; v < t.size(); ++v) {
      const std::uint64_t got = ApproxScheme::query(eps, s.label(u), s.label(v));
      const std::uint64_t want = oracle.distance(u, v);
      ASSERT_GE(got, want) << "u=" << u << " v=" << v << " eps=" << eps;
      ASSERT_LE(static_cast<double>(got),
                (1.0 + eps) * static_cast<double>(want) + 1e-9)
          << "u=" << u << " v=" << v << " eps=" << eps << " d=" << want;
    }
}

TEST(Approx, RandomMonotone) {
  for (double eps : {1.0, 0.5, 0.25, 0.1, 0.03125})
    for (std::uint64_t seed = 0; seed < 3; ++seed)
      expect_approx(tree::random_tree(60, seed), eps,
                    ApproxScheme::Encoding::kMonotone);
}

TEST(Approx, RandomUnary) {
  for (double eps : {1.0, 0.5, 0.125})
    for (std::uint64_t seed = 0; seed < 3; ++seed)
      expect_approx(tree::random_tree(60, seed), eps,
                    ApproxScheme::Encoding::kUnary);
}

TEST(Approx, Shapes) {
  for (const auto& shape : tree::standard_shapes())
    expect_approx(shape.make(64, 5), 0.2, ApproxScheme::Encoding::kMonotone);
}

TEST(Approx, Weighted) {
  expect_approx(tree::hm_tree(4, 32, 11), 0.25,
                ApproxScheme::Encoding::kMonotone);
}

TEST(Approx, MonotoneBeatsUnaryForSmallEps) {
  const auto t = tree::random_tree(4096, 7);
  const ApproxScheme mono(t, 1.0 / 64, ApproxScheme::Encoding::kMonotone);
  const ApproxScheme unary(t, 1.0 / 64, ApproxScheme::Encoding::kUnary);
  EXPECT_LT(mono.stats().max_bits, unary.stats().max_bits);
}

TEST(Approx, RejectsBadEps) {
  EXPECT_THROW(ApproxScheme(tree::path(4), 0.0), std::invalid_argument);
  EXPECT_THROW(ApproxScheme(tree::path(4), 1.5), std::invalid_argument);
}

}  // namespace
