// Tests for the tree substrate: Tree construction/validation, generators
// (including the paper's lower-bound families), binarization, heavy path
// decomposition invariants, collapsed tree / domination order, and the
// ground-truth NCA index.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "tree/binarize.hpp"
#include "tree/collapsed.hpp"
#include "tree/generators.hpp"
#include "tree/hpd.hpp"
#include "tree/io.hpp"
#include "tree/nca_index.hpp"

namespace {

using namespace treelab;
using tree::kNoNode;
using tree::NodeId;
using tree::Tree;

// Brute-force distance by walking parents.
std::uint64_t slow_distance(const Tree& t, NodeId u, NodeId v) {
  std::map<NodeId, std::uint64_t> up;
  std::uint64_t d = 0;
  for (NodeId x = u; x != kNoNode; x = t.parent(x)) {
    up[x] = d;
    if (x != t.root()) d += t.weight(x);
  }
  d = 0;
  for (NodeId x = v; x != kNoNode; x = t.parent(x)) {
    if (auto it = up.find(x); it != up.end()) return it->second + d;
    if (x != t.root()) d += t.weight(x);
  }
  ADD_FAILURE() << "no common ancestor";
  return 0;
}

TEST(Tree, ValidationRejectsBadInput) {
  EXPECT_THROW(Tree(std::vector<NodeId>{}), std::invalid_argument);
  EXPECT_THROW(Tree({0}), std::invalid_argument);           // self-root loop
  EXPECT_THROW(Tree({kNoNode, kNoNode}), std::invalid_argument);  // two roots
  EXPECT_THROW(Tree({1, 0}), std::invalid_argument);        // cycle, no root
  EXPECT_THROW(Tree({kNoNode, 5}), std::invalid_argument);  // bad parent id
  EXPECT_THROW(Tree({kNoNode, 0}, {1, 1, 1}), std::invalid_argument);
}

TEST(Tree, BasicAccessors) {
  // 0 -> {1, 2}, 1 -> {3}
  const Tree t({kNoNode, 0, 0, 1}, {0, 2, 3, 4});
  EXPECT_EQ(t.size(), 4);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.subtree_size(0), 4);
  EXPECT_EQ(t.subtree_size(1), 2);
  EXPECT_EQ(t.depth(3), 2);
  EXPECT_EQ(t.root_distance(3), 6u);
  EXPECT_FALSE(t.is_unit_weighted());
  EXPECT_EQ(t.total_weight(), 9u);
  EXPECT_TRUE(t.is_leaf(3));
  EXPECT_FALSE(t.is_leaf(1));
  const auto pre = t.preorder();
  EXPECT_EQ(pre.size(), 4u);
  EXPECT_EQ(pre[0], 0);
}

TEST(Tree, FromEdges) {
  const std::vector<std::pair<NodeId, NodeId>> edges{{0, 1}, {2, 1}, {2, 3}};
  const Tree t = Tree::from_edges(4, edges, 1);
  EXPECT_EQ(t.root(), 1);
  EXPECT_EQ(t.depth(3), 2);
  EXPECT_THROW(Tree::from_edges(3, edges, 0), std::invalid_argument);
}

TEST(Generators, Shapes) {
  EXPECT_EQ(tree::path(5).depth(4), 4);
  EXPECT_EQ(tree::star(5).subtree_size(0), 5);
  EXPECT_EQ(tree::caterpillar(3, 2).size(), 9);
  EXPECT_EQ(tree::broom(3, 4).size(), 7);
  EXPECT_EQ(tree::spider(3, 4).size(), 13);
  EXPECT_EQ(tree::balanced(2, 3).size(), 15);
  EXPECT_EQ(tree::balanced(3, 2).size(), 13);
}

TEST(Generators, RandomTreesAreValidAndVaried) {
  std::set<std::uint64_t> sigs;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Tree t = tree::random_tree(50, seed);
    ASSERT_EQ(t.size(), 50);
    std::uint64_t sig = 0;
    for (NodeId v = 0; v < t.size(); ++v)
      sig = sig * 31 + static_cast<std::uint64_t>(t.depth(v));
    sigs.insert(sig);
  }
  EXPECT_GT(sigs.size(), 15u) << "random trees look degenerate";
  for (NodeId n : {1, 2, 3, 4}) EXPECT_EQ(tree::random_tree(n, 1).size(), n);
}

TEST(Generators, RandomBinaryIsBinary) {
  const Tree t = tree::random_binary_tree(500, 9);
  for (NodeId v = 0; v < t.size(); ++v)
    EXPECT_LE(t.children(v).size(), 2u);
}

TEST(Generators, HmTreeStructure) {
  for (int h : {0, 1, 2, 3, 5}) {
    const Tree t = tree::hm_tree(h, 16, 3);
    EXPECT_EQ(t.size(), 3 * (1 << h) - 2) << h;
    // All leaves at the same weighted distance h*M from the root.
    for (NodeId v = 0; v < t.size(); ++v) {
      if (t.is_leaf(v)) {
        EXPECT_EQ(t.root_distance(v), static_cast<std::uint64_t>(h) * 16);
      }
    }
  }
}

TEST(Generators, HmTreeExplicitValidation) {
  const std::vector<std::uint32_t> xs{3, 1, 2};
  EXPECT_EQ(tree::hm_tree_explicit(2, 4, xs).size(), 10);
  EXPECT_THROW(tree::hm_tree_explicit(2, 4, std::vector<std::uint32_t>{1}),
               std::invalid_argument);
  EXPECT_THROW(
      tree::hm_tree_explicit(2, 4, std::vector<std::uint32_t>{4, 0, 0}),
      std::invalid_argument);
}

TEST(Generators, SubdividePreservesDistances) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Tree weighted = tree::hm_tree(3, 8, seed);  // weight-0 edges occur
    std::vector<NodeId> image;
    const Tree unit = tree::subdivide(weighted, &image);
    EXPECT_TRUE(unit.is_unit_weighted());
    const tree::NcaIndex ow(weighted);
    const tree::NcaIndex ou(unit);
    for (NodeId u = 0; u < weighted.size(); ++u)
      for (NodeId v = 0; v < weighted.size(); ++v)
        ASSERT_EQ(ow.distance(u, v), ou.distance(image[u], image[v]))
            << "seed=" << seed << " u=" << u << " v=" << v;
  }
}

TEST(Generators, StretchMakesApproxRecoverable) {
  // Section 5.1: in the stretched tree, the (1+eps)-intervals of distinct
  // leaf distances f(k) are disjoint: (1+eps) f(k) < f(k+1).
  const double eps = 0.5;
  const Tree t = tree::hm_tree(3, 3, 2);
  const Tree s = tree::stretch(t, eps);
  const tree::NcaIndex oracle(s);
  std::vector<NodeId> leaves;
  for (NodeId v = 0; v < s.size(); ++v)
    if (s.is_leaf(v)) leaves.push_back(v);
  std::set<std::uint64_t> dists;
  for (NodeId a : leaves)
    for (NodeId b : leaves)
      if (a != b) dists.insert(oracle.distance(a, b));
  ASSERT_GE(dists.size(), 2u);
  std::uint64_t prev = 0;
  bool first = true;
  for (std::uint64_t d : dists) {
    if (!first) {
      EXPECT_GT(static_cast<double>(d), (1 + eps) * static_cast<double>(prev));
    }
    prev = d;
    first = false;
  }
}

TEST(Generators, RegularTree) {
  const std::vector<int> xs{1, 2};
  const Tree t = tree::regular_tree(xs, 2, 2);
  // y = (2^1, 2^1, 2^2, 2^0): leaves = 2*2*4*1 = 16 = d^{k*h}.
  NodeId leaves = 0;
  for (NodeId v = 0; v < t.size(); ++v) leaves += t.is_leaf(v);
  EXPECT_EQ(leaves, 16);
  EXPECT_THROW(tree::regular_tree(std::vector<int>{3}, 2, 2),
               std::invalid_argument);
}

TEST(Generators, EnumerationCountsMatchOeis) {
  for (NodeId n = 1; n <= 8; ++n)
    EXPECT_EQ(tree::all_rooted_trees(n).size(), tree::count_rooted_trees(n))
        << n;
}

TEST(Generators, StandardShapesProduceValidTrees) {
  for (const auto& shape : tree::standard_shapes()) {
    const Tree t = shape.make(100, 7);
    EXPECT_GE(t.size(), 25) << shape.name;
    EXPECT_LE(t.size(), 140) << shape.name;
  }
}

TEST(Binarize, StructureAndDistances) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Tree t = tree::random_tree(40, seed);
    const auto bt = tree::binarize(t);
    for (NodeId v = 0; v < bt.tree.size(); ++v)
      ASSERT_LE(bt.tree.children(v).size(), 2u);
    // Every original node is represented by a leaf; distances preserved.
    const tree::NcaIndex ot(t);
    const tree::NcaIndex ob(bt.tree);
    for (NodeId u = 0; u < t.size(); ++u) {
      ASSERT_NE(bt.leaf_of[u], kNoNode);
      ASSERT_TRUE(bt.tree.is_leaf(bt.leaf_of[u]));
      for (NodeId v = 0; v < t.size(); ++v)
        ASSERT_EQ(ot.distance(u, v),
                  ob.distance(bt.leaf_of[u], bt.leaf_of[v]))
            << "u=" << u << " v=" << v;
    }
  }
}

TEST(Binarize, WeightsArePreservedOrZero) {
  const Tree t = tree::hm_tree(3, 8, 1);
  const auto bt = tree::binarize(t);
  std::multiset<std::uint32_t> orig, got;
  for (NodeId v = 0; v < t.size(); ++v)
    if (v != t.root() && t.weight(v) > 0) orig.insert(t.weight(v));
  for (NodeId v = 0; v < bt.tree.size(); ++v)
    if (v != bt.tree.root() && bt.tree.weight(v) > 0)
      got.insert(bt.tree.weight(v));
  EXPECT_EQ(orig, got);
}

class HpdParamTest
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, tree::HeavyPathDecomposition::Variant>> {};

TEST_P(HpdParamTest, Invariants) {
  const auto [shape_idx, variant] = GetParam();
  const auto& shape = tree::standard_shapes()[shape_idx];
  const Tree t = shape.make(300, 13);
  const tree::HeavyPathDecomposition hpd(t, variant);

  // Every node on exactly one path; paths are vertical heavy chains.
  std::vector<int> seen(static_cast<std::size_t>(t.size()), 0);
  for (std::int32_t p = 0; p < hpd.num_paths(); ++p) {
    const auto nodes = hpd.path_nodes(p);
    ASSERT_FALSE(nodes.empty());
    EXPECT_EQ(nodes.front(), hpd.head(p));
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      ++seen[static_cast<std::size_t>(nodes[i])];
      EXPECT_EQ(hpd.path_of(nodes[i]), p);
      EXPECT_EQ(hpd.pos_in_path(nodes[i]), static_cast<std::int32_t>(i));
      if (i > 0) {
        EXPECT_EQ(t.parent(nodes[i]), nodes[i - 1]);
        EXPECT_EQ(hpd.heavy_child(nodes[i - 1]), nodes[i]);
        EXPECT_TRUE(hpd.is_heavy_edge(nodes[i]));
      }
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);

  // Light depth: consistent with parents, and bounded by log2 n.
  const double bound = std::log2(static_cast<double>(t.size()));
  for (NodeId v = 0; v < t.size(); ++v) {
    EXPECT_LE(hpd.light_depth(v), static_cast<std::int32_t>(bound) + 1);
    if (v != t.root()) {
      const int expect = hpd.light_depth(t.parent(v)) +
                         (hpd.is_heavy_edge(v) ? 0 : 1);
      EXPECT_EQ(hpd.light_depth(v), expect);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HpdParamTest,
    ::testing::Combine(
        ::testing::Range<std::size_t>(0, 9),
        ::testing::Values(tree::HeavyPathDecomposition::Variant::kPaperHalf,
                          tree::HeavyPathDecomposition::Variant::kClassic)));

TEST(Hpd, PaperVariantHalfThreshold) {
  // In the paper variant, every light subtree hanging off a path started at
  // size N has size < N/2.
  const Tree t = tree::random_tree(500, 3);
  const tree::HeavyPathDecomposition hpd(t);
  for (std::int32_t p = 0; p < hpd.num_paths(); ++p) {
    const NodeId start_size = t.subtree_size(hpd.head(p));
    for (NodeId w : hpd.path_nodes(p)) {
      for (NodeId c : t.children(w)) {
        if (c != hpd.heavy_child(w)) {
          EXPECT_LT(2 * t.subtree_size(c), start_size);
        }
      }
    }
  }
}

TEST(Collapsed, HeightAndParents) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Tree t = tree::random_binary_tree(400, seed);
    const tree::HeavyPathDecomposition hpd(t);
    const tree::CollapsedTree ct(hpd);
    EXPECT_EQ(ct.size(), hpd.num_paths());
    EXPECT_LE(ct.height(),
              static_cast<std::int32_t>(
                  std::log2(static_cast<double>(t.size()))) + 1);
    for (std::int32_t c = 0; c < ct.size(); ++c) {
      if (c == ct.cnode_of(t.root())) {
        EXPECT_EQ(ct.cparent(c), -1);
        continue;
      }
      const NodeId h = ct.head(c);
      EXPECT_EQ(ct.cparent(c), ct.cnode_of(t.parent(h)));
    }
  }
}

TEST(Collapsed, DominationMatchesPaperObservations) {
  const Tree raw = tree::random_tree(120, 17);
  const auto bt = tree::binarize(raw);
  const Tree& t = bt.tree;
  const tree::HeavyPathDecomposition hpd(t);
  const tree::CollapsedTree ct(hpd);
  const tree::NcaIndex oracle(t);
  for (NodeId u = 0; u < t.size(); ++u) {
    if (!t.is_leaf(u)) continue;
    for (NodeId v = 0; v < t.size(); ++v) {
      if (!t.is_leaf(v) || u == v) continue;
      const NodeId w = oracle.nca(u, v);
      // First edges of the w->u and w->v paths.
      NodeId cu = u, cv = v;
      while (t.parent(cu) != w) cu = t.parent(cu);
      while (t.parent(cv) != w) cv = t.parent(cv);
      const bool u_light = hpd.heavy_child(w) != cu;
      const bool v_light = hpd.heavy_child(w) != cv;
      if (u_light && !v_light) {
        EXPECT_TRUE(ct.dominates(u, v)) << u << " " << v;  // Observation (1)
      }
      if (!u_light && v_light) {
        EXPECT_TRUE(ct.dominates(v, u));
      }
      if (u_light && v_light) {
        // Observation (2): the exceptional side is dominated.
        const bool u_exc = ct.is_exceptional(ct.cnode_of(cu) == hpd.path_of(cu)
                                                 ? hpd.path_of(cu)
                                                 : hpd.path_of(cu));
        const bool v_exc = ct.is_exceptional(hpd.path_of(cv));
        ASSERT_NE(u_exc, v_exc);
        EXPECT_EQ(ct.dominates(u, v), v_exc);
      }
    }
  }
}

TEST(NcaIndexTest, AgainstSlowDistance) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Tree t = tree::hm_tree(3, 5, seed);
    const tree::NcaIndex oracle(t);
    for (NodeId u = 0; u < t.size(); ++u)
      for (NodeId v = 0; v < t.size(); ++v) {
        EXPECT_EQ(oracle.distance(u, v), slow_distance(t, u, v));
        const NodeId w = oracle.nca(u, v);
        EXPECT_TRUE(oracle.is_ancestor(w, u));
        EXPECT_TRUE(oracle.is_ancestor(w, v));
      }
  }
}

TEST(Io, TextRoundtrip) {
  const Tree t = tree::hm_tree(2, 7, 4);
  std::stringstream ss;
  tree::write_text(ss, t);
  const Tree back = tree::read_text(ss);
  ASSERT_EQ(back.size(), t.size());
  for (NodeId v = 0; v < t.size(); ++v) {
    EXPECT_EQ(back.parent(v), t.parent(v));
    EXPECT_EQ(back.weight(v), t.weight(v));
  }
}

TEST(Io, DotContainsAllEdges) {
  const Tree t = tree::path(5);
  const tree::HeavyPathDecomposition hpd(t);
  std::stringstream ss;
  tree::write_dot(ss, t, &hpd);
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("penwidth"), std::string::npos);  // heavy edges styled
}

}  // namespace
