// Serving-layer coverage: a ForestIndex holding a heterogeneous forest
// (all five schemes, mapped files and in-memory arenas mixed) must answer
// exactly like the underlying schemes, for single queries and batches, at
// any shard/thread count, under cache pressure, and fail loudly on bad
// ids, unknown scheme tags, and cross-scheme attached labels. Plus unit
// coverage for the byte-bounded LruCache the shards are built on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/alstrup_scheme.hpp"
#include "core/approx_scheme.hpp"
#include "core/fgnw_scheme.hpp"
#include "core/incremental_relabeler.hpp"
#include "core/kdistance_scheme.hpp"
#include "core/label_store.hpp"
#include "core/peleg_scheme.hpp"
#include "obs/metrics.hpp"
#include "serve/forest_index.hpp"
#include "serve/lru_cache.hpp"
#include "tree/generators.hpp"
#include "tree/nca_index.hpp"
#include "util/failpoint.hpp"
#include "util/fs.hpp"
#include "util/io_error.hpp"

namespace {

using namespace treelab;
using serve::AnyScheme;
using serve::Dist;
using serve::ForestIndex;
using serve::ForestOptions;
using serve::Request;
using serve::TreeId;
using tree::NodeId;
using tree::Tree;

constexpr NodeId kN = 220;
constexpr std::uint64_t kK = 8;
constexpr double kEps = 0.125;

std::string temp_path(const char* name) {
  return testing::TempDir() + "treelab_forest_" + name + ".lbl";
}

/// Builds the five-scheme test forest: one tree per scheme, trees 0..2
/// shipped as mappable files, 3..4 added from in-memory arenas. Returns the
/// per-tree ground-truth trees alongside (index == TreeId).
std::vector<Tree> build_forest(ForestIndex& index,
                               std::vector<std::string>& files) {
  std::vector<Tree> trees;
  for (NodeId i = 0; i < 5; ++i)
    trees.push_back(tree::random_tree(kN + 10 * i, 71 + i));

  const auto save_file = [&](const char* name, const char* scheme,
                             const bits::LabelArena& labels,
                             const char* params) {
    const std::string path = temp_path(name);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    core::LabelStore::save_mappable(out, scheme, labels, params);
    out.close();
    files.push_back(path);
    EXPECT_EQ(index.add_file(path), files.size() - 1);
  };
  save_file("fgnw", "fgnw", core::FgnwScheme(trees[0]).labels(), "");
  save_file("alstrup", "alstrup", core::AlstrupScheme(trees[1]).labels(), "");
  save_file("kdist", "kdist", core::KDistanceScheme(trees[2], kK).labels(),
            "k=8");

  const auto add_memory = [&](const char* scheme,
                              const bits::LabelArena& labels,
                              const char* params) {
    std::stringstream ss;
    core::LabelStore::save(ss, scheme, labels, params);
    return index.add(core::LabelStore::load_arena(ss));
  };
  EXPECT_EQ(add_memory("approx", core::ApproxScheme(trees[3], kEps).labels(),
                       "inv_eps=8"),
            3u);
  EXPECT_EQ(add_memory("peleg", core::PelegScheme(trees[4]).labels(), ""), 4u);
  return trees;
}

void expect_correct(const Tree& t, TreeId id, NodeId u, NodeId v, Dist got) {
  const tree::NcaIndex oracle(t);
  const std::uint64_t d = oracle.distance(u, v);
  switch (id) {
    case 2:  // kdistance: exact within k, refused beyond
      EXPECT_EQ(got.within, d <= kK) << "tree " << id;
      if (got.within) {
        EXPECT_EQ(got.value, d);
      }
      break;
    case 3:  // approx: (1+eps) band
      EXPECT_TRUE(got.within);
      EXPECT_GE(got.value, d);
      EXPECT_LE(static_cast<double>(got.value),
                (1.0 + kEps) * static_cast<double>(d) + 1e-9);
      break;
    default:  // exact schemes
      EXPECT_TRUE(got.within);
      EXPECT_EQ(got.value, d) << "tree " << id;
  }
}

void cleanup(const std::vector<std::string>& files) {
  for (const auto& f : files) std::remove(f.c_str());
}

TEST(ForestIndex, ServesHeterogeneousForestExactly) {
  ForestOptions opt;
  opt.shards = 2;
  ForestIndex index(opt);
  std::vector<std::string> files;
  const std::vector<Tree> trees = build_forest(index, files);

  EXPECT_EQ(index.tree_count(), 5u);
  EXPECT_EQ(index.shard_count(), 2u);
  EXPECT_EQ(index.scheme(2).name(), "kdist");
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(index.mapped(0));  // file-backed, mappable container
#endif
  EXPECT_FALSE(index.mapped(3));  // in-memory add()

  std::mt19937_64 rng(9);
  for (TreeId id = 0; id < 5; ++id) {
    std::uniform_int_distribution<NodeId> pick(
        0, static_cast<NodeId>(index.label_count(id)) - 1);
    for (int it = 0; it < 40; ++it) {
      const NodeId u = pick(rng), v = pick(rng);
      expect_correct(trees[id], id, u, v, index.query({id, u, v}));
    }
  }
  cleanup(files);
}

TEST(ForestIndex, BatchMatchesSinglesAtEveryThreadAndShardCount) {
  std::vector<std::string> files;
  std::vector<Request> reqs;
  std::mt19937_64 rng(10);
  // Reference answers from a 1-shard, 1-thread index.
  ForestOptions ref_opt;
  ref_opt.shards = 1;
  ref_opt.threads = 1;
  ForestIndex ref(ref_opt);
  const std::vector<Tree> trees = build_forest(ref, files);
  for (int i = 0; i < 600; ++i) {
    const auto id = static_cast<TreeId>(rng() % 5);
    std::uniform_int_distribution<NodeId> pick(
        0, static_cast<NodeId>(ref.label_count(id)) - 1);
    reqs.push_back({id, pick(rng), pick(rng)});
  }
  const std::vector<Dist> want = ref.query_batch(reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    expect_correct(trees[reqs[i].tree], reqs[i].tree, reqs[i].u, reqs[i].v,
                   want[i]);

  for (const std::size_t shards : {2u, 4u, 7u}) {
    for (const int threads : {1, 3, 4}) {
      ForestOptions opt;
      opt.shards = shards;
      opt.threads = threads;
      ForestIndex index(opt);
      std::vector<std::string> files2;
      build_forest(index, files2);
      const std::vector<Dist> got = index.query_batch(reqs);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], want[i])
            << "shards=" << shards << " threads=" << threads << " req " << i;
      cleanup(files2);
    }
  }
  cleanup(files);
}

TEST(ForestIndex, CacheAttachesHotLabelsOnce) {
  ForestOptions opt;
  opt.shards = 1;
  opt.threads = 1;
  ForestIndex index(opt);
  std::vector<std::string> files;
  build_forest(index, files);

  std::vector<Request> reqs;
  for (NodeId u = 0; u < 50; ++u) reqs.push_back({0, u, NodeId{0}});
  (void)index.query_batch(reqs);
  const auto cold = index.cache_stats();
  // 50 distinct labels touched (u in [0, 50) plus v = 0, which u covers);
  // each attached exactly once, every v lookup a hit.
  EXPECT_EQ(cold.misses, 50u);
  EXPECT_EQ(cold.entries, 50u);
  EXPECT_EQ(cold.hits, 50u);
  EXPECT_GT(cold.bytes, 0u);

  (void)index.query_batch(reqs);
  const auto warm = index.cache_stats();
  EXPECT_EQ(warm.misses, cold.misses);  // fully served from cache
  EXPECT_GT(warm.hits, cold.hits);
  cleanup(files);
}

TEST(ForestIndex, TinyCacheEvictsButStaysCorrect) {
  ForestOptions opt;
  opt.shards = 1;
  opt.cache_bytes_per_shard = 1;  // every insert evicts the previous entry
  ForestIndex index(opt);
  std::vector<std::string> files;
  const std::vector<Tree> trees = build_forest(index, files);

  std::mt19937_64 rng(11);
  std::vector<Request> reqs;
  for (int i = 0; i < 200; ++i) {
    const auto id = static_cast<TreeId>(rng() % 5);
    std::uniform_int_distribution<NodeId> pick(
        0, static_cast<NodeId>(index.label_count(id)) - 1);
    reqs.push_back({id, pick(rng), pick(rng)});
  }
  const std::vector<Dist> got = index.query_batch(reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    expect_correct(trees[reqs[i].tree], reqs[i].tree, reqs[i].u, reqs[i].v,
                   got[i]);
  const auto st = index.cache_stats();
  EXPECT_GT(st.evictions, 0u);
  EXPECT_LE(st.entries, 1u);
  cleanup(files);
}

TEST(ForestIndex, BatchValidatesNodeIdsInRequestOrder) {
  // A bad node id deep in the batch must be reported deterministically —
  // the FIRST offending request in request order, before any parallel work
  // — not from whichever shard chunk trips over it first.
  ForestOptions opt;
  opt.shards = 4;
  opt.threads = 4;
  ForestIndex index(opt);
  std::vector<std::string> files;
  build_forest(index, files);
  std::vector<Request> reqs;
  for (NodeId u = 0; u < 20; ++u) reqs.push_back({0, u, NodeId{0}});
  reqs.push_back({1, NodeId{100000}, 0});  // first offender, request 20
  reqs.push_back({2, NodeId{-7}, 0});      // later offender, never reached
  try {
    (void)index.query_batch(reqs);
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "ForestIndex: node id out of range");
  }
  // The serial pre-pass rejected the batch before any query ran or any
  // label got attached.
  EXPECT_EQ(index.cache_stats().entries, 0u);
  cleanup(files);
}

TEST(ForestIndex, PlannerOffMatchesPlannerOn) {
  // The batch planner (sort by (shard, tree), resolve each group against
  // one entry lookup) is a pure execution-order optimization: answers,
  // their request-order placement, and checked statuses must be identical
  // with it disabled. Requests deliberately interleave trees so the
  // planner's stable sort actually reorders work.
  std::vector<std::string> files_on;
  std::vector<std::string> files_off;
  ForestOptions on_opt;
  on_opt.shards = 4;
  on_opt.threads = 4;
  ASSERT_TRUE(on_opt.planner);  // the default
  ForestOptions off_opt = on_opt;
  off_opt.planner = false;
  ForestIndex on(on_opt);
  ForestIndex off(off_opt);
  build_forest(on, files_on);
  build_forest(off, files_off);

  std::mt19937_64 rng(12);
  std::vector<Request> reqs;
  for (int i = 0; i < 400; ++i) {
    const auto id = static_cast<TreeId>(i % 5);  // maximally interleaved
    std::uniform_int_distribution<NodeId> pick(
        0, static_cast<NodeId>(on.label_count(id)) - 1);
    reqs.push_back({id, pick(rng), pick(rng)});
  }
  const std::vector<Dist> want = off.query_batch(reqs);
  const std::vector<Dist> got = on.query_batch(reqs);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i], want[i]) << "req " << i;

  // Checked path too, with per-request failures mixed in.
  reqs[3] = {99, 0, 0};
  reqs[7] = {1, NodeId{100000}, 0};
  const auto want_checked = off.query_batch_checked(reqs);
  const auto got_checked = on.query_batch_checked(reqs);
  ASSERT_EQ(got_checked.size(), want_checked.size());
  for (std::size_t i = 0; i < got_checked.size(); ++i) {
    EXPECT_EQ(got_checked[i].status, want_checked[i].status) << "req " << i;
    if (got_checked[i].status == serve::QueryStatus::kOk) {
      EXPECT_EQ(got_checked[i].dist, want_checked[i].dist) << "req " << i;
    }
  }
  cleanup(files_on);
  cleanup(files_off);
}

TEST(ForestIndex, PlannerReorderingPreservesErrorOrder) {
  // The planner validates tree ids in a serial pre-pass but discovers bad
  // node ids while walking groups in *sorted* order. The thrown error must
  // still be the first offender in REQUEST order, whichever pass found it.
  ForestOptions opt;
  opt.shards = 4;
  opt.threads = 4;
  ForestIndex index(opt);
  std::vector<std::string> files;
  build_forest(index, files);

  // Bad node (group pass) before bad tree (pre-pass): node error wins.
  std::vector<Request> reqs{
      {4, 0, 1}, {3, NodeId{100000}, 0}, {2, 0, 1}, {99, 0, 0}};
  try {
    (void)index.query_batch(reqs);
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "ForestIndex: node id out of range");
  }
  EXPECT_EQ(index.cache_stats().entries, 0u);

  // Bad tree before bad node: tree error wins.
  std::swap(reqs[1], reqs[3]);
  try {
    (void)index.query_batch(reqs);
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "ForestIndex: tree id out of range");
  }
  EXPECT_EQ(index.cache_stats().entries, 0u);
  cleanup(files);
}

TEST(ForestIndex, BatchTrafficSamplesQueryLatency) {
  // `serve.query.latency_ns` used to see only the single-query path, so an
  // all-batch workload published an empty latency histogram. The batch
  // path now records every kLatencySampleEvery-th answered request.
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "metrics compiled out";
  }
  ForestOptions opt;
  opt.shards = 2;
  ForestIndex index(opt);
  std::vector<std::string> files;
  build_forest(index, files);

  auto& h = obs::Registry::global().histogram("serve.query.latency_ns");
  const std::uint64_t before = h.snapshot().count();
  std::vector<Request> reqs;
  for (int i = 0; i < 4 * static_cast<int>(ForestIndex::kLatencySampleEvery);
       ++i)
    reqs.push_back({static_cast<TreeId>(i % 5), 0, 1});
  (void)index.query_batch(reqs);
  const std::uint64_t after = h.snapshot().count();
  EXPECT_GE(after - before, reqs.size() / ForestIndex::kLatencySampleEvery);
  cleanup(files);
}

TEST(ForestIndex, UpdateSwapsLabelingAndInvalidatesCache) {
  ForestOptions opt;
  opt.shards = 1;
  ForestIndex index(opt);
  const Tree t0 = tree::random_tree(150, 91);

  core::IncrementalRelabeler relab(t0);
  const TreeId id = index.add(relab.to_loaded());
  EXPECT_EQ(index.update_epoch(id), 0u);

  // Warm the cache on the original labeling.
  for (NodeId u = 0; u < 40; ++u) (void)index.query({id, u, NodeId{0}});
  EXPECT_GT(index.cache_stats().entries, 0u);

  // Grow the tree, hot-swap the refreshed labels.
  for (int e = 0; e < 20; ++e)
    (void)relab.insert_leaf(static_cast<NodeId>(e % 150));
  EXPECT_EQ(index.update(id, relab.to_loaded()), 1u);
  EXPECT_EQ(index.update_epoch(id), 1u);
  EXPECT_EQ(index.label_count(id), 170u);
  const auto st = index.cache_stats();
  EXPECT_EQ(st.entries, 0u);  // the tree's attachments were dropped
  EXPECT_GT(st.invalidated, 0u);

  // Every query — including against the new nodes — answers exactly.
  const Tree now = relab.snapshot();
  const tree::NcaIndex oracle(now);
  for (NodeId u = 0; u < now.size(); u += 7)
    for (NodeId v = 0; v < now.size(); v += 11)
      EXPECT_EQ(index.query({id, u, v}).value, oracle.distance(u, v));

  EXPECT_THROW(
      (void)index.update(TreeId{99}, relab.to_loaded()),
      std::out_of_range);
}

TEST(ForestIndex, UpdateFileSwapsToTheNewMappedLabeling) {
  ForestOptions opt;
  opt.shards = 2;
  ForestIndex index(opt);
  std::vector<std::string> files;
  const std::vector<Tree> trees = build_forest(index, files);

  // Replace tree 0 (fgnw) with an alstrup labeling of another tree, from a
  // fresh mappable file: scheme and size both change under the same id.
  const Tree t_new = tree::random_tree(90, 92);
  const std::string path = temp_path("update_v2");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    core::LabelStore::save_mappable(
        out, "alstrup", core::AlstrupScheme(t_new).labels(), "");
  }
  files.push_back(path);
  EXPECT_EQ(index.update_file(0, path), 1u);
  EXPECT_EQ(index.scheme(0).name(), "alstrup");
  EXPECT_EQ(index.label_count(0), 90u);
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(index.mapped(0));
#endif
  const tree::NcaIndex oracle(t_new);
  for (NodeId u = 0; u < 90; u += 5)
    EXPECT_EQ(index.query({0, u, NodeId{3}}).value, oracle.distance(u, 3));
  // Other trees are untouched.
  EXPECT_EQ(index.update_epoch(1), 0u);
  expect_correct(trees[1], 1, 4, 9, index.query({1, 4, 9}));
  cleanup(files);
}

TEST(ForestIndex, UpdateIsSafeUnderConcurrentBatchQueries) {
  // The dynamic-forest serving loop: readers hammer query_batch while the
  // writer hot-swaps ever-growing labelings of the same tree. Leaf inserts
  // never change distances between existing nodes, so every answer must be
  // exact no matter which epoch served it. (The ASan+UBSan CI job runs this
  // test too — that is the memory-safety half of the claim.)
  ForestOptions opt;
  opt.shards = 2;
  opt.threads = 2;
  ForestIndex index(opt);
  const Tree t0 = tree::random_tree(200, 93);
  core::IncrementalRelabeler relab(t0);
  const TreeId id = index.add(relab.to_loaded());

  const tree::NcaIndex oracle(t0);
  std::vector<Request> reqs;
  std::vector<std::uint64_t> want;
  std::mt19937_64 rng(94);
  for (int i = 0; i < 256; ++i) {
    const auto u = static_cast<NodeId>(rng() % 200);
    const auto v = static_cast<NodeId>(rng() % 200);
    reqs.push_back({id, u, v});
    want.push_back(oracle.distance(u, v));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> wrong{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r)
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::vector<Dist> got = index.query_batch(reqs);
        for (std::size_t i = 0; i < got.size(); ++i)
          if (!got[i].within || got[i].value != want[i])
            wrong.fetch_add(1, std::memory_order_relaxed);
        batches.fetch_add(1, std::memory_order_relaxed);
      }
    });

  std::mt19937_64 wrng(95);
  for (int e = 0; e < 40; ++e) {
    (void)relab.insert_leaf(
        static_cast<NodeId>(wrng() % static_cast<std::uint64_t>(relab.size())));
    (void)index.update(id, relab.to_loaded());
  }
  // Let the readers overlap the final epoch too, then stop.
  while (batches.load(std::memory_order_relaxed) < 8) std::this_thread::yield();
  stop.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(index.update_epoch(id), 40u);
  EXPECT_GT(batches.load(), 0u);
}

TEST(ForestIndex, ShrinkingUpdatesCannotFailAValidatedBatch) {
  // update() may shrink a tree's labeling. A batch validated against the
  // bigger labeling must then still answer every request — from its
  // snapshot, uncached — never throw from the parallel section. Readers
  // batch pairs that only exist in the big labeling while the writer flips
  // big <-> small; a batch may be rejected up front (small was live at
  // validation, deterministic) but once admitted it must complete exactly.
  const Tree t_small = tree::random_tree(120, 96);
  core::IncrementalRelabeler relab(t_small);
  std::mt19937_64 grow(97);
  for (int e = 0; e < 80; ++e)
    (void)relab.insert_leaf(
        static_cast<NodeId>(grow() % static_cast<std::uint64_t>(relab.size())));
  const core::LabelStore::LoadedArena big = relab.to_loaded();
  core::LabelStore::LoadedArena small;
  small.scheme = "alstrup";
  small.labels = core::AlstrupScheme(
                     t_small, {nca::CodeWeights::kStablePow2, 1})
                     .labels();

  ForestOptions opt;
  opt.shards = 1;
  opt.threads = 2;
  ForestIndex index(opt);
  const TreeId id = index.add(core::LabelStore::LoadedArena(big));

  const Tree t_big = relab.snapshot();
  const tree::NcaIndex oracle(t_big);
  std::vector<Request> reqs;
  std::vector<std::uint64_t> want;
  // Request 0 references a node only the big labeling has, so admission is
  // decided deterministically at the first request.
  for (int i = 0; i < 64; ++i) {
    const auto u = static_cast<NodeId>(120 + i % 80);
    const auto v = static_cast<NodeId>(i % 120);
    reqs.push_back({id, u, v});
    want.push_back(oracle.distance(u, v));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0}, rejected{0}, wrong{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r)
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          const std::vector<Dist> got = index.query_batch(reqs);
          for (std::size_t i = 0; i < got.size(); ++i)
            if (!got[i].within || got[i].value != want[i])
              wrong.fetch_add(1, std::memory_order_relaxed);
          served.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::out_of_range&) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });

  for (int e = 0; e < 60; ++e) {
    (void)index.update(id, core::LabelStore::LoadedArena(small));
    (void)index.update(id, core::LabelStore::LoadedArena(big));
  }
  while (served.load(std::memory_order_relaxed) < 4) std::this_thread::yield();
  stop.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_GT(served.load(), 0u);
}

TEST(ForestIndex, ApplyDeltaInvalidatesOnlyDirtyAttachments) {
  // The selective-invalidation contract: after a delta swap, only cached
  // attachments whose labels actually changed (or whose ids died) are
  // dropped — clean hot labels survive, and cache_stats().invalidated
  // counts exactly the dropped ones.
  ForestOptions opt;
  opt.shards = 1;
  ForestIndex index(opt);
  const Tree t0 = tree::random_tree(200, 101);
  core::IncrementalRelabeler relab(t0);
  const TreeId id = index.add(relab.to_loaded());

  // Attach every label once.
  for (NodeId u = 0; u < 200; ++u) (void)index.query({id, u, NodeId{0}});
  const auto warm = index.cache_stats();
  ASSERT_EQ(warm.entries, 200u);
  ASSERT_EQ(warm.invalidated, 0u);

  // One leaf insert: a small dirty cone.
  (void)relab.insert_leaf(NodeId{150});
  const core::LabelDelta d = relab.make_delta();
  relab.advance_delta(d);
  ASSERT_LT(d.dirty.size(), 100u);  // the point of the incremental path
  std::size_t stale_cached = 0;     // dirty ids that were cached (ext < 200)
  for (const std::uint64_t x : d.dirty)
    if (x < 200) ++stale_cached;

  EXPECT_EQ(index.apply_delta(id, d), 1u);
  EXPECT_EQ(index.update_epoch(id), 1u);
  EXPECT_EQ(index.label_count(id), 201u);
  const auto after = index.cache_stats();
  EXPECT_EQ(after.invalidated, stale_cached);
  EXPECT_EQ(after.entries, 200u - stale_cached);  // clean entries survived

  // Everything still answers exactly, including the new node.
  const Tree now = relab.snapshot();
  const tree::NcaIndex oracle(now);
  for (NodeId u = 0; u < now.size(); u += 7)
    for (NodeId v = 0; v < now.size(); v += 13)
      EXPECT_EQ(index.query({id, u, v}).value, oracle.distance(u, v));
}

TEST(ForestIndex, ApplyDeltaShipsTombstonesAndRefusesDeadIds) {
  ForestOptions opt;
  opt.shards = 1;
  ForestIndex index(opt);
  const Tree t0 = tree::random_tree(150, 102);
  core::IncrementalRelabeler relab(t0);
  const TreeId id = index.add(relab.to_loaded());

  // Find and delete a leaf through the relabeler, ship the delta.
  NodeId victim = tree::kNoNode;
  for (NodeId v = 149; v > 0; --v) {
    try {
      relab.delete_leaf(v);
      victim = v;
      break;
    } catch (const std::exception&) {
    }
  }
  ASSERT_NE(victim, tree::kNoNode);
  std::stringstream ss;
  relab.ship_delta(ss);
  EXPECT_EQ(index.apply_delta(id, core::LabelStore::load_delta(ss)), 1u);

  // The dead id fails deterministically; live pairs still answer.
  EXPECT_THROW((void)index.query({id, victim, NodeId{0}}), std::out_of_range);
  const std::vector<Request> batch{{id, 0, 1}, {id, victim, 2}};
  EXPECT_THROW((void)index.query_batch(batch), std::out_of_range);
  const Tree now = relab.snapshot();
  const tree::NcaIndex oracle(now);
  const std::vector<NodeId> map = relab.dense_map();
  for (NodeId u = 0; u < 140; u += 11) {
    if (map[static_cast<std::size_t>(u)] == tree::kNoNode) continue;
    EXPECT_EQ(index.query({id, u, NodeId{0}}).value,
              oracle.distance(map[static_cast<std::size_t>(u)],
                              map[0]));
  }
}

TEST(ForestIndex, QueryByOldIdAfterCompactionIsNotFoundNotWrong) {
  // The id-stability regression: compact() renumbers internal label
  // indices; a client still holding pre-compaction ids must get a
  // deterministic NotFound for dropped ids and the SAME node's answer for
  // surviving ids — never the answer of whatever node now occupies the
  // slot. Both update(remap) and apply_delta (whose delta carries the
  // compaction) must thread the remap.
  for (const bool via_delta : {false, true}) {
    ForestOptions opt;
    opt.shards = 1;
    ForestIndex index(opt);
    const Tree t0 = tree::random_tree(180, 103);
    const tree::NcaIndex oracle0(t0);
    core::IncrementalRelabeler relab(t0);
    const TreeId id = index.add(relab.to_loaded());

    std::vector<NodeId> killed;
    std::mt19937_64 rng(104);
    while (killed.size() < 30) {
      const auto v = static_cast<NodeId>(1 + rng() % 179);
      try {
        relab.delete_leaf(v);
        killed.push_back(v);
      } catch (const std::exception&) {
      }
    }
    if (via_delta) {
      (void)relab.compact();
      std::stringstream ss;
      relab.ship_delta(ss);
      EXPECT_EQ(index.apply_delta(id, core::LabelStore::load_delta(ss)), 1u);
    } else {
      const std::vector<NodeId> remap = relab.compact();
      EXPECT_EQ(index.update(id, relab.to_loaded(), remap), 1u);
    }
    EXPECT_EQ(index.label_count(id), 150u);  // compacted internally
    EXPECT_EQ(index.id_bound(id), 180u);     // external ids stay reserved

    // Dropped old ids: deterministic NotFound.
    for (const NodeId v : killed)
      EXPECT_THROW((void)index.query({id, v, NodeId{0}}), std::out_of_range)
          << "via_delta=" << via_delta << " id " << v;
    // Surviving old ids: the answer the client always got. Deleting leaves
    // never changes distances between survivors, so the original oracle is
    // the ground truth under the original ids.
    std::vector<std::uint8_t> dead(180, 0);
    for (const NodeId v : killed) dead[static_cast<std::size_t>(v)] = 1;
    for (NodeId u = 0; u < 180; u += 7) {
      if (dead[static_cast<std::size_t>(u)]) continue;
      EXPECT_EQ(index.query({id, u, NodeId{0}}).value, oracle0.distance(u, 0))
          << "via_delta=" << via_delta << " id " << u;
    }
  }
}

TEST(ForestIndex, ApplyDeltaRejectsMismatches) {
  ForestOptions opt;
  opt.shards = 1;
  ForestIndex index(opt);
  const Tree t0 = tree::random_tree(90, 105);
  core::IncrementalRelabeler relab(t0);
  const TreeId id = index.add(relab.to_loaded());
  (void)relab.insert_leaf(3);
  const core::LabelDelta d = relab.make_delta();

  // Wrong scheme tag.
  core::LabelDelta bad = d;
  bad.scheme = "fgnw";
  EXPECT_THROW((void)index.apply_delta(id, bad), std::invalid_argument);
  // Bad tree id.
  EXPECT_THROW((void)index.apply_delta(TreeId{9}, d), std::out_of_range);
  // Applying against the wrong epoch (apply twice): the second must refuse
  // (the live labeling no longer matches the delta's base hash).
  EXPECT_EQ(index.apply_delta(id, d), 1u);
  EXPECT_THROW((void)index.apply_delta(id, d), std::runtime_error);
  EXPECT_EQ(index.update_epoch(id), 1u);  // failed apply left epoch alone
}

TEST(ForestIndex, ApplyDeltaIsSafeUnderConcurrentBatchQueries) {
  // The delta-shipping serving loop: readers hammer query_batch over the
  // original nodes while the writer ships a delta per edit — inserts,
  // deletes of grown leaves, and periodic compactions. Original nodes
  // survive every epoch with stable external ids and stable distances, so
  // every admitted answer must be exact no matter which epoch served it.
  // (The ASan+UBSan CI job races this too.)
  ForestOptions opt;
  opt.shards = 2;
  opt.threads = 2;
  ForestIndex index(opt);
  const Tree t0 = tree::random_tree(160, 106);
  core::IncrementalRelabeler relab(t0);
  const TreeId id = index.add(relab.to_loaded());

  const tree::NcaIndex oracle(t0);
  std::vector<Request> reqs;
  std::vector<std::uint64_t> want;
  std::mt19937_64 rng(107);
  for (int i = 0; i < 192; ++i) {
    const auto u = static_cast<NodeId>(rng() % 160);
    const auto v = static_cast<NodeId>(rng() % 160);
    reqs.push_back({id, u, v});
    want.push_back(oracle.distance(u, v));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> wrong{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r)
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::vector<Dist> got = index.query_batch(reqs);
        for (std::size_t i = 0; i < got.size(); ++i)
          if (!got[i].within || got[i].value != want[i])
            wrong.fetch_add(1, std::memory_order_relaxed);
        batches.fetch_add(1, std::memory_order_relaxed);
      }
    });

  std::mt19937_64 wrng(108);
  std::vector<NodeId> grown;
  std::uint64_t epochs = 0;
  for (int e = 0; e < 48; ++e) {
    if (e % 5 == 4 && !grown.empty()) {
      try {
        relab.delete_leaf(grown.back());
        grown.pop_back();
      } catch (const std::exception&) {
      }
    } else {
      grown.push_back(relab.insert_leaf(
          static_cast<NodeId>(wrng() % 160)));
    }
    if (e % 12 == 11) {
      // compact() renumbers the relabeler's ids: the writer must remap its
      // own handles (readers are insulated by the index's external-id map).
      const std::vector<NodeId> map = relab.compact();
      for (NodeId& g : grown) g = map[static_cast<std::size_t>(g)];
    }
    const core::LabelDelta d = relab.make_delta();
    relab.advance_delta(d);
    epochs = index.apply_delta(id, d);
  }
  while (batches.load(std::memory_order_relaxed) < 8) std::this_thread::yield();
  stop.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(epochs, 48u);
  EXPECT_EQ(index.update_epoch(id), 48u);
}

TEST(ForestIndex, BadIdsThrow) {
  ForestOptions opt;
  opt.shards = 2;
  ForestIndex index(opt);
  std::vector<std::string> files;
  build_forest(index, files);
  EXPECT_THROW((void)index.query({99, 0, 0}), std::out_of_range);
  EXPECT_THROW((void)index.query({0, 0, NodeId{100000}}), std::out_of_range);
  EXPECT_THROW((void)index.query({0, NodeId{-1}, 0}), std::out_of_range);
  const std::vector<Request> batch{{0, 0, 1}, {99, 0, 0}};
  EXPECT_THROW((void)index.query_batch(batch), std::out_of_range);
  cleanup(files);
}

// --- graceful degradation -------------------------------------------------

namespace failpoint = util::failpoint;
using serve::QueryStatus;
using serve::TreeHealth;

/// A two-tree index (both alstrup) plus an on-disk refresh file for tree 0,
/// for driving the update_file/health paths.
struct DegradationRig {
  DegradationRig() {
    path = temp_path("degradation");
    core::IncrementalRelabeler r0(tree::random_tree(60, 31));
    core::IncrementalRelabeler r1(tree::random_tree(60, 32));
    t0 = index.add(r0.to_loaded());
    t1 = index.add(r1.to_loaded());
    for (int i = 0; i < 5; ++i) r0.insert_leaf(0);
    core::LabelStore::save_file(path, "alstrup", r0.labels());
  }
  ~DegradationRig() {
    failpoint::disarm_all();
    util::remove_file(path);
    util::remove_file(path + ".tmp");
  }
  ForestIndex index;
  TreeId t0 = 0;
  TreeId t1 = 0;
  std::string path;
};

TEST(ForestIndexDegradation, TransientOpenErrorsAreRetriedThenSucceed) {
  DegradationRig rig;
  // Two transient failures, then the file opens: with retries=2 (default)
  // the update lands on the third attempt without surfacing an error.
  failpoint::arm("label_store.open_mapped", util::FailMode::kError, 0, 2);
  const std::uint64_t epoch = rig.index.update_file(rig.t0, rig.path);
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(rig.index.health(rig.t0), TreeHealth::kLive);
  const auto st = rig.index.cache_stats();
  EXPECT_EQ(st.retries, 2u);
  EXPECT_EQ(st.transient_failures, 2u);
  EXPECT_EQ(st.stale, 0u);
}

TEST(ForestIndexDegradation, PersistentIoErrorMarksStaleButKeepsServing) {
  DegradationRig rig;
  const Dist before = rig.index.query({rig.t0, 0, 1});
  failpoint::arm("label_store.open_mapped", util::FailMode::kError);
  EXPECT_THROW((void)rig.index.update_file(rig.t0, rig.path), util::IoError);
  EXPECT_EQ(rig.index.health(rig.t0), TreeHealth::kStale);
  EXPECT_EQ(rig.index.cache_stats().stale, 1u);
  // Stale = refresh failing, serving intact: the old labeling still answers.
  EXPECT_EQ(rig.index.query({rig.t0, 0, 1}), before);
  const std::vector<Request> one{{rig.t0, 0, 1}};
  EXPECT_EQ(rig.index.query_batch_checked(one)[0].status, QueryStatus::kOk);
  // The moment a refresh lands, the tree is live again.
  failpoint::disarm_all();
  (void)rig.index.update_file(rig.t0, rig.path);
  EXPECT_EQ(rig.index.health(rig.t0), TreeHealth::kLive);
  EXPECT_EQ(rig.index.cache_stats().stale, 0u);
}

TEST(ForestIndexDegradation, CorruptFileStreakQuarantinesTypedErrorsRepair) {
  DegradationRig rig;
  const std::string bad = temp_path("degradation_bad");
  util::atomic_write_file(bad, "this is not a label container");
  // Integrity failures are never retried; quarantine_after=3 consecutive
  // ones quarantine the tree.
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW((void)rig.index.update_file(rig.t0, bad),
                 std::runtime_error);
    EXPECT_EQ(rig.index.health(rig.t0),
              i < 2 ? TreeHealth::kLive : TreeHealth::kQuarantined);
  }
  EXPECT_EQ(rig.index.cache_stats().quarantined, 1u);
  EXPECT_GE(rig.index.cache_stats().integrity_failures, 3u);
  EXPECT_EQ(rig.index.cache_stats().quarantine_events, 1u);
  // Typed refusal from both query APIs; the other tree keeps serving.
  EXPECT_THROW((void)rig.index.query({rig.t0, 0, 1}),
               serve::QuarantinedError);
  const std::vector<Request> reqs{{rig.t0, 0, 1}, {rig.t1, 0, 1}};
  const auto res = rig.index.query_batch_checked(reqs);
  EXPECT_EQ(res[0].status, QueryStatus::kQuarantined);
  EXPECT_EQ(res[1].status, QueryStatus::kOk);
  EXPECT_EQ(res[1].dist, rig.index.query({rig.t1, 0, 1}));
  // A clean update is the repair path.
  (void)rig.index.update_file(rig.t0, rig.path);
  EXPECT_EQ(rig.index.health(rig.t0), TreeHealth::kLive);
  EXPECT_EQ(rig.index.query_batch_checked({reqs.data(), 1})[0].status,
            QueryStatus::kOk);
  util::remove_file(bad);
}

TEST(ForestIndexDegradation, FailedApplyDeltaLeavesOldEpochServing) {
  core::IncrementalRelabeler r(tree::random_tree(60, 33));
  ForestIndex index;
  const TreeId id = index.add(r.to_loaded());
  const Dist before = index.query({id, 0, 1});
  for (int i = 0; i < 4; ++i) r.insert_leaf(1);
  const core::LabelDelta d = r.make_delta();
  r.advance_delta(d);
  // An allocation failure mid-apply must not publish anything.
  failpoint::arm("forest.apply_delta", util::FailMode::kAllocFail, 0, 1);
  EXPECT_THROW((void)index.apply_delta(id, d), std::bad_alloc);
  EXPECT_EQ(index.update_epoch(id), 0u);
  EXPECT_EQ(index.query({id, 0, 1}), before);
  EXPECT_EQ(index.health(id), TreeHealth::kLive);  // transient, no streak
  // The retry applies cleanly.
  EXPECT_EQ(index.apply_delta(id, d), 1u);
  failpoint::disarm_all();
}

TEST(ForestIndexDegradation, CheckedBatchReportsBadIdsPerRequest) {
  ForestOptions opt;
  opt.shards = 2;
  ForestIndex index(opt);
  std::vector<std::string> files;
  const std::vector<Tree> trees = build_forest(index, files);
  const std::vector<Request> reqs{
      {0, 2, 7},          {99, 0, 0}, {1, 0, NodeId{100000}},
      {4, 5, 9},          {2, 1, 3},  {0, NodeId{-1}, 0},
  };
  const auto res = index.query_batch_checked(reqs);
  ASSERT_EQ(res.size(), reqs.size());
  EXPECT_EQ(res[0].status, QueryStatus::kOk);
  EXPECT_EQ(res[1].status, QueryStatus::kBadTree);
  EXPECT_EQ(res[2].status, QueryStatus::kBadNode);
  EXPECT_EQ(res[3].status, QueryStatus::kOk);
  EXPECT_EQ(res[4].status, QueryStatus::kOk);
  EXPECT_EQ(res[5].status, QueryStatus::kBadNode);
  // Answered requests answer exactly like the throwing API.
  for (std::size_t i : {std::size_t{0}, std::size_t{3}, std::size_t{4}}) {
    expect_correct(trees[reqs[i].tree], reqs[i].tree, reqs[i].u, reqs[i].v,
                   res[i].dist);
    EXPECT_EQ(res[i].dist, index.query(reqs[i]));
  }
  cleanup(files);
}

TEST(AnyScheme, RejectsUnknownTagsAndBadParams) {
  EXPECT_THROW((void)AnyScheme::make("nope", ""), std::invalid_argument);
  EXPECT_THROW((void)AnyScheme::make("kdist", ""), std::invalid_argument);
  EXPECT_THROW((void)AnyScheme::make("kdist", "k=abc"),
               std::invalid_argument);
  EXPECT_THROW((void)AnyScheme::make("kdist", "k=0"), std::invalid_argument);
  EXPECT_THROW((void)AnyScheme::make("approx", ""), std::invalid_argument);
  EXPECT_THROW((void)AnyScheme::make("approx", "eps=0"),
               std::invalid_argument);
  EXPECT_THROW((void)AnyScheme::make("approx", "inv_eps=x"),
               std::invalid_argument);
  EXPECT_TRUE(static_cast<bool>(AnyScheme::make("kdistance", "k=4")));
  EXPECT_TRUE(static_cast<bool>(AnyScheme::make("approx", "eps=0.5")));
}

TEST(AnyScheme, CrossSchemeAttachedLabelsThrow) {
  const Tree t = tree::random_tree(80, 12);
  const core::FgnwScheme f(t);
  const core::AlstrupScheme a(t);
  const AnyScheme any_f = AnyScheme::make("fgnw", "");
  const AnyScheme any_a = AnyScheme::make("alstrup", "");
  const auto att_f = any_f.attach(f.label(3));
  const auto att_a = any_a.attach(a.label(3));
  EXPECT_THROW((void)any_f.query(*att_f, *att_a), std::invalid_argument);
  EXPECT_THROW((void)any_a.query(*att_f, *att_a), std::invalid_argument);
  // Matching kinds agree with the concrete scheme.
  const auto att_f2 = any_f.attach(f.label(40));
  EXPECT_EQ(any_f.query(*att_f, *att_f2).value,
            core::FgnwScheme::query(f.label(3), f.label(40)));
}

TEST(LruCache, EvictsLeastRecentlyUsedWithinByteBudget) {
  serve::LruCache<int, std::string> cache(100);
  cache.put(1, "a", 40);
  cache.put(2, "b", 40);
  ASSERT_NE(cache.get(1), nullptr);  // 1 is now hottest
  cache.put(3, "c", 40);             // over budget: evicts 2, the coldest
  EXPECT_EQ(cache.get(2), nullptr);
  ASSERT_NE(cache.get(1), nullptr);
  EXPECT_EQ(*cache.get(1), "a");
  ASSERT_NE(cache.get(3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.bytes(), 80u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCache, ReplacingAKeyRechargesItsCost) {
  serve::LruCache<int, int> cache(100);
  cache.put(1, 10, 60);
  cache.put(1, 11, 30);  // replaces; old cost released
  EXPECT_EQ(cache.bytes(), 30u);
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_NE(cache.get(1), nullptr);
  EXPECT_EQ(*cache.get(1), 11);
}

TEST(LruCache, OversizedEntryIsKeptUntilTheNextInsert) {
  serve::LruCache<int, int> cache(10);
  cache.put(1, 10, 500);  // larger than the whole budget: still served
  ASSERT_NE(cache.get(1), nullptr);
  cache.put(2, 20, 4);  // next insert pushes the giant out
  EXPECT_EQ(cache.get(1), nullptr);
  ASSERT_NE(cache.get(2), nullptr);
  EXPECT_EQ(cache.bytes(), 4u);
}

}  // namespace
